#!/bin/sh
# Every library must compile with warnings promoted to errors: each
# lib/*/dune must carry `-warn-error +a` in its flags. Catches a new
# library stanza that silently drops the flag (warnings-as-errors is how
# the repo keeps dead code and fragile matches out of the analysis
# layers). Run from the repository root (or a sandbox copy of it).
set -e
status=0
found=0
for f in lib/*/dune; do
  [ -f "$f" ] || continue
  found=1
  # The flag may be split across lines by formatting; strip newlines
  # before matching.
  if ! tr '\n' ' ' < "$f" | grep -q -- '-warn-error +a'; then
    echo "check-warnerror: $f lacks -warn-error +a"
    status=1
  fi
done
if [ $found -eq 0 ]; then
  echo "check-warnerror: no lib/*/dune files found (run from the repo root)"
  exit 1
fi
if [ $status -eq 0 ]; then
  echo "check-warnerror: every lib/*/dune promotes warnings to errors"
fi
exit $status
