#!/bin/sh
# Committed benchmark record schema checks: BENCH_vm.json must carry
# every key the docs and the roadmap quote, including the tier-3 keys
# (ns_per_instr_block_compiled and the tier_counters audit objects whose
# block/fast/slow counts must sum to executed), and BENCH_pipeline.json
# must carry the scheduler-scaling rows plus the domain-sharded and
# forensics sections.
# Catches a bench writer that silently drops a key (the
# merge-don't-clobber writer makes that easy to miss) and a hand-edited
# file that loses a section. Run from the repository root (or a sandbox
# copy of it).
set -e
status=0
file=BENCH_vm.json
if [ ! -f "$file" ]; then
  echo "check-bench-keys: $file missing (run: dune exec bench/main.exe -- micro --json)"
  exit 1
fi
require() {
  if ! grep -q "\"$1\"" "$file"; then
    echo "check-bench-keys: $file lacks key \"$1\""
    status=1
  fi
}
# Interpreter tiers.
require ns_per_instr_uninstrumented
require ns_per_instr_block_compiled
require block_compiled_speedup_x
require ns_per_instr_one_pc_hook
require ns_per_instr_global_taint_hook
require one_pc_hook_overhead_pct
require global_hook_slowdown_x
# Observability.
require ns_per_instr_obs_enabled
require obs_enabled_overhead_pct
require ns_per_instr_flight_recorder
require flight_recorder_slowdown_x
# Tier-counter audit: the named configs plus the per-app pruned replays.
require tier_counters
for config in hooked obs_on flight_recorder \
              taint_pruned_apache1 taint_pruned_apache2 \
              taint_pruned_cvs taint_pruned_squid; do
  require "$config"
done
require block
require fast
require slow
require executed
# Analysis replays.
require ns_per_instr_taint_analysis
require ns_per_instr_taint_oracle
require taint_speedup_x
require ns_per_instr_slice_analysis
# Checkpointing.
require pages_copied_per_checkpoint
require checkpoints
# Static prefilter per-app rows.
require static_prefilter
for app in apache1 apache2 cvs squid; do
  require "$app"
done
require static_hook_reduction_pct
require exec_uninstrumented_pct
require ns_per_instr_taint_global
require ns_per_instr_taint_pruned
require taint_pruned_delta_ns_per_instr
# Interval abstract interpretation: elision ns/instr plus per-app
# partition rows.
require absint
require ns_per_instr_block_guarded
require ns_per_instr_block_elided
require elision_speedup_x
require analysis_ms
require accesses
require proven
require possible
require oob
require unreachable
require proven_pct
# Table 3 stage timings.
require table3_stage_ms
require time_to_first_vsef

# ------------------------------------------------------------------
# BENCH_pipeline.json: scheduler scaling + the domain-sharded section.
# ------------------------------------------------------------------
file=BENCH_pipeline.json
if [ ! -f "$file" ]; then
  echo "check-bench-keys: $file missing (run: dune exec bench/main.exe -- pipeline --json)"
  exit 1
fi
# Scheduler-scaling rows.
require quantum_instrs
require scales
require hosts
require messages
require create_s
require run_s
require virtual_ms
require hosts_per_s
require instrs_per_s
require first_antibody_ms
require spans_per_s
# The domain-sharded community section.
require sharded
require cores
require seed
require single_domain
require domain_scaling
require speedup_vs_1_domain
require at_scale
require oracle
require probed
require domains
require shards
require windows
require exchanged
require first_antibody_vtime_ms
require domains_checked
require matches
# The forensics section: synthetic reconstruction-throughput rows plus
# the netlog-vs-ground-truth oracle row.
require forensics
require synthetic
require edges
require blocked
require reconstruct_s
require edges_per_s
require max_depth
# Both oracles (sharded determinism, forensic reconstruction) must have
# held when the record was written, and the at-scale row must really be
# at scale.
if [ "$(grep -c '"matches": true' "$file")" -lt 2 ]; then
  echo "check-bench-keys: $file sharded/forensics oracles did not both hold (need two \"matches\": true)"
  status=1
fi
if ! grep -A2 '"at_scale"' "$file" | grep -qE '"hosts": [0-9]{6,}'; then
  echo "check-bench-keys: $file at_scale row is below 10^5 hosts"
  status=1
fi

if [ $status -eq 0 ]; then
  echo "check-bench-keys: BENCH_vm.json and BENCH_pipeline.json carry the expected key schemas"
fi
exit $status
