#!/bin/sh
# BENCH_vm.json schema check: the committed benchmark record must carry
# every key the docs and the roadmap quote, including the tier-3 keys
# (ns_per_instr_block_compiled and the tier_counters audit objects whose
# block/fast/slow counts must sum to executed). Catches a bench writer
# that silently drops a key (the merge-don't-clobber writer makes that
# easy to miss) and a hand-edited file that loses a section. Run from
# the repository root (or a sandbox copy of it).
set -e
file=BENCH_vm.json
if [ ! -f "$file" ]; then
  echo "check-bench-keys: $file missing (run: dune exec bench/main.exe -- micro --json)"
  exit 1
fi
status=0
require() {
  if ! grep -q "\"$1\"" "$file"; then
    echo "check-bench-keys: $file lacks key \"$1\""
    status=1
  fi
}
# Interpreter tiers.
require ns_per_instr_uninstrumented
require ns_per_instr_block_compiled
require block_compiled_speedup_x
require ns_per_instr_one_pc_hook
require ns_per_instr_global_taint_hook
require one_pc_hook_overhead_pct
require global_hook_slowdown_x
# Observability.
require ns_per_instr_obs_enabled
require obs_enabled_overhead_pct
require ns_per_instr_flight_recorder
require flight_recorder_slowdown_x
# Tier-counter audit: the named configs plus the per-app pruned replays.
require tier_counters
for config in hooked obs_on flight_recorder \
              taint_pruned_apache1 taint_pruned_apache2 \
              taint_pruned_cvs taint_pruned_squid; do
  require "$config"
done
require block
require fast
require slow
require executed
# Analysis replays.
require ns_per_instr_taint_analysis
require ns_per_instr_taint_oracle
require taint_speedup_x
require ns_per_instr_slice_analysis
# Checkpointing.
require pages_copied_per_checkpoint
require checkpoints
# Static prefilter per-app rows.
require static_prefilter
for app in apache1 apache2 cvs squid; do
  require "$app"
done
require static_hook_reduction_pct
require exec_uninstrumented_pct
require ns_per_instr_taint_global
require ns_per_instr_taint_pruned
require taint_pruned_delta_ns_per_instr
# Table 3 stage timings.
require table3_stage_ms
require time_to_first_vsef
if [ $status -eq 0 ]; then
  echo "check-bench-keys: $file carries the expected key schema"
fi
exit $status
