#!/bin/sh
# Formatting check, gated on the formatter being available: CI images
# without ocamlformat (or with a different version) skip instead of
# failing the build. Run from the repository root. The @fmt alias covers
# every library (lib/vm, lib/minic, lib/osim, lib/apps, lib/core,
# lib/epidemic, lib/obs) plus bin/, bench/, test/, examples/.
set -e
if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check-fmt: ocamlformat not installed; skipping format check"
  exit 0
fi
want=$(sed -n 's/^version *= *//p' .ocamlformat)
have=$(ocamlformat --version 2>/dev/null || true)
if [ -n "$want" ] && [ "$have" != "$want" ]; then
  echo "check-fmt: ocamlformat $have != pinned $want; skipping format check"
  exit 0
fi
exec dune build @fmt
