#!/bin/sh
# Formatting check, gated on the formatter being available: CI images
# without ocamlformat (or with a different version) skip instead of
# failing the build. Runs ocamlformat --check directly on the sources
# (not `dune build @fmt`) so it can also run from inside a dune rule —
# see the @lint alias in the root dune file. Run from the repository
# root (or a sandbox copy of it).
set -e
if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check-fmt: ocamlformat not installed; skipping format check"
  exit 0
fi
want=$(sed -n 's/^version *= *//p' .ocamlformat)
have=$(ocamlformat --version 2>/dev/null || true)
if [ -n "$want" ] && [ "$have" != "$want" ]; then
  echo "check-fmt: ocamlformat $have != pinned $want; skipping format check"
  exit 0
fi
status=0
for f in $(find lib bin bench test examples \
             \( -name '*.ml' -o -name '*.mli' \) 2>/dev/null | sort); do
  if ! ocamlformat --check "$f"; then
    echo "check-fmt: $f is not formatted (run: ocamlformat -i $f)"
    status=1
  fi
done
exit $status
