#!/bin/sh
# Interface-coverage check: every library module must have an explicit
# .mli so its public surface is deliberate (and -warn-error +a can catch
# dead exports). Exemptions: *_intf.ml (signature-only modules, their
# whole point is to be included) and registry.ml files that are pure
# data catalogues — currently none need the exemption, it documents the
# policy. Run from the repository root (or a sandbox copy of it).
set -e
status=0
for ml in $(find lib -name '*.ml' | sort); do
  case "$(basename "$ml")" in
    *_intf.ml) continue ;;
  esac
  mli="${ml%.ml}.mli"
  if [ ! -f "$mli" ]; then
    echo "check-mli: $ml has no interface file ($mli)"
    status=1
  fi
done
if [ $status -eq 0 ]; then
  echo "check-mli: all library modules have interfaces"
fi
exit $status
