(** Lightweight in-memory checkpoints over a process — the Rx/FlashBack
    shadow-process analogue.

    A checkpoint captures register state, a copy-on-write memory snapshot,
    the heap break, the network-log cursor, and the syscall-result-log
    cursor. It is invisible to the protected program: nothing in the
    process's own address space changes when one is taken, and an attacker
    who corrupts the process cannot reach the snapshot (pages are copied
    away by the COW engine on first touch). *)

type t = {
  ck_id : int;
  ck_regs : Vm.Cpu.reg_snapshot;
  ck_mem : Vm.Memory.snapshot;
  ck_heap_brk : int;
  ck_net_cursor : int;
  ck_sysres_pos : int;
  ck_cur_msg : int;
  ck_icount : int;   (** dynamic instruction count at capture *)
  ck_wall : float;   (** wall-clock capture time *)
}

(* Atomic: checkpoints are taken concurrently by shard domains. The id is
   diagnostic only (never compared across hosts), so a global sequence is
   fine — it just must not be a plain ref racing across domains. *)
let next_id = Atomic.make 0

(** Capture the current process state. O(mapped pages). *)
let take (p : Process.t) =
  {
    ck_id = 1 + Atomic.fetch_and_add next_id 1;
    ck_regs = Vm.Cpu.snapshot_regs p.cpu;
    ck_mem = Vm.Memory.snapshot p.mem;
    ck_heap_brk = p.layout.Vm.Layout.heap_brk;
    ck_net_cursor = Netlog.cursor p.net;
    ck_sysres_pos = p.sysres_pos;
    ck_cur_msg = p.cur_msg;
    ck_icount = p.cpu.Vm.Cpu.icount;
    ck_wall = Unix.gettimeofday ();
  }

(** Roll the process back to [ck]. The checkpoint remains valid and can be
    rolled back to again (analysis re-executes repeatedly from the same
    point). The arrival log and the syscall-result log are kept — replay
    consumes them from the restored cursors, which is what makes
    re-execution deterministic. *)
let rollback (p : Process.t) ck =
  Vm.Cpu.restore_regs p.cpu ck.ck_regs;
  Vm.Memory.restore p.mem ck.ck_mem;
  p.layout.Vm.Layout.heap_brk <- ck.ck_heap_brk;
  Netlog.set_cursor p.net ck.ck_net_cursor;
  p.sysres_pos <- ck.ck_sysres_pos;
  p.cur_msg <- ck.ck_cur_msg;
  p.compromised <- None;
  p.exit_code <- None;
  Process.run_rollback_hooks p

(** A bounded ring of recent checkpoints (the paper keeps the 20 most
    recent, taken every 200 ms by default). *)
type ring = {
  capacity : int;
  mutable items : t list;  (** newest first *)
  mutable purges : int;  (** checkpoints dropped by {!purge_after} *)
}

let create_ring ?(capacity = 20) () = { capacity; items = []; purges = 0 }

let add ring ck =
  let rec trim n = function
    | [] -> []
    | _ when n >= ring.capacity -> []
    | x :: rest -> x :: trim (n + 1) rest
  in
  ring.items <- ck :: trim 1 ring.items

let latest ring = match ring.items with [] -> None | x :: _ -> Some x

let count ring = List.length ring.items

(** The most recent checkpoint taken before the message at log index
    [msg_index] was consumed — the right rollback point for analyzing an
    attack that arrived in that message. *)
let before_message ring ~msg_index =
  List.find_opt (fun ck -> ck.ck_net_cursor <= msg_index) ring.items

(** The oldest retained checkpoint. *)
let oldest ring =
  match List.rev ring.items with [] -> None | x :: _ -> Some x

(** Drop every checkpoint whose network cursor is beyond [cursor]. Used by
    recovery: checkpoints taken while a now-quarantined message was in
    flight contain the attack's effects and must never be rolled back to. *)
let purge_after ring ~cursor =
  let before = List.length ring.items in
  ring.items <- List.filter (fun ck -> ck.ck_net_cursor <= cursor) ring.items;
  ring.purges <- ring.purges + (before - List.length ring.items)

(** Checkpoints dropped by {!purge_after} over the ring's lifetime. *)
let purge_count ring = ring.purges
