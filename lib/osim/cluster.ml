(** Domain-sharded execution: partition hosts across OCaml 5 domains and
    exchange cross-shard messages at virtual-clock barriers.

    The execution model is deterministic lockstep: virtual time is cut
    into windows of [window_ms]; within a window every shard runs its own
    single-threaded scheduler ({!Sched.step_until}) completely
    independently — no shared mutable state, its own [Random.State], its
    own {!Obs.Metrics} registry — and emits cross-shard messages as
    {!envelope} values. At the barrier the coordinator collects every
    shard's outgoing mail, stamps per-source sequence numbers, sorts the
    batch by (virtual time, source shard, sequence), and delivers it to
    the destination shards' inbound mailboxes for the next window.
    Because the merge order is a pure function of values the shards
    computed deterministically, running the same barrier schedule on one
    domain or on N produces identical results — the differential oracle
    the sharded community is tested against.

    Inbound mailboxes are bounded: a shard receives at most
    [mailbox_limit] envelopes per window; the excess stays queued (in
    order) and is delivered at later barriers. Backpressure therefore
    delays mail deterministically instead of dropping it.

    Domains are spawned per window ([domains - 1] workers plus the
    calling domain; shard [i] runs on domain [i mod domains]). Windows
    are few and long relative to spawn cost, and per-window spawning
    keeps the no-shared-state argument trivial. *)

(** How hosts map onto shards. *)
type topology =
  | Uniform  (** round-robin: host [h] on shard [h mod shards] *)
  | Subnet of int
      (** [Subnet k]: hosts come in subnets of [k]; a whole subnet lands
          on one shard, so subnet-local traffic never crosses a barrier *)
  | Overlay of int
      (** [Overlay d]: peer-to-peer overlay of degree [d] (see
          {!Epidemic.Community}); placement scatters overlay
          neighbourhoods by a multiplicative hash so antibody gossip
          exercises the cross-shard path *)

let place topology ~shards ~host =
  if shards <= 0 then invalid_arg "Cluster.place: shards must be positive";
  match topology with
  | Uniform -> host mod shards
  | Subnet k ->
    let k = max 1 k in
    host / k mod shards
  | Overlay _ -> (host * 2654435761) lsr 16 mod shards

let topology_name = function
  | Uniform -> "uniform"
  | Subnet k -> Printf.sprintf "subnet-%d" k
  | Overlay d -> Printf.sprintf "overlay-%d" d

(** A cross-shard message, reified. The (vtime, src, seq) triple is the
    deterministic merge key at barriers. *)
type 'm envelope = {
  env_vtime : float;  (** sender-side virtual time of emission *)
  env_src : int;      (** source shard *)
  env_seq : int;      (** per-source emission order within the window *)
  env_dst : int;      (** destination shard *)
  env_msg : 'm;
}

type config = {
  domains : int;        (** OCaml domains to run shards on (>= 1) *)
  shards : int;         (** shard count (>= domains, usually = domains) *)
  window_ms : float;    (** barrier window length in simulated ms *)
  mailbox_limit : int;  (** max inbound envelopes per shard per window *)
  max_windows : int;    (** hard stop against non-quiescing drivers *)
}

let default_config =
  { domains = 1; shards = 1; window_ms = 0.5; mailbox_limit = 4096;
    max_windows = 100_000 }

(** What one shard reports at a barrier. [wr_out] is its outgoing mail in
    emission order ([env_seq] may be 0; the coordinator restamps);
    [wr_done] means the shard is quiescent — the run ends when every
    shard is done and no mail is in flight. *)
type 'm window_result = { wr_out : 'm envelope list; wr_done : bool }

type stats = {
  st_windows : int;     (** barriers executed *)
  st_exchanged : int;   (** envelopes delivered across shards *)
  st_deferred : int;    (** envelope deliveries delayed by mailbox bounds *)
}

(* Split [q] at [n]: delivered batch (in order) and the remainder. *)
let take_n n q =
  let rec go n acc rest =
    match rest with
    | [] -> (List.rev acc, [])
    | x :: tl -> if n <= 0 then (List.rev acc, rest) else go (n - 1) (x :: acc) tl
  in
  go n [] q

(* Run [f i] for every shard index, fanning the indices out over
   [domains] domains (shard i on domain i mod domains, domain 0 being the
   caller). Results come back indexed, so the merge order never depends
   on domain timing. *)
let map_shards ~domains ~shards f =
  let results = Array.make shards None in
  if domains <= 1 then
    for i = 0 to shards - 1 do
      results.(i) <- Some (f i)
    done
  else begin
    let worker w () =
      let rec go i acc = if i >= shards then acc else go (i + domains) ((i, f i) :: acc) in
      go w []
    in
    let spawned =
      Array.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    (* The calling domain takes its own share while the workers run. *)
    List.iter (fun (i, r) -> results.(i) <- Some r) (worker 0 ());
    Array.iter
      (fun d -> List.iter (fun (i, r) -> results.(i) <- Some r) (Domain.join d))
      spawned
  end;
  Array.map
    (function Some r -> r | None -> failwith "Cluster: shard not executed")
    results

(** Drive the barrier loop to completion. [window shard state ~inbox
    ~until] runs shard [shard] up to virtual time [until] with the
    window's inbound envelopes (already merge-sorted) and returns its
    outgoing mail; it executes on a worker domain and must touch only
    [state] and immutable data. [at_barrier] runs on the calling domain
    after each exchange (metrics merging, progress). *)
let run ?(at_barrier = fun ~window:_ -> ())
    (config : config)
    (states : 's array)
    ~(window : int -> 's -> inbox:'m envelope list -> until:float -> 'm window_result) =
  let shards = Array.length states in
  if shards = 0 then invalid_arg "Cluster.run: no shards";
  if config.domains < 1 then invalid_arg "Cluster.run: domains < 1";
  let domains = min config.domains shards in
  (* Per-shard inbound queues (oldest first) carried across windows. *)
  let inboxes = Array.make shards [] in
  let exchanged = ref 0 and deferred = ref 0 in
  let rec go k =
    if k >= config.max_windows then
      failwith
        (Printf.sprintf "Cluster.run: no quiescence after %d windows" k);
    let until = float_of_int (k + 1) *. config.window_ms in
    (* Deliver up to the mailbox bound; the rest waits, in order. *)
    let batches =
      Array.mapi
        (fun i q ->
          let batch, rest = take_n config.mailbox_limit q in
          inboxes.(i) <- rest;
          deferred := !deferred + List.length rest;
          batch)
        inboxes
    in
    (* Each shard's window runs under a span on its own pid lane; the
       tracer is mutex-guarded, so worker domains may emit concurrently
       into the one merged trace. *)
    let results =
      map_shards ~domains ~shards (fun i ->
          Obs.Trace.with_span ~cat:"cluster" ~pid:i ~vts_ms:until
            ~args:
              [ ("window", string_of_int k);
                ("inbox", string_of_int (List.length batches.(i)));
              ]
            "window"
            (fun () -> window i states.(i) ~inbox:batches.(i) ~until))
    in
    let bsp =
      Obs.Trace.begin_span ~cat:"cluster" ~pid:shards ~vts_ms:until
        ~args:[ ("window", string_of_int k) ]
        "barrier"
    in
    (* Deterministic merge: restamp per-source emission order, then sort
       the whole batch by (vtime, src, seq) — a pure function of shard
       outputs, independent of domain scheduling. *)
    let outgoing =
      Array.to_list results
      |> List.concat_map (fun r ->
             List.mapi (fun seq e -> { e with env_seq = seq }) r.wr_out)
      |> List.sort (fun a b ->
             match compare a.env_vtime b.env_vtime with
             | 0 -> (
               match compare a.env_src b.env_src with
               | 0 -> compare a.env_seq b.env_seq
               | c -> c)
             | c -> c)
    in
    let per_dst = Array.make shards [] in
    List.iter
      (fun e ->
        if e.env_dst < 0 || e.env_dst >= shards then
          invalid_arg "Cluster.run: envelope to unknown shard";
        exchanged := !exchanged + 1;
        per_dst.(e.env_dst) <- e :: per_dst.(e.env_dst))
      outgoing;
    Array.iteri
      (fun i q -> if q <> [] then inboxes.(i) <- inboxes.(i) @ List.rev q)
      per_dst;
    at_barrier ~window:k;
    Obs.Trace.end_span
      ~args:[ ("exchanged", string_of_int !exchanged) ]
      bsp;
    let mail_in_flight = Array.exists (fun q -> q <> []) inboxes in
    let all_done = Array.for_all (fun r -> r.wr_done) results in
    if all_done && not mail_in_flight then
      { st_windows = k + 1; st_exchanged = !exchanged; st_deferred = !deferred }
    else go (k + 1)
  in
  go 0
