(** The serving harness: runs a process as a network server, taking
    periodic lightweight checkpoints while it works.

    The checkpoint interval is expressed in simulated milliseconds; the
    simulation maps one millisecond to {!instrs_per_ms} dynamic
    instructions. *)

val instrs_per_ms : int

type config = {
  checkpoint_interval_ms : int;  (** 0 disables checkpointing *)
  keep_checkpoints : int;
}

val default_config : config
(** 200 ms interval, 20 checkpoints retained — the paper's defaults. *)

type status =
  | Idle       (** blocked waiting for input *)
  | Stopped    (** process exited or was halted *)
  | Crashed of Vm.Event.fault
  | Infected of string  (** exploit reached [system]; payload command *)

type t = {
  id : int;  (** process/host id; trace spans use it as their pid *)
  proc : Process.t;
  ring : Checkpoint.ring;
  origin : Checkpoint.t;
      (** the initial checkpoint from {!create}; survives ring overwrites
          and purges as the rollback point of last resort *)
  config : config;
  mutable next_ck_at : int;
  ck_counter : Obs.Metrics.counter;
      (** checkpoints taken — single source of truth (see
          {!checkpoints_taken}) *)
}

val create : ?config:config -> ?metrics:Obs.Metrics.t -> Process.t -> t
(** Wrap a process; takes an initial checkpoint so a rollback point always
    exists. When [metrics] is given, {!register_metrics} is applied. *)

val vtime_ms : t -> float
(** The server's virtual clock: simulated milliseconds of progress
    (icount / {!instrs_per_ms}). *)

val checkpoints_taken : t -> int

val register_metrics : t -> Obs.Metrics.t -> unit
(** Register this server's checkpoint counter and pull-gauges (ring
    occupancy/purges, netlog drops/quarantines, VM fast/slow-path, TLB and
    COW counters) in a registry, labelled with the server id. The gauge
    closures retain the process, so prefer a per-run registry over the
    global default when servers come and go. *)

val take_checkpoint : t -> unit

type step_end = Yielded | Ended of status

val step : fuel:int -> t -> step_end
(** Advance the server by at most [fuel] instructions, checkpointing on
    schedule; [Yielded] means the budget ran out with work remaining.
    Checkpoints land at the same icount thresholds as an unbounded {!run},
    so slicing the execution cannot change the ring contents. *)

val run : t -> status
(** Advance until the server needs input, stops, crashes, or is
    compromised — checkpointing on schedule as it runs. *)

val handle :
  ?src:int ->
  ?seq:int ->
  t ->
  string ->
  [ `Served of int
  | `Filtered of string
  | `Stopped
  | `Crashed of int * Vm.Event.fault
  | `Infected of int * string ]
(** Deliver one message and run the server on it. [src]/[seq] stamp the
    sender's {!Netlog.provenance}; the arrival virtual time is the
    server's own clock ({!vtime_ms}). *)
