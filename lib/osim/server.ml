(** The serving harness: runs a process as a network server, taking
    periodic lightweight checkpoints while it works.

    The checkpoint interval is expressed in simulated milliseconds; the
    simulation maps one millisecond to {!instrs_per_ms} dynamic
    instructions, so "checkpoint every 200 ms" means "every million
    instructions of progress". Wall-clock overhead measurements (Figure 4)
    time the OCaml harness itself, where the checkpoint cost is the real
    COW bookkeeping of {!Vm.Memory}. *)

let instrs_per_ms = 5_000

type config = {
  checkpoint_interval_ms : int;  (** 0 disables checkpointing *)
  keep_checkpoints : int;
}

let default_config = { checkpoint_interval_ms = 200; keep_checkpoints = 20 }

type status =
  | Idle        (** blocked waiting for input *)
  | Stopped     (** process exited or was halted *)
  | Crashed of Vm.Event.fault
  | Infected of string  (** exploit reached [system]; payload command *)

type t = {
  proc : Process.t;
  ring : Checkpoint.ring;
  origin : Checkpoint.t;
      (** the initial checkpoint from [create]; survives ring overwrites
          and purges as the rollback point of last resort *)
  config : config;
  mutable next_ck_at : int;  (** icount threshold for the next checkpoint *)
  mutable checkpoints_taken : int;
}

let interval_instrs config = config.checkpoint_interval_ms * instrs_per_ms

let create ?(config = default_config) proc =
  let ring = Checkpoint.create_ring ~capacity:config.keep_checkpoints () in
  (* An initial checkpoint so there is always a rollback point. *)
  let origin = Checkpoint.take proc in
  Checkpoint.add ring origin;
  {
    proc;
    ring;
    origin;
    config;
    next_ck_at =
      (if config.checkpoint_interval_ms = 0 then max_int
       else proc.Process.cpu.Vm.Cpu.icount + interval_instrs config);
    checkpoints_taken = 1;
  }

let take_checkpoint t =
  Checkpoint.add t.ring (Checkpoint.take t.proc);
  t.checkpoints_taken <- t.checkpoints_taken + 1;
  if t.config.checkpoint_interval_ms > 0 then
    t.next_ck_at <- t.proc.Process.cpu.Vm.Cpu.icount + interval_instrs t.config

type step_end = Yielded | Ended of status

(** Advance the server by at most [fuel] instructions. Checkpoints land at
    the same icount thresholds as an unbounded {!run}, because each inner
    slice is clamped to the next checkpoint boundary — so slicing the
    execution (as the cooperative scheduler does) cannot change the ring
    contents, and the analysis pipeline sees identical rollback points. *)
let step ~fuel t =
  let cpu = t.proc.Process.cpu in
  let stop = cpu.Vm.Cpu.icount + max 0 fuel in
  let rec go () =
    if t.proc.Process.compromised <> None then
      Ended (Infected (Option.get t.proc.Process.compromised))
    else if cpu.Vm.Cpu.halted then Ended Stopped
    else if cpu.Vm.Cpu.icount >= stop then Yielded
    else begin
      let slice =
        min (stop - cpu.Vm.Cpu.icount) (max 1 (t.next_ck_at - cpu.Vm.Cpu.icount))
      in
      match Vm.Cpu.run ~fuel:slice cpu with
      | Vm.Cpu.Out_of_fuel ->
        if cpu.Vm.Cpu.icount >= t.next_ck_at then take_checkpoint t;
        go ()
      | Vm.Cpu.Blocked ->
        Ended
          (match t.proc.Process.compromised with
          | Some cmd -> Infected cmd
          | None -> Idle)
      | Vm.Cpu.Halted ->
        Ended
          (match t.proc.Process.compromised with
          | Some cmd -> Infected cmd
          | None -> Stopped)
      | Vm.Cpu.Faulted f -> Ended (Crashed f)
    end
  in
  go ()

(** Advance the server until it needs input, stops, crashes, or is
    compromised — taking checkpoints on schedule as it runs. *)
let run t =
  (* Bounded slices (not [max_int]: [step] adds fuel to icount). *)
  let rec go () =
    match step ~fuel:1_000_000_000 t with
    | Yielded -> go ()
    | Ended s -> s
  in
  go ()

(** Deliver a message and run the server on it. *)
let handle t payload =
  match Process.send_message t.proc payload with
  | Error filter -> `Filtered filter
  | Ok id -> (
    match run t with
    | Idle -> `Served id
    | Stopped -> `Stopped
    | Crashed f -> `Crashed (id, f)
    | Infected cmd -> `Infected (id, cmd))
