(** The serving harness: runs a process as a network server, taking
    periodic lightweight checkpoints while it works.

    The checkpoint interval is expressed in simulated milliseconds; the
    simulation maps one millisecond to {!instrs_per_ms} dynamic
    instructions, so "checkpoint every 200 ms" means "every million
    instructions of progress". Wall-clock overhead measurements (Figure 4)
    time the OCaml harness itself, where the checkpoint cost is the real
    COW bookkeeping of {!Vm.Memory}. *)

let instrs_per_ms = 5_000

type config = {
  checkpoint_interval_ms : int;  (** 0 disables checkpointing *)
  keep_checkpoints : int;
}

let default_config = { checkpoint_interval_ms = 200; keep_checkpoints = 20 }

type status =
  | Idle        (** blocked waiting for input *)
  | Stopped     (** process exited or was halted *)
  | Crashed of Vm.Event.fault
  | Infected of string  (** exploit reached [system]; payload command *)

type t = {
  id : int;  (** process/host id; trace spans use it as their pid *)
  proc : Process.t;
  ring : Checkpoint.ring;
  origin : Checkpoint.t;
      (** the initial checkpoint from [create]; survives ring overwrites
          and purges as the rollback point of last resort *)
  config : config;
  mutable next_ck_at : int;  (** icount threshold for the next checkpoint *)
  ck_counter : Obs.Metrics.counter;
      (** checkpoints taken — the single source of truth; registered in a
          metrics registry when the caller provides one *)
}

(* Atomic so server creation is safe from any domain (sharded runs create
   hosts on the coordinating domain today, but nothing should depend on
   that). Ids remain globally unique, not per-shard dense. *)
let next_id = Atomic.make 0
let interval_instrs config = config.checkpoint_interval_ms * instrs_per_ms

(** The server's virtual clock: simulated milliseconds of progress. *)
let vtime_ms t =
  float_of_int t.proc.Process.cpu.Vm.Cpu.icount /. float_of_int instrs_per_ms

let checkpoints_taken t = Obs.Metrics.counter_value t.ck_counter

(** Register this server's observability surface in [registry]: the
    checkpoint counter plus pull-gauges over the ring, the network log,
    and the VM's fast/slow-path, TLB, and COW counters. Gauge closures
    retain the process, so use a per-run registry (not the global default)
    when servers come and go. *)
let register_metrics t registry =
  let labels = [ ("server", string_of_int t.id) ] in
  let gauge name help f =
    Obs.Metrics.gauge_fn ~registry ~help ~labels name (fun () ->
        float_of_int (f ()))
  in
  Obs.Metrics.attach_counter ~registry ~labels
    ~help:"checkpoints taken (including the origin)" "sweeper_checkpoints_total"
    t.ck_counter;
  gauge "sweeper_checkpoint_ring_occupancy" "checkpoints currently retained"
    (fun () -> Checkpoint.count t.ring);
  gauge "sweeper_checkpoint_purges" "checkpoints dropped by recovery purges"
    (fun () -> Checkpoint.purge_count t.ring);
  gauge "sweeper_netlog_drops" "messages dropped by input filters" (fun () ->
      Netlog.dropped_count t.proc.Process.net);
  gauge "sweeper_netlog_quarantined" "messages excluded from replay"
    (fun () -> Netlog.quarantined_count t.proc.Process.net);
  gauge "sweeper_netlog_filters" "input filters installed" (fun () ->
      Netlog.filter_count t.proc.Process.net);
  gauge "sweeper_netlog_messages" "messages logged" (fun () ->
      Netlog.message_count t.proc.Process.net);
  let cpu = t.proc.Process.cpu in
  gauge "sweeper_vm_fast_instructions"
    "instructions retired on the uninstrumented fast path" (fun () ->
      cpu.Vm.Cpu.fast_retired);
  gauge "sweeper_vm_slow_instructions"
    "instructions retired on the instrumented path" (fun () ->
      cpu.Vm.Cpu.slow_retired);
  gauge "sweeper_vm_block_instructions"
    "instructions retired inside block superinstructions" (fun () ->
      cpu.Vm.Cpu.block_retired);
  gauge "sweeper_vm_blocks_compiled" "basic blocks compiled for tier 3"
    (fun () -> Vm.Cpu.block_count cpu);
  gauge "sweeper_vm_faults" "machine faults surfaced" (fun () ->
      cpu.Vm.Cpu.fault_count);
  let mem = t.proc.Process.mem in
  gauge "sweeper_vm_tlb_read_misses" "read-TLB refills" (fun () ->
      let r, _, _ = Vm.Memory.tlb_stats mem in
      r);
  gauge "sweeper_vm_tlb_write_misses" "write-TLB refills" (fun () ->
      let _, w, _ = Vm.Memory.tlb_stats mem in
      w);
  gauge "sweeper_vm_tlb_invalidations" "TLB invalidations" (fun () ->
      let _, _, i = Vm.Memory.tlb_stats mem in
      i);
  gauge "sweeper_vm_cow_copies" "pages copied for snapshot sharing"
    (fun () -> fst (Vm.Memory.stats mem));
  gauge "sweeper_vm_pages_mapped" "pages ever materialized" (fun () ->
      snd (Vm.Memory.stats mem))

let create ?(config = default_config) ?metrics proc =
  let ring = Checkpoint.create_ring ~capacity:config.keep_checkpoints () in
  (* An initial checkpoint so there is always a rollback point. *)
  let origin = Checkpoint.take proc in
  Checkpoint.add ring origin;
  let id = 1 + Atomic.fetch_and_add next_id 1 in
  let ck_counter = Obs.Metrics.make_counter () in
  Obs.Metrics.inc ck_counter;
  let t =
    {
      id;
      proc;
      ring;
      origin;
      config;
      next_ck_at =
        (if config.checkpoint_interval_ms = 0 then max_int
         else proc.Process.cpu.Vm.Cpu.icount + interval_instrs config);
      ck_counter;
    }
  in
  (match metrics with Some registry -> register_metrics t registry | None -> ());
  t

let take_checkpoint t =
  let vts = vtime_ms t in
  let sp =
    Obs.Trace.begin_span ~cat:"checkpoint" ~pid:t.id ~vts_ms:vts "checkpoint"
  in
  Checkpoint.add t.ring (Checkpoint.take t.proc);
  Obs.Metrics.inc t.ck_counter;
  Obs.Trace.end_span ~vts_ms:vts sp;
  if t.config.checkpoint_interval_ms > 0 then
    t.next_ck_at <- t.proc.Process.cpu.Vm.Cpu.icount + interval_instrs t.config

type step_end = Yielded | Ended of status

(** Advance the server by at most [fuel] instructions. Checkpoints land at
    the same icount thresholds as an unbounded {!run}, because each inner
    slice is clamped to the next checkpoint boundary — so slicing the
    execution (as the cooperative scheduler does) cannot change the ring
    contents, and the analysis pipeline sees identical rollback points. *)
let step ~fuel t =
  let cpu = t.proc.Process.cpu in
  let stop = cpu.Vm.Cpu.icount + max 0 fuel in
  let rec go () =
    if t.proc.Process.compromised <> None then
      Ended (Infected (Option.get t.proc.Process.compromised))
    else if cpu.Vm.Cpu.halted then Ended Stopped
    else if cpu.Vm.Cpu.icount >= stop then Yielded
    else begin
      let slice =
        min (stop - cpu.Vm.Cpu.icount) (max 1 (t.next_ck_at - cpu.Vm.Cpu.icount))
      in
      match Vm.Cpu.run ~fuel:slice cpu with
      | Vm.Cpu.Out_of_fuel ->
        if cpu.Vm.Cpu.icount >= t.next_ck_at then take_checkpoint t;
        go ()
      | Vm.Cpu.Blocked ->
        Ended
          (match t.proc.Process.compromised with
          | Some cmd -> Infected cmd
          | None -> Idle)
      | Vm.Cpu.Halted ->
        Ended
          (match t.proc.Process.compromised with
          | Some cmd -> Infected cmd
          | None -> Stopped)
      | Vm.Cpu.Faulted f -> Ended (Crashed f)
    end
  in
  go ()

(** Advance the server until it needs input, stops, crashes, or is
    compromised — taking checkpoints on schedule as it runs. *)
let run t =
  (* Bounded slices (not [max_int]: [step] adds fuel to icount). *)
  let rec go () =
    match step ~fuel:1_000_000_000 t with
    | Yielded -> go ()
    | Ended s -> s
  in
  go ()

(** Deliver a message and run the server on it. [src]/[seq] stamp the
    sender's provenance; arrival time is the server's own virtual clock. *)
let handle ?src ?seq t payload =
  match Process.send_message ?src ?seq ~vtime:(vtime_ms t) t.proc payload with
  | Error filter -> `Filtered filter
  | Ok id -> (
    match run t with
    | Idle -> `Served id
    | Stopped -> `Stopped
    | Crashed f -> `Crashed (id, f)
    | Infected cmd -> `Infected (id, cmd))
