(** The network proxy: message logging, input filtering, and replay.

    Every inbound message passes through here. During normal execution the
    proxy applies the input-signature filters Sweeper has generated
    (dropping matches before they reach the server) and appends everything
    else to the arrival log that replay draws from. After an attack, the
    same log is what rollback-and-re-execution feeds back to the process —
    with the malicious message(s) skipped during recovery. *)

(** Where a message came from: the sending host's global id ([-1] for
    traffic injected by an external driver), the per-source sequence
    number the sender stamped, and the receiver's virtual time at
    arrival. Forensic trace-back ({!Forensics}) reconstructs infection
    trees from nothing but these triples. *)
type provenance = {
  p_src : int;     (** sending host id; [-1] = external/driver *)
  p_seq : int;     (** per-source sequence number, stamped by the sender *)
  p_vtime : float; (** receiver-side arrival virtual time (simulated ms) *)
}

let external_provenance = { p_src = -1; p_seq = 0; p_vtime = 0. }

type msg = {
  m_id : int;
  m_payload : string;
  m_prov : provenance;
}

module Int_set = Set.Make (Int)

type mode =
  | Live
      (** consume arrivals in order; block when none are pending *)
  | Replay of { upto : int; skip : Int_set.t }
      (** re-deliver logged messages with ids below [upto], skipping the
          given ids; block at [upto] *)

type filter = {
  f_name : string;
  f_matches : string -> bool;
}

type t = {
  mutable msgs : msg array;
  mutable count : int;
  mutable cursor : int;  (** index of the next message to consume *)
  mutable mode : mode;
  mutable filters : filter list;
  mutable filtered : (string * string) list;  (** filter name, payload *)
  mutable quarantined : Int_set.t;
      (** messages identified as malicious: never re-delivered by replay *)
}

let create () =
  {
    msgs =
      Array.make 64 { m_id = 0; m_payload = ""; m_prov = external_provenance };
    count = 0;
    cursor = 0;
    mode = Live;
    filters = [];
    filtered = [];
    quarantined = Int_set.empty;
  }

(** Permanently exclude messages from any future replay. *)
let quarantine t ids =
  t.quarantined <- List.fold_left (fun s i -> Int_set.add i s) t.quarantined ids

let grow t =
  if t.count = Array.length t.msgs then begin
    let bigger = Array.make (2 * Array.length t.msgs) t.msgs.(0) in
    Array.blit t.msgs 0 bigger 0 t.count;
    t.msgs <- bigger
  end

(** Deliver a message to the proxy. Returns the assigned id, or the name of
    the filter that dropped it. Messages a filter rejects never enter the
    log, so they carry no provenance — they also cannot infect. *)
let arrive ?(src = -1) ?(seq = 0) ?(vtime = 0.) t payload =
  match List.find_opt (fun f -> f.f_matches payload) t.filters with
  | Some f ->
    t.filtered <- (f.f_name, payload) :: t.filtered;
    Error f.f_name
  | None ->
    grow t;
    let id = t.count in
    t.msgs.(id) <-
      { m_id = id; m_payload = payload;
        m_prov = { p_src = src; p_seq = seq; p_vtime = vtime } };
    t.count <- t.count + 1;
    Ok id

(** Install a named input filter (an antibody). *)
let add_filter t ~name matches =
  t.filters <- { f_name = name; f_matches = matches } :: t.filters

let remove_filter t ~name =
  t.filters <- List.filter (fun f -> f.f_name <> name) t.filters

let filter_count t = List.length t.filters
let dropped_count t = List.length t.filtered
let quarantined_count t = Int_set.cardinal t.quarantined
let quarantined_ids t = Int_set.elements t.quarantined
let is_quarantined t id = Int_set.mem id t.quarantined

(** The next message for [recv], honouring the current mode; [None] means
    the syscall must block. Advances the cursor. *)
let next_for_recv t =
  match t.mode with
  | Live ->
    if t.cursor < t.count then begin
      let m = t.msgs.(t.cursor) in
      t.cursor <- t.cursor + 1;
      Some m
    end
    else None
  | Replay { upto; skip } ->
    let rec go () =
      if t.cursor >= upto then None
      else
        let m = t.msgs.(t.cursor) in
        t.cursor <- t.cursor + 1;
        if Int_set.mem m.m_id skip || Int_set.mem m.m_id t.quarantined then
          go ()
        else Some m
    in
    go ()

let cursor t = t.cursor
let set_cursor t c = t.cursor <- c
let set_mode t m = t.mode <- m
let message_count t = t.count

let message t id =
  if id < 0 || id >= t.count then invalid_arg "Netlog.message";
  t.msgs.(id)

(** Messages consumed at-or-after log position [pos] up to the current
    cursor — the suspects for an attack detected now. Quarantined
    messages are excluded: replay skips them, so a cursor past their slot
    does not mean they were consumed. (At first detection nothing is
    quarantined yet, so the suspect set for the analysis pipeline is
    unchanged; the filter only matters for post-recovery trace-back.) *)
let consumed_since t pos =
  let stop = min t.cursor t.count in
  let rec go acc i =
    if i >= stop then List.rev acc
    else
      let acc =
        if Int_set.mem t.msgs.(i).m_id t.quarantined then acc
        else t.msgs.(i) :: acc
      in
      go acc (i + 1)
  in
  go [] (max 0 pos)
