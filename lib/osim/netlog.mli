(** The network proxy: message logging, input filtering, and replay.

    Every inbound message passes through here. During normal execution the
    proxy applies the input-signature filters Sweeper has generated
    (dropping matches before they reach the server) and appends everything
    else to the arrival log that replay draws from. After an attack, the
    same log is what rollback-and-re-execution feeds back to the process —
    with malicious messages skipped during recovery and quarantined
    forever after. *)

(** Where a message came from: the sending host's global id ([-1] for
    traffic injected by an external driver), the per-source sequence
    number the sender stamped, and the receiver's virtual time at
    arrival. Forensic trace-back reconstructs infection trees from
    nothing but these triples. *)
type provenance = {
  p_src : int;     (** sending host id; [-1] = external/driver *)
  p_seq : int;     (** per-source sequence number, stamped by the sender *)
  p_vtime : float; (** receiver-side arrival virtual time (simulated ms) *)
}

val external_provenance : provenance
(** [{ p_src = -1; p_seq = 0; p_vtime = 0. }] — the default stamp for
    driver-injected traffic. *)

type msg = {
  m_id : int;
  m_payload : string;
  m_prov : provenance;
}

module Int_set :
  Set.S with type elt = int and type t = Set.Make(Int).t

type mode =
  | Live
      (** consume arrivals in order; block when none are pending *)
  | Replay of { upto : int; skip : Int_set.t }
      (** re-deliver logged messages with ids below [upto], skipping the
          given ids (and all quarantined ids); block at [upto] *)

type t

val create : unit -> t

val arrive :
  ?src:int -> ?seq:int -> ?vtime:float -> t -> string -> (int, string) result
(** Deliver a message: [Ok id], or [Error filter_name] if dropped.
    [src]/[seq]/[vtime] stamp the logged message's {!provenance}
    (defaults: external). Filtered messages never enter the log and so
    carry no provenance — they also cannot infect. *)

val add_filter : t -> name:string -> (string -> bool) -> unit
(** Install a named input filter (an antibody). *)

val remove_filter : t -> name:string -> unit
val filter_count : t -> int

val dropped_count : t -> int
(** Messages dropped by input filters since creation. *)

val quarantined_count : t -> int
(** Messages permanently excluded from replay. *)

val quarantined_ids : t -> int list
(** Ids of quarantined messages, ascending — the confirmed-malicious set
    forensic trace-back starts from. *)

val is_quarantined : t -> int -> bool

val quarantine : t -> int list -> unit
(** Permanently exclude messages from any future replay. *)

val next_for_recv : t -> msg option
(** The next message for [recv], honouring the mode; [None] means the
    syscall must block. Advances the cursor. *)

val cursor : t -> int
val set_cursor : t -> int -> unit
val set_mode : t -> mode -> unit
val message_count : t -> int

val message : t -> int -> msg
(** Look up a logged message by id. *)

val consumed_since : t -> int -> msg list
(** Messages consumed at-or-after log position [pos] up to the cursor —
    the suspects for an attack detected now. Quarantined messages are
    excluded: replay skips them, so a cursor past their slot does not
    mean they were consumed. *)
