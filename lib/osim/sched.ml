(** Cooperative multi-host scheduler.

    Interleaves many {!Server} processes in simulated time: each task gets
    a quantum of instructions per turn via the non-blocking
    {!Server.step}, and a virtual clock derived from
    {!Server.instrs_per_ms} decides who runs next (the runnable task
    furthest behind in virtual time). Because {!Server.step} checkpoints
    at the same icount thresholds as a blocking run, and each host only
    ever consumes its own inbox in order, interleaved execution is
    instruction-for-instruction identical per host to running the hosts
    sequentially — which is what makes community-scale runs trustworthy as
    stand-ins for the serial experiments.

    The scheduler itself is policy-free: crashes, infections, and vetoes
    raised by monitoring hooks are surfaced as events to a driver callback
    (see {!Sweeper.Defense}), which may repair the host and {!unpark} it. *)

type event =
  | Filtered of string * string
      (** an input filter rejected the message at delivery: filter name,
          payload *)
  | Served of int      (** the message with this log id was fully served *)
  | Crashed of Vm.Event.fault
  | Infected of string
  | Stopped
  | Raised of exn
      (** a monitoring hook aborted execution (e.g. a VSEF veto); the
          driver owns the exception *)

type state = Runnable | Waiting | Parked of event

type task = {
  sk_id : int;
  sk_server : Server.t;
  mutable sk_state : state;
  mutable sk_front : string list;  (** inbox: pop end *)
  mutable sk_back : string list;   (** inbox: push end, reversed *)
  mutable sk_pending : int option; (** log id of the message in flight *)
  sk_base_icount : int;
  mutable sk_vtime_ms : float;     (** per-task virtual clock *)
  mutable sk_delivered : int;
  mutable sk_served : int;
  mutable sk_span : Obs.Trace.span option;
      (** the open per-message serve span (delivery to Served/park) *)
  sk_on_deliver : (string -> unit) option;
      (** runs just before a message enters the host's network log *)
}

type t = {
  quantum : int;  (** instructions per scheduling turn *)
  mutable tasks : task list;  (** reverse insertion order *)
  mutable n_tasks : int;
  mutable vclock_ms : float;
  mutable steps : int;
  mutable instructions : int;
  mutable parks : int;
  mutable unparks : int;
  mutable dirty : bool;  (** a post/unpark may have made a task deliverable *)
}

let default_quantum = 2_000

let create ?(quantum = default_quantum) () =
  {
    quantum = max 1 quantum;
    tasks = [];
    n_tasks = 0;
    vclock_ms = 0.;
    steps = 0;
    instructions = 0;
    parks = 0;
    unparks = 0;
    dirty = false;
  }

let add ?on_deliver t server =
  let task =
    {
      sk_id = t.n_tasks;
      sk_server = server;
      (* The first turn boots the process (or finds it idle) — either way
         one [step] settles the true state. *)
      sk_state = Runnable;
      sk_front = [];
      sk_back = [];
      sk_pending = None;
      sk_base_icount = server.Server.proc.Process.cpu.Vm.Cpu.icount;
      sk_vtime_ms = 0.;
      sk_delivered = 0;
      sk_served = 0;
      sk_span = None;
      sk_on_deliver = on_deliver;
    }
  in
  t.tasks <- task :: t.tasks;
  t.n_tasks <- t.n_tasks + 1;
  task

let inbox_empty task = task.sk_front = [] && task.sk_back = []

let pop_inbox task =
  match task.sk_front with
  | msg :: rest ->
    task.sk_front <- rest;
    Some msg
  | [] -> (
    match List.rev task.sk_back with
    | msg :: rest ->
      task.sk_front <- rest;
      task.sk_back <- [];
      Some msg
    | [] -> None)

let post t task payload =
  task.sk_back <- payload :: task.sk_back;
  t.dirty <- true

let unpark t task =
  (match task.sk_state with
  | Parked _ ->
    task.sk_state <- Waiting;
    t.unparks <- t.unparks + 1
  | _ -> ());
  t.dirty <- true

let vtime_ms task = task.sk_vtime_ms
let vclock_ms t = t.vclock_ms
let instructions t = t.instructions
let steps t = t.steps
let parks t = t.parks
let unparks t = t.unparks
let tasks t = List.rev t.tasks

(** Register scheduler-wide gauges (turns, instructions, parks/unparks,
    virtual clock) in a metrics registry. *)
let register_metrics t registry =
  let gauge name help f =
    Obs.Metrics.gauge_fn ~registry ~help name (fun () -> float_of_int (f ()))
  in
  gauge "sweeper_sched_steps" "scheduling turns taken" (fun () -> t.steps);
  gauge "sweeper_sched_instructions" "instructions run under the scheduler"
    (fun () -> t.instructions);
  gauge "sweeper_sched_parks" "tasks parked on events" (fun () -> t.parks);
  gauge "sweeper_sched_unparks" "parked tasks returned to service" (fun () ->
      t.unparks);
  Obs.Metrics.gauge_fn ~registry ~help:"scheduler virtual clock (simulated ms)"
    "sweeper_sched_vclock_ms" (fun () -> t.vclock_ms)

let event_outcome = function
  | Filtered _ -> "filtered"
  | Served _ -> "served"
  | Crashed _ -> "crashed"
  | Infected _ -> "infected"
  | Stopped -> "stopped"
  | Raised _ -> "raised"

(* Close the open serve span, stamping the task's (just-accounted) virtual
   time as the end timestamp. *)
let close_span ~outcome task =
  match task.sk_span with
  | None -> ()
  | Some sp ->
    Obs.Trace.end_span ~vts_ms:task.sk_vtime_ms
      ~args:[ ("outcome", outcome) ]
      sp;
    task.sk_span <- None

(* Move inbox messages into the network log until one is admitted (filters
   reject at delivery time, like a drop at the proxy). *)
let rec deliver t handler task =
  match pop_inbox task with
  | None -> ()
  | Some payload -> (
    (match task.sk_on_deliver with Some f -> f payload | None -> ());
    match Process.send_message task.sk_server.Server.proc payload with
    | Error filter ->
      handler task (Filtered (filter, payload));
      deliver t handler task
    | Ok id ->
      task.sk_pending <- Some id;
      task.sk_delivered <- task.sk_delivered + 1;
      if Obs.Trace.enabled () then
        task.sk_span <-
          Some
            (Obs.Trace.begin_span ~cat:"sched" ~pid:task.sk_server.Server.id
               ~tid:task.sk_id ~vts_ms:task.sk_vtime_ms
               ~args:[ ("msg", string_of_int id) ]
               "serve");
      task.sk_state <- Runnable)

let account t task before =
  let cpu = task.sk_server.Server.proc.Process.cpu in
  t.instructions <- t.instructions + max 0 (cpu.Vm.Cpu.icount - before);
  task.sk_vtime_ms <-
    float_of_int (cpu.Vm.Cpu.icount - task.sk_base_icount)
    /. float_of_int Server.instrs_per_ms;
  if task.sk_vtime_ms > t.vclock_ms then t.vclock_ms <- task.sk_vtime_ms

let step_task t handler task =
  let before = task.sk_server.Server.proc.Process.cpu.Vm.Cpu.icount in
  let park ev =
    t.parks <- t.parks + 1;
    close_span ~outcome:(event_outcome ev) task;
    task.sk_state <- Parked ev;
    handler task ev
  in
  (match Server.step ~fuel:t.quantum task.sk_server with
  | exception e ->
    account t task before;
    t.steps <- t.steps + 1;
    park (Raised e)
  | outcome ->
    account t task before;
    t.steps <- t.steps + 1;
    (match outcome with
    | Server.Yielded -> ()
    | Server.Ended Server.Idle ->
      (match task.sk_pending with
      | Some id ->
        task.sk_pending <- None;
        task.sk_served <- task.sk_served + 1;
        close_span ~outcome:"served" task;
        handler task (Served id)
      | None -> ());
      (* Only downgrade to Waiting if the handler (on Served) did not
         already repark or otherwise move the task. *)
      if task.sk_state = Runnable then begin
        task.sk_state <- Waiting;
        deliver t handler task
      end
    | Server.Ended Server.Stopped -> park Stopped
    | Server.Ended (Server.Crashed f) -> park (Crashed f)
    | Server.Ended (Server.Infected cmd) -> park (Infected cmd)))

(* The runnable task furthest behind in virtual time; ties go to the
   lowest id, so scheduling is deterministic. *)
let select t =
  List.fold_left
    (fun best task ->
      match (task.sk_state, best) with
      | Runnable, None -> Some task
      | Runnable, Some b ->
        if
          task.sk_vtime_ms < b.sk_vtime_ms
          || (task.sk_vtime_ms = b.sk_vtime_ms && task.sk_id < b.sk_id)
        then Some task
        else Some b
      | _ -> best)
    None t.tasks

let flush_deliveries t handler =
  t.dirty <- false;
  List.iter
    (fun task ->
      if task.sk_state = Waiting && not (inbox_empty task) then
        deliver t handler task)
    t.tasks

(** Run until quiescent: no task is runnable and no waiting task has mail.
    Parked tasks stay parked unless the [handler] repairs and unparks
    them; their remaining inbox is simply never delivered. *)
let run ?(handler = fun _ _ -> ()) t =
  flush_deliveries t handler;
  let rec loop () =
    if t.dirty then flush_deliveries t handler;
    match select t with
    | Some task ->
      step_task t handler task;
      loop ()
    | None -> if t.dirty then loop () else ()
  in
  loop ()
