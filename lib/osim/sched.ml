(** Cooperative multi-host scheduler.

    Interleaves many {!Server} processes in simulated time: each task gets
    a quantum of instructions per turn via the non-blocking
    {!Server.step}, and a virtual clock derived from
    {!Server.instrs_per_ms} decides who runs next (the runnable task
    furthest behind in virtual time). Because {!Server.step} checkpoints
    at the same icount thresholds as a blocking run, and each host only
    ever consumes its own inbox in order, interleaved execution is
    instruction-for-instruction identical per host to running the hosts
    sequentially — which is what makes community-scale runs trustworthy as
    stand-ins for the serial experiments.

    Scheduling is O(log n) per turn: runnable tasks live in a binary
    min-heap keyed on (virtual time, task id) with lazy invalidation (a
    per-task generation counter stales old entries), and waiting tasks
    with undelivered mail sit on an explicit pending-delivery queue — no
    per-turn scan of the whole task list.

    The scheduler itself is policy-free: crashes, infections, and vetoes
    raised by monitoring hooks are surfaced as events to a driver callback
    (see {!Sweeper.Defense}), which may repair the host and {!unpark} it.
    For the domain-sharded community the same events can instead be
    {e reified}: {!step_until} runs the core loop up to a virtual-time
    barrier and appends every event to a bounded {!outbox}, so a cluster
    driver applies cross-host effects between windows rather than inline
    (see {!Cluster}). *)

type event =
  | Filtered of string * string
      (** an input filter rejected the message at delivery: filter name,
          payload *)
  | Served of int      (** the message with this log id was fully served *)
  | Crashed of Vm.Event.fault
  | Infected of string
  | Stopped
  | Raised of exn
      (** a monitoring hook aborted execution (e.g. a VSEF veto); the
          driver owns the exception *)

type state = Runnable | Waiting | Parked of event

(** An inbox entry: the payload plus the sender provenance stamped into
    the host's network log at delivery ({!Netlog.provenance}). *)
type mail = {
  ml_src : int;  (** sending host id; [-1] = external/driver *)
  ml_seq : int;  (** per-source sequence number *)
  ml_payload : string;
}

type task = {
  sk_id : int;
  sk_server : Server.t;
  mutable sk_state : state;
  mutable sk_front : mail list;  (** inbox: pop end *)
  mutable sk_back : mail list;   (** inbox: push end, reversed *)
  mutable sk_pending : int option; (** log id of the message in flight *)
  sk_base_icount : int;
  mutable sk_vtime_ms : float;     (** per-task virtual clock *)
  mutable sk_delivered : int;
  mutable sk_served : int;
  mutable sk_span : Obs.Trace.span option;
      (** the open per-message serve span (delivery to Served/park) *)
  sk_on_deliver : (string -> unit) option;
      (** runs just before a message enters the host's network log *)
  mutable sk_hseq : int;
      (** ready-heap generation: entries carrying an older value are
          stale and skipped on pop *)
  mutable sk_queued : bool;  (** sitting on the pending-delivery queue *)
}

(* A ready-heap entry. At most one entry per task is valid at any moment:
   every push bumps the task's generation first, staling all earlier
   entries, so lazy deletion never double-runs a task. *)
type entry = { e_vt : float; e_id : int; e_seq : int; e_task : task }

type effect_ = {
  fx_vtime : float;  (** the task's virtual time when the event fired *)
  fx_task : task;
  fx_event : event;
}

(** A bounded buffer of reified scheduler events. The bound is a
    low-water mark checked between turns: a single turn may append the
    handful of events it produces past the limit, but nothing is ever
    dropped — {!step_until} returns [Backpressure] and the driver drains
    before resuming. *)
type outbox = {
  ob_limit : int;
  mutable ob_rev : effect_ list;
  mutable ob_len : int;
}

let make_outbox ~limit () = { ob_limit = max 1 limit; ob_rev = []; ob_len = 0 }
let outbox_length ob = ob.ob_len

let outbox_drain ob =
  let items = List.rev ob.ob_rev in
  ob.ob_rev <- [];
  ob.ob_len <- 0;
  items

type stop =
  | Barrier       (** every runnable task has reached the barrier time *)
  | Quiescent     (** nothing runnable, no waiting task has mail *)
  | Backpressure  (** the outbox hit its bound; drain it and resume *)

type t = {
  quantum : int;  (** instructions per scheduling turn *)
  mutable tasks : task list;  (** reverse insertion order *)
  mutable n_tasks : int;
  mutable vclock_ms : float;
  mutable steps : int;
  mutable instructions : int;
  mutable parks : int;
  mutable unparks : int;
  mutable backpressures : int;  (** [step_until] stops due to a full outbox *)
  mutable heap : entry array;   (** binary min-heap on (vtime, id) *)
  mutable heap_len : int;
  pending : task Queue.t;
      (** waiting tasks with undelivered mail, in posting order *)
}

let default_quantum = 2_000

let create ?(quantum = default_quantum) () =
  {
    quantum = max 1 quantum;
    tasks = [];
    n_tasks = 0;
    vclock_ms = 0.;
    steps = 0;
    instructions = 0;
    parks = 0;
    unparks = 0;
    backpressures = 0;
    heap = [||];
    heap_len = 0;
    pending = Queue.create ();
  }

(* ------------------------------------------------------------------ *)
(* Ready heap                                                          *)
(* ------------------------------------------------------------------ *)

let entry_less a b = a.e_vt < b.e_vt || (a.e_vt = b.e_vt && a.e_id < b.e_id)

let heap_push t e =
  if t.heap_len = Array.length t.heap then begin
    let cap = max 64 (2 * t.heap_len) in
    let bigger = Array.make cap e in
    Array.blit t.heap 0 bigger 0 t.heap_len;
    t.heap <- bigger
  end;
  let i = ref t.heap_len in
  t.heap_len <- t.heap_len + 1;
  t.heap.(!i) <- e;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_less t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue_ := false
  done

let heap_remove_root t =
  t.heap_len <- t.heap_len - 1;
  if t.heap_len > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_len);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.heap_len && entry_less t.heap.(l) t.heap.(!smallest) then
        smallest := l;
      if r < t.heap_len && entry_less t.heap.(r) t.heap.(!smallest) then
        smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue_ := false
    done
  end

let entry_valid e = e.e_seq = e.e_task.sk_hseq && e.e_task.sk_state = Runnable

(* The valid minimum entry, pruning stale roots; leaves it in the heap. *)
let rec peek_runnable t =
  if t.heap_len = 0 then None
  else begin
    let e = t.heap.(0) in
    if entry_valid e then Some e.e_task
    else begin
      heap_remove_root t;
      peek_runnable t
    end
  end

(* Mark [task] runnable-ready at its current virtual time. Bumping the
   generation first invalidates any earlier entry, preserving the
   one-valid-entry invariant. *)
let ready t task =
  task.sk_hseq <- task.sk_hseq + 1;
  heap_push t
    { e_vt = task.sk_vtime_ms; e_id = task.sk_id; e_seq = task.sk_hseq;
      e_task = task }

(* ------------------------------------------------------------------ *)
(* Tasks, inboxes, pending deliveries                                  *)
(* ------------------------------------------------------------------ *)

let add ?on_deliver t server =
  let task =
    {
      sk_id = t.n_tasks;
      sk_server = server;
      (* The first turn boots the process (or finds it idle) — either way
         one [step] settles the true state. *)
      sk_state = Runnable;
      sk_front = [];
      sk_back = [];
      sk_pending = None;
      sk_base_icount = server.Server.proc.Process.cpu.Vm.Cpu.icount;
      sk_vtime_ms = 0.;
      sk_delivered = 0;
      sk_served = 0;
      sk_span = None;
      sk_on_deliver = on_deliver;
      sk_hseq = 0;
      sk_queued = false;
    }
  in
  t.tasks <- task :: t.tasks;
  t.n_tasks <- t.n_tasks + 1;
  ready t task;
  task

let inbox_empty task = task.sk_front = [] && task.sk_back = []

let pop_inbox task =
  match task.sk_front with
  | msg :: rest ->
    task.sk_front <- rest;
    Some msg
  | [] -> (
    match List.rev task.sk_back with
    | msg :: rest ->
      task.sk_front <- rest;
      task.sk_back <- [];
      Some msg
    | [] -> None)

let enqueue_delivery t task =
  if
    (not task.sk_queued) && task.sk_state = Waiting
    && not (inbox_empty task)
  then begin
    task.sk_queued <- true;
    Queue.push task t.pending
  end

(* One flow id per (source host, sequence) pair: deterministic, unique
   while a source emits fewer than 2^20 messages, and collisions only
   cosmetically misdraw an arrow. *)
let flow_id ~src ~seq = (src lsl 20) lor (seq land 0xFFFFF)

let post ?(src = -1) ?(seq = 0) t task payload =
  task.sk_back <- { ml_src = src; ml_seq = seq; ml_payload = payload }
                  :: task.sk_back;
  if src >= 0 && Obs.Trace.enabled () then
    Obs.Trace.flow_start ~cat:"net" ~pid:src ~id:(flow_id ~src ~seq) "msg";
  enqueue_delivery t task

let unpark t task =
  match task.sk_state with
  | Parked _ ->
    task.sk_state <- Waiting;
    t.unparks <- t.unparks + 1;
    enqueue_delivery t task
  | _ -> ()

let vtime_ms task = task.sk_vtime_ms
let vclock_ms t = t.vclock_ms
let instructions t = t.instructions
let steps t = t.steps
let parks t = t.parks
let unparks t = t.unparks
let backpressures t = t.backpressures
let tasks t = List.rev t.tasks

(** Register scheduler-wide gauges (turns, instructions, parks/unparks,
    virtual clock) in a metrics registry. *)
let register_metrics t registry =
  let gauge name help f =
    Obs.Metrics.gauge_fn ~registry ~help name (fun () -> float_of_int (f ()))
  in
  gauge "sweeper_sched_steps" "scheduling turns taken" (fun () -> t.steps);
  gauge "sweeper_sched_instructions" "instructions run under the scheduler"
    (fun () -> t.instructions);
  gauge "sweeper_sched_parks" "tasks parked on events" (fun () -> t.parks);
  gauge "sweeper_sched_unparks" "parked tasks returned to service" (fun () ->
      t.unparks);
  gauge "sweeper_sched_backpressures" "step_until stops on a full outbox"
    (fun () -> t.backpressures);
  Obs.Metrics.gauge_fn ~registry ~help:"scheduler virtual clock (simulated ms)"
    "sweeper_sched_vclock_ms" (fun () -> t.vclock_ms)

let event_outcome = function
  | Filtered _ -> "filtered"
  | Served _ -> "served"
  | Crashed _ -> "crashed"
  | Infected _ -> "infected"
  | Stopped -> "stopped"
  | Raised _ -> "raised"

(* Close the open serve span, stamping the task's (just-accounted) virtual
   time as the end timestamp. *)
let close_span ~outcome task =
  match task.sk_span with
  | None -> ()
  | Some sp ->
    Obs.Trace.end_span ~vts_ms:task.sk_vtime_ms
      ~args:[ ("outcome", outcome) ]
      sp;
    task.sk_span <- None

(* Move inbox messages into the network log until one is admitted (filters
   reject at delivery time, like a drop at the proxy). *)
let rec deliver t handler task =
  match pop_inbox task with
  | None -> ()
  | Some { ml_src = src; ml_seq = seq; ml_payload = payload } -> (
    (match task.sk_on_deliver with Some f -> f payload | None -> ());
    match
      Process.send_message ~src ~seq ~vtime:task.sk_vtime_ms
        task.sk_server.Server.proc payload
    with
    | Error filter ->
      handler task (Filtered (filter, payload));
      deliver t handler task
    | Ok id ->
      task.sk_pending <- Some id;
      task.sk_delivered <- task.sk_delivered + 1;
      if Obs.Trace.enabled () then begin
        task.sk_span <-
          Some
            (Obs.Trace.begin_span ~cat:"sched" ~pid:task.sk_server.Server.id
               ~tid:task.sk_id ~vts_ms:task.sk_vtime_ms
               ~args:[ ("msg", string_of_int id) ]
               "serve");
        (* Close the sender→receiver arrow inside the serve span. *)
        if src >= 0 then
          Obs.Trace.flow_finish ~cat:"net" ~pid:task.sk_server.Server.id
            ~tid:task.sk_id ~vts_ms:task.sk_vtime_ms ~id:(flow_id ~src ~seq)
            "msg"
      end;
      task.sk_state <- Runnable;
      ready t task)

let drain_pending t handler =
  while not (Queue.is_empty t.pending) do
    let task = Queue.pop t.pending in
    task.sk_queued <- false;
    if task.sk_state = Waiting && not (inbox_empty task) then
      deliver t handler task
  done

let account t task before =
  let cpu = task.sk_server.Server.proc.Process.cpu in
  t.instructions <- t.instructions + max 0 (cpu.Vm.Cpu.icount - before);
  task.sk_vtime_ms <-
    float_of_int (cpu.Vm.Cpu.icount - task.sk_base_icount)
    /. float_of_int Server.instrs_per_ms;
  if task.sk_vtime_ms > t.vclock_ms then t.vclock_ms <- task.sk_vtime_ms

let step_task t handler task =
  let before = task.sk_server.Server.proc.Process.cpu.Vm.Cpu.icount in
  let park ev =
    t.parks <- t.parks + 1;
    close_span ~outcome:(event_outcome ev) task;
    task.sk_state <- Parked ev;
    handler task ev
  in
  (match Server.step ~fuel:t.quantum task.sk_server with
  | exception e ->
    account t task before;
    t.steps <- t.steps + 1;
    park (Raised e)
  | outcome ->
    account t task before;
    t.steps <- t.steps + 1;
    (match outcome with
    | Server.Yielded -> ready t task
    | Server.Ended Server.Idle ->
      (match task.sk_pending with
      | Some id ->
        task.sk_pending <- None;
        task.sk_served <- task.sk_served + 1;
        close_span ~outcome:"served" task;
        handler task (Served id)
      | None -> ());
      (* Only downgrade to Waiting if the handler (on Served) did not
         already repark or otherwise move the task. *)
      if task.sk_state = Runnable then begin
        task.sk_state <- Waiting;
        deliver t handler task
      end
    | Server.Ended Server.Stopped -> park Stopped
    | Server.Ended (Server.Crashed f) -> park (Crashed f)
    | Server.Ended (Server.Infected cmd) -> park (Infected cmd)))

let has_runnable_before t ~until =
  (not (Queue.is_empty t.pending))
  ||
  match peek_runnable t with
  | Some task -> task.sk_vtime_ms < until
  | None -> false

let quiescent t = Queue.is_empty t.pending && peek_runnable t = None

(** The pure driver core: run turns while some runnable task is behind the
    virtual-time barrier [until], reifying every event into [outbox] (when
    given) as well as passing it to [handler]. Stops at the first of: all
    runnable tasks at/past the barrier ([Barrier]), nothing left to do
    ([Quiescent]), or the outbox reaching its bound ([Backpressure] — no
    event is ever dropped; drain and call again). With
    [until = infinity] and no outbox this is exactly {!run}. *)
let step_until ?(handler = fun _ _ -> ()) ?outbox t ~until =
  let emit task ev =
    (match outbox with
    | Some ob ->
      ob.ob_rev <-
        { fx_vtime = task.sk_vtime_ms; fx_task = task; fx_event = ev }
        :: ob.ob_rev;
      ob.ob_len <- ob.ob_len + 1
    | None -> ());
    handler task ev
  in
  let full () =
    match outbox with Some ob -> ob.ob_len >= ob.ob_limit | None -> false
  in
  let rec loop () =
    drain_pending t emit;
    if full () then begin
      t.backpressures <- t.backpressures + 1;
      Backpressure
    end
    else
      match peek_runnable t with
      | Some task when task.sk_vtime_ms < until ->
        heap_remove_root t;
        step_task t emit task;
        loop ()
      | Some _ -> Barrier
      | None -> if Queue.is_empty t.pending then Quiescent else loop ()
  in
  loop ()

(** Run until quiescent: no task is runnable and no waiting task has mail.
    Parked tasks stay parked unless the [handler] repairs and unparks
    them; their remaining inbox is simply never delivered. *)
let run ?(handler = fun _ _ -> ()) t =
  match step_until ~handler t ~until:infinity with
  | Quiescent -> ()
  | Barrier | Backpressure -> assert false (* no barrier, no outbox *)
