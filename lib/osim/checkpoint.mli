(** Lightweight in-memory checkpoints over a process — the Rx/FlashBack
    shadow-process analogue.

    A checkpoint captures register state, a copy-on-write memory snapshot,
    the heap break, the network-log cursor, and the syscall-result-log
    cursor. It is invisible to the protected program, and an attacker who
    corrupts the process cannot reach it (pages are copied away by the COW
    engine on first touch). *)

type t = {
  ck_id : int;
  ck_regs : Vm.Cpu.reg_snapshot;
  ck_mem : Vm.Memory.snapshot;
  ck_heap_brk : int;
  ck_net_cursor : int;
  ck_sysres_pos : int;
  ck_cur_msg : int;
  ck_icount : int;  (** dynamic instruction count at capture *)
  ck_wall : float;  (** wall-clock capture time *)
}

val take : Process.t -> t
(** Capture the current process state. O(mapped pages). *)

val rollback : Process.t -> t -> unit
(** Roll the process back. The checkpoint stays valid and can be rolled
    back to again; the arrival log and the syscall-result log are kept, so
    replay from the restored cursors is deterministic. Runs the process's
    rollback hooks (instrumentation re-seeds its shadow state there). *)

(** A bounded ring of recent checkpoints (the paper keeps the 20 most
    recent, taken every 200 ms by default). *)
type ring

val create_ring : ?capacity:int -> unit -> ring
val add : ring -> t -> unit
val latest : ring -> t option
val oldest : ring -> t option
val count : ring -> int

val purge_after : ring -> cursor:int -> unit
(** Drop every checkpoint whose network cursor is beyond [cursor]. Used by
    recovery: checkpoints taken while a now-quarantined message was in
    flight contain the attack's effects and must never be rolled back to. *)

val purge_count : ring -> int
(** Checkpoints dropped by {!purge_after} over the ring's lifetime. *)

val before_message : ring -> msg_index:int -> t option
(** The most recent checkpoint taken before the message at log index
    [msg_index] was consumed — the right rollback point for analyzing an
    attack that arrived in that message (a later checkpoint could sit
    mid-exploit). *)
