(** Domain-sharded execution: partition hosts across OCaml 5 domains and
    exchange cross-shard messages at virtual-clock barriers.

    Deterministic lockstep: virtual time is cut into windows; within a
    window every shard runs independently (own scheduler, own
    [Random.State], own metrics registry — no shared mutable state) and
    emits cross-shard messages as {!envelope} values. At each barrier the
    coordinator merges all outgoing mail in (virtual time, source shard,
    sequence) order and queues it on the destinations' bounded inbound
    mailboxes for the next window. The merge key is a pure function of
    deterministically-computed shard output, so N domains and 1 domain
    produce identical runs — the differential oracle the sharded
    community is tested against ({!Sweeper.Defense.Sharded}). *)

type topology =
  | Uniform  (** round-robin: host [h] on shard [h mod shards] *)
  | Subnet of int
      (** [Subnet k]: whole subnets of [k] hosts land on one shard *)
  | Overlay of int
      (** [Overlay d]: degree-[d] P2P overlay; placement scatters
          neighbourhoods so gossip exercises the cross-shard path *)

val place : topology -> shards:int -> host:int -> int
(** Deterministic host-to-shard placement. *)

val topology_name : topology -> string

type 'm envelope = {
  env_vtime : float;  (** sender-side virtual time of emission *)
  env_src : int;      (** source shard *)
  env_seq : int;      (** per-source emission order (restamped at merge) *)
  env_dst : int;      (** destination shard *)
  env_msg : 'm;
}

type config = {
  domains : int;        (** OCaml domains to run shards on (>= 1) *)
  shards : int;         (** shard count (>= domains, usually = domains) *)
  window_ms : float;    (** barrier window length in simulated ms *)
  mailbox_limit : int;  (** max inbound envelopes per shard per window;
                            excess is delayed to later windows, in order,
                            never dropped *)
  max_windows : int;    (** hard stop against non-quiescing drivers *)
}

val default_config : config

type 'm window_result = {
  wr_out : 'm envelope list;  (** outgoing mail, in emission order *)
  wr_done : bool;             (** shard is quiescent *)
}

type stats = {
  st_windows : int;     (** barriers executed *)
  st_exchanged : int;   (** envelopes delivered across shards *)
  st_deferred : int;    (** envelope deliveries delayed by mailbox bounds *)
}

val run :
  ?at_barrier:(window:int -> unit) ->
  config ->
  's array ->
  window:(int -> 's -> inbox:'m envelope list -> until:float -> 'm window_result) ->
  stats
(** Drive the barrier loop until every shard reports done and no mail is
    in flight. [window shard state ~inbox ~until] runs one shard's
    window on a worker domain (shard [i] on domain [i mod domains]) and
    must touch only [state] and immutable data; [inbox] arrives already
    merge-sorted. [at_barrier] runs on the calling domain after each
    exchange — the hook for metrics merging.

    When {!Obs.Trace} is enabled, every shard window runs under a span
    on pid lane [shard], and each exchange emits a ["barrier"] span on
    pid lane [shards] — one merged, well-formed Chrome trace across
    domains (the tracer is mutex-guarded).
    @raise Failure after [max_windows] windows without quiescence. *)
