(** A simulated OS process: a loaded program (app + libc images), its CPU
    and memory, the network endpoint, and the syscall layer — including the
    FlashBack-style syscall-result log that keeps re-execution
    deterministic (a replayed [gettimeofday]/[random] returns what the
    original execution saw). *)

type t = {
  cpu : Vm.Cpu.t;
  mem : Vm.Memory.t;
  layout : Vm.Layout.t;
  app_image : Vm.Asm.image;
  lib_image : Vm.Asm.image;
  net : Netlog.t;
  data_symbols : (string, int) Hashtbl.t;
  absint : Static_an.Absint.t;
      (** interval abstract interpretation of the loaded code, computed
          once per load/template: feeds bounds-proof elision in the block
          tier and static antibody feasibility checks *)
  mutable compromised : string option;
      (** [Some cmd] once the exploit reached [system]/[exec] *)
  mutable exit_code : int option;
  mutable outputs : (int * string) list;  (** serviced msg id, payload (rev) *)
  mutable responded : Netlog.Int_set.t;   (** msgs whose response was committed *)
  mutable sandbox : bool;  (** drop all outputs (analysis re-execution) *)
  mutable cur_msg : int;   (** id of the message currently being serviced *)
  mutable console : string list;  (** _log output, most recent first *)
  (* FlashBack syscall-result log: random/time results recorded on first
     execution, returned verbatim on re-execution. *)
  mutable sysres : int array;
  mutable sysres_len : int;
  mutable sysres_pos : int;
  mutable clock : int;
  rng : Random.State.t;
  (* Notification hooks run after every rollback: instrumentation that keeps
     shadow state about the process (e.g. a VSEF's allocation map) re-seeds
     itself here. *)
  mutable rollback_hooks : (int * (unit -> unit)) list;
  mutable next_rollback_hook : int;
  mutable flight : Obs.Recorder.t option;
      (** the attached VM flight recorder, if any; crash reports dump its
          ring (see {!Sweeper.Coredump}) *)
}

(** Register a callback to run after every rollback of this process.
    Returns an id for {!remove_rollback_hook}. *)
let add_rollback_hook p f =
  let id = p.next_rollback_hook in
  p.next_rollback_hook <- id + 1;
  p.rollback_hooks <- (id, f) :: p.rollback_hooks;
  id

let remove_rollback_hook p id =
  p.rollback_hooks <- List.filter (fun (i, _) -> i <> id) p.rollback_hooks

let run_rollback_hooks p = List.iter (fun (_, f) -> f ()) (List.rev p.rollback_hooks)

let images p = [ p.app_image; p.lib_image ]

(** Pretty-print an address against this process's symbol tables. *)
let describe_addr p addr = Vm.Disasm.addr_to_string ~images:(images p) addr

let logged_result p gen =
  if p.sysres_pos < p.sysres_len then begin
    let v = p.sysres.(p.sysres_pos) in
    p.sysres_pos <- p.sysres_pos + 1;
    v
  end
  else begin
    let v = gen () in
    if p.sysres_len = Array.length p.sysres then begin
      let bigger = Array.make (2 * p.sysres_len) 0 in
      Array.blit p.sysres 0 bigger 0 p.sysres_len;
      p.sysres <- bigger
    end;
    p.sysres.(p.sysres_len) <- v;
    p.sysres_len <- p.sysres_len + 1;
    p.sysres_pos <- p.sysres_len;
    v
  end

let valid_range p addr len =
  len >= 0
  && Vm.Layout.valid_data p.layout addr
  && (len = 0 || Vm.Layout.valid_data p.layout (addr + len - 1))

(* The syscall implementation. Fills the effect's [e_sys] so that
   instrumentation (taint sources, allocation tracking) can observe I/O. *)
let handle_syscall p (cpu : Vm.Cpu.t) (eff : Vm.Event.effect_) sysno =
  let open Vm in
  let r0 = Cpu.get_reg cpu R0 and r1 = Cpu.get_reg cpu R1 in
  if sysno = Sysno.sys_exit then begin
    p.exit_code <- Some r0;
    cpu.halted <- true;
    eff.e_sys <- Event.Io_exit r0
  end
  else if sysno = Sysno.sys_recv then begin
    match Netlog.next_for_recv p.net with
    | None -> raise Event.Blocked
    | Some m ->
      let payload = m.Netlog.m_payload in
      let n = min (String.length payload) (max 0 (r1 - 1)) in
      if not (valid_range p r0 (n + 1)) then Cpu.set_reg cpu R0 (-1)
      else begin
        Memory.store_bytes p.mem r0 (String.sub payload 0 n);
        Memory.store_byte p.mem (r0 + n) 0;
        p.cur_msg <- m.Netlog.m_id;
        Cpu.set_reg cpu R0 n;
        eff.e_sys <- Event.Io_recv { buf = r0; len = n; msg_id = m.Netlog.m_id }
      end
  end
  else if sysno = Sysno.sys_send then begin
    if not (valid_range p r0 r1) then Cpu.set_reg cpu R0 (-1)
    else begin
      let data = Memory.load_bytes p.mem r0 r1 in
      (* Output commit: during re-execution, responses for messages already
         answered are suppressed instead of being sent twice. *)
      if p.sandbox then ()
      else if Netlog.Int_set.mem p.cur_msg p.responded then ()
      else begin
        p.outputs <- (p.cur_msg, data) :: p.outputs;
        p.responded <- Netlog.Int_set.add p.cur_msg p.responded
      end;
      Cpu.set_reg cpu R0 r1;
      eff.e_sys <- Event.Io_send { buf = r0; len = r1 }
    end
  end
  else if sysno = Sysno.sys_malloc then begin
    match Vm.Alloc.malloc p.mem p.layout r0 with
    | Some ptr ->
      Cpu.set_reg cpu R0 ptr;
      eff.e_sys <- Event.Io_alloc { ptr; size = r0 }
    | None -> Cpu.set_reg cpu R0 0
  end
  else if sysno = Sysno.sys_free then begin
    let status = Vm.Alloc.free p.mem p.layout r0 in
    Cpu.set_reg cpu R0 0;
    eff.e_sys <- Event.Io_free { ptr = r0; status }
  end
  else if sysno = Sysno.sys_log then begin
    let s = Memory.load_cstring p.mem r0 in
    p.console <- s :: p.console;
    Cpu.set_reg cpu R0 0;
    eff.e_sys <- Event.Io_other s
  end
  else if sysno = Sysno.sys_exec then begin
    let cmd = Memory.load_cstring p.mem r0 in
    p.compromised <- Some cmd;
    cpu.halted <- true;
    eff.e_sys <- Event.Io_exec { cmd }
  end
  else if sysno = Sysno.sys_random then
    Cpu.set_reg cpu R0 (logged_result p (fun () -> Random.State.bits p.rng))
  else if sysno = Sysno.sys_time then
    Cpu.set_reg cpu R0
      (logged_result p (fun () ->
           p.clock <- p.clock + 1;
           p.clock))
  else Cpu.set_reg cpu R0 (-1)

(* The process entry stub: call main, then exit with its result. *)
let start_unit =
  Vm.Asm.make_unit "_start"
    [
      Vm.Asm.Label "_start";
      Vm.Asm.Ins (Vm.Isa.Call (Vm.Isa.Lbl "main"));
      Vm.Asm.Ins (Vm.Isa.Syscall Vm.Sysno.sys_exit);
      Vm.Asm.Ins Vm.Isa.Halt;
    ]

(** Load a compiled application and the C library into a fresh process.

    @param aslr randomize library/heap/stack bases (default true)
    @param seed PRNG seed: drives both layout randomization and the
    process's [random] syscall, making whole experiments reproducible. *)
let load ?(aslr = true) ?(seed = 0) (app : Minic.Codegen.compiled) =
  let rng = Random.State.make [| seed; 0x511EE9 |] in
  let layout =
    Vm.Layout.create ~aslr ~rand:(fun bits -> Random.State.int rng (1 lsl bits)) ()
  in
  let mem = Vm.Memory.create () in
  let libc = Minic.Driver.libc () in
  (* Place data items (globals and string literals) of both units. *)
  let data_symbols = Hashtbl.create 64 in
  let cursor = ref layout.Vm.Layout.data_base in
  let place (d : Minic.Sema.tdata) =
    let addr = (!cursor + 3) / 4 * 4 in
    Hashtbl.replace data_symbols d.d_sym addr;
    (match d.d_init with
    | Some bytes -> Vm.Memory.store_bytes mem addr bytes
    | None -> ());
    cursor := addr + d.d_size
  in
  List.iter place libc.data;
  List.iter place app.data;
  if !cursor > layout.Vm.Layout.data_limit then
    failwith "Process.load: data segment overflow";
  let data_extern s = Hashtbl.find_opt data_symbols s in
  (* Library image at the (possibly randomized) lib base. *)
  let lib_image =
    Vm.Asm.load ~extern:data_extern ~base:layout.Vm.Layout.lib_code_base
      [ libc.unit_ ]
  in
  let lib_extern s =
    match Hashtbl.find_opt lib_image.Vm.Asm.symbols s with
    | Some a -> Some a
    | None -> data_extern s
  in
  let app_image =
    Vm.Asm.load ~extern:lib_extern ~base:layout.Vm.Layout.app_code_base
      [ start_unit; app.unit_ ]
  in
  let layout =
    Vm.Layout.set_code_limits layout ~app_limit:app_image.Vm.Asm.limit
      ~lib_limit:lib_image.Vm.Asm.limit
  in
  Vm.Alloc.init mem layout;
  (* The CPU's code store: both images' dense segments. *)
  let code = Vm.Program.merge [ lib_image.Vm.Asm.code; app_image.Vm.Asm.code ] in
  let cpu = Vm.Cpu.create ~mem ~layout ~code in
  let entry = Vm.Asm.symbol app_image "_start" in
  (* Interval abstract interpretation over the whole code store, seeded
     at the process entry point with the initial stack pointer. Its
     proven-safe access facts drive bounds-check elision in the block
     tier below and static antibody feasibility checks later. *)
  let absint =
    Static_an.Absint.analyze ~entries:[ entry ]
      ~init_sp:(layout.Vm.Layout.stack_top - 16) ~layout code
  in
  (* Engage the block-superinstruction tier: recover the CFG once at
     load time and compile every basic block. Hooked or invalidated
     blocks demote themselves to the per-instruction tiers, so this is
     transparent to every analysis attached later. *)
  Vm.Block_compile.install
    ~safe_of:(Static_an.Absint.safe_range absint)
    cpu
    (Static_an.Cfg.block_bounds (Static_an.Cfg.build code));
  cpu.Vm.Cpu.pc <- entry;
  Vm.Cpu.set_reg cpu Vm.Isa.SP (layout.Vm.Layout.stack_top - 16);
  let p =
    {
      cpu;
      mem;
      layout;
      app_image;
      lib_image;
      net = Netlog.create ();
      data_symbols;
      absint;
      compromised = None;
      exit_code = None;
      outputs = [];
      responded = Netlog.Int_set.empty;
      sandbox = false;
      cur_msg = -1;
      console = [];
      sysres = Array.make 64 0;
      sysres_len = 0;
      sysres_pos = 0;
      clock = 0;
      rng;
      rollback_hooks = [];
      next_rollback_hook = 0;
      flight = None;
    }
  in
  cpu.Vm.Cpu.sys_handler <- (fun cpu eff n -> handle_syscall p cpu eff n);
  p

(** A loaded-but-never-run master copy of a process, for stamping out
    identical hosts without re-linking. {!load} is dominated by placement,
    assembly/linking of both images, CFG recovery, and basic-block
    compilation — all of it identical for every host sharing a layout
    seed. A template runs that pipeline once; {!instantiate} then clones
    the address space copy-on-write and rebinds a fresh CPU, so per-host
    cost drops to O(mapped pages) pointer copies plus block re-install.

    The template's own process must never execute (its memory is the
    shared baseline every clone COWs against), which is why the type is
    abstract. *)
type template = {
  tpl_proc : t;
  tpl_regs : Vm.Cpu.reg_snapshot;
  tpl_bounds : (int * int) array;  (** CFG block bounds, computed once *)
}

(** Build a template: one full {!load} plus one CFG recovery. *)
let template ?(aslr = true) ?(seed = 0) compiled =
  let p = load ~aslr ~seed compiled in
  {
    tpl_proc = p;
    tpl_regs = Vm.Cpu.snapshot_regs p.cpu;
    tpl_bounds =
      Static_an.Cfg.block_bounds (Static_an.Cfg.build p.cpu.Vm.Cpu.code);
  }

(** Instantiate a fresh process from a template. Behaviourally identical
    to [load ~aslr ~seed compiled] with the template's parameters: the
    address space is a COW clone, the register file (including [icount])
    is restored from the post-load snapshot, the PRNG state is a copy of
    the post-load state (layout draws already consumed), and the basic
    blocks are recompiled from the cached bounds against the new CPU.
    Clones share the template's layout (one ASLR draw per template — use a
    pool of templates over distinct seeds to keep population diversity)
    and share its images, code, and symbol tables read-only. *)
let instantiate tpl =
  let src = tpl.tpl_proc in
  let mem = Vm.Memory.clone src.mem in
  let layout = Vm.Layout.copy src.layout in
  let cpu = Vm.Cpu.create ~mem ~layout ~code:src.cpu.Vm.Cpu.code in
  Vm.Cpu.restore_regs cpu tpl.tpl_regs;
  Vm.Block_compile.install
    ~safe_of:(Static_an.Absint.safe_range src.absint)
    cpu tpl.tpl_bounds;
  let p =
    {
      cpu;
      mem;
      layout;
      app_image = src.app_image;
      lib_image = src.lib_image;
      net = Netlog.create ();
      data_symbols = src.data_symbols;
      absint = src.absint;
      compromised = None;
      exit_code = None;
      outputs = [];
      responded = Netlog.Int_set.empty;
      sandbox = false;
      cur_msg = -1;
      console = [];
      sysres = Array.make 64 0;
      sysres_len = 0;
      sysres_pos = 0;
      clock = 0;
      rng = Random.State.copy src.rng;
      rollback_hooks = [];
      next_rollback_hook = 0;
      flight = None;
    }
  in
  cpu.Vm.Cpu.sys_handler <- (fun cpu eff n -> handle_syscall p cpu eff n);
  p

(** Run the process until it halts, blocks on input, faults, or exhausts
    [fuel] instructions. *)
let run ?fuel p = Vm.Cpu.run ?fuel p.cpu

(** Deliver a network message (through the filters), stamping its
    provenance: sending host [src], per-source sequence [seq], and the
    receiver-side arrival virtual time [vtime]. *)
let send_message ?src ?seq ?vtime p payload =
  Netlog.arrive ?src ?seq ?vtime p.net payload

(** Responses committed so far, oldest first. *)
let committed_outputs p = List.rev p.outputs

(** Address of the [system] routine in this process's libc — the
    return-to-libc target an exploit must guess under ASLR. *)
let system_addr p = Vm.Asm.symbol p.lib_image "system"
