(** Cooperative multi-host scheduler.

    Interleaves many {!Server} processes in simulated time using the
    non-blocking {!Server.step}: each turn runs one task for a quantum of
    instructions, and a virtual clock derived from {!Server.instrs_per_ms}
    picks the runnable task furthest behind. Per-host execution is
    instruction-for-instruction identical to running the hosts
    sequentially (checkpoints land at the same icount thresholds and each
    host consumes only its own inbox in order), which the scheduler test
    suite asserts.

    Turn selection is O(log n): runnable tasks live in a binary min-heap
    keyed on (virtual time, id) with lazy invalidation, and tasks with
    undelivered mail sit on an explicit pending-delivery queue instead of
    being found by scanning.

    The scheduler is policy-free: crashes, infections, and exceptions
    raised by monitoring hooks (VSEF vetoes) park the task and surface as
    events to the driver's handler, which may repair the host and
    {!unpark} it. {!step_until} additionally reifies the event stream into
    a bounded {!outbox} and stops at a virtual-time barrier — the building
    block the domain-sharded community ({!Cluster}) drives windows with. *)

type event =
  | Filtered of string * string
      (** an input filter rejected the message at delivery: filter name,
          payload *)
  | Served of int      (** the message with this log id was fully served *)
  | Crashed of Vm.Event.fault
  | Infected of string
  | Stopped
  | Raised of exn
      (** a monitoring hook aborted execution (e.g. a VSEF veto); the
          driver owns the exception *)

type state = Runnable | Waiting | Parked of event

(** An inbox entry: the payload plus the sender provenance stamped into
    the host's network log at delivery ({!Netlog.provenance}). *)
type mail = {
  ml_src : int;  (** sending host id; [-1] = external/driver *)
  ml_seq : int;  (** per-source sequence number *)
  ml_payload : string;
}

type task = {
  sk_id : int;
  sk_server : Server.t;
  mutable sk_state : state;
  mutable sk_front : mail list;
  mutable sk_back : mail list;
  mutable sk_pending : int option;  (** log id of the message in flight *)
  sk_base_icount : int;
  mutable sk_vtime_ms : float;      (** per-task virtual clock *)
  mutable sk_delivered : int;
  mutable sk_served : int;
  mutable sk_span : Obs.Trace.span option;
      (** the open per-message serve span (delivery to Served/park) *)
  sk_on_deliver : (string -> unit) option;
  mutable sk_hseq : int;    (** ready-heap entry generation (internal) *)
  mutable sk_queued : bool; (** on the pending-delivery queue (internal) *)
}

type t

val default_quantum : int
(** 2000 instructions (0.4 simulated ms) per scheduling turn. *)

val create : ?quantum:int -> unit -> t

val add : ?on_deliver:(string -> unit) -> t -> Server.t -> task
(** Register a server. [on_deliver] runs just before each of its inbox
    messages enters the host's network log (antibody sync, accounting). *)

val post : ?src:int -> ?seq:int -> t -> task -> string -> unit
(** Queue a message on the task's inbox. Delivery happens when the host is
    idle; input filters can still reject it then ({!event.Filtered}).
    [src]/[seq] are the sender's provenance, stamped into the host's
    network log at delivery together with the task's virtual arrival
    time (defaults: external). When tracing is on and [src >= 0], a
    Chrome flow arrow links the post to the receiver's serve span. *)

val unpark : t -> task -> unit
(** Return a parked task to service after the driver repaired its host
    (e.g. rollback recovery). The host must be serviceable again, or the
    task will immediately park on the same condition. *)

val run : ?handler:(task -> event -> unit) -> t -> unit
(** Run until quiescent: no task runnable, no waiting task with mail.
    [handler] observes every event and may call {!post} and {!unpark}. *)

(** {1 Reified driving — the sharded-community core} *)

type effect_ = {
  fx_vtime : float;  (** the task's virtual time when the event fired *)
  fx_task : task;
  fx_event : event;
}

type outbox
(** A bounded buffer of reified scheduler events. The bound is a
    low-water mark checked between turns — a turn may append its handful
    of events past the limit, but nothing is ever dropped; {!step_until}
    reports [Backpressure] and the driver drains before resuming. *)

val make_outbox : limit:int -> unit -> outbox
val outbox_length : outbox -> int

val outbox_drain : outbox -> effect_ list
(** Take the buffered effects, oldest first, leaving the outbox empty. *)

type stop =
  | Barrier       (** every runnable task has reached the barrier time *)
  | Quiescent     (** nothing runnable, no waiting task has mail *)
  | Backpressure  (** the outbox hit its bound; drain it and resume *)

val step_until :
  ?handler:(task -> event -> unit) -> ?outbox:outbox -> t -> until:float ->
  stop
(** The pure driver core: run turns while some runnable task is behind
    the virtual-time barrier [until] (simulated ms), appending every
    event to [outbox] (when given) as well as invoking [handler].
    [run] is [step_until ~until:infinity] without an outbox. *)

val has_runnable_before : t -> until:float -> bool
(** Would {!step_until} with this barrier make progress right now? (True
    when a runnable task sits behind [until]; pending deliveries count
    via the task they would wake.) *)

val quiescent : t -> bool

val vtime_ms : task -> float
val vclock_ms : t -> float

val instructions : t -> int
(** Total instructions executed under the scheduler. *)

val steps : t -> int
(** Scheduling turns taken. *)

val parks : t -> int
(** Tasks parked on events (crash, infection, stop, veto). *)

val unparks : t -> int
(** Parked tasks returned to service by the driver. *)

val backpressures : t -> int
(** Times {!step_until} stopped on a full outbox. *)

val register_metrics : t -> Obs.Metrics.t -> unit
(** Register scheduler-wide gauges (turns, instructions, parks/unparks,
    virtual clock) in a metrics registry. *)

val tasks : t -> task list
(** All registered tasks, in registration order. *)
