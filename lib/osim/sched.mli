(** Cooperative multi-host scheduler.

    Interleaves many {!Server} processes in simulated time using the
    non-blocking {!Server.step}: each turn runs one task for a quantum of
    instructions, and a virtual clock derived from {!Server.instrs_per_ms}
    picks the runnable task furthest behind. Per-host execution is
    instruction-for-instruction identical to running the hosts
    sequentially (checkpoints land at the same icount thresholds and each
    host consumes only its own inbox in order), which the scheduler test
    suite asserts.

    The scheduler is policy-free: crashes, infections, and exceptions
    raised by monitoring hooks (VSEF vetoes) park the task and surface as
    events to the driver's handler, which may repair the host and
    {!unpark} it. *)

type event =
  | Filtered of string * string
      (** an input filter rejected the message at delivery: filter name,
          payload *)
  | Served of int      (** the message with this log id was fully served *)
  | Crashed of Vm.Event.fault
  | Infected of string
  | Stopped
  | Raised of exn
      (** a monitoring hook aborted execution (e.g. a VSEF veto); the
          driver owns the exception *)

type state = Runnable | Waiting | Parked of event

type task = {
  sk_id : int;
  sk_server : Server.t;
  mutable sk_state : state;
  mutable sk_front : string list;
  mutable sk_back : string list;
  mutable sk_pending : int option;  (** log id of the message in flight *)
  sk_base_icount : int;
  mutable sk_vtime_ms : float;      (** per-task virtual clock *)
  mutable sk_delivered : int;
  mutable sk_served : int;
  mutable sk_span : Obs.Trace.span option;
      (** the open per-message serve span (delivery to Served/park) *)
  sk_on_deliver : (string -> unit) option;
}

type t

val default_quantum : int
(** 2000 instructions (0.4 simulated ms) per scheduling turn. *)

val create : ?quantum:int -> unit -> t

val add : ?on_deliver:(string -> unit) -> t -> Server.t -> task
(** Register a server. [on_deliver] runs just before each of its inbox
    messages enters the host's network log (antibody sync, accounting). *)

val post : t -> task -> string -> unit
(** Queue a message on the task's inbox. Delivery happens when the host is
    idle; input filters can still reject it then ({!event.Filtered}). *)

val unpark : t -> task -> unit
(** Return a parked task to service after the driver repaired its host
    (e.g. rollback recovery). The host must be serviceable again, or the
    task will immediately park on the same condition. *)

val run : ?handler:(task -> event -> unit) -> t -> unit
(** Run until quiescent: no task runnable, no waiting task with mail.
    [handler] observes every event and may call {!post} and {!unpark}. *)

val vtime_ms : task -> float
val vclock_ms : t -> float

val instructions : t -> int
(** Total instructions executed under the scheduler. *)

val steps : t -> int
(** Scheduling turns taken. *)

val parks : t -> int
(** Tasks parked on events (crash, infection, stop, veto). *)

val unparks : t -> int
(** Parked tasks returned to service by the driver. *)

val register_metrics : t -> Obs.Metrics.t -> unit
(** Register scheduler-wide gauges (turns, instructions, parks/unparks,
    virtual clock) in a metrics registry. *)

val tasks : t -> task list
(** All registered tasks, in registration order. *)
