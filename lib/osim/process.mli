(** A simulated OS process: a loaded program (app + libc images), its CPU
    and memory, the network endpoint, and the syscall layer — including the
    FlashBack-style syscall-result log that keeps re-execution
    deterministic (a replayed [time]/[random] returns what the original
    execution saw). *)

type t = {
  cpu : Vm.Cpu.t;
  mem : Vm.Memory.t;
  layout : Vm.Layout.t;
  app_image : Vm.Asm.image;
  lib_image : Vm.Asm.image;
  net : Netlog.t;
  data_symbols : (string, int) Hashtbl.t;
  absint : Static_an.Absint.t;
      (** interval abstract interpretation of the loaded code, computed
          once per load/template: feeds bounds-proof elision in the block
          tier and static antibody feasibility checks *)
  mutable compromised : string option;
      (** [Some cmd] once an exploit reached [system]/[exec] *)
  mutable exit_code : int option;
  mutable outputs : (int * string) list;  (** serviced msg id, payload (rev) *)
  mutable responded : Netlog.Int_set.t;   (** msgs whose response was committed *)
  mutable sandbox : bool;  (** drop all outputs (analysis re-execution) *)
  mutable cur_msg : int;   (** id of the message currently being serviced *)
  mutable console : string list;  (** [_log] output, most recent first *)
  mutable sysres : int array;
  mutable sysres_len : int;
  mutable sysres_pos : int;
  mutable clock : int;
  rng : Random.State.t;
  mutable rollback_hooks : (int * (unit -> unit)) list;
  mutable next_rollback_hook : int;
  mutable flight : Obs.Recorder.t option;
      (** the attached VM flight recorder, if any; crash reports dump its
          ring (see {!Sweeper.Coredump}) *)
}

val add_rollback_hook : t -> (unit -> unit) -> int
(** Register a callback to run after every rollback — instrumentation that
    keeps shadow state about the process re-seeds itself here. *)

val remove_rollback_hook : t -> int -> unit
val run_rollback_hooks : t -> unit

val images : t -> Vm.Asm.image list

val describe_addr : t -> int -> string
(** Pretty-print an address against this process's symbol tables. *)

val load : ?aslr:bool -> ?seed:int -> Minic.Codegen.compiled -> t
(** Load a compiled application (against the memoized libc) into a fresh
    process. [seed] drives both layout randomization and the process's
    [random] syscall, making whole experiments reproducible. *)

type template
(** A loaded-but-never-run master copy: the full load pipeline (placement,
    linking, CFG recovery, block compilation) executed once, held as the
    shared copy-on-write baseline for {!instantiate}. *)

val template : ?aslr:bool -> ?seed:int -> Minic.Codegen.compiled -> template

val instantiate : template -> t
(** Stamp out a process behaviourally identical to
    [load ~aslr ~seed compiled] with the template's parameters, at
    O(mapped pages) cost: COW memory clone, register/PRNG state restored
    from the post-load snapshot, basic blocks recompiled from cached
    bounds. All clones of one template share a single layout (ASLR)
    draw — pool templates over distinct seeds for population diversity. *)

val run : ?fuel:int -> t -> Vm.Cpu.outcome
(** Run until halt, input-block, fault, or fuel exhaustion. *)

val send_message :
  ?src:int -> ?seq:int -> ?vtime:float -> t -> string -> (int, string) result
(** Deliver a network message (through the input filters), stamping its
    {!Netlog.provenance}: sending host [src], per-source sequence [seq],
    and receiver-side arrival virtual time [vtime] (defaults: external). *)

val committed_outputs : t -> (int * string) list
(** Responses committed so far, oldest first. *)

val system_addr : t -> int
(** Address of libc [system] in this process — the return-to-libc target
    an exploit must guess under ASLR. *)
