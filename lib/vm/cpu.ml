(** The CPU interpreter with dynamic instrumentation.

    Execution is two-phase: each step first {e computes} the full effect
    record of the current instruction (operand values, memory addresses,
    would-be writes, control destination) without touching machine state,
    then presents it to the registered pre-hooks, and only then commits.
    This is what lets a VSEF veto a single store or control transfer before
    the corruption happens, and is the analogue of attaching PIN
    instrumentation to a running process.

    That effect record is pure overhead when nobody is listening, so the
    interpreter is tiered: {!run} consults cached hook counters and a
    per-pc presence mask, and executes unhooked instructions by direct
    interpretation ({!exec_fast}) with no intermediate record. Any
    condition the fast path cannot reproduce exactly — a syscall, a
    failing address-validity check, an unresolved symbol — makes it
    decline {e before mutating any state}, and the instruction re-executes
    on the instrumented path, so deferred-fault semantics (faults recorded
    in [e_fault], raised at commit, vetoable by a VSEF) are preserved
    byte for byte. A VSEF-hardened server therefore pays slow-path cost
    only at its hooked pcs: overhead proportional to hooked instructions. *)

type hook = Event.effect_ -> unit

(* [pre_all]/[post_all] are kept in execution (registration) order, and
   [n_pre_all]/[n_post_all] cache their lengths so the dispatcher can test
   "any global hooks?" without touching the lists. *)
type hooks = {
  mutable pre_all : (int * hook) list;
  mutable post_all : (int * hook) list;
  mutable n_pre_all : int;
  mutable n_post_all : int;
  pre_at : (int, (int * hook) list) Hashtbl.t;   (** keyed by pc *)
  post_at : (int, (int * hook) list) Hashtbl.t;  (** keyed by pc *)
  mutable n_pre_at : int;   (** cached [Hashtbl.length pre_at] *)
  mutable n_post_at : int;  (** cached [Hashtbl.length post_at] *)
  mutable next_id : int;
}

type t = {
  regs : int array;
  mutable pc : int;
  mutable flag_a : int;  (** first operand of the last [Cmp] *)
  mutable flag_b : int;  (** second operand of the last [Cmp] *)
  mem : Memory.t;
  code : Program.t;
  layout : Layout.t;
  mutable sys_handler : t -> Event.effect_ -> int -> unit;
      (** OS services; fills [e_sys] of the effect it is given *)
  mutable halted : bool;
  mutable icount : int;  (** dynamic instructions executed *)
  mutable fast_retired : int;
      (** instructions retired on the uninstrumented fast path. Batched:
          charged at each fast-run exit, never per instruction, so the
          hot loop is untouched. Monotonic — unlike [icount], rollback
          does not rewind it. *)
  mutable slow_retired : int;
      (** instructions retired on the instrumented path. Monotonic. *)
  mutable block_retired : int;
      (** instructions retired inside compiled basic-block
          superinstructions (tier 3). Batched per block. Monotonic. *)
  mutable fault_count : int;  (** machine faults surfaced by {!run} *)
  mutable elision_trips : int;
      (** times a bounds-elided block closure saw an address outside its
          statically proven range — each trip permanently demotes the
          block to the fully guarded tiers (see {!Block_compile}) *)
  hooks : hooks;
  pc_hook_mask : Bytes.t array;
      (** parallel to [code.segments]: byte [i] is non-zero iff some per-pc
          hook (pre or post) is installed at that instruction *)
  mutable blocks : block_table option;
      (** compiled basic-block superinstructions, when installed (see
          {!Block_compile}); [None] falls back to per-instruction tiers *)
  scratch : Event.effect_;
      (** the one effect record the instrumented path reuses for every
          instruction — hooks may read it only during their callback *)
  scr_read : Event.access;   (** scratch buffer: the instruction's one read *)
  scr_write : Event.access;  (** scratch buffer: the instruction's one write *)
  scr_mr : Event.access list;  (** preallocated [[scr_read]] *)
  scr_mw : Event.access list;  (** preallocated [[scr_write]] *)
}

(* The block-superinstruction tier's dispatch tables. [bt_entry] steers
   the tier loop (one array read per block-entry pc); [bt_cover] maps any
   instruction index to the block containing it, so hook attach/detach
   and invalidation can demote exactly the affected block. A block is
   runnable ([bt_ok]) iff it has not been invalidated ([bt_valid]) and no
   pc inside it carries a per-pc hook ([bt_hooks] = 0) — the whole
   hook-mask test the compiled body skips, taken once at entry. *)
and block_table = {
  bt_entry : int array array;
      (** per segment: instruction index -> block id at entry pcs, else -1 *)
  bt_cover : int array array;
      (** per segment: instruction index -> covering block id, else -1 *)
  bt_len : int array;  (** per block: instruction count *)
  bt_fn : (t -> int) array;
      (** per block: the fused closure. Returns the number of instructions
          retired (= length on completion; on a mid-block decline, state —
          including [pc] — is byte-identical to per-instruction execution
          up to the declining pc, which has not run). Never touches
          [icount] or the retirement counters; the caller accounts. *)
  bt_hooks : int array;  (** per block: pcs currently on the hook mask *)
  bt_valid : Bytes.t;  (** per block: ['\001'] unless invalidated *)
  bt_ok : Bytes.t;  (** per block: [bt_valid] && [bt_hooks] = 0 *)
}

type outcome =
  | Halted
  | Blocked  (** a syscall would block; re-run when input is available *)
  | Faulted of Event.fault
  | Out_of_fuel

let create ~mem ~layout ~code =
  let scr_read = { Event.a_addr = 0; a_size = 0; a_value = 0 } in
  let scr_write = { Event.a_addr = 0; a_size = 0; a_value = 0 } in
  {
    regs = Array.make Isa.num_regs 0;
    pc = 0;
    flag_a = 0;
    flag_b = 0;
    mem;
    code;
    layout;
    sys_handler = (fun _ _ _ -> ());
    halted = false;
    icount = 0;
    fast_retired = 0;
    slow_retired = 0;
    block_retired = 0;
    fault_count = 0;
    elision_trips = 0;
    hooks =
      { pre_all = []; post_all = []; n_pre_all = 0; n_post_all = 0;
        pre_at = Hashtbl.create 16; post_at = Hashtbl.create 16;
        n_pre_at = 0; n_post_at = 0; next_id = 0 };
    pc_hook_mask =
      Array.map
        (fun s -> Bytes.make (Array.length s.Program.seg_instrs) '\000')
        code.Program.segments;
    blocks = None;
    scratch =
      {
        Event.e_seq = 0;
        e_pc = 0;
        e_instr = Isa.Nop;
        e_regs_read = [];
        e_rw_count = 0;
        e_rw0 = Isa.R0;
        e_rw0_val = 0;
        e_rw1 = Isa.R0;
        e_rw1_val = 0;
        e_mem_reads = [];
        e_mem_writes = [];
        e_flags_read = false;
        e_flags_written = false;
        e_ctrl = Event.Next;
        e_ctrl_a = 0;
        e_ctrl_ret = 0;
        e_sys = Event.Io_none;
        e_fault = None;
      };
    scr_read;
    scr_write;
    scr_mr = [ scr_read ];
    scr_mw = [ scr_write ];
  }

let get_reg cpu r = cpu.regs.(Isa.reg_index r)
let set_reg cpu r v = cpu.regs.(Isa.reg_index r) <- Isa.to_u32 v

(* ------------------------------------------------------------------ *)
(* Instrumentation hook management                                     *)
(* ------------------------------------------------------------------ *)

type hook_id =
  | Pre of int
  | Post of int
  | Pre_pc of int * int
  | Post_pc of int * int

(* Keep the presence mask in sync with the pre_at/post_at tables. A pc
   outside every code segment has no mask slot — harmless, since such a
   pc can only be reached through the slow path's fetch fault anyway.

   The block tier piggybacks on the same transition: each mask-byte flip
   adjusts the covering block's hooked-pc count and its runnable flag, so
   a hook attached anywhere inside a compiled block demotes that block to
   per-instruction execution no later than the next block entry (the
   compiled body never runs user code, so no hook can appear while it is
   in flight — exactly the fast loop's staleness argument). *)
let sync_block_ok bt bid =
  Bytes.set bt.bt_ok bid
    (if bt.bt_hooks.(bid) = 0 && Bytes.get bt.bt_valid bid <> '\000' then
       '\001'
     else '\000')

let sync_mask cpu pc =
  match Program.locate cpu.code pc with
  | None -> ()
  | Some (si, ii) ->
    let present =
      Hashtbl.mem cpu.hooks.pre_at pc || Hashtbl.mem cpu.hooks.post_at pc
    in
    let mask = cpu.pc_hook_mask.(si) in
    let was = Bytes.get mask ii <> '\000' in
    Bytes.set mask ii (if present then '\001' else '\000');
    if present <> was then (
      match cpu.blocks with
      | None -> ()
      | Some bt ->
        let bid = bt.bt_cover.(si).(ii) in
        if bid >= 0 then begin
          bt.bt_hooks.(bid) <- bt.bt_hooks.(bid) + (if present then 1 else -1);
          sync_block_ok bt bid
        end)

(** Register a hook on every instruction, before state commit. *)
let add_pre_hook cpu f =
  let id = cpu.hooks.next_id in
  cpu.hooks.next_id <- id + 1;
  cpu.hooks.pre_all <- cpu.hooks.pre_all @ [ (id, f) ];
  cpu.hooks.n_pre_all <- cpu.hooks.n_pre_all + 1;
  Pre id

(** Register a hook on every instruction, after state commit (syscall
    effects are visible here). *)
let add_post_hook cpu f =
  let id = cpu.hooks.next_id in
  cpu.hooks.next_id <- id + 1;
  cpu.hooks.post_all <- cpu.hooks.post_all @ [ (id, f) ];
  cpu.hooks.n_post_all <- cpu.hooks.n_post_all + 1;
  Post id

(** Register a pre-hook that fires only at [pc] — the cheap, targeted
    instrumentation VSEFs are made of. *)
let add_pc_hook cpu ~pc f =
  let id = cpu.hooks.next_id in
  cpu.hooks.next_id <- id + 1;
  let existing = Option.value ~default:[] (Hashtbl.find_opt cpu.hooks.pre_at pc) in
  Hashtbl.replace cpu.hooks.pre_at pc (existing @ [ (id, f) ]);
  cpu.hooks.n_pre_at <- Hashtbl.length cpu.hooks.pre_at;
  sync_mask cpu pc;
  Pre_pc (pc, id)

(** Register a post-commit hook that fires only at [pc] — used by VSEFs
    that must observe a syscall's result (e.g. allocation tracking). *)
let add_pc_post_hook cpu ~pc f =
  let id = cpu.hooks.next_id in
  cpu.hooks.next_id <- id + 1;
  let existing =
    Option.value ~default:[] (Hashtbl.find_opt cpu.hooks.post_at pc)
  in
  Hashtbl.replace cpu.hooks.post_at pc (existing @ [ (id, f) ]);
  cpu.hooks.n_post_at <- Hashtbl.length cpu.hooks.post_at;
  sync_mask cpu pc;
  Post_pc (pc, id)

let remove_from_table tbl pc id =
  match Hashtbl.find_opt tbl pc with
  | None -> ()
  | Some l -> (
    match List.filter (fun (i, _) -> i <> id) l with
    | [] -> Hashtbl.remove tbl pc
    | l' -> Hashtbl.replace tbl pc l')

let remove_hook cpu = function
  | Pre id ->
    cpu.hooks.pre_all <- List.filter (fun (i, _) -> i <> id) cpu.hooks.pre_all;
    cpu.hooks.n_pre_all <- List.length cpu.hooks.pre_all
  | Post id ->
    cpu.hooks.post_all <- List.filter (fun (i, _) -> i <> id) cpu.hooks.post_all;
    cpu.hooks.n_post_all <- List.length cpu.hooks.post_all
  | Pre_pc (pc, id) ->
    remove_from_table cpu.hooks.pre_at pc id;
    cpu.hooks.n_pre_at <- Hashtbl.length cpu.hooks.pre_at;
    sync_mask cpu pc
  | Post_pc (pc, id) ->
    remove_from_table cpu.hooks.post_at pc id;
    cpu.hooks.n_post_at <- Hashtbl.length cpu.hooks.post_at;
    sync_mask cpu pc

(** Total number of per-pc hooks currently installed (VSEF footprint),
    counting both pre- and post-commit ones. *)
let pc_hook_count cpu =
  Hashtbl.fold (fun _ l acc -> acc + List.length l) cpu.hooks.pre_at 0
  + Hashtbl.fold (fun _ l acc -> acc + List.length l) cpu.hooks.post_at 0

(** Global (every-instruction) hooks currently installed, pre and post.
    Analyses that fuse their instrumentation into a private run loop use
    this to check that nobody else is listening. *)
let global_hook_count cpu = cpu.hooks.n_pre_all + cpu.hooks.n_post_all

(* ------------------------------------------------------------------ *)
(* Block-superinstruction table management (tier 3)                     *)
(* ------------------------------------------------------------------ *)

(** Install compiled basic blocks: [(entry_pc, length, closure)] triples,
    normally produced by {!Block_compile.install}. Blocks whose pcs carry
    hooks at install time start demoted; {!sync_mask} keeps the counts
    live from then on. Replaces any previously installed table. *)
let install_blocks cpu (blocks : (int * int * (t -> int)) array) =
  let segs = cpu.code.Program.segments in
  let nb = Array.length blocks in
  let bt =
    {
      bt_entry =
        Array.map
          (fun s -> Array.make (Array.length s.Program.seg_instrs) (-1))
          segs;
      bt_cover =
        Array.map
          (fun s -> Array.make (Array.length s.Program.seg_instrs) (-1))
          segs;
      bt_len = Array.make nb 0;
      bt_fn = Array.make nb (fun (_ : t) -> 0);
      bt_hooks = Array.make nb 0;
      bt_valid = Bytes.make nb '\001';
      bt_ok = Bytes.make nb '\001';
    }
  in
  Array.iteri
    (fun bid (pc, len, fn) ->
      match Program.locate cpu.code pc with
      | None -> invalid_arg "Cpu.install_blocks: entry pc outside code"
      | Some (si, ii) ->
        if len <= 0 || ii + len > Array.length segs.(si).Program.seg_instrs
        then invalid_arg "Cpu.install_blocks: block overruns its segment";
        bt.bt_len.(bid) <- len;
        bt.bt_fn.(bid) <- fn;
        bt.bt_entry.(si).(ii) <- bid;
        let mask = cpu.pc_hook_mask.(si) in
        for k = ii to ii + len - 1 do
          bt.bt_cover.(si).(k) <- bid;
          if Bytes.get mask k <> '\000' then
            bt.bt_hooks.(bid) <- bt.bt_hooks.(bid) + 1
        done;
        sync_block_ok bt bid)
    blocks;
  cpu.blocks <- Some bt

let clear_blocks cpu = cpu.blocks <- None

(** Permanently demote the block containing [pc] to the per-instruction
    tiers (e.g. because a static-analysis client no longer trusts it).
    Takes effect no later than the next block entry. *)
let invalidate_block cpu ~pc =
  match cpu.blocks with
  | None -> ()
  | Some bt -> (
    match Program.locate cpu.code pc with
    | None -> ()
    | Some (si, ii) ->
      let bid = bt.bt_cover.(si).(ii) in
      if bid >= 0 then begin
        Bytes.set bt.bt_valid bid '\000';
        sync_block_ok bt bid
      end)

(** A bounds-elided closure caught an address outside its statically
    proven range: count the trip and permanently re-enable the full
    guards for that block. The caller then declines, so the access
    re-executes under the instrumented tier's validity check —
    observable state stays byte-identical to a never-elided run. *)
let elision_trip cpu ~pc =
  cpu.elision_trips <- cpu.elision_trips + 1;
  invalidate_block cpu ~pc

(** Number of compiled blocks installed (0 when the tier is off). *)
let block_count cpu =
  match cpu.blocks with None -> 0 | Some bt -> Array.length bt.bt_len

(* ------------------------------------------------------------------ *)
(* Instrumented (slow-path) step                                       *)
(* ------------------------------------------------------------------ *)

let operand_value cpu = function
  | Isa.Imm v -> Isa.to_u32 v
  | Isa.Reg r -> get_reg cpu r
  | Isa.Sym s -> invalid_arg ("Cpu: unresolved symbol " ^ s)

(* Instruction fetch, open-coded (Program.fetch returns an option and —
   without flambda — allocates its internal loop closure; this path runs
   once per instrumented instruction). Top-level recursion: no closure. *)
let rec fetch_in segs n pc i =
  if i >= n then raise (Event.Fault (Event.Exec_violation pc))
  else
    let s = Array.unsafe_get segs i in
    if pc >= s.Program.seg_base && pc < s.Program.seg_limit then
      let off = pc - s.Program.seg_base in
      if off land (Isa.instr_size - 1) <> 0 then
        raise (Event.Fault (Event.Exec_violation pc))
      else Array.unsafe_get s.Program.seg_instrs (off / Isa.instr_size)
    else fetch_in segs n pc (i + 1)

let fetch cpu pc =
  let segs = cpu.code.Program.segments in
  fetch_in segs (Array.length segs) pc 0

(* Interned register-read lists: [e_regs_read] depends only on the static
   instruction, so the one- and two-register shapes come from these tables
   and the instrumented path allocates no cons cells for them. *)
let reg_list1 = Array.init Isa.num_regs (fun i -> [ Isa.reg_of_index i ])

let reg_list2 =
  Array.init (Isa.num_regs * Isa.num_regs) (fun k ->
      [ Isa.reg_of_index (k / Isa.num_regs);
        Isa.reg_of_index (k mod Isa.num_regs) ])

let rl1 r = Array.unsafe_get reg_list1 (Isa.reg_index r)

let rl2 a b =
  Array.unsafe_get reg_list2 ((Isa.reg_index a * Isa.num_regs) + Isa.reg_index b)

let syscall_regs = [ Isa.R0; Isa.R1; Isa.R2; Isa.R3 ]

let note_fault (eff : Event.effect_) f =
  match eff.Event.e_fault with
  | None -> eff.Event.e_fault <- Some f
  | Some _ -> ()

(* Record the instruction's single memory read in the scratch read buffer
   and expose it through [e_mem_reads]; returns the value read (0 when the
   address is invalid — the noted fault pre-empts commit anyway). *)
let scratch_read cpu size addr =
  let acc = cpu.scr_read in
  acc.Event.a_addr <- addr;
  acc.Event.a_size <- size;
  (if Layout.valid_data cpu.layout addr then
     acc.Event.a_value <-
       (if size = 4 then Memory.load_word cpu.mem addr
        else Memory.load_byte cpu.mem addr)
   else begin
     acc.Event.a_value <- 0;
     note_fault cpu.scratch (Event.Segv_read addr)
   end);
  cpu.scratch.Event.e_mem_reads <- cpu.scr_mr;
  acc.Event.a_value

(* Likewise for the single memory write (validity noted, nothing stored —
   {!commit} performs the write). *)
let scratch_write cpu size addr v =
  let acc = cpu.scr_write in
  acc.Event.a_addr <- addr;
  acc.Event.a_size <- size;
  acc.Event.a_value <- (if size = 4 then Isa.to_u32 v else v land 0xff);
  if not (Layout.valid_data cpu.layout addr) then
    note_fault cpu.scratch (Event.Segv_write addr);
  cpu.scratch.Event.e_mem_writes <- cpu.scr_mw

(* Compute the effect of [instr] at the current state, without mutating
   machine state — into the reused scratch record. Invalid accesses and
   invalid control targets are recorded in [e_fault] (first one wins)
   rather than raised, so that pre-hooks — in particular VSEFs installed
   at the very instruction that would crash — get to see and veto the
   instruction; {!commit} raises the fault. *)
let rw1 (eff : Event.effect_) r v =
  eff.Event.e_rw_count <- 1;
  eff.Event.e_rw0 <- r;
  eff.Event.e_rw0_val <- v

let fill_effect cpu instr =
  let open Isa in
  let eff = cpu.scratch in
  eff.Event.e_seq <- cpu.icount;
  eff.Event.e_pc <- cpu.pc;
  eff.Event.e_instr <- instr;
  eff.Event.e_regs_read <- [];
  eff.Event.e_rw_count <- 0;
  eff.Event.e_mem_reads <- [];
  eff.Event.e_mem_writes <- [];
  eff.Event.e_flags_read <- false;
  eff.Event.e_flags_written <- false;
  eff.Event.e_ctrl <- Event.Next;
  eff.Event.e_sys <- Event.Io_none;
  eff.Event.e_fault <- None;
  match instr with
  | Mov (rd, op) ->
    (match op with Reg r -> eff.Event.e_regs_read <- rl1 r | _ -> ());
    rw1 eff rd (operand_value cpu op)
  | Bin (op, rd, src) ->
    let v =
      try eval_binop op (get_reg cpu rd) (operand_value cpu src)
      with Division_by_zero ->
        note_fault eff Event.Div_zero;
        0
    in
    eff.Event.e_regs_read <-
      (match src with Reg r -> rl2 rd r | Imm _ | Sym _ -> rl1 rd);
    rw1 eff rd v
  | Not rd ->
    eff.Event.e_regs_read <- rl1 rd;
    rw1 eff rd (Isa.to_u32 (lnot (get_reg cpu rd)))
  | Neg rd ->
    eff.Event.e_regs_read <- rl1 rd;
    rw1 eff rd (Isa.to_u32 (-get_reg cpu rd))
  | Load (rd, rs, off) ->
    let v = scratch_read cpu 4 (Isa.to_u32 (get_reg cpu rs + off)) in
    eff.Event.e_regs_read <- rl1 rs;
    rw1 eff rd v
  | Loadb (rd, rs, off) ->
    let v = scratch_read cpu 1 (Isa.to_u32 (get_reg cpu rs + off)) in
    eff.Event.e_regs_read <- rl1 rs;
    rw1 eff rd v
  | Store (rbase, off, rs) ->
    scratch_write cpu 4 (Isa.to_u32 (get_reg cpu rbase + off)) (get_reg cpu rs);
    eff.Event.e_regs_read <- rl2 rbase rs
  | Storeb (rbase, off, rs) ->
    scratch_write cpu 1 (Isa.to_u32 (get_reg cpu rbase + off)) (get_reg cpu rs);
    eff.Event.e_regs_read <- rl2 rbase rs
  | Push op ->
    let sp' = Isa.to_u32 (get_reg cpu SP - 4) in
    scratch_write cpu 4 sp' (operand_value cpu op);
    eff.Event.e_regs_read <-
      (match op with Reg r -> rl2 SP r | Imm _ | Sym _ -> rl1 SP);
    rw1 eff SP sp'
  | Pop rd ->
    let sp = get_reg cpu SP in
    let v = scratch_read cpu 4 sp in
    eff.Event.e_regs_read <- rl1 SP;
    eff.Event.e_rw_count <- 2;
    eff.Event.e_rw0 <- rd;
    eff.Event.e_rw0_val <- v;
    eff.Event.e_rw1 <- SP;
    eff.Event.e_rw1_val <- Isa.to_u32 (sp + 4)
  | Cmp (r, op) ->
    eff.Event.e_regs_read <-
      (match op with Reg r2 -> rl2 r r2 | Imm _ | Sym _ -> rl1 r);
    eff.Event.e_flags_written <- true
  | Jmp (Addr a) ->
    eff.Event.e_ctrl <- Event.Jump;
    eff.Event.e_ctrl_a <- a
  | Jcc (c, Addr a) ->
    eff.Event.e_flags_read <- true;
    if eval_cond c cpu.flag_a cpu.flag_b then begin
      eff.Event.e_ctrl <- Event.Jump;
      eff.Event.e_ctrl_a <- a
    end
  | Call (Addr a) ->
    let sp' = Isa.to_u32 (get_reg cpu SP - 4) in
    let ret = cpu.pc + Isa.instr_size in
    scratch_write cpu 4 sp' ret;
    eff.Event.e_regs_read <- rl1 SP;
    rw1 eff SP sp';
    eff.Event.e_ctrl <- Event.Call_to;
    eff.Event.e_ctrl_a <- a;
    eff.Event.e_ctrl_ret <- ret
  | CallInd r ->
    let target = get_reg cpu r in
    if not (Layout.valid_code cpu.layout target) then
      note_fault eff (Event.Exec_violation target);
    let sp' = Isa.to_u32 (get_reg cpu SP - 4) in
    let ret = cpu.pc + Isa.instr_size in
    scratch_write cpu 4 sp' ret;
    eff.Event.e_regs_read <- rl2 r SP;
    rw1 eff SP sp';
    eff.Event.e_ctrl <- Event.Call_to;
    eff.Event.e_ctrl_a <- target;
    eff.Event.e_ctrl_ret <- ret
  | Ret ->
    let sp = get_reg cpu SP in
    let v = scratch_read cpu 4 sp in
    if not (Layout.valid_code cpu.layout v) then
      note_fault eff (Event.Exec_violation v);
    eff.Event.e_regs_read <- rl1 SP;
    rw1 eff SP (Isa.to_u32 (sp + 4));
    eff.Event.e_ctrl <- Event.Ret_to;
    eff.Event.e_ctrl_a <- v
  | Syscall n ->
    eff.Event.e_regs_read <- syscall_regs;
    eff.Event.e_ctrl <- Event.Sys;
    eff.Event.e_ctrl_a <- n
  | Halt -> eff.Event.e_ctrl <- Event.Stop
  | Nop -> ()
  | Jmp (Lbl s) | Jcc (_, Lbl s) | Call (Lbl s) ->
    invalid_arg ("Cpu: unresolved label " ^ s)

(* Lists are stored in execution order, so no per-step reversal. A
   top-level recursive loop, not [List.iter]: the iter closure would
   capture [eff] and allocate on every instrumented step. *)
let rec run_hooks hooks eff =
  match hooks with
  | [] -> ()
  | (_, f) :: tl ->
    f eff;
    run_hooks tl eff

let rec do_mem_writes mem = function
  | [] -> ()
  | (a : Event.access) :: tl ->
    if a.a_size = 4 then Memory.store_word mem a.a_addr a.a_value
    else Memory.store_byte mem a.a_addr a.a_value;
    do_mem_writes mem tl

(* Commit an effect: apply register writes, memory writes, pc update.
   A pending fault is raised first, before any state changes. *)
let commit cpu (eff : Event.effect_) =
  (match eff.e_fault with
  | Some f -> raise (Event.Fault f)
  | None -> ());
  (match eff.e_mem_writes with
  | [] -> ()
  | [ a ] ->
    if a.a_size = 4 then Memory.store_word cpu.mem a.a_addr a.a_value
    else Memory.store_byte cpu.mem a.a_addr a.a_value
  | l -> do_mem_writes cpu.mem l);
  if eff.e_rw_count >= 1 then begin
    set_reg cpu eff.e_rw0 eff.e_rw0_val;
    if eff.e_rw_count >= 2 then set_reg cpu eff.e_rw1 eff.e_rw1_val
  end;
  if eff.e_flags_written then begin
    match eff.e_instr with
    | Isa.Cmp (r, op) ->
      (* Flag semantics: record the compared values. The register write
         above cannot alias these (Cmp writes no registers). *)
      cpu.flag_a <- get_reg cpu r;
      cpu.flag_b <- operand_value cpu op
    | _ -> ()
  end;
  match eff.e_ctrl with
  | Next -> cpu.pc <- cpu.pc + Isa.instr_size
  | Jump | Ret_to | Call_to -> cpu.pc <- eff.e_ctrl_a
  | Sys ->
    cpu.sys_handler cpu eff eff.e_ctrl_a;
    cpu.pc <- cpu.pc + Isa.instr_size
  | Stop -> cpu.halted <- true

(** Execute one instruction on the instrumented path. Returns the
    committed effect. Raises [Event.Fault] on machine faults,
    [Event.Blocked] when a syscall would block (state unchanged, pc still
    at the syscall), and propagates any exception raised by a hook
    (detections) before commit. *)
let step cpu =
  let pc = cpu.pc in
  let instr = fetch cpu pc in
  fill_effect cpu instr;
  let eff = cpu.scratch in
  if cpu.hooks.n_pre_at <> 0 then (
    match Hashtbl.find_opt cpu.hooks.pre_at pc with
    | Some hs -> run_hooks hs eff
    | None -> ());
  run_hooks cpu.hooks.pre_all eff;
  commit cpu eff;
  cpu.icount <- cpu.icount + 1;
  cpu.slow_retired <- cpu.slow_retired + 1;
  if cpu.hooks.n_post_at <> 0 then (
    match Hashtbl.find_opt cpu.hooks.post_at pc with
    | Some hs -> run_hooks hs eff
    | None -> ());
  run_hooks cpu.hooks.post_all eff;
  eff

(* ------------------------------------------------------------------ *)
(* Uninstrumented fast path                                            *)
(* ------------------------------------------------------------------ *)

(* The fast path indexes code and masks with shifts; hold it to the ISA's
   actual encoding width. *)
let () = assert (Isa.instr_size = 4)

(* Helpers are top-level (not closures inside [exec_fast]) so the hot loop
   allocates nothing. *)
let advance cpu =
  cpu.pc <- cpu.pc + Isa.instr_size;
  cpu.icount <- cpu.icount + 1

let jump cpu a =
  cpu.pc <- a;
  cpu.icount <- cpu.icount + 1

(* rd := rd <op> b, declining division by zero (the slow path turns that
   into a [Div_zero] fault). [Isa.eval_binop] raises only for Div/Mod. *)
let bin_fast cpu rd op b =
  match (op : Isa.binop) with
  | Div | Mod ->
    if Isa.to_s32 b = 0 then false
    else begin
      let i = Isa.reg_index rd in
      Array.unsafe_set cpu.regs i
        (Isa.eval_binop op (Array.unsafe_get cpu.regs i) b);
      advance cpu;
      true
    end
  | Add | Sub | Mul | And | Or | Xor | Shl | Shr ->
    let i = Isa.reg_index rd in
    Array.unsafe_set cpu.regs i
      (Isa.eval_binop op (Array.unsafe_get cpu.regs i) b);
    advance cpu;
    true

let push_fast cpu v =
  let sp' = Isa.to_u32 (Array.unsafe_get cpu.regs 10 - 4) in
  if Layout.valid_data cpu.layout sp' then begin
    Memory.store_word cpu.mem sp' v;
    Array.unsafe_set cpu.regs 10 sp';
    advance cpu;
    true
  end
  else false

(* Direct interpretation of one instruction: no effect record, no hook
   dispatch, no allocation, no exception traffic. Mirrors
   compute_effect/commit exactly: word accesses validity-check only their
   first byte, Pop writes rd then SP (so [Pop SP] leaves sp+4), Push reads
   the operand from pre-decrement registers, only CallInd/Ret check their
   exec target, and Halt leaves pc in place. Anything that would fault,
   block, or needs the effect record (syscalls, unresolved symbols)
   returns [false] before touching state, and the instruction re-runs on
   the slow path where deferred-fault/veto semantics live. Returns [true]
   when the instruction fully executed (icount already bumped). *)
let exec_fast cpu (instr : Isa.instr) =
  let open Isa in
  let regs = cpu.regs in
  match instr with
  | Mov (rd, Imm v) ->
    Array.unsafe_set regs (reg_index rd) (to_u32 v);
    advance cpu;
    true
  | Mov (rd, Reg rs) ->
    Array.unsafe_set regs (reg_index rd) (Array.unsafe_get regs (reg_index rs));
    advance cpu;
    true
  | Bin (op, rd, Imm b) -> bin_fast cpu rd op (to_u32 b)
  | Bin (op, rd, Reg rs) ->
    bin_fast cpu rd op (Array.unsafe_get regs (reg_index rs))
  | Not rd ->
    let i = reg_index rd in
    Array.unsafe_set regs i (to_u32 (lnot (Array.unsafe_get regs i)));
    advance cpu;
    true
  | Neg rd ->
    let i = reg_index rd in
    Array.unsafe_set regs i (to_u32 (-Array.unsafe_get regs i));
    advance cpu;
    true
  | Load (rd, rs, off) ->
    let addr = to_u32 (Array.unsafe_get regs (reg_index rs) + off) in
    if Layout.valid_data cpu.layout addr then begin
      Array.unsafe_set regs (reg_index rd) (Memory.load_word cpu.mem addr);
      advance cpu;
      true
    end
    else false
  | Loadb (rd, rs, off) ->
    let addr = to_u32 (Array.unsafe_get regs (reg_index rs) + off) in
    if Layout.valid_data cpu.layout addr then begin
      Array.unsafe_set regs (reg_index rd) (Memory.load_byte cpu.mem addr);
      advance cpu;
      true
    end
    else false
  | Store (rbase, off, rs) ->
    let addr = to_u32 (Array.unsafe_get regs (reg_index rbase) + off) in
    if Layout.valid_data cpu.layout addr then begin
      Memory.store_word cpu.mem addr (Array.unsafe_get regs (reg_index rs));
      advance cpu;
      true
    end
    else false
  | Storeb (rbase, off, rs) ->
    let addr = to_u32 (Array.unsafe_get regs (reg_index rbase) + off) in
    if Layout.valid_data cpu.layout addr then begin
      Memory.store_byte cpu.mem addr (Array.unsafe_get regs (reg_index rs));
      advance cpu;
      true
    end
    else false
  | Push (Imm v) -> push_fast cpu (to_u32 v)
  | Push (Reg rs) -> push_fast cpu (Array.unsafe_get regs (reg_index rs))
  | Pop rd ->
    let sp = Array.unsafe_get regs 10 in
    if Layout.valid_data cpu.layout sp then begin
      let v = Memory.load_word cpu.mem sp in
      Array.unsafe_set regs (reg_index rd) v;
      Array.unsafe_set regs 10 (to_u32 (sp + 4));
      advance cpu;
      true
    end
    else false
  | Cmp (r, Imm y) ->
    cpu.flag_a <- Array.unsafe_get regs (reg_index r);
    cpu.flag_b <- to_u32 y;
    advance cpu;
    true
  | Cmp (r, Reg rs) ->
    cpu.flag_a <- Array.unsafe_get regs (reg_index r);
    cpu.flag_b <- Array.unsafe_get regs (reg_index rs);
    advance cpu;
    true
  | Jmp (Addr a) ->
    jump cpu a;
    true
  | Jcc (c, Addr a) ->
    if eval_cond c cpu.flag_a cpu.flag_b then jump cpu a else advance cpu;
    true
  | Call (Addr a) ->
    let sp' = to_u32 (Array.unsafe_get regs 10 - 4) in
    if Layout.valid_data cpu.layout sp' then begin
      Memory.store_word cpu.mem sp' (cpu.pc + instr_size);
      Array.unsafe_set regs 10 sp';
      jump cpu a;
      true
    end
    else false
  | CallInd r ->
    let target = Array.unsafe_get regs (reg_index r) in
    let sp' = to_u32 (Array.unsafe_get regs 10 - 4) in
    if
      Layout.valid_code cpu.layout target && Layout.valid_data cpu.layout sp'
    then begin
      Memory.store_word cpu.mem sp' (cpu.pc + instr_size);
      Array.unsafe_set regs 10 sp';
      jump cpu target;
      true
    end
    else false
  | Ret ->
    let sp = Array.unsafe_get regs 10 in
    if Layout.valid_data cpu.layout sp then begin
      let target = Memory.load_word cpu.mem sp in
      if Layout.valid_code cpu.layout target then begin
        Array.unsafe_set regs 10 (to_u32 (sp + 4));
        jump cpu target;
        true
      end
      else false
    end
    else false
  | Halt ->
    cpu.halted <- true;
    cpu.icount <- cpu.icount + 1;
    true
  | Nop ->
    advance cpu;
    true
  | Syscall _
  | Mov (_, Sym _)
  | Bin (_, _, Sym _)
  | Push (Sym _)
  | Cmp (_, Sym _)
  | Jmp (Lbl _)
  | Jcc (_, Lbl _)
  | Call (Lbl _) ->
    false

(* Tight fast loop pinned to one segment. While the pc stays inside [s]
   and off the hook mask it executes by direct interpretation with no
   per-instruction hook-counter reads and no segment search. Sound
   because [exec_fast] runs no user code, so no hook can be installed
   while this loop spins; every exit returns to the dispatcher, which
   re-checks the global counters after any instrumented step. Top-level
   recursion, not a local closure: the hot loop must not allocate.
   Returns the remaining fuel (unchanged iff it made no progress). *)
let rec fast_run cpu s mask n =
  if cpu.halted || n <= 0 then n
  else
    let pc = cpu.pc in
    let off = pc - s.Program.seg_base in
    if off < 0 || pc >= s.Program.seg_limit then n (* left the segment *)
    else if off land 3 <> 0 then n (* misaligned: slow path faults *)
    else
      let idx = off lsr 2 in
      if Bytes.unsafe_get mask idx <> '\000' then n (* hooked pc *)
      else if exec_fast cpu (Array.unsafe_get s.Program.seg_instrs idx) then
        fast_run cpu s mask (n - 1)
      else n (* declined (before any state change): slow path re-runs *)

(* Tier-3 loop: like [fast_run], but when the pc sits on a runnable block
   entry (and enough fuel remains to retire the whole block — the
   block-entry fuel clamp that keeps {!run}'s [fuel] exact, so scheduler
   quanta and checkpoint thresholds land on the same icounts as
   per-instruction execution), the block's compiled closure executes the
   whole body with no per-instruction fetch/decode/mask work. Everything
   else — mid-block resumption after a decline, demoted (hooked or
   invalidated) blocks, the fuel tail — retires one instruction at a time
   through [exec_fast]. Declines return with fuel reflecting the retired
   prefix; the dispatcher's no-progress protocol (fuel unchanged => one
   instrumented [step]) is preserved because a decline at the current pc
   with no prior progress returns [n] untouched. *)
let rec tier_run cpu s mask bt entry n =
  if cpu.halted || n <= 0 then n
  else
    let pc = cpu.pc in
    let off = pc - s.Program.seg_base in
    if off < 0 || pc >= s.Program.seg_limit then n (* left the segment *)
    else if off land 3 <> 0 then n (* misaligned: slow path faults *)
    else
      let idx = off lsr 2 in
      if Bytes.unsafe_get mask idx <> '\000' then n (* hooked pc *)
      else
        let bid = Array.unsafe_get entry idx in
        if
          bid >= 0
          && Bytes.unsafe_get bt.bt_ok bid <> '\000'
          && n >= Array.unsafe_get bt.bt_len bid
        then begin
          let r = (Array.unsafe_get bt.bt_fn bid) cpu in
          cpu.icount <- cpu.icount + r;
          cpu.block_retired <- cpu.block_retired + r;
          if r = Array.unsafe_get bt.bt_len bid then
            tier_run cpu s mask bt entry (n - r)
          else n - r (* declined mid-block: slow path re-runs at [pc] *)
        end
        else if exec_fast cpu (Array.unsafe_get s.Program.seg_instrs idx) then begin
          cpu.fast_retired <- cpu.fast_retired + 1;
          tier_run cpu s mask bt entry (n - 1)
        end
        else n (* declined (before any state change): slow path re-runs *)

(** Run until halt, fault, block, or [fuel] instructions. Fault state is
    preserved (pc stays at the faulting instruction) so the core-dump
    analyzer can inspect it. Unhooked instructions execute on the
    uninstrumented fast path; observable semantics are identical to
    stepping with {!step}. *)
let run ?(fuel = max_int) cpu =
  let segs = cpu.code.Program.segments in
  (* The exception handler lives outside the loop; [go]/[dispatch] stay
     tail-recursive (they carry no handler of their own). [dispatch]
     always makes progress before looping back to [go]: if [fast_run]
     executed nothing at this pc, the instruction takes the instrumented
     [step] (which advances, faults, or blocks). *)
  let rec go n =
    if cpu.halted then Halted
    else if n <= 0 then Out_of_fuel
    else
      let hs = cpu.hooks in
      if hs.n_pre_all <> 0 || hs.n_post_all <> 0 then begin
        ignore (step cpu : Event.effect_);
        go (n - 1)
      end
      else dispatch n cpu.pc 0
  and dispatch n pc i =
    if i >= Array.length segs then begin
      ignore (step cpu : Event.effect_) (* unmapped pc: faults there *)
      ; go (n - 1)
    end
    else
      let s = Array.unsafe_get segs i in
      if pc >= s.Program.seg_base && pc < s.Program.seg_limit then begin
        match cpu.blocks with
        | Some bt ->
          (* Block tier engaged: [tier_run] accounts its own retirement
             (block-batched and per-single), so no batch charge here. *)
          let n' =
            tier_run cpu s
              (Array.unsafe_get cpu.pc_hook_mask i)
              bt
              (Array.unsafe_get bt.bt_entry i)
              n
          in
          if n' = n then begin
            ignore (step cpu : Event.effect_);
            go (n' - 1)
          end
          else go n'
        | None ->
          let n' = fast_run cpu s (Array.unsafe_get cpu.pc_hook_mask i) n in
          if n' = n then begin
            ignore (step cpu : Event.effect_);
            go (n' - 1)
          end
          else begin
            (* batch-account the whole fast burst at its exit *)
            cpu.fast_retired <- cpu.fast_retired + (n - n');
            go n'
          end
      end
      else dispatch n pc (i + 1)
  in
  try go fuel with
  | Event.Fault f ->
    cpu.fault_count <- cpu.fault_count + 1;
    Faulted f
  | Event.Blocked -> Blocked

(* ------------------------------------------------------------------ *)
(* Snapshot/restore of CPU register state (memory snapshots live in     *)
(* Memory; the OS layer combines both into checkpoints).                *)
(* ------------------------------------------------------------------ *)

type reg_snapshot = {
  s_regs : int array;
  s_pc : int;
  s_flags : int * int;
  s_halted : bool;
  s_icount : int;
}

let snapshot_regs cpu =
  {
    s_regs = Array.copy cpu.regs;
    s_pc = cpu.pc;
    s_flags = (cpu.flag_a, cpu.flag_b);
    s_halted = cpu.halted;
    s_icount = cpu.icount;
  }

let restore_regs cpu s =
  Array.blit s.s_regs 0 cpu.regs 0 Isa.num_regs;
  cpu.pc <- s.s_pc;
  (let a, b = s.s_flags in
   cpu.flag_a <- a;
   cpu.flag_b <- b);
  cpu.halted <- s.s_halted;
  cpu.icount <- s.s_icount
