(** Byte-addressable paged memory with copy-on-write snapshots.

    This is the substrate for Sweeper's lightweight checkpointing: taking a
    snapshot is O(mapped pages) pointer copies, and the cost of keeping a
    snapshot alive is one page copy per page subsequently dirtied — the same
    cost model as the fork()-based shadow processes of Rx/FlashBack, which
    is what makes the checkpoint-interval/overhead curve of the paper's
    Figure 4 reproducible.

    Sequential access (string copies, stack traffic) is served by two
    one-entry TLBs — the last page read and the last page written — so the
    common case skips the page hashtable entirely. The write TLB is only
    ever filled from {!page_for_write}, i.e. from a page already owned by
    the current epoch, so a TLB hit can never scribble on a page shared
    with a live snapshot; both TLBs are invalidated whenever the epoch
    bumps ({!snapshot}) or the page table is replaced ({!restore}). *)

let page_bits = 12
let page_size = 1 lsl page_bits (* 4096 *)
let page_mask = page_size - 1

type page = {
  mutable data : Bytes.t;
  mutable epoch : int;  (** epoch in which this page copy was created *)
}

type t = {
  mutable pages : (int, page) Hashtbl.t;
  mutable cur_epoch : int;
  mutable cow_copies : int;    (** pages copied due to snapshot sharing *)
  mutable pages_mapped : int;  (** pages ever materialized *)
  (* One-entry TLBs: page index (-1 = invalid) and the cached page bytes.
     Page [data] is never reassigned after creation (COW makes new page
     records), so caching the bytes directly is safe. *)
  mutable r_tlb_idx : int;
  mutable r_tlb : Bytes.t;
  mutable w_tlb_idx : int;
  mutable w_tlb : Bytes.t;
  (* Counted on the refill/invalidate paths only; the TLB hit path stays
     a compare and a return. Hits are derivable (accesses - misses). *)
  mutable r_tlb_misses : int;
  mutable w_tlb_misses : int;
  mutable tlb_invalidations : int;
}

(** An immutable snapshot of the whole address space. Restoring it is a
    shallow table copy; pages stay shared until written. *)
type snapshot = {
  snap_pages : (int, page) Hashtbl.t;
  snap_epoch : int;
}

let no_page = Bytes.create 0

let create () =
  {
    pages = Hashtbl.create 256;
    cur_epoch = 0;
    cow_copies = 0;
    pages_mapped = 0;
    r_tlb_idx = -1;
    r_tlb = no_page;
    w_tlb_idx = -1;
    w_tlb = no_page;
    r_tlb_misses = 0;
    w_tlb_misses = 0;
    tlb_invalidations = 0;
  }

let invalidate_tlbs mem =
  mem.tlb_invalidations <- mem.tlb_invalidations + 1;
  mem.r_tlb_idx <- -1;
  mem.r_tlb <- no_page;
  mem.w_tlb_idx <- -1;
  mem.w_tlb <- no_page

let stats mem = (mem.cow_copies, mem.pages_mapped)

let tlb_stats mem = (mem.r_tlb_misses, mem.w_tlb_misses, mem.tlb_invalidations)

let reset_stats mem =
  mem.cow_copies <- 0;
  mem.pages_mapped <- 0

let fresh_page mem =
  mem.pages_mapped <- mem.pages_mapped + 1;
  { data = Bytes.make page_size '\000'; epoch = mem.cur_epoch }

(* Fetch the page containing [addr], materializing a zero page on demand.
   Validity of the address is the CPU's concern, not the memory's. *)
let page_for_read mem addr =
  let idx = addr lsr page_bits in
  match Hashtbl.find_opt mem.pages idx with
  | Some p -> p
  | None ->
    let p = fresh_page mem in
    Hashtbl.replace mem.pages idx p;
    p

(* Fetch the page for writing, copying it first if it may be shared with a
   live snapshot (its epoch predates the current one). *)
let page_for_write mem addr =
  let idx = addr lsr page_bits in
  match Hashtbl.find_opt mem.pages idx with
  | Some p ->
    if p.epoch < mem.cur_epoch then begin
      let copy = { data = Bytes.copy p.data; epoch = mem.cur_epoch } in
      mem.cow_copies <- mem.cow_copies + 1;
      Hashtbl.replace mem.pages idx copy;
      copy
    end
    else p
  | None ->
    let p = fresh_page mem in
    Hashtbl.replace mem.pages idx p;
    p

(* TLB-filling page lookups. [write_page] also re-syncs the read TLB when
   it covers the same page: a COW fault replaces the page record, and a
   stale read TLB would otherwise keep serving the shared (pre-write)
   copy. *)
let read_page mem addr =
  let idx = addr lsr page_bits in
  if idx = mem.r_tlb_idx then mem.r_tlb
  else begin
    mem.r_tlb_misses <- mem.r_tlb_misses + 1;
    let p = page_for_read mem addr in
    mem.r_tlb_idx <- idx;
    mem.r_tlb <- p.data;
    p.data
  end

let write_page mem addr =
  let idx = addr lsr page_bits in
  if idx = mem.w_tlb_idx then mem.w_tlb
  else begin
    mem.w_tlb_misses <- mem.w_tlb_misses + 1;
    let p = page_for_write mem addr in
    mem.w_tlb_idx <- idx;
    mem.w_tlb <- p.data;
    if idx = mem.r_tlb_idx then mem.r_tlb <- p.data;
    p.data
  end

(* Direct 32-bit primitives: the compiler eliminates the box/unbox pair
   locally, which Bytes.get_int32_le does not guarantee across the module
   boundary. They read host byte order, so the word fast path is gated on
   [not Sys.big_endian] (a constant the compiler folds); big-endian hosts
   take the byte-wise path. Offsets are in-page by construction. *)
external get32u : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external set32u : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"

let load_byte mem addr =
  Char.code (Bytes.unsafe_get (read_page mem addr) (addr land page_mask))

let store_byte mem addr v =
  Bytes.unsafe_set (write_page mem addr) (addr land page_mask)
    (Char.unsafe_chr (v land 0xff))

(** Little-endian 32-bit load. Crosses page boundaries correctly. *)
let load_word mem addr =
  let off = addr land page_mask in
  if (not Sys.big_endian) && off <= page_size - 4 then
    Int32.to_int (get32u (read_page mem addr) off) land Isa.word_mask
  else
    let b0 = load_byte mem addr in
    let b1 = load_byte mem (addr + 1) in
    let b2 = load_byte mem (addr + 2) in
    let b3 = load_byte mem (addr + 3) in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

(** Little-endian 32-bit store. *)
let store_word mem addr v =
  let off = addr land page_mask in
  if (not Sys.big_endian) && off <= page_size - 4 then
    set32u (write_page mem addr) off (Int32.of_int (Isa.to_s32 v))
  else begin
    store_byte mem addr v;
    store_byte mem (addr + 1) (v lsr 8);
    store_byte mem (addr + 2) (v lsr 16);
    store_byte mem (addr + 3) (v lsr 24)
  end

(** Read [len] bytes starting at [addr] — page-sized [Bytes.blit]s, not a
    per-byte loop. *)
let load_bytes mem addr len =
  if len <= 0 then ""
  else begin
    let out = Bytes.create len in
    let pos = ref 0 in
    while !pos < len do
      let a = addr + !pos in
      let data = read_page mem a in
      let off = a land page_mask in
      let n = min (page_size - off) (len - !pos) in
      Bytes.blit data off out !pos n;
      pos := !pos + n
    done;
    Bytes.unsafe_to_string out
  end

(** Write the whole string at [addr], one blit per touched page. *)
let store_bytes mem addr s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let data = write_page mem a in
    let off = a land page_mask in
    let n = min (page_size - off) (len - !pos) in
    Bytes.blit_string s !pos data off n;
    pos := !pos + n
  done

(** Read the NUL-terminated string at [addr], up to [limit] bytes
    (default 64 KiB) as a safety net for corrupted memory. Scans a page at
    a time ([Bytes.index_from]) instead of byte-by-byte. *)
let load_cstring ?(limit = 65536) mem addr =
  let buf = Buffer.create 32 in
  let rec go pos =
    if pos >= limit then Buffer.contents buf
    else begin
      let a = addr + pos in
      let data = read_page mem a in
      let off = a land page_mask in
      let n = min (page_size - off) (limit - pos) in
      match Bytes.index_from_opt data off '\000' with
      | Some i when i < off + n ->
        Buffer.add_subbytes buf data off (i - off);
        Buffer.contents buf
      | _ ->
        Buffer.add_subbytes buf data off n;
        go (pos + n)
    end
  in
  go 0

(** Take a copy-on-write snapshot. All current pages become shared; the
    next write to any of them pays one page copy. With [eager:true] every
    page is deep-copied up front instead — the full-copy baseline that the
    checkpointing ablation compares against. *)
let snapshot ?(eager = false) mem =
  invalidate_tlbs mem;
  mem.cur_epoch <- mem.cur_epoch + 1;
  if eager then begin
    let pages = Hashtbl.create (Hashtbl.length mem.pages) in
    Hashtbl.iter
      (fun idx p ->
        Hashtbl.replace pages idx { data = Bytes.copy p.data; epoch = p.epoch })
      mem.pages;
    { snap_pages = pages; snap_epoch = mem.cur_epoch }
  end
  else { snap_pages = Hashtbl.copy mem.pages; snap_epoch = mem.cur_epoch }

(** Restore a snapshot taken earlier on this memory. The snapshot remains
    valid and can be restored again (analysis re-executes from the same
    checkpoint repeatedly). *)
let restore mem snap =
  invalidate_tlbs mem;
  mem.cur_epoch <- mem.cur_epoch + 1;
  mem.pages <- Hashtbl.copy snap.snap_pages

(** Clone a whole address space copy-on-write: the clone starts with the
    same page table, and both sides pay one page copy on their first write
    to any shared page (the source's epoch is bumped so its own writes
    also un-share). Templated host creation clones one booted image per
    app instead of re-loading MiniC per host. The clone is independent —
    snapshots taken on either side never alias the other's pages. *)
let clone mem =
  invalidate_tlbs mem;
  mem.cur_epoch <- mem.cur_epoch + 1;
  {
    pages = Hashtbl.copy mem.pages;
    cur_epoch = mem.cur_epoch;
    cow_copies = 0;
    pages_mapped = 0;
    r_tlb_idx = -1;
    r_tlb = no_page;
    w_tlb_idx = -1;
    w_tlb = no_page;
    r_tlb_misses = 0;
    w_tlb_misses = 0;
    tlb_invalidations = 0;
  }

(** Number of pages currently mapped. *)
let mapped_pages mem = Hashtbl.length mem.pages
