(** Basic-block superinstruction compiler (execution tier 3).

    Each basic block is compiled once into a chain of specialized OCaml
    closures — one per instruction, register indices and immediates
    resolved at compile time — where "fall through to the next
    instruction" is a tail call and the block terminator materializes the
    final pc. Executing the block is a single indirect call from
    {!Cpu.run}'s tier loop: no per-instruction fetch, no decode, no
    hook-mask probe, no pc/icount update in the straight-line middle.
    The bounds check and the hook-mask/fuel test happen once, at block
    entry, in the dispatcher.

    The escape hatch is the same decline-before-mutate contract as
    {!Cpu.exec_fast}, per instruction: anything the uninstrumented tier
    cannot reproduce exactly — a syscall, a failing address-validity
    check, a division by zero, an unresolved symbol, an invalid indirect
    control target — makes its closure stop {e before touching any
    state}, write the declining pc back, and return the number of
    instructions already retired. The caller resumes per-instruction
    execution at that pc, so mid-block faults leave state byte-identical
    to per-instruction execution. Closures never touch [icount] or the
    retirement counters; {!Cpu.run} accounts the returned count.

    Semantics are a mirror of {!Cpu.exec_fast} (held to account by the
    three-way differential suite in [test_vm_diff]): word accesses
    validity-check only their first byte, [Pop] writes rd then SP, [Push]
    reads its operand from pre-decrement registers, only [CallInd]/[Ret]
    check their exec target, and [Halt] leaves pc at the halt
    instruction. Registers and flags always hold unsigned 32-bit values,
    so the specialized ALU closures can use plain masked arithmetic where
    {!Isa.eval_binop} round-trips through sign extension. *)

let um = Isa.word_mask

(* Compile one instruction at [pc] (position [idx] inside its block) into
   a closure. Non-terminators tail-call [next]; terminators set the final
   pc and return [idx + 1]; declines restore [pc] and return [idx].
   [safe] carries the statically proven constant address range of a
   memory access, when there is one: the access then range-checks against
   the baked-in bounds instead of walking [Layout.valid_data], and a
   violation (hijacked control flow, or a wrong proof) trips the
   elision tripwire before declining. *)
let compile_one ~pc ~idx ~(safe : (int * int) option)
    ~(next : Cpu.t -> int) (instr : Isa.instr) : Cpu.t -> int =
  let open Isa in
  let done_ = idx + 1 in
  let decline (cpu : Cpu.t) =
    cpu.Cpu.pc <- pc;
    idx
  in
  match instr with
  | Mov (rd, Imm v) ->
    let d = reg_index rd and v = to_u32 v in
    fun cpu ->
      Array.unsafe_set cpu.Cpu.regs d v;
      next cpu
  | Mov (rd, Reg rs) ->
    let d = reg_index rd and s = reg_index rs in
    fun cpu ->
      let r = cpu.Cpu.regs in
      Array.unsafe_set r d (Array.unsafe_get r s);
      next cpu
  | Bin (op, rd, Imm b) -> (
    let d = reg_index rd in
    let bu = to_u32 b in
    match op with
    | Add ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d ((Array.unsafe_get r d + bu) land um);
        next cpu
    | Sub ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d ((Array.unsafe_get r d - bu) land um);
        next cpu
    | Mul ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d (Array.unsafe_get r d * bu land um);
        next cpu
    | And ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d (Array.unsafe_get r d land bu);
        next cpu
    | Or ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d (Array.unsafe_get r d lor bu);
        next cpu
    | Xor ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d (Array.unsafe_get r d lxor bu);
        next cpu
    | Shl ->
      let sh = to_s32 b land 31 in
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d (Array.unsafe_get r d lsl sh land um);
        next cpu
    | Shr ->
      let sh = to_s32 b land 31 in
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d (Array.unsafe_get r d lsr sh);
        next cpu
    | Div ->
      let bs = to_s32 b in
      if bs = 0 then decline
      else
        fun cpu ->
          let r = cpu.Cpu.regs in
          Array.unsafe_set r d (to_u32 (to_s32 (Array.unsafe_get r d) / bs));
          next cpu
    | Mod ->
      let bs = to_s32 b in
      if bs = 0 then decline
      else
        fun cpu ->
          let r = cpu.Cpu.regs in
          Array.unsafe_set r d (to_u32 (to_s32 (Array.unsafe_get r d) mod bs));
          next cpu)
  | Bin (op, rd, Reg rs) -> (
    let d = reg_index rd and s = reg_index rs in
    match op with
    | Add ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d
          ((Array.unsafe_get r d + Array.unsafe_get r s) land um);
        next cpu
    | Sub ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d
          ((Array.unsafe_get r d - Array.unsafe_get r s) land um);
        next cpu
    | Mul ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d
          (Array.unsafe_get r d * Array.unsafe_get r s land um);
        next cpu
    | And ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d (Array.unsafe_get r d land Array.unsafe_get r s);
        next cpu
    | Or ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d (Array.unsafe_get r d lor Array.unsafe_get r s);
        next cpu
    | Xor ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d (Array.unsafe_get r d lxor Array.unsafe_get r s);
        next cpu
    | Shl ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d
          (Array.unsafe_get r d
           lsl (to_s32 (Array.unsafe_get r s) land 31)
           land um);
        next cpu
    | Shr ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        Array.unsafe_set r d
          (Array.unsafe_get r d lsr (to_s32 (Array.unsafe_get r s) land 31));
        next cpu
    | Div ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        let b = to_s32 (Array.unsafe_get r s) in
        if b = 0 then decline cpu
        else begin
          Array.unsafe_set r d (to_u32 (to_s32 (Array.unsafe_get r d) / b));
          next cpu
        end
    | Mod ->
      fun cpu ->
        let r = cpu.Cpu.regs in
        let b = to_s32 (Array.unsafe_get r s) in
        if b = 0 then decline cpu
        else begin
          Array.unsafe_set r d (to_u32 (to_s32 (Array.unsafe_get r d) mod b));
          next cpu
        end)
  | Not rd ->
    let d = reg_index rd in
    fun cpu ->
      let r = cpu.Cpu.regs in
      Array.unsafe_set r d (lnot (Array.unsafe_get r d) land um);
      next cpu
  | Neg rd ->
    let d = reg_index rd in
    fun cpu ->
      let r = cpu.Cpu.regs in
      Array.unsafe_set r d (-Array.unsafe_get r d land um);
      next cpu
  | Load (rd, rs, off) -> (
    let d = reg_index rd and s = reg_index rs in
    match safe with
    | Some (rlo, rhi) ->
      fun cpu ->
        let addr = (Array.unsafe_get cpu.Cpu.regs s + off) land um in
        if rlo <= addr && addr < rhi then begin
          Array.unsafe_set cpu.Cpu.regs d (Memory.load_word cpu.Cpu.mem addr);
          next cpu
        end
        else begin
          Cpu.elision_trip cpu ~pc;
          decline cpu
        end
    | None ->
      fun cpu ->
        let addr = (Array.unsafe_get cpu.Cpu.regs s + off) land um in
        if Layout.valid_data cpu.Cpu.layout addr then begin
          Array.unsafe_set cpu.Cpu.regs d (Memory.load_word cpu.Cpu.mem addr);
          next cpu
        end
        else decline cpu)
  | Loadb (rd, rs, off) -> (
    let d = reg_index rd and s = reg_index rs in
    match safe with
    | Some (rlo, rhi) ->
      fun cpu ->
        let addr = (Array.unsafe_get cpu.Cpu.regs s + off) land um in
        if rlo <= addr && addr < rhi then begin
          Array.unsafe_set cpu.Cpu.regs d (Memory.load_byte cpu.Cpu.mem addr);
          next cpu
        end
        else begin
          Cpu.elision_trip cpu ~pc;
          decline cpu
        end
    | None ->
      fun cpu ->
        let addr = (Array.unsafe_get cpu.Cpu.regs s + off) land um in
        if Layout.valid_data cpu.Cpu.layout addr then begin
          Array.unsafe_set cpu.Cpu.regs d (Memory.load_byte cpu.Cpu.mem addr);
          next cpu
        end
        else decline cpu)
  | Store (rbase, off, rs) -> (
    let b = reg_index rbase and s = reg_index rs in
    match safe with
    | Some (rlo, rhi) ->
      fun cpu ->
        let addr = (Array.unsafe_get cpu.Cpu.regs b + off) land um in
        if rlo <= addr && addr < rhi then begin
          Memory.store_word cpu.Cpu.mem addr (Array.unsafe_get cpu.Cpu.regs s);
          next cpu
        end
        else begin
          Cpu.elision_trip cpu ~pc;
          decline cpu
        end
    | None ->
      fun cpu ->
        let addr = (Array.unsafe_get cpu.Cpu.regs b + off) land um in
        if Layout.valid_data cpu.Cpu.layout addr then begin
          Memory.store_word cpu.Cpu.mem addr (Array.unsafe_get cpu.Cpu.regs s);
          next cpu
        end
        else decline cpu)
  | Storeb (rbase, off, rs) -> (
    let b = reg_index rbase and s = reg_index rs in
    match safe with
    | Some (rlo, rhi) ->
      fun cpu ->
        let addr = (Array.unsafe_get cpu.Cpu.regs b + off) land um in
        if rlo <= addr && addr < rhi then begin
          Memory.store_byte cpu.Cpu.mem addr (Array.unsafe_get cpu.Cpu.regs s);
          next cpu
        end
        else begin
          Cpu.elision_trip cpu ~pc;
          decline cpu
        end
    | None ->
      fun cpu ->
        let addr = (Array.unsafe_get cpu.Cpu.regs b + off) land um in
        if Layout.valid_data cpu.Cpu.layout addr then begin
          Memory.store_byte cpu.Cpu.mem addr (Array.unsafe_get cpu.Cpu.regs s);
          next cpu
        end
        else decline cpu)
  | Push (Imm v) ->
    let v = to_u32 v in
    fun cpu ->
      let r = cpu.Cpu.regs in
      let sp' = (Array.unsafe_get r 10 - 4) land um in
      if Layout.valid_data cpu.Cpu.layout sp' then begin
        Memory.store_word cpu.Cpu.mem sp' v;
        Array.unsafe_set r 10 sp';
        next cpu
      end
      else decline cpu
  | Push (Reg rs) ->
    let s = reg_index rs in
    fun cpu ->
      let r = cpu.Cpu.regs in
      let v = Array.unsafe_get r s in
      let sp' = (Array.unsafe_get r 10 - 4) land um in
      if Layout.valid_data cpu.Cpu.layout sp' then begin
        Memory.store_word cpu.Cpu.mem sp' v;
        Array.unsafe_set r 10 sp';
        next cpu
      end
      else decline cpu
  | Pop rd ->
    let d = reg_index rd in
    fun cpu ->
      let r = cpu.Cpu.regs in
      let sp = Array.unsafe_get r 10 in
      if Layout.valid_data cpu.Cpu.layout sp then begin
        let v = Memory.load_word cpu.Cpu.mem sp in
        Array.unsafe_set r d v;
        Array.unsafe_set r 10 ((sp + 4) land um);
        next cpu
      end
      else decline cpu
  | Cmp (rr, Imm y) ->
    let i = reg_index rr and y = to_u32 y in
    fun cpu ->
      cpu.Cpu.flag_a <- Array.unsafe_get cpu.Cpu.regs i;
      cpu.Cpu.flag_b <- y;
      next cpu
  | Cmp (rr, Reg rs) ->
    let i = reg_index rr and s = reg_index rs in
    fun cpu ->
      let r = cpu.Cpu.regs in
      cpu.Cpu.flag_a <- Array.unsafe_get r i;
      cpu.Cpu.flag_b <- Array.unsafe_get r s;
      next cpu
  | Jmp (Addr a) ->
    fun cpu ->
      cpu.Cpu.pc <- a;
      done_
  | Jcc (c, Addr a) -> (
    (* One closure per condition: the flags hold unsigned 32-bit values,
       so equality tests and the unsigned orders compare directly and
       only the signed orders pay sign extension. *)
    let fall = pc + instr_size in
    match c with
    | Eq ->
      fun cpu ->
        cpu.Cpu.pc <- (if cpu.Cpu.flag_a = cpu.Cpu.flag_b then a else fall);
        done_
    | Ne ->
      fun cpu ->
        cpu.Cpu.pc <- (if cpu.Cpu.flag_a <> cpu.Cpu.flag_b then a else fall);
        done_
    | Lt ->
      fun cpu ->
        cpu.Cpu.pc <-
          (if to_s32 cpu.Cpu.flag_a < to_s32 cpu.Cpu.flag_b then a else fall);
        done_
    | Le ->
      fun cpu ->
        cpu.Cpu.pc <-
          (if to_s32 cpu.Cpu.flag_a <= to_s32 cpu.Cpu.flag_b then a else fall);
        done_
    | Gt ->
      fun cpu ->
        cpu.Cpu.pc <-
          (if to_s32 cpu.Cpu.flag_a > to_s32 cpu.Cpu.flag_b then a else fall);
        done_
    | Ge ->
      fun cpu ->
        cpu.Cpu.pc <-
          (if to_s32 cpu.Cpu.flag_a >= to_s32 cpu.Cpu.flag_b then a else fall);
        done_
    | Ult ->
      fun cpu ->
        cpu.Cpu.pc <- (if cpu.Cpu.flag_a < cpu.Cpu.flag_b then a else fall);
        done_
    | Uge ->
      fun cpu ->
        cpu.Cpu.pc <- (if cpu.Cpu.flag_a >= cpu.Cpu.flag_b then a else fall);
        done_)
  | Call (Addr a) ->
    let ret = pc + instr_size in
    fun cpu ->
      let r = cpu.Cpu.regs in
      let sp' = (Array.unsafe_get r 10 - 4) land um in
      if Layout.valid_data cpu.Cpu.layout sp' then begin
        Memory.store_word cpu.Cpu.mem sp' ret;
        Array.unsafe_set r 10 sp';
        cpu.Cpu.pc <- a;
        done_
      end
      else decline cpu
  | CallInd rr ->
    let i = reg_index rr in
    let ret = pc + instr_size in
    fun cpu ->
      let r = cpu.Cpu.regs in
      let target = Array.unsafe_get r i in
      let sp' = (Array.unsafe_get r 10 - 4) land um in
      if
        Layout.valid_code cpu.Cpu.layout target
        && Layout.valid_data cpu.Cpu.layout sp'
      then begin
        Memory.store_word cpu.Cpu.mem sp' ret;
        Array.unsafe_set r 10 sp';
        cpu.Cpu.pc <- target;
        done_
      end
      else decline cpu
  | Ret ->
    fun cpu ->
      let r = cpu.Cpu.regs in
      let sp = Array.unsafe_get r 10 in
      if Layout.valid_data cpu.Cpu.layout sp then begin
        let target = Memory.load_word cpu.Cpu.mem sp in
        if Layout.valid_code cpu.Cpu.layout target then begin
          Array.unsafe_set r 10 ((sp + 4) land um);
          cpu.Cpu.pc <- target;
          done_
        end
        else decline cpu
      end
      else decline cpu
  | Halt ->
    fun cpu ->
      cpu.Cpu.pc <- pc;
      cpu.Cpu.halted <- true;
      done_
  | Nop -> next
  | Syscall _
  | Mov (_, Sym _)
  | Bin (_, _, Sym _)
  | Push (Sym _)
  | Cmp (_, Sym _)
  | Jmp (Lbl _)
  | Jcc (_, Lbl _)
  | Call (Lbl _) ->
    decline

(** Compile the [len]-instruction block starting at [entry_pc] into one
    fused closure. Built right to left so each instruction's closure
    captures its successor; a block that ends without a terminator (its
    successor is a branch target) gets a synthetic tail that materializes
    the fall-through pc. *)
let compile ?(safe_of = fun (_ : int) -> None) (code : Program.t) ~entry_pc
    ~len : Cpu.t -> int =
  match Program.locate code entry_pc with
  | None -> invalid_arg "Block_compile.compile: entry pc outside code"
  | Some (si, ii) ->
    let s = code.Program.segments.(si) in
    if len <= 0 || ii + len > Array.length s.Program.seg_instrs then
      invalid_arg "Block_compile.compile: block overruns its segment";
    let end_pc = entry_pc + (len * Isa.instr_size) in
    let fin (cpu : Cpu.t) =
      cpu.Cpu.pc <- end_pc;
      len
    in
    let rec build k next =
      if k < 0 then next
      else
        let pc = entry_pc + (k * Isa.instr_size) in
        build (k - 1)
          (compile_one ~pc ~idx:k ~safe:(safe_of pc) ~next
             s.Program.seg_instrs.(ii + k))
    in
    build (len - 1) fin

(** Compile and install every block of [bounds] — [(entry_pc, length)]
    pairs, typically [Static_an.Cfg.block_bounds] — into the CPU's block
    table, engaging the tier for all subsequent {!Cpu.run} calls. *)
let install ?safe_of cpu (bounds : (int * int) array) =
  let code = cpu.Cpu.code in
  Cpu.install_blocks cpu
    (Array.map
       (fun (entry_pc, len) -> (entry_pc, len, compile ?safe_of code ~entry_pc ~len))
       bounds)
