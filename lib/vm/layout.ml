(** Address-space layout, including randomization.

    The layout mirrors a classic 32-bit Linux process: non-PIE application
    code and globals at fixed low addresses, shared-library code in the
    0x4f...... range, the heap in the middle, and a downward-growing stack
    near the top. Address space randomization perturbs the library, heap and
    stack bases by 12 bits of page-granular entropy, so an exploit that
    guesses a library address succeeds with probability 2^-12 — the ρ used
    by the paper's hit-list analysis (Section 6.3). *)

type region_kind =
  | App_code
  | Lib_code
  | Data
  | Heap
  | Stack

type t = {
  app_code_base : int;
  app_code_limit : int;  (** exclusive; set once app code is loaded *)
  lib_code_base : int;
  lib_code_limit : int;
  data_base : int;
  data_limit : int;
  heap_base : int;
  mutable heap_brk : int;  (** exclusive end of the mapped heap *)
  heap_max : int;
  stack_top : int;         (** exclusive; sp starts here *)
  stack_limit : int;       (** lowest mapped stack address *)
  aslr : bool;
  entropy_bits : int;
}

let entropy_bits_default = 12

(** Probability that a single guessed randomized address is correct. *)
let guess_probability = 1.0 /. float_of_int (1 lsl entropy_bits_default)

let default_stack_size = 64 * 1024
let default_heap_max = 1024 * 1024

(* Default entropy source when the caller supplies no [rand]: a private
   seeded stream, NOT the ambient [Random] state. Every defense/epidemic
   path threads an explicit per-host [Random.State] already; this default
   only covers ad-hoc callers, and making it self-seeded keeps even those
   reproducible across runs and independent of domain-local generators. *)
let default_rand =
  let st = Random.State.make [| 0x1a40; 0x511EE9 |] in
  fun bits -> Random.State.int st (1 lsl bits)

(** Create a layout. [rand] supplies the randomized page offsets (pass a
    seeded PRNG draw for reproducible experiments); with [aslr:false] all
    bases sit at their canonical positions, modelling a legacy host. The
    code limits are placeholders until {!set_code_limits} is called by the
    loader. *)
let create ?(aslr = true) ?(rand = default_rand)
    ?(stack_size = default_stack_size) ?(heap_max = default_heap_max) () =
  let bits = entropy_bits_default in
  let page = Memory.page_size in
  let slide () = if aslr then rand bits * page else 0 in
  let lib_code_base = 0x4f770000 + slide () in
  let heap_base = 0x10000000 + slide () in
  let stack_top = 0xbf000000 - slide () in
  {
    app_code_base = 0x08048000;
    app_code_limit = 0x08048000;
    lib_code_base;
    lib_code_limit = lib_code_base;
    data_base = 0x08100000;
    data_limit = 0x08100000 + 64 * 1024;
    heap_base;
    heap_brk = heap_base;
    heap_max = heap_base + heap_max;
    stack_top;
    stack_limit = stack_top - stack_size;
    aslr;
    entropy_bits = bits;
  }

(** Independent copy (the only mutable field is [heap_brk]); template
    instantiation gives each cloned host its own break pointer. *)
let copy t = { t with heap_brk = t.heap_brk }

(** Record the end of loaded code segments (called by the loader). *)
let set_code_limits t ~app_limit ~lib_limit =
  { t with app_code_limit = app_limit; lib_code_limit = lib_limit }

(** Grow the mapped heap to at least [addr]. Returns [false] when the heap
    arena is exhausted. *)
let grow_heap t addr =
  if addr > t.heap_max then false
  else begin
    if addr > t.heap_brk then t.heap_brk <- addr;
    true
  end

(** Heap pages are mapped at page granularity, as a real kernel maps them:
    the bytes between the break and the end of its page are accessible
    (which is why a heap overflow can corrupt neighbours silently for a
    while) and the first touch past that page faults. *)
let heap_mapped_limit t =
  (t.heap_brk + Memory.page_size - 1) land lnot (Memory.page_size - 1)

(** Classify an address; [None] means unmapped (access faults). The low
    64 KiB is never mapped, so NULL-pointer dereferences fault exactly as
    they do on a real OS. *)
let region t addr =
  if addr < 0x10000 then None
  else if addr >= t.app_code_base && addr < t.app_code_limit then Some App_code
  else if addr >= t.lib_code_base && addr < t.lib_code_limit then Some Lib_code
  else if addr >= t.data_base && addr < t.data_limit then Some Data
  else if addr >= t.heap_base && addr < heap_mapped_limit t then Some Heap
  else if addr >= t.stack_limit && addr < t.stack_top then Some Stack
  else None

(* The validity predicates below are the interpreter's per-access checks,
   so they test the ranges directly instead of going through [region].
   This is equivalent: regions never overlap and every base is above the
   unmapped low 64 KiB, so membership in a data (resp. code) range decides
   the answer without classifying first. *)

(** Is [addr] readable/writable data (code segments are not writable)? *)
let valid_data t addr =
  (addr >= t.data_base && addr < t.data_limit)
  || (addr >= t.stack_limit && addr < t.stack_top)
  || (addr >= t.heap_base && addr < heap_mapped_limit t)

(** Is [addr] a fetchable code address? *)
let valid_code t addr =
  (addr >= t.app_code_base && addr < t.app_code_limit)
  || (addr >= t.lib_code_base && addr < t.lib_code_limit)

let region_name = function
  | App_code -> "app-code"
  | Lib_code -> "lib-code"
  | Data -> "data"
  | Heap -> "heap"
  | Stack -> "stack"

(** Human-readable placement of an address, for reports. *)
let describe t addr =
  match region t addr with
  | Some k -> region_name k
  | None -> "unmapped"
