(** The CPU interpreter with dynamic instrumentation.

    Execution is two-phase: each step first {e computes} the full effect
    record of the current instruction (operand values, memory addresses,
    would-be writes, control destination, even the fault it is about to
    raise) without touching machine state, then presents it to the
    registered pre-hooks, and only then commits. This is what lets a VSEF
    veto a single store or control transfer before the corruption happens —
    the analogue of attaching PIN instrumentation to a running process.

    The interpreter is tiered: {!run} executes unhooked instructions by
    direct interpretation (no effect record, no hook dispatch) and drops
    to the instrumented path only at pcs with hooks installed, when global
    hooks exist, or for instructions the fast path cannot reproduce
    exactly (syscalls, anything that would fault). Observable semantics
    are identical either way; instrumentation overhead is proportional to
    the hooked instructions actually executed. *)

type hook = Event.effect_ -> unit

type hooks

type block_table
(** Dispatch tables for the block-superinstruction tier (tier 3): per
    basic block, a fused closure executing the whole body with one bounds
    check and one hook-mask/fuel test at entry. Built by
    {!Block_compile.install}; managed through {!install_blocks},
    {!clear_blocks}, and {!invalidate_block}. *)

type t = {
  regs : int array;
  mutable pc : int;
  mutable flag_a : int;  (** first operand of the last [Cmp] *)
  mutable flag_b : int;  (** second operand of the last [Cmp] *)
  mem : Memory.t;
  code : Program.t;
  layout : Layout.t;
  mutable sys_handler : t -> Event.effect_ -> int -> unit;
      (** OS services; fills [e_sys] of the effect it is given *)
  mutable halted : bool;
  mutable icount : int;  (** dynamic instructions executed *)
  mutable fast_retired : int;
      (** instructions retired on the uninstrumented fast path. Batched:
          charged at each fast-run exit, never per instruction. Monotonic —
          unlike [icount], rollback does not rewind it. *)
  mutable slow_retired : int;
      (** instructions retired on the instrumented path. Monotonic. *)
  mutable block_retired : int;
      (** instructions retired inside compiled basic-block
          superinstructions (tier 3). Batched per block. Monotonic;
          [block_retired + fast_retired + slow_retired] equals the
          instructions ever executed, in every configuration. *)
  mutable fault_count : int;  (** machine faults surfaced by {!run} *)
  mutable elision_trips : int;
      (** times a bounds-elided block closure saw an address outside its
          statically proven range; each trip permanently demotes the
          block to the fully guarded tiers *)
  hooks : hooks;
  pc_hook_mask : Bytes.t array;
      (** parallel to [code.segments]: non-zero bytes mark pcs with per-pc
          hooks, steering {!run}'s dispatch to the instrumented path *)
  mutable blocks : block_table option;
      (** compiled basic-block superinstructions, when installed *)
  scratch : Event.effect_;
      (** the one effect record the instrumented path reuses for every
          instruction — hooks may read it only during their callback *)
  scr_read : Event.access;   (** scratch buffer: the instruction's one read *)
  scr_write : Event.access;  (** scratch buffer: the instruction's one write *)
  scr_mr : Event.access list;  (** preallocated [[scr_read]] *)
  scr_mw : Event.access list;  (** preallocated [[scr_write]] *)
}

type outcome =
  | Halted
  | Blocked  (** a syscall would block; re-run when input is available *)
  | Faulted of Event.fault
  | Out_of_fuel

val create : mem:Memory.t -> layout:Layout.t -> code:Program.t -> t

val get_reg : t -> Isa.reg -> int
val set_reg : t -> Isa.reg -> int -> unit

(** Opaque handle for removing an installed hook. *)
type hook_id

val add_pre_hook : t -> hook -> hook_id
(** Hook every instruction, before state commit. *)

val add_post_hook : t -> hook -> hook_id
(** Hook every instruction, after commit (syscall effects visible). *)

val add_pc_hook : t -> pc:int -> hook -> hook_id
(** Pre-commit hook firing only at [pc] — the cheap, targeted
    instrumentation VSEFs are made of. *)

val add_pc_post_hook : t -> pc:int -> hook -> hook_id
(** Post-commit hook at one [pc] — for observing a syscall's result. *)

val remove_hook : t -> hook_id -> unit

val pc_hook_count : t -> int
(** Per-pc hooks (pre and post) currently installed — the VSEF
    footprint. *)

val global_hook_count : t -> int
(** Every-instruction hooks (pre and post) currently installed. Analyses
    that fuse their instrumentation into a private run loop (see
    {!Sweeper.Taint.run}) use this to verify nobody else is listening
    before bypassing the generic hook dispatch. *)

val fetch : t -> int -> Isa.instr
(** The instruction at an address; raises [Event.Fault (Exec_violation _)]
    when the address is unmapped or misaligned — exactly the fault
    {!step} would raise. Allocation-free. *)

val exec_fast : t -> Isa.instr -> bool
(** Direct interpretation of one instruction: no effect record, no hook
    dispatch, no allocation. Returns [true] when the instruction fully
    executed (pc and icount already advanced). Returns [false] — {e before
    mutating any state} — for anything it cannot reproduce exactly
    (syscalls, unresolved symbols, any access or control transfer that
    would fault); the caller must then re-execute the instruction with
    {!step}, where deferred-fault and hook semantics live. This is the
    building block {!run}'s fast path uses; it is exposed so heavyweight
    analyses can fuse their shadow-state updates into a private loop
    instead of paying the per-instruction effect-record cost. *)

val step : t -> Event.effect_
(** Execute one instruction on the instrumented path, always building the
    full effect record. The returned record is the CPU's reused scratch
    record: it is only valid until the next instruction executes — copy
    out anything you keep. Raises [Event.Fault] on machine faults (state
    unchanged, pc at the faulting instruction), [Event.Blocked] when a
    syscall would block, and propagates exceptions raised by hooks
    (detections) before commit. *)

val run : ?fuel:int -> t -> outcome
(** Run until halt, fault, block, or [fuel] instructions. Fault state is
    preserved so the core-dump analyzer can inspect it. Unhooked
    instructions execute on the uninstrumented fast path — or, when a
    block table is installed, on compiled block superinstructions —
    observable semantics are identical to repeated {!step}. [fuel] is
    exact in every tier: a block is entered only when the remaining fuel
    covers its whole body (block-entry fuel clamping), so [Out_of_fuel]
    lands on the same icount as per-instruction execution. *)

(** {2 Block-superinstruction tier (tier 3)} *)

val install_blocks : t -> (int * int * (t -> int)) array -> unit
(** Install compiled basic blocks as [(entry_pc, length, closure)]
    triples — normally via {!Block_compile.install}, which derives the
    bounds from a CFG and compiles the closures. Blocks containing
    currently hooked pcs start demoted to the per-instruction tiers;
    subsequent hook attach/detach keeps the demotion in sync, effective
    no later than the next block entry. *)

val clear_blocks : t -> unit
(** Remove the block table; execution falls back to the fast/slow tiers. *)

val invalidate_block : t -> pc:int -> unit
(** Permanently demote the block containing [pc] to per-instruction
    execution (takes effect no later than the next block entry). *)

val elision_trip : t -> pc:int -> unit
(** The soundness tripwire of bounds-check elision: count a proven-safe
    access caught outside its static range and {!invalidate_block} the
    block containing [pc]. Called by elided {!Block_compile} closures
    just before they decline. *)

val block_count : t -> int
(** Compiled blocks installed (0 when the tier is off). *)

(** Register-file snapshots (memory snapshots live in {!Memory}; the OS
    layer combines both into checkpoints). *)
type reg_snapshot

val snapshot_regs : t -> reg_snapshot
val restore_regs : t -> reg_snapshot -> unit
