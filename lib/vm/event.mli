(** Execution events: the per-instruction effect records that instrumentation
    hooks observe, and the machine faults that lightweight monitoring turns
    into attack detections.

    Every analysis in Sweeper — memory-bug detection, taint tracking,
    backward slicing, VSEF filters — consumes exactly these records, which
    is the moral equivalent of the paper's PIN instrumentation API. *)

(** One memory access performed by an instruction. Fields are mutable so
    the interpreter can reuse scratch records on the instrumented path (see
    the ownership note on {!effect_}); hooks must treat them as read-only. *)
type access = {
  mutable a_addr : int;
  mutable a_size : int;  (** 1 or 4 bytes *)
  mutable a_value : int;
}

(** Where control goes after the instruction. All constructors are
    constant so that recording a control transfer never allocates; the
    operands live in the effect record's [e_ctrl_a]/[e_ctrl_ret] fields:
    - [Jump]: [e_ctrl_a] is the destination pc
    - [Call_to]: [e_ctrl_a] is the call target, [e_ctrl_ret] the return pc
    - [Ret_to]: [e_ctrl_a] is the address being returned to
    - [Sys]: [e_ctrl_a] is the syscall number *)
type ctrl = Next | Jump | Call_to | Ret_to | Sys | Stop

(** Side effects of a syscall, reported by the OS layer so that analyses can
    see I/O (taint sources, allocation events, infection attempts). *)
type sys_io =
  | Io_none
  | Io_recv of { buf : int; len : int; msg_id : int }
      (** [len] network bytes of message [msg_id] written at [buf] *)
  | Io_send of { buf : int; len : int }
  | Io_alloc of { ptr : int; size : int }
  | Io_free of { ptr : int; status : [ `Ok | `Double_free | `Bad_pointer ] }
  | Io_exec of { cmd : string }  (** arbitrary code execution — infection *)
  | Io_exit of int
  | Io_other of string

(** Machine faults. These are what address-space randomization converts an
    exploit attempt into, and hence what the lightweight monitor sees. *)
type fault =
  | Segv_read of int   (** load from an unmapped/unreadable address *)
  | Segv_write of int  (** store to an unmapped/unwritable address *)
  | Exec_violation of int
      (** control transfer to a non-code address (smashed return address,
          corrupted function pointer) *)
  | Div_zero

(** The effect record for one executed instruction. Pre-hooks observe it
    {e before} the machine state is updated (so a filter can veto the
    instruction); post-hooks observe it afterwards, with [e_sys] filled in
    for syscalls.

    Ownership: the interpreter owns the record. On the instrumented path it
    reuses one scratch record (and scratch {!access} buffers) per CPU, so
    an effect — including the one {!Cpu.step} returns — is only valid until
    the next instruction executes. Hooks read it during their callback and
    copy out whatever they keep; nothing in the system retains one. *)
type effect_ = {
  mutable e_seq : int;  (** dynamic instruction number *)
  mutable e_pc : int;
  mutable e_instr : Isa.instr;
  mutable e_regs_read : Isa.reg list;
      (** interned per-shape lists — never mutate *)
  mutable e_rw_count : int;
      (** register writes this instruction performs: 0, 1 or 2. Kept as
          fixed immediate slots (not a list) so the instrumented path never
          allocates; {!regs_written} rebuilds the list view. *)
  mutable e_rw0 : Isa.reg;
  mutable e_rw0_val : int;
  mutable e_rw1 : Isa.reg;  (** second slot — only [Pop rd]: rd then SP *)
  mutable e_rw1_val : int;
  mutable e_mem_reads : access list;
  mutable e_mem_writes : access list;
  mutable e_flags_read : bool;
  mutable e_flags_written : bool;
  mutable e_ctrl : ctrl;
  mutable e_ctrl_a : int;    (** see {!ctrl} *)
  mutable e_ctrl_ret : int;  (** see {!ctrl} *)
  mutable e_sys : sys_io;
  mutable e_fault : fault option;
      (** the fault this instruction is about to raise. Pre-hooks see it
          before it happens — a VSEF can veto the very instruction that
          would have crashed — and commit raises it without mutating any
          state. *)
}

val regs_written : effect_ -> (Isa.reg * int) list
(** The register writes as an association list (allocates — analyses on
    the hot path read the [e_rw*] slots directly). *)

val written_value : effect_ -> Isa.reg -> int option
(** The value this effect writes to [r], if any. As with [List.assoc] on
    the old list representation, the first matching slot wins. *)

exception Fault of fault

exception Blocked
(** Raised by the OS layer when a syscall cannot complete yet (e.g. [recv]
    with no pending input); the CPU run loop yields without advancing. *)

val fault_to_string : fault -> string
val pp_fault : Format.formatter -> fault -> unit
