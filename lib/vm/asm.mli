(** Relocatable code units and the loader/linker.

    A {!unit_} is assembled once (by hand or by the MiniC code generator)
    with symbolic labels; it is loaded into a process at a base address
    chosen by the layout — which is how the same library code lands at a
    different randomized base in every process instance. *)

type item =
  | Label of string
  | Ins of Isa.instr

type unit_ = {
  unit_name : string;
  items : item list;
}

(** A loaded, fully-resolved code segment. Units load contiguously, so the
    decoded instructions form a single dense {!Program.t} segment. *)
type image = {
  base : int;
  limit : int;  (** exclusive *)
  code : Program.t;                       (** dense decoded instructions *)
  symbols : (string, int) Hashtbl.t;      (** label -> absolute address *)
  sym_of_addr : (int, string) Hashtbl.t;  (** first label at an address *)
}

exception Undefined_symbol of string
exception Duplicate_symbol of string

val make_unit : string -> item list -> unit_

val load :
  ?extern:(string -> int option) -> base:int -> unit_ list -> image
(** Load units contiguously at [base], resolving symbols across them and
    through [extern] (e.g. application code calling an already-loaded
    libc image, or data-segment symbols). *)

val symbol : image -> string -> int
(** Address of a symbol; raises {!Undefined_symbol}. *)

val symbolize : image -> int -> (string * int) option
(** The function symbol covering an address — the greatest non-local label
    (local labels start with '.') at or below it, with the offset. Used to
    attribute faulting instructions: "0x4f0f0907 in strcat". *)
