(** System call numbers, shared between the code generator (which emits
    [Syscall n]) and the OS layer (which implements them).

    Conventions: arguments in [r0]..[r3], result (if any) in [r0].
    - [sys_exit]: r0 = exit code.
    - [sys_recv]: r0 = buffer, r1 = max length; returns bytes read.
    - [sys_send]: r0 = buffer, r1 = length.
    - [sys_malloc]: r0 = size; returns user pointer, 0 on exhaustion.
    - [sys_free]: r0 = user pointer.
    - [sys_log]: r0 = NUL-terminated string.
    - [sys_exec]: r0 = command string — arbitrary code execution, the
      infection event every exploit is trying to reach.
    - [sys_random]: returns a pseudo-random word (logged for replay).
    - [sys_time]: returns a logical clock value (logged for replay). *)

val sys_exit : int
val sys_recv : int
val sys_send : int
val sys_malloc : int
val sys_free : int
val sys_log : int
val sys_exec : int
val sys_random : int
val sys_time : int

val name : int -> string
(** Human-readable name for traces ("recv", "exec", …). *)
