(** The dense decoded program: the CPU's code store.

    Code is a small set of contiguous segments (application image, library
    image), each an immutable array of decoded instructions indexed by
    [(pc - base) / Isa.instr_size]. Instruction fetch is two compares and
    an array load — no hashing — which is what lets the uninstrumented
    interpreter run at memory speed. Segments are immutable after load;
    self-modifying code does not exist on this machine (code pages are not
    writable data, see {!Layout}). *)

type segment = {
  seg_base : int;
  seg_limit : int;  (** exclusive: [seg_base + length * instr_size] *)
  seg_instrs : Isa.instr array;
  seg_fp : int;
      (** content fingerprint of [seg_instrs], fixed at construction:
          two segments with equal [(seg_base, seg_limit, seg_fp)] decode
          the same code for identity-check purposes, so consumers that
          must validate "same program?" per replay (e.g.
          [Static_an.Staint.matches]) compare three ints per segment
          instead of re-walking every instruction *)
}

type t = { segments : segment array }

let fingerprint instrs =
  (* [Hashtbl.hash] alone is useless here — it samples a bounded number
     of words — so fold it per instruction with a multiplicative mix.
     Instructions are small pure variants, well under the per-value
     traversal limits. *)
  Array.fold_left
    (fun h ins -> ((h * 0x10531) + Hashtbl.hash ins) land max_int)
    (Array.length instrs)
    instrs

let make_segment ~base instrs =
  {
    seg_base = base;
    seg_limit = base + (Array.length instrs * Isa.instr_size);
    seg_instrs = instrs;
    seg_fp = fingerprint instrs;
  }

let of_segments segs =
  let a = Array.of_list segs in
  Array.sort (fun s1 s2 -> compare s1.seg_base s2.seg_base) a;
  { segments = a }

let of_instrs ~base instrs = { segments = [| make_segment ~base instrs |] }

(** Concatenate the segments of several programs (e.g. the app and libc
    images of one process) into a single code store. *)
let merge ts =
  of_segments (List.concat_map (fun t -> Array.to_list t.segments) ts)

(** [(segment index, instruction index)] of an instruction address, or
    [None] when the address is outside every segment or misaligned. *)
let locate t pc =
  let segs = t.segments in
  let n = Array.length segs in
  let rec go i =
    if i >= n then None
    else
      let s = Array.unsafe_get segs i in
      if pc >= s.seg_base && pc < s.seg_limit then
        if (pc - s.seg_base) mod Isa.instr_size <> 0 then None
        else Some (i, (pc - s.seg_base) / Isa.instr_size)
      else go (i + 1)
  in
  go 0

(** The instruction at [pc], or [None] (unmapped or misaligned — the CPU
    turns that into an [Exec_violation]). *)
let fetch t pc =
  let segs = t.segments in
  let n = Array.length segs in
  let rec go i =
    if i >= n then None
    else
      let s = Array.unsafe_get segs i in
      if pc >= s.seg_base && pc < s.seg_limit then
        let off = pc - s.seg_base in
        if off mod Isa.instr_size <> 0 then None
        else Some (Array.unsafe_get s.seg_instrs (off / Isa.instr_size))
      else go (i + 1)
  in
  go 0

(** Iterate every (address, instruction) pair, segments in base order. *)
let iteri f t =
  Array.iter
    (fun s ->
      Array.iteri
        (fun i ins -> f (s.seg_base + (i * Isa.instr_size)) ins)
        s.seg_instrs)
    t.segments

(** Total number of decoded instructions. *)
let length t =
  Array.fold_left (fun acc s -> acc + Array.length s.seg_instrs) 0 t.segments
