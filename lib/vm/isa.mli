(** Instruction set of the simulated machine.

    The machine is a small 32-bit load/store architecture with a real,
    in-memory call stack: [Call] pushes the return address into stack memory
    and [Ret] pops it back, so a buffer overflow that reaches the saved
    return-address slot genuinely hijacks control flow — the property every
    Sweeper analysis depends on.

    Instructions occupy {!instr_size} bytes of address space each, so code
    addresses look and behave like the byte addresses the paper reports
    (e.g. the faulting store "0x4f0f0907 in strcat"). *)

(** General-purpose registers. [SP] and [FP] take part in the normal
    register file; the calling convention (see {!Minic.Codegen}) gives them
    their stack/frame roles. *)
type reg =
  | R0  (** return value / first scratch *)
  | R1
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7
  | R8
  | R9
  | SP  (** stack pointer (grows towards lower addresses) *)
  | FP  (** frame pointer *)

val reg_index : reg -> int
(** Dense index in [0, num_regs): register files and analysis lattices are
    arrays indexed by this. *)

val num_regs : int

val reg_of_index : int -> reg
(** Inverse of {!reg_index}; raises [Invalid_argument] out of range. *)

val reg_name : reg -> string

(** Right-hand operands: an immediate, a register, or a symbol whose address
    is resolved when the unit is loaded (symbols are how position-independent
    code units survive address-space randomization). *)
type operand =
  | Imm of int
  | Reg of reg
  | Sym of string

(** Branch/call targets. [Lbl] targets are resolved to absolute addresses at
    load time. *)
type target =
  | Addr of int
  | Lbl of string

(** Conditions evaluated against the flags set by the last [Cmp]. Unsigned
    variants exist because address comparisons in the runtime need them. *)
type cond =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Ult
  | Uge

type binop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr

(** The instruction set. Loads and stores exist in word (4-byte) and byte
    granularity; byte stores are what string routines use, which is why a
    string overflow corrupts adjacent memory one byte at a time exactly as
    on real hardware. *)
type instr =
  | Mov of reg * operand               (** rd := op *)
  | Bin of binop * reg * operand       (** rd := rd <op> src *)
  | Not of reg
  | Neg of reg
  | Load of reg * reg * int            (** rd := mem32[rs + off] *)
  | Loadb of reg * reg * int           (** rd := mem8[rs + off] (zero-extended) *)
  | Store of reg * int * reg           (** mem32[rbase + off] := rs *)
  | Storeb of reg * int * reg          (** mem8[rbase + off] := rs & 0xff *)
  | Push of operand                    (** sp -= 4; mem32[sp] := op *)
  | Pop of reg                         (** rd := mem32[sp]; sp += 4 *)
  | Cmp of reg * operand               (** set flags from rd - op *)
  | Jmp of target
  | Jcc of cond * target
  | Call of target                     (** push return address; jump *)
  | CallInd of reg                     (** indirect call through register *)
  | Ret                                (** pop return address from the stack *)
  | Syscall of int                     (** service request; args in r0..r3 *)
  | Halt
  | Nop

val instr_size : int
(** Bytes of code address space per instruction. *)

val cond_name : cond -> string
val binop_name : binop -> string

(** {1 32-bit arithmetic helpers} shared by the interpreter and the
    analyses. *)

val word_mask : int

val to_u32 : int -> int
(** Truncate to an unsigned 32-bit value. *)

val to_s32 : int -> int
(** Sign-extend a 32-bit value to an OCaml int. *)

val eval_binop : binop -> int -> int -> int
(** Evaluate a binary operation with 32-bit wrap-around semantics.
    Division and modulus by zero raise [Division_by_zero] so the CPU can
    turn them into machine faults. *)

val eval_cond : cond -> int -> int -> bool
(** Evaluate a condition against the two operands of the last [Cmp]. *)
