(** Basic-block superinstruction compiler (execution tier 3).

    Compiles each basic block of a program into one fused OCaml closure —
    a chain of per-instruction specialized closures where fallthrough is
    a tail call — so {!Cpu.run} pays one bounds check and one
    hook-mask/fuel test per {e block} instead of per instruction. Every
    closure honors the same decline-before-mutate contract as
    {!Cpu.exec_fast}: a mid-block syscall, fault, unresolved symbol, or
    invalid indirect-control target stops before mutating state and hands
    the pc back to the per-instruction tiers, leaving machine state
    byte-identical to per-instruction execution.

    {b Bounds-proof elision.} When the caller supplies [safe_of] — per-pc
    facts from {!Static_an.Absint} — each Load/Loadb/Store/Storeb whose
    effective address is statically proven to stay inside one
    runtime-constant region [\[lo, hi)] swaps the full
    {!Layout.valid_data} walk (a multi-range check involving the mutable
    heap break) for two compares against the baked-in constants. The
    static proof only covers CFG-following executions, so the residual
    compare is also the soundness tripwire: an address outside the range
    (only reachable via a control-flow hijack, or a wrong proof) counts
    an {!Cpu.elision_trip}, permanently demotes the block to the fully
    guarded tiers, and declines — behaviour stays byte-identical to a
    never-elided run in every case; only tier accounting differs. *)

val compile :
  ?safe_of:(int -> (int * int) option) ->
  Program.t ->
  entry_pc:int ->
  len:int ->
  Cpu.t ->
  int
(** [compile code ~entry_pc ~len] fuses the [len] instructions starting
    at [entry_pc] into one closure obeying the tier-3 contract: it
    returns the number of instructions retired (= [len] iff the whole
    block ran, including via a taken terminator), leaves [pc] at the
    next instruction to execute, and never touches [icount] or the
    retirement counters — {!Cpu.run} accounts the returned count.
    Raises [Invalid_argument] if the range is not decoded code within a
    single segment. [safe_of pc] returning [Some (lo, hi)] elides the
    memory guard of the access at [pc] down to a range check against
    the constant region [\[lo, hi)]. *)

val install :
  ?safe_of:(int -> (int * int) option) -> Cpu.t -> (int * int) array -> unit
(** [install cpu bounds] compiles each [(entry_pc, length)] pair —
    typically [Static_an.Cfg.block_bounds] of the CPU's program — and
    installs the resulting table via {!Cpu.install_blocks}, engaging
    tier 3 for subsequent {!Cpu.run} calls. Blocks overlapping currently
    hooked pcs stay demoted until the hooks detach. *)
