(** The dense decoded program: the CPU's code store.

    Code is a small set of contiguous segments (application image, library
    image), each an immutable array of decoded instructions indexed by
    [(pc - base) / Isa.instr_size]. Instruction fetch is two compares and
    an array load — no hashing. The representation is exposed so the
    interpreter's fast path can walk it without intermediate allocation. *)

type segment = {
  seg_base : int;
  seg_limit : int;  (** exclusive: [seg_base + length * instr_size] *)
  seg_instrs : Isa.instr array;
  seg_fp : int;
      (** content fingerprint of [seg_instrs], fixed by [make_segment]:
          separate decodes of the same image at the same layout get equal
          fingerprints, so per-replay "same program?" validation (e.g.
          {!Static_an.Staint.matches}) is three int compares per segment
          instead of a structural walk over every instruction *)
}

type t = { segments : segment array }

val make_segment : base:int -> Isa.instr array -> segment

val of_segments : segment list -> t
(** Segments sorted by base; callers guarantee they do not overlap. *)

val of_instrs : base:int -> Isa.instr array -> t

val merge : t list -> t
(** Concatenate the segments of several programs (e.g. the app and libc
    images of one process) into a single code store. *)

val locate : t -> int -> (int * int) option
(** [(segment index, instruction index)] of an instruction address, or
    [None] when outside every segment or misaligned. *)

val fetch : t -> int -> Isa.instr option
(** The instruction at an address, or [None] (unmapped or misaligned — the
    CPU turns that into an [Exec_violation]). *)

val iteri : (int -> Isa.instr -> unit) -> t -> unit
(** Iterate every (address, instruction) pair, segments in base order. *)

val length : t -> int
(** Total number of decoded instructions. *)
