(** Byte-addressable paged memory with copy-on-write snapshots.

    This is the substrate for Sweeper's lightweight checkpointing: taking a
    snapshot is O(mapped pages) pointer copies, and keeping it alive costs
    one page copy per page subsequently dirtied — the cost model of the
    fork()-based shadow processes of Rx/FlashBack, which is what makes the
    checkpoint-interval/overhead curve of the paper's Figure 4
    reproducible.

    Accesses are served through two one-entry TLBs (last page read, last
    page written), invalidated on {!snapshot} and {!restore}; bulk
    operations ({!load_bytes}, {!store_bytes}, {!load_cstring}) move whole
    page spans per step rather than single bytes. *)

val page_bits : int
val page_size : int

type t
(** A mutable address space. Validity of addresses is the CPU's concern
    (see {!Layout}); the memory itself materializes zero pages on demand. *)

type snapshot
(** An immutable snapshot of a whole address space. *)

val create : unit -> t

val stats : t -> int * int
(** [(cow_copies, pages_mapped)] counters since the last {!reset_stats}. *)

val reset_stats : t -> unit

val tlb_stats : t -> int * int * int
(** [(read_misses, write_misses, invalidations)] for the one-entry TLBs.
    Counted on the refill/invalidate paths only — the hit path is
    untouched; hits are derivable as accesses minus misses. Monotonic. *)

val load_byte : t -> int -> int
val store_byte : t -> int -> int -> unit

val load_word : t -> int -> int
(** Little-endian 32-bit load; handles page-crossing addresses. *)

val store_word : t -> int -> int -> unit

val load_bytes : t -> int -> int -> string
(** [load_bytes mem addr len] reads [len] raw bytes. *)

val store_bytes : t -> int -> string -> unit

val load_cstring : ?limit:int -> t -> int -> string
(** The NUL-terminated string at the address, up to [limit] bytes
    (default 64 KiB) as a safety net against corrupted memory. *)

val snapshot : ?eager:bool -> t -> snapshot
(** Take a copy-on-write snapshot: current pages become shared, the next
    write to any of them pays one page copy. [eager:true] deep-copies every
    page up front instead — the full-copy baseline of the checkpointing
    ablation. *)

val restore : t -> snapshot -> unit
(** Restore a snapshot taken on this memory. The snapshot stays valid and
    can be restored again (analysis re-executes from the same checkpoint
    repeatedly). *)

val clone : t -> t
(** Copy-on-write clone of the whole address space: O(mapped pages)
    pointer copies now, one page copy per page either side subsequently
    dirties. The clone is fully independent of the source — writes and
    snapshots on one never affect the other. This is how templated host
    creation stamps out hosts from one booted image per app. *)

val mapped_pages : t -> int
(** Number of pages currently materialized. *)
