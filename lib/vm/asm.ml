(** Relocatable code units and the loader/linker.

    A {!unit_} is assembled once (by hand or by the MiniC code generator)
    with symbolic labels; it is loaded into a process at a base address
    chosen by the layout, which is how the same library code lands at a
    different randomized base in every process instance. *)

type item =
  | Label of string
  | Ins of Isa.instr

(** A relocatable unit: a named sequence of labels and instructions. *)
type unit_ = {
  unit_name : string;
  items : item list;
}

(** An image is a loaded, fully-resolved code segment. Units load
    contiguously, so the decoded instructions form a single dense
    {!Program.t} segment — the CPU fetches from it by index, not by
    hashing. *)
type image = {
  base : int;
  limit : int;  (** exclusive *)
  code : Program.t;                        (** dense decoded instructions *)
  symbols : (string, int) Hashtbl.t;       (** label -> absolute address *)
  sym_of_addr : (int, string) Hashtbl.t;   (** first label at an address *)
}

exception Undefined_symbol of string
exception Duplicate_symbol of string

let make_unit name items = { unit_name = name; items }

(* First pass: assign each instruction an index and record label indices. *)
let index_unit u =
  let labels = Hashtbl.create 16 in
  let instrs = ref [] in
  let n = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Label l ->
        if Hashtbl.mem labels l then raise (Duplicate_symbol l);
        Hashtbl.replace labels l !n
      | Ins i ->
        instrs := i :: !instrs;
        incr n)
    u.items;
  (labels, Array.of_list (List.rev !instrs))

(** Load one or more units contiguously at [base]. Symbols are shared
    across the units being loaded and may also refer to [extern] symbols
    (e.g. app code calling into an already-loaded libc image). *)
let load ?(extern = fun (_ : string) -> (None : int option)) ~base units =
  let symbols = Hashtbl.create 64 in
  let sym_of_addr = Hashtbl.create 64 in
  (* Place every unit, collecting absolute symbol addresses. *)
  let placed =
    let cursor = ref base in
    List.map
      (fun u ->
        let labels, instrs = index_unit u in
        let ubase = !cursor in
        Hashtbl.iter
          (fun l idx ->
            let addr = ubase + (idx * Isa.instr_size) in
            if Hashtbl.mem symbols l then raise (Duplicate_symbol l);
            Hashtbl.replace symbols l addr;
            if not (Hashtbl.mem sym_of_addr addr) then
              Hashtbl.replace sym_of_addr addr l)
          labels;
        cursor := !cursor + (Array.length instrs * Isa.instr_size);
        (ubase, instrs))
      units
    |> fun placed_units -> (placed_units, !cursor)
  in
  let placed_units, limit = placed in
  let resolve_sym s =
    match Hashtbl.find_opt symbols s with
    | Some a -> a
    | None -> (
      match extern s with
      | Some a -> a
      | None -> raise (Undefined_symbol s))
  in
  let resolve_operand = function
    | Isa.Sym s -> Isa.Imm (resolve_sym s)
    | (Isa.Imm _ | Isa.Reg _) as op -> op
  in
  let resolve_target = function
    | Isa.Lbl l -> Isa.Addr (resolve_sym l)
    | Isa.Addr _ as t -> t
  in
  let resolve_instr (i : Isa.instr) : Isa.instr =
    match i with
    | Mov (r, op) -> Mov (r, resolve_operand op)
    | Bin (op, r, o) -> Bin (op, r, resolve_operand o)
    | Push op -> Push (resolve_operand op)
    | Cmp (r, op) -> Cmp (r, resolve_operand op)
    | Jmp t -> Jmp (resolve_target t)
    | Jcc (c, t) -> Jcc (c, resolve_target t)
    | Call t -> Call (resolve_target t)
    | Not _ | Neg _ | Load _ | Loadb _ | Store _ | Storeb _ | Pop _
    | CallInd _ | Ret | Syscall _ | Halt | Nop ->
      i
  in
  (* Units were placed back to back, so the resolved instructions of all of
     them form one contiguous segment starting at [base]. *)
  let code =
    Program.of_instrs ~base
      (Array.concat
         (List.map (fun (_, instrs) -> Array.map resolve_instr instrs)
            placed_units))
  in
  { base; limit; code; symbols; sym_of_addr }

(** Address of [sym] in a loaded image. Raises {!Undefined_symbol}. *)
let symbol img sym =
  match Hashtbl.find_opt img.symbols sym with
  | Some a -> a
  | None -> raise (Undefined_symbol sym)

(** The function symbol covering [addr]: the greatest non-local symbol
    (local labels start with '.') whose address is [<= addr], with the
    offset. Used to attribute faulting instructions to functions in
    analysis reports ("0x4f0f0907 in strcat"). *)
let symbolize img addr =
  let best = ref None in
  Hashtbl.iter
    (fun name a ->
      if a <= addr && String.length name > 0 && name.[0] <> '.' then
        match !best with
        | Some (_, ba) when ba >= a -> ()
        | _ -> best := Some (name, a))
    img.symbols;
  match !best with
  | Some (name, a) when addr < img.limit -> Some (name, addr - a)
  | _ -> None
