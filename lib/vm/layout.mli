(** Address-space layout, including randomization.

    The layout mirrors a classic 32-bit Linux process: non-PIE application
    code and globals at fixed low addresses, shared-library code high, the
    heap in the middle, a downward-growing stack near the top. Address
    space randomization perturbs the library, heap and stack bases by
    {!entropy_bits_default} bits of page-granular entropy, so an exploit
    that guesses a library address succeeds with probability
    {!guess_probability} — the ρ of the paper's hit-list analysis. *)

type region_kind =
  | App_code
  | Lib_code
  | Data
  | Heap
  | Stack

type t = {
  app_code_base : int;
  app_code_limit : int;  (** exclusive; set once app code is loaded *)
  lib_code_base : int;
  lib_code_limit : int;
  data_base : int;
  data_limit : int;
  heap_base : int;
  mutable heap_brk : int;  (** exclusive end of the allocated heap *)
  heap_max : int;
  stack_top : int;   (** exclusive; sp starts just below *)
  stack_limit : int; (** lowest mapped stack address *)
  aslr : bool;
  entropy_bits : int;
}

val entropy_bits_default : int

val guess_probability : float
(** Probability that one guessed randomized address is correct (2⁻¹²). *)

val default_stack_size : int
val default_heap_max : int

val create :
  ?aslr:bool ->
  ?rand:(int -> int) ->
  ?stack_size:int ->
  ?heap_max:int ->
  unit ->
  t
(** Create a layout. [rand] supplies the randomized page offsets (pass a
    seeded PRNG draw for reproducible experiments); with [aslr:false] all
    bases sit at their canonical positions, modelling a legacy host. *)

val copy : t -> t
(** Independent copy — the clone's mutable [heap_brk] no longer aliases
    the original's. Used by templated host instantiation. *)

val set_code_limits : t -> app_limit:int -> lib_limit:int -> t
(** Record the end of the loaded code segments (called by the loader). *)

val grow_heap : t -> int -> bool
(** Grow the allocated heap to cover the given address; [false] when the
    arena is exhausted. *)

val heap_mapped_limit : t -> int
(** End of the mapped heap, rounded up to a page — accesses between the
    break and this limit succeed silently, past it they fault, exactly as
    with a real kernel's page-granular mappings. *)

val region : t -> int -> region_kind option
(** Classify an address; [None] is unmapped. The low 64 KiB is never
    mapped, so NULL dereferences fault. *)

val valid_data : t -> int -> bool
(** Readable/writable data address (code segments are not writable). *)

val valid_code : t -> int -> bool
(** Fetchable code address. *)

val region_name : region_kind -> string
val describe : t -> int -> string
