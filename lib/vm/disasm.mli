(** Pretty-printing of instructions and addresses, for analysis reports. *)

val operand_to_string : Isa.operand -> string
val target_to_string : Isa.target -> string
val instr_to_string : Isa.instr -> string

val addr_to_string : ?images:Asm.image list -> int -> string
(** "0x4f0f0907 (strcat+0x1c)" — attribute an address to a symbol using the
    loaded images' symbol tables. *)
