(** Recovery: rollback plus re-execution without the attacker's input.

    After analysis identifies the malicious message(s), the process is
    rolled back to the checkpoint predating them, the network log is
    replayed with those messages dropped, and responses already committed
    to clients are suppressed (the output-commit handling inherited from
    Rx). When the replay catches up with the log, the server goes back to
    live service — no restart, no lost in-memory state. *)

type outcome = {
  rec_status : [ `Recovered | `Crashed_again of Vm.Event.fault | `Stopped ];
  rec_replayed : int;   (** messages re-executed *)
  rec_skipped : int;    (** malicious messages dropped *)
  rec_instructions : int;
}

(** Roll [server] back to [ck] and re-execute, skipping the messages in
    [skip]. On success the server is live again (network log back in
    [Live] mode, blocked on input). *)
let recover (server : Osim.Server.t) (ck : Osim.Checkpoint.t) ~skip : outcome =
  let sp =
    Obs.Trace.begin_span ~cat:"recovery" ~pid:server.Osim.Server.id
      ~vts_ms:(Osim.Server.vtime_ms server)
      ~args:[ ("skip", string_of_int (List.length skip)) ]
      "recovery"
  in
  let proc = server.Osim.Server.proc in
  let net = proc.Osim.Process.net in
  let upto = Osim.Netlog.message_count net in
  let skip_set =
    List.fold_left (fun s i -> Osim.Netlog.Int_set.add i s)
      Osim.Netlog.Int_set.empty skip
  in
  (* Malicious messages are dropped now and stay dropped in any future
     rollback-and-replay (a later VSEF recovery must not resurrect them) —
     and every checkpoint taken while one of them was in flight is purged:
     its memory image contains the attack's effects. *)
  Osim.Netlog.quarantine net skip;
  (match List.sort compare skip with
  | first_bad :: _ ->
    Osim.Checkpoint.purge_after server.Osim.Server.ring ~cursor:first_bad
  | [] -> ());
  (* Not sandboxed: output commit handles duplicate responses. *)
  Stage.Replay.arm ~sandbox:false proc ck ~upto ~skip:skip_set;
  let before = proc.Osim.Process.cpu.Vm.Cpu.icount in
  let status =
    match Osim.Server.run server with
    | Osim.Server.Idle -> `Recovered
    | Osim.Server.Crashed f -> `Crashed_again f
    | Osim.Server.Stopped | Osim.Server.Infected _ -> `Stopped
  in
  Stage.Replay.release proc;
  (* Leave a fresh, clean rollback point for the resumed service. *)
  if status = `Recovered then Osim.Server.take_checkpoint server;
  Obs.Metrics.inc
    (Obs.Metrics.counter ~help:"rollback-and-replay recoveries"
       "sweeper_recoveries_total");
  Obs.Trace.end_span
    ~vts_ms:(Osim.Server.vtime_ms server)
    ~args:
      [ ( "outcome",
          match status with
          | `Recovered -> "recovered"
          | `Crashed_again _ -> "crashed-again"
          | `Stopped -> "stopped" );
      ]
    sp;
  {
    rec_status = status;
    rec_replayed = upto - ck.Osim.Checkpoint.ck_net_cursor - List.length skip;
    rec_skipped = List.length skip;
    rec_instructions = proc.Osim.Process.cpu.Vm.Cpu.icount - before;
  }
