(** The end-to-end Sweeper defense process of the paper's Figure 3:
    lightweight monitoring trips → rollback → staged heavyweight analysis
    (memory state → memory bugs → taint → input isolation → slicing) →
    antibody generation → recovery.

    Each analysis is a {!Stage.t} replaying from the same checkpoint with
    different instrumentation; {!handle_attack} folds a declarative stage
    list over a shared {!Stage.ctx}, so policies (sampling, per-stage
    skipping, escalation) manipulate the list rather than the code. *)

module Int_set : Set.S with type elt = int and type t = Set.Make(Int).t

type stage_timing = Stage.timing = {
  st_name : string;
  st_wall_ms : float;     (** measured harness time for the stage *)
  st_instructions : int;  (** dynamic instructions monitored *)
}

type report = {
  a_app : string;
  a_fault : Vm.Event.fault;
  a_coredump : Coredump.report;
  a_membug : Membug.report;
  a_taint : Taint.result;
  a_isolation : int list;  (** message ids reproducing the crash *)
  a_isolation_stream : bool;
      (** true when only the (minimized) suspect stream reproduces it —
          stateful exploits like the CVS double free *)
  a_slice : Slice.summary;
  a_slice_verifies : bool;  (** every blamed pc is inside the slice *)
  a_vsefs : Vsef.t list;    (** initial + refined + taint, in order found *)
  a_signature : Signature.t option;
  a_antibody : Antibody.t;
  a_timings : stage_timing list;
  a_time_to_first_vsef_ms : float;
  a_time_to_best_vsef_ms : float;
  a_initial_analysis_ms : float;  (** VSEFs + exploit input isolated *)
  a_total_ms : float;
}

(** The pipeline stages, individually addressable so policies can build
    reduced or reordered pipelines: the "static-prefilter" pre-stage plus
    the five Figure 3 analyses — "Memory State Analysis", "Memory Bug
    Detection", "Input/Taint Analysis", "Input Isolation", "Dynamic
    Slicing". The prefilter computes {!Static_an.Staint} reachability of
    the process's code into [cx_static]; the taint replay then prunes its
    fused-loop shadow work to the statically reachable pcs (results are
    provably unchanged). *)

val static_stage : Stage.t
val coredump_stage : Stage.t
val membug_stage : Stage.t
val taint_stage : Stage.t
val isolation_stage : Stage.t
val slicing_stage : Stage.t

val default_stages : Stage.t list
(** The Figure 3 pipeline, in order. *)

val finish : ?recover:bool -> Stage.ctx -> report
(** Cross-check the stage products, assemble the antibody, and (by
    default) recover the server. Stages that did not run contribute
    neutral products: empty findings, [No_fault] taint, a vacuously
    verifying slice. *)

val handle_attack :
  ?recover:bool ->
  ?stages:Stage.t list ->
  app:string ->
  Osim.Server.t ->
  Vm.Event.fault ->
  report
(** Analyze an attack just detected on the server by folding [stages]
    (default: {!default_stages}) over a fresh context. With [recover] (the
    default) the process ends up rolled back and live again, with the
    antibody installed and the malicious input quarantined. *)

val protected_handle :
  app:string ->
  Osim.Server.t ->
  string ->
  [ `Served of int
  | `Filtered of string
  | `Stopped
  | `Attack of report
  | `Compromised
  | `Blocked_by_vsef of Detection.t ]
(** Serve one message on a Sweeper-protected server, running the full
    defense process when the lightweight monitoring trips, and handling
    VSEF vetoes by dropping the in-flight message and rolling back. *)
