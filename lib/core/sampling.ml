(** Request sampling (Section 4.2): run heavyweight taint monitoring on a
    fraction of requests during normal execution.

    Address-space randomization catches memory-corruption exploits with
    high probability but misses two things: attacks that do not corrupt
    memory, and the occasional exploit whose address guess is right.
    Sampling closes that gap probabilistically — every [rate]-th message is
    serviced under full dynamic taint analysis, whose {!Taint.guard} vetoes
    a tainted control transfer or a tainted [exec] {e before} it commits,
    even when no fault would have occurred. Because instrumentation is
    dynamic, the decision is made per message at runtime; a host can dial
    the rate with its load ("use heavier-weight detection when idle"). *)

type t = {
  server : Osim.Server.t;
  mutable rate : int;  (** sample every [rate]-th message; 0 disables *)
  mutable counter : int;
  mutable sampled : int;    (** messages serviced under taint monitoring *)
  mutable alarms : int;     (** attacks the sampling monitor caught *)
}

let create ?(rate = 10) server = { server; rate; counter = 0; sampled = 0; alarms = 0 }

(** Should the next message be sampled? Advances the phase counter. *)
let due t =
  if t.rate <= 0 then false
  else begin
    t.counter <- t.counter + 1;
    t.counter mod t.rate = 0
  end

type outcome =
  | Plain of
      [ `Served of int | `Filtered of string | `Stopped
      | `Crashed of int * Vm.Event.fault | `Infected of int * string ]
      (** the unsampled (or uneventful sampled) result, as {!Osim.Server.handle} *)
  | Taint_alarm of Detection.t
      (** the sampling monitor vetoed a tainted operation *)

(** Service one message, sampling it when due. *)
let handle t payload =
  let proc = t.server.Osim.Server.proc in
  if not (due t) then Plain (Osim.Server.handle t.server payload)
  else begin
    t.sampled <- t.sampled + 1;
    let st = Taint.create proc in
    let post = Vm.Cpu.add_post_hook proc.cpu (Taint.on_effect st) in
    let pre = Vm.Cpu.add_pre_hook proc.cpu (Taint.guard st) in
    (* The hooks must come off even when the monitors trip with a fault
       (not a veto) and the attack pipeline takes over — a leaked sampling
       hook would tax every later message. *)
    Fun.protect
      ~finally:(fun () ->
        Vm.Cpu.remove_hook proc.cpu post;
        Vm.Cpu.remove_hook proc.cpu pre)
      (fun () ->
        match Osim.Server.handle t.server payload with
        | r -> Plain r
        | exception Detection.Detected d ->
          t.alarms <- t.alarms + 1;
          Taint_alarm d)
  end

(** Fraction of messages that paid the heavyweight monitoring cost. *)
let sampled_fraction t =
  if t.counter = 0 then 0. else float_of_int t.sampled /. float_of_int t.counter
