(** First-class analysis stages: the control plane of the Figure 3
    pipeline.

    Each heavyweight analysis (memory state, memory bugs, taint, input
    isolation, slicing) is a {!t}: a named transformation of a shared
    {!ctx} that carries the faulted server, the rollback point, the
    suspect window, and every product accumulated so far. The
    {!Orchestrator} is then just a declarative list of stages — the §4.2
    sampling policies and future per-stage skipping/escalation manipulate
    the list, not the code.

    All replay mechanics — rollback, network-log rearm, sandboxing, fuel,
    and the missing-checkpoint fallback — live in exactly one place, the
    {!Replay} driver. Stages never touch {!Osim.Netlog.set_mode}
    themselves. *)

module Int_set = Set.Make (Int)

type timing = {
  st_name : string;
  st_wall_ms : float;      (** measured harness time for the stage *)
  st_instructions : int;   (** dynamic instructions monitored *)
}

type ctx = {
  cx_app : string;
  cx_server : Osim.Server.t;
  cx_fault : Vm.Event.fault;
  cx_crash_pc : int;
      (** pc at fault time, captured before any stage rolls back *)
  cx_ck : Osim.Checkpoint.t;   (** the rollback point every stage replays from *)
  cx_ck_fallback : bool;
      (** true when the ring had been overwritten/purged and the replay
          driver fell back to the server's origin checkpoint *)
  cx_upto : int;               (** replay window: log cursor at the crash *)
  cx_suspects : int list;      (** message ids consumed since [cx_ck] *)
  (* Stage products, in pipeline order. [None] means "stage not run". *)
  cx_static : Static_an.Staint.t option;
      (** static taint reachability of the process's code, computed by the
          static-prefilter stage and consumed by the taint replay *)
  cx_coredump : Coredump.report option;
  cx_membug : Membug.report option;
  cx_taint : Taint.result option;
  cx_isolation : (int list * bool) option;
      (** responsible message ids, stream-only flag *)
  cx_slice : Slice.result option;
  cx_vsefs : Vsef.t list;      (** accumulated, in order found *)
  cx_timings : timing list;    (** newest first; see {!timings} *)
  cx_marks : (string * float) list;
      (** named elapsed-ms milestones ("first-vsef", …) *)
  cx_t_start : float;
}

let proc cx = cx.cx_server.Osim.Server.proc

let elapsed_ms cx = (Unix.gettimeofday () -. cx.cx_t_start) *. 1000.

let mark cx name =
  Obs.Trace.instant ~cat:"stage" ~pid:cx.cx_server.Osim.Server.id name;
  { cx with cx_marks = (name, elapsed_ms cx) :: cx.cx_marks }

let mark_ms cx name =
  Option.value ~default:0. (List.assoc_opt name cx.cx_marks)

let add_vsefs cx vsefs = { cx with cx_vsefs = cx.cx_vsefs @ vsefs }

type t = {
  name : string;          (** the Table 2/3 stage name *)
  run : ctx -> ctx;
  instructions : ctx -> int;
      (** dynamic instructions the stage monitored, projected from the
          updated context (0 for stages that only read machine state) *)
}

(** Replay driver: the only owner of rollback, netlog rearm, sandboxing,
    and fuel. *)
module Replay = struct
  let analysis_fuel = 20_000_000
  (** fuel for an instrumented analysis replay *)

  let crash_fuel = 50_000_000
  (** fuel for an uninstrumented does-it-still-crash replay *)

  (** The newest checkpoint at or before [msg_index] — falling back to the
      oldest retained one, and finally to the server's origin checkpoint
      ("re-run from process start") when the ring has been overwritten or
      purged empty. Returns [(ck, fallback?)]. *)
  let rollback_point (server : Osim.Server.t) ~msg_index =
    match Osim.Checkpoint.before_message server.Osim.Server.ring ~msg_index with
    | Some ck -> (ck, false)
    | None -> (
      match Osim.Checkpoint.oldest server.Osim.Server.ring with
      | Some ck -> (ck, false)
      | None -> (server.Osim.Server.origin, true))

  (** Roll back to [ck] and arm replay of the log window up to [upto],
      dropping the messages in [skip]. Analysis replays are sandboxed
      (no external outputs); recovery replays are not (output commit
      handles duplicates). *)
  let arm ?(sandbox = true) (p : Osim.Process.t) ck ~upto ~skip =
    Osim.Checkpoint.rollback p ck;
    Osim.Netlog.set_mode p.Osim.Process.net (Osim.Netlog.Replay { upto; skip });
    p.Osim.Process.sandbox <- sandbox

  (** Back to live service: log in [Live] mode, sandbox off. *)
  let release (p : Osim.Process.t) =
    Osim.Netlog.set_mode p.Osim.Process.net Osim.Netlog.Live;
    p.Osim.Process.sandbox <- false

  (** Rearm the context's replay window and run one instrumented analysis
      over it. *)
  let analyze ?(skip = Int_set.empty) cx f =
    arm (proc cx) cx.cx_ck ~upto:cx.cx_upto ~skip;
    f (proc cx)

  (** Replay the window with no instrumentation; true when the crash (or
      the compromise) recurs. *)
  let crashes ?(skip = Int_set.empty) cx =
    arm (proc cx) cx.cx_ck ~upto:cx.cx_upto ~skip;
    match Osim.Process.run ~fuel:crash_fuel (proc cx) with
    | Vm.Cpu.Faulted _ -> true
    | Vm.Cpu.Halted -> (proc cx).Osim.Process.compromised <> None
    | Vm.Cpu.Blocked | Vm.Cpu.Out_of_fuel -> false
end

(** The shared context for an attack just detected on [server]: rollback
    point (newest checkpoint at or before the message being serviced when
    the monitors tripped), suspect window, crash pc. Reads machine state
    only — the first rollback happens when a stage asks the driver to
    replay. *)
let init ~app (server : Osim.Server.t) (fault : Vm.Event.fault) =
  let p = server.Osim.Server.proc in
  let net = p.Osim.Process.net in
  let crash_cursor = Osim.Netlog.cursor net in
  let ck, fallback =
    Replay.rollback_point server ~msg_index:(max 0 (crash_cursor - 1))
  in
  let suspects =
    List.map
      (fun m -> m.Osim.Netlog.m_id)
      (Osim.Netlog.consumed_since net ck.Osim.Checkpoint.ck_net_cursor)
  in
  {
    cx_app = app;
    cx_server = server;
    cx_fault = fault;
    cx_crash_pc = p.Osim.Process.cpu.Vm.Cpu.pc;
    cx_ck = ck;
    cx_ck_fallback = fallback;
    cx_upto = crash_cursor;
    cx_suspects = suspects;
    cx_static = None;
    cx_coredump = None;
    cx_membug = None;
    cx_taint = None;
    cx_isolation = None;
    cx_slice = None;
    cx_vsefs = [];
    cx_timings = [];
    cx_marks = [];
    cx_t_start = Unix.gettimeofday ();
  }

(** Run one stage, recording its wall time and monitored instructions.
    The timing comes from {!Obs.Trace.timed}, so the Table 3 numbers and
    the emitted stage span are the same measurement; per-stage instruction
    budgets land in the default metrics registry. *)
let run stage cx =
  let server = cx.cx_server in
  let cx', ms =
    Obs.Trace.timed ~cat:"stage" ~pid:server.Osim.Server.id
      ~vts_ms:(Osim.Server.vtime_ms server) stage.name (fun () ->
        stage.run cx)
  in
  let instrs = stage.instructions cx' in
  Obs.Metrics.add
    (Obs.Metrics.counter ~help:"dynamic instructions monitored, per stage"
       ~labels:[ ("stage", stage.name) ]
       "sweeper_stage_instructions_total")
    instrs;
  Obs.Metrics.inc
    (Obs.Metrics.counter ~help:"pipeline stage executions"
       ~labels:[ ("stage", stage.name) ]
       "sweeper_stage_runs_total");
  {
    cx' with
    cx_timings =
      { st_name = stage.name; st_wall_ms = ms; st_instructions = instrs }
      :: cx'.cx_timings;
  }

let run_pipeline stages cx = List.fold_left (fun cx st -> run st cx) cx stages

let timings cx = List.rev cx.cx_timings
