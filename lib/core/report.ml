(** Human-readable rendering of analysis reports, in the shape of the
    paper's Tables 2 and 3. *)

let describe proc addr = Osim.Process.describe_addr proc addr

(* Resolve a relocatable VSEF location against a concrete process. *)
let describe_loc proc loc =
  Osim.Process.describe_addr proc (Vsef.pc_of_loc proc loc)

(** The per-stage detail rows of Table 2 for one analyzed attack. *)
let table2_rows proc (r : Orchestrator.report) =
  let d = describe_loc proc in
  let row1 = ("Memory State Analysis", r.a_coredump.Coredump.c_summary) in
  let row1b =
    match r.a_coredump.Coredump.c_vsef with
    | Some v -> [ ("", "VSEF: " ^ Vsef.check_to_string ~describe:d v.Vsef.v_check) ]
    | None -> []
  in
  let row2 =
    match r.a_membug.Membug.m_findings with
    | [] -> [ ("Memory Bug Detection", "No memory bug detected") ]
    | fs ->
      List.concat_map
        (fun f ->
          let vsef_row =
            match Membug.vsef_of_finding ~app:r.a_app ~proc f with
            | Some v ->
              [ ("", "VSEF: " ^ Vsef.check_to_string ~describe:d v.Vsef.v_check) ]
            | None -> []
          in
          ( "Memory Bug Detection",
            Membug.finding_to_string ~describe:(describe proc) f )
          :: vsef_row)
        (List.sort_uniq compare fs)
  in
  let row3 =
    let input =
      match r.a_isolation with
      | [] -> "no input isolated"
      | ids when r.a_isolation_stream ->
        Printf.sprintf "[request stream: %d messages]" (List.length ids)
      | [ id ] ->
        let m = (Osim.Netlog.message proc.Osim.Process.net id).m_payload in
        let m = if String.length m > 40 then String.sub m 0 37 ^ "..." else m in
        String.escaped m
      | ids -> Printf.sprintf "messages %s" (String.concat "," (List.map string_of_int ids))
    in
    [ ("Input/Taint Analysis",
       Printf.sprintf "%s; input: %s"
         (Taint.verdict_to_string r.a_taint.Taint.t_verdict) input) ]
  in
  let row4 =
    [ ("Slicing",
       Printf.sprintf "%s (slice: %d dynamic instrs, %d sites, %d msgs)"
         (if r.a_slice_verifies then "Verifies results" else "CONTRADICTS results")
         r.a_slice.Slice.s_slice_size
         (Orchestrator.Int_set.cardinal r.a_slice.Slice.s_pcs)
         (Orchestrator.Int_set.cardinal r.a_slice.Slice.s_msgs)) ]
  in
  (row1 :: row1b) @ row2 @ row3 @ row4

(** A one-line summary in the style of Table 2's "Defense Result Summary". *)
let summary (r : Orchestrator.report) =
  Printf.sprintf "%s: %s; %d VSEF(s); input %s; slice %s" r.a_app
    (Coredump.diagnosis_to_string r.a_coredump.Coredump.c_diagnosis)
    (List.length r.a_vsefs)
    (match r.a_isolation with
    | [] -> "not found"
    | _ when r.a_isolation_stream -> "found (stream)"
    | _ -> "found")
    (if r.a_slice_verifies then "verifies" else "contradicts")

(** The Table 3 timing row for one attack. *)
let table3_row (r : Orchestrator.report) =
  let stage name =
    match List.find_opt (fun s -> s.Orchestrator.st_name = name) r.a_timings with
    | Some s -> s.Orchestrator.st_wall_ms
    | None -> 0.
  in
  ( r.a_app,
    r.a_time_to_first_vsef_ms,
    r.a_time_to_best_vsef_ms,
    r.a_initial_analysis_ms,
    r.a_total_ms,
    stage Orchestrator.coredump_stage.Stage.name,
    stage Orchestrator.membug_stage.Stage.name,
    stage Orchestrator.taint_stage.Stage.name
    +. stage Orchestrator.isolation_stage.Stage.name,
    stage Orchestrator.slicing_stage.Stage.name )

(* The render functions build strings (via buffers) so tests can capture
   and assert the exact output; the print_* entry points below just write
   the same bytes to stdout. *)

let table2_to_buffer buf proc r =
  Printf.bprintf buf "== %s ==\n" (summary r);
  List.iter
    (fun (k, v) ->
      if k = "" then Printf.bprintf buf "    %s\n" v
      else Printf.bprintf buf "  %-24s %s\n" k v)
    (table2_rows proc r)

let table2_to_string proc r =
  let buf = Buffer.create 512 in
  table2_to_buffer buf proc r;
  Buffer.contents buf

let table3_header () =
  Printf.sprintf "%-10s %12s %12s %12s %12s | %10s %10s %10s %10s\n" "App"
    "1stVSEF(ms)" "bestVSEF(ms)" "initial(ms)" "total(ms)" "memstate"
    "membug" "taint" "slicing"

let table3_row_to_string r =
  let app, fv, bv, init, tot, ms, mb, ta, sl = table3_row r in
  Printf.sprintf
    "%-10s %12.2f %12.2f %12.2f %12.2f | %10.2f %10.2f %10.2f %10.2f\n" app fv
    bv init tot ms mb ta sl

let print_table2 proc r = print_string (table2_to_string proc r)
let print_table3_header () = print_string (table3_header ())
let print_table3_row r = print_string (table3_row_to_string r)
