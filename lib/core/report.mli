(** Human-readable rendering of analysis reports, in the shape of the
    paper's Tables 2 and 3. *)

val describe : Osim.Process.t -> int -> string
(** Pretty-print an absolute address against a process's symbol tables. *)

val describe_loc : Osim.Process.t -> Vsef.loc -> string
(** Resolve a relocatable VSEF location against a concrete process. *)

val table2_rows : Osim.Process.t -> Orchestrator.report -> (string * string) list
(** The per-stage detail rows of Table 2 for one analyzed attack (an empty
    first component continues the previous row). *)

val summary : Orchestrator.report -> string
(** A one-line "Defense Result Summary". *)

val table3_row :
  Orchestrator.report ->
  string * float * float * float * float * float * float * float * float
(** (app, first-VSEF ms, best-VSEF ms, initial ms, total ms, memory-state,
    membug, taint+isolation, slicing). *)

val table2_to_buffer : Buffer.t -> Osim.Process.t -> Orchestrator.report -> unit

val table2_to_string : Osim.Process.t -> Orchestrator.report -> string
(** The full Table 2 block ([print_table2]'s exact bytes). *)

val table3_header : unit -> string
val table3_row_to_string : Orchestrator.report -> string

val print_table2 : Osim.Process.t -> Orchestrator.report -> unit
(** [print_string (table2_to_string proc r)]. *)

val print_table3_header : unit -> unit
val print_table3_row : Orchestrator.report -> unit
