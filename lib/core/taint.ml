(** Dynamic taint analysis (the TaintCheck re-implementation).

    Network bytes are tainted with the id of the message they arrived in;
    taint flows through data movement and arithmetic (not through pointers
    or control flow — that is what distinguishes it from slicing) and an
    alarm is raised when tainted data is about to be used as a control
    target. Because the fault itself pre-empts hooks, the verdict for a
    crashed replay is computed by {!classify_fault} from the machine state
    at the fault. *)

module Int_set = Set.Make (Int)

type verdict =
  | Tainted_ret of { pc : int; msgs : Int_set.t }
      (** a return address built from these messages was (about to be) used *)
  | Tainted_call of { pc : int; msgs : Int_set.t }
  | Tainted_store_fault of { pc : int; msgs : Int_set.t }
      (** the faulting store was writing attacker-controlled bytes *)
  | Tainted_exec of { pc : int; msgs : Int_set.t }
      (** tainted bytes reached [system]/[exec] *)
  | Untainted_fault of { pc : int }
      (** the fault involved no tainted data (e.g. a NULL dereference
          reached through an untainted pointer) *)
  | No_fault

type t = {
  proc : Osim.Process.t;
  byte_taint : (int, Int_set.t) Hashtbl.t;
  reg_taint : Int_set.t array;
  mutable prop_pcs : Int_set.t;  (** instructions that moved taint *)
  mutable sources_seen : Int_set.t;  (** message ids read *)
}

let create proc =
  {
    proc;
    byte_taint = Hashtbl.create 1024;
    reg_taint = Array.make Vm.Isa.num_regs Int_set.empty;
    prop_pcs = Int_set.empty;
    sources_seen = Int_set.empty;
  }

let mem_taint st (a : Vm.Event.access) =
  let rec go acc i =
    if i >= a.a_size then acc
    else
      match Hashtbl.find_opt st.byte_taint (a.a_addr + i) with
      | Some s -> go (Int_set.union acc s) (i + 1)
      | None -> go acc (i + 1)
  in
  go Int_set.empty 0

let set_mem_taint st addr size taint =
  for i = 0 to size - 1 do
    if Int_set.is_empty taint then Hashtbl.remove st.byte_taint (addr + i)
    else Hashtbl.replace st.byte_taint (addr + i) taint
  done

let reg st r = st.reg_taint.(Vm.Isa.reg_index r)
let set_reg st r v = st.reg_taint.(Vm.Isa.reg_index r) <- v

let operand_taint st = function
  | Vm.Isa.Reg r -> reg st r
  | Vm.Isa.Imm _ | Vm.Isa.Sym _ -> Int_set.empty

(* Propagation, per instruction shape. Pointer (base-register) taint is
   deliberately not propagated into loads/stores — TaintCheck semantics. *)
let on_effect st (eff : Vm.Event.effect_) =
  let mark taint =
    if not (Int_set.is_empty taint) then
      st.prop_pcs <- Int_set.add eff.e_pc st.prop_pcs
  in
  (match eff.e_instr with
  | Vm.Isa.Mov (rd, op) ->
    let t = operand_taint st op in
    mark t;
    set_reg st rd t
  | Vm.Isa.Bin (_, rd, src) ->
    let t = Int_set.union (reg st rd) (operand_taint st src) in
    mark t;
    set_reg st rd t
  | Vm.Isa.Not rd | Vm.Isa.Neg rd -> mark (reg st rd)
  | Vm.Isa.Load (rd, _, _) | Vm.Isa.Loadb (rd, _, _) ->
    let t =
      List.fold_left
        (fun acc a -> Int_set.union acc (mem_taint st a))
        Int_set.empty eff.e_mem_reads
    in
    mark t;
    set_reg st rd t
  | Vm.Isa.Store (_, _, rs) | Vm.Isa.Storeb (_, _, rs) ->
    let t = reg st rs in
    mark t;
    List.iter
      (fun (a : Vm.Event.access) -> set_mem_taint st a.a_addr a.a_size t)
      eff.e_mem_writes
  | Vm.Isa.Push op ->
    let t = operand_taint st op in
    mark t;
    List.iter
      (fun (a : Vm.Event.access) -> set_mem_taint st a.a_addr a.a_size t)
      eff.e_mem_writes
  | Vm.Isa.Pop rd ->
    let t =
      List.fold_left
        (fun acc a -> Int_set.union acc (mem_taint st a))
        Int_set.empty eff.e_mem_reads
    in
    mark t;
    set_reg st rd t
  | Vm.Isa.Call _ | Vm.Isa.CallInd _ ->
    (* The pushed return address is clean. *)
    List.iter
      (fun (a : Vm.Event.access) ->
        set_mem_taint st a.a_addr a.a_size Int_set.empty)
      eff.e_mem_writes
  | Vm.Isa.Cmp _ | Vm.Isa.Jmp _ | Vm.Isa.Jcc _ | Vm.Isa.Ret
  | Vm.Isa.Syscall _ | Vm.Isa.Halt | Vm.Isa.Nop ->
    ());
  (* Syscall sources and register results. *)
  match eff.e_sys with
  | Vm.Event.Io_recv { buf; len; msg_id } ->
    st.sources_seen <- Int_set.add msg_id st.sources_seen;
    for i = 0 to len - 1 do
      Hashtbl.replace st.byte_taint (buf + i) (Int_set.singleton msg_id)
    done;
    set_reg st Vm.Isa.R0 Int_set.empty
  | Vm.Event.Io_alloc _ | Vm.Event.Io_free _ | Vm.Event.Io_send _
  | Vm.Event.Io_exit _ | Vm.Event.Io_other _ ->
    set_reg st Vm.Isa.R0 Int_set.empty
  | Vm.Event.Io_exec _ -> ()
  | Vm.Event.Io_none -> ()

(** A pre-hook check that stops tainted data {e before} it is misused:
    a return to a tainted address, an indirect call through a tainted
    register, or tainted bytes handed to [exec]. This is TaintCheck run as
    an online monitor — what a host doing Section 4.2 sampling (or a
    sentinel node) uses to catch attacks randomization would miss, including
    ones whose address guess was right. *)
let guard st (eff : Vm.Event.effect_) =
  let tainted_set =
    match eff.e_instr with
    | Vm.Isa.Ret ->
      List.fold_left
        (fun acc a -> Int_set.union acc (mem_taint st a))
        Int_set.empty eff.e_mem_reads
    | Vm.Isa.CallInd r -> reg st r
    | Vm.Isa.Syscall n when n = Vm.Sysno.sys_exec ->
      (* The command string the process is about to execute. *)
      let addr = Vm.Cpu.get_reg st.proc.Osim.Process.cpu Vm.Isa.R0 in
      let rec scan acc i =
        if i > 256 then acc
        else
          let byte = Vm.Memory.load_byte st.proc.Osim.Process.mem (addr + i) in
          if byte = 0 then acc
          else
            scan
              (Int_set.union acc
                 (mem_taint st { a_addr = addr + i; a_size = 1; a_value = 0 }))
              (i + 1)
      in
      scan Int_set.empty 0
    | _ -> Int_set.empty
  in
  if not (Int_set.is_empty tainted_set) then
    Detection.detect
      (Detection.Taint_sink
         (String.concat ","
            (List.map string_of_int (Int_set.elements tainted_set))))
      ~pc:eff.e_pc ~detail:"tainted data about to be misused"

(** After a replay ends, classify its outcome: did tainted data cause it? *)
let classify_fault st (outcome : Vm.Cpu.outcome) : verdict =
  let cpu = st.proc.Osim.Process.cpu in
  let pc = cpu.Vm.Cpu.pc in
  let word_at addr =
    mem_taint st { a_addr = addr; a_size = 4; a_value = 0 }
  in
  match outcome with
  | Vm.Cpu.Faulted _ -> (
    match Vm.Program.fetch cpu.Vm.Cpu.code pc with
    | Some Vm.Isa.Ret ->
      let sp = Vm.Cpu.get_reg cpu Vm.Isa.SP in
      let t = word_at sp in
      if Int_set.is_empty t then Untainted_fault { pc }
      else Tainted_ret { pc; msgs = t }
    | Some (Vm.Isa.CallInd r) ->
      let t = reg st r in
      if Int_set.is_empty t then Untainted_fault { pc }
      else Tainted_call { pc; msgs = t }
    | Some (Vm.Isa.Store (_, _, rs) | Vm.Isa.Storeb (_, _, rs)) ->
      let t = reg st rs in
      if Int_set.is_empty t then Untainted_fault { pc }
      else Tainted_store_fault { pc; msgs = t }
    | _ -> Untainted_fault { pc })
  | Vm.Cpu.Halted | Vm.Cpu.Blocked | Vm.Cpu.Out_of_fuel -> (
    (* Did the run reach exec with tainted bytes (successful hijack)? *)
    match st.proc.Osim.Process.compromised with
    | Some _ -> Tainted_exec { pc; msgs = st.sources_seen }
    | None -> No_fault)

type result = {
  t_verdict : verdict;
  t_prop_pcs : int list;      (** taint-propagating instructions *)
  t_instructions : int;
}

let verdict_msgs = function
  | Tainted_ret { msgs; _ } | Tainted_call { msgs; _ }
  | Tainted_store_fault { msgs; _ } | Tainted_exec { msgs; _ } ->
    Int_set.elements msgs
  | Untainted_fault _ | No_fault -> []

let verdict_to_string = function
  | Tainted_ret { pc; msgs } ->
    Printf.sprintf "tainted return address at 0x%x (messages %s)" pc
      (String.concat "," (List.map string_of_int (Int_set.elements msgs)))
  | Tainted_call { pc; msgs } ->
    Printf.sprintf "tainted call target at 0x%x (messages %s)" pc
      (String.concat "," (List.map string_of_int (Int_set.elements msgs)))
  | Tainted_store_fault { pc; msgs } ->
    Printf.sprintf "faulting store of tainted data at 0x%x (messages %s)" pc
      (String.concat "," (List.map string_of_int (Int_set.elements msgs)))
  | Tainted_exec { pc; msgs } ->
    Printf.sprintf "tainted data reached exec at 0x%x (messages %s)" pc
      (String.concat "," (List.map string_of_int (Int_set.elements msgs)))
  | Untainted_fault { pc } -> Printf.sprintf "fault at 0x%x involved no taint" pc
  | No_fault -> "no fault during monitored replay"

(** Attach the tracker, run the replay to completion, classify, detach. *)
let run ?(fuel = 20_000_000) (proc : Osim.Process.t) : result =
  let st = create proc in
  let before = proc.Osim.Process.cpu.Vm.Cpu.icount in
  let hook = Vm.Cpu.add_post_hook proc.cpu (on_effect st) in
  let outcome = Vm.Cpu.run ~fuel proc.cpu in
  Vm.Cpu.remove_hook proc.cpu hook;
  {
    t_verdict = classify_fault st outcome;
    t_prop_pcs = Int_set.elements st.prop_pcs;
    t_instructions = proc.Osim.Process.cpu.Vm.Cpu.icount - before;
  }

(** Build the taint-derived VSEF from a completed analysis. [proc] supplies
    the image bases for making the check relocatable. *)
let vsef_of_result ~app ~proc (r : result) =
  match r.t_verdict with
  | Tainted_ret { pc; _ } | Tainted_call { pc; _ }
  | Tainted_store_fault { pc; _ } | Tainted_exec { pc; _ } ->
    Some
      {
        Vsef.v_name = "taint-filter";
        v_app = app;
        v_check =
          Vsef.Taint_filter
            {
              source_sysno = Vm.Sysno.sys_recv;
              prop = List.map (Vsef.loc_of_pc proc) r.t_prop_pcs;
              sink = Vsef.loc_of_pc proc pc;
            };
        v_origin = Vsef.From_taint;
      }
  | Untainted_fault _ | No_fault -> None
