(** Dynamic taint analysis (the TaintCheck re-implementation).

    Network bytes are tainted with the id of the message they arrived in;
    taint flows through data movement and arithmetic (not through pointers
    or control flow — that is what distinguishes it from slicing) and an
    alarm is raised when tainted data is about to be used as a control
    target. Because the fault itself pre-empts hooks, the verdict for a
    crashed replay is computed by {!classify_fault} from the machine state
    at the fault.

    The engine is built for replay speed ("first VSEF in under a second"):

    - {e Interned label sets.} A taint label set is represented by a small
      integer id; id 0 is the empty set. Singleton, union and equality are
      O(1) after the first time a combination is seen (unions of interned
      ids are memoized), and the common case — one message's taint flowing
      unmixed — never allocates.
    - {e Paged shadow memory.} Byte taint lives in per-page label-id
      arrays parallel to {!Vm.Memory}'s pages, materialized only for pages
      that have ever held taint, with a one-entry TLB over the page table.
      Tainting a received buffer is a range fill; clean stores to pages
      that never saw taint are a no-op.
    - {e A fused run loop.} {!run} does not pay the generic effect-record
      instrumentation cost per instruction: it reuses the interpreter's
      uninstrumented executor ({!Vm.Cpu.exec_fast}) for machine semantics
      and applies the shadow updates inline, dropping to the hooked
      instrumented path only for syscalls and faulting instructions. The
      hook-based entry points ({!on_effect}, {!guard}) remain for online
      monitors (sampling) and for differential testing.

    {!Oracle} is the original per-byte hashtable engine, kept verbatim as
    the reference implementation the fast engine is differentially tested
    against (see [test/test_taint_diff.ml]). *)

module Int_set = Set.Make (Int)

type verdict =
  | Tainted_ret of { pc : int; msgs : Int_set.t }
      (** a return address built from these messages was (about to be) used *)
  | Tainted_call of { pc : int; msgs : Int_set.t }
  | Tainted_store_fault of { pc : int; msgs : Int_set.t }
      (** the faulting store was writing attacker-controlled bytes *)
  | Tainted_exec of { pc : int; msgs : Int_set.t }
      (** tainted bytes reached [system]/[exec] *)
  | Untainted_fault of { pc : int }
      (** the fault involved no tainted data (e.g. a NULL dereference
          reached through an untainted pointer) *)
  | No_fault

(* The command string handed to [exec] is read by the syscall layer with
   [Memory.load_cstring]'s default limit; the guard's sink scan must cover
   exactly the same bytes. *)
let exec_scan_limit = 65536

(* ------------------------------------------------------------------ *)
(* Interned label sets                                                 *)
(* ------------------------------------------------------------------ *)

(* Sets are interned by their canonical element list (two structurally
   equal AVL sets can have different shapes, so the trees themselves are
   not usable as table keys). Ids are dense from 0 = empty. *)
type labels = {
  mutable sets : Int_set.t array;  (** id -> set *)
  mutable n_sets : int;
  by_elems : (int list, int) Hashtbl.t;
  singleton_memo : (int, int) Hashtbl.t;  (** msg id -> id *)
  union_memo : (int, int) Hashtbl.t;  (** (lo << 20) lor hi -> id *)
}

(* Bound so a memoized (lo, hi) id pair packs into one immediate key. *)
let max_label_ids = 1 lsl 20

let labels_create () =
  let by_elems = Hashtbl.create 64 in
  Hashtbl.replace by_elems [] 0;
  {
    sets = Array.make 64 Int_set.empty;
    n_sets = 1;
    by_elems;
    singleton_memo = Hashtbl.create 16;
    union_memo = Hashtbl.create 64;
  }

let set_of lb id = lb.sets.(id)

let intern lb s =
  if Int_set.is_empty s then 0
  else
    let key = Int_set.elements s in
    match Hashtbl.find_opt lb.by_elems key with
    | Some id -> id
    | None ->
      let id = lb.n_sets in
      if id >= max_label_ids then failwith "Taint: too many distinct label sets";
      if id = Array.length lb.sets then begin
        let bigger = Array.make (2 * id) Int_set.empty in
        Array.blit lb.sets 0 bigger 0 id;
        lb.sets <- bigger
      end;
      lb.sets.(id) <- s;
      lb.n_sets <- id + 1;
      Hashtbl.replace lb.by_elems key id;
      id

let singleton lb m =
  match Hashtbl.find_opt lb.singleton_memo m with
  | Some id -> id
  | None ->
    let id = intern lb (Int_set.singleton m) in
    Hashtbl.replace lb.singleton_memo m id;
    id

let union lb a b =
  if a = b || b = 0 then a
  else if a = 0 then b
  else
    let lo, hi = if a < b then (a, b) else (b, a) in
    let key = (lo lsl 20) lor hi in
    match Hashtbl.find_opt lb.union_memo key with
    | Some id -> id
    | None ->
      let id = intern lb (Int_set.union lb.sets.(lo) lb.sets.(hi)) in
      Hashtbl.replace lb.union_memo key id;
      id

(* ------------------------------------------------------------------ *)
(* Tracker state: register taint + paged shadow memory                 *)
(* ------------------------------------------------------------------ *)

let page_bits = Vm.Memory.page_bits
let page_size = Vm.Memory.page_size
let page_mask = page_size - 1

(* TLB-invalid sentinel; [tlb_idx = -1] never matches a page index. *)
let no_page : int array = [||]

type t = {
  proc : Osim.Process.t;
  labels : labels;
  shadow : (int, int array) Hashtbl.t;  (** page index -> per-byte label ids *)
  mutable tlb_idx : int;   (** page index cached in [tlb], or -1 *)
  mutable tlb : int array;
  mutable neg_idx : int;   (** page index known absent, or -1 *)
  reg_taint : int array;   (** label id per register *)
  prop_mask : Bytes.t array;
      (** parallel to code segments: non-zero bytes mark instructions that
          moved taint (the static prop set, maintained O(1) per mark) *)
  plans : int array array;
      (** parallel to code segments: the pre-decoded taint micro-op of each
          instruction (see [plan_of_instr]), so the fused loop dispatches
          on a small int instead of destructuring the instruction *)
  mutable any_taint : bool;  (** false until the first tainted byte exists *)
  mutable sources_seen : Int_set.t;  (** message ids read *)
  mutable trip_static : Static_an.Staint.t option;
      (** [Some] while running with statically pruned plans: the fused
          loop checks every retired [Ret]'s landing pc against this
          analysis's return-site set and reverts to full instrumentation
          on a miss (see [unprune]); [None] once tripped or when running
          unpruned *)
  trip_ret : Bytes.t array;
      (** per-segment return-site masks, parallel to the code segments,
          prefetched from the static result so the fused loop's [k_ret]
          check is one byte load in the common same-segment case;
          all-empty when running unpruned (no plan is ever [k_ret], so
          the masks are never consulted) *)
}

(* The taint-relevant content of one instruction, packed into one
   immediate: bits 0-3 the kind, 4-7 the destination/value register index,
   8-11 the source/base register index, 12+ the signed memory offset.
   Register indices come from [Isa.reg_index] (total, < 16), so the fused
   loop indexes the shadow register file without further decoding. *)
let k_exec = 0      (* no taint effect: Cmp, jumps, Ret, Halt, Nop, Syscall *)
let k_mov_const = 1 (* rd becomes clean *)
let k_mov_reg = 2   (* rd := taint of rs *)
let k_mark_rd = 3   (* rd's taint unchanged, mark if tainted: Not/Neg/Bin-imm *)
let k_bin_reg = 4   (* rd := rd ∪ rs *)
let k_load = 5
let k_loadb = 6
let k_store = 7
let k_storeb = 8
let k_push_reg = 9
let k_push_const = 10
let k_pop = 11
let k_call = 12     (* pushed return-address slot becomes clean *)

(* Pruned plans only: [Ret] plus the return-site tripwire. [Ret] is
   outside [K] (its dynamic update is a no-op), so the static model's
   one optimistic assumption — returns land on return sites — is
   checked on this kind, after the landing pc is committed. A miss
   (including a landing outside any segment, which the next dispatch
   faults on anyway) reverts to full instrumentation before the
   landed-on instruction executes, so no un-hooked pc ever runs outside
   the checked assumption. Keeping the check inside the plan dispatch
   (rather than re-matching the instruction after every step) makes the
   pruned loop's per-instruction cost identical to the global one
   everywhere except at an actual [Ret]. *)
let k_ret = 13

let pack kind a b off =
  kind lor (a lsl 4) lor (b lsl 8) lor (off lsl 12)

let plan_of_instr (i : Vm.Isa.instr) =
  let open Vm.Isa in
  let ri = reg_index in
  match i with
  | Mov (rd, Reg rs) -> pack k_mov_reg (ri rd) (ri rs) 0
  | Mov (rd, (Imm _ | Sym _)) -> pack k_mov_const (ri rd) 0 0
  | Bin (_, rd, Reg rs) -> pack k_bin_reg (ri rd) (ri rs) 0
  | Bin (_, rd, (Imm _ | Sym _)) | Not rd | Neg rd -> pack k_mark_rd (ri rd) 0 0
  | Load (rd, rs, off) -> pack k_load (ri rd) (ri rs) off
  | Loadb (rd, rs, off) -> pack k_loadb (ri rd) (ri rs) off
  | Store (rb, off, rs) -> pack k_store (ri rs) (ri rb) off
  | Storeb (rb, off, rs) -> pack k_storeb (ri rs) (ri rb) off
  | Push (Reg rs) -> pack k_push_reg 0 (ri rs) 0
  | Push (Imm _ | Sym _) -> pack k_push_const 0 0 0
  | Pop rd -> pack k_pop (ri rd) 0 0
  | Call _ | CallInd _ -> pack k_call 0 0 0
  | Cmp _ | Jmp _ | Jcc _ | Ret | Syscall _ | Halt | Nop -> k_exec

(* [static] prunes the plans as they are built: every pc outside the
   static must-hook set [K] gets [k_exec] (execute, no shadow work).
   [Staint]'s contract makes this invisible — at any pc outside [K] the
   dynamic update is the identity on every state the tracker can reach,
   given the return-site tripwire the fused loop arms off [trip_static] —
   and folding it into plan construction keeps the pruned tracker's setup
   cost identical to the unpruned one (the plans are one pass over the
   code either way; replays can be a few thousand instructions, so an
   extra O(code) pass would be visible in ns/instr). *)
let create ?static proc =
  let code = proc.Osim.Process.cpu.Vm.Cpu.code in
  {
    proc;
    labels = labels_create ();
    shadow = Hashtbl.create 64;
    tlb_idx = -1;
    tlb = no_page;
    neg_idx = -1;
    reg_taint = Array.make Vm.Isa.num_regs 0;
    prop_mask =
      Array.map
        (fun s -> Bytes.make (Array.length s.Vm.Program.seg_instrs) '\000')
        code.Vm.Program.segments;
    plans =
      (match static with
      | None ->
        Array.map
          (fun s -> Array.map plan_of_instr s.Vm.Program.seg_instrs)
          code.Vm.Program.segments
      | Some sa ->
        Array.mapi
          (fun si s ->
            let hooks = Static_an.Staint.hook_mask sa si in
            Array.mapi
              (fun i instr ->
                match instr with
                | Vm.Isa.Ret -> k_ret (* arms the return-site tripwire *)
                | _ ->
                  if Bytes.get hooks i = '\000' then k_exec
                  else plan_of_instr instr)
              s.Vm.Program.seg_instrs)
          code.Vm.Program.segments);
    any_taint = false;
    sources_seen = Int_set.empty;
    trip_static = static;
    trip_ret =
      (match static with
      | None -> Array.map (fun _ -> Bytes.empty) code.Vm.Program.segments
      | Some sa ->
        Array.mapi
          (fun si _ -> Static_an.Staint.ret_site_mask sa si)
          code.Vm.Program.segments);
  }

(* Label id of one shadow byte. Absent pages are all-clean; the one-entry
   positive TLB and one-entry negative cache keep the two hot pages of a
   copy loop (tainted source, clean destination) off the hashtable. *)
let mem_label st addr =
  let idx = addr lsr page_bits in
  if idx = st.tlb_idx then Array.unsafe_get st.tlb (addr land page_mask)
  else if idx = st.neg_idx then 0
  else
    match Hashtbl.find_opt st.shadow idx with
    | Some pg ->
      st.tlb_idx <- idx;
      st.tlb <- pg;
      Array.unsafe_get pg (addr land page_mask)
    | None ->
      st.neg_idx <- idx;
      0

let rec mem_label_range_from st addr size i acc =
  if i >= size then acc
  else
    mem_label_range_from st addr size (i + 1)
      (union st.labels acc (mem_label st (addr + i)))

(** Union of the labels of [size] shadow bytes at [addr]. *)
let mem_label_range st addr size =
  if size = 1 then mem_label st addr
  else mem_label_range_from st addr size 0 0

(* Combine the labels of 4 shadow bytes at [off] within one page. All-equal
   (one label flowing unmixed, or all clean) is the overwhelmingly common
   case and costs no union. Union order does not matter: ids are canonical
   by set content. *)
let word_in_page st pg off =
  let t0 = Array.unsafe_get pg off
  and t1 = Array.unsafe_get pg (off + 1)
  and t2 = Array.unsafe_get pg (off + 2)
  and t3 = Array.unsafe_get pg (off + 3) in
  if t0 = t1 && t2 = t3 && t0 = t2 then t0
  else union st.labels (union st.labels t0 t1) (union st.labels t2 t3)

(* Materialize (or look up) the shadow page holding [idx], loading the TLB. *)
let shadow_page st idx =
  match Hashtbl.find_opt st.shadow idx with
  | Some pg ->
    st.tlb_idx <- idx;
    st.tlb <- pg;
    pg
  | None ->
    let pg = Array.make page_size 0 in
    Hashtbl.add st.shadow idx pg;
    st.tlb_idx <- idx;
    st.tlb <- pg;
    if st.neg_idx = idx then st.neg_idx <- -1;
    pg

let set_byte st addr id =
  let idx = addr lsr page_bits in
  if idx = st.tlb_idx then Array.unsafe_set st.tlb (addr land page_mask) id
  else
    match Hashtbl.find_opt st.shadow idx with
    | Some pg ->
      st.tlb_idx <- idx;
      st.tlb <- pg;
      Array.unsafe_set pg (addr land page_mask) id
    | None ->
      (* A clean store to a page that never held taint changes nothing. *)
      if id <> 0 then Array.unsafe_set (shadow_page st idx) (addr land page_mask) id
      else st.neg_idx <- idx

let set_mem_label st addr size id =
  if id <> 0 then st.any_taint <- true;
  for i = 0 to size - 1 do
    set_byte st (addr + i) id
  done

(* Word-sized (4-byte) fast paths for the fused loop: one page probe per
   access when the word does not straddle a page boundary. *)
let mem_label_word st addr =
  let off = addr land page_mask in
  if off > page_size - 4 then mem_label_range st addr 4
  else
    let idx = addr lsr page_bits in
    if idx = st.tlb_idx then begin
      (* TLB hit, open-coded [word_in_page]: the all-equal word (one label
         unmixed, or all clean) is the hot case. *)
      let pg = st.tlb in
      let t0 = Array.unsafe_get pg off
      and t1 = Array.unsafe_get pg (off + 1)
      and t2 = Array.unsafe_get pg (off + 2)
      and t3 = Array.unsafe_get pg (off + 3) in
      if t0 = t1 && t2 = t3 && t0 = t2 then t0
      else union st.labels (union st.labels t0 t1) (union st.labels t2 t3)
    end
    else if idx = st.neg_idx then 0
    else
      match Hashtbl.find_opt st.shadow idx with
      | Some pg ->
        st.tlb_idx <- idx;
        st.tlb <- pg;
        word_in_page st pg off
      | None ->
        st.neg_idx <- idx;
        0

let set_mem_word st addr id =
  let off = addr land page_mask in
  if off > page_size - 4 then set_mem_label st addr 4 id
  else begin
    if id <> 0 then st.any_taint <- true;
    let idx = addr lsr page_bits in
    let pg =
      if idx = st.tlb_idx then st.tlb
      else
        match Hashtbl.find_opt st.shadow idx with
        | Some pg ->
          st.tlb_idx <- idx;
          st.tlb <- pg;
          pg
        | None ->
          if id = 0 then begin
            (* Clean store to a page that never held taint: no-op. *)
            st.neg_idx <- idx;
            no_page
          end
          else shadow_page st idx
    in
    if pg != no_page then begin
      Array.unsafe_set pg off id;
      Array.unsafe_set pg (off + 1) id;
      Array.unsafe_set pg (off + 2) id;
      Array.unsafe_set pg (off + 3) id
    end
  end

(* Range fill for [Io_recv]: every received byte gets the message's
   singleton label in page-sized [Array.fill] spans. *)
let fill_range st addr len id =
  if len > 0 then begin
    if id <> 0 then st.any_taint <- true;
    let pos = ref addr in
    let remaining = ref len in
    while !remaining > 0 do
      let idx = !pos lsr page_bits in
      let off = !pos land page_mask in
      let n = min (page_size - off) !remaining in
      (if id <> 0 then Array.fill (shadow_page st idx) off n id
       else
         match Hashtbl.find_opt st.shadow idx with
         | Some pg -> Array.fill pg off n 0
         | None -> ());
      pos := !pos + n;
      remaining := !remaining - n
    done
  end

(* Mark pc as a taint-propagating instruction: one byte store in the
   per-segment mask. Instruction size is 4 (asserted) so the index is a
   shift, like the interpreter's own dispatch. *)
let () = assert (Vm.Isa.instr_size = 4)

let rec mark_in segs masks pc i =
  if i < Array.length segs then begin
    let s = Array.unsafe_get segs i in
    if pc >= s.Vm.Program.seg_base && pc < s.Vm.Program.seg_limit then
      Bytes.unsafe_set
        (Array.unsafe_get masks i)
        ((pc - s.Vm.Program.seg_base) lsr 2)
        '\001'
    else mark_in segs masks pc (i + 1)
  end

let mark st pc =
  mark_in st.proc.Osim.Process.cpu.Vm.Cpu.code.Vm.Program.segments st.prop_mask
    pc 0

let mark_if st id pc = if id <> 0 then mark st pc

(** The marked propagation pcs, ascending (segments are sorted by base). *)
let prop_pcs_list st =
  let segs = st.proc.Osim.Process.cpu.Vm.Cpu.code.Vm.Program.segments in
  let acc = ref [] in
  for si = Array.length segs - 1 downto 0 do
    let mask = st.prop_mask.(si) in
    let base = segs.(si).Vm.Program.seg_base in
    for ii = Bytes.length mask - 1 downto 0 do
      if Bytes.unsafe_get mask ii <> '\000' then
        acc := base + (ii lsl 2) :: !acc
    done
  done;
  !acc

(* [reg_index] is total with range [0, num_regs); the shadow register file
   has exactly [num_regs] slots, so unchecked indexing is safe. *)
let reg st r = Array.unsafe_get st.reg_taint (Vm.Isa.reg_index r)

let operand_label st = function
  | Vm.Isa.Reg r -> reg st r
  | Vm.Isa.Imm _ | Vm.Isa.Sym _ -> 0

let rec reads_label st (reads : Vm.Event.access list) acc =
  match reads with
  | [] -> acc
  | a :: tl ->
    reads_label st tl (union st.labels acc (mem_label_range st a.a_addr a.a_size))

let rec writes_set st (writes : Vm.Event.access list) id =
  match writes with
  | [] -> ()
  | a :: tl ->
    set_mem_label st a.a_addr a.a_size id;
    writes_set st tl id

(* ------------------------------------------------------------------ *)
(* Hook-based propagation (sampling monitors, slow-path instructions)  *)
(* ------------------------------------------------------------------ *)

(* Propagation, per instruction shape. Pointer (base-register) taint is
   deliberately not propagated into loads/stores — TaintCheck semantics. *)
let on_effect st (eff : Vm.Event.effect_) =
  (* Until the first tainted byte exists every propagation rule is the
     identity on an all-clean state; only syscall sources matter. *)
  (if st.any_taint then
     match eff.e_instr with
     | Vm.Isa.Mov (rd, op) ->
       let t = operand_label st op in
       mark_if st t eff.e_pc;
       st.reg_taint.(Vm.Isa.reg_index rd) <- t
     | Vm.Isa.Bin (_, rd, src) ->
       let t = union st.labels (reg st rd) (operand_label st src) in
       mark_if st t eff.e_pc;
       st.reg_taint.(Vm.Isa.reg_index rd) <- t
     | Vm.Isa.Not rd | Vm.Isa.Neg rd -> mark_if st (reg st rd) eff.e_pc
     | Vm.Isa.Load (rd, _, _) | Vm.Isa.Loadb (rd, _, _) ->
       let t = reads_label st eff.e_mem_reads 0 in
       mark_if st t eff.e_pc;
       st.reg_taint.(Vm.Isa.reg_index rd) <- t
     | Vm.Isa.Store (_, _, rs) | Vm.Isa.Storeb (_, _, rs) ->
       let t = reg st rs in
       mark_if st t eff.e_pc;
       writes_set st eff.e_mem_writes t
     | Vm.Isa.Push op ->
       let t = operand_label st op in
       mark_if st t eff.e_pc;
       writes_set st eff.e_mem_writes t
     | Vm.Isa.Pop rd ->
       let t = reads_label st eff.e_mem_reads 0 in
       mark_if st t eff.e_pc;
       st.reg_taint.(Vm.Isa.reg_index rd) <- t
     | Vm.Isa.Call _ | Vm.Isa.CallInd _ ->
       (* The pushed return address is clean. *)
       writes_set st eff.e_mem_writes 0
     | Vm.Isa.Cmp _ | Vm.Isa.Jmp _ | Vm.Isa.Jcc _ | Vm.Isa.Ret
     | Vm.Isa.Syscall _ | Vm.Isa.Halt | Vm.Isa.Nop ->
       ());
  (* Syscall sources and register results. *)
  match eff.e_sys with
  | Vm.Event.Io_recv { buf; len; msg_id } ->
    st.sources_seen <- Int_set.add msg_id st.sources_seen;
    fill_range st buf len (singleton st.labels msg_id);
    st.reg_taint.(Vm.Isa.reg_index Vm.Isa.R0) <- 0
  | Vm.Event.Io_alloc _ | Vm.Event.Io_free _ | Vm.Event.Io_send _
  | Vm.Event.Io_exit _ | Vm.Event.Io_other _ ->
    st.reg_taint.(Vm.Isa.reg_index Vm.Isa.R0) <- 0
  | Vm.Event.Io_exec _ -> ()
  | Vm.Event.Io_none -> ()

(** A pre-hook check that stops tainted data {e before} it is misused:
    a return to a tainted address, an indirect call through a tainted
    register, or tainted bytes handed to [exec]. This is TaintCheck run as
    an online monitor — what a host doing Section 4.2 sampling (or a
    sentinel node) uses to catch attacks randomization would miss, including
    ones whose address guess was right. *)
let guard st (eff : Vm.Event.effect_) =
  if st.any_taint then begin
    let sink =
      match eff.e_instr with
      | Vm.Isa.Ret -> reads_label st eff.e_mem_reads 0
      | Vm.Isa.CallInd r -> reg st r
      | Vm.Isa.Syscall n when n = Vm.Sysno.sys_exec ->
        (* The command string the process is about to execute: the shadow
           of its actual NUL-terminated bytes, under the same length cap
           the syscall layer's [load_cstring] applies. *)
        let addr = Vm.Cpu.get_reg st.proc.Osim.Process.cpu Vm.Isa.R0 in
        let mem = st.proc.Osim.Process.mem in
        let rec scan acc i =
          if i >= exec_scan_limit then acc
          else if Vm.Memory.load_byte mem (addr + i) = 0 then acc
          else scan (union st.labels acc (mem_label st (addr + i))) (i + 1)
        in
        scan 0 0
      | _ -> 0
    in
    if sink <> 0 then
      Detection.detect
        (Detection.Taint_sink
           (String.concat ","
              (List.map string_of_int (Int_set.elements (set_of st.labels sink)))))
        ~pc:eff.e_pc ~detail:"tainted data about to be misused"
  end

(** After a replay ends, classify its outcome: did tainted data cause it? *)
let classify_fault st (outcome : Vm.Cpu.outcome) : verdict =
  let cpu = st.proc.Osim.Process.cpu in
  let pc = cpu.Vm.Cpu.pc in
  match outcome with
  | Vm.Cpu.Faulted _ -> (
    match Vm.Program.fetch cpu.Vm.Cpu.code pc with
    | Some Vm.Isa.Ret ->
      let sp = Vm.Cpu.get_reg cpu Vm.Isa.SP in
      let t = mem_label_range st sp 4 in
      if t = 0 then Untainted_fault { pc }
      else Tainted_ret { pc; msgs = set_of st.labels t }
    | Some (Vm.Isa.CallInd r) ->
      let t = reg st r in
      if t = 0 then Untainted_fault { pc }
      else Tainted_call { pc; msgs = set_of st.labels t }
    | Some (Vm.Isa.Store (_, _, rs) | Vm.Isa.Storeb (_, _, rs)) ->
      let t = reg st rs in
      if t = 0 then Untainted_fault { pc }
      else Tainted_store_fault { pc; msgs = set_of st.labels t }
    | _ -> Untainted_fault { pc })
  | Vm.Cpu.Halted | Vm.Cpu.Blocked | Vm.Cpu.Out_of_fuel -> (
    (* Did the run reach exec with tainted bytes (successful hijack)? *)
    match st.proc.Osim.Process.compromised with
    | Some _ -> Tainted_exec { pc; msgs = st.sources_seen }
    | None -> No_fault)

type result = {
  t_verdict : verdict;
  t_prop_pcs : int list;      (** taint-propagating instructions *)
  t_instructions : int;
}

let verdict_msgs = function
  | Tainted_ret { msgs; _ } | Tainted_call { msgs; _ }
  | Tainted_store_fault { msgs; _ } | Tainted_exec { msgs; _ } ->
    Int_set.elements msgs
  | Untainted_fault _ | No_fault -> []

let verdict_to_string = function
  | Tainted_ret { pc; msgs } ->
    Printf.sprintf "tainted return address at 0x%x (messages %s)" pc
      (String.concat "," (List.map string_of_int (Int_set.elements msgs)))
  | Tainted_call { pc; msgs } ->
    Printf.sprintf "tainted call target at 0x%x (messages %s)" pc
      (String.concat "," (List.map string_of_int (Int_set.elements msgs)))
  | Tainted_store_fault { pc; msgs } ->
    Printf.sprintf "faulting store of tainted data at 0x%x (messages %s)" pc
      (String.concat "," (List.map string_of_int (Int_set.elements msgs)))
  | Tainted_exec { pc; msgs } ->
    Printf.sprintf "tainted data reached exec at 0x%x (messages %s)" pc
      (String.concat "," (List.map string_of_int (Int_set.elements msgs)))
  | Untainted_fault { pc } -> Printf.sprintf "fault at 0x%x involved no taint" pc
  | No_fault -> "no fault during monitored replay"

(* ------------------------------------------------------------------ *)
(* Fused replay loop                                                   *)
(* ------------------------------------------------------------------ *)

(* The replay workhorse. Machine semantics come from [Cpu.exec_fast] —
   never re-implemented here — and the shadow updates mirror {!on_effect}
   exactly (the differential suite holds the two to account). Taint inputs
   that depend on pre-execution state (addresses, the pc) are computed
   before [exec_fast] runs and applied only if it succeeds; when it
   declines (syscalls, anything that would fault) the instruction re-runs
   on the instrumented path, where the registered [on_effect] post-hook
   sees it — or, for a fault, nothing does, matching post-commit hook
   semantics. *)

let slow cpu = ignore (Vm.Cpu.step cpu : Vm.Event.effect_)

let sp_idx = Vm.Isa.reg_index Vm.Isa.SP

(* Segment-pinned inner loop (the shape of the interpreter's own fast
   dispatch): while the pc stays inside [s], decode by direct indexing.
   Returns the remaining fuel — unchanged iff no progress was made.

   Machine semantics always come from [Cpu.exec_fast]; when it declines
   (syscalls — including the recv that introduces the first taint — and
   anything that would fault) the instruction re-runs on the hooked path,
   where the registered [on_effect] post-hook sees it. The propagation
   itself dispatches on the pre-decoded plan int; [mask] is this segment's
   slab of [prop_mask] so marking a propagation site is one byte store.
   Taint inputs that depend on pre-execution state (addresses from
   registers) are read before [exec_fast] and applied only if it ran. *)
(* Return-site tripwire miss: a [Ret] landed off the statically assumed
   return-site set (a hijacked or otherwise corrupted return address).
   Restore the pristine taint plans in place — the fused loop reads plan
   words through the same arrays, so the restoration is visible to the
   burst already in flight — and stop checking: from here on every
   instruction runs fully instrumented, which is trivially identical to
   the unpruned tracker. *)
let unprune st =
  let segs = st.proc.Osim.Process.cpu.Vm.Cpu.code.Vm.Program.segments in
  Array.iteri
    (fun si s ->
      let plan = st.plans.(si) in
      Array.iteri
        (fun i instr -> plan.(i) <- plan_of_instr instr)
        s.Vm.Program.seg_instrs)
    segs;
  st.trip_static <- None

(* The [k_ret] check: the landing pc (already committed by the [Ret])
   must be a statically known return site, else the pruned plans stop
   being trustworthy and [unprune] restores full instrumentation. *)
let check_return_site st cpu =
  match st.trip_static with
  | Some sa when not (Static_an.Staint.is_return_site sa cpu.Vm.Cpu.pc) ->
    unprune st
  | _ -> ()

(* Same-segment fast path for the [k_ret] tripwire: most returns land in
   the segment they retired in, whose return-site mask the fused loop
   already holds — one bounds check and one byte load, no cross-module
   call. Cross-segment (or unmapped/misaligned) landings take
   [check_return_site]'s full search, which reaches the same verdict. *)
let ret_check st cpu s ret =
  let pc = cpu.Vm.Cpu.pc in
  let off = pc - s.Vm.Program.seg_base in
  if off >= 0 && pc < s.Vm.Program.seg_limit && off land 3 = 0 then begin
    if Bytes.unsafe_get ret (off lsr 2) = '\000' then unprune st
  end
  else check_return_site st cpu

let rec fused_seg st cpu s mask plan ret fuel =
  if cpu.Vm.Cpu.halted || fuel <= 0 then fuel
  else
    let pc = cpu.Vm.Cpu.pc in
    let off = pc - s.Vm.Program.seg_base in
    if off < 0 || pc >= s.Vm.Program.seg_limit then fuel (* left the segment *)
    else if off land 3 <> 0 then fuel (* misaligned: slow path faults *)
    else begin
      let ii = off lsr 2 in
      let instr = Array.unsafe_get s.Vm.Program.seg_instrs ii in
      (if not st.any_taint then begin
         (* All-clean: propagation is the identity, only machine
            semantics run. The tripwire stays armed even before the
            first tainted byte exists: a wild return during the clean
            prefix invalidates the static model's control-flow
            assumptions for everything executed after it. In global
            mode no plan is ever [k_ret], so the extra compare never
            fires there. *)
         if not (Vm.Cpu.exec_fast cpu instr) then slow cpu;
         if Array.unsafe_get plan ii = k_ret then ret_check st cpu s ret
       end
       else
         let p = Array.unsafe_get plan ii in
         let rt = st.reg_taint in
         match p land 15 with
         | 0 (* k_exec *) -> if not (Vm.Cpu.exec_fast cpu instr) then slow cpu
         | 1 (* k_mov_const *) ->
           if Vm.Cpu.exec_fast cpu instr then
             Array.unsafe_set rt ((p lsr 4) land 15) 0
           else slow cpu
         | 2 (* k_mov_reg *) ->
           let t = Array.unsafe_get rt ((p lsr 8) land 15) in
           if Vm.Cpu.exec_fast cpu instr then begin
             if t <> 0 then Bytes.unsafe_set mask ii '\001';
             Array.unsafe_set rt ((p lsr 4) land 15) t
           end
           else slow cpu
         | 3 (* k_mark_rd: rd's taint is unchanged *) ->
           if Vm.Cpu.exec_fast cpu instr then begin
             if Array.unsafe_get rt ((p lsr 4) land 15) <> 0 then
               Bytes.unsafe_set mask ii '\001'
           end
           else slow cpu
         | 4 (* k_bin_reg *) ->
           let ta = Array.unsafe_get rt ((p lsr 4) land 15) in
           let tb = Array.unsafe_get rt ((p lsr 8) land 15) in
           let t =
             if tb = 0 || ta = tb then ta
             else if ta = 0 then tb
             else union st.labels ta tb
           in
           if Vm.Cpu.exec_fast cpu instr then begin
             if t <> 0 then Bytes.unsafe_set mask ii '\001';
             Array.unsafe_set rt ((p lsr 4) land 15) t
           end
           else slow cpu
         | 5 (* k_load *) ->
           let addr =
             (Array.unsafe_get cpu.Vm.Cpu.regs ((p lsr 8) land 15) + (p asr 12))
             land 0xFFFFFFFF
           in
           if Vm.Cpu.exec_fast cpu instr then begin
             let t = mem_label_word st addr in
             if t <> 0 then Bytes.unsafe_set mask ii '\001';
             Array.unsafe_set rt ((p lsr 4) land 15) t
           end
           else slow cpu
         | 6 (* k_loadb *) ->
           let addr =
             (Array.unsafe_get cpu.Vm.Cpu.regs ((p lsr 8) land 15) + (p asr 12))
             land 0xFFFFFFFF
           in
           if Vm.Cpu.exec_fast cpu instr then begin
             let t = mem_label st addr in
             if t <> 0 then Bytes.unsafe_set mask ii '\001';
             Array.unsafe_set rt ((p lsr 4) land 15) t
           end
           else slow cpu
         | 7 (* k_store *) ->
           let addr =
             (Array.unsafe_get cpu.Vm.Cpu.regs ((p lsr 8) land 15) + (p asr 12))
             land 0xFFFFFFFF
           in
           if Vm.Cpu.exec_fast cpu instr then begin
             let t = Array.unsafe_get rt ((p lsr 4) land 15) in
             if t <> 0 then Bytes.unsafe_set mask ii '\001';
             set_mem_word st addr t
           end
           else slow cpu
         | 8 (* k_storeb *) ->
           let addr =
             (Array.unsafe_get cpu.Vm.Cpu.regs ((p lsr 8) land 15) + (p asr 12))
             land 0xFFFFFFFF
           in
           if Vm.Cpu.exec_fast cpu instr then begin
             let t = Array.unsafe_get rt ((p lsr 4) land 15) in
             if t <> 0 then begin
               Bytes.unsafe_set mask ii '\001';
               st.any_taint <- true
             end;
             set_byte st addr t
           end
           else slow cpu
         | 9 (* k_push_reg *) ->
           let addr =
             (Array.unsafe_get cpu.Vm.Cpu.regs sp_idx - 4) land 0xFFFFFFFF
           in
           let t = Array.unsafe_get rt ((p lsr 8) land 15) in
           if Vm.Cpu.exec_fast cpu instr then begin
             if t <> 0 then Bytes.unsafe_set mask ii '\001';
             set_mem_word st addr t
           end
           else slow cpu
         | 10 (* k_push_const *) ->
           let addr =
             (Array.unsafe_get cpu.Vm.Cpu.regs sp_idx - 4) land 0xFFFFFFFF
           in
           if Vm.Cpu.exec_fast cpu instr then set_mem_word st addr 0
           else slow cpu
         | 11 (* k_pop *) ->
           let sp = Array.unsafe_get cpu.Vm.Cpu.regs sp_idx in
           if Vm.Cpu.exec_fast cpu instr then begin
             let t = mem_label_word st sp in
             if t <> 0 then Bytes.unsafe_set mask ii '\001';
             Array.unsafe_set rt ((p lsr 4) land 15) t
           end
           else slow cpu
         | 12 (* k_call *) ->
           let addr =
             (Array.unsafe_get cpu.Vm.Cpu.regs sp_idx - 4) land 0xFFFFFFFF
           in
           if Vm.Cpu.exec_fast cpu instr then
             (* The pushed return address is clean. *)
             set_mem_word st addr 0
           else slow cpu
         | _ (* k_ret: pruned plans only, see [k_ret] *) ->
           if not (Vm.Cpu.exec_fast cpu instr) then slow cpu;
           ret_check st cpu s ret);
      fused_seg st cpu s mask plan ret (fuel - 1)
    end

let fused_run st cpu fuel =
  let segs = cpu.Vm.Cpu.code.Vm.Program.segments in
  let rec go n =
    if cpu.Vm.Cpu.halted then Vm.Cpu.Halted
    else if n <= 0 then Vm.Cpu.Out_of_fuel
    else dispatch n cpu.Vm.Cpu.pc 0
  and dispatch n pc i =
    if i >= Array.length segs then begin
      slow cpu (* unmapped pc: faults there *)
      ; go (n - 1)
    end
    else
      let s = Array.unsafe_get segs i in
      if pc >= s.Vm.Program.seg_base && pc < s.Vm.Program.seg_limit then begin
        let n' =
          fused_seg st cpu s
            (Array.unsafe_get st.prop_mask i)
            (Array.unsafe_get st.plans i)
            (Array.unsafe_get st.trip_ret i)
            n
        in
        if n' = n then begin
          slow cpu;
          go (n' - 1)
        end
        else go n'
      end
      else dispatch n pc (i + 1)
  in
  try go fuel with
  | Vm.Event.Fault f -> Vm.Cpu.Faulted f
  | Vm.Event.Blocked -> Vm.Cpu.Blocked

let check_static (static : Static_an.Staint.t) cpu =
  if not (Static_an.Staint.matches static cpu.Vm.Cpu.code) then
    invalid_arg "Taint: static analysis is for a different program"

(** Attach the tracker, run the replay to completion, classify, detach.
    Uses the fused loop when this tracker is the only instrumentation on
    the CPU; otherwise falls back to the generic hooked interpreter so
    foreign hooks keep firing. [static] (a {!Static_an.Staint} result for
    the same program) prunes the fused loop's shadow work down to the
    statically reachable propagation pcs, with a per-[Ret] return-site
    tripwire backstopping the static model's one optimistic assumption;
    results are unchanged. *)
let run ?(fuel = 20_000_000) ?static (proc : Osim.Process.t) : result =
  let cpu = proc.Osim.Process.cpu in
  (match static with
  | Some s -> check_static s cpu
  | None -> ());
  let st = create ?static proc in
  let before = cpu.Vm.Cpu.icount in
  let hook = Vm.Cpu.add_post_hook cpu (on_effect st) in
  let outcome =
    if Vm.Cpu.global_hook_count cpu = 1 && Vm.Cpu.pc_hook_count cpu = 0 then begin
      let slow0 = cpu.Vm.Cpu.slow_retired in
      let o = fused_run st cpu fuel in
      (* Instructions the fused loop ran through [exec_fast] retire outside
         the interpreter's dispatch, so account them as fast-path work here
         (everything this window executed minus what [slow] stepped) to
         keep fast + slow equal to the instructions actually executed. *)
      cpu.Vm.Cpu.fast_retired <-
        cpu.Vm.Cpu.fast_retired
        + (cpu.Vm.Cpu.icount - before)
        - (cpu.Vm.Cpu.slow_retired - slow0);
      o
    end
    else Vm.Cpu.run ~fuel cpu
  in
  Vm.Cpu.remove_hook cpu hook;
  {
    t_verdict = classify_fault st outcome;
    t_prop_pcs = prop_pcs_list st;
    t_instructions = cpu.Vm.Cpu.icount - before;
  }

(** Replay with the tracker installed only at the pcs the static
    analysis proves it could ever matter at ([K], via per-pc post hooks)
    instead of a global hook; every other instruction retires on the
    interpreter's uninstrumented fast path. Byte-identical results to
    {!run} — [K]'s construction makes the skipped hook invocations
    provable no-ops, and a per-[Ret] tripwire reverts to a global hook
    the moment a return lands off the statically assumed return-site
    set — at an instrumentation footprint of [Staint.hook_count] pcs
    instead of the whole program. *)
let run_pruned ?(fuel = 20_000_000) ~static (proc : Osim.Process.t) : result =
  let st = create proc in
  let cpu = proc.Osim.Process.cpu in
  check_static static cpu;
  let before = cpu.Vm.Cpu.icount in
  let track_hooks =
    ref
      (List.rev_map
         (fun pc -> Vm.Cpu.add_pc_post_hook cpu ~pc (on_effect st))
         (Static_an.Staint.hook_pcs static))
  in
  (* Return-site tripwire: [Ret] is never in [K], so each [Ret] pc gets
     its own post hook that checks the landing pc. On a miss the per-pc
     tracker hooks are swapped for one global [on_effect] — full
     instrumentation — before the landed-on instruction runs (the
     interpreter re-reads its hook counters every dispatch). The global
     hook also fires once for the tripping [Ret]'s own effect (post-all
     hooks run after post-at ones), which is harmless: [on_effect] is the
     identity on a [Ret]. *)
  let tripped = ref false in
  let trip _eff =
    if
      (not !tripped)
      && not (Static_an.Staint.is_return_site static cpu.Vm.Cpu.pc)
    then begin
      tripped := true;
      List.iter (Vm.Cpu.remove_hook cpu) !track_hooks;
      track_hooks := [ Vm.Cpu.add_post_hook cpu (on_effect st) ]
    end
  in
  let ret_pcs =
    Array.fold_left
      (fun acc s ->
        let acc = ref acc in
        Array.iteri
          (fun i (instr : Vm.Isa.instr) ->
            match instr with
            | Ret ->
              acc :=
                (s.Vm.Program.seg_base + (i * Vm.Isa.instr_size)) :: !acc
            | _ -> ())
          s.Vm.Program.seg_instrs;
        !acc)
      []
      cpu.Vm.Cpu.code.Vm.Program.segments
  in
  let ret_hooks =
    List.rev_map (fun pc -> Vm.Cpu.add_pc_post_hook cpu ~pc trip) ret_pcs
  in
  let outcome = Vm.Cpu.run ~fuel cpu in
  List.iter (Vm.Cpu.remove_hook cpu) !track_hooks;
  List.iter (Vm.Cpu.remove_hook cpu) ret_hooks;
  {
    t_verdict = classify_fault st outcome;
    t_prop_pcs = prop_pcs_list st;
    t_instructions = cpu.Vm.Cpu.icount - before;
  }

(** Build the taint-derived VSEF from a completed analysis. [proc] supplies
    the image bases for making the check relocatable. *)
let vsef_of_result ~app ~proc (r : result) =
  match r.t_verdict with
  | Tainted_ret { pc; _ } | Tainted_call { pc; _ }
  | Tainted_store_fault { pc; _ } | Tainted_exec { pc; _ } ->
    Some
      {
        Vsef.v_name = "taint-filter";
        v_app = app;
        v_check =
          Vsef.Taint_filter
            {
              source_sysno = Vm.Sysno.sys_recv;
              prop = List.map (Vsef.loc_of_pc proc) r.t_prop_pcs;
              sink = Vsef.loc_of_pc proc pc;
            };
        v_origin = Vsef.From_taint;
      }
  | Untainted_fault _ | No_fault -> None

(* ------------------------------------------------------------------ *)
(* Oracle: the original per-byte engine, kept as the reference          *)
(* ------------------------------------------------------------------ *)

(** The first implementation of this engine — one hashtable entry per
    tainted byte, label sets passed around as AVL sets — retained verbatim
    as the differential-testing oracle for the interned/paged engine
    above. Same propagation rules, same guard spec, same verdicts; only
    the data structures (and the speed) differ. *)
module Oracle = struct
  type state = {
    o_proc : Osim.Process.t;
    byte_taint : (int, Int_set.t) Hashtbl.t;
    o_reg_taint : Int_set.t array;
    mutable prop_pcs : Int_set.t;  (** instructions that moved taint *)
    mutable o_sources_seen : Int_set.t;  (** message ids read *)
  }

  let create proc =
    {
      o_proc = proc;
      byte_taint = Hashtbl.create 1024;
      o_reg_taint = Array.make Vm.Isa.num_regs Int_set.empty;
      prop_pcs = Int_set.empty;
      o_sources_seen = Int_set.empty;
    }

  let byte_set st addr =
    match Hashtbl.find_opt st.byte_taint addr with
    | Some s -> s
    | None -> Int_set.empty

  let mem_taint st (a : Vm.Event.access) =
    let rec go acc i =
      if i >= a.a_size then acc
      else go (Int_set.union acc (byte_set st (a.a_addr + i))) (i + 1)
    in
    go Int_set.empty 0

  let set_mem_taint st addr size taint =
    for i = 0 to size - 1 do
      if Int_set.is_empty taint then Hashtbl.remove st.byte_taint (addr + i)
      else Hashtbl.replace st.byte_taint (addr + i) taint
    done

  let reg st r = st.o_reg_taint.(Vm.Isa.reg_index r)
  let set_reg st r v = st.o_reg_taint.(Vm.Isa.reg_index r) <- v

  let operand_taint st = function
    | Vm.Isa.Reg r -> reg st r
    | Vm.Isa.Imm _ | Vm.Isa.Sym _ -> Int_set.empty

  let on_effect st (eff : Vm.Event.effect_) =
    let mark taint =
      if not (Int_set.is_empty taint) then
        st.prop_pcs <- Int_set.add eff.e_pc st.prop_pcs
    in
    (match eff.e_instr with
    | Vm.Isa.Mov (rd, op) ->
      let t = operand_taint st op in
      mark t;
      set_reg st rd t
    | Vm.Isa.Bin (_, rd, src) ->
      let t = Int_set.union (reg st rd) (operand_taint st src) in
      mark t;
      set_reg st rd t
    | Vm.Isa.Not rd | Vm.Isa.Neg rd -> mark (reg st rd)
    | Vm.Isa.Load (rd, _, _) | Vm.Isa.Loadb (rd, _, _) ->
      let t =
        List.fold_left
          (fun acc a -> Int_set.union acc (mem_taint st a))
          Int_set.empty eff.e_mem_reads
      in
      mark t;
      set_reg st rd t
    | Vm.Isa.Store (_, _, rs) | Vm.Isa.Storeb (_, _, rs) ->
      let t = reg st rs in
      mark t;
      List.iter
        (fun (a : Vm.Event.access) -> set_mem_taint st a.a_addr a.a_size t)
        eff.e_mem_writes
    | Vm.Isa.Push op ->
      let t = operand_taint st op in
      mark t;
      List.iter
        (fun (a : Vm.Event.access) -> set_mem_taint st a.a_addr a.a_size t)
        eff.e_mem_writes
    | Vm.Isa.Pop rd ->
      let t =
        List.fold_left
          (fun acc a -> Int_set.union acc (mem_taint st a))
          Int_set.empty eff.e_mem_reads
      in
      mark t;
      set_reg st rd t
    | Vm.Isa.Call _ | Vm.Isa.CallInd _ ->
      (* The pushed return address is clean. *)
      List.iter
        (fun (a : Vm.Event.access) ->
          set_mem_taint st a.a_addr a.a_size Int_set.empty)
        eff.e_mem_writes
    | Vm.Isa.Cmp _ | Vm.Isa.Jmp _ | Vm.Isa.Jcc _ | Vm.Isa.Ret
    | Vm.Isa.Syscall _ | Vm.Isa.Halt | Vm.Isa.Nop ->
      ());
    match eff.e_sys with
    | Vm.Event.Io_recv { buf; len; msg_id } ->
      st.o_sources_seen <- Int_set.add msg_id st.o_sources_seen;
      for i = 0 to len - 1 do
        Hashtbl.replace st.byte_taint (buf + i) (Int_set.singleton msg_id)
      done;
      set_reg st Vm.Isa.R0 Int_set.empty
    | Vm.Event.Io_alloc _ | Vm.Event.Io_free _ | Vm.Event.Io_send _
    | Vm.Event.Io_exit _ | Vm.Event.Io_other _ ->
      set_reg st Vm.Isa.R0 Int_set.empty
    | Vm.Event.Io_exec _ -> ()
    | Vm.Event.Io_none -> ()

  let guard st (eff : Vm.Event.effect_) =
    let tainted_set =
      match eff.e_instr with
      | Vm.Isa.Ret ->
        List.fold_left
          (fun acc a -> Int_set.union acc (mem_taint st a))
          Int_set.empty eff.e_mem_reads
      | Vm.Isa.CallInd r -> reg st r
      | Vm.Isa.Syscall n when n = Vm.Sysno.sys_exec ->
        (* Same sink spec as the fast engine's {!guard}: the shadow of the
           command string's actual bytes, load_cstring's length cap. *)
        let addr = Vm.Cpu.get_reg st.o_proc.Osim.Process.cpu Vm.Isa.R0 in
        let mem = st.o_proc.Osim.Process.mem in
        let rec scan acc i =
          if i >= exec_scan_limit then acc
          else if Vm.Memory.load_byte mem (addr + i) = 0 then acc
          else scan (Int_set.union acc (byte_set st (addr + i))) (i + 1)
        in
        scan Int_set.empty 0
      | _ -> Int_set.empty
    in
    if not (Int_set.is_empty tainted_set) then
      Detection.detect
        (Detection.Taint_sink
           (String.concat ","
              (List.map string_of_int (Int_set.elements tainted_set))))
        ~pc:eff.e_pc ~detail:"tainted data about to be misused"

  let classify_fault st (outcome : Vm.Cpu.outcome) : verdict =
    let cpu = st.o_proc.Osim.Process.cpu in
    let pc = cpu.Vm.Cpu.pc in
    let word_at addr = mem_taint st { a_addr = addr; a_size = 4; a_value = 0 } in
    match outcome with
    | Vm.Cpu.Faulted _ -> (
      match Vm.Program.fetch cpu.Vm.Cpu.code pc with
      | Some Vm.Isa.Ret ->
        let sp = Vm.Cpu.get_reg cpu Vm.Isa.SP in
        let t = word_at sp in
        if Int_set.is_empty t then Untainted_fault { pc }
        else Tainted_ret { pc; msgs = t }
      | Some (Vm.Isa.CallInd r) ->
        let t = reg st r in
        if Int_set.is_empty t then Untainted_fault { pc }
        else Tainted_call { pc; msgs = t }
      | Some (Vm.Isa.Store (_, _, rs) | Vm.Isa.Storeb (_, _, rs)) ->
        let t = reg st rs in
        if Int_set.is_empty t then Untainted_fault { pc }
        else Tainted_store_fault { pc; msgs = t }
      | _ -> Untainted_fault { pc })
    | Vm.Cpu.Halted | Vm.Cpu.Blocked | Vm.Cpu.Out_of_fuel -> (
      match st.o_proc.Osim.Process.compromised with
      | Some _ -> Tainted_exec { pc; msgs = st.o_sources_seen }
      | None -> No_fault)

  (** The original hook-driven replay: every instruction on the generic
      instrumented path. *)
  let run ?(fuel = 20_000_000) (proc : Osim.Process.t) : result =
    let st = create proc in
    let before = proc.Osim.Process.cpu.Vm.Cpu.icount in
    let hook = Vm.Cpu.add_post_hook proc.cpu (on_effect st) in
    let outcome = Vm.Cpu.run ~fuel proc.cpu in
    Vm.Cpu.remove_hook proc.cpu hook;
    {
      t_verdict = classify_fault st outcome;
      t_prop_pcs = Int_set.elements st.prop_pcs;
      t_instructions = proc.Osim.Process.cpu.Vm.Cpu.icount - before;
    }
end
