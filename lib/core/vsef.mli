(** Vulnerability-Specific Execution Filters.

    A VSEF is the instruction-granular monitoring the heavyweight analyses
    would have performed, restricted to the handful of instructions the
    vulnerability actually involves — cheap enough for normal execution.
    Each {!check} corresponds to one of the VSEF families of the paper's
    Section 3.3.

    Because every host randomizes its library base independently, a VSEF
    names instructions by {!loc} — segment plus offset — and is translated
    to concrete addresses when installed on a process. This is what makes
    antibodies shareable between hosts with different layouts. *)

(** A relocatable code location: which image, and the offset within it. *)
type loc = {
  l_seg : [ `App | `Lib ];
  l_off : int;
}

val loc_of_pc : Osim.Process.t -> int -> loc
(** Translate an absolute pc of the given process into a location. *)

val pc_of_loc : Osim.Process.t -> loc -> int
(** Concrete address of a location in the given process. *)

type check =
  | Side_stack of { entry : loc; ret : loc; fn : string }
      (** record the return address at function entry, compare at the ret *)
  | Null_check of { at : loc }
      (** no memory access below the NULL guard page at this instruction *)
  | Free_guard of { free_entry : loc }
      (** at [free]'s entry: the argument must not be an already-freed chunk *)
  | Double_free_site of { call : loc }
      (** the same check, at one specific call site *)
  | Heap_bounds of { store : loc; caller : string option;
                     caller_range : (loc * loc) option }
      (** stores at this instruction must stay inside a live chunk; when
          [caller_range] is set the check applies only for that caller *)
  | Store_guard of { store : loc }
      (** stores at this instruction must not hit a saved frame pointer or
          return-address slot of any active frame *)
  | Taint_filter of { source_sysno : int; prop : loc list; sink : loc }
      (** taint tracking restricted to the listed instructions *)

type origin = From_coredump | From_membug | From_taint

type t = {
  v_name : string;
  v_app : string;
  v_check : check;
  v_origin : origin;
}

val origin_to_string : origin -> string

val check_to_string : describe:(loc -> string) -> check -> string
(** Render a check; [describe] resolves a location against some process. *)

val default_describe : loc -> string
val to_string : ?describe:(loc -> string) -> t -> string

(** Handle on an installed VSEF, for uninstalling. *)
type installed = {
  i_vsef : t;
  i_hooks : Vm.Cpu.hook_id list;
  i_rollback_hooks : int list;
  i_proc : Osim.Process.t;
}

val install : ?static:Static_an.Staint.t -> Osim.Process.t -> t -> installed
(** Install a VSEF, translating its locations to this process's layout.
    The added instrumentation consists of per-pc hooks only. On violation
    the hooks raise {!Detection.Detected}, vetoing the instruction.
    [static] (an analysis of this process's code) prunes a
    {!Taint_filter}'s propagation hooks to the statically-reachable set —
    defense in depth against corrupted or stale shared antibodies, since
    dynamically-generated prop locations provably lie in that set. *)

val uninstall : installed -> unit

val footprint : installed -> int
(** How many program locations this VSEF hooks — the paper's argument that
    VSEFs are lightweight. *)
