(** First-class analysis stages: the control plane of the Figure 3
    pipeline.

    Each heavyweight analysis is a {!t}: a named transformation of a
    shared {!ctx} carrying the faulted server, the rollback point, the
    suspect window, and every product accumulated so far. The orchestrator
    becomes a declarative list of stages; all replay mechanics (rollback,
    netlog rearm, sandboxing, fuel, missing-checkpoint fallback) live in
    the {!Replay} driver alone. *)

module Int_set : Set.S with type elt = int and type t = Set.Make(Int).t

type timing = {
  st_name : string;
  st_wall_ms : float;     (** measured harness time for the stage *)
  st_instructions : int;  (** dynamic instructions monitored *)
}

type ctx = {
  cx_app : string;
  cx_server : Osim.Server.t;
  cx_fault : Vm.Event.fault;
  cx_crash_pc : int;
      (** pc at fault time, captured before any stage rolls back *)
  cx_ck : Osim.Checkpoint.t;  (** the rollback point every stage replays from *)
  cx_ck_fallback : bool;
      (** true when the ring had been overwritten/purged and the replay
          driver fell back to the server's origin checkpoint *)
  cx_upto : int;              (** replay window: log cursor at the crash *)
  cx_suspects : int list;     (** message ids consumed since [cx_ck] *)
  cx_static : Static_an.Staint.t option;
      (** static taint reachability of the process's code, computed by the
          static-prefilter stage and consumed by the taint replay *)
  cx_coredump : Coredump.report option;
  cx_membug : Membug.report option;
  cx_taint : Taint.result option;
  cx_isolation : (int list * bool) option;
      (** responsible message ids, stream-only flag *)
  cx_slice : Slice.result option;
  cx_vsefs : Vsef.t list;     (** accumulated, in order found *)
  cx_timings : timing list;   (** newest first; see {!timings} *)
  cx_marks : (string * float) list;
      (** named elapsed-ms milestones ("first-vsef", …) *)
  cx_t_start : float;
}

val proc : ctx -> Osim.Process.t
val elapsed_ms : ctx -> float

val mark : ctx -> string -> ctx
(** Record a named milestone at the current elapsed time. *)

val mark_ms : ctx -> string -> float
(** The elapsed time a milestone was recorded at; 0 if never recorded. *)

val add_vsefs : ctx -> Vsef.t list -> ctx

type t = {
  name : string;  (** the Table 2/3 stage name *)
  run : ctx -> ctx;
  instructions : ctx -> int;
      (** dynamic instructions the stage monitored, projected from the
          updated context (0 for stages that only read machine state) *)
}

(** Replay driver: the only owner of rollback, netlog rearm, sandboxing,
    and fuel. *)
module Replay : sig
  val analysis_fuel : int
  (** fuel for an instrumented analysis replay (20M instructions) *)

  val crash_fuel : int
  (** fuel for an uninstrumented does-it-still-crash replay (50M) *)

  val rollback_point :
    Osim.Server.t -> msg_index:int -> Osim.Checkpoint.t * bool
  (** The newest checkpoint at or before [msg_index] — falling back to
      the oldest retained one, and finally to the server's origin
      checkpoint ("re-run from process start") when the ring has been
      overwritten or purged empty. Returns [(ck, fallback?)]. *)

  val arm :
    ?sandbox:bool ->
    Osim.Process.t ->
    Osim.Checkpoint.t ->
    upto:int ->
    skip:Set.Make(Int).t ->
    unit
  (** Roll back to the checkpoint and arm replay of the log window up to
      [upto], dropping the messages in [skip]. Analysis replays sandbox
      outputs (the default); recovery replays do not. *)

  val release : Osim.Process.t -> unit
  (** Back to live service: log in [Live] mode, sandbox off. *)

  val analyze : ?skip:Int_set.t -> ctx -> (Osim.Process.t -> 'a) -> 'a
  (** Rearm the context's replay window and run one instrumented analysis
      over it. *)

  val crashes : ?skip:Int_set.t -> ctx -> bool
  (** Replay the window with no instrumentation; true when the crash (or
      the compromise) recurs. *)
end

val init : app:string -> Osim.Server.t -> Vm.Event.fault -> ctx
(** The shared context for an attack just detected on the server:
    rollback point, suspect window, crash pc. Reads machine state only. *)

val run : t -> ctx -> ctx
(** Run one stage, recording its wall time and monitored instructions. *)

val run_pipeline : t list -> ctx -> ctx

val timings : ctx -> timing list
(** Recorded stage timings, in execution order. *)
