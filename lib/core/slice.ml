(** Dynamic backward slicing.

    During replay every executed instruction becomes a node in a dependence
    graph: data dependences through the last writer of each register and
    memory byte, flag dependences through the last comparison, and control
    dependences through the last branch. The backward slice from the
    faulting instruction is the set of dynamic instructions that influenced
    it — a superset of what taint analysis sees (it includes pointer and
    control-flow influence), which is why it can act as a sanity check on
    every other analysis (Section 3.2). *)

module Int_set = Set.Make (Int)

(* The last-writer map is paged like {!Vm.Memory} (and {!Taint}'s shadow):
   one [int array] of last-writer sequence numbers per touched 4 KiB page,
   -1 meaning "never written". A replay's working set is a handful of hot
   pages, so a one-entry TLB plus a one-entry negative cache (for reads of
   never-written pages — code, library data) keeps the per-byte cost to an
   array index instead of a hashtable probe. *)
let page_bits = Vm.Memory.page_bits
let page_size = Vm.Memory.page_size
let page_mask = page_size - 1
let no_page : int array = [||]

type node = {
  n_seq : int;   (** dynamic instruction number (dense, from 0) *)
  n_pc : int;
  n_deps : int list;  (** seq numbers this node depends on *)
  n_src_msg : int option;  (** message id for network-input source nodes *)
}

type t = {
  proc : Osim.Process.t;
  mutable nodes : node array;
  mutable count : int;
  last_reg : int array;              (** reg -> seq of last writer *)
  last_mem : (int, int array) Hashtbl.t;
      (** page index -> per-byte seq of last writer (-1 = never) *)
  mutable lm_tlb_idx : int;          (** page index cached in [lm_tlb] *)
  mutable lm_tlb : int array;
  mutable lm_neg_idx : int;          (** page index known absent *)
  mutable last_flags : int;
  mutable last_branch : int;
}

let create proc =
  {
    proc;
    nodes = Array.make 4096 { n_seq = 0; n_pc = 0; n_deps = []; n_src_msg = None };
    count = 0;
    last_reg = Array.make Vm.Isa.num_regs (-1);
    last_mem = Hashtbl.create 64;
    lm_tlb_idx = -1;
    lm_tlb = no_page;
    lm_neg_idx = -1;
    last_flags = -1;
    last_branch = -1;
  }

(* Write side: the page for [addr], materialized on first write. *)
let lm_page st addr =
  let idx = addr lsr page_bits in
  if idx = st.lm_tlb_idx then st.lm_tlb
  else begin
    let pg =
      match Hashtbl.find_opt st.last_mem idx with
      | Some pg -> pg
      | None ->
        let pg = Array.make page_size (-1) in
        Hashtbl.add st.last_mem idx pg;
        pg
    in
    if st.lm_neg_idx = idx then st.lm_neg_idx <- -1;
    st.lm_tlb_idx <- idx;
    st.lm_tlb <- pg;
    pg
  end

(* Read side: seq of the last writer of [addr], -1 when never written. *)
let lm_get st addr =
  let idx = addr lsr page_bits in
  if idx = st.lm_tlb_idx then Array.unsafe_get st.lm_tlb (addr land page_mask)
  else if idx = st.lm_neg_idx then -1
  else
    match Hashtbl.find_opt st.last_mem idx with
    | None ->
      st.lm_neg_idx <- idx;
      -1
    | Some pg ->
      st.lm_tlb_idx <- idx;
      st.lm_tlb <- pg;
      Array.unsafe_get pg (addr land page_mask)

let lm_set st addr seq =
  Array.unsafe_set (lm_page st addr) (addr land page_mask) seq

(* Range fill (recv buffers): whole spans per page via [Array.fill]. *)
let lm_fill st addr len seq =
  let a = ref addr and remaining = ref len in
  while !remaining > 0 do
    let pg = lm_page st !a in
    let off = !a land page_mask in
    let n = min !remaining (page_size - off) in
    Array.fill pg off n seq;
    a := !a + n;
    remaining := !remaining - n
  done

let push st node =
  if st.count = Array.length st.nodes then begin
    let bigger = Array.make (2 * st.count) node in
    Array.blit st.nodes 0 bigger 0 st.count;
    st.nodes <- bigger
  end;
  st.nodes.(st.count) <- node;
  st.count <- st.count + 1

(* Dependences of an effect against the current last-writer maps. *)
let deps_of st (eff : Vm.Event.effect_) =
  let acc = ref [] in
  let add s = if s >= 0 then acc := s :: !acc in
  List.iter (fun r -> add st.last_reg.(Vm.Isa.reg_index r)) eff.e_regs_read;
  List.iter
    (fun (a : Vm.Event.access) ->
      for i = 0 to a.a_size - 1 do
        add (lm_get st (a.a_addr + i))
      done)
    eff.e_mem_reads;
  if eff.e_flags_read then add st.last_flags;
  add st.last_branch;
  List.sort_uniq compare !acc

let on_effect st (eff : Vm.Event.effect_) =
  let seq = st.count in
  let deps = deps_of st eff in
  let src_msg =
    match eff.e_sys with
    | Vm.Event.Io_recv { msg_id; _ } -> Some msg_id
    | _ -> None
  in
  push st { n_seq = seq; n_pc = eff.e_pc; n_deps = deps; n_src_msg = src_msg };
  (* Update writer maps. *)
  if eff.e_rw_count >= 1 then begin
    st.last_reg.(Vm.Isa.reg_index eff.e_rw0) <- seq;
    if eff.e_rw_count >= 2 then st.last_reg.(Vm.Isa.reg_index eff.e_rw1) <- seq
  end;
  List.iter
    (fun (a : Vm.Event.access) ->
      for i = 0 to a.a_size - 1 do
        lm_set st (a.a_addr + i) seq
      done)
    eff.e_mem_writes;
  (match eff.e_sys with
  | Vm.Event.Io_recv { buf; len; _ } -> lm_fill st buf len seq
  | _ -> ());
  if eff.e_flags_written then st.last_flags <- seq;
  match eff.e_ctrl with
  | Vm.Event.Jump -> (
    (* Conditional jumps (and taken unconditional ones reached through a
       condition) are control-dependence anchors. *)
    match eff.e_instr with
    | Vm.Isa.Jcc _ -> st.last_branch <- seq
    | _ -> ())
  | Vm.Event.Ret_to | Vm.Event.Call_to -> st.last_branch <- seq
  | Vm.Event.Next -> (
    match eff.e_instr with
    | Vm.Isa.Jcc _ -> st.last_branch <- seq  (* not-taken branch still governs *)
    | _ -> ())
  | Vm.Event.Sys | Vm.Event.Stop -> ()

(* Dependences of the *faulting* instruction, which never became a node
   because the fault pre-empted execution. Reconstructed from the machine
   state. *)
let fault_deps st =
  let cpu = st.proc.Osim.Process.cpu in
  let pc = cpu.Vm.Cpu.pc in
  let acc = ref [] in
  let add s = if s >= 0 then acc := s :: !acc in
  let add_reg r = add st.last_reg.(Vm.Isa.reg_index r) in
  let add_mem addr size =
    for i = 0 to size - 1 do
      add (lm_get st (addr + i))
    done
  in
  (match Vm.Program.fetch cpu.Vm.Cpu.code pc with
  | Some (Vm.Isa.Ret) ->
    add_reg Vm.Isa.SP;
    add_mem (Vm.Cpu.get_reg cpu Vm.Isa.SP) 4
  | Some (Vm.Isa.CallInd r) -> add_reg r
  | Some (Vm.Isa.Load (_, rs, _) | Vm.Isa.Loadb (_, rs, _)) -> add_reg rs
  | Some (Vm.Isa.Store (rb, _, rs) | Vm.Isa.Storeb (rb, _, rs)) ->
    add_reg rb;
    add_reg rs
  | Some (Vm.Isa.Bin (_, rd, src)) -> (
    add_reg rd;
    match src with Vm.Isa.Reg r -> add_reg r | _ -> ())
  | _ -> ());
  add st.last_branch;
  (pc, List.sort_uniq compare !acc)

type summary = {
  s_nodes : int;              (** dynamic instructions in the window *)
  s_slice_size : int;         (** dynamic instructions in the slice *)
  s_pcs : Int_set.t;          (** static instructions in the slice *)
  s_msgs : Int_set.t;         (** input messages the fault depends on *)
  s_fault_pc : int;
}

(** Walk backward from the given roots. *)
let backward st ~fault_pc ~roots : summary =
  let in_slice = Array.make (max 1 st.count) false in
  let pcs = ref Int_set.empty in
  let msgs = ref Int_set.empty in
  let rec visit s =
    if s >= 0 && s < st.count && not (in_slice.(s)) then begin
      in_slice.(s) <- true;
      let n = st.nodes.(s) in
      pcs := Int_set.add n.n_pc !pcs;
      (match n.n_src_msg with
      | Some m -> msgs := Int_set.add m !msgs
      | None -> ());
      List.iter visit n.n_deps
    end
  in
  List.iter visit roots;
  let size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 in_slice in
  {
    s_nodes = st.count;
    s_slice_size = size;
    s_pcs = Int_set.add fault_pc !pcs;
    s_msgs = !msgs;
    s_fault_pc = fault_pc;
  }

type result = {
  sl_summary : summary;
  sl_instructions : int;
}

(** Attach the graph collector, run the replay, slice backward from the
    fault (or from the final instruction if the replay ended cleanly). *)
let run ?(fuel = 20_000_000) (proc : Osim.Process.t) : result =
  let st = create proc in
  let hook = Vm.Cpu.add_post_hook proc.cpu (on_effect st) in
  let outcome = Vm.Cpu.run ~fuel proc.cpu in
  Vm.Cpu.remove_hook proc.cpu hook;
  let fault_pc, roots =
    match outcome with
    | Vm.Cpu.Faulted _ -> fault_deps st
    | _ ->
      let pc = proc.Osim.Process.cpu.Vm.Cpu.pc in
      (pc, if st.count = 0 then [] else [ st.count - 1 ])
  in
  { sl_summary = backward st ~fault_pc ~roots; sl_instructions = st.count }

(** Does the slice contain (verify) an instruction another analysis
    blamed? The slice is the ground truth: a claim outside it is wrong. *)
let verifies (s : summary) pc = Int_set.mem pc s.s_pcs

(* ------------------------------------------------------------------ *)
(* Forward slicing                                                     *)
(* ------------------------------------------------------------------ *)

(** A forward slice: every dynamic instruction influenced by a starting
    set — e.g. everything a particular network input could have touched
    ("a forward slice from the exploit input would reveal all instructions
    and memory potentially tainted by it", Section 3.2). Computed from the
    same dependence graph, walked in the other direction. *)
type forward = {
  fw_size : int;          (** dynamic instructions influenced *)
  fw_pcs : Int_set.t;     (** static instructions influenced *)
}

(* Walk the graph forward from the given seeds. The graph stores backward
   edges, so build the successor relation once. *)
let forward_from st ~seeds : forward =
  let n = st.count in
  let succs = Array.make (max 1 n) [] in
  for s = 0 to n - 1 do
    List.iter
      (fun d -> if d >= 0 && d < n then succs.(d) <- s :: succs.(d))
      st.nodes.(s).n_deps
  done;
  let influenced = Array.make (max 1 n) false in
  let pcs = ref Int_set.empty in
  let rec visit s =
    if s >= 0 && s < n && not influenced.(s) then begin
      influenced.(s) <- true;
      pcs := Int_set.add st.nodes.(s).n_pc !pcs;
      List.iter visit succs.(s)
    end
  in
  List.iter visit seeds;
  let size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 influenced in
  { fw_size = size; fw_pcs = !pcs }

(** Result of a replay that keeps the dependence graph for further queries
    (forward slices, per-message influence). *)
type session = {
  graph : t;
  outcome : Vm.Cpu.outcome;
  backward : summary;
}

(** Like {!run}, but retain the graph. *)
let run_session ?(fuel = 20_000_000) (proc : Osim.Process.t) : session =
  let st = create proc in
  let hook = Vm.Cpu.add_post_hook proc.cpu (on_effect st) in
  let outcome = Vm.Cpu.run ~fuel proc.cpu in
  Vm.Cpu.remove_hook proc.cpu hook;
  let fault_pc, roots =
    match outcome with
    | Vm.Cpu.Faulted _ -> fault_deps st
    | _ ->
      let pc = proc.Osim.Process.cpu.Vm.Cpu.pc in
      (pc, if st.count = 0 then [] else [ st.count - 1 ])
  in
  { graph = st; outcome; backward = backward st ~fault_pc ~roots }

(** Everything influenced by the given input message: the forward slice
    seeded at that message's receive event. *)
let forward_from_message (session : session) ~msg_id : forward =
  let seeds = ref [] in
  for s = 0 to session.graph.count - 1 do
    if session.graph.nodes.(s).n_src_msg = Some msg_id then seeds := s :: !seeds
  done;
  forward_from session.graph ~seeds:!seeds
