(** Memory-state analysis: the first, fastest analysis step.

    Given only the faulted process image (no re-execution), it classifies
    the crash, checks stack and heap consistency, and derives the initial
    VSEF — available within milliseconds of detection, which is what lets
    Sweeper start spreading an antibody while the heavier analyses are
    still running. *)

type diagnosis =
  | Stack_smash_suspected   (** corrupted return taken; stack walk broken *)
  | Null_dereference        (** access inside the NULL guard page *)
  | Double_free_suspected   (** crash inside [free]; argument already freed *)
  | Heap_overflow_suspected (** wild store off the heap; chunk headers bad *)
  | Unclassified

type report = {
  c_fault : Vm.Event.fault;
  c_crash_pc : int;
  c_crash_fn : string option;        (** function containing the faulting pc *)
  c_caller_fn : string option;       (** caller, when the walk allows it *)
  c_stack_consistent : bool;
  c_heap_consistent : bool;
  c_diagnosis : diagnosis;
  c_vsef : Vsef.t option;            (** the initial VSEF *)
  c_summary : string;
  c_flight : string option;
      (** the VM flight-recorder ring dump, when one was attached to the
          crashed process (post-mortem forensics) *)
}

let diagnosis_to_string = function
  | Stack_smash_suspected -> "stack smashing"
  | Null_dereference -> "NULL pointer dereference"
  | Double_free_suspected -> "double free"
  | Heap_overflow_suspected -> "heap buffer overflow"
  | Unclassified -> "unclassified"

let symbol_at (p : Osim.Process.t) addr =
  List.find_map
    (fun (img : Vm.Asm.image) ->
      if addr >= img.Vm.Asm.base && addr < img.Vm.Asm.limit then
        Option.map fst (Vm.Asm.symbolize img addr)
      else None)
    (Osim.Process.images p)

(* The address range of the function that contains [addr]: [start] of its
   symbol to the start of the next symbol (or the image limit). *)
let function_range (p : Osim.Process.t) addr =
  List.find_map
    (fun (img : Vm.Asm.image) ->
      if addr >= img.Vm.Asm.base && addr < img.Vm.Asm.limit then begin
        match Vm.Asm.symbolize img addr with
        | None -> None
        | Some (name, off) ->
          let start = addr - off in
          let next = ref img.Vm.Asm.limit in
          Hashtbl.iter
            (fun n a ->
              if a > start && a < !next && String.length n > 0 && n.[0] <> '.'
              then next := a)
            img.Vm.Asm.symbols;
          Some (name, start, !next)
      end
      else None)
    (Osim.Process.images p)

(* Walk the frame-pointer chain, verifying each saved frame pointer stays
   in the stack and each return address is a code address. *)
let stack_walk (p : Osim.Process.t) =
  let layout = p.layout in
  let in_stack a =
    a >= layout.Vm.Layout.stack_limit && a < layout.Vm.Layout.stack_top
  in
  let rec go frames fp n =
    if n > 64 then (List.rev frames, true)
    else if not (in_stack fp) then
      (* Reaching the initial frame (fp = 0 from _start) is a clean end. *)
      (List.rev frames, fp = 0 || fp >= layout.Vm.Layout.stack_top - 32)
    else
      let saved_fp = Vm.Memory.load_word p.mem fp in
      let ret = Vm.Memory.load_word p.mem (fp + 4) in
      if not (Vm.Layout.valid_code layout ret) then (List.rev frames, false)
      else if in_stack saved_fp && saved_fp <= fp then (List.rev frames, false)
      else go ((fp, ret) :: frames) saved_fp (n + 1)
  in
  go [] (Vm.Cpu.get_reg p.cpu Vm.Isa.FP) 0

(** Analyze a faulted process. Non-destructive: reads machine state only. *)
let analyze (p : Osim.Process.t) (fault : Vm.Event.fault) : report =
  let cpu = p.cpu in
  let pc = cpu.Vm.Cpu.pc in
  let crash_fn = symbol_at p pc in
  let frames, stack_consistent = stack_walk p in
  let heap_ok = Vm.Alloc.heap_consistent p.mem p.layout in
  let instr = Vm.Program.fetch cpu.Vm.Cpu.code pc in
  let describe a = Osim.Process.describe_addr p a in
  (* The caller of the faulting function, from the first walked frame. *)
  let caller_fn =
    match frames with
    | (_, ret) :: _ -> symbol_at p ret
    | [] -> None
  in
  (* Double-free evidence: crashed inside free and the chunk being freed
     carries the "already freed" magic. *)
  let free_arg_already_freed () =
    match crash_fn with
    | Some "free" ->
      let fp = Vm.Cpu.get_reg cpu Vm.Isa.FP in
      let ptr = Vm.Memory.load_word p.mem (fp + 8) in
      ptr >= p.layout.Vm.Layout.heap_base
      && ptr < p.layout.Vm.Layout.heap_max
      && Vm.Memory.load_word p.mem (ptr - 4) = Vm.Alloc.magic_freed
    | _ -> false
  in
  let loc = Vsef.loc_of_pc p in
  let diagnosis, vsef =
    match (fault, instr) with
    | Vm.Event.Exec_violation _, Some Vm.Isa.Ret ->
      (* A corrupted return address was taken: stack smashing. Initial
         VSEF: side stack for the victim function. *)
      let vsef =
        match function_range p pc with
        | Some (fn, entry, _) ->
          Some
            {
              Vsef.v_name = "side-stack-" ^ fn;
              v_app = "";
              v_check = Vsef.Side_stack { entry = loc entry; ret = loc pc; fn };
              v_origin = Vsef.From_coredump;
            }
        | None -> None
      in
      (Stack_smash_suspected, vsef)
    | (Vm.Event.Segv_read a | Vm.Event.Segv_write a), _
      when a < 0x10000 && not stack_consistent
           && not (free_arg_already_freed ()) ->
      (* A wild access through a corrupted frame: the smash clobbered the
         saved frame pointer but not (or not validly) the return address.
         No precise initial VSEF exists from the image alone; memory-bug
         detection will pin the overflowing store during replay. *)
      (Stack_smash_suspected, None)
    | (Vm.Event.Segv_read a | Vm.Event.Segv_write a), _ when a < 0x10000 && not (free_arg_already_freed ()) ->
      ( Null_dereference,
        Some
          {
            Vsef.v_name = "null-check";
            v_app = "";
            v_check = Vsef.Null_check { at = loc pc };
            v_origin = Vsef.From_coredump;
          } )
    | (Vm.Event.Segv_read _ | Vm.Event.Segv_write _), _
      when free_arg_already_freed () ->
      let vsef =
        match function_range p pc with
        | Some (_, entry, _) ->
          Some
            {
              Vsef.v_name = "free-guard";
              v_app = "";
              v_check = Vsef.Free_guard { free_entry = loc entry };
              v_origin = Vsef.From_coredump;
            }
        | None -> None
      in
      (Double_free_suspected, vsef)
    | Vm.Event.Segv_write a, Some (Vm.Isa.Storeb _ | Vm.Isa.Store _)
      when a >= p.layout.Vm.Layout.heap_base && a < p.layout.Vm.Layout.heap_max + Vm.Memory.page_size ->
      (* A store ran off the mapped heap: heap overflow. Qualify the VSEF
         by the calling context when the store is in a library routine. *)
      let caller_range =
        match frames with
        | (_, ret) :: _ -> (
          match function_range p ret with
          | Some (_, lo, hi) -> Some (loc lo, loc hi)
          | None -> None)
        | [] -> None
      in
      ( Heap_overflow_suspected,
        Some
          {
            Vsef.v_name = "heap-bounds";
            v_app = "";
            v_check =
              Vsef.Heap_bounds { store = loc pc; caller = caller_fn; caller_range };
            v_origin = Vsef.From_coredump;
          } )
    | _ -> (Unclassified, None)
  in
  let summary =
    Printf.sprintf "Crash at %s; stack %s; heap %s -> %s" (describe pc)
      (if stack_consistent then "consistent" else "inconsistent")
      (if heap_ok && diagnosis <> Double_free_suspected then "consistent"
       else "inconsistent")
      (diagnosis_to_string diagnosis)
  in
  {
    c_fault = fault;
    c_crash_pc = pc;
    c_crash_fn = crash_fn;
    c_caller_fn = caller_fn;
    c_stack_consistent = stack_consistent;
    c_heap_consistent = heap_ok && diagnosis <> Double_free_suspected;
    c_diagnosis = diagnosis;
    c_vsef = vsef;
    c_summary = summary;
    c_flight =
      Option.map
        (fun r -> Obs.Recorder.dump ~images:(Osim.Process.images p) r)
        p.Osim.Process.flight;
  }
