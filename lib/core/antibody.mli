(** Antibodies: the shareable defense artifacts, distributed piecemeal as
    each analysis stage completes.

    The concrete manifestation is a set of VSEFs plus, when available, an
    input signature and the exploit-triggering input. Untrusting consumers
    verify a bundle by replaying the included exploit against their own
    copy of the application ({!verify}). By construction VSEFs cannot be
    harmful: an incorrect one only adds monitoring. *)

type stage =
  | Initial  (** core-dump VSEF only — available within milliseconds *)
  | Refined  (** plus memory-bug-derived VSEFs *)
  | Full     (** plus taint VSEF, input signature, exploit input *)

type t = {
  ab_app : string;  (** registry key of the vulnerable application *)
  ab_stage : stage;
  ab_vsefs : Vsef.t list;
  ab_signature : Signature.t option;
  ab_exploit_input : string list option;
      (** the triggering stream, for consumer-side verification *)
}

val stage_to_string : stage -> string

val initial : app:string -> Vsef.t -> t
val refine : t -> Vsef.t list -> t

val complete :
  t ->
  ?taint_vsef:Vsef.t ->
  signature:Signature.t ->
  exploit_input:string list ->
  unit ->
  t

val validate_feasible :
  Osim.Process.t -> Static_an.Absint.t -> t -> (string * int list) list
(** Check every [Heap_bounds]/[Store_guard] against the interval
    analysis: the guarded pc must be a statically feasible unsafe write
    ({!Static_an.Absint.feasible_unsafe_write}). Dynamically-derived
    VSEFs provably pass; a non-empty result means the bundle asks
    consumers to monitor a store no CFG-following execution can overflow
    at — fabricated or corrupted. *)

val validate_static :
  ?absint:Static_an.Absint.t ->
  Osim.Process.t ->
  Static_an.Staint.t ->
  t ->
  (string * int list) list
(** Check every taint filter's propagation locations against the static
    may-propagate set of [proc]'s code, plus — when [absint] is given —
    {!validate_feasible}'s interval bar on the overflow checks.
    Dynamically-generated filters provably pass; a non-empty result (as
    [(vsef name, offending pcs)]) means the bundle is stale or
    corrupted. *)

val deploy : ?static:Static_an.Staint.t -> Osim.Process.t -> t -> Vsef.installed list
(** Install the VSEFs on the process and the input signature at its
    network proxy. [static] is threaded to {!Vsef.install} to prune taint
    filters to the statically-reachable propagation set. *)

val undeploy : Osim.Process.t -> t -> Vsef.installed list -> unit

val verify : t -> compile:(unit -> Minic.Codegen.compiled) -> bool
(** Consumer-side verification: feed the included exploit to a fresh,
    sandboxed copy of the application and check that it misbehaves. *)
