(** The end-to-end Sweeper defense process of the paper's Figure 3:
    lightweight monitoring trips → rollback → staged heavyweight analysis
    (memory state → memory bugs → taint → input isolation → slicing) →
    antibody generation → recovery.

    Each analysis is a {!Stage.t} replaying from the same checkpoint with
    different instrumentation; {!handle_attack} is a declarative list of
    them folded over a shared {!Stage.ctx}, so policies (sampling,
    per-stage skipping, escalation) manipulate the list rather than the
    code. Replay mechanics live in {!Stage.Replay} alone. *)

module Int_set = Stage.Int_set

type stage_timing = Stage.timing = {
  st_name : string;
  st_wall_ms : float;      (** measured harness time for the stage *)
  st_instructions : int;   (** dynamic instructions monitored *)
}

type report = {
  a_app : string;
  a_fault : Vm.Event.fault;
  a_coredump : Coredump.report;
  a_membug : Membug.report;
  a_taint : Taint.result;
  a_isolation : int list;  (** message ids reproducing the crash *)
  a_isolation_stream : bool;
      (** true when only the full suspect stream reproduces it (stateful
          exploits like the CVS double free) *)
  a_slice : Slice.summary;
  a_slice_verifies : bool;  (** every blamed pc is inside the slice *)
  a_vsefs : Vsef.t list;    (** initial + refined + taint, in order found *)
  a_signature : Signature.t option;
  a_antibody : Antibody.t;
  a_timings : stage_timing list;
  a_time_to_first_vsef_ms : float;
  a_time_to_best_vsef_ms : float;
  a_initial_analysis_ms : float;  (** VSEFs + exploit input isolated *)
  a_total_ms : float;
}

(* Milestones the report's headline timings are read from. *)
let mark_first_vsef = "first-vsef"
let mark_best_vsef = "best-vsef"
let mark_initial_analysis = "initial-analysis"

(* --- Stage 0: static taint prefilter (no replay at all) ----------------- *)
let static_stage =
  {
    Stage.name = "static-prefilter";
    run =
      (fun cx ->
        let sa =
          Static_an.Staint.analyze
            (Stage.proc cx).Osim.Process.cpu.Vm.Cpu.code
        in
        Obs.Metrics.set
          (Obs.Metrics.gauge
             ~help:"taint hook points the static prefilter keeps"
             "sweeper_static_hook_points")
          (float_of_int (Static_an.Staint.hook_count sa));
        { cx with Stage.cx_static = Some sa });
    instructions = (fun _ -> 0);
  }

(* --- Stage 1: memory-state analysis (no rollback needed) --------------- *)
let coredump_stage =
  {
    Stage.name = "Memory State Analysis";
    run =
      (fun cx ->
        let r = Coredump.analyze (Stage.proc cx) cx.Stage.cx_fault in
        let initial =
          match r.Coredump.c_vsef with
          | Some v -> [ { v with Vsef.v_app = cx.Stage.cx_app } ]
          | None -> []
        in
        let cx = { cx with Stage.cx_coredump = Some r } in
        Stage.mark (Stage.add_vsefs cx initial) mark_first_vsef);
    instructions = (fun _ -> 0);
  }

(* --- Stage 2: memory-bug detection ------------------------------------- *)
let membug_stage =
  {
    Stage.name = "Memory Bug Detection";
    run =
      (fun cx ->
        let r =
          Stage.Replay.analyze cx
            (Membug.run ~fuel:Stage.Replay.analysis_fuel)
        in
        let refined =
          List.filter_map
            (Membug.vsef_of_finding ~app:cx.Stage.cx_app ~proc:(Stage.proc cx))
            (List.sort_uniq compare r.Membug.m_findings)
        in
        let cx = { cx with Stage.cx_membug = Some r } in
        Stage.mark (Stage.add_vsefs cx refined) mark_best_vsef);
    instructions =
      (fun cx ->
        match cx.Stage.cx_membug with
        | Some r -> r.Membug.m_instructions
        | None -> 0);
  }

(* --- Stage 3: dynamic taint analysis ----------------------------------- *)
let taint_stage =
  {
    Stage.name = "Input/Taint Analysis";
    run =
      (fun cx ->
        let r =
          Stage.Replay.analyze cx
            (Taint.run ~fuel:Stage.Replay.analysis_fuel
               ?static:cx.Stage.cx_static)
        in
        let vsef =
          Taint.vsef_of_result ~app:cx.Stage.cx_app ~proc:(Stage.proc cx) r
        in
        let cx = { cx with Stage.cx_taint = Some r } in
        Stage.add_vsefs cx (Option.to_list vsef));
    instructions =
      (fun cx ->
        match cx.Stage.cx_taint with
        | Some r -> r.Taint.t_instructions
        | None -> 0);
  }

(* --- Stage 4: input isolation (suspects one at a time) ------------------ *)
let isolation_stage =
  {
    Stage.name = "Input Isolation";
    run =
      (fun cx ->
        let taint_msgs =
          match cx.Stage.cx_taint with
          | Some t -> Taint.verdict_msgs t.Taint.t_verdict
          | None -> []
        in
        let result =
          match taint_msgs with
          | _ :: _ -> (taint_msgs, false)  (* taint already isolated the input *)
          | [] ->
            let suspects = cx.Stage.cx_suspects in
            let all = Int_set.of_list suspects in
            let alone =
              List.filter
                (fun m -> Stage.Replay.crashes ~skip:(Int_set.remove m all) cx)
                suspects
            in
            if alone <> [] then (alone, false)
            else if not (Stage.Replay.crashes cx) then ([], false)
            else begin
              (* Only a stream reproduces it (stateful exploit). Minimize
                 it greedily: drop each message whose absence keeps the
                 crash. *)
              let keep = ref all in
              List.iter
                (fun m ->
                  let candidate = Int_set.remove m !keep in
                  if Stage.Replay.crashes ~skip:(Int_set.diff all candidate) cx
                  then keep := candidate)
                suspects;
              (Int_set.elements !keep, true)
            end
        in
        Stage.mark
          { cx with Stage.cx_isolation = Some result }
          mark_initial_analysis);
    instructions = (fun _ -> 0);
  }

(* --- Stage 5: dynamic backward slicing ---------------------------------- *)
let slicing_stage =
  {
    Stage.name = "Dynamic Slicing";
    run =
      (fun cx ->
        let r =
          Stage.Replay.analyze cx (Slice.run ~fuel:Stage.Replay.analysis_fuel)
        in
        { cx with Stage.cx_slice = Some r });
    instructions =
      (fun cx ->
        match cx.Stage.cx_slice with
        | Some r -> r.Slice.sl_instructions
        | None -> 0);
  }

let default_stages =
  [ static_stage; coredump_stage; membug_stage; taint_stage; isolation_stage;
    slicing_stage ]

(** Cross-check the stage products, assemble the antibody, and (by
    default) recover the server. Stages that did not run contribute
    neutral products: empty findings, [No_fault] taint, a vacuously
    verifying slice. *)
let finish ?(recover = true) (cx : Stage.ctx) : report =
  let proc = Stage.proc cx in
  let net = proc.Osim.Process.net in
  let app = cx.Stage.cx_app in
  let coredump =
    match cx.Stage.cx_coredump with
    | Some r -> r
    | None ->
      {
        Coredump.c_fault = cx.Stage.cx_fault;
        c_crash_pc = cx.Stage.cx_crash_pc;
        c_crash_fn = None;
        c_caller_fn = None;
        c_stack_consistent = true;
        c_heap_consistent = true;
        c_diagnosis = Coredump.Unclassified;
        c_vsef = None;
        c_summary = "memory-state analysis skipped";
        c_flight = None;
      }
  in
  let membug =
    match cx.Stage.cx_membug with
    | Some r -> r
    | None -> { Membug.m_findings = []; m_fault = None; m_instructions = 0 }
  in
  let taint =
    match cx.Stage.cx_taint with
    | Some r -> r
    | None ->
      { Taint.t_verdict = Taint.No_fault; t_prop_pcs = []; t_instructions = 0 }
  in
  let isolation, stream_only =
    Option.value ~default:([], false) cx.Stage.cx_isolation
  in
  let slice =
    match cx.Stage.cx_slice with
    | Some r -> r.Slice.sl_summary
    | None ->
      {
        Slice.s_nodes = 0;
        s_slice_size = 0;
        s_pcs = Int_set.empty;
        s_msgs = Int_set.empty;
        s_fault_pc = cx.Stage.cx_crash_pc;
      }
  in
  (* Cross-check every blamed instruction against the slice (vacuous when
     the slicing stage did not run). *)
  let blamed_pcs =
    List.map Membug.finding_pc membug.Membug.m_findings
    @ (match coredump.Coredump.c_diagnosis with
      | Coredump.Null_dereference | Coredump.Stack_smash_suspected
      | Coredump.Heap_overflow_suspected | Coredump.Double_free_suspected ->
        [ coredump.Coredump.c_crash_pc ]
      | Coredump.Unclassified -> [])
  in
  let slice_verifies =
    match cx.Stage.cx_slice with
    | Some _ -> List.for_all (Slice.verifies slice) blamed_pcs
    | None -> true
  in
  (* --- Antibody assembly ------------------------------------------------ *)
  let initial_vsefs =
    match coredump.Coredump.c_vsef with
    | Some v -> [ { v with Vsef.v_app = app } ]
    | None -> []
  in
  let refined_vsefs =
    List.filter_map (Membug.vsef_of_finding ~app ~proc)
      (List.sort_uniq compare membug.Membug.m_findings)
  in
  let taint_vsef = Taint.vsef_of_result ~app ~proc taint in
  let responsible_payloads =
    List.map
      (fun id -> (Osim.Netlog.message net id).Osim.Netlog.m_payload)
      isolation
  in
  let signature =
    match responsible_payloads with
    | [] -> None
    | [ one ] when not stream_only -> Some (Signature.exact one)
    | stream -> Some (Signature.exact (String.concat "" stream))
  in
  let antibody =
    let base =
      match initial_vsefs with
      | v :: _ -> Antibody.initial ~app v
      | [] -> (
        match refined_vsefs with
        | v :: _ -> Antibody.initial ~app v
        | [] ->
          { Antibody.ab_app = app; ab_stage = Antibody.Initial; ab_vsefs = [];
            ab_signature = None; ab_exploit_input = None })
    in
    let refined = Antibody.refine base refined_vsefs in
    match signature with
    | Some s ->
      Antibody.complete refined ?taint_vsef ~signature:s
        ~exploit_input:responsible_payloads ()
    | None -> refined
  in
  (* --- Recovery ---------------------------------------------------------- *)
  let all_vsefs = initial_vsefs @ refined_vsefs @ Option.to_list taint_vsef in
  Obs.Metrics.add
    (Obs.Metrics.counter ~help:"VSEFs generated" "sweeper_vsefs_total")
    (List.length all_vsefs);
  Obs.Metrics.inc
    (Obs.Metrics.counter ~help:"antibodies assembled" "sweeper_antibodies_total");
  (* detection-to-first-antibody: the attack span opened at detection; this
     instant closes the latency the paper's ~60 ms claim is about. *)
  Obs.Trace.instant ~cat:"attack" ~pid:cx.Stage.cx_server.Osim.Server.id
    ~args:
      [ ("app", app);
        ("elapsed_ms", Printf.sprintf "%.3f" (Stage.elapsed_ms cx));
        ("vsefs", string_of_int (List.length all_vsefs));
      ]
    "antibody-ready";
  if recover then begin
    (* Install the antibody first, then roll back and re-execute without
       the malicious input. *)
    ignore (Antibody.deploy proc antibody);
    let skip = if isolation <> [] then isolation else cx.Stage.cx_suspects in
    ignore (Recovery.recover cx.Stage.cx_server cx.Stage.cx_ck ~skip)
  end;
  {
    a_app = app;
    a_fault = cx.Stage.cx_fault;
    a_coredump = coredump;
    a_membug = membug;
    a_taint = taint;
    a_isolation = isolation;
    a_isolation_stream = stream_only;
    a_slice = slice;
    a_slice_verifies = slice_verifies;
    a_vsefs = all_vsefs;
    a_signature = signature;
    a_antibody = antibody;
    a_timings = Stage.timings cx;
    a_time_to_first_vsef_ms = Stage.mark_ms cx mark_first_vsef;
    a_time_to_best_vsef_ms = Stage.mark_ms cx mark_best_vsef;
    a_initial_analysis_ms = Stage.mark_ms cx mark_initial_analysis;
    a_total_ms = Stage.elapsed_ms cx;
  }

(** Analyze an attack that was just detected on [server] as [fault]: fold
    the stage list over a fresh context, then cross-check, assemble the
    antibody, and recover. Leaves the process rolled back and live again
    with the antibody installed (unless [recover] is false). *)
let handle_attack ?(recover = true) ?(stages = default_stages) ~app
    (server : Osim.Server.t) (fault : Vm.Event.fault) =
  Obs.Metrics.inc
    (Obs.Metrics.counter ~help:"attacks detected by lightweight monitoring"
       "sweeper_detections_total");
  Obs.Trace.with_span ~cat:"attack" ~pid:server.Osim.Server.id
    ~vts_ms:(Osim.Server.vtime_ms server)
    ~args:[ ("app", app); ("fault", Vm.Event.fault_to_string fault) ]
    "attack"
    (fun () ->
      finish ~recover (Stage.run_pipeline stages (Stage.init ~app server fault)))

(** Serve messages on a Sweeper-protected server, running the full defense
    process when the lightweight monitoring trips. Returns the analysis
    reports of the attacks handled. *)
let protected_handle ~app (server : Osim.Server.t) payload =
  match Osim.Server.handle server payload with
  | `Served id -> `Served id
  | `Filtered f -> `Filtered f
  | `Stopped -> `Stopped
  | `Crashed (_, fault) -> `Attack (handle_attack ~app server fault)
  | `Infected (_, _cmd) ->
    (* A compromise slipped past the monitors (correct ASLR guess). On a
       full-Sweeper host we still roll back and analyze: the infection left
       a fault-free trail, but the compromise event is the trigger. *)
    `Compromised
  | exception Detection.Detected d ->
    (* A VSEF vetoed the instruction: drop the in-flight message, roll back
       to a checkpoint predating it (the latest one may sit mid-message)
       and resume. *)
    let cur = server.Osim.Server.proc.Osim.Process.cur_msg in
    let ck, _ = Stage.Replay.rollback_point server ~msg_index:cur in
    ignore (Recovery.recover server ck ~skip:[ cur ]);
    `Blocked_by_vsef d
