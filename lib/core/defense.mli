(** The community defense, mechanically: a fleet of real (simulated) hosts
    in the Producer/Consumer arrangement of the paper's Section 6.

    Producers run the complete Sweeper stack; when one is probed it runs
    the full analysis and publishes an antibody. Consumers run lightweight
    monitoring only, deploy published antibodies (optionally verifying them
    first), and recover by rollback when attacked. This is the bridge
    between the per-host machinery of {!Orchestrator} and the
    population-level claims of the epidemic model.

    Community runs execute on the cooperative scheduler ({!Osim.Sched}):
    hosts are tasks, traffic is posted to per-host inboxes, and service,
    analysis, recovery, and antibody propagation interleave in simulated
    time. The direct {!deliver} path shares the same reaction logic, so
    serial and scheduled runs behave identically per host. *)

type role = Producer | Consumer

type host = {
  h_id : int;
  h_role : role;
  h_proc : Osim.Process.t;
  h_server : Osim.Server.t;
  mutable h_infected : bool;
  mutable h_deployed : int;  (** antibody generation installed *)
  mutable h_installed : Vsef.installed list;  (** currently-armed VSEFs *)
}

type stats = {
  mutable s_attempts : int;
  mutable s_infections : int;
  mutable s_crashes : int;   (** detections via lightweight monitoring *)
  mutable s_blocked : int;   (** stopped by antibodies *)
  mutable s_analyses : int;  (** producer pipeline runs *)
  mutable s_first_antibody_ms : float option;
}

(** One confirmed infection — the simulator's ground truth that forensic
    trace-back is validated against. Read off the victim's state at the
    moment the compromise surfaced; reconstruction must recover the same
    tuple from netlogs alone. *)
type infection = {
  inf_victim : int;    (** infected host (global id) *)
  inf_src : int;       (** sending host, from the message's provenance *)
  inf_seq : int;       (** sender-side sequence number *)
  inf_msg : int;       (** netlog message id on the victim *)
  inf_arrival : float; (** victim-side arrival vtime of the message *)
  inf_vtime : float;   (** vtime the compromise surfaced *)
}

(** Where the community's antibody came from: the producer whose crash
    triggered the analysis, and the provenance of the attack message it
    analyzed. *)
type ab_origin = {
  ao_host : int;    (** the producer that ran the analysis *)
  ao_vtime : float; (** vtime of the detection *)
  ao_msg : int;     (** netlog id of the attack message on that host *)
  ao_src : int;     (** provenance source of that message *)
  ao_seq : int;     (** its sender-side sequence number *)
}

type t = {
  app : string;
  compile : unit -> Minic.Codegen.compiled;
  hosts : host list;
  mutable antibody : (int * Antibody.t) option;  (** generation, bundle *)
  mutable generation : int;
  mutable corpus : string list;
      (** confirmed exploit payloads observed community-wide *)
  verify_before_deploy : bool;
  stats : stats;
  metrics : Obs.Metrics.t;
      (** the registry counters publish into — per-shard in sharded runs *)
  mutable infections : infection list;
      (** ground-truth infection log, newest first *)
  mutable ab_origin : ab_origin option;
      (** provenance of the first antibody (local analysis or adopted) *)
  mutable statics : (Osim.Process.t * Static_an.Staint.t) option;
      (** lazily-built reference copy of the application plus its static
          taint analysis, for validating published antibodies (the
          process carries its interval analysis in
          [Osim.Process.absint]); fixed-seed, so all shards agree *)
}

val create :
  ?verify_before_deploy:bool ->
  ?metrics:Obs.Metrics.t ->
  ?template_pool:int ->
  app:string ->
  compile:(unit -> Minic.Codegen.compiled) ->
  n:int ->
  producers:int ->
  seed:int ->
  unit ->
  t
(** A community of [n] hosts; the first [producers] run the full stack.
    Every host gets an independent randomized layout derived from [seed].
    Hosts are instantiated from a pool of [template_pool] pre-loaded
    {!Osim.Process.template}s (one full load pipeline per distinct layout
    seed, then copy-on-write clones), which keeps per-host creation cost
    flat at large [n] while matching the per-seed load exactly. *)

val publish : t -> Antibody.t -> bool
(** Publish an antibody — after validation. Two static bars always
    apply: every [Heap_bounds]/[Store_guard] pc must be a statically
    feasible unsafe write ({!Antibody.validate_feasible}) and every
    taint-filter pc must lie in the static may-propagate set
    ({!Antibody.validate_static}); with [verify_before_deploy] the
    bundle is additionally sandbox-verified by exploit replay. Returns
    acceptance; rejections count in [sweeper_antibody_rejected_total]
    with a [reason] label (["static-infeasible"], ["pcs-outside-S"],
    ["replay-failed"]). *)

val record_exploit_sample : t -> string -> unit
(** Record a confirmed exploit payload (the original crash input or a
    VSEF-blocked variant). With two or more distinct samples the signature
    is refined from exact-match to a token signature covering the family,
    and the antibody is republished. Refinement saturates after a small
    corpus cap — token signatures converge within a handful of diverse
    variants, and refining on every variant of a large outbreak would
    redeploy VSEFs community-wide O(n^2) times. *)

type delivery =
  | Served
  | Blocked of string      (** input filter or VSEF stopped it *)
  | Detected_and_analyzed  (** producer ran the pipeline; antibody published *)
  | Crashed_consumer       (** consumer detected the attack; recovered only *)
  | Infected of string

val deliver : t -> host -> string -> delivery
(** Deliver one message to one host, with the full community behaviour:
    antibody sync, producer-side analysis on detection, consumer-side
    rollback recovery. *)

val run_scheduled :
  ?quantum:int -> t -> traffic:(host -> string list) -> Osim.Sched.t
(** Run traffic through the cooperative scheduler: every uninfected host
    becomes a task, [traffic] fills its inbox, and service, crashes,
    producer analysis, recovery, and antibody propagation interleave in
    simulated time until quiescent. Returns the scheduler for inspection
    (virtual clock, instruction counts). *)

val worm_round : ?quantum:int -> t -> exploit_for:(host -> string list) -> unit
(** The worm attacks every uninfected host once; [exploit_for] builds the
    per-host attack stream (fresh address guess per host). The round's
    deliveries run interleaved on the scheduler. *)

val infected_count : t -> int

val register_metrics : t -> Obs.Metrics.t -> unit
(** Register the community's population-level statistics (attempts,
    infections, detections, blocked attacks, analyses, first-antibody
    latency) as pull-gauges in a metrics registry. *)

val infection_ratio : t -> float

val all_alive : t -> bool
(** Every uninfected host still answers a trivial request. *)

(** The domain-sharded community: hosts partitioned across shards, each
    shard a single-threaded {!Osim.Sched} with its own PRNG stream and
    {!Obs.Metrics} registry, executed in lockstep windows by
    {!Osim.Cluster}. Antibody knowledge crosses shards only as envelope
    values at virtual-clock barriers, so [domains = N] and [domains = 1]
    are bit-identical on everything in {!Sharded.summary} — the
    differential oracle asserted by the scheduler test suite. *)
module Sharded : sig
  (** Cross-shard mail: first local antibody publications and confirmed
      exploit samples. Adoption and refinement never re-broadcast, so the
      protocol is loop-free by construction. *)
  type msg =
    | Antibody_pub of Antibody.t * ab_origin option
        (** broadcast with the provenance of the attack message the
            antibody was minted against *)
    | Sample of string

  type community

  val create :
    ?verify_before_deploy:bool ->
    ?quantum:int ->
    ?domains:int ->
    ?shards:int ->
    ?window_ms:float ->
    ?mailbox_limit:int ->
    ?outbox_limit:int ->
    ?template_pool:int ->
    ?topology:Osim.Cluster.topology ->
    app:string ->
    compile:(unit -> Minic.Codegen.compiled) ->
    n:int ->
    producers:int ->
    seed:int ->
    unit ->
    community
  (** Build [n] hosts on the calling domain (the first [producers] by
      global id run the full stack), place them by [topology], and wire
      per-shard schedulers. [shards] defaults to [domains]; fixing
      [shards] while varying [domains] must not change any result. *)

  val hosts : community -> host list
  (** All hosts, sorted by global id. *)

  val infected_count : community -> int

  val post_traffic : community -> traffic:(host -> string list) -> unit
  (** Queue one round of externally-injected traffic on every uninfected
      host's inbox. Call between rounds, on the calling domain. *)

  val post_traffic_from :
    community -> traffic:(host -> (int * string) list) -> unit
  (** Like {!post_traffic}, but each payload carries its sending host id
      ([-1] for external traffic). Per-source sequence numbers are
      stamped deterministically on the calling domain, so provenance is
      identical across domain counts. *)

  val inject_antibody : ?vtime:float -> community -> Antibody.t -> unit
  (** Offer a bundle to every shard as an externally-sourced broadcast —
      the supply-chain surface a malicious producer would use. Each
      shard runs the full publication validation: fabricated bundles
      are rejected everywhere (a per-shard "antibody-rejected" event
      plus the [sweeper_antibody_rejected_total] counter), legitimate
      ones are adopted. Call between rounds, on the calling domain. *)

  val run_round : community -> Osim.Cluster.stats
  (** Run the cluster barrier loop until every shard is quiescent and no
      mail is in flight. *)

  val merged_metrics : community -> Obs.Metrics.sample list
  (** The community-level metric samples merged from every shard's
      registry at the most recent barrier. *)

  (** Everything the differential oracle compares, plus run statistics.
      All times are virtual (simulated ms); wall-clock never appears. *)
  type summary = {
    sm_hosts : int;
    sm_domains : int;
    sm_shards : int;
    sm_topology : string;
    sm_windows : int;
    sm_exchanged : int;
    sm_deferred : int;
    sm_backpressures : int;
    sm_instructions : int;
    sm_attempts : int;
    sm_infections : int;
    sm_crashes : int;
    sm_blocked : int;
    sm_analyses : int;
    sm_infected_hosts : int;
    sm_first_antibody_vtime_ms : float option;
    sm_events : (float * int * string) list;
        (** (vtime, global host id, kind), sorted *)
    sm_icounts : (int * int) list;  (** (global host id, icount), sorted *)
    sm_outputs : (int * (int * string) list) list;
        (** per-host committed outputs, by global host id *)
    sm_infection_log : infection list;
        (** ground-truth infections, sorted by (arrival, victim) *)
    sm_adoptions : (int * (float * int * int)) list;
        (** shards that adopted a broadcast antibody, with the envelope
            provenance (vtime, src shard, seq) it arrived under; sorted *)
    sm_ab_origin : ab_origin option;
        (** provenance of the community's first antibody *)
  }

  val summary : community -> summary

  val infection_log : community -> infection list
  (** The ground-truth infection log across all shards, sorted by
      (arrival vtime, victim) — what forensic reconstruction from the
      netlogs must reproduce exactly. *)

  val antibody_origin : community -> ab_origin option
  (** Provenance of the community's first antibody: the earliest origin
      any shard recorded (local analysis or adopted broadcast). *)
end
