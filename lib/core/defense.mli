(** The community defense, mechanically: a fleet of real (simulated) hosts
    in the Producer/Consumer arrangement of the paper's Section 6.

    Producers run the complete Sweeper stack; when one is probed it runs
    the full analysis and publishes an antibody. Consumers run lightweight
    monitoring only, deploy published antibodies (optionally verifying them
    first), and recover by rollback when attacked. This is the bridge
    between the per-host machinery of {!Orchestrator} and the
    population-level claims of the epidemic model.

    Community runs execute on the cooperative scheduler ({!Osim.Sched}):
    hosts are tasks, traffic is posted to per-host inboxes, and service,
    analysis, recovery, and antibody propagation interleave in simulated
    time. The direct {!deliver} path shares the same reaction logic, so
    serial and scheduled runs behave identically per host. *)

type role = Producer | Consumer

type host = {
  h_id : int;
  h_role : role;
  h_proc : Osim.Process.t;
  h_server : Osim.Server.t;
  mutable h_infected : bool;
  mutable h_deployed : int;  (** antibody generation installed *)
  mutable h_installed : Vsef.installed list;  (** currently-armed VSEFs *)
}

type stats = {
  mutable s_attempts : int;
  mutable s_infections : int;
  mutable s_crashes : int;   (** detections via lightweight monitoring *)
  mutable s_blocked : int;   (** stopped by antibodies *)
  mutable s_analyses : int;  (** producer pipeline runs *)
  mutable s_first_antibody_ms : float option;
}

type t = {
  app : string;
  compile : unit -> Minic.Codegen.compiled;
  hosts : host list;
  mutable antibody : (int * Antibody.t) option;  (** generation, bundle *)
  mutable generation : int;
  mutable corpus : string list;
      (** confirmed exploit payloads observed community-wide *)
  verify_before_deploy : bool;
  stats : stats;
}

val create :
  ?verify_before_deploy:bool ->
  app:string ->
  compile:(unit -> Minic.Codegen.compiled) ->
  n:int ->
  producers:int ->
  seed:int ->
  unit ->
  t
(** A community of [n] hosts; the first [producers] run the full stack.
    Every host gets an independent randomized layout derived from [seed]. *)

val publish : t -> Antibody.t -> bool
(** Publish an antibody; with [verify_before_deploy] it is sandbox-verified
    first. Returns acceptance. *)

val record_exploit_sample : t -> string -> unit
(** Record a confirmed exploit payload (the original crash input or a
    VSEF-blocked variant). With two or more distinct samples the signature
    is refined from exact-match to a token signature covering the family,
    and the antibody is republished. *)

type delivery =
  | Served
  | Blocked of string      (** input filter or VSEF stopped it *)
  | Detected_and_analyzed  (** producer ran the pipeline; antibody published *)
  | Crashed_consumer       (** consumer detected the attack; recovered only *)
  | Infected of string

val deliver : t -> host -> string -> delivery
(** Deliver one message to one host, with the full community behaviour:
    antibody sync, producer-side analysis on detection, consumer-side
    rollback recovery. *)

val run_scheduled :
  ?quantum:int -> t -> traffic:(host -> string list) -> Osim.Sched.t
(** Run traffic through the cooperative scheduler: every uninfected host
    becomes a task, [traffic] fills its inbox, and service, crashes,
    producer analysis, recovery, and antibody propagation interleave in
    simulated time until quiescent. Returns the scheduler for inspection
    (virtual clock, instruction counts). *)

val worm_round : ?quantum:int -> t -> exploit_for:(host -> string list) -> unit
(** The worm attacks every uninfected host once; [exploit_for] builds the
    per-host attack stream (fresh address guess per host). The round's
    deliveries run interleaved on the scheduler. *)

val infected_count : t -> int

val register_metrics : t -> Obs.Metrics.t -> unit
(** Register the community's population-level statistics (attempts,
    infections, detections, blocked attacks, analyses, first-antibody
    latency) as pull-gauges in a metrics registry. *)

val infection_ratio : t -> float

val all_alive : t -> bool
(** Every uninfected host still answers a trivial request. *)
