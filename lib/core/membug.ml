(** Dynamic memory-bug detection, attached during sandboxed replay.

    Detects the three bug classes of Section 3.2 — stack smashing (writes
    to saved return-address slots, with pre-existing frames inferred from
    the frame pointer), heap overflow (stores outside any live chunk, with
    pre-checkpoint buffers inferred from the heap image), and double frees
    (calls to [free] on an already-freed chunk) — and attributes each to
    the offending instruction, which is what the refined VSEFs are built
    from. *)

type finding =
  | Stack_smash of { store_pc : int; slot_addr : int }
  | Heap_overflow of { store_pc : int; addr : int }
  | Double_free of { call_pc : int; ptr : int }
  | Dangling_write of { store_pc : int; addr : int }

type report = {
  m_findings : finding list;  (** in detection order *)
  m_fault : Vm.Event.fault option;  (** the replayed crash, if it recurred *)
  m_instructions : int;  (** dynamic instructions monitored *)
}

let finding_pc = function
  | Stack_smash { store_pc; _ }
  | Heap_overflow { store_pc; _ }
  | Dangling_write { store_pc; _ } -> store_pc
  | Double_free { call_pc; _ } -> call_pc

let finding_to_string ~describe = function
  | Stack_smash { store_pc; slot_addr } ->
    Printf.sprintf "Stack smashing by %s (return-address slot 0x%x)"
      (describe store_pc) slot_addr
  | Heap_overflow { store_pc; addr } ->
    Printf.sprintf "Heap buffer overflow at %s (store to 0x%x)"
      (describe store_pc) addr
  | Double_free { call_pc; ptr } ->
    Printf.sprintf "Double free by %s (chunk 0x%x)" (describe call_pc) ptr
  | Dangling_write { store_pc; addr } ->
    Printf.sprintf "Write to freed chunk by %s (0x%x)" (describe store_pc) addr

(** Derive the refined VSEF a finding justifies. [proc] supplies the image
    bases for making the check relocatable. *)
let vsef_of_finding ~app ~proc = function
  | Stack_smash { store_pc; _ } ->
    Some
      {
        Vsef.v_name = "store-guard";
        v_app = app;
        v_check = Vsef.Store_guard { store = Vsef.loc_of_pc proc store_pc };
        v_origin = Vsef.From_membug;
      }
  | Heap_overflow { store_pc; _ } | Dangling_write { store_pc; _ } ->
    Some
      {
        Vsef.v_name = "heap-bounds-refined";
        v_app = app;
        v_check =
          Vsef.Heap_bounds
            { store = Vsef.loc_of_pc proc store_pc; caller = None;
              caller_range = None };
        v_origin = Vsef.From_membug;
      }
  | Double_free { call_pc; _ } ->
    Some
      {
        Vsef.v_name = "double-free-site";
        v_app = app;
        v_check = Vsef.Double_free_site { call = Vsef.loc_of_pc proc call_pc };
        v_origin = Vsef.From_membug;
      }

type state = {
  proc : Osim.Process.t;
  mutable findings : finding list;
  reported : (int * int, unit) Hashtbl.t;
      (** (kind tag, pc) pairs already reported — one finding per site *)
  (* Live return-address slots, keyed by address. Address keying (rather
     than a LIFO) self-corrects when the detector attaches mid-execution:
     a returning frame always clears exactly its own slot. *)
  ret_slots : (int, unit) Hashtbl.t;
  (* Live and freed chunks (user ptr -> size / unit). *)
  live : (int, int) Hashtbl.t;
  freed : (int, unit) Hashtbl.t;
  free_entry : int;  (** address of libc [free] *)
  mutable icount : int;
}

(* Does a write of [size] bytes at [addr] overlap any live ret slot? The
   candidate slots are the word-aligned... no — slots are plain addresses;
   a write [addr, addr+size) overlaps slot s iff s-3 <= addr+size-1 and
   s+3 >= addr, so probing the handful of addresses around the write is
   enough and keeps the check O(1) per store. *)
let hit_slot st addr size =
  let rec probe s =
    if s >= addr + size + 3 then None
    else if Hashtbl.mem st.ret_slots s && addr < s + 4 && addr + size > s then
      Some s
    else probe (s + 1)
  in
  probe (addr - 3)

let seed_from_image st =
  (* Pre-existing frames from the frame-pointer chain. *)
  let p = st.proc in
  let layout = p.layout in
  let rec walk fp n =
    if
      n > 64
      || fp < layout.Vm.Layout.stack_limit
      || fp >= layout.Vm.Layout.stack_top
    then ()
    else begin
      Hashtbl.replace st.ret_slots (fp + 4) ();
      walk (Vm.Memory.load_word p.mem fp) (n + 1)
    end
  in
  walk (Vm.Cpu.get_reg p.cpu Vm.Isa.FP) 0;
  (* Pre-existing buffers from the heap image. *)
  List.iter
    (fun (c : Vm.Alloc.chunk) ->
      match c.c_state with
      | Vm.Alloc.Chunk_alloc -> Hashtbl.replace st.live c.c_ptr c.c_size
      | Vm.Alloc.Chunk_freed -> Hashtbl.replace st.freed c.c_ptr ()
      | Vm.Alloc.Chunk_corrupt _ -> ())
    (Vm.Alloc.chunks p.mem p.layout)

let heap_region st addr =
  addr >= st.proc.Osim.Process.layout.Vm.Layout.heap_base
  && addr < st.proc.Osim.Process.layout.Vm.Layout.heap_max

let in_live_chunk st addr =
  Hashtbl.fold
    (fun ptr size acc -> acc || (addr >= ptr && addr < ptr + size))
    st.live false

let in_freed_chunk st addr =
  Hashtbl.fold (fun ptr () acc -> acc || (addr >= ptr - 8 && addr < ptr + 8)) st.freed false

(* Allocator bookkeeping words live at the start of the heap; stores there
   from the libc wrappers are legitimate. *)
let is_alloc_bookkeeping st addr =
  addr < Vm.Alloc.arena_start st.proc.Osim.Process.layout

(* One finding per (bug kind, instruction): the same overflowing store
   fires once, not once per byte. *)
let report st kind_tag pc f =
  if not (Hashtbl.mem st.reported (kind_tag, pc)) then begin
    Hashtbl.replace st.reported (kind_tag, pc) ();
    st.findings <- f :: st.findings
  end

let on_effect st (eff : Vm.Event.effect_) =
  st.icount <- st.icount + 1;
  (* 1. Stack smashing: a store (not the call's own push) into a live
     return-address slot. *)
  (match eff.e_ctrl with
  | Vm.Event.Call_to -> ()
  | _ ->
    List.iter
      (fun (a : Vm.Event.access) ->
        match hit_slot st a.a_addr a.a_size with
        | Some slot ->
          report st 0 eff.e_pc
            (Stack_smash { store_pc = eff.e_pc; slot_addr = slot })
        | None -> ())
      eff.e_mem_writes);
  (* 2. Heap overflow / dangling writes: stores into the heap that land in
     no live chunk. *)
  (match eff.e_instr with
  | Vm.Isa.Store _ | Vm.Isa.Storeb _ ->
    List.iter
      (fun (a : Vm.Event.access) ->
        if heap_region st a.a_addr && not (is_alloc_bookkeeping st a.a_addr)
           && not (in_live_chunk st a.a_addr)
        then
          if in_freed_chunk st a.a_addr then
            report st 1 eff.e_pc
              (Dangling_write { store_pc = eff.e_pc; addr = a.a_addr })
          else
            report st 2 eff.e_pc
              (Heap_overflow { store_pc = eff.e_pc; addr = a.a_addr }))
      eff.e_mem_writes
  | _ -> ());
  (* 3. Shadow ret-slot maintenance + double-free checks at calls. *)
  (match eff.e_ctrl with
  | Vm.Event.Call_to ->
    let target = eff.e_ctrl_a in
    let new_sp =
      match Vm.Event.written_value eff Vm.Isa.SP with
      | Some v -> v
      | None -> Vm.Cpu.get_reg st.proc.Osim.Process.cpu Vm.Isa.SP
    in
    Hashtbl.replace st.ret_slots new_sp ();
    if target = st.free_entry then begin
      (* arg0 sits just above the pushed return address *)
      let ptr = Vm.Memory.load_word st.proc.Osim.Process.mem (new_sp + 4) in
      if ptr <> 0 && Hashtbl.mem st.freed ptr then
        report st 3 eff.e_pc (Double_free { call_pc = eff.e_pc; ptr })
    end
  | Vm.Event.Ret_to ->
    (* The slot being consumed is the address the return popped from. *)
    List.iter
      (fun (a : Vm.Event.access) -> Hashtbl.remove st.ret_slots a.a_addr)
      eff.e_mem_reads
  | _ -> ());
  (* 4. Allocation tracking from syscall effects. *)
  match eff.e_sys with
  | Vm.Event.Io_alloc { ptr; size } ->
    Hashtbl.replace st.live ptr size;
    Hashtbl.remove st.freed ptr
  | Vm.Event.Io_free { ptr; status = `Ok } ->
    Hashtbl.remove st.live ptr;
    Hashtbl.replace st.freed ptr ()
  | _ -> ()

(** Attach the detector to [proc], run until the process faults, blocks or
    halts (or [fuel] runs out), and detach. Call after rolling back to a
    checkpoint with the network log in replay mode. *)
let run ?(fuel = 20_000_000) (proc : Osim.Process.t) : report =
  let st =
    {
      proc;
      findings = [];
      reported = Hashtbl.create 16;
      ret_slots = Hashtbl.create 64;
      live = Hashtbl.create 64;
      freed = Hashtbl.create 64;
      free_entry = Vm.Asm.symbol proc.lib_image "free";
      icount = 0;
    }
  in
  seed_from_image st;
  let hook = Vm.Cpu.add_post_hook proc.cpu (on_effect st) in
  let outcome = Vm.Cpu.run ~fuel proc.cpu in
  Vm.Cpu.remove_hook proc.cpu hook;
  let fault = match outcome with Vm.Cpu.Faulted f -> Some f | _ -> None in
  {
    m_findings = List.rev st.findings;
    m_fault = fault;
    m_instructions = st.icount;
  }
