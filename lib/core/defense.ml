(** The community defense, mechanically: a fleet of real (simulated) hosts
    in the Producer/Consumer arrangement of Section 6.

    Producers run the complete Sweeper stack; when the lightweight monitors
    on one of them trip, it runs the full analysis, produces an antibody,
    and publishes it. Consumers run lightweight monitoring only, deploy
    published antibodies (optionally verifying them first in a sandbox),
    and are otherwise on their own. This module is the bridge between the
    per-host machinery of {!Orchestrator} and the population-level claims
    of {!Epidemic}: the analytic model's parameters (α, ρ, γ) all have a
    concrete mechanical counterpart here.

    Community runs execute on the cooperative scheduler
    ({!Osim.Sched}): every host is a task, traffic is posted to per-host
    inboxes, and attack handling, benign service, analysis, and antibody
    propagation all interleave in simulated time instead of lockstep
    phases. The same reaction logic backs the direct {!deliver} entry
    point, so a scheduled run and a serial one produce the same per-host
    behaviour. *)

type role = Producer | Consumer

type host = {
  h_id : int;
  h_role : role;
  h_proc : Osim.Process.t;
  h_server : Osim.Server.t;
  mutable h_infected : bool;
  mutable h_deployed : int;  (** antibody generation number installed *)
  mutable h_installed : Vsef.installed list;  (** currently-armed VSEFs *)
}

type stats = {
  mutable s_attempts : int;
  mutable s_infections : int;
  mutable s_crashes : int;       (** detections via lightweight monitoring *)
  mutable s_blocked : int;       (** stopped by antibodies *)
  mutable s_analyses : int;      (** producer pipeline runs *)
  mutable s_first_antibody_ms : float option;
}

(** One confirmed infection — the simulator's ground truth that forensic
    trace-back ({!Forensics}) is validated against. Everything here is
    read off the victim's state at the moment the compromise surfaced;
    the reconstruction must recover the same tuple from netlogs alone. *)
type infection = {
  inf_victim : int;    (** infected host (global id) *)
  inf_src : int;       (** sending host, from the message's provenance *)
  inf_seq : int;       (** sender-side sequence number *)
  inf_msg : int;       (** netlog message id on the victim *)
  inf_arrival : float; (** victim-side arrival vtime of the message *)
  inf_vtime : float;   (** vtime the compromise surfaced *)
}

(** Where the community's antibody came from: the producer whose crash
    triggered the analysis, and the provenance of the attack message it
    analyzed — the forensic anchor "this antibody was minted against the
    message [ao_src] sent". *)
type ab_origin = {
  ao_host : int;    (** the producer that ran the analysis *)
  ao_vtime : float; (** vtime of the detection *)
  ao_msg : int;     (** netlog id of the attack message on that host *)
  ao_src : int;     (** provenance source of that message *)
  ao_seq : int;     (** its sender-side sequence number *)
}

type t = {
  app : string;
  compile : unit -> Minic.Codegen.compiled;
      (** the application build, for consumer-side antibody verification *)
  hosts : host list;
  mutable antibody : (int * Antibody.t) option;  (** generation, bundle *)
  mutable generation : int;
  mutable corpus : string list;
      (** every confirmed exploit payload observed community-wide; two or
          more distinct samples upgrade the exact-match signature to a
          Polygraph-style token signature *)
  verify_before_deploy : bool;
  stats : stats;
  metrics : Obs.Metrics.t;
      (** where community counters register; the sharded community gives
          every shard its own registry so no instrument crosses domains *)
  mutable infections : infection list;
      (** ground-truth infection log, newest first *)
  mutable ab_origin : ab_origin option;
      (** provenance of the first antibody (local analysis or adopted) *)
  mutable statics : (Osim.Process.t * Static_an.Staint.t) option;
      (** lazily-built reference copy of the application plus its static
          taint analysis, for validating published antibodies (the
          process carries its interval analysis in
          [Osim.Process.absint]). Loaded with a fixed seed so every
          shard reaches identical verdicts. *)
}

(* Stamp out the community's hosts from a pool of templates: the full
   MiniC load pipeline runs once per distinct layout seed, every other
   host is a copy-on-write instantiation. A pool of [template_pool]
   distinct ASLR draws preserves the population diversity that the
   paper's ρ analysis needs; for n <= pool the per-host layouts are
   exactly the legacy per-host loads (template k carries seed + k). *)
let make_hosts ~template_pool ~n ~producers ~seed compiled =
  let pool = max 1 (min n template_pool) in
  let templates =
    Array.init pool (fun k ->
        Osim.Process.template ~aslr:true ~seed:(seed + k) compiled)
  in
  List.init n (fun id ->
      let proc = Osim.Process.instantiate templates.(id mod pool) in
      let server = Osim.Server.create proc in
      ignore (Osim.Server.run server);
      {
        h_id = id;
        h_role = (if id < producers then Producer else Consumer);
        h_proc = proc;
        h_server = server;
        h_infected = false;
        h_deployed = 0;
        h_installed = [];
      })

let fresh_stats () =
  { s_attempts = 0; s_infections = 0; s_crashes = 0; s_blocked = 0;
    s_analyses = 0; s_first_antibody_ms = None }

(** Build a community of [n] hosts running the application compiled by
    [compile]; the first [producers] of them run the full Sweeper stack.
    Hosts share [template_pool] (default 64) randomized layouts derived
    from [seed] — one template per distinct seed, instantiated by COW
    copy, which is what keeps community creation O(n) page-table copies
    instead of O(n) compiler runs. *)
(* The rejection-reason label values of [sweeper_antibody_rejected_total],
   pre-registered at community creation so merged samples expose explicit
   zeros. Ordered by when the bar applies: static checks first, the
   (optional) replay last. *)
let reject_reasons = [ "static-infeasible"; "pcs-outside-S"; "replay-failed" ]

let rejected_counter t reason =
  Obs.Metrics.counter ~registry:t.metrics
    ~help:"antibody bundles rejected at publication, by reason"
    ~labels:[ ("reason", reason) ]
    "sweeper_antibody_rejected_total"

let preregister_rejections t =
  List.iter (fun r -> ignore (rejected_counter t r)) reject_reasons

let create ?(verify_before_deploy = false) ?(metrics = Obs.Metrics.default)
    ?(template_pool = 64) ~app ~(compile : unit -> Minic.Codegen.compiled)
    ~n ~producers ~seed () =
  let compiled = compile () in
  let t =
    {
      app;
      compile;
      hosts = make_hosts ~template_pool ~n ~producers ~seed compiled;
      antibody = None;
      generation = 0;
      corpus = [];
      verify_before_deploy;
      stats = fresh_stats ();
      metrics;
      infections = [];
      ab_origin = None;
      statics = None;
    }
  in
  preregister_rejections t;
  t

(* The reference statics every published bundle is validated against:
   one fixed-seed copy of the application (its loader already ran the
   interval analysis) plus the static taint analysis of its code. Built
   on first publication, cached for the community's lifetime. *)
let statics_of t =
  match t.statics with
  | Some s -> s
  | None ->
    let proc = Osim.Process.load ~aslr:true ~seed:97 (t.compile ()) in
    let s = (proc, Static_an.Staint.analyze proc.Osim.Process.cpu.Vm.Cpu.code) in
    t.statics <- Some s;
    s

(* Why a bundle must not be adopted, or [None] when it passes: the
   always-on static bars (every guarded overflow pc must be a statically
   feasible unsafe write; every taint-filter pc must lie in S), then the
   opt-in exploit replay. *)
let rejection t antibody =
  let proc, staint = statics_of t in
  let absint = proc.Osim.Process.absint in
  if Antibody.validate_feasible proc absint antibody <> [] then
    Some "static-infeasible"
  else if Antibody.validate_static proc staint antibody <> [] then
    Some "pcs-outside-S"
  else if
    t.verify_before_deploy
    && not (Antibody.verify antibody ~compile:t.compile)
  then Some "replay-failed"
  else None

(** Publish an antibody to the community — after validation: the static
    feasibility and taint bars always apply, and consumers that distrust
    the producer additionally verify the bundle against their own copy of
    the application (the deferred-verification option of Section 3.3).
    Returns whether the bundle was accepted; rejections count in
    [sweeper_antibody_rejected_total] by reason. *)
let publish t antibody =
  match rejection t antibody with
  | Some reason ->
    Obs.Metrics.inc (rejected_counter t reason);
    Obs.Trace.instant ~cat:"community"
      ~args:[ ("reason", reason) ]
      "antibody-rejected";
    false
  | None ->
    t.generation <- t.generation + 1;
    t.antibody <- Some (t.generation, antibody);
    Obs.Metrics.inc
      (Obs.Metrics.counter ~registry:t.metrics
         ~help:"antibody generations published"
         "sweeper_antibodies_published_total");
    Obs.Trace.instant ~cat:"community"
      ~args:[ ("generation", string_of_int t.generation) ]
      "antibody-published";
    true

(* Make sure [host] runs the latest antibody generation, replacing any
   previously installed one. *)
let sync_antibody t host =
  match t.antibody with
  | Some (gen, ab) when host.h_deployed < gen ->
    List.iter Vsef.uninstall host.h_installed;
    Osim.Netlog.remove_filter host.h_proc.Osim.Process.net
      ~name:("antibody-" ^ t.app);
    host.h_installed <- Antibody.deploy host.h_proc ab;
    host.h_deployed <- gen
  | _ -> ()

(** Record a confirmed exploit payload (the original crash input or a
    VSEF-blocked variant). With two or more distinct samples the signature
    is refined from exact-match to a token signature that covers the whole
    family, and the antibody is republished. *)
(* Token refinement converges after a handful of diverse variants: only
   bytes invariant across ALL samples survive, and each extra sample can
   only shrink the token set it has already stabilized. Refining (and
   republishing, which redeploys VSEFs community-wide) on every one of
   thousands of distinct worm variants would be O(n^2); saturate instead. *)
let refine_corpus_cap = 8

let record_exploit_sample t payload =
  if
    List.compare_length_with t.corpus refine_corpus_cap < 0
    && not (List.mem payload t.corpus)
  then begin
    t.corpus <- payload :: t.corpus;
    match (t.antibody, t.corpus) with
    | Some (_, ab), (_ :: _ :: _ as corpus) ->
      let refined = Signature.tokens_of_variants (List.rev corpus) in
      ignore (publish t { ab with Antibody.ab_signature = Some refined })
    | _ -> ()
  end

(* The rollback point for dropping message [cur]: a checkpoint predating
   its consumption (the latest one may have been taken mid-message). *)
let safe_ck host cur =
  fst (Stage.Replay.rollback_point host.h_server ~msg_index:cur)

type delivery =
  | Served
  | Blocked of string       (** input filter or VSEF stopped it *)
  | Detected_and_analyzed   (** producer ran the pipeline; antibody published *)
  | Crashed_consumer        (** consumer detected the attack but can only recover *)
  | Infected of string

(* The provenance of the message a host is currently servicing. *)
let cur_prov host =
  let cur = host.h_proc.Osim.Process.cur_msg in
  if cur < 0 then None
  else
    Some
      (cur, (Osim.Netlog.message host.h_proc.Osim.Process.net cur).Osim.Netlog.m_prov)

(* The community's reaction to one delivery outcome — shared between the
   direct [deliver] path and the scheduler's event handler, so serial and
   interleaved runs behave identically per host. [vtime] is the event's
   virtual timestamp for the ground-truth logs (defaults to the host's
   own clock; the sharded driver passes its oracle timeline instead). *)
let react ?vtime t host outcome : delivery =
  let vtime =
    match vtime with
    | Some v -> v
    | None -> Osim.Server.vtime_ms host.h_server
  in
  match outcome with
  | `Served -> Served
  | `Filtered name ->
    t.stats.s_blocked <- t.stats.s_blocked + 1;
    Blocked name
  | `Infected cmd ->
    host.h_infected <- true;
    t.stats.s_infections <- t.stats.s_infections + 1;
    (match cur_prov host with
    | Some (cur, p) ->
      t.infections <-
        { inf_victim = host.h_id; inf_src = p.Osim.Netlog.p_src;
          inf_seq = p.Osim.Netlog.p_seq; inf_msg = cur;
          inf_arrival = p.Osim.Netlog.p_vtime; inf_vtime = vtime }
        :: t.infections
    | None -> ());
    Infected cmd
  | `Crashed fault ->
    t.stats.s_crashes <- t.stats.s_crashes + 1;
    (match host.h_role with
    | Producer ->
      t.stats.s_analyses <- t.stats.s_analyses + 1;
      (* Capture the attack message's provenance before analysis: the
         recovery inside [handle_attack] rolls [cur_msg] back. *)
      let origin =
        match cur_prov host with
        | Some (cur, p) ->
          Some
            { ao_host = host.h_id; ao_vtime = vtime; ao_msg = cur;
              ao_src = p.Osim.Netlog.p_src; ao_seq = p.Osim.Netlog.p_seq }
        | None -> None
      in
      let report = Orchestrator.handle_attack ~app:t.app host.h_server fault in
      if t.stats.s_first_antibody_ms = None then
        t.stats.s_first_antibody_ms <-
          Some report.Orchestrator.a_total_ms;
      let accepted = publish t report.Orchestrator.a_antibody in
      if accepted && t.ab_origin = None then t.ab_origin <- origin;
      host.h_deployed <- t.generation;
      (match report.Orchestrator.a_antibody.Antibody.ab_exploit_input with
      | Some inputs -> List.iter (record_exploit_sample t) inputs
      | None -> ());
      Detected_and_analyzed
    | Consumer ->
      (* A consumer has checkpoints but no analysis stack: roll back to
         a checkpoint predating the in-flight message and drop it. *)
      let cur = host.h_proc.Osim.Process.cur_msg in
      ignore (Recovery.recover host.h_server (safe_ck host cur) ~skip:[ cur ]);
      Crashed_consumer)
  | `Vetoed ->
    (* A VSEF vetoed the attack: drop the message, resume — and feed the
       confirmed exploit variant back into signature refinement, so the
       proxy filter learns what the VSEF had to catch. *)
    t.stats.s_blocked <- t.stats.s_blocked + 1;
    let cur = host.h_proc.Osim.Process.cur_msg in
    let payload = (Osim.Netlog.message host.h_proc.Osim.Process.net cur).Osim.Netlog.m_payload in
    ignore (Recovery.recover host.h_server (safe_ck host cur) ~skip:[ cur ]);
    record_exploit_sample t payload;
    Blocked "vsef"

(** Deliver one message to one host, with the full community behaviour:
    antibody sync, producer-side analysis on detection, consumer-side
    recovery. *)
let deliver t host payload : delivery =
  if host.h_infected then Infected "already infected"
  else begin
    t.stats.s_attempts <- t.stats.s_attempts + 1;
    sync_antibody t host;
    match Osim.Server.handle host.h_server payload with
    | `Served _ -> react t host `Served
    | `Filtered name -> react t host (`Filtered name)
    | `Stopped -> react t host `Served
    | `Infected (_, cmd) -> react t host (`Infected cmd)
    | `Crashed (_, fault) -> react t host (`Crashed fault)
    | exception Detection.Detected _ -> react t host `Vetoed
  end

(** Run traffic through the cooperative scheduler: every uninfected host
    becomes a task, [traffic] fills its inbox, and service, crashes,
    producer analysis, recovery, and antibody propagation interleave in
    simulated time until the community is quiescent. Returns the
    scheduler for inspection (virtual clock, instruction counts). *)
let run_scheduled ?quantum t ~(traffic : host -> string list) =
  let sched = Osim.Sched.create ?quantum () in
  let assoc = Hashtbl.create (List.length t.hosts) in
  List.iter
    (fun host ->
      if not host.h_infected then begin
        let task =
          Osim.Sched.add sched host.h_server
            ~on_deliver:(fun _payload ->
              (* The moment a message reaches the host: the proxy syncs
                 the newest antibody generation, the attempt counts. *)
              t.stats.s_attempts <- t.stats.s_attempts + 1;
              sync_antibody t host)
        in
        Hashtbl.replace assoc task.Osim.Sched.sk_id host;
        List.iter (Osim.Sched.post sched task) (traffic host)
      end)
    t.hosts;
  let handler task event =
    let host = Hashtbl.find assoc task.Osim.Sched.sk_id in
    match event with
    | Osim.Sched.Served _ -> ()
    | Osim.Sched.Stopped -> ()
    | Osim.Sched.Filtered (name, _) -> ignore (react t host (`Filtered name))
    | Osim.Sched.Infected cmd -> ignore (react t host (`Infected cmd))
    | Osim.Sched.Crashed fault ->
      ignore (react t host (`Crashed fault));
      (* The host is live again (analysis recovered it, or the consumer
         rolled back): return it to service for its remaining inbox. *)
      Osim.Sched.unpark sched task
    | Osim.Sched.Raised (Detection.Detected _) ->
      ignore (react t host `Vetoed);
      Osim.Sched.unpark sched task
    | Osim.Sched.Raised e -> raise e
  in
  let sp =
    Obs.Trace.begin_span ~cat:"community"
      ~args:[ ("hosts", string_of_int (List.length t.hosts)) ]
      ~vts_ms:(Osim.Sched.vclock_ms sched) "community-round"
  in
  Osim.Sched.run ~handler sched;
  Obs.Trace.end_span ~vts_ms:(Osim.Sched.vclock_ms sched) sp;
  sched

(** One worm round: the worm attacks every uninfected host once, with a
    fresh address guess per host ([exploit_for] builds the per-host attack
    stream). The deliveries of a round run interleaved on the scheduler. *)
let worm_round ?quantum t ~(exploit_for : host -> string list) =
  ignore (run_scheduled ?quantum t ~traffic:exploit_for)

let infected_count t = List.length (List.filter (fun h -> h.h_infected) t.hosts)

(** Register the community's population-level statistics as pull-gauges. *)
let register_metrics t registry =
  let g name help f =
    Obs.Metrics.gauge_fn ~registry ~help name (fun () -> float_of_int (f ()))
  in
  g "sweeper_community_attempts" "deliveries attempted" (fun () ->
      t.stats.s_attempts);
  g "sweeper_community_infections" "successful infections" (fun () ->
      t.stats.s_infections);
  g "sweeper_community_crashes" "detections via lightweight monitoring"
    (fun () -> t.stats.s_crashes);
  g "sweeper_community_blocked" "attacks stopped by antibodies" (fun () ->
      t.stats.s_blocked);
  g "sweeper_community_analyses" "producer pipeline runs" (fun () ->
      t.stats.s_analyses);
  g "sweeper_community_infected_hosts" "hosts currently infected" (fun () ->
      infected_count t);
  Obs.Metrics.gauge_fn ~registry
    ~help:"analysis latency of the first antibody (ms; -1 before one exists)"
    "sweeper_community_first_antibody_ms" (fun () ->
      Option.value ~default:(-1.) t.stats.s_first_antibody_ms)

let infection_ratio t =
  float_of_int (infected_count t) /. float_of_int (List.length t.hosts)

(** Every uninfected host still answers a trivial request. *)
let all_alive t =
  List.for_all
    (fun h ->
      h.h_infected
      ||
      match Osim.Server.handle h.h_server "noop" with
      | `Served _ | `Stopped -> true
      | `Filtered _ | `Crashed _ | `Infected _ -> false)
    t.hosts

(** The domain-sharded community: hosts partitioned across shards, each
    shard running its own single-threaded scheduler, PRNG stream, and
    metrics registry on its own OCaml domain ({!Osim.Cluster}), with
    antibody knowledge crossing shards only as envelope values at
    virtual-clock barriers.

    The broadcast protocol avoids rebroadcast loops by construction:
    a shard broadcasts (a) the first antibody it {e produces} by local
    analysis and (b) every exploit sample it confirms locally. A shard
    {e adopting} a broadcast antibody, or refining its signature from
    received samples, never re-emits — refinement is a pure function of
    the shard's own deterministic corpus order, so every shard converges
    to an equivalent token signature on its own.

    Determinism: within a window shards share no mutable state; the
    barrier merge key (vtime, source shard, sequence) is a pure function
    of shard-local computation; so `domains = N` and `domains = 1` run
    the identical barrier schedule — the differential oracle enforced by
    test_sched. All oracle-visible times are virtual; wall-clock only
    appears in diagnostic fields. {!Obs.Trace} is mutex-guarded, so
    tracing may stay enabled during multi-domain runs; wall-clock
    timestamps in the trace are diagnostic only. *)
module Sharded = struct
  (** Cross-shard mail. *)
  type msg =
    | Antibody_pub of Antibody.t * ab_origin option
        (** a producer's locally-analyzed antibody, broadcast once, with
            the provenance of the attack message it was minted against *)
    | Sample of string  (** a locally-confirmed exploit payload *)

  type shard = {
    sh_id : int;
    sh_dfn : t;  (** per-shard defense state over this shard's hosts *)
    sh_sched : Osim.Sched.t;
    sh_outbox : Osim.Sched.outbox;
    sh_task_host : (int, host) Hashtbl.t;  (** task id -> host *)
    sh_task_of : (int, Osim.Sched.task) Hashtbl.t;  (** global host id -> task *)
    sh_metrics : Obs.Metrics.t;
    sh_rng : Random.State.t;
        (** the shard's private stream, seeded from (seed, shard id) *)
    sh_shards : int;
    mutable sh_out_rev : msg Osim.Cluster.envelope list;
    mutable sh_events_rev : (float * int * string) list;
        (** (vtime, global host id, kind) — the oracle's event log *)
    mutable sh_first_pub : float option;
        (** vtime of this shard's first locally-analyzed publication *)
    mutable sh_ab_prov : (float * int * int) option;
        (** envelope provenance (vtime, src shard, seq) of the antibody
            this shard adopted at a barrier — surfaced, not dropped *)
  }

  type community = {
    c_shards : shard array;
    c_config : Osim.Cluster.config;
    c_topology : Osim.Cluster.topology;
    c_n : int;
    c_seed : int;
    mutable c_windows : int;
    mutable c_exchanged : int;
    mutable c_deferred : int;
    mutable c_rounds : int;
    mutable c_merged : Obs.Metrics.sample list;
        (** community-level metrics, merged at the last barrier *)
    c_seqs : (int, int ref) Hashtbl.t;
        (** per-source sequence counters for provenance stamping;
            advanced on the calling domain in deterministic host order *)
  }

  (** Everything the differential oracle compares, plus run statistics.
      All times are virtual (simulated ms). *)
  type summary = {
    sm_hosts : int;
    sm_domains : int;
    sm_shards : int;
    sm_topology : string;
    sm_windows : int;
    sm_exchanged : int;
    sm_deferred : int;
    sm_backpressures : int;
    sm_instructions : int;
    sm_attempts : int;
    sm_infections : int;
    sm_crashes : int;
    sm_blocked : int;
    sm_analyses : int;
    sm_infected_hosts : int;
    sm_first_antibody_vtime_ms : float option;
    sm_events : (float * int * string) list;
        (** (vtime, global host id, kind), sorted *)
    sm_icounts : (int * int) list;  (** (global host id, icount), sorted *)
    sm_outputs : (int * (int * string) list) list;
        (** per-host committed outputs, by global host id *)
    sm_infection_log : infection list;
        (** ground-truth infections, sorted by (arrival, victim) *)
    sm_adoptions : (int * (float * int * int)) list;
        (** shards that adopted a broadcast antibody, with the envelope
            provenance (vtime, src shard, seq) it arrived under; sorted *)
    sm_ab_origin : ab_origin option;
        (** provenance of the community's first antibody *)
  }

  let record_event sh vt host_id kind =
    sh.sh_events_rev <- (vt, host_id, kind) :: sh.sh_events_rev

  let broadcast sh vt m =
    for dst = 0 to sh.sh_shards - 1 do
      if dst <> sh.sh_id then
        sh.sh_out_rev <-
          { Osim.Cluster.env_vtime = vt; env_src = sh.sh_id; env_seq = 0;
            env_dst = dst; env_msg = m }
          :: sh.sh_out_rev
    done

  (* Apply one inbound envelope at window start. Neither branch ever
     re-emits — see the module doc's loop-freedom argument. Adoption
     bookkeeping happens only when [publish] accepts the bundle: a
     statically infeasible (fabricated) antibody is rejected — counted
     and recorded — and leaves the shard open to a later legitimate
     publication. *)
  let apply_envelope sh (e : msg Osim.Cluster.envelope) =
    match e.Osim.Cluster.env_msg with
    | Antibody_pub (ab, origin) ->
      if sh.sh_dfn.antibody = None then
        if publish sh.sh_dfn ab then begin
          if sh.sh_dfn.ab_origin = None then sh.sh_dfn.ab_origin <- origin;
          sh.sh_ab_prov <-
            Some
              ( e.Osim.Cluster.env_vtime, e.Osim.Cluster.env_src,
                e.Osim.Cluster.env_seq );
          record_event sh e.Osim.Cluster.env_vtime (-1) "antibody-adopted"
        end
        else record_event sh e.Osim.Cluster.env_vtime (-1) "antibody-rejected"
    | Sample s -> record_exploit_sample sh.sh_dfn s

  (* The shard-local reaction to one reified scheduler effect: the same
     [react] logic as the single-scheduler driver, plus delta detection
     for what must cross the barrier. *)
  let react_effect sh (fx : Osim.Sched.effect_) =
    let d = sh.sh_dfn in
    let host = Hashtbl.find sh.sh_task_host fx.Osim.Sched.fx_task.Osim.Sched.sk_id in
    let vt = fx.Osim.Sched.fx_vtime in
    let had_ab = d.antibody <> None in
    let corpus0 = List.length d.corpus in
    (match fx.Osim.Sched.fx_event with
    | Osim.Sched.Served _ | Osim.Sched.Stopped -> ()
    | Osim.Sched.Filtered (name, _) ->
      record_event sh vt host.h_id ("filtered:" ^ name);
      ignore (react ~vtime:vt d host (`Filtered name))
    | Osim.Sched.Infected cmd ->
      record_event sh vt host.h_id "infected";
      ignore (react ~vtime:vt d host (`Infected cmd))
    | Osim.Sched.Crashed fault ->
      record_event sh vt host.h_id "crashed";
      ignore (react ~vtime:vt d host (`Crashed fault));
      Osim.Sched.unpark sh.sh_sched fx.Osim.Sched.fx_task
    | Osim.Sched.Raised (Detection.Detected _) ->
      record_event sh vt host.h_id "vetoed";
      ignore (react ~vtime:vt d host `Vetoed);
      Osim.Sched.unpark sh.sh_sched fx.Osim.Sched.fx_task
    | Osim.Sched.Raised e -> raise e);
    if (not had_ab) && d.antibody <> None then begin
      if sh.sh_first_pub = None then sh.sh_first_pub <- Some vt;
      record_event sh vt host.h_id "antibody-published";
      broadcast sh vt (Antibody_pub (snd (Option.get d.antibody), d.ab_origin))
    end;
    let corpus1 = List.length d.corpus in
    (* Broadcast only samples that can still refine a signature somewhere:
       past the saturation cap they are dead weight on every shard. *)
    if corpus1 > corpus0 && corpus0 < refine_corpus_cap then begin
      (* The corpus grows by prepending; the delta is its prefix. *)
      let fresh = List.filteri (fun i _ -> i < corpus1 - corpus0) d.corpus in
      List.iter (fun s -> broadcast sh vt (Sample s)) (List.rev fresh)
    end

  (* One shard's window: apply inbound mail, then alternate the pure
     scheduler core with effect processing until the barrier holds. *)
  let window_fn sh ~inbox ~until =
    List.iter (apply_envelope sh) inbox;
    let rec drive () =
      let stop = Osim.Sched.step_until ~outbox:sh.sh_outbox sh.sh_sched ~until in
      List.iter (react_effect sh) (Osim.Sched.outbox_drain sh.sh_outbox);
      match stop with
      | Osim.Sched.Backpressure -> drive ()
      | Osim.Sched.Barrier | Osim.Sched.Quiescent ->
        (* Reactions may have unparked tasks still behind the barrier. *)
        if Osim.Sched.has_runnable_before sh.sh_sched ~until then drive ()
    in
    drive ();
    let out = List.rev sh.sh_out_rev in
    sh.sh_out_rev <- [];
    { Osim.Cluster.wr_out = out;
      wr_done = Osim.Sched.quiescent sh.sh_sched }

  (** Build a sharded community: hosts are created on the calling domain
      (template-pool instantiation), placed by [topology], and handed to
      per-shard defense states. [domains] only selects how many OCaml
      domains execute the fixed [shards] partition — it must never change
      results, which is exactly what the differential oracle checks. *)
  let create ?(verify_before_deploy = false) ?quantum ?(domains = 1)
      ?shards ?(window_ms = 0.5) ?(mailbox_limit = 4096)
      ?(outbox_limit = 256) ?(template_pool = 64)
      ?(topology = Osim.Cluster.Uniform) ~app
      ~(compile : unit -> Minic.Codegen.compiled) ~n ~producers ~seed () =
    let shards = match shards with Some s -> max 1 s | None -> max 1 domains in
    let compiled = compile () in
    let all_hosts = make_hosts ~template_pool ~n ~producers ~seed compiled in
    let shard_hosts = Array.make shards [] in
    List.iter
      (fun h ->
        let s = Osim.Cluster.place topology ~shards ~host:h.h_id in
        shard_hosts.(s) <- h :: shard_hosts.(s))
      all_hosts;
    let mk_shard sh_id =
      let hosts = List.rev shard_hosts.(sh_id) in
      let metrics = Obs.Metrics.create () in
      let dfn =
        {
          app;
          compile;
          hosts;
          antibody = None;
          generation = 0;
          corpus = [];
          verify_before_deploy;
          stats = fresh_stats ();
          metrics;
          infections = [];
          ab_origin = None;
          statics = None;
        }
      in
      preregister_rejections dfn;
      let sched = Osim.Sched.create ?quantum () in
      Osim.Sched.register_metrics sched metrics;
      register_metrics dfn metrics;
      let sh =
        {
          sh_id;
          sh_dfn = dfn;
          sh_sched = sched;
          sh_outbox = Osim.Sched.make_outbox ~limit:outbox_limit ();
          sh_task_host = Hashtbl.create 64;
          sh_task_of = Hashtbl.create 64;
          sh_metrics = metrics;
          sh_rng = Random.State.make [| seed; 0x5A4D; sh_id |];
          sh_shards = shards;
          sh_out_rev = [];
          sh_events_rev = [];
          sh_first_pub = None;
          sh_ab_prov = None;
        }
      in
      List.iter
        (fun host ->
          let task =
            Osim.Sched.add sched host.h_server
              ~on_deliver:(fun _payload ->
                dfn.stats.s_attempts <- dfn.stats.s_attempts + 1;
                sync_antibody dfn host)
          in
          Hashtbl.replace sh.sh_task_host task.Osim.Sched.sk_id host;
          Hashtbl.replace sh.sh_task_of host.h_id task)
        hosts;
      sh
    in
    {
      c_shards = Array.init shards mk_shard;
      c_config =
        { Osim.Cluster.domains = max 1 domains; shards;
          window_ms = (if window_ms <= 0. then 0.5 else window_ms);
          mailbox_limit = max 1 mailbox_limit;
          max_windows = Osim.Cluster.default_config.Osim.Cluster.max_windows };
      c_topology = topology;
      c_n = n;
      c_seed = seed;
      c_windows = 0;
      c_exchanged = 0;
      c_deferred = 0;
      c_rounds = 0;
      c_merged = [];
      c_seqs = Hashtbl.create 64;
    }

  let hosts c =
    Array.to_list c.c_shards
    |> List.concat_map (fun sh -> sh.sh_dfn.hosts)
    |> List.sort (fun a b -> compare a.h_id b.h_id)

  let infected_count c =
    Array.fold_left
      (fun acc sh -> acc + infected_count sh.sh_dfn)
      0 c.c_shards

  (* The next per-source sequence number. Counters advance on the
     calling domain in deterministic host order, so stamps are identical
     across domain counts — and across rounds, monotone per source. *)
  let next_seq c src =
    match Hashtbl.find_opt c.c_seqs src with
    | Some r ->
      let v = !r in
      incr r;
      v
    | None ->
      Hashtbl.add c.c_seqs src (ref 1);
      0

  (** Queue one round of traffic on every uninfected host's inbox, with
      sender provenance: [traffic host] lists [(src, payload)] pairs
      ([src = -1] for external traffic). Per-source sequence numbers are
      stamped here. Runs on the calling domain, between cluster rounds. *)
  let post_traffic_from c ~(traffic : host -> (int * string) list) =
    Array.iter
      (fun sh ->
        List.iter
          (fun host ->
            if not host.h_infected then
              let task = Hashtbl.find sh.sh_task_of host.h_id in
              List.iter
                (fun (src, payload) ->
                  let seq = if src < 0 then 0 else next_seq c src in
                  Osim.Sched.post ~src ~seq sh.sh_sched task payload)
                (traffic host))
          sh.sh_dfn.hosts)
      c.c_shards

  (** Queue one round of externally-injected traffic ([traffic host],
      oldest first) on every uninfected host's inbox. Runs on the
      calling domain, between cluster rounds. *)
  let post_traffic c ~(traffic : host -> string list) =
    post_traffic_from c ~traffic:(fun host ->
        List.map (fun payload -> (-1, payload)) (traffic host))

  (** Offer an antibody bundle to every shard, as if a broadcast arrived
      from outside the community ([src = -1]) — the supply-chain surface
      a malicious producer would use. Each shard runs the full
      publication validation: a fabricated bundle is rejected on every
      shard (counted in [sweeper_antibody_rejected_total]) while a
      legitimate one is adopted. Runs on the calling domain, between
      cluster rounds. *)
  let inject_antibody ?(vtime = 0.) c ab =
    Array.iter
      (fun sh ->
        apply_envelope sh
          { Osim.Cluster.env_vtime = vtime; env_src = -1; env_seq = 0;
            env_dst = sh.sh_id; env_msg = Antibody_pub (ab, None) })
      c.c_shards

  (* Merge every shard's registry into the community-level sample list —
     runs on the calling domain while the workers are parked at the
     barrier, so reading gauge closures is race-free. *)
  let merge_metrics c =
    c.c_merged <-
      Obs.Metrics.merge_samples
        (Array.to_list
           (Array.map (fun sh -> Obs.Metrics.snapshot sh.sh_metrics) c.c_shards))

  (** Run the cluster until every shard is quiescent and no mail is in
      flight: one worm round, typically preceded by {!post_traffic}. *)
  let run_round c =
    let stats =
      Osim.Cluster.run c.c_config c.c_shards
        ~window:(fun _i sh ~inbox ~until -> window_fn sh ~inbox ~until)
        ~at_barrier:(fun ~window:_ -> merge_metrics c)
    in
    c.c_windows <- c.c_windows + stats.Osim.Cluster.st_windows;
    c.c_exchanged <- c.c_exchanged + stats.Osim.Cluster.st_exchanged;
    c.c_deferred <- c.c_deferred + stats.Osim.Cluster.st_deferred;
    c.c_rounds <- c.c_rounds + 1;
    stats

  let merged_metrics c = c.c_merged

  (** The ground-truth infection log across all shards, sorted by
      (arrival vtime, victim) — what forensic reconstruction from the
      netlogs must reproduce exactly. *)
  let infection_log c =
    Array.to_list c.c_shards
    |> List.concat_map (fun sh -> List.rev sh.sh_dfn.infections)
    |> List.sort (fun a b ->
           match compare a.inf_arrival b.inf_arrival with
           | 0 -> compare a.inf_victim b.inf_victim
           | n -> n)

  (** Provenance of the community's first antibody: the earliest origin
      any shard recorded (local analysis or adopted broadcast). *)
  let antibody_origin c =
    Array.to_list c.c_shards
    |> List.filter_map (fun sh -> sh.sh_dfn.ab_origin)
    |> List.fold_left
         (fun acc o ->
           match acc with
           | None -> Some o
           | Some best ->
             if (o.ao_vtime, o.ao_host) < (best.ao_vtime, best.ao_host) then
               Some o
             else acc)
         None

  let summary c =
    let shs = Array.to_list c.c_shards in
    let sum f = List.fold_left (fun acc sh -> acc + f sh) 0 shs in
    let events =
      List.concat_map (fun sh -> List.rev sh.sh_events_rev) shs
      |> List.sort compare
    in
    let per_host f =
      hosts c |> List.map (fun h -> (h.h_id, f h))
    in
    {
      sm_hosts = c.c_n;
      sm_domains = c.c_config.Osim.Cluster.domains;
      sm_shards = c.c_config.Osim.Cluster.shards;
      sm_topology = Osim.Cluster.topology_name c.c_topology;
      sm_windows = c.c_windows;
      sm_exchanged = c.c_exchanged;
      sm_deferred = c.c_deferred;
      sm_backpressures = sum (fun sh -> Osim.Sched.backpressures sh.sh_sched);
      sm_instructions = sum (fun sh -> Osim.Sched.instructions sh.sh_sched);
      sm_attempts = sum (fun sh -> sh.sh_dfn.stats.s_attempts);
      sm_infections = sum (fun sh -> sh.sh_dfn.stats.s_infections);
      sm_crashes = sum (fun sh -> sh.sh_dfn.stats.s_crashes);
      sm_blocked = sum (fun sh -> sh.sh_dfn.stats.s_blocked);
      sm_analyses = sum (fun sh -> sh.sh_dfn.stats.s_analyses);
      sm_infected_hosts = infected_count c;
      sm_first_antibody_vtime_ms =
        List.filter_map (fun sh -> sh.sh_first_pub) shs
        |> List.fold_left
             (fun acc vt ->
               match acc with
               | None -> Some vt
               | Some best -> Some (min best vt))
             None;
      sm_events = events;
      sm_icounts =
        per_host (fun h -> h.h_proc.Osim.Process.cpu.Vm.Cpu.icount);
      sm_outputs = per_host (fun h -> Osim.Process.committed_outputs h.h_proc);
      sm_infection_log = infection_log c;
      sm_adoptions =
        List.filter_map
          (fun sh ->
            Option.map (fun prov -> (sh.sh_id, prov)) sh.sh_ab_prov)
          shs
        |> List.sort compare;
      sm_ab_origin = antibody_origin c;
    }
end
