(** The community defense, mechanically: a fleet of real (simulated) hosts
    in the Producer/Consumer arrangement of Section 6.

    Producers run the complete Sweeper stack; when the lightweight monitors
    on one of them trip, it runs the full analysis, produces an antibody,
    and publishes it. Consumers run lightweight monitoring only, deploy
    published antibodies (optionally verifying them first in a sandbox),
    and are otherwise on their own. This module is the bridge between the
    per-host machinery of {!Orchestrator} and the population-level claims
    of {!Epidemic}: the analytic model's parameters (α, ρ, γ) all have a
    concrete mechanical counterpart here.

    Community runs execute on the cooperative scheduler
    ({!Osim.Sched}): every host is a task, traffic is posted to per-host
    inboxes, and attack handling, benign service, analysis, and antibody
    propagation all interleave in simulated time instead of lockstep
    phases. The same reaction logic backs the direct {!deliver} entry
    point, so a scheduled run and a serial one produce the same per-host
    behaviour. *)

type role = Producer | Consumer

type host = {
  h_id : int;
  h_role : role;
  h_proc : Osim.Process.t;
  h_server : Osim.Server.t;
  mutable h_infected : bool;
  mutable h_deployed : int;  (** antibody generation number installed *)
  mutable h_installed : Vsef.installed list;  (** currently-armed VSEFs *)
}

type stats = {
  mutable s_attempts : int;
  mutable s_infections : int;
  mutable s_crashes : int;       (** detections via lightweight monitoring *)
  mutable s_blocked : int;       (** stopped by antibodies *)
  mutable s_analyses : int;      (** producer pipeline runs *)
  mutable s_first_antibody_ms : float option;
}

type t = {
  app : string;
  compile : unit -> Minic.Codegen.compiled;
      (** the application build, for consumer-side antibody verification *)
  hosts : host list;
  mutable antibody : (int * Antibody.t) option;  (** generation, bundle *)
  mutable generation : int;
  mutable corpus : string list;
      (** every confirmed exploit payload observed community-wide; two or
          more distinct samples upgrade the exact-match signature to a
          Polygraph-style token signature *)
  verify_before_deploy : bool;
  stats : stats;
}

(** Build a community of [n] hosts running the application compiled by
    [compile]; the first [producers] of them run the full Sweeper stack.
    Every host gets an independent randomized layout derived from [seed]. *)
let create ?(verify_before_deploy = false) ~app ~(compile : unit -> Minic.Codegen.compiled)
    ~n ~producers ~seed () =
  let compiled = compile () in
  let hosts =
    List.init n (fun id ->
        let proc = Osim.Process.load ~aslr:true ~seed:(seed + id) compiled in
        let server = Osim.Server.create proc in
        ignore (Osim.Server.run server);
        {
          h_id = id;
          h_role = (if id < producers then Producer else Consumer);
          h_proc = proc;
          h_server = server;
          h_infected = false;
          h_deployed = 0;
          h_installed = [];
        })
  in
  {
    app;
    compile;
    hosts;
    antibody = None;
    generation = 0;
    corpus = [];
    verify_before_deploy;
    stats =
      { s_attempts = 0; s_infections = 0; s_crashes = 0; s_blocked = 0;
        s_analyses = 0; s_first_antibody_ms = None };
  }

(** Publish an antibody to the community. Consumers that distrust the
    producer verify it against their own copy of the application first —
    the deferred-verification option of Section 3.3. *)
let publish t antibody =
  let accept =
    (not t.verify_before_deploy) || Antibody.verify antibody ~compile:t.compile
  in
  if accept then begin
    t.generation <- t.generation + 1;
    t.antibody <- Some (t.generation, antibody);
    Obs.Metrics.inc
      (Obs.Metrics.counter ~help:"antibody generations published"
         "sweeper_antibodies_published_total");
    Obs.Trace.instant ~cat:"community"
      ~args:[ ("generation", string_of_int t.generation) ]
      "antibody-published"
  end;
  accept

(* Make sure [host] runs the latest antibody generation, replacing any
   previously installed one. *)
let sync_antibody t host =
  match t.antibody with
  | Some (gen, ab) when host.h_deployed < gen ->
    List.iter Vsef.uninstall host.h_installed;
    Osim.Netlog.remove_filter host.h_proc.Osim.Process.net
      ~name:("antibody-" ^ t.app);
    host.h_installed <- Antibody.deploy host.h_proc ab;
    host.h_deployed <- gen
  | _ -> ()

(** Record a confirmed exploit payload (the original crash input or a
    VSEF-blocked variant). With two or more distinct samples the signature
    is refined from exact-match to a token signature that covers the whole
    family, and the antibody is republished. *)
let record_exploit_sample t payload =
  if not (List.mem payload t.corpus) then begin
    t.corpus <- payload :: t.corpus;
    match (t.antibody, t.corpus) with
    | Some (_, ab), (_ :: _ :: _ as corpus) ->
      let refined = Signature.tokens_of_variants (List.rev corpus) in
      ignore
        (publish t { ab with Antibody.ab_signature = Some refined })
    | _ -> ()
  end

(* The rollback point for dropping message [cur]: a checkpoint predating
   its consumption (the latest one may have been taken mid-message). *)
let safe_ck host cur =
  fst (Stage.Replay.rollback_point host.h_server ~msg_index:cur)

type delivery =
  | Served
  | Blocked of string       (** input filter or VSEF stopped it *)
  | Detected_and_analyzed   (** producer ran the pipeline; antibody published *)
  | Crashed_consumer        (** consumer detected the attack but can only recover *)
  | Infected of string

(* The community's reaction to one delivery outcome — shared between the
   direct [deliver] path and the scheduler's event handler, so serial and
   interleaved runs behave identically per host. *)
let react t host outcome : delivery =
  match outcome with
  | `Served -> Served
  | `Filtered name ->
    t.stats.s_blocked <- t.stats.s_blocked + 1;
    Blocked name
  | `Infected cmd ->
    host.h_infected <- true;
    t.stats.s_infections <- t.stats.s_infections + 1;
    Infected cmd
  | `Crashed fault ->
    t.stats.s_crashes <- t.stats.s_crashes + 1;
    (match host.h_role with
    | Producer ->
      t.stats.s_analyses <- t.stats.s_analyses + 1;
      let report = Orchestrator.handle_attack ~app:t.app host.h_server fault in
      if t.stats.s_first_antibody_ms = None then
        t.stats.s_first_antibody_ms <-
          Some report.Orchestrator.a_total_ms;
      ignore (publish t report.Orchestrator.a_antibody);
      host.h_deployed <- t.generation;
      (match report.Orchestrator.a_antibody.Antibody.ab_exploit_input with
      | Some inputs -> List.iter (record_exploit_sample t) inputs
      | None -> ());
      Detected_and_analyzed
    | Consumer ->
      (* A consumer has checkpoints but no analysis stack: roll back to
         a checkpoint predating the in-flight message and drop it. *)
      let cur = host.h_proc.Osim.Process.cur_msg in
      ignore (Recovery.recover host.h_server (safe_ck host cur) ~skip:[ cur ]);
      Crashed_consumer)
  | `Vetoed ->
    (* A VSEF vetoed the attack: drop the message, resume — and feed the
       confirmed exploit variant back into signature refinement, so the
       proxy filter learns what the VSEF had to catch. *)
    t.stats.s_blocked <- t.stats.s_blocked + 1;
    let cur = host.h_proc.Osim.Process.cur_msg in
    let payload = (Osim.Netlog.message host.h_proc.Osim.Process.net cur).Osim.Netlog.m_payload in
    ignore (Recovery.recover host.h_server (safe_ck host cur) ~skip:[ cur ]);
    record_exploit_sample t payload;
    Blocked "vsef"

(** Deliver one message to one host, with the full community behaviour:
    antibody sync, producer-side analysis on detection, consumer-side
    recovery. *)
let deliver t host payload : delivery =
  if host.h_infected then Infected "already infected"
  else begin
    t.stats.s_attempts <- t.stats.s_attempts + 1;
    sync_antibody t host;
    match Osim.Server.handle host.h_server payload with
    | `Served _ -> react t host `Served
    | `Filtered name -> react t host (`Filtered name)
    | `Stopped -> react t host `Served
    | `Infected (_, cmd) -> react t host (`Infected cmd)
    | `Crashed (_, fault) -> react t host (`Crashed fault)
    | exception Detection.Detected _ -> react t host `Vetoed
  end

(** Run traffic through the cooperative scheduler: every uninfected host
    becomes a task, [traffic] fills its inbox, and service, crashes,
    producer analysis, recovery, and antibody propagation interleave in
    simulated time until the community is quiescent. Returns the
    scheduler for inspection (virtual clock, instruction counts). *)
let run_scheduled ?quantum t ~(traffic : host -> string list) =
  let sched = Osim.Sched.create ?quantum () in
  let assoc = Hashtbl.create (List.length t.hosts) in
  List.iter
    (fun host ->
      if not host.h_infected then begin
        let task =
          Osim.Sched.add sched host.h_server
            ~on_deliver:(fun _payload ->
              (* The moment a message reaches the host: the proxy syncs
                 the newest antibody generation, the attempt counts. *)
              t.stats.s_attempts <- t.stats.s_attempts + 1;
              sync_antibody t host)
        in
        Hashtbl.replace assoc task.Osim.Sched.sk_id host;
        List.iter (Osim.Sched.post sched task) (traffic host)
      end)
    t.hosts;
  let handler task event =
    let host = Hashtbl.find assoc task.Osim.Sched.sk_id in
    match event with
    | Osim.Sched.Served _ -> ()
    | Osim.Sched.Stopped -> ()
    | Osim.Sched.Filtered (name, _) -> ignore (react t host (`Filtered name))
    | Osim.Sched.Infected cmd -> ignore (react t host (`Infected cmd))
    | Osim.Sched.Crashed fault ->
      ignore (react t host (`Crashed fault));
      (* The host is live again (analysis recovered it, or the consumer
         rolled back): return it to service for its remaining inbox. *)
      Osim.Sched.unpark sched task
    | Osim.Sched.Raised (Detection.Detected _) ->
      ignore (react t host `Vetoed);
      Osim.Sched.unpark sched task
    | Osim.Sched.Raised e -> raise e
  in
  let sp =
    Obs.Trace.begin_span ~cat:"community"
      ~args:[ ("hosts", string_of_int (List.length t.hosts)) ]
      ~vts_ms:(Osim.Sched.vclock_ms sched) "community-round"
  in
  Osim.Sched.run ~handler sched;
  Obs.Trace.end_span ~vts_ms:(Osim.Sched.vclock_ms sched) sp;
  sched

(** One worm round: the worm attacks every uninfected host once, with a
    fresh address guess per host ([exploit_for] builds the per-host attack
    stream). The deliveries of a round run interleaved on the scheduler. *)
let worm_round ?quantum t ~(exploit_for : host -> string list) =
  ignore (run_scheduled ?quantum t ~traffic:exploit_for)

let infected_count t = List.length (List.filter (fun h -> h.h_infected) t.hosts)

(** Register the community's population-level statistics as pull-gauges. *)
let register_metrics t registry =
  let g name help f =
    Obs.Metrics.gauge_fn ~registry ~help name (fun () -> float_of_int (f ()))
  in
  g "sweeper_community_attempts" "deliveries attempted" (fun () ->
      t.stats.s_attempts);
  g "sweeper_community_infections" "successful infections" (fun () ->
      t.stats.s_infections);
  g "sweeper_community_crashes" "detections via lightweight monitoring"
    (fun () -> t.stats.s_crashes);
  g "sweeper_community_blocked" "attacks stopped by antibodies" (fun () ->
      t.stats.s_blocked);
  g "sweeper_community_analyses" "producer pipeline runs" (fun () ->
      t.stats.s_analyses);
  g "sweeper_community_infected_hosts" "hosts currently infected" (fun () ->
      infected_count t);
  Obs.Metrics.gauge_fn ~registry
    ~help:"analysis latency of the first antibody (ms; -1 before one exists)"
    "sweeper_community_first_antibody_ms" (fun () ->
      Option.value ~default:(-1.) t.stats.s_first_antibody_ms)

let infection_ratio t =
  float_of_int (infected_count t) /. float_of_int (List.length t.hosts)

(** Every uninfected host still answers a trivial request. *)
let all_alive t =
  List.for_all
    (fun h ->
      h.h_infected
      ||
      match Osim.Server.handle h.h_server "noop" with
      | `Served _ | `Stopped -> true
      | `Filtered _ | `Crashed _ | `Infected _ -> false)
    t.hosts
