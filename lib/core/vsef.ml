(** Vulnerability-Specific Execution Filters.

    A VSEF is the instruction-granular monitoring the heavyweight analyses
    would have performed, restricted to the handful of instructions the
    vulnerability actually involves — so it is cheap enough for normal
    execution. Each check below corresponds to one of the VSEF families of
    the paper (Section 3.3): return-address side stacks, NULL checks,
    double-free guards, heap bounds checks at a specific (optionally
    callsite-qualified) store, stack-smash store guards, and taint filters
    restricted to a propagation-instruction list.

    Because every host randomizes its library base independently, a VSEF
    names instructions by {!loc} — segment plus offset — and is translated
    to concrete addresses when installed on a process. This is what makes
    antibodies shareable between hosts with different layouts. *)

(** A relocatable code location: which image, and the offset within it. *)
type loc = {
  l_seg : [ `App | `Lib ];
  l_off : int;
}

(** Translate an absolute pc of [p] into a relocatable location. *)
let loc_of_pc (p : Osim.Process.t) pc =
  let lib = p.lib_image in
  if pc >= lib.Vm.Asm.base && pc < lib.Vm.Asm.limit then
    { l_seg = `Lib; l_off = pc - lib.Vm.Asm.base }
  else { l_seg = `App; l_off = pc - p.app_image.Vm.Asm.base }

(** Concrete address of [loc] in process [p]. *)
let pc_of_loc (p : Osim.Process.t) loc =
  match loc.l_seg with
  | `Lib -> p.lib_image.Vm.Asm.base + loc.l_off
  | `App -> p.app_image.Vm.Asm.base + loc.l_off

type check =
  | Side_stack of { entry : loc; ret : loc; fn : string }
      (** record the return address at function entry, compare at the ret *)
  | Null_check of { at : loc }
      (** no memory access below the NULL guard page at this instruction *)
  | Free_guard of { free_entry : loc }
      (** at [free]'s entry: the argument must not be an already-freed chunk *)
  | Double_free_site of { call : loc }
      (** the same check, at one specific call site *)
  | Heap_bounds of { store : loc; caller : string option;
                     caller_range : (loc * loc) option }
      (** stores at this instruction must stay inside a live chunk; when
          [caller_range] is set the check applies only for that caller *)
  | Store_guard of { store : loc }
      (** stores at this instruction must not hit a saved frame pointer or
          return-address slot of any active frame *)
  | Taint_filter of { source_sysno : int; prop : loc list; sink : loc }
      (** taint tracking restricted to the listed instructions *)

type origin = From_coredump | From_membug | From_taint

type t = {
  v_name : string;
  v_app : string;
  v_check : check;
  v_origin : origin;
}

let origin_to_string = function
  | From_coredump -> "memory-state analysis"
  | From_membug -> "memory-bug detection"
  | From_taint -> "taint analysis"

(** Render a check; [describe] resolves a {!loc} against some process. *)
let check_to_string ~describe = function
  | Side_stack { fn; ret; _ } ->
    Printf.sprintf "use a side stack for %s (ret at %s)" fn (describe ret)
  | Null_check { at } -> Printf.sprintf "check for NULL pointer at %s" (describe at)
  | Free_guard _ -> "check for double frees"
  | Double_free_site { call } ->
    Printf.sprintf "%s should not double-free" (describe call)
  | Heap_bounds { store; caller = Some c; _ } ->
    Printf.sprintf "heap bounds-check %s when called by %s" (describe store) c
  | Heap_bounds { store; caller = None; _ } ->
    Printf.sprintf "heap bounds-check %s" (describe store)
  | Store_guard { store } ->
    Printf.sprintf "%s should not overflow stack buffer" (describe store)
  | Taint_filter { prop; sink; _ } ->
    Printf.sprintf "taint-track %d instructions, sink at %s" (List.length prop)
      (describe sink)

let default_describe loc =
  Printf.sprintf "%s+0x%x"
    (match loc.l_seg with `App -> "app" | `Lib -> "lib")
    loc.l_off

let to_string ?(describe = default_describe) v =
  Printf.sprintf "VSEF[%s] %s  (from %s)" v.v_name
    (check_to_string ~describe v.v_check)
    (origin_to_string v.v_origin)

(** Handle on an installed VSEF, for uninstalling. *)
type installed = {
  i_vsef : t;
  i_hooks : Vm.Cpu.hook_id list;
  i_rollback_hooks : int list;
  i_proc : Osim.Process.t;
}

let trip v ~pc detail =
  Detection.detect (Detection.Vsef_trip v.v_name) ~pc ~detail

let overlaps_slot ~addr ~size ~slot = addr < slot + 4 && addr + size > slot

(* Walk the frame-pointer chain collecting (saved-fp slot, ret slot) pairs. *)
let frame_slots (p : Osim.Process.t) =
  let layout = p.layout in
  let rec go acc fp n =
    if n > 64 || fp < layout.Vm.Layout.stack_limit
       || fp >= layout.Vm.Layout.stack_top
    then List.rev acc
    else
      let next = Vm.Memory.load_word p.mem fp in
      go ((fp, fp + 4) :: acc) next (n + 1)
  in
  go [] (Vm.Cpu.get_reg p.cpu Vm.Isa.FP) 0

(* A live-chunk shadow map maintained from allocation syscalls, seeded from
   the heap image — "much of the overhead comes from monitoring calls to
   malloc and free" (Section 5.3). *)
type heap_shadow = { live : (int, int) Hashtbl.t (* user ptr -> size *) }

let seed_heap_shadow sh (p : Osim.Process.t) =
  Hashtbl.reset sh.live;
  List.iter
    (fun (c : Vm.Alloc.chunk) ->
      match c.c_state with
      | Vm.Alloc.Chunk_alloc -> Hashtbl.replace sh.live c.c_ptr c.c_size
      | Vm.Alloc.Chunk_freed | Vm.Alloc.Chunk_corrupt _ -> ())
    (Vm.Alloc.chunks p.mem p.layout)

let make_heap_shadow (p : Osim.Process.t) =
  let sh = { live = Hashtbl.create 64 } in
  seed_heap_shadow sh p;
  sh

let shadow_update sh (eff : Vm.Event.effect_) =
  match eff.e_sys with
  | Vm.Event.Io_alloc { ptr; size } -> Hashtbl.replace sh.live ptr size
  | Vm.Event.Io_free { ptr; status = `Ok } -> Hashtbl.remove sh.live ptr
  | _ -> ()

let in_live_chunk sh addr =
  Hashtbl.fold
    (fun ptr size acc -> acc || (addr >= ptr && addr < ptr + size))
    sh.live false

(* All Syscall-instruction addresses in the loaded images for the given
   syscall numbers — the hook points for allocation/source monitoring. *)
let syscall_sites (p : Osim.Process.t) sysnos =
  let sites = ref [] in
  List.iter
    (fun (img : Vm.Asm.image) ->
      Vm.Program.iteri
        (fun pc instr ->
          match instr with
          | Vm.Isa.Syscall n when List.mem n sysnos -> sites := pc :: !sites
          | _ -> ())
        img.Vm.Asm.code)
    (Osim.Process.images p);
  !sites

(** Install a VSEF on a process, translating its relocatable locations to
    this process's layout. The added instrumentation consists of per-pc
    hooks only — the VSEF footprint the paper measures.

    [static] (a {!Static_an.Staint} result for this process's code) prunes
    a {!Taint_filter}'s propagation hooks to the statically-reachable set
    [S]: prop lists originate from the dynamic engine, whose marks provably
    lie in [S], so the filter only drops locations a corrupted or stale
    shared antibody could carry — defense in depth for artifacts received
    from other hosts. *)
let install ?static (p : Osim.Process.t) (v : t) : installed =
  let cpu = p.cpu in
  let pc_of = pc_of_loc p in
  let rollback_hooks = ref [] in
  let hooks =
    match v.v_check with
    | Side_stack { entry; ret; _ } ->
      let side : int list ref = ref [] in
      let on_entry (_ : Vm.Event.effect_) =
        (* At function entry, sp points at the return address. *)
        let sp = Vm.Cpu.get_reg cpu Vm.Isa.SP in
        side := Vm.Memory.load_word p.mem sp :: !side
      in
      let on_ret (eff : Vm.Event.effect_) =
        match (!side, eff.e_ctrl) with
        | expected :: rest, Vm.Event.Ret_to ->
          let actual = eff.e_ctrl_a in
          side := rest;
          if actual <> expected then
            trip v ~pc:eff.e_pc
              (Printf.sprintf "return address overwritten: 0x%x -> 0x%x"
                 expected actual)
        | _ -> ()
      in
      [ Vm.Cpu.add_pc_hook cpu ~pc:(pc_of entry) on_entry;
        Vm.Cpu.add_pc_hook cpu ~pc:(pc_of ret) on_ret ]
    | Null_check { at } ->
      let pc = pc_of at in
      let check (eff : Vm.Event.effect_) =
        let bad (a : Vm.Event.access) = a.a_addr < 0x10000 in
        if List.exists bad eff.e_mem_reads || List.exists bad eff.e_mem_writes
        then trip v ~pc "NULL pointer dereference blocked"
      in
      [ Vm.Cpu.add_pc_hook cpu ~pc check ]
    | Free_guard { free_entry } ->
      let check (eff : Vm.Event.effect_) =
        (* At free's entry, sp -> return address; arg0 sits above it. *)
        let sp = Vm.Cpu.get_reg cpu Vm.Isa.SP in
        let ptr = Vm.Memory.load_word p.mem (sp + 4) in
        if ptr <> 0 && ptr >= p.layout.Vm.Layout.heap_base then begin
          let magic = Vm.Memory.load_word p.mem (ptr - 4) in
          if magic = Vm.Alloc.magic_freed then
            trip v ~pc:eff.e_pc
              (Printf.sprintf "double free of 0x%x blocked" ptr)
        end
      in
      [ Vm.Cpu.add_pc_hook cpu ~pc:(pc_of free_entry) check ]
    | Double_free_site { call } ->
      let check (eff : Vm.Event.effect_) =
        (* At the call instruction, sp points at arg0. *)
        let sp = Vm.Cpu.get_reg cpu Vm.Isa.SP in
        let ptr = Vm.Memory.load_word p.mem sp in
        if ptr <> 0 && ptr >= p.layout.Vm.Layout.heap_base then begin
          let magic = Vm.Memory.load_word p.mem (ptr - 4) in
          if magic = Vm.Alloc.magic_freed then
            trip v ~pc:eff.e_pc
              (Printf.sprintf "double free of 0x%x blocked at callsite" ptr)
        end
      in
      [ Vm.Cpu.add_pc_hook cpu ~pc:(pc_of call) check ]
    | Heap_bounds { store; caller_range; _ } ->
      let sh = make_heap_shadow p in
      (* Sequential stores into one buffer dominate (string copies), so a
         one-entry chunk cache makes the common check O(1). Any free or
         rollback invalidates it. *)
      let cached = ref (0, 0) in
      (* The shadow mirrors the process's heap; a rollback changes the heap
         underneath it, so re-seed from the restored image. *)
      rollback_hooks :=
        Osim.Process.add_rollback_hook p (fun () ->
            cached := (0, 0);
            seed_heap_shadow sh p)
        :: !rollback_hooks;
      let alloc_hooks =
        List.map
          (fun pc ->
            Vm.Cpu.add_pc_post_hook cpu ~pc (fun (eff : Vm.Event.effect_) ->
                (match eff.e_sys with
                | Vm.Event.Io_free _ -> cached := (0, 0)
                | _ -> ());
                shadow_update sh eff))
          (syscall_sites p [ Vm.Sysno.sys_malloc; Vm.Sysno.sys_free ])
      in
      let in_context () =
        match caller_range with
        | None -> true
        | Some (lo, hi) ->
          (* The store runs inside a library routine; its return address
             sits just above the saved frame pointer. *)
          let fp = Vm.Cpu.get_reg cpu Vm.Isa.FP in
          let ret = Vm.Memory.load_word p.mem (fp + 4) in
          ret >= pc_of lo && ret < pc_of hi
      in
      let in_live addr =
        let lo, hi = !cached in
        if addr >= lo && addr < hi then true
        else if in_live_chunk sh addr then begin
          (match
             Hashtbl.fold
               (fun ptr size acc ->
                 if addr >= ptr && addr < ptr + size then Some (ptr, size)
                 else acc)
               sh.live None
           with
          | Some (ptr, size) -> cached := (ptr, ptr + size)
          | None -> ());
          true
        end
        else false
      in
      let check (eff : Vm.Event.effect_) =
        if in_context () then
          List.iter
            (fun (a : Vm.Event.access) ->
              if
                a.a_addr >= p.layout.Vm.Layout.heap_base
                && a.a_addr < p.layout.Vm.Layout.heap_max
                && not (in_live a.a_addr)
              then
                trip v ~pc:eff.e_pc
                  (Printf.sprintf "heap overflow blocked: store to 0x%x"
                     a.a_addr))
            eff.e_mem_writes
      in
      Vm.Cpu.add_pc_hook cpu ~pc:(pc_of store) check :: alloc_hooks
    | Store_guard { store } ->
      (* The frame-slot walk is needed once per function activation, not
         per store: the chain only changes when FP does. *)
      let cached_fp = ref (-1) in
      let cached_slots = ref [] in
      let check (eff : Vm.Event.effect_) =
        let fp = Vm.Cpu.get_reg cpu Vm.Isa.FP in
        if fp <> !cached_fp then begin
          cached_fp := fp;
          cached_slots := frame_slots p
        end;
        let slots = !cached_slots in
        List.iter
          (fun (a : Vm.Event.access) ->
            List.iter
              (fun (fp_slot, ret_slot) ->
                if
                  overlaps_slot ~addr:a.a_addr ~size:a.a_size ~slot:fp_slot
                  || overlaps_slot ~addr:a.a_addr ~size:a.a_size ~slot:ret_slot
                then
                  trip v ~pc:eff.e_pc
                    (Printf.sprintf
                       "stack smashing blocked: store to frame slot 0x%x"
                       a.a_addr))
              slots)
          eff.e_mem_writes
      in
      [ Vm.Cpu.add_pc_hook cpu ~pc:(pc_of store) check ]
    | Taint_filter { prop; sink; _ } ->
      (* Taint tracking restricted to the propagation instructions the full
         analysis identified, plus the recv sites as sources. *)
      let byte_taint : (int, unit) Hashtbl.t = Hashtbl.create 256 in
      let reg_taint = Array.make Vm.Isa.num_regs false in
      let source_hooks =
        List.map
          (fun pc ->
            Vm.Cpu.add_pc_post_hook cpu ~pc (fun (eff : Vm.Event.effect_) ->
                match eff.e_sys with
                | Vm.Event.Io_recv { buf; len; _ } ->
                  for i = 0 to len - 1 do
                    Hashtbl.replace byte_taint (buf + i) ()
                  done
                | _ -> ()))
          (syscall_sites p [ Vm.Sysno.sys_recv ])
      in
      let mem_tainted (a : Vm.Event.access) =
        let rec go i =
          i < a.a_size && (Hashtbl.mem byte_taint (a.a_addr + i) || go (i + 1))
        in
        go 0
      in
      let propagate (eff : Vm.Event.effect_) =
        let src_tainted =
          List.exists (fun r -> reg_taint.(Vm.Isa.reg_index r)) eff.e_regs_read
          || List.exists mem_tainted eff.e_mem_reads
        in
        if eff.e_rw_count >= 1 then begin
          reg_taint.(Vm.Isa.reg_index eff.e_rw0) <- src_tainted;
          if eff.e_rw_count >= 2 then
            reg_taint.(Vm.Isa.reg_index eff.e_rw1) <- src_tainted
        end;
        List.iter
          (fun (a : Vm.Event.access) ->
            for i = 0 to a.a_size - 1 do
              if src_tainted then Hashtbl.replace byte_taint (a.a_addr + i) ()
              else Hashtbl.remove byte_taint (a.a_addr + i)
            done)
          eff.e_mem_writes
      in
      let prop_pcs = List.sort_uniq compare (List.map pc_of prop) in
      let prop_pcs =
        match static with
        | Some sa -> List.filter (Static_an.Staint.may_propagate sa) prop_pcs
        | None -> prop_pcs
      in
      let prop_hooks =
        List.map (fun pc -> Vm.Cpu.add_pc_post_hook cpu ~pc propagate) prop_pcs
      in
      let sink_check (eff : Vm.Event.effect_) =
        let bad =
          match eff.e_instr with
          | Vm.Isa.Ret -> List.exists mem_tainted eff.e_mem_reads
          | Vm.Isa.CallInd r -> reg_taint.(Vm.Isa.reg_index r)
          | Vm.Isa.Store (_, _, rs) | Vm.Isa.Storeb (_, _, rs) ->
            reg_taint.(Vm.Isa.reg_index rs) && eff.e_fault <> None
          | _ -> false
        in
        if bad then trip v ~pc:eff.e_pc "tainted data used as control target"
      in
      (Vm.Cpu.add_pc_hook cpu ~pc:(pc_of sink) sink_check :: source_hooks)
      @ prop_hooks
  in
  { i_vsef = v; i_hooks = hooks; i_rollback_hooks = !rollback_hooks; i_proc = p }

let uninstall (inst : installed) =
  List.iter (Vm.Cpu.remove_hook inst.i_proc.cpu) inst.i_hooks;
  List.iter (Osim.Process.remove_rollback_hook inst.i_proc) inst.i_rollback_hooks

(** Rough instrumentation footprint: how many program locations this VSEF
    hooks (the paper's argument that VSEFs are lightweight). *)
let footprint (inst : installed) = List.length inst.i_hooks
