(** Memory-state analysis: the first, fastest analysis step.

    Given only the faulted process image (no re-execution), it classifies
    the crash, checks stack and heap consistency, and derives the initial
    VSEF — available within milliseconds of detection, which is what lets
    Sweeper start spreading an antibody while the heavier analyses are
    still running. *)

type diagnosis =
  | Stack_smash_suspected   (** corrupted return taken; stack walk broken *)
  | Null_dereference        (** access inside the NULL guard page *)
  | Double_free_suspected   (** crash inside [free]; argument already freed *)
  | Heap_overflow_suspected (** wild store off the heap; chunk headers bad *)
  | Unclassified

type report = {
  c_fault : Vm.Event.fault;
  c_crash_pc : int;
  c_crash_fn : string option;   (** function containing the faulting pc *)
  c_caller_fn : string option;  (** caller, when the walk allows it *)
  c_stack_consistent : bool;
  c_heap_consistent : bool;
  c_diagnosis : diagnosis;
  c_vsef : Vsef.t option;       (** the initial VSEF *)
  c_summary : string;
  c_flight : string option;
      (** the VM flight-recorder ring dump, when one was attached to the
          crashed process (post-mortem forensics) *)
}

val diagnosis_to_string : diagnosis -> string

val symbol_at : Osim.Process.t -> int -> string option

val stack_walk : Osim.Process.t -> (int * int) list * bool
(** Walk the frame-pointer chain; returns (frames as (fp, return address),
    consistent?). *)

val analyze : Osim.Process.t -> Vm.Event.fault -> report
(** Analyze a faulted process. Non-destructive: reads machine state only. *)
