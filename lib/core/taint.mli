(** Dynamic taint analysis (the TaintCheck re-implementation).

    Network bytes are tainted with the id of the message they arrived in;
    taint flows through data movement and arithmetic (not through pointers
    or control flow — that is what distinguishes it from slicing) and an
    alarm is raised when tainted data is about to be used as a control
    target.

    Internally the engine keeps taint as interned label-set ids over paged
    shadow memory (parallel to {!Vm.Memory}'s pages), and {!run} replays on
    a fused loop that reuses the interpreter's uninstrumented executor
    instead of the per-instruction effect-record path — the heavyweight
    analysis at close to fast-path speed. {!Oracle} is the original
    per-byte engine, kept as the differential-testing reference. *)

module Int_set : Set.S with type elt = int and type t = Set.Make(Int).t

type verdict =
  | Tainted_ret of { pc : int; msgs : Int_set.t }
      (** a return address built from these messages was about to be used *)
  | Tainted_call of { pc : int; msgs : Int_set.t }
  | Tainted_store_fault of { pc : int; msgs : Int_set.t }
      (** the faulting store was writing attacker-controlled bytes *)
  | Tainted_exec of { pc : int; msgs : Int_set.t }
      (** tainted bytes reached [system]/[exec] *)
  | Untainted_fault of { pc : int }
      (** the fault involved no tainted data (e.g. a NULL dereference
          through an untainted pointer) *)
  | No_fault

(** Tracker state, exposed so sampling and other online monitors can drive
    the engine hook-by-hook. *)
type t

val create : ?static:Static_an.Staint.t -> Osim.Process.t -> t
(** [static] (an analysis of the same program) builds the fused loop's
    taint plans already pruned to the static must-hook set [K] and arms
    the per-[Ret] return-site tripwire; omit it for a fully instrumented
    tracker. *)

val on_effect : t -> Vm.Event.effect_ -> unit
(** The propagation rule, applied per committed instruction (register this
    as a post-hook). *)

val guard : t -> Vm.Event.effect_ -> unit
(** A pre-hook check that stops tainted data {e before} it is misused —
    raises {!Detection.Detected} on a tainted return target, indirect-call
    target, or [exec] argument (the argument scan covers the command
    string's actual NUL-terminated bytes, up to the same length cap the
    syscall layer's [load_cstring] applies). TaintCheck as an online
    monitor: what a sampling host or sentinel node runs. *)

val classify_fault : t -> Vm.Cpu.outcome -> verdict
(** After a replay ends, classify its outcome (the fault itself pre-empts
    hooks, so the verdict is computed from machine state at the fault). *)

type result = {
  t_verdict : verdict;
  t_prop_pcs : int list;  (** taint-propagating instructions *)
  t_instructions : int;
}

val verdict_msgs : verdict -> int list
val verdict_to_string : verdict -> string

val run : ?fuel:int -> ?static:Static_an.Staint.t -> Osim.Process.t -> result
(** Attach the tracker, run the replay to completion, classify, detach.
    Replays on the fused fast loop when this tracker is the only
    instrumentation installed on the CPU; observable results are identical
    to the hook-driven path either way. [static] (a {!Static_an.Staint}
    result for the same program — [Invalid_argument] otherwise) prunes the
    fused loop's shadow work to the statically reachable propagation pcs
    without changing any result. *)

val run_pruned :
  ?fuel:int -> static:Static_an.Staint.t -> Osim.Process.t -> result
(** Replay with the tracker installed only at the pcs the static analysis
    proves it could matter at (per-pc post hooks on the must-hook set [K]);
    every other instruction retires on the uninstrumented fast path.
    Byte-identical results to {!run}. *)

val vsef_of_result :
  app:string -> proc:Osim.Process.t -> result -> Vsef.t option
(** The taint-derived VSEF: propagation instructions plus the sink. *)

(** The original engine — one hashtable entry per tainted byte, label sets
    as AVL sets, every instruction on the generic instrumented path — kept
    verbatim as the reference the fast engine is differentially tested
    against. Same propagation rules, same guard spec, same verdicts. *)
module Oracle : sig
  type state

  val create : Osim.Process.t -> state
  val on_effect : state -> Vm.Event.effect_ -> unit
  val guard : state -> Vm.Event.effect_ -> unit
  val classify_fault : state -> Vm.Cpu.outcome -> verdict
  val run : ?fuel:int -> Osim.Process.t -> result
end
