(** Benign traffic generators, one per server — deterministic streams used
    for overhead measurements (Figure 4), recovery timelines (Figure 5),
    and false-positive checks on antibodies. The same [seed] always yields
    the same stream. *)

val httpd : seed:int -> int -> string list
(** HTTP requests with short URIs and well-formed Referer headers. *)

val proxyd : seed:int -> int -> string list
(** Proxy requests: mostly http hits, some small well-formed ftp URLs
    (these exercise the vulnerable [ftp_build_title_url] path safely). *)

val vcsd : seed:int -> int -> string list
(** CVS-protocol sessions: directory switches, entries, noops. *)
