(** The version-control server — the CVS analogue carrying CVE-2003-0015.

    A "Directory" request with an empty argument makes [dirswitch] free
    the current directory string twice. The second [free] trips libc's
    heap consistency check and aborts inside the library — the paper's
    "crash at 0x4f0eaaa0 (lib. free); heap inconsistent", attributed by
    memory-bug detection to the double-freeing call in [dirswitch]. *)

val reqbuf_size : int
(** Size of the request buffer; also the max message size the server
    reads. *)

val source : string
(** MiniC source text (for the static linter). *)

val compile : unit -> Minic.Codegen.compiled
