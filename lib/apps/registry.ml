(** The catalogue of evaluated applications and vulnerabilities — the
    contents of the paper's Table 1, bound to the code that implements each
    entry. *)

type entry = {
  r_key : string;     (** short key: apache1, apache2, cvs, squid *)
  r_name : string;    (** display name used in the paper *)
  r_program : string;
  r_description : string;
  r_cve : string;
  r_bug_type : string;
  r_threat : string;
  r_source : string;  (** MiniC source text (for the static linter) *)
  r_compile : unit -> Minic.Codegen.compiled;
  r_reqbuf_size : int;
  r_reqbuf_symbol : string;  (** global receive buffer (worm payload home) *)
}

let all =
  [
    {
      r_key = "apache1";
      r_name = "Apache1";
      r_program = "httpd-1.3.27";
      r_description = "web server";
      r_cve = "CVE-2003-0542";
      r_bug_type = "Stack Smashing";
      r_threat = "Local exploitable vulnerability enables unauthorized access";
      r_source = Httpd.v1_source;
      r_compile = Httpd.compile_v1;
      r_reqbuf_size = Httpd.reqbuf_size;
      r_reqbuf_symbol = "reqbuf";
    };
    {
      r_key = "apache2";
      r_name = "Apache2";
      r_program = "httpd-1.3.12";
      r_description = "web server";
      r_cve = "CVE-2003-1054";
      r_bug_type = "NULL Pointer";
      r_threat = "Remotely exploitable vulnerability allows disruption of service";
      r_source = Httpd.v2_source;
      r_compile = Httpd.compile_v2;
      r_reqbuf_size = Httpd.reqbuf_size;
      r_reqbuf_symbol = "reqbuf";
    };
    {
      r_key = "cvs";
      r_name = "CVS";
      r_program = "cvs-1.11.4";
      r_description = "version control server";
      r_cve = "CVE-2003-0015";
      r_bug_type = "Double Free";
      r_threat =
        "Remotely exploitable vulnerability provides unauthorized access and \
         disruption of service";
      r_source = Vcsd.source;
      r_compile = Vcsd.compile;
      r_reqbuf_size = Vcsd.reqbuf_size;
      r_reqbuf_symbol = "reqbuf";
    };
    {
      r_key = "squid";
      r_name = "Squid";
      r_program = "squid-2.3";
      r_description = "proxy cache server";
      r_cve = "CVE-2002-0068";
      r_bug_type = "Heap Buffer Overflow";
      r_threat =
        "Remotely exploitable vulnerability provides unauthorized access and \
         disruption of service";
      r_source = Proxyd.source;
      r_compile = Proxyd.compile;
      r_reqbuf_size = Proxyd.reqbuf_size;
      r_reqbuf_symbol = "reqbuf";
    };
  ]

let find key =
  match List.find_opt (fun e -> e.r_key = key) all with
  | Some e -> e
  | None -> invalid_arg ("Registry.find: unknown app " ^ key)

(** The canonical exploit stream for an application. [system_guess] and
    [cmd_ptr] parameterize the control-hijacking exploit; they are ignored
    by the DoS-only ones. *)
let exploit ?(system_guess = 0) ?(cmd_ptr = 0) key =
  match key with
  | "apache1" -> Exploits.apache1 ~system_guess ~cmd_ptr ()
  | "apache2" -> Exploits.apache2 ()
  | "cvs" -> Exploits.cvs ()
  | "squid" -> Exploits.squid ()
  | _ -> invalid_arg ("Registry.exploit: unknown app " ^ key)

(** Benign workload for an application. *)
let workload ?(seed = 7) key n =
  match key with
  | "apache1" | "apache2" -> Workload.httpd ~seed n
  | "cvs" -> Workload.vcsd ~seed n
  | "squid" -> Workload.proxyd ~seed n
  | _ -> invalid_arg ("Registry.workload: unknown app " ^ key)
