(** The catalogue of evaluated applications and vulnerabilities — the
    contents of the paper's Table 1, bound to the code that implements
    each entry. *)

type entry = {
  r_key : string;     (** short key: apache1, apache2, cvs, squid *)
  r_name : string;    (** display name used in the paper *)
  r_program : string;
  r_description : string;
  r_cve : string;
  r_bug_type : string;
  r_threat : string;
  r_source : string;  (** MiniC source text (for the static linter) *)
  r_compile : unit -> Minic.Codegen.compiled;
  r_reqbuf_size : int;
  r_reqbuf_symbol : string;  (** global receive buffer (worm payload home) *)
}

val all : entry list

val find : string -> entry
(** Look an application up by key; raises [Invalid_argument] on unknown
    keys. *)

val exploit : ?system_guess:int -> ?cmd_ptr:int -> string -> Exploits.t
(** The canonical exploit stream for an application. [system_guess] and
    [cmd_ptr] parameterize the control-hijacking exploit; they are
    ignored by the DoS-only ones. *)

val workload : ?seed:int -> string -> int -> string list
(** Benign workload for an application. *)
