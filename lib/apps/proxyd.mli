(** The FTP proxy cache — the Squid analogue carrying CVE-2002-0068.

    [ftp_build_title_url] sizes its buffer from the {e unescaped} user
    string but then appends the rfc1738-escaped version, which can be up
    to three times longer; [strcat] does the rest (see the paper's
    Figure 2). With a long, escape-heavy user part the append runs off the
    end of the mapped heap and faults inside library [strcat] — after
    having silently corrupted the neighbouring chunk header, which is why
    the core-dump analyzer finds the heap inconsistent. *)

val reqbuf_size : int
(** Size of the request buffer; also the max message size the server
    reads. *)

val source : string
(** MiniC source text (for the static linter). *)

val compile : unit -> Minic.Codegen.compiled
