(** The web server, in two builds mirroring the paper's two Apache targets.

    - "Apache1" (analogue of CVE-2003-0542): the alias matcher copies the
      request URI into a 64-byte stack buffer with no bounds check. A long
      URI smashes the caller's saved frame pointer and return address — a
      classic stack-smashing vulnerability. The overflowing store is in
      [lmatcher]; the corrupted return is taken in [try_alias_list].
    - "Apache2" (analogue of CVE-2003-1054): Referer-header bookkeeping
      takes the host to start after "://"; when the header has no scheme
      the host pointer stays NULL and [is_ip] dereferences it — a remotely
      triggerable denial of service. *)

val reqbuf_size : int
(** Size of the request buffer; also the max message size the server
    reads. *)

val v1_source : string
(** MiniC source of the stack-smashing build (for the static linter). *)

val v2_source : string
(** MiniC source of the NULL-dereference build. *)

val compile_v1 : unit -> Minic.Codegen.compiled
(** The stack-smashing build ("Apache1"). *)

val compile_v2 : unit -> Minic.Codegen.compiled
(** The NULL-dereference build ("Apache2"). *)
