(** Front door of the compiler: source text in, relocatable unit out. *)

exception Compile_error of string

(* The front-end exceptions, rewrapped with the unit name. *)
let wrap_front ~name f =
  try f () with
  | Lexer.Lex_error (msg, line) ->
    raise (Compile_error (Printf.sprintf "%s: lex error line %d: %s" name line msg))
  | Parser.Parse_error (msg, line) ->
    raise
      (Compile_error (Printf.sprintf "%s: parse error line %d: %s" name line msg))
  | Sema.Error msg ->
    raise (Compile_error (Printf.sprintf "%s: %s" name msg))

(** Run only the static overflow linter over one translation unit. *)
let lint ~name src : Sema.lint list =
  wrap_front ~name (fun () -> Sema.lint_prog (Parser.parse src))

(** Compile one MiniC translation unit. [extern] declares functions
    resolved at load time from another unit (see {!Libc.signatures}).
    [werror] promotes static-linter findings to {!Compile_error}. *)
let compile ~name ?(extern = []) ?(werror = false) src : Codegen.compiled =
  let ast = wrap_front ~name (fun () -> Parser.parse src) in
  (if werror then
     match Sema.lint_prog ast with
     | [] -> ()
     | lints ->
       raise
         (Compile_error
            (Printf.sprintf "%s: -Werror: %s" name
               (String.concat "; " (List.map Sema.lint_to_string lints)))));
  wrap_front ~name (fun () ->
      Codegen.gen ~name (Sema.check ~extern_funcs:extern ast))

let libc_cache : Codegen.compiled option ref = ref None
let libc_lock = Mutex.create ()

(** The compiled C library (memoized — it is the same for every process;
    randomization happens at load time, not compile time). Mutex-guarded:
    consumer-side antibody verification loads processes from shard
    domains, so first use may race. *)
let libc () =
  Mutex.lock libc_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock libc_lock)
    (fun () ->
      match !libc_cache with
      | Some c -> c
      | None ->
        let c = compile ~name:"libc" Libc.source in
        libc_cache := Some c;
        c)

(** Compile an application against the libc interface. *)
let compile_app ~name src = compile ~name ~extern:Libc.signatures src
