(** The C runtime library, written in MiniC and compiled into the
    randomized library segment of every process.

    Keeping libc as compiled VM code (rather than native helpers) matters:
    the paper's analyses attribute faults to instructions {e inside}
    library routines — "0x4f0f0907 in strcat, when called by
    ftpBuildTitleUrl" — and its VSEFs hook those very instructions. Our
    [strcat]/[strcpy] loops contain the genuine overflowing stores, and
    [free] contains the genuine double-free abort, at addresses that move
    with address-space randomization. *)

val source : string
(** MiniC source of the library. *)

val signatures : (string * Ast.ty * Ast.ty list) list
(** Signatures exported to application units (for extern linking). *)
