(** Semantic analysis: scope resolution, struct layout, pointer-arithmetic
    scaling, and frame allocation. Produces the typed AST consumed by
    {!Codegen}.

    The analysis is deliberately permissive about C's weak typing (ints and
    pointers mix freely through casts) but strict about what the code
    generator cannot express (struct-by-value, unknown identifiers). *)

open Ast

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Typed AST                                                           *)
(* ------------------------------------------------------------------ *)

type var_loc =
  | Loc_frame of int   (** FP-relative byte offset *)
  | Loc_global of string
  | Loc_func of string (** a function used as a value *)

type texpr = { ty : ty; node : tnode }

and tnode =
  | Tnum of int
  | Tstr of string  (** data symbol of the string literal *)
  | Tload of tlval
  | Taddr of tlval
  | Tfun_addr of string
  | Tun of unop * texpr
  | Tbin of binop * texpr * texpr
  | Tassign of tlval * texpr
  | Tcall of string * texpr list
  | Tcall_ptr of texpr * texpr list
  | Tcond of texpr * texpr * texpr

and tlval =
  | Lvar of var_loc * ty   (** directly addressable scalar *)
  | Lmem of texpr * ty     (** computed address, pointee type *)

type tstmt =
  | TSexpr of texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSfor of tstmt option * texpr option * texpr option * tstmt list
  | TSreturn of texpr option
  | TSbreak
  | TScontinue
  | TSblock of tstmt list

type tfunc = {
  tf_name : string;
  tf_params : (string * ty) list;
  tf_frame_size : int;  (** bytes reserved below FP for locals *)
  tf_body : tstmt list;
}

(** Global data item: symbol, byte size, optional initial bytes. *)
type tdata = { d_sym : string; d_size : int; d_init : string option }

type tprog = {
  tp_funcs : tfunc list;
  tp_data : tdata list;
}

(* ------------------------------------------------------------------ *)
(* Struct layout                                                       *)
(* ------------------------------------------------------------------ *)

type struct_layout = {
  sl_size : int;
  sl_fields : (string * int * ty) list;  (** name, offset, type *)
}

type env = {
  structs : (string, struct_layout) Hashtbl.t;
  funcs : (string, ty * ty list) Hashtbl.t;  (** return type, param types *)
  globals : (string, ty) Hashtbl.t;
  mutable strings : (string * string) list;  (** symbol, content *)
  mutable string_count : int;
}

let rec size_of env = function
  | Tvoid -> err "sizeof(void)"
  | Tint | Tptr _ | Tfunptr -> 4
  | Tchar -> 1
  | Tarray (t, n) -> size_of env t * n
  | Tstruct s -> (
    match Hashtbl.find_opt env.structs s with
    | Some l -> l.sl_size
    | None -> err "unknown struct %s" s)

let align_of env = function
  | Tchar -> 1
  | Tarray (Tchar, _) -> 1
  | _ -> ignore env; 4

let layout_struct env (sd : struct_def) =
  let off = ref 0 in
  let fields =
    List.map
      (fun (ty, name) ->
        let a = align_of env ty in
        off := (!off + a - 1) / a * a;
        let o = !off in
        off := !off + size_of env ty;
        (name, o, ty))
      sd.s_fields
  in
  { sl_size = (!off + 3) / 4 * 4; sl_fields = fields }

let field_of env sname fname =
  match Hashtbl.find_opt env.structs sname with
  | None -> err "unknown struct %s" sname
  | Some l -> (
    match List.find_opt (fun (n, _, _) -> n = fname) l.sl_fields with
    | Some (_, off, ty) -> (off, ty)
    | None -> err "struct %s has no field %s" sname fname)

(* ------------------------------------------------------------------ *)
(* Intrinsics (syscall wrappers recognized by name)                    *)
(* ------------------------------------------------------------------ *)

let intrinsics =
  [
    ("_exit", 1); ("_recv", 2); ("_send", 2); ("_sys_malloc", 1);
    ("_sys_free", 1); ("_log", 1); ("_exec", 1); ("_random", 0); ("_time", 0);
  ]

let is_intrinsic name = List.mem_assoc name intrinsics

(* ------------------------------------------------------------------ *)
(* Expression checking                                                 *)
(* ------------------------------------------------------------------ *)

type scope = {
  mutable vars : (string * (var_loc * ty)) list list;  (** scope stack *)
  mutable frame_bottom : int;  (** most negative FP offset used so far *)
}

let push_scope sc = sc.vars <- [] :: sc.vars
let pop_scope sc = sc.vars <- List.tl sc.vars

let lookup_var sc name =
  let rec go = function
    | [] -> None
    | s :: rest -> (
      match List.assoc_opt name s with Some v -> Some v | None -> go rest)
  in
  go sc.vars

let declare_local env sc ty name =
  let size = (size_of env ty + 3) / 4 * 4 in
  sc.frame_bottom <- sc.frame_bottom - size;
  let loc = Loc_frame sc.frame_bottom in
  (match sc.vars with
  | top :: rest -> sc.vars <- ((name, (loc, ty)) :: top) :: rest
  | [] -> assert false);
  loc

let is_scalar = function
  | Tint | Tchar | Tptr _ | Tfunptr -> true
  | Tvoid | Tarray _ | Tstruct _ -> false

(* The value type an lvalue yields when loaded. *)
let lval_ty = function
  | Lvar (_, t) -> t
  | Lmem (_, t) -> t

let mk ty node = { ty; node }

let int_e n = mk Tint (Tnum n)

let string_symbol env s =
  (* Deduplicate identical literals. *)
  match List.find_opt (fun (_, c) -> c = s) env.strings with
  | Some (sym, _) -> sym
  | None ->
    let sym = Printf.sprintf "__str_%d" env.string_count in
    env.string_count <- env.string_count + 1;
    env.strings <- (sym, s) :: env.strings;
    sym

(* Scale an index expression for pointer arithmetic on element type [t]. *)
let scaled env idx t =
  let s = size_of env t in
  if s = 1 then idx else mk Tint (Tbin (Mul, idx, int_e s))

let rec check_expr env sc (e : expr) : texpr =
  match e with
  | Num n -> int_e n
  | Chr c -> mk Tchar (Tnum (Char.code c))
  | Str s -> mk (Tptr Tchar) (Tstr (string_symbol env s))
  | Var name -> (
    match lookup_var sc name with
    | Some (loc, (Tarray (t, _) as aty)) ->
      (* Arrays decay to a pointer to their first element. *)
      mk (Tptr t) (Taddr (Lvar (loc, aty)))
    | Some (loc, (Tstruct _ as sty)) -> mk (Tptr sty) (Taddr (Lvar (loc, sty)))
    | Some (loc, ty) -> mk ty (Tload (Lvar (loc, ty)))
    | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some (Tarray (t, _) as aty) ->
        mk (Tptr t) (Taddr (Lvar (Loc_global name, aty)))
      | Some ty -> mk ty (Tload (Lvar (Loc_global name, ty)))
      | None ->
        if Hashtbl.mem env.funcs name then mk Tfunptr (Tfun_addr name)
        else err "unknown identifier %s" name))
  | Un (Addr_of, inner) ->
    let lv = check_lval env sc inner in
    mk (Tptr (lval_ty lv)) (Taddr lv)
  | Un (Deref, inner) ->
    let p = check_expr env sc inner in
    let pointee =
      match p.ty with
      | Tptr t -> t
      | Tint -> Tint  (* int used as pointer: common in crashy C *)
      | t -> err "cannot dereference %s" (ty_to_string t)
    in
    if is_scalar pointee then mk pointee (Tload (Lmem (p, pointee)))
    else mk (Tptr pointee) p.node |> fun e -> { e with ty = Tptr pointee }
  | Un (op, inner) ->
    let t = check_expr env sc inner in
    mk Tint (Tun (op, t))
  | Bin ((Add | Sub) as op, e1, e2) -> (
    let t1 = check_expr env sc e1 in
    let t2 = check_expr env sc e2 in
    (* Pointer arithmetic scaling. *)
    match (t1.ty, t2.ty, op) with
    | Tptr t, (Tint | Tchar), _ -> mk t1.ty (Tbin (op, t1, scaled env t2 t))
    | (Tint | Tchar), Tptr t, Add -> mk t2.ty (Tbin (Add, t2, scaled env t1 t))
    | Tptr ta, Tptr _, Sub ->
      let diff = mk Tint (Tbin (Sub, t1, t2)) in
      let s = size_of env ta in
      if s = 1 then diff else mk Tint (Tbin (Div, diff, int_e s))
    | _ -> mk Tint (Tbin (op, t1, t2)))
  | Bin (op, e1, e2) ->
    let t1 = check_expr env sc e1 in
    let t2 = check_expr env sc e2 in
    mk Tint (Tbin (op, t1, t2))
  | Assign (lhs, rhs) ->
    let lv = check_lval env sc lhs in
    let rv = check_expr env sc rhs in
    if not (is_scalar (lval_ty lv)) then err "cannot assign aggregate";
    mk (lval_ty lv) (Tassign (lv, rv))
  | Call (name, args) ->
    let targs = List.map (check_expr env sc) args in
    if is_intrinsic name then begin
      let arity = List.assoc name intrinsics in
      if List.length targs <> arity then
        err "%s expects %d arguments" name arity;
      mk Tint (Tcall (name, targs))
    end
    else begin
      match Hashtbl.find_opt env.funcs name with
      | Some (ret, ptys) ->
        if List.length ptys <> List.length targs then
          err "%s expects %d arguments, got %d" name (List.length ptys)
            (List.length targs);
        mk ret (Tcall (name, targs))
      | None -> (
        (* Calling through a function-pointer variable. *)
        match lookup_var sc name with
        | Some (loc, (Tfunptr | Tptr _ | Tint)) ->
          mk Tint
            (Tcall_ptr (mk Tfunptr (Tload (Lvar (loc, Tfunptr))), targs))
        | _ ->
          if Hashtbl.mem env.globals name then
            mk Tint
              (Tcall_ptr
                 (mk Tfunptr (Tload (Lvar (Loc_global name, Tfunptr))), targs))
          else err "unknown function %s" name)
    end
  | Call_ptr (f, args) ->
    let tf = check_expr env sc f in
    let targs = List.map (check_expr env sc) args in
    mk Tint (Tcall_ptr (tf, targs))
  | Index (base, idx) ->
    let lv = check_index env sc base idx in
    let t = lval_ty lv in
    if is_scalar t then mk t (Tload lv)
    else
      (* Indexing into an array of aggregates yields an address. *)
      let addr = match lv with Lmem (a, _) -> a | Lvar _ -> assert false in
      mk (Tptr t) addr.node |> fun e -> { e with ty = Tptr t }
  | Field (base, fname) ->
    let lv = check_field env sc base fname in
    let t = lval_ty lv in
    if is_scalar t then mk t (Tload lv)
    else err "aggregate field access must be an lvalue context"
  | Arrow (base, fname) ->
    let lv = check_arrow env sc base fname in
    let t = lval_ty lv in
    if is_scalar t then mk t (Tload lv)
    else err "aggregate field access must be an lvalue context"
  | Cast (ty, e) ->
    let t = check_expr env sc e in
    { t with ty }
  | Sizeof ty -> int_e (size_of env ty)
  | Cond (c, a, b) ->
    let tc = check_expr env sc c in
    let ta = check_expr env sc a in
    let tb = check_expr env sc b in
    mk ta.ty (Tcond (tc, ta, tb))

and check_lval env sc (e : expr) : tlval =
  match e with
  | Var name -> (
    match lookup_var sc name with
    | Some (loc, ty) -> Lvar (loc, ty)
    | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some ty -> Lvar (Loc_global name, ty)
      | None -> err "unknown identifier %s" name))
  | Un (Deref, inner) ->
    let p = check_expr env sc inner in
    let pointee =
      match p.ty with Tptr t -> t | Tint -> Tint | t -> err "cannot dereference %s" (ty_to_string t)
    in
    Lmem (p, pointee)
  | Index (base, idx) -> check_index env sc base idx
  | Field (base, fname) -> check_field env sc base fname
  | Arrow (base, fname) -> check_arrow env sc base fname
  | Cast (ty, inner) -> (
    match check_lval env sc inner with
    | Lvar (loc, _) -> Lvar (loc, ty)
    | Lmem (a, _) -> Lmem (a, ty))
  | _ -> err "expression is not an lvalue"

and check_index env sc base idx : tlval =
  let tb = check_expr env sc base in
  let ti = check_expr env sc idx in
  let elem =
    match tb.ty with
    | Tptr t -> t
    | Tint -> Tchar  (* raw int indexed: treat as byte pointer *)
    | t -> err "cannot index %s" (ty_to_string t)
  in
  let addr = mk (Tptr elem) (Tbin (Add, tb, scaled env ti elem)) in
  Lmem (addr, elem)

and check_field env sc base fname : tlval =
  let lv = check_lval env sc base in
  let sname =
    match lval_ty lv with
    | Tstruct s -> s
    | t -> err "field access on non-struct %s" (ty_to_string t)
  in
  let off, fty = field_of env sname fname in
  let base_addr = mk (Tptr (Tstruct sname)) (Taddr lv) in
  let addr = mk (Tptr fty) (Tbin (Add, base_addr, int_e off)) in
  Lmem (addr, fty)

and check_arrow env sc base fname : tlval =
  let tb = check_expr env sc base in
  let sname =
    match tb.ty with
    | Tptr (Tstruct s) | Tstruct s -> s
    | t -> err "arrow on non-struct-pointer %s" (ty_to_string t)
  in
  let off, fty = field_of env sname fname in
  let addr = mk (Tptr fty) (Tbin (Add, tb, int_e off)) in
  Lmem (addr, fty)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec check_stmt env sc (s : stmt) : tstmt =
  match s with
  | Sexpr e -> TSexpr (check_expr env sc e)
  | Sdecl (ty, name, init) ->
    let loc = declare_local env sc ty name in
    (match init with
    | None -> TSblock []
    | Some e ->
      let rv = check_expr env sc e in
      if not (is_scalar ty) then err "cannot initialize aggregate %s" name;
      TSexpr (mk ty (Tassign (Lvar (loc, ty), rv))))
  | Sif (c, t, e) ->
    let tc = check_expr env sc c in
    TSif (tc, check_block env sc t, check_block env sc e)
  | Swhile (c, body) ->
    TSwhile (check_expr env sc c, check_block env sc body)
  | Sfor (init, cond, step, body) ->
    push_scope sc;
    let ti = Option.map (check_stmt env sc) init in
    let tc = Option.map (check_expr env sc) cond in
    let ts = Option.map (check_expr env sc) step in
    let tb = check_block env sc body in
    pop_scope sc;
    TSfor (ti, tc, ts, tb)
  | Sreturn e -> TSreturn (Option.map (check_expr env sc) e)
  | Sbreak -> TSbreak
  | Scontinue -> TScontinue
  | Sblock b -> TSblock (check_block env sc b)

and check_block env sc stmts =
  push_scope sc;
  let r = List.map (check_stmt env sc) stmts in
  pop_scope sc;
  r

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let check_func env (f : func) : tfunc =
  let sc = { vars = [ [] ]; frame_bottom = 0 } in
  (* Parameters live above the saved FP: FP+8, FP+12, ... *)
  List.iteri
    (fun i (ty, name) ->
      if not (is_scalar ty) then err "%s: aggregate parameter %s" f.f_name name;
      match sc.vars with
      | top :: rest ->
        sc.vars <- ((name, (Loc_frame (8 + (4 * i)), ty)) :: top) :: rest
      | [] -> assert false)
    f.f_params;
  let body = check_block env sc f.f_body in
  {
    tf_name = f.f_name;
    tf_params = List.map (fun (t, n) -> (n, t)) f.f_params;
    tf_frame_size = -sc.frame_bottom;
    tf_body = body;
  }

(** Analyze a whole program. [extern_funcs] declares functions defined in
    another unit (e.g. app code calling libc), as (name, return, params). *)
let check ?(extern_funcs = []) (prog : program) : tprog =
  let env =
    {
      structs = Hashtbl.create 8;
      funcs = Hashtbl.create 32;
      globals = Hashtbl.create 16;
      strings = [];
      string_count = 0;
    }
  in
  List.iter
    (fun (name, ret, ptys) -> Hashtbl.replace env.funcs name (ret, ptys))
    extern_funcs;
  (* First pass: collect structs, function signatures, global types. *)
  List.iter
    (function
      | Gstruct sd -> Hashtbl.replace env.structs sd.s_name (layout_struct env sd)
      | Gfunc f ->
        Hashtbl.replace env.funcs f.f_name (f.f_ret, List.map fst f.f_params)
      | Gvar (ty, name, _) -> Hashtbl.replace env.globals name ty)
    prog;
  (* Second pass: check function bodies, collect data items. *)
  let funcs = ref [] in
  let data = ref [] in
  List.iter
    (function
      | Gstruct _ -> ()
      | Gfunc f -> funcs := check_func env f :: !funcs
      | Gvar (ty, name, init) ->
        let size = (size_of env ty + 3) / 4 * 4 in
        let init_bytes =
          let word n =
            let b = Bytes.create 4 in
            Bytes.set_int32_le b 0 (Int32.of_int n);
            Some (Bytes.to_string b)
          in
          match init with
          | None -> None
          | Some (Num n) -> word n
          | Some (Un (Neg, Num n)) -> word (-n)
          | Some (Chr c) -> word (Char.code c)
          | Some _ -> err "global %s: only integer initializers supported" name
        in
        data := { d_sym = name; d_size = size; d_init = init_bytes } :: !data)
    prog;
  let string_data =
    List.rev_map
      (fun (sym, content) ->
        { d_sym = sym; d_size = String.length content + 1;
          d_init = Some (content ^ "\000") })
      env.strings
  in
  { tp_funcs = List.rev !funcs; tp_data = List.rev !data @ string_data }

(* ------------------------------------------------------------------ *)
(* Static overflow linter                                              *)
(* ------------------------------------------------------------------ *)

(* Two interval-backed rules over the untyped AST, aimed at the overflow
   shapes the dynamic membug detector catches at replay time (stores
   through a fixed buffer's end). A small flow-sensitive interval
   analysis — condition refinement on [if]/[while]/[for] guards, widening
   at loop heads — tracks every scalar's possible values, so the verdict
   is semantic: a store index whose interval lies {e entirely} outside
   the array is a proven overflow, one that merely straddles the end is a
   possible overflow. This subsumes the earlier syntactic
   const-oob-index / unbounded-copy rules: a constant bad index is the
   singleton-interval special case, and a copy loop whose guard never
   reins the index in widens the index to [+inf) and straddles.

   Deliberately scoped to stores into {e named arrays} whose size is
   visible in the unit being linted — copies through pointer parameters
   are the callee's business (the caller's buffer is out of scope), which
   keeps the linter's verdict aligned with "the overflowing store retires
   in this image". The AST-level analysis is a best-effort linter, not a
   proof system: writes through pointers are not modelled as havoc. The
   sound interval analysis over the compiled code lives in
   {!Static_an.Absint}. *)

type lint = {
  l_func : string;  (** enclosing function *)
  l_rule : string;  (** {!lint_rule_proven} or {!lint_rule_possible} *)
  l_msg : string;
}

let lint_rule_proven = "proven-oob-write"
let lint_rule_possible = "possible-oob-write"

let lint_to_string l = Printf.sprintf "%s: [%s] %s" l.l_func l.l_rule l.l_msg

(* Does [e] contain a sub-expression satisfying [p]? Also serves as a
   plain visitor when [p] is a side-effecting always-false predicate. *)
let rec expr_contains p e =
  p e
  ||
  match e with
  | Num _ | Chr _ | Str _ | Var _ | Sizeof _ -> false
  | Un (_, a) | Field (a, _) | Arrow (a, _) | Cast (_, a) -> expr_contains p a
  | Bin (_, a, b) | Assign (a, b) | Index (a, b) ->
    expr_contains p a || expr_contains p b
  | Call (_, args) -> List.exists (expr_contains p) args
  | Call_ptr (f, args) -> expr_contains p f || List.exists (expr_contains p) args
  | Cond (a, b, c) ->
    expr_contains p a || expr_contains p b || expr_contains p c

(* Can the stored value carry data of unbounded provenance — a memory
   read or a call result? Pure arithmetic on locals (an [itoa] digit
   loop) is not a copy. *)
let reads_memory rhs =
  expr_contains
    (function Index _ | Un (Deref, _) | Call _ | Call_ptr _ -> true | _ -> false)
    rhs

(* --- AST-level interval domain ------------------------------------- *)

(* Bounded sentinels keep saturated arithmetic away from native-int
   overflow: [l_ninf]/[l_pinf] act as -inf/+inf. *)
let l_pinf = max_int / 4
let l_ninf = -l_pinf

type aiv = { alo : int; ahi : int }

let aiv_top = { alo = l_ninf; ahi = l_pinf }
let aiv_const k = { alo = k; ahi = k }
let aiv_bool = { alo = 0; ahi = 1 }
let aiv_sat v = if v >= l_pinf then l_pinf else if v <= l_ninf then l_ninf else v

let aiv_join a b = { alo = min a.alo b.alo; ahi = max a.ahi b.ahi }
let aiv_leq a b = b.alo <= a.alo && a.ahi <= b.ahi

(* Intersect, keeping [a] untouched when the result would be empty — an
   empty meet means the guarded branch is dead, and the linter prefers
   checking dead code with the unrefined state over modelling bottom. *)
let aiv_meet a b =
  let lo = max a.alo b.alo and hi = min a.ahi b.ahi in
  if lo <= hi then { alo = lo; ahi = hi } else a

let aiv_widen old grown =
  {
    alo = (if grown.alo < old.alo then l_ninf else old.alo);
    ahi = (if grown.ahi > old.ahi then l_pinf else old.ahi);
  }

let aiv_add a b = { alo = aiv_sat (a.alo + b.alo); ahi = aiv_sat (a.ahi + b.ahi) }
let aiv_sub a b = { alo = aiv_sat (a.alo - b.ahi); ahi = aiv_sat (a.ahi - b.alo) }

let aiv_mul a b =
  let big v = v >= 1 lsl 20 || v <= -(1 lsl 20) in
  if big a.alo || big a.ahi || big b.alo || big b.ahi then aiv_top
  else
    let p1 = a.alo * b.alo and p2 = a.alo * b.ahi in
    let p3 = a.ahi * b.alo and p4 = a.ahi * b.ahi in
    {
      alo = min (min p1 p2) (min p3 p4);
      ahi = max (max p1 p2) (max p3 p4);
    }

(* The scalar environment is an assoc list threaded exactly like scopes:
   declarations and assignments prepend, lookups take the front-most
   binding. [arrs] maps visible array names to their element counts. *)
type aenv = { scal : (string * aiv) list; arrs : (string * int) list }

let env_get env v =
  match List.assoc_opt v env.scal with Some iv -> iv | None -> aiv_top

let env_set env v iv = { env with scal = (v, iv) :: env.scal }

(* Variable-wise join over the bindings visible in [base]; extra
   bindings [other] grew (deeper declarations) are scoped out. *)
let env_join base other =
  let seen = Hashtbl.create 16 in
  {
    base with
    scal =
      List.filter_map
        (fun (v, iv) ->
          if Hashtbl.mem seen v then None
          else begin
            Hashtbl.add seen v ();
            Some (v, aiv_join iv (env_get other v))
          end)
        base.scal;
  }

let env_leq a b =
  List.for_all (fun (v, iv) -> aiv_leq iv (env_get b v)) a.scal

let env_widen old grown =
  {
    old with
    scal =
      List.map (fun (v, iv) -> (v, aiv_widen iv (env_get grown v))) old.scal;
  }

(* Abstract value of an expression — pure: assignment effects are
   applied by the statement walker, not here. *)
let rec aeval env (e : expr) : aiv =
  match e with
  | Num k -> aiv_const k
  | Chr c -> aiv_const (Char.code c)
  | Var v -> env_get env v
  | Un (Neg, a) ->
    let iv = aeval env a in
    { alo = aiv_sat (-iv.ahi); ahi = aiv_sat (-iv.alo) }
  | Un (Lnot, _) -> aiv_bool
  | Un ((Bnot | Addr_of | Deref), _) -> aiv_top
  | Bin (Add, a, b) -> aiv_add (aeval env a) (aeval env b)
  | Bin (Sub, a, b) -> aiv_sub (aeval env a) (aeval env b)
  | Bin (Mul, a, b) -> aiv_mul (aeval env a) (aeval env b)
  | Bin (Mod, a, Num k) when k > 0 ->
    let iv = aeval env a in
    if iv.alo >= 0 then { alo = 0; ahi = min iv.ahi (k - 1) } else aiv_top
  | Bin (Div, a, Num k) when k > 0 ->
    let iv = aeval env a in
    if iv.alo >= 0 then { alo = 0; ahi = iv.ahi / k } else aiv_top
  | Bin ((Div | Mod | Band | Bor | Bxor | Shl | Shr), _, _) -> aiv_top
  | Bin ((Eq | Ne | Lt | Le | Gt | Ge | Land | Lor), _, _) -> aiv_bool
  | Assign (_, rhs) -> aeval env rhs
  | Cond (_, a, b) -> aiv_join (aeval env a) (aeval env b)
  | Cast (_, a) -> aeval env a
  | Str _ | Call _ | Call_ptr _ | Index _ | Field _ | Arrow _ | Sizeof _ ->
    aiv_top

(* Refine [env] with the knowledge that [cond] evaluated to [branch].
   Handles direct variable-vs-expression comparisons (both orders),
   conjunctions on the true branch, disjunctions on the false branch,
   and [!]. Anything else refines nothing. *)
let rec refine env cond branch =
  match cond with
  | Un (Lnot, c) -> refine env c (not branch)
  | Bin (Land, a, b) when branch -> refine (refine env a true) b true
  | Bin (Lor, a, b) when not branch -> refine (refine env a false) b false
  | Bin ((Eq | Ne | Lt | Le | Gt | Ge) as op, Var v, rhs) ->
    refine_cmp env v op (aeval env rhs) branch
  | Bin ((Eq | Ne | Lt | Le | Gt | Ge) as op, lhs, Var v) ->
    let flip = function
      | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le | op -> op
    in
    refine_cmp env v (flip op) (aeval env lhs) branch
  | _ -> env

(* [v op k] is known [branch]; [k] may itself be an interval, so each
   bound used must hold for {e every} concrete value of [k]: a true
   [v < k] only guarantees [v <= k.ahi - 1], a false one only
   [v >= k.alo]. *)
and refine_cmp env v op k branch =
  let iv = env_get env v in
  let constrain =
    match (op, branch) with
    | Lt, true | Ge, false -> Some { alo = l_ninf; ahi = aiv_sat (k.ahi - 1) }
    | Le, true | Gt, false -> Some { alo = l_ninf; ahi = k.ahi }
    | Gt, true | Le, false -> Some { alo = aiv_sat (k.alo + 1); ahi = l_pinf }
    | Ge, true | Lt, false -> Some { alo = k.alo; ahi = l_pinf }
    | Eq, true | Ne, false -> Some k
    | _ -> None
  in
  match constrain with
  | Some c -> env_set env v (aiv_meet iv c)
  | None -> env

(** Lint a parsed program (no sema required — the analysis is over the
    untyped AST, so even units that would fail later stages can be
    linted). Returns findings in source order. *)
let lint_prog (prog : program) : lint list =
  let lints = ref [] in
  let garrays =
    List.filter_map
      (function
        | Gvar (Tarray (_, n), name, _) -> Some (name, n)
        | Gvar _ | Gfunc _ | Gstruct _ -> None)
      prog
  in
  let lint_func (f : func) =
    let add rule msg =
      let l = { l_func = f.f_name; l_rule = rule; l_msg = msg } in
      if not (List.mem l !lints) then lints := l :: !lints
    in
    (* Check one store against the current interval state. [report]
       gates finding emission so loop fixpoint iterations stay silent
       and findings come from the post-fixpoint stable pass. *)
    let check_store ~report env lhs rhs =
      if report then
        match lhs with
        | Index (Var a, idx) -> (
          match List.assoc_opt a env.arrs with
          | Some n ->
            let iv = aeval env idx in
            let show v = if v <= l_ninf then "-inf" else if v >= l_pinf then "+inf" else string_of_int v in
            if iv.ahi < 0 || iv.alo >= n then
              add lint_rule_proven
                (Printf.sprintf
                   "store %s[%s..%s] is provably out of bounds for %s[%d]" a
                   (show iv.alo) (show iv.ahi) a n)
            else if (iv.alo < 0 || iv.ahi >= n) && reads_memory rhs then
              add lint_rule_possible
                (Printf.sprintf
                   "store %s[%s..%s] of unbounded data may overflow %s[%d]" a
                   (show iv.alo) (show iv.ahi) a n)
          | None -> ())
        | _ -> ()
    in
    (* Walk an expression for its assignment effects (and store checks),
       returning the updated environment. *)
    let rec exec_expr ~report env (e : expr) : aenv =
      match e with
      | Num _ | Chr _ | Str _ | Var _ | Sizeof _ -> env
      | Un (_, a) | Field (a, _) | Arrow (a, _) | Cast (_, a) ->
        exec_expr ~report env a
      | Bin (_, a, b) | Index (a, b) ->
        exec_expr ~report (exec_expr ~report env a) b
      | Cond (c, a, b) ->
        let env = exec_expr ~report env c in
        env_join (exec_expr ~report env a) (exec_expr ~report env b)
      | Call (_, args) -> List.fold_left (exec_expr ~report) env args
      | Call_ptr (fe, args) ->
        List.fold_left (exec_expr ~report) (exec_expr ~report env fe) args
      | Assign (lhs, rhs) -> (
        check_store ~report env lhs rhs;
        let env = exec_expr ~report env rhs in
        match lhs with
        | Var v -> env_set env v (aeval env rhs)
        | _ -> exec_expr ~report env lhs)
    in
    let rec exec_stmts ~report env stmts =
      List.fold_left (exec_stmt ~report) env stmts
    and exec_stmt ~report env (s : stmt) : aenv =
      match s with
      | Sdecl (ty, name, init) -> (
        let env =
          match init with Some e -> exec_expr ~report env e | None -> env
        in
        match ty with
        | Tarray (_, n) -> { env with arrs = (name, n) :: env.arrs }
        | _ ->
          let iv =
            match init with Some e -> aeval env e | None -> aiv_top
          in
          env_set env name iv)
      | Sexpr e -> exec_expr ~report env e
      | Sif (c, t, e) ->
        let env = exec_expr ~report env c in
        env_join
          (exec_stmts ~report (refine env c true) t)
          (exec_stmts ~report (refine env c false) e)
      | Swhile (c, body) -> exec_loop ~report env ~cond:(Some c) None body
      | Sfor (init, cond, step, body) ->
        let env =
          match init with Some s -> exec_stmt ~report env s | None -> env
        in
        exec_loop ~report env ~cond step body
      | Sreturn e -> (
        match e with Some e -> exec_expr ~report env e | None -> env)
      | Sbreak | Scontinue -> env
      | Sblock b ->
        (* inner declarations scope out; effects on outer vars persist *)
        env_join env (exec_stmts ~report env b)
    (* Loop: silent fixpoint with widening after three joins, then one
       reporting pass over the stable refined body state. The post-loop
       state is the (unrefined) fixpoint — conservative w.r.t. breaks. *)
    and exec_loop ~report env ~cond step body =
      let body_once ~report env =
        let env = match cond with Some c -> refine env c true | None -> env in
        let env = exec_stmts ~report env body in
        match step with Some e -> exec_expr ~report env e | None -> env
      in
      let rec fix n env =
        let grown = env_join env (body_once ~report:false env) in
        if env_leq grown env then env
        else if n >= 3 then
          let w = env_widen env grown in
          if env_leq w env then env else fix (n + 1) w
        else fix (n + 1) grown
      in
      let stable = fix 0 env in
      if report then begin
        (match cond with
        | Some c -> ignore (exec_expr ~report stable c)
        | None -> ());
        ignore (body_once ~report stable)
      end;
      match cond with Some c -> refine stable c false | None -> stable
    in
    let params =
      List.filter_map
        (fun (ty, name) ->
          match ty with Tarray (_, n) -> Some (name, n) | _ -> None)
        f.f_params
    in
    ignore
      (exec_stmts ~report:true
         { scal = []; arrs = params @ garrays }
         f.f_body)
  in
  List.iter (function Gfunc f -> lint_func f | Gvar _ | Gstruct _ -> ()) prog;
  List.rev !lints
