(** Semantic analysis: scope resolution, struct layout, pointer-arithmetic
    scaling, and frame allocation. Produces the typed AST consumed by
    {!Codegen}.

    The analysis is deliberately permissive about C's weak typing (ints and
    pointers mix freely through casts) but strict about what the code
    generator cannot express (struct-by-value, unknown identifiers). *)

open Ast

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Typed AST                                                           *)
(* ------------------------------------------------------------------ *)

type var_loc =
  | Loc_frame of int   (** FP-relative byte offset *)
  | Loc_global of string
  | Loc_func of string (** a function used as a value *)

type texpr = { ty : ty; node : tnode }

and tnode =
  | Tnum of int
  | Tstr of string  (** data symbol of the string literal *)
  | Tload of tlval
  | Taddr of tlval
  | Tfun_addr of string
  | Tun of unop * texpr
  | Tbin of binop * texpr * texpr
  | Tassign of tlval * texpr
  | Tcall of string * texpr list
  | Tcall_ptr of texpr * texpr list
  | Tcond of texpr * texpr * texpr

and tlval =
  | Lvar of var_loc * ty   (** directly addressable scalar *)
  | Lmem of texpr * ty     (** computed address, pointee type *)

type tstmt =
  | TSexpr of texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSfor of tstmt option * texpr option * texpr option * tstmt list
  | TSreturn of texpr option
  | TSbreak
  | TScontinue
  | TSblock of tstmt list

type tfunc = {
  tf_name : string;
  tf_params : (string * ty) list;
  tf_frame_size : int;  (** bytes reserved below FP for locals *)
  tf_body : tstmt list;
}

(** Global data item: symbol, byte size, optional initial bytes. *)
type tdata = { d_sym : string; d_size : int; d_init : string option }

type tprog = {
  tp_funcs : tfunc list;
  tp_data : tdata list;
}

(* ------------------------------------------------------------------ *)
(* Struct layout                                                       *)
(* ------------------------------------------------------------------ *)

type struct_layout = {
  sl_size : int;
  sl_fields : (string * int * ty) list;  (** name, offset, type *)
}

type env = {
  structs : (string, struct_layout) Hashtbl.t;
  funcs : (string, ty * ty list) Hashtbl.t;  (** return type, param types *)
  globals : (string, ty) Hashtbl.t;
  mutable strings : (string * string) list;  (** symbol, content *)
  mutable string_count : int;
}

let rec size_of env = function
  | Tvoid -> err "sizeof(void)"
  | Tint | Tptr _ | Tfunptr -> 4
  | Tchar -> 1
  | Tarray (t, n) -> size_of env t * n
  | Tstruct s -> (
    match Hashtbl.find_opt env.structs s with
    | Some l -> l.sl_size
    | None -> err "unknown struct %s" s)

let align_of env = function
  | Tchar -> 1
  | Tarray (Tchar, _) -> 1
  | _ -> ignore env; 4

let layout_struct env (sd : struct_def) =
  let off = ref 0 in
  let fields =
    List.map
      (fun (ty, name) ->
        let a = align_of env ty in
        off := (!off + a - 1) / a * a;
        let o = !off in
        off := !off + size_of env ty;
        (name, o, ty))
      sd.s_fields
  in
  { sl_size = (!off + 3) / 4 * 4; sl_fields = fields }

let field_of env sname fname =
  match Hashtbl.find_opt env.structs sname with
  | None -> err "unknown struct %s" sname
  | Some l -> (
    match List.find_opt (fun (n, _, _) -> n = fname) l.sl_fields with
    | Some (_, off, ty) -> (off, ty)
    | None -> err "struct %s has no field %s" sname fname)

(* ------------------------------------------------------------------ *)
(* Intrinsics (syscall wrappers recognized by name)                    *)
(* ------------------------------------------------------------------ *)

let intrinsics =
  [
    ("_exit", 1); ("_recv", 2); ("_send", 2); ("_sys_malloc", 1);
    ("_sys_free", 1); ("_log", 1); ("_exec", 1); ("_random", 0); ("_time", 0);
  ]

let is_intrinsic name = List.mem_assoc name intrinsics

(* ------------------------------------------------------------------ *)
(* Expression checking                                                 *)
(* ------------------------------------------------------------------ *)

type scope = {
  mutable vars : (string * (var_loc * ty)) list list;  (** scope stack *)
  mutable frame_bottom : int;  (** most negative FP offset used so far *)
}

let push_scope sc = sc.vars <- [] :: sc.vars
let pop_scope sc = sc.vars <- List.tl sc.vars

let lookup_var sc name =
  let rec go = function
    | [] -> None
    | s :: rest -> (
      match List.assoc_opt name s with Some v -> Some v | None -> go rest)
  in
  go sc.vars

let declare_local env sc ty name =
  let size = (size_of env ty + 3) / 4 * 4 in
  sc.frame_bottom <- sc.frame_bottom - size;
  let loc = Loc_frame sc.frame_bottom in
  (match sc.vars with
  | top :: rest -> sc.vars <- ((name, (loc, ty)) :: top) :: rest
  | [] -> assert false);
  loc

let is_scalar = function
  | Tint | Tchar | Tptr _ | Tfunptr -> true
  | Tvoid | Tarray _ | Tstruct _ -> false

(* The value type an lvalue yields when loaded. *)
let lval_ty = function
  | Lvar (_, t) -> t
  | Lmem (_, t) -> t

let mk ty node = { ty; node }

let int_e n = mk Tint (Tnum n)

let string_symbol env s =
  (* Deduplicate identical literals. *)
  match List.find_opt (fun (_, c) -> c = s) env.strings with
  | Some (sym, _) -> sym
  | None ->
    let sym = Printf.sprintf "__str_%d" env.string_count in
    env.string_count <- env.string_count + 1;
    env.strings <- (sym, s) :: env.strings;
    sym

(* Scale an index expression for pointer arithmetic on element type [t]. *)
let scaled env idx t =
  let s = size_of env t in
  if s = 1 then idx else mk Tint (Tbin (Mul, idx, int_e s))

let rec check_expr env sc (e : expr) : texpr =
  match e with
  | Num n -> int_e n
  | Chr c -> mk Tchar (Tnum (Char.code c))
  | Str s -> mk (Tptr Tchar) (Tstr (string_symbol env s))
  | Var name -> (
    match lookup_var sc name with
    | Some (loc, (Tarray (t, _) as aty)) ->
      (* Arrays decay to a pointer to their first element. *)
      mk (Tptr t) (Taddr (Lvar (loc, aty)))
    | Some (loc, (Tstruct _ as sty)) -> mk (Tptr sty) (Taddr (Lvar (loc, sty)))
    | Some (loc, ty) -> mk ty (Tload (Lvar (loc, ty)))
    | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some (Tarray (t, _) as aty) ->
        mk (Tptr t) (Taddr (Lvar (Loc_global name, aty)))
      | Some ty -> mk ty (Tload (Lvar (Loc_global name, ty)))
      | None ->
        if Hashtbl.mem env.funcs name then mk Tfunptr (Tfun_addr name)
        else err "unknown identifier %s" name))
  | Un (Addr_of, inner) ->
    let lv = check_lval env sc inner in
    mk (Tptr (lval_ty lv)) (Taddr lv)
  | Un (Deref, inner) ->
    let p = check_expr env sc inner in
    let pointee =
      match p.ty with
      | Tptr t -> t
      | Tint -> Tint  (* int used as pointer: common in crashy C *)
      | t -> err "cannot dereference %s" (ty_to_string t)
    in
    if is_scalar pointee then mk pointee (Tload (Lmem (p, pointee)))
    else mk (Tptr pointee) p.node |> fun e -> { e with ty = Tptr pointee }
  | Un (op, inner) ->
    let t = check_expr env sc inner in
    mk Tint (Tun (op, t))
  | Bin ((Add | Sub) as op, e1, e2) -> (
    let t1 = check_expr env sc e1 in
    let t2 = check_expr env sc e2 in
    (* Pointer arithmetic scaling. *)
    match (t1.ty, t2.ty, op) with
    | Tptr t, (Tint | Tchar), _ -> mk t1.ty (Tbin (op, t1, scaled env t2 t))
    | (Tint | Tchar), Tptr t, Add -> mk t2.ty (Tbin (Add, t2, scaled env t1 t))
    | Tptr ta, Tptr _, Sub ->
      let diff = mk Tint (Tbin (Sub, t1, t2)) in
      let s = size_of env ta in
      if s = 1 then diff else mk Tint (Tbin (Div, diff, int_e s))
    | _ -> mk Tint (Tbin (op, t1, t2)))
  | Bin (op, e1, e2) ->
    let t1 = check_expr env sc e1 in
    let t2 = check_expr env sc e2 in
    mk Tint (Tbin (op, t1, t2))
  | Assign (lhs, rhs) ->
    let lv = check_lval env sc lhs in
    let rv = check_expr env sc rhs in
    if not (is_scalar (lval_ty lv)) then err "cannot assign aggregate";
    mk (lval_ty lv) (Tassign (lv, rv))
  | Call (name, args) ->
    let targs = List.map (check_expr env sc) args in
    if is_intrinsic name then begin
      let arity = List.assoc name intrinsics in
      if List.length targs <> arity then
        err "%s expects %d arguments" name arity;
      mk Tint (Tcall (name, targs))
    end
    else begin
      match Hashtbl.find_opt env.funcs name with
      | Some (ret, ptys) ->
        if List.length ptys <> List.length targs then
          err "%s expects %d arguments, got %d" name (List.length ptys)
            (List.length targs);
        mk ret (Tcall (name, targs))
      | None -> (
        (* Calling through a function-pointer variable. *)
        match lookup_var sc name with
        | Some (loc, (Tfunptr | Tptr _ | Tint)) ->
          mk Tint
            (Tcall_ptr (mk Tfunptr (Tload (Lvar (loc, Tfunptr))), targs))
        | _ ->
          if Hashtbl.mem env.globals name then
            mk Tint
              (Tcall_ptr
                 (mk Tfunptr (Tload (Lvar (Loc_global name, Tfunptr))), targs))
          else err "unknown function %s" name)
    end
  | Call_ptr (f, args) ->
    let tf = check_expr env sc f in
    let targs = List.map (check_expr env sc) args in
    mk Tint (Tcall_ptr (tf, targs))
  | Index (base, idx) ->
    let lv = check_index env sc base idx in
    let t = lval_ty lv in
    if is_scalar t then mk t (Tload lv)
    else
      (* Indexing into an array of aggregates yields an address. *)
      let addr = match lv with Lmem (a, _) -> a | Lvar _ -> assert false in
      mk (Tptr t) addr.node |> fun e -> { e with ty = Tptr t }
  | Field (base, fname) ->
    let lv = check_field env sc base fname in
    let t = lval_ty lv in
    if is_scalar t then mk t (Tload lv)
    else err "aggregate field access must be an lvalue context"
  | Arrow (base, fname) ->
    let lv = check_arrow env sc base fname in
    let t = lval_ty lv in
    if is_scalar t then mk t (Tload lv)
    else err "aggregate field access must be an lvalue context"
  | Cast (ty, e) ->
    let t = check_expr env sc e in
    { t with ty }
  | Sizeof ty -> int_e (size_of env ty)
  | Cond (c, a, b) ->
    let tc = check_expr env sc c in
    let ta = check_expr env sc a in
    let tb = check_expr env sc b in
    mk ta.ty (Tcond (tc, ta, tb))

and check_lval env sc (e : expr) : tlval =
  match e with
  | Var name -> (
    match lookup_var sc name with
    | Some (loc, ty) -> Lvar (loc, ty)
    | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some ty -> Lvar (Loc_global name, ty)
      | None -> err "unknown identifier %s" name))
  | Un (Deref, inner) ->
    let p = check_expr env sc inner in
    let pointee =
      match p.ty with Tptr t -> t | Tint -> Tint | t -> err "cannot dereference %s" (ty_to_string t)
    in
    Lmem (p, pointee)
  | Index (base, idx) -> check_index env sc base idx
  | Field (base, fname) -> check_field env sc base fname
  | Arrow (base, fname) -> check_arrow env sc base fname
  | Cast (ty, inner) -> (
    match check_lval env sc inner with
    | Lvar (loc, _) -> Lvar (loc, ty)
    | Lmem (a, _) -> Lmem (a, ty))
  | _ -> err "expression is not an lvalue"

and check_index env sc base idx : tlval =
  let tb = check_expr env sc base in
  let ti = check_expr env sc idx in
  let elem =
    match tb.ty with
    | Tptr t -> t
    | Tint -> Tchar  (* raw int indexed: treat as byte pointer *)
    | t -> err "cannot index %s" (ty_to_string t)
  in
  let addr = mk (Tptr elem) (Tbin (Add, tb, scaled env ti elem)) in
  Lmem (addr, elem)

and check_field env sc base fname : tlval =
  let lv = check_lval env sc base in
  let sname =
    match lval_ty lv with
    | Tstruct s -> s
    | t -> err "field access on non-struct %s" (ty_to_string t)
  in
  let off, fty = field_of env sname fname in
  let base_addr = mk (Tptr (Tstruct sname)) (Taddr lv) in
  let addr = mk (Tptr fty) (Tbin (Add, base_addr, int_e off)) in
  Lmem (addr, fty)

and check_arrow env sc base fname : tlval =
  let tb = check_expr env sc base in
  let sname =
    match tb.ty with
    | Tptr (Tstruct s) | Tstruct s -> s
    | t -> err "arrow on non-struct-pointer %s" (ty_to_string t)
  in
  let off, fty = field_of env sname fname in
  let addr = mk (Tptr fty) (Tbin (Add, tb, int_e off)) in
  Lmem (addr, fty)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec check_stmt env sc (s : stmt) : tstmt =
  match s with
  | Sexpr e -> TSexpr (check_expr env sc e)
  | Sdecl (ty, name, init) ->
    let loc = declare_local env sc ty name in
    (match init with
    | None -> TSblock []
    | Some e ->
      let rv = check_expr env sc e in
      if not (is_scalar ty) then err "cannot initialize aggregate %s" name;
      TSexpr (mk ty (Tassign (Lvar (loc, ty), rv))))
  | Sif (c, t, e) ->
    let tc = check_expr env sc c in
    TSif (tc, check_block env sc t, check_block env sc e)
  | Swhile (c, body) ->
    TSwhile (check_expr env sc c, check_block env sc body)
  | Sfor (init, cond, step, body) ->
    push_scope sc;
    let ti = Option.map (check_stmt env sc) init in
    let tc = Option.map (check_expr env sc) cond in
    let ts = Option.map (check_expr env sc) step in
    let tb = check_block env sc body in
    pop_scope sc;
    TSfor (ti, tc, ts, tb)
  | Sreturn e -> TSreturn (Option.map (check_expr env sc) e)
  | Sbreak -> TSbreak
  | Scontinue -> TScontinue
  | Sblock b -> TSblock (check_block env sc b)

and check_block env sc stmts =
  push_scope sc;
  let r = List.map (check_stmt env sc) stmts in
  pop_scope sc;
  r

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let check_func env (f : func) : tfunc =
  let sc = { vars = [ [] ]; frame_bottom = 0 } in
  (* Parameters live above the saved FP: FP+8, FP+12, ... *)
  List.iteri
    (fun i (ty, name) ->
      if not (is_scalar ty) then err "%s: aggregate parameter %s" f.f_name name;
      match sc.vars with
      | top :: rest ->
        sc.vars <- ((name, (Loc_frame (8 + (4 * i)), ty)) :: top) :: rest
      | [] -> assert false)
    f.f_params;
  let body = check_block env sc f.f_body in
  {
    tf_name = f.f_name;
    tf_params = List.map (fun (t, n) -> (n, t)) f.f_params;
    tf_frame_size = -sc.frame_bottom;
    tf_body = body;
  }

(** Analyze a whole program. [extern_funcs] declares functions defined in
    another unit (e.g. app code calling libc), as (name, return, params). *)
let check ?(extern_funcs = []) (prog : program) : tprog =
  let env =
    {
      structs = Hashtbl.create 8;
      funcs = Hashtbl.create 32;
      globals = Hashtbl.create 16;
      strings = [];
      string_count = 0;
    }
  in
  List.iter
    (fun (name, ret, ptys) -> Hashtbl.replace env.funcs name (ret, ptys))
    extern_funcs;
  (* First pass: collect structs, function signatures, global types. *)
  List.iter
    (function
      | Gstruct sd -> Hashtbl.replace env.structs sd.s_name (layout_struct env sd)
      | Gfunc f ->
        Hashtbl.replace env.funcs f.f_name (f.f_ret, List.map fst f.f_params)
      | Gvar (ty, name, _) -> Hashtbl.replace env.globals name ty)
    prog;
  (* Second pass: check function bodies, collect data items. *)
  let funcs = ref [] in
  let data = ref [] in
  List.iter
    (function
      | Gstruct _ -> ()
      | Gfunc f -> funcs := check_func env f :: !funcs
      | Gvar (ty, name, init) ->
        let size = (size_of env ty + 3) / 4 * 4 in
        let init_bytes =
          let word n =
            let b = Bytes.create 4 in
            Bytes.set_int32_le b 0 (Int32.of_int n);
            Some (Bytes.to_string b)
          in
          match init with
          | None -> None
          | Some (Num n) -> word n
          | Some (Un (Neg, Num n)) -> word (-n)
          | Some (Chr c) -> word (Char.code c)
          | Some _ -> err "global %s: only integer initializers supported" name
        in
        data := { d_sym = name; d_size = size; d_init = init_bytes } :: !data)
    prog;
  let string_data =
    List.rev_map
      (fun (sym, content) ->
        { d_sym = sym; d_size = String.length content + 1;
          d_init = Some (content ^ "\000") })
      env.strings
  in
  { tp_funcs = List.rev !funcs; tp_data = List.rev !data @ string_data }

(* ------------------------------------------------------------------ *)
(* Static overflow linter                                              *)
(* ------------------------------------------------------------------ *)

(* Two syntactic rules over the untyped AST, aimed at the overflow shapes
   the dynamic membug detector catches at replay time (stores through a
   fixed buffer's end). Deliberately scoped to stores into {e named
   arrays} whose size is visible in the unit being linted — copies
   through pointer parameters are the callee's business (the caller's
   buffer is out of scope), which keeps the linter's verdict aligned with
   "the overflowing store retires in this image". *)

type lint = {
  l_func : string;  (** enclosing function *)
  l_rule : string;  (** {!lint_rule_oob} or {!lint_rule_copy} *)
  l_msg : string;
}

let lint_rule_oob = "const-oob-index"
let lint_rule_copy = "unbounded-copy"

let lint_to_string l = Printf.sprintf "%s: [%s] %s" l.l_func l.l_rule l.l_msg

(* Does [e] contain a sub-expression satisfying [p]? Also serves as a
   plain visitor when [p] is a side-effecting always-false predicate. *)
let rec expr_contains p e =
  p e
  ||
  match e with
  | Num _ | Chr _ | Str _ | Var _ | Sizeof _ -> false
  | Un (_, a) | Field (a, _) | Arrow (a, _) | Cast (_, a) -> expr_contains p a
  | Bin (_, a, b) | Assign (a, b) | Index (a, b) ->
    expr_contains p a || expr_contains p b
  | Call (_, args) -> List.exists (expr_contains p) args
  | Call_ptr (f, args) -> expr_contains p f || List.exists (expr_contains p) args
  | Cond (a, b, c) ->
    expr_contains p a || expr_contains p b || expr_contains p c

(* Can the stored value carry data of unbounded provenance — a memory
   read or a call result? Pure arithmetic on locals (an [itoa] digit
   loop) is not a copy. *)
let reads_memory rhs =
  expr_contains
    (function Index _ | Un (Deref, _) | Call _ | Call_ptr _ -> true | _ -> false)
    rhs

(* Does the loop condition directly compare the store index against a
   constant that keeps it inside [n] elements? Any other direct
   comparison of the index also counts as a bound (the programmer is
   steering it; proving such loops wrong needs value analysis, and the
   point here is the loops with {e no} rein on the index at all). *)
let bounds_index ivar n cond =
  expr_contains
    (function
      | Bin ((Lt | Le | Gt | Ge | Eq | Ne) as op, Var v, Num k) when v = ivar
        -> (
        match op with Lt -> k <= n | Le -> k < n | _ -> true)
      | Bin ((Lt | Le | Gt | Ge | Eq | Ne) as op, Num k, Var v) when v = ivar
        -> (
        match op with Gt -> k <= n | Ge -> k < n | _ -> true)
      | Bin ((Lt | Le | Gt | Ge | Eq | Ne), Var v, _) when v = ivar -> true
      | Bin ((Lt | Le | Gt | Ge | Eq | Ne), _, Var v) when v = ivar -> true
      | _ -> false)
    cond

(* [i = i + _] / [i = _ + i], anywhere inside [e]. *)
let increments ivar e =
  expr_contains
    (function
      | Assign (Var v, Bin (Add, Var v', _)) -> v = ivar && v' = ivar
      | Assign (Var v, Bin (Add, _, Var v')) -> v = ivar && v' = ivar
      | _ -> false)
    e

(* Every expression in a statement subtree. *)
let rec stmt_exprs (s : stmt) : expr list =
  match s with
  | Sexpr e -> [ e ]
  | Sdecl (_, _, init) -> Option.to_list init
  | Sif (c, t, e) ->
    (c :: List.concat_map stmt_exprs t) @ List.concat_map stmt_exprs e
  | Swhile (c, body) -> c :: List.concat_map stmt_exprs body
  | Sfor (init, cond, step, body) ->
    Option.to_list (Option.map (fun s -> stmt_exprs s) init)
    |> List.concat
    |> fun l ->
    l @ Option.to_list cond @ Option.to_list step
    @ List.concat_map stmt_exprs body
  | Sreturn e -> Option.to_list e
  | Sbreak | Scontinue -> []
  | Sblock b -> List.concat_map stmt_exprs b

(** Lint a parsed program (no sema required — the rules are syntactic,
    so even units that would fail later stages can be linted). Returns
    findings in source order. *)
let lint_prog (prog : program) : lint list =
  let lints = ref [] in
  let garrays =
    List.filter_map
      (function
        | Gvar (Tarray (_, n), name, _) -> Some (name, n)
        | Gvar _ | Gfunc _ | Gstruct _ -> None)
      prog
  in
  let lint_func (f : func) =
    let add rule msg =
      let l = { l_func = f.f_name; l_rule = rule; l_msg = msg } in
      if not (List.mem l !lints) then lints := l :: !lints
    in
    (* Rule 1: a constant index provably outside a visible array. *)
    let check_expr env e =
      ignore
        (expr_contains
           (function
             | Index (Var a, Num k) ->
               (match List.assoc_opt a env with
               | Some n when k < 0 || k >= n ->
                 add lint_rule_oob
                   (Printf.sprintf "%s[%d] is out of bounds for %s[%d]" a k a
                      n)
               | _ -> ());
               false
             | _ -> false)
           e)
    in
    (* Rule 2: inside a loop, [arr[i] = <memory read>] where the body
       advances [i] but the loop condition never reins it in (or its
       constant bound exceeds the array) — the strcpy-into-fixed-buffer
       shape. *)
    let check_loop env cond step body =
      let exprs = List.concat_map stmt_exprs body @ Option.to_list step in
      List.iter
        (fun e ->
          ignore
            (expr_contains
               (function
                 | Assign (Index (Var arr, Var iv), rhs) ->
                   (match List.assoc_opt arr env with
                   | Some n
                     when reads_memory rhs
                          && List.exists (increments iv) exprs
                          && not
                               (match cond with
                               | Some c -> bounds_index iv n c
                               | None -> false) ->
                     add lint_rule_copy
                       (Printf.sprintf
                          "loop copies into %s[%d] without bounding index %s"
                          arr n iv)
                   | _ -> ());
                   false
                 | _ -> false)
               e))
        exprs
    in
    let rec walk_stmts env stmts =
      match stmts with
      | [] -> ()
      | s :: rest -> walk_stmts (walk_stmt env s) rest
    and walk_stmt env (s : stmt) =
      match s with
      | Sdecl (ty, name, init) -> (
        Option.iter (check_expr env) init;
        match ty with Tarray (_, n) -> (name, n) :: env | _ -> env)
      | Sexpr e ->
        check_expr env e;
        env
      | Sif (c, t, e) ->
        check_expr env c;
        walk_stmts env t;
        walk_stmts env e;
        env
      | Swhile (c, body) ->
        check_expr env c;
        check_loop env (Some c) None body;
        walk_stmts env body;
        env
      | Sfor (init, cond, step, body) ->
        let env_i =
          match init with Some s -> walk_stmt env s | None -> env
        in
        Option.iter (check_expr env_i) cond;
        Option.iter (check_expr env_i) step;
        check_loop env_i cond step body;
        walk_stmts env_i body;
        env
      | Sreturn e ->
        Option.iter (check_expr env) e;
        env
      | Sbreak | Scontinue -> env
      | Sblock b ->
        walk_stmts env b;
        env
    in
    walk_stmts garrays f.f_body
  in
  List.iter (function Gfunc f -> lint_func f | Gvar _ | Gstruct _ -> ()) prog;
  List.rev !lints
