(** Front door of the MiniC compiler: source text in, relocatable unit out. *)

exception Compile_error of string

val lint : name:string -> string -> Sema.lint list
(** Run only the static overflow linter (no sema / codegen) over one
    translation unit. Raises {!Compile_error} on lex/parse errors. *)

val compile :
  name:string ->
  ?extern:(string * Ast.ty * Ast.ty list) list ->
  ?werror:bool ->
  string ->
  Codegen.compiled
(** Compile one translation unit. [extern] declares functions resolved at
    load time from another unit (see {!Libc.signatures}). [werror]
    (default [false]) promotes static overflow-linter findings to errors.
    Raises {!Compile_error} with a located message on lex/parse/sema
    errors and linter findings under [werror]. *)

val libc : unit -> Codegen.compiled
(** The compiled C library, memoized — it is the same for every process;
    randomization happens at load time, not compile time. *)

val compile_app : name:string -> string -> Codegen.compiled
(** Compile an application against the libc interface. *)
