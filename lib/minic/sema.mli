(** Semantic analysis: scope resolution, struct layout, pointer-arithmetic
    scaling, and frame allocation. Produces the typed AST consumed by
    {!Codegen}. Also home of the static overflow linter.

    The analysis is deliberately permissive about C's weak typing (ints and
    pointers mix freely through casts) but strict about what the code
    generator cannot express (struct-by-value, unknown identifiers). *)

exception Error of string

(** {1 Typed AST} *)

type var_loc =
  | Loc_frame of int   (** FP-relative byte offset *)
  | Loc_global of string
  | Loc_func of string (** a function used as a value *)

type texpr = { ty : Ast.ty; node : tnode }

and tnode =
  | Tnum of int
  | Tstr of string  (** data symbol of the string literal *)
  | Tload of tlval
  | Taddr of tlval
  | Tfun_addr of string
  | Tun of Ast.unop * texpr
  | Tbin of Ast.binop * texpr * texpr
  | Tassign of tlval * texpr
  | Tcall of string * texpr list
  | Tcall_ptr of texpr * texpr list
  | Tcond of texpr * texpr * texpr

and tlval =
  | Lvar of var_loc * Ast.ty   (** directly addressable scalar *)
  | Lmem of texpr * Ast.ty     (** computed address, pointee type *)

type tstmt =
  | TSexpr of texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSfor of tstmt option * texpr option * texpr option * tstmt list
  | TSreturn of texpr option
  | TSbreak
  | TScontinue
  | TSblock of tstmt list

type tfunc = {
  tf_name : string;
  tf_params : (string * Ast.ty) list;
  tf_frame_size : int;  (** bytes reserved below FP for locals *)
  tf_body : tstmt list;
}

(** Global data item: symbol, byte size, optional initial bytes. *)
type tdata = { d_sym : string; d_size : int; d_init : string option }

type tprog = {
  tp_funcs : tfunc list;
  tp_data : tdata list;
}

val is_intrinsic : string -> bool
(** Built-ins lowered directly by {!Codegen} ([_recv], [_send], …) rather
    than called through the normal linkage. *)

val check :
  ?extern_funcs:(string * Ast.ty * Ast.ty list) list ->
  Ast.program ->
  tprog
(** Analyze a parsed program. [extern_funcs] declares functions defined in
    another unit (name, return type, parameter types). Raises {!Error}. *)

(** {1 Static overflow linter}

    Two interval-backed rules over the untyped AST, aimed at the overflow
    shapes the dynamic membug detector catches at replay time. A
    flow-sensitive interval analysis — condition refinement on loop and
    branch guards, widening at loop heads — tracks scalar values, so a
    store index whose interval lies entirely outside its array is a
    {e proven} overflow, and one straddling the end while storing
    memory-derived (unbounded-provenance) data is a {e possible} one.
    This subsumes the earlier syntactic const-oob-index/unbounded-copy
    rules. Scoped to stores into named arrays whose size is visible in
    the unit being linted — copies through pointer parameters are the
    callee's business, which keeps the linter's verdict aligned with "the
    overflowing store retires in this image". Best-effort at the AST
    level (pointer writes are not modelled as havoc); the sound interval
    analysis over compiled code is {!Static_an.Absint}. *)

type lint = {
  l_func : string;  (** enclosing function *)
  l_rule : string;  (** {!lint_rule_proven} or {!lint_rule_possible} *)
  l_msg : string;
}

val lint_rule_proven : string
(** ["proven-oob-write"]: a store whose index interval is provably
    outside the visible fixed-size array — every execution reaching the
    store overflows. *)

val lint_rule_possible : string
(** ["possible-oob-write"]: a store of memory-derived data whose index
    interval straddles the array bound — some abstract executions
    overflow (e.g. a copy loop whose guard never reins the index in). *)

val lint_to_string : lint -> string

val lint_prog : Ast.program -> lint list
(** Lint a parsed program (no sema required — the analysis runs on the
    untyped AST, so even units that would fail later stages can be
    linted). Returns findings in source order. *)
