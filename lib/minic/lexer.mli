(** Hand-written lexer for MiniC. *)

type token =
  | INT_KW | CHAR_KW | VOID_KW | STRUCT_KW
  | IF | ELSE | WHILE | FOR | RETURN | BREAK | CONTINUE | SIZEOF
  | IDENT of string
  | NUM of int
  | STRING of string
  | CHARLIT of char
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | SHL_T | SHR_T
  | BANG | ANDAND | OROR
  | ASSIGN | EQ_T | NE_T | LT_T | LE_T | GT_T | GE_T
  | DOT | ARROW_T | QUESTION | COLON
  | EOF

exception Lex_error of string * int  (** message, line *)

val tokenize : string -> (token * int) list
(** Tokenize [src]; returns tokens paired with their line numbers, ending
    with [EOF]. Supports line ([//]) and block comments, decimal and hex
    integers, and the usual C escapes in string/char literals. *)
