(** Abstract syntax of MiniC, the small unsafe C dialect the victim servers
    are written in.

    The language is deliberately faithful to the hazards of C: no bounds
    checks, pointer arithmetic, NUL-terminated strings, manual malloc/free,
    and function pointers — everything the paper's four vulnerability
    classes need in order to exist. *)

type ty =
  | Tvoid
  | Tint   (** 32-bit signed word *)
  | Tchar  (** 8-bit byte *)
  | Tptr of ty
  | Tarray of ty * int
  | Tstruct of string
  | Tfunptr  (** pointer to function; calls through it are unchecked *)

type unop =
  | Neg       (** -e *)
  | Lnot      (** !e *)
  | Bnot      (** ~e *)
  | Addr_of   (** &e *)
  | Deref     (** *e *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** short-circuit *)

type expr =
  | Num of int
  | Chr of char
  | Str of string             (** string literal; decays to [char *] *)
  | Var of string
  | Un of unop * expr
  | Bin of binop * expr * expr
  | Assign of expr * expr     (** lvalue = rvalue *)
  | Call of string * expr list
  | Call_ptr of expr * expr list  (** call through a function pointer *)
  | Index of expr * expr      (** e1[e2] *)
  | Field of expr * string    (** e.f — [e] must be an lvalue of struct type *)
  | Arrow of expr * string    (** e->f *)
  | Cast of ty * expr
  | Sizeof of ty
  | Cond of expr * expr * expr  (** e1 ? e2 : e3 *)

type stmt =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type func = {
  f_name : string;
  f_ret : ty;
  f_params : (ty * string) list;
  f_body : stmt list;
}

type struct_def = {
  s_name : string;
  s_fields : (ty * string) list;
}

type global =
  | Gfunc of func
  | Gvar of ty * string * expr option
  | Gstruct of struct_def

type program = global list

val ty_to_string : ty -> string
