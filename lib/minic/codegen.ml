(** Code generation from the typed AST to relocatable VM units.

    Conventions (what makes the stack smashable):
    - arguments are pushed right-to-left; [Call] pushes the return address;
    - prologue: [push fp; mov fp, sp; sub sp, frame_size], so for a frame:
      locals at [fp-frame..fp), saved fp at [fp], return address at [fp+4],
      arguments from [fp+8] — a local buffer that overflows upward reaches
      the saved frame pointer and then the return address;
    - results in [r0]; all registers are caller-saved scratch. *)

open Sema

(* One ctx is threaded through the whole translation unit; its reversed
   item accumulator is shared by every function and reversed once at the
   end, instead of per-function reverse-and-concatenate passes. *)
type ctx = {
  mutable items : Vm.Asm.item list;  (** reversed *)
  mutable label_count : int;  (** reset per function to keep names stable *)
  mutable fname : string;
  mutable break_labels : string list;
  mutable continue_labels : string list;
}

let emit ctx i = ctx.items <- Vm.Asm.Ins i :: ctx.items
let emit_label ctx l = ctx.items <- Vm.Asm.Label l :: ctx.items

let fresh_label ctx stem =
  let n = ctx.label_count in
  ctx.label_count <- n + 1;
  Printf.sprintf ".L%s_%s%d" ctx.fname stem n

let is_byte_ty = function Ast.Tchar -> true | _ -> false

open Vm.Isa

(* Load the address of an lvalue into [r0]. *)
let rec gen_lval_addr ctx (lv : tlval) =
  match lv with
  | Lvar (Loc_frame off, _) ->
    emit ctx (Mov (R0, Reg FP));
    emit ctx (Bin (Add, R0, Imm off))
  | Lvar (Loc_global sym, _) -> emit ctx (Mov (R0, Sym sym))
  | Lvar (Loc_func sym, _) -> emit ctx (Mov (R0, Sym sym))
  | Lmem (addr, _) -> gen_expr ctx addr

(* Evaluate an expression into [r0], preserving the stack balance. *)
and gen_expr ctx (e : texpr) =
  match e.node with
  | Tnum n -> emit ctx (Mov (R0, Imm n))
  | Tstr sym -> emit ctx (Mov (R0, Sym sym))
  | Tfun_addr f -> emit ctx (Mov (R0, Sym f))
  | Taddr lv -> gen_lval_addr ctx lv
  | Tload lv -> (
    match lv with
    | Lvar (Loc_frame off, ty) ->
      if is_byte_ty ty then emit ctx (Loadb (R0, FP, off))
      else emit ctx (Load (R0, FP, off))
    | Lvar (Loc_global sym, ty) ->
      emit ctx (Mov (R0, Sym sym));
      if is_byte_ty ty then emit ctx (Loadb (R0, R0, 0))
      else emit ctx (Load (R0, R0, 0))
    | Lvar (Loc_func sym, _) -> emit ctx (Mov (R0, Sym sym))
    | Lmem (addr, ty) ->
      gen_expr ctx addr;
      if is_byte_ty ty then emit ctx (Loadb (R0, R0, 0))
      else emit ctx (Load (R0, R0, 0)))
  | Tassign (lv, rhs) -> (
    match lv with
    | Lvar (Loc_frame off, ty) ->
      gen_expr ctx rhs;
      if is_byte_ty ty then emit ctx (Storeb (FP, off, R0))
      else emit ctx (Store (FP, off, R0))
    | Lvar (Loc_global sym, ty) ->
      gen_expr ctx rhs;
      emit ctx (Mov (R1, Sym sym));
      if is_byte_ty ty then emit ctx (Storeb (R1, 0, R0))
      else emit ctx (Store (R1, 0, R0))
    | Lvar (Loc_func _, _) -> invalid_arg "assign to function"
    | Lmem (addr, ty) ->
      gen_expr ctx addr;
      emit ctx (Push (Reg R0));
      gen_expr ctx rhs;
      emit ctx (Pop R1);
      if is_byte_ty ty then emit ctx (Storeb (R1, 0, R0))
      else emit ctx (Store (R1, 0, R0)))
  | Tun (op, inner) -> (
    gen_expr ctx inner;
    match op with
    | Ast.Neg -> emit ctx (Neg R0)
    | Ast.Bnot -> emit ctx (Not R0)
    | Ast.Lnot ->
      let l = fresh_label ctx "not" in
      emit ctx (Cmp (R0, Imm 0));
      emit ctx (Mov (R0, Imm 1));
      emit ctx (Jcc (Eq, Lbl l));
      emit ctx (Mov (R0, Imm 0));
      emit_label ctx l
    | Ast.Addr_of | Ast.Deref -> assert false (* resolved in sema *))
  | Tbin (Ast.Land, e1, e2) ->
    let l_false = fresh_label ctx "andF" in
    let l_end = fresh_label ctx "andE" in
    gen_expr ctx e1;
    emit ctx (Cmp (R0, Imm 0));
    emit ctx (Jcc (Eq, Lbl l_false));
    gen_expr ctx e2;
    emit ctx (Cmp (R0, Imm 0));
    emit ctx (Jcc (Eq, Lbl l_false));
    emit ctx (Mov (R0, Imm 1));
    emit ctx (Jmp (Lbl l_end));
    emit_label ctx l_false;
    emit ctx (Mov (R0, Imm 0));
    emit_label ctx l_end
  | Tbin (Ast.Lor, e1, e2) ->
    let l_true = fresh_label ctx "orT" in
    let l_end = fresh_label ctx "orE" in
    gen_expr ctx e1;
    emit ctx (Cmp (R0, Imm 0));
    emit ctx (Jcc (Ne, Lbl l_true));
    gen_expr ctx e2;
    emit ctx (Cmp (R0, Imm 0));
    emit ctx (Jcc (Ne, Lbl l_true));
    emit ctx (Mov (R0, Imm 0));
    emit ctx (Jmp (Lbl l_end));
    emit_label ctx l_true;
    emit ctx (Mov (R0, Imm 1));
    emit_label ctx l_end
  | Tbin (op, e1, e2) -> (
    gen_expr ctx e1;
    emit ctx (Push (Reg R0));
    gen_expr ctx e2;
    emit ctx (Pop R1);
    (* r1 = e1, r0 = e2 *)
    let arith b =
      emit ctx (Bin (b, R1, Reg R0));
      emit ctx (Mov (R0, Reg R1))
    in
    let compare c =
      let l = fresh_label ctx "cmp" in
      emit ctx (Cmp (R1, Reg R0));
      emit ctx (Mov (R0, Imm 1));
      emit ctx (Jcc (c, Lbl l));
      emit ctx (Mov (R0, Imm 0));
      emit_label ctx l
    in
    match op with
    | Ast.Add -> arith Add
    | Ast.Sub -> arith Sub
    | Ast.Mul -> arith Mul
    | Ast.Div -> arith Div
    | Ast.Mod -> arith Mod
    | Ast.Band -> arith And
    | Ast.Bor -> arith Or
    | Ast.Bxor -> arith Xor
    | Ast.Shl -> arith Shl
    | Ast.Shr -> arith Shr
    | Ast.Eq -> compare Eq
    | Ast.Ne -> compare Ne
    | Ast.Lt -> compare Lt
    | Ast.Le -> compare Le
    | Ast.Gt -> compare Gt
    | Ast.Ge -> compare Ge
    | Ast.Land | Ast.Lor -> assert false)
  | Tcond (c, a, b) ->
    let l_else = fresh_label ctx "celse" in
    let l_end = fresh_label ctx "cend" in
    gen_expr ctx c;
    emit ctx (Cmp (R0, Imm 0));
    emit ctx (Jcc (Eq, Lbl l_else));
    gen_expr ctx a;
    emit ctx (Jmp (Lbl l_end));
    emit_label ctx l_else;
    gen_expr ctx b;
    emit_label ctx l_end
  | Tcall (name, args) when Sema.is_intrinsic name ->
    gen_intrinsic ctx name args
  | Tcall (name, args) ->
    (* Push right-to-left so arg0 ends nearest the frame. *)
    List.iter
      (fun a ->
        gen_expr ctx a;
        emit ctx (Push (Reg R0)))
      (List.rev args);
    emit ctx (Call (Lbl name));
    if args <> [] then emit ctx (Bin (Add, SP, Imm (4 * List.length args)))
  | Tcall_ptr (f, args) ->
    List.iter
      (fun a ->
        gen_expr ctx a;
        emit ctx (Push (Reg R0)))
      (List.rev args);
    gen_expr ctx f;
    emit ctx (Mov (R4, Reg R0));
    emit ctx (CallInd R4);
    if args <> [] then emit ctx (Bin (Add, SP, Imm (4 * List.length args)))

and gen_intrinsic ctx name args =
  let sysno =
    match name with
    | "_exit" -> Vm.Sysno.sys_exit
    | "_recv" -> Vm.Sysno.sys_recv
    | "_send" -> Vm.Sysno.sys_send
    | "_sys_malloc" -> Vm.Sysno.sys_malloc
    | "_sys_free" -> Vm.Sysno.sys_free
    | "_log" -> Vm.Sysno.sys_log
    | "_exec" -> Vm.Sysno.sys_exec
    | "_random" -> Vm.Sysno.sys_random
    | "_time" -> Vm.Sysno.sys_time
    | _ -> invalid_arg ("unknown intrinsic " ^ name)
  in
  (* Evaluate args left-to-right onto the stack, then pop into r(n-1)..r0. *)
  List.iter
    (fun a ->
      gen_expr ctx a;
      emit ctx (Push (Reg R0)))
    args;
  let arg_regs = [ R0; R1; R2; R3 ] in
  List.iteri
    (fun i _ -> emit ctx (Pop (List.nth arg_regs (List.length args - 1 - i))))
    args;
  emit ctx (Syscall sysno)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec gen_stmt ctx ret_label (s : tstmt) =
  match s with
  | TSexpr e -> gen_expr ctx e
  | TSblock b -> List.iter (gen_stmt ctx ret_label) b
  | TSif (c, t, e) ->
    let l_else = fresh_label ctx "else" in
    let l_end = fresh_label ctx "endif" in
    gen_expr ctx c;
    emit ctx (Cmp (R0, Imm 0));
    emit ctx (Jcc (Eq, Lbl l_else));
    List.iter (gen_stmt ctx ret_label) t;
    emit ctx (Jmp (Lbl l_end));
    emit_label ctx l_else;
    List.iter (gen_stmt ctx ret_label) e;
    emit_label ctx l_end
  | TSwhile (c, body) ->
    let l_top = fresh_label ctx "wtop" in
    let l_end = fresh_label ctx "wend" in
    ctx.break_labels <- l_end :: ctx.break_labels;
    ctx.continue_labels <- l_top :: ctx.continue_labels;
    emit_label ctx l_top;
    gen_expr ctx c;
    emit ctx (Cmp (R0, Imm 0));
    emit ctx (Jcc (Eq, Lbl l_end));
    List.iter (gen_stmt ctx ret_label) body;
    emit ctx (Jmp (Lbl l_top));
    emit_label ctx l_end;
    ctx.break_labels <- List.tl ctx.break_labels;
    ctx.continue_labels <- List.tl ctx.continue_labels
  | TSfor (init, cond, step, body) ->
    let l_top = fresh_label ctx "ftop" in
    let l_step = fresh_label ctx "fstep" in
    let l_end = fresh_label ctx "fend" in
    Option.iter (gen_stmt ctx ret_label) init;
    ctx.break_labels <- l_end :: ctx.break_labels;
    ctx.continue_labels <- l_step :: ctx.continue_labels;
    emit_label ctx l_top;
    (match cond with
    | Some c ->
      gen_expr ctx c;
      emit ctx (Cmp (R0, Imm 0));
      emit ctx (Jcc (Eq, Lbl l_end))
    | None -> ());
    List.iter (gen_stmt ctx ret_label) body;
    emit_label ctx l_step;
    Option.iter (gen_expr ctx) step;
    emit ctx (Jmp (Lbl l_top));
    emit_label ctx l_end;
    ctx.break_labels <- List.tl ctx.break_labels;
    ctx.continue_labels <- List.tl ctx.continue_labels
  | TSreturn e ->
    Option.iter (gen_expr ctx) e;
    emit ctx (Jmp (Lbl ret_label))
  | TSbreak -> (
    match ctx.break_labels with
    | l :: _ -> emit ctx (Jmp (Lbl l))
    | [] -> invalid_arg "break outside loop")
  | TScontinue -> (
    match ctx.continue_labels with
    | l :: _ -> emit ctx (Jmp (Lbl l))
    | [] -> invalid_arg "continue outside loop")

(* Emit one function into the shared accumulator. Labels embed the
   function name and restart their counter here, so the names generated
   are identical to compiling the function in isolation. *)
let gen_func ctx (f : tfunc) : unit =
  ctx.fname <- f.tf_name;
  ctx.label_count <- 0;
  ctx.break_labels <- [];
  ctx.continue_labels <- [];
  let ret_label = Printf.sprintf ".Lret_%s" f.tf_name in
  emit_label ctx f.tf_name;
  emit ctx (Push (Reg FP));
  emit ctx (Mov (FP, Reg SP));
  if f.tf_frame_size > 0 then emit ctx (Bin (Sub, SP, Imm f.tf_frame_size));
  List.iter (gen_stmt ctx ret_label) f.tf_body;
  emit_label ctx ret_label;
  emit ctx (Mov (SP, Reg FP));
  emit ctx (Pop FP);
  emit ctx Ret

(** The result of compiling one translation unit. *)
type compiled = {
  unit_ : Vm.Asm.unit_;
  data : Sema.tdata list;
  funcs : string list;  (** names of defined functions, for extern linking *)
}

(** Generate code for an analyzed program. *)
let gen ~name (tp : tprog) : compiled =
  let ctx =
    { items = []; label_count = 0; fname = "";
      break_labels = []; continue_labels = [] }
  in
  List.iter (gen_func ctx) tp.tp_funcs;
  let items = List.rev ctx.items in
  {
    unit_ = Vm.Asm.make_unit name items;
    data = tp.tp_data;
    funcs = List.map (fun f -> f.tf_name) tp.tp_funcs;
  }
