(** Code generation from the typed AST to relocatable VM units.

    Conventions (what makes the stack smashable):
    - arguments are pushed right-to-left; [Call] pushes the return address;
    - prologue: [push fp; mov fp, sp; sub sp, frame_size], so for a frame:
      locals at [fp-frame..fp), saved fp at [fp], return address at [fp+4],
      arguments from [fp+8] — a local buffer that overflows upward reaches
      the saved frame pointer and then the return address;
    - results in [r0]; all registers are caller-saved scratch. *)

(** The result of compiling one translation unit. *)
type compiled = {
  unit_ : Vm.Asm.unit_;
  data : Sema.tdata list;
  funcs : string list;  (** names of defined functions, for extern linking *)
}

val gen : name:string -> Sema.tprog -> compiled
(** Generate code for an analyzed program. *)
