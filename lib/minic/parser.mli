(** Recursive-descent parser for MiniC. *)

exception Parse_error of string * int  (** message, line *)

val parse : string -> Ast.program
(** Parse a complete MiniC translation unit. Raises {!Parse_error} or
    {!Lexer.Lex_error}. *)
