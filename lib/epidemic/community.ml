(** Community-defense experiments: the parameter sweeps behind Figures 6–8
    and the end-to-end response-time argument of Section 6.3. *)

(** The deployment ratios on the x axis of the paper's figures. *)
let fig6_alphas = [ 0.1; 0.05; 0.01; 0.005; 0.001; 0.0005; 0.0001 ]
let fig78_alphas = [ 0.5; 0.1; 0.05; 0.01; 0.005; 0.001; 0.0005; 0.0001 ]

(** The response times γ (seconds) plotted as separate lines. *)
let gammas = [ 5.; 10.; 20.; 30.; 50.; 100. ]

type series = {
  s_gamma : float;
  s_points : (float * float) list;  (** (deployment ratio, infection ratio) *)
}

type figure = {
  f_name : string;
  f_beta : float;
  f_rho : float;
  f_series : series list;
}

let sweep ~name ~beta ~rho ~alphas =
  let base = { Si.beta; rho; alpha = 0.; n = 100_000.; i0 = 1. } in
  {
    f_name = name;
    f_beta = beta;
    f_rho = rho;
    f_series =
      List.map
        (fun gamma ->
          { s_gamma = gamma; s_points = Si.sweep_alpha base ~gamma ~alphas })
        gammas;
  }

(** Figure 6: Sweeper against Slammer (β = 0.1, no proactive protection). *)
let figure6 () = sweep ~name:"fig6-slammer" ~beta:0.1 ~rho:1.0 ~alphas:fig6_alphas

(** Figure 7: hit-list worm (β = 1000) with proactive ASLR (ρ = 2⁻¹²). *)
let figure7 () =
  sweep ~name:"fig7-hitlist-1000" ~beta:1000. ~rho:Si.rho_aslr ~alphas:fig78_alphas

(** Figure 8: faster hit-list worm (β = 4000), same protection. *)
let figure8 () =
  sweep ~name:"fig8-hitlist-4000" ~beta:4000. ~rho:Si.rho_aslr ~alphas:fig78_alphas

(** The §6.3 claim: with γ = detection+analysis (≈2 s) + dissemination
    (≈3 s) = 5 s, even β = 4000 hit-list worms are contained. Returns
    (beta, infection ratio at γ=5, contained?). *)
let hitlist_response_summary ?(alpha = 0.0001) () =
  List.map
    (fun beta ->
      let p = { Si.beta; rho = Si.rho_aslr; alpha; n = 100_000.; i0 = 1. } in
      let r = Si.infection_ratio p ~gamma:5. in
      (beta, r, r < 0.05))
    [ 1000.; 2000.; 4000. ]

(** Cross-validation of the ODE against the stochastic simulator at a few
    sample points. Returns (alpha, gamma, ode ratio, simulated ratio). *)
let cross_validate ?(seed = 11) ?(beta = 1000.) ?(rho = Si.rho_aslr) () =
  List.map
    (fun (alpha, gamma) ->
      let ode =
        Si.infection_ratio { Si.beta; rho; alpha; n = 100_000.; i0 = 1. } ~gamma
      in
      let sim =
        Discrete.mean_ratio ~runs:3
          {
            Discrete.n = 100_000;
            producers = int_of_float (alpha *. 100_000.);
            beta;
            rho;
            gamma;
            dt = 0.002;
            t_max = 2_000.;
            seed;
          }
      in
      (alpha, gamma, ode, sim))
    [ (0.01, 5.); (0.001, 10.); (0.0001, 100.) ]

(** {1 Contact graphs}

    Pure structural helpers for the topology-aware host-to-shard placement
    of the mechanical community ({!Sweeper.Defense.Sharded}): which hosts a
    given host talks to under each spread model. Kept dependency-free so
    the epidemic layer stays a pure model. *)

(** [subnet_of ~subnet_size host] — the subnet index a host belongs to
    under the /k-style partition used by [Osim.Cluster.Subnet]. *)
let subnet_of ~subnet_size host =
  if subnet_size <= 0 then invalid_arg "Community.subnet_of: subnet_size";
  host / subnet_size

(** [subnet_members ~n ~subnet_size s] — the hosts of subnet [s] among
    [n] hosts, ascending. A subnet-preferential worm scans these first. *)
let subnet_members ~n ~subnet_size s =
  if subnet_size <= 0 then invalid_arg "Community.subnet_members: subnet_size";
  let lo = s * subnet_size in
  let hi = min n (lo + subnet_size) in
  let rec go i acc = if i < lo then acc else go (i - 1) (i :: acc) in
  if hi <= lo then [] else go (hi - 1) []

(** [overlay_neighbors ~n ~degree host] — the peer-to-peer overlay used by
    [Osim.Cluster.Overlay]: a ring (successor) plus multiplicative-stride
    chords, deduplicated and sorted. Deterministic, degree ≈ [degree],
    connected for any [n >= 2] via the ring edge. *)
let overlay_neighbors ~n ~degree host =
  if n <= 1 then []
  else begin
    let degree = max 1 degree in
    let tbl = Hashtbl.create (degree * 2) in
    let add p = if p <> host then Hashtbl.replace tbl p () in
    add ((host + 1) mod n);
    let stride = ref 1 in
    for k = 1 to degree - 1 do
      (* doubling strides give log-diameter chords, Chord-style *)
      stride := !stride * 2;
      add ((host + !stride + (k * 7)) mod n)
    done;
    Hashtbl.fold (fun p () acc -> p :: acc) tbl []
    |> List.sort compare
  end
