(** Community-defense experiments: the parameter sweeps behind the paper's
    Figures 6–8 and the Section 6.3 response-time argument. *)

val fig6_alphas : float list
val fig78_alphas : float list

val gammas : float list
(** The response times (seconds) plotted as separate lines. *)

type series = {
  s_gamma : float;
  s_points : (float * float) list;  (** (deployment ratio, infection ratio) *)
}

type figure = {
  f_name : string;
  f_beta : float;
  f_rho : float;
  f_series : series list;
}

val sweep :
  name:string -> beta:float -> rho:float -> alphas:float list -> figure

val figure6 : unit -> figure
(** Sweeper against Slammer (β = 0.1, no proactive protection). *)

val figure7 : unit -> figure
(** Hit-list worm (β = 1000) with proactive ASLR (ρ = 2⁻¹²). *)

val figure8 : unit -> figure
(** Faster hit-list worm (β = 4000), same protection. *)

val hitlist_response_summary :
  ?alpha:float -> unit -> (float * float * bool) list
(** The §6.3 claim: with γ = 5 s, hit-list worms are contained. Returns
    (β, infection ratio at γ=5, contained?). *)

val cross_validate :
  ?seed:int ->
  ?beta:float ->
  ?rho:float ->
  unit ->
  (float * float * float * float) list
(** ODE vs the stochastic simulator at sample points: (α, γ, ODE ratio,
    simulated ratio). *)

(** {1 Contact graphs} *)

val subnet_of : subnet_size:int -> int -> int
(** The subnet index of a host under a fixed-size subnet partition. *)

val subnet_members : n:int -> subnet_size:int -> int -> int list
(** Hosts of one subnet among [n], ascending; empty past the last. *)

val overlay_neighbors : n:int -> degree:int -> int -> int list
(** Deterministic degree-[degree] P2P overlay (ring + doubling chords),
    the contact graph behind [Osim.Cluster.Overlay]; sorted, no self. *)
