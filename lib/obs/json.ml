(** Minimal JSON: just enough structure for metrics snapshots and Chrome
    trace export, plus a parser so tests (and `sweeperctl trace --check`)
    can validate emitted documents without external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats print with 12 significant digits: enough for microsecond
   timestamps over hours of tracing, without the noise of %.17g. *)
let add_float buf f =
  if Float.is_nan f || Float.is_integer f then
    Buffer.add_string buf
      (Printf.sprintf "%.1f" (if Float.is_nan f then 0. else f))
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at %d: %s" pos msg))

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail !pos ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let h = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    h
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail !pos "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
          advance ();
          let h = hex4 () in
          (* Enough for the escapes we emit ourselves (control bytes). *)
          Buffer.add_char buf (if h < 256 then Char.chr h else '?');
          go ()
        | _ -> fail !pos "bad escape")
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail start ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail start ("bad number " ^ tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail !pos "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail !pos "expected ',' or ']'"
        in
        List (elements [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function List l -> Some l | _ -> None
