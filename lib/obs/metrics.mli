(** Metrics registry: named counters, gauges, and histograms with
    JSON-snapshot and Prometheus-text exposition.

    Instruments ([counter], [gauge], [histogram]) are plain mutable cells;
    updating one never touches the registry, so cold-path instrumentation
    costs a single store. Callback gauges are polled only at snapshot time.

    Closures registered via [gauge_fn] keep whatever they capture alive for
    the registry's lifetime; per-process gauges belong in a per-run
    [create ()] registry, not in {!default}.

    Registration and snapshotting are guarded by a per-registry mutex, so
    a registry may be shared across OCaml 5 domains. Instrument updates
    are deliberately unlocked single stores: in the sharded community each
    shard owns a private registry, and cross-shard aggregation uses
    {!merge_samples} on immutable snapshots taken at cluster barriers. *)

type counter
type gauge
type histogram
type t

val create : unit -> t
val default : t
val clear : t -> unit

(** {1 Instruments} *)

val make_counter : unit -> counter
(** An unregistered counter (attach later with {!attach_counter}). *)

val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : histogram -> float -> unit

(** {1 Registration} *)

val counter :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> string ->
  counter
(** Get-or-create by (name, labels). *)

val gauge :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> string ->
  gauge

val histogram :
  ?registry:t -> ?buckets:float array -> ?help:string ->
  ?labels:(string * string) list -> string -> histogram

val gauge_fn :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> string ->
  (unit -> float) -> unit
(** Register (replacing any previous binding) a gauge polled at snapshot
    time. *)

val attach_counter :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> string ->
  counter -> unit
(** Register an existing counter cell under a name, replacing any previous
    binding for (name, labels). *)

(** {1 Snapshots} *)

type sample_value =
  | Sample_counter of int
  | Sample_gauge of float
  | Sample_histogram of (float * int) list * float * int
      (** cumulative (upper_bound, count) buckets, sum, total count *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_help : string;
  s_value : sample_value;
}

val snapshot : t -> sample list
(** Deterministic order: sorted by name, then labels. *)

val merge_samples : sample list list -> sample list
(** Merge per-shard snapshots into one community-level sample list:
    samples sharing (name, labels) are combined — counters and gauges
    sum, histograms add bucket-wise when their bounds agree (first
    operand wins otherwise). Pure; result is in {!snapshot} order. *)

val to_json : t -> Json.t
val to_prometheus : t -> string
