(** Span tracer: begin/end spans stamped with both the wall clock and the
    simulation's virtual clock, exportable as Chrome trace-event JSON
    (openable in Perfetto / chrome://tracing).

    Tracing is global and off by default. When disabled, [begin_span]
    returns a shared dead span and every other entry point is a single
    branch — the VM fast path never calls into this module at all.

    The recorder is domain-safe: every buffer mutation takes a single
    mutex, so sharded runs ({!Osim.Cluster}) may emit spans from many
    domains into one merged trace. *)

type span

type event = {
  ev_name : string;
  ev_cat : string;
  ev_instant : bool;
  ev_ph : string;  (** Chrome phase: ["X"], ["i"], ["s"] (flow), ["f"] *)
  ev_flow_id : int;  (** 0 unless a flow event *)
  ev_pid : int;  (** host/server id *)
  ev_tid : int;
  ev_ts_us : float;  (** wall time relative to trace start, microseconds *)
  ev_dur_us : float;  (** 0 for instants *)
  ev_vts_ms : float;  (** virtual timestamp at begin; nan when absent *)
  ev_vts_end_ms : float;
      (** virtual timestamp at end; nan when absent. Usually ≥ the begin
          stamp, but a span crossing a checkpoint rollback (recovery)
          legitimately ends {e earlier} in virtual time than it began. *)
  ev_args : (string * string) list;
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val clear : unit -> unit
(** Drop all recorded events and rebase the trace clock. *)

val begin_span :
  ?cat:string -> ?pid:int -> ?tid:int -> ?vts_ms:float ->
  ?args:(string * string) list -> string -> span

val end_span : ?vts_ms:float -> ?args:(string * string) list -> span -> unit
(** Records the completed span. A span begun while tracing was disabled is
    dead and is ignored. *)

val instant :
  ?cat:string -> ?pid:int -> ?tid:int -> ?vts_ms:float ->
  ?args:(string * string) list -> string -> unit

val flow_start :
  ?cat:string -> ?pid:int -> ?tid:int -> ?vts_ms:float ->
  ?args:(string * string) list -> id:int -> string -> unit
(** Open one end of a flow arrow (Chrome phase ["s"]). A later
    {!flow_finish} with the same [id] (and name/cat) draws the arrow
    between the duration spans enclosing each endpoint — the
    sender→receiver link in message-passing traces. *)

val flow_finish :
  ?cat:string -> ?pid:int -> ?tid:int -> ?vts_ms:float ->
  ?args:(string * string) list -> id:int -> string -> unit

val with_span :
  ?cat:string -> ?pid:int -> ?tid:int -> ?vts_ms:float ->
  ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

val timed :
  ?cat:string -> ?pid:int -> ?tid:int -> ?vts_ms:float ->
  ?args:(string * string) list -> string -> (unit -> 'a) -> 'a * float
(** [timed name f] runs [f] and returns its result with the elapsed wall
    time in milliseconds. The measurement happens whether or not tracing is
    enabled; a span is recorded only when it is. *)

val events : unit -> event list
(** In emission (completion) order. *)

val event_count : unit -> int
val to_chrome_json : unit -> string
val write : string -> unit
