(** VM flight recorder: a bounded ring of recently retired instructions
    with the syscall/net event each one raised, for post-mortem forensics.

    Built entirely on the VM's hook machinery: attaching installs a single
    global post-hook, which routes execution through the instrumented slow
    path exactly like any other global hook. When no recorder is attached
    the uninstrumented fast path is untouched — recording off costs
    nothing. *)

type record = {
  r_pc : int;
  r_icount : int;  (** instruction count after this instruction retired *)
  r_instr : Vm.Isa.instr;
  r_sys : Vm.Event.sys_io;
}

type t = {
  ring : record array;
  mutable next : int; (* next write slot *)
  mutable filled : int; (* total records written, saturating at capacity *)
  cpu : Vm.Cpu.t;
  mutable hook_id : Vm.Cpu.hook_id option;
}

let default_capacity = 256

let dummy =
  { r_pc = 0; r_icount = 0; r_instr = Vm.Isa.Halt; r_sys = Vm.Event.Io_none }

let attach ?(capacity = default_capacity) cpu =
  if capacity <= 0 then invalid_arg "Recorder.attach: capacity must be > 0";
  let t =
    { ring = Array.make capacity dummy; next = 0; filled = 0; cpu;
      hook_id = None }
  in
  let on_retire (e : Vm.Event.effect_) =
    t.ring.(t.next) <-
      { r_pc = e.Vm.Event.e_pc; r_icount = cpu.Vm.Cpu.icount;
        r_instr = e.Vm.Event.e_instr; r_sys = e.Vm.Event.e_sys };
    t.next <- (t.next + 1) mod capacity;
    if t.filled < capacity then t.filled <- t.filled + 1
  in
  t.hook_id <- Some (Vm.Cpu.add_post_hook cpu on_retire);
  t

let detach t =
  match t.hook_id with
  | None -> ()
  | Some id ->
    Vm.Cpu.remove_hook t.cpu id;
    t.hook_id <- None

let attached t = t.hook_id <> None
let capacity t = Array.length t.ring
let size t = t.filled

let records t =
  let cap = Array.length t.ring in
  let start = if t.filled < cap then 0 else t.next in
  List.init t.filled (fun i -> t.ring.((start + i) mod cap))

let sys_suffix = function
  | Vm.Event.Io_none -> ""
  | Vm.Event.Io_recv { buf; len; msg_id } ->
    Printf.sprintf " ; recv(buf=0x%x, len=%d, msg=%d)" buf len msg_id
  | Vm.Event.Io_send { buf; len } ->
    Printf.sprintf " ; send(buf=0x%x, len=%d)" buf len
  | Vm.Event.Io_alloc { ptr; size } ->
    Printf.sprintf " ; alloc(%d) = 0x%x" size ptr
  | Vm.Event.Io_free { ptr; status } ->
    Printf.sprintf " ; free(0x%x)%s" ptr
      (match status with
      | `Ok -> ""
      | `Double_free -> " DOUBLE FREE"
      | `Bad_pointer -> " BAD POINTER")
  | Vm.Event.Io_exec { cmd } -> Printf.sprintf " ; exec(%S)" cmd
  | Vm.Event.Io_exit code -> Printf.sprintf " ; exit(%d)" code
  | Vm.Event.Io_other s -> Printf.sprintf " ; %s" s

let dump ?images t =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "flight recorder: last %d instruction(s)\n" t.filled;
  List.iter
    (fun r ->
      Printf.bprintf buf "  [%8d] %-18s %s%s\n" r.r_icount
        (Vm.Disasm.addr_to_string ?images r.r_pc)
        (Vm.Disasm.instr_to_string r.r_instr)
        (sys_suffix r.r_sys))
    (records t);
  Buffer.contents buf
