(** Span tracer: begin/end spans stamped with both the wall clock and the
    simulation's virtual clock (milliseconds derived from instruction
    counts via [Osim.Server.instrs_per_ms]), exportable as Chrome
    trace-event JSON openable in Perfetto.

    Disabled is the default and costs one branch per call site: [begin_span]
    returns a shared dead span and [end_span]/[instant] return immediately.
    Nothing here is touched from the VM fast path at all. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_pid : int;
  sp_tid : int;
  sp_t0_us : float;
  sp_vts_ms : float; (* nan when absent *)
  sp_args : (string * string) list;
  sp_live : bool;
}

type event = {
  ev_name : string;
  ev_cat : string;
  ev_instant : bool;
  ev_ph : string; (* Chrome phase: "X", "i", "s" (flow start), "f" *)
  ev_flow_id : int; (* 0 unless a flow event *)
  ev_pid : int;
  ev_tid : int;
  ev_ts_us : float; (* relative to trace start *)
  ev_dur_us : float; (* 0 for instants *)
  ev_vts_ms : float; (* nan when absent *)
  ev_vts_end_ms : float; (* nan when absent *)
  ev_args : (string * string) list;
}

let enabled_flag = ref false
let base_us = ref 0.
let events_rev : event list ref = ref []
let n_events = ref 0
let enabled () = !enabled_flag
let now_us () = Unix.gettimeofday () *. 1e6

(* The recorder is shared global state; sharded runs emit spans from
   several domains at once, so every buffer mutation (and consistent
   read) takes this lock. The disabled path never touches it. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let clear () =
  locked (fun () ->
      events_rev := [];
      n_events := 0;
      base_us := now_us ())

let enable () =
  locked (fun () ->
      if not !enabled_flag then begin
        enabled_flag := true;
        if !base_us = 0. then base_us := now_us ()
      end)

let disable () = locked (fun () -> enabled_flag := false)

let dead_span =
  { sp_name = ""; sp_cat = ""; sp_pid = 0; sp_tid = 0; sp_t0_us = 0.;
    sp_vts_ms = Float.nan; sp_args = []; sp_live = false }

let push ev =
  locked (fun () ->
      events_rev := ev :: !events_rev;
      incr n_events)

let begin_span ?(cat = "sweeper") ?(pid = 0) ?(tid = 0) ?vts_ms
    ?(args = []) name =
  if not !enabled_flag then dead_span
  else
    { sp_name = name; sp_cat = cat; sp_pid = pid; sp_tid = tid;
      sp_t0_us = now_us ();
      sp_vts_ms = (match vts_ms with Some v -> v | None -> Float.nan);
      sp_args = args; sp_live = true }

let end_span ?vts_ms ?(args = []) sp =
  if sp.sp_live && !enabled_flag then
    push
      { ev_name = sp.sp_name; ev_cat = sp.sp_cat; ev_instant = false;
        ev_ph = "X"; ev_flow_id = 0;
        ev_pid = sp.sp_pid; ev_tid = sp.sp_tid;
        ev_ts_us = sp.sp_t0_us -. !base_us;
        ev_dur_us = Float.max 0. (now_us () -. sp.sp_t0_us);
        ev_vts_ms = sp.sp_vts_ms;
        ev_vts_end_ms = (match vts_ms with Some v -> v | None -> Float.nan);
        ev_args = sp.sp_args @ args }

let instant ?(cat = "sweeper") ?(pid = 0) ?(tid = 0) ?vts_ms ?(args = [])
    name =
  if !enabled_flag then
    push
      { ev_name = name; ev_cat = cat; ev_instant = true; ev_ph = "i";
        ev_flow_id = 0; ev_pid = pid;
        ev_tid = tid; ev_ts_us = now_us () -. !base_us; ev_dur_us = 0.;
        ev_vts_ms = (match vts_ms with Some v -> v | None -> Float.nan);
        ev_vts_end_ms = Float.nan; ev_args = args }

(* Flow events: a "s"/"f" pair sharing [id] draws an arrow between the
   duration spans enclosing each endpoint — the sender→receiver link in
   message-passing traces. *)
let flow_event ph ?(cat = "flow") ?(pid = 0) ?(tid = 0) ?vts_ms ?(args = [])
    ~id name =
  if !enabled_flag then
    push
      { ev_name = name; ev_cat = cat; ev_instant = false; ev_ph = ph;
        ev_flow_id = id; ev_pid = pid; ev_tid = tid;
        ev_ts_us = now_us () -. !base_us; ev_dur_us = 0.;
        ev_vts_ms = (match vts_ms with Some v -> v | None -> Float.nan);
        ev_vts_end_ms = Float.nan; ev_args = args }

let flow_start = flow_event "s"
let flow_finish = flow_event "f"

let with_span ?cat ?pid ?tid ?vts_ms ?args name f =
  let sp = begin_span ?cat ?pid ?tid ?vts_ms ?args name in
  Fun.protect ~finally:(fun () -> end_span sp) f

(* Wall-time a thunk in milliseconds, recording a span only when tracing is
   enabled. The measurement is taken unconditionally so callers (Stage.run)
   can use this as their single timing source. *)
let timed ?cat ?pid ?tid ?vts_ms ?args name f =
  if not !enabled_flag then begin
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  end
  else
    let sp = begin_span ?cat ?pid ?tid ?vts_ms ?args name in
    match f () with
    | r ->
      let dt_ms = (now_us () -. sp.sp_t0_us) /. 1000. in
      end_span sp;
      (r, dt_ms)
    | exception e ->
      end_span sp;
      raise e

let events () = locked (fun () -> List.rev !events_rev)
let event_count () = locked (fun () -> !n_events)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let event_json ev =
  let args =
    List.map (fun (k, v) -> (k, Json.Str v)) ev.ev_args
    @ (if Float.is_nan ev.ev_vts_ms then []
       else [ ("vts_ms", Json.Float ev.ev_vts_ms) ])
    @
    if Float.is_nan ev.ev_vts_end_ms then []
    else [ ("vts_end_ms", Json.Float ev.ev_vts_end_ms) ]
  in
  let phase_fields =
    match ev.ev_ph with
    | "i" -> [ ("s", Json.Str "t") ]
    | "s" -> [ ("id", Json.Int ev.ev_flow_id) ]
    | "f" -> [ ("id", Json.Int ev.ev_flow_id); ("bp", Json.Str "e") ]
    | _ -> [ ("dur", Json.Float ev.ev_dur_us) ]
  in
  Json.Obj
    ([ ("name", Json.Str ev.ev_name);
       ("cat", Json.Str ev.ev_cat);
       ("ph", Json.Str ev.ev_ph);
       ("ts", Json.Float ev.ev_ts_us);
     ]
    @ phase_fields
    @ [ ("pid", Json.Int ev.ev_pid);
        ("tid", Json.Int ev.ev_tid);
        ("args", Json.Obj args);
      ])

let to_chrome_json () =
  Json.to_string
    (Json.Obj
       [ ("traceEvents", Json.List (List.map event_json (events ())));
         ("displayTimeUnit", Json.Str "ms");
       ])

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))
