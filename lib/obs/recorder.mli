(** VM flight recorder: a bounded ring of recently retired instructions
    with the syscall/net event each raised, dumped by crash reports for
    post-mortem forensics.

    Attaching installs one global post-hook on the CPU, which steers
    execution through the instrumented slow path like any other global
    hook; with no recorder attached the uninstrumented fast path is
    untouched, so recording off costs nothing. *)

type record = {
  r_pc : int;
  r_icount : int;  (** instruction count after this instruction retired *)
  r_instr : Vm.Isa.instr;
  r_sys : Vm.Event.sys_io;
}

type t

val default_capacity : int

val attach : ?capacity:int -> Vm.Cpu.t -> t
(** @raise Invalid_argument when [capacity <= 0]. *)

val detach : t -> unit
val attached : t -> bool
val capacity : t -> int

val size : t -> int
(** Records currently held (≤ capacity). *)

val records : t -> record list
(** Oldest first; the last element is the most recently retired
    instruction. *)

val dump : ?images:Vm.Asm.image list -> t -> string
(** Human-readable ring dump, one line per record; [images] attributes pcs
    to symbols as in crash reports. *)
