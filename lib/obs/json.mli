(** Minimal JSON encoder/parser used by metrics snapshots, Chrome trace
    export, and the trace-validation tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

exception Parse_error of string

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

val parse : string -> (t, string) result

val member : string -> t -> t option
(** [member key j] is the value bound to [key] when [j] is an object. *)

val to_list : t -> t list option
