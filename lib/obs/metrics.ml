(** Metrics registry: named counters, gauges, and histograms with
    JSON-snapshot and Prometheus-text exposition.

    Counters and gauges are plain mutable cells so incrementing one from a
    cold path costs a single store; the registry is only consulted at
    registration and snapshot time. Callback gauges ([gauge_fn]) let
    subsystems expose internal state (ring occupancy, TLB counters) without
    pushing on every change — the closure is polled at snapshot time.

    Closures registered in a registry keep whatever they capture alive, so
    per-process gauges should go in a per-run registry (see
    [Osim.Server.create ?metrics]) rather than {!default}. *)

(** Registry structure (the hashtable of registered metrics) is guarded by
    a per-registry mutex, so get-or-create registration is safe from any
    domain — shard workers running on their own OCaml 5 domains hit
    {!default} through shared cold paths (pipeline stages, recoveries).
    Instrument {e updates} stay lock-free single stores: each shard owns
    its instruments, and cross-shard aggregation goes through
    {!merge_samples} on immutable snapshots at cluster barriers. *)

type counter = { mutable c_n : int }
type gauge = { mutable g_v : float }

type histogram = {
  h_limits : float array; (* ascending upper bounds, no +inf sentinel *)
  h_counts : int array; (* length = Array.length h_limits + 1 *)
  mutable h_sum : float;
  mutable h_count : int;
}

type value =
  | Counter of counter
  | Gauge of gauge
  | Gauge_fn of (unit -> float)
  | Histogram of histogram

type metric = {
  m_name : string;
  m_labels : (string * string) list;
  m_help : string;
  m_value : value;
}

type t = {
  tbl : (string * (string * string) list, metric) Hashtbl.t;
  lock : Mutex.t;
}

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }
let default = create ()

let locked r f =
  Mutex.lock r.lock;
  match f () with
  | v ->
    Mutex.unlock r.lock;
    v
  | exception e ->
    Mutex.unlock r.lock;
    raise e

let clear r = locked r (fun () -> Hashtbl.reset r.tbl)

(* ------------------------------------------------------------------ *)
(* Instrument primitives                                               *)
(* ------------------------------------------------------------------ *)

let make_counter () = { c_n = 0 }
let inc c = c.c_n <- c.c_n + 1
let add c n = c.c_n <- c.c_n + n
let counter_value c = c.c_n
let make_gauge () = { g_v = 0. }
let set g v = g.g_v <- v
let gauge_value g = g.g_v

let default_buckets =
  [| 0.1; 0.5; 1.; 5.; 10.; 50.; 100.; 500.; 1000.; 5000. |]

let make_histogram ?(buckets = default_buckets) () =
  let limits = Array.copy buckets in
  Array.sort compare limits;
  { h_limits = limits; h_counts = Array.make (Array.length limits + 1) 0;
    h_sum = 0.; h_count = 0 }

let observe h v =
  let n = Array.length h.h_limits in
  let rec slot i = if i >= n || v <= h.h_limits.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let register r ?(help = "") ?(labels = []) name value =
  let labels = norm_labels labels in
  locked r (fun () ->
      Hashtbl.replace r.tbl (name, labels)
        { m_name = name; m_labels = labels; m_help = help; m_value = value })

let find_or r ?(help = "") ?(labels = []) name make =
  let labels = norm_labels labels in
  let key = (name, labels) in
  locked r (fun () ->
      match Hashtbl.find_opt r.tbl key with
      | Some m -> m.m_value
      | None ->
        let v = make () in
        Hashtbl.replace r.tbl key
          { m_name = name; m_labels = labels; m_help = help; m_value = v };
        v)

let counter ?(registry = default) ?help ?labels name =
  match
    find_or registry ?help ?labels name (fun () -> Counter (make_counter ()))
  with
  | Counter c -> c
  | _ -> invalid_arg (name ^ ": registered as a non-counter")

let gauge ?(registry = default) ?help ?labels name =
  match
    find_or registry ?help ?labels name (fun () -> Gauge (make_gauge ()))
  with
  | Gauge g -> g
  | _ -> invalid_arg (name ^ ": registered as a non-gauge")

let histogram ?(registry = default) ?buckets ?help ?labels name =
  match
    find_or registry ?help ?labels name (fun () ->
        Histogram (make_histogram ?buckets ()))
  with
  | Histogram h -> h
  | _ -> invalid_arg (name ^ ": registered as a non-histogram")

let gauge_fn ?(registry = default) ?help ?labels name f =
  register registry ?help ?labels name (Gauge_fn f)

let attach_counter ?(registry = default) ?help ?labels name c =
  register registry ?help ?labels name (Counter c)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type sample_value =
  | Sample_counter of int
  | Sample_gauge of float
  | Sample_histogram of (float * int) list * float * int
      (** cumulative (upper_bound, count) buckets, sum, total count *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_help : string;
  s_value : sample_value;
}

let sample_of m =
  let v =
    match m.m_value with
    | Counter c -> Sample_counter c.c_n
    | Gauge g -> Sample_gauge g.g_v
    | Gauge_fn f -> Sample_gauge (f ())
    | Histogram h ->
      let cum = ref 0 and buckets = ref [] in
      Array.iteri
        (fun i limit ->
          cum := !cum + h.h_counts.(i);
          buckets := (limit, !cum) :: !buckets)
        h.h_limits;
      Sample_histogram (List.rev !buckets, h.h_sum, h.h_count)
  in
  { s_name = m.m_name; s_labels = m.m_labels; s_help = m.m_help; s_value = v }

let sample_order a b =
  match compare a.s_name b.s_name with
  | 0 -> compare a.s_labels b.s_labels
  | c -> c

let snapshot r =
  locked r (fun () -> Hashtbl.fold (fun _ m acc -> sample_of m :: acc) r.tbl [])
  |> List.sort sample_order

(* ------------------------------------------------------------------ *)
(* Cross-registry merging                                              *)
(* ------------------------------------------------------------------ *)

(* Pointwise merge of two sample values of the same (name, labels):
   counters and gauges add (the per-shard registries carry population
   totals, so sums are the community-level reading), histograms add
   bucket-by-bucket when their bounds agree and otherwise keep the first
   operand (per-shard registries are built from the same schema, so
   mismatched bounds only arise from caller error). *)
let merge_values a b =
  match (a, b) with
  | Sample_counter x, Sample_counter y -> Sample_counter (x + y)
  | Sample_gauge x, Sample_gauge y -> Sample_gauge (x +. y)
  | Sample_histogram (ba, sa, ca), Sample_histogram (bb, sb, cb)
    when List.map fst ba = List.map fst bb ->
    Sample_histogram
      ( List.map2 (fun (le, x) (_, y) -> (le, x + y)) ba bb,
        sa +. sb,
        ca + cb )
  | _ -> a

(** Merge per-shard snapshots into one community-level sample list:
    samples sharing (name, labels) are combined with counters/gauges
    summed and histograms added bucket-wise. Pure — safe to call from the
    coordinating domain on snapshots taken at a cluster barrier. *)
let merge_samples snapshots =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (List.iter (fun s ->
         let key = (s.s_name, s.s_labels) in
         match Hashtbl.find_opt tbl key with
         | None ->
           Hashtbl.replace tbl key s;
           order := key :: !order
         | Some prev ->
           Hashtbl.replace tbl key
             { prev with s_value = merge_values prev.s_value s.s_value }))
    snapshots;
  List.rev_map (fun key -> Hashtbl.find tbl key) !order
  |> List.sort sample_order

let to_json r =
  let metric_json s =
    let base =
      [ ("name", Json.Str s.s_name);
        ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.s_labels));
      ]
    in
    let value =
      match s.s_value with
      | Sample_counter n -> [ ("type", Json.Str "counter"); ("value", Json.Int n) ]
      | Sample_gauge v -> [ ("type", Json.Str "gauge"); ("value", Json.Float v) ]
      | Sample_histogram (buckets, sum, count) ->
        [ ("type", Json.Str "histogram");
          ( "buckets",
            Json.List
              (List.map
                 (fun (le, n) ->
                   Json.Obj [ ("le", Json.Float le); ("count", Json.Int n) ])
                 buckets) );
          ("sum", Json.Float sum);
          ("count", Json.Int count);
        ]
    in
    Json.Obj (base @ value)
  in
  Json.Obj [ ("metrics", Json.List (List.map metric_json (snapshot r))) ]

let prom_value f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let prom_labels labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

let to_prometheus r =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen_header s.s_name) then begin
        Hashtbl.add seen_header s.s_name ();
        if s.s_help <> "" then
          Printf.bprintf buf "# HELP %s %s\n" s.s_name s.s_help;
        let ty =
          match s.s_value with
          | Sample_counter _ -> "counter"
          | Sample_gauge _ -> "gauge"
          | Sample_histogram _ -> "histogram"
        in
        Printf.bprintf buf "# TYPE %s %s\n" s.s_name ty
      end;
      match s.s_value with
      | Sample_counter n ->
        Printf.bprintf buf "%s%s %d\n" s.s_name (prom_labels s.s_labels) n
      | Sample_gauge v ->
        Printf.bprintf buf "%s%s %s\n" s.s_name (prom_labels s.s_labels)
          (prom_value v)
      | Sample_histogram (buckets, sum, count) ->
        List.iter
          (fun (le, n) ->
            Printf.bprintf buf "%s_bucket%s %d\n" s.s_name
              (prom_labels (s.s_labels @ [ ("le", prom_value le) ]))
              n)
          buckets;
        Printf.bprintf buf "%s_bucket%s %d\n" s.s_name
          (prom_labels (s.s_labels @ [ ("le", "+Inf") ]))
          count;
        Printf.bprintf buf "%s_sum%s %s\n" s.s_name (prom_labels s.s_labels)
          (prom_value sum);
        Printf.bprintf buf "%s_count%s %d\n" s.s_name (prom_labels s.s_labels)
          count)
    (snapshot r);
  Buffer.contents buf
