(** Post-outbreak forensics: reconstruct the infection tree from the
    provenance-carrying network logs ({!Osim.Netlog.provenance}).

    The reconstruction uses nothing the defense would not have after an
    outbreak: each host's netlog (with per-message source, sequence, and
    arrival-vtime stamps), the quarantine sets recovery left behind
    (crash/VSEF-confirmed malicious messages), and the in-flight message
    of each host that ended up compromised. Walking those suspects
    backward through their provenance yields the infection tree — who
    infected whom, when in virtual time — plus patient zero, per-edge
    time-to-infection, and depth/fan-out distributions.

    Validation: the simulator also records ground-truth infection events
    at compromise time ({!Sweeper.Defense.infection}); {!check} asserts
    the reconstruction matches them exactly. On deterministic runs the
    two are byte-identical; the qcheck suite extends this over random
    topologies and shard counts. *)

(** One suspect message recovered from a netlog: a quarantined
    (crash/VSEF-confirmed) attack, or the in-flight message of a host
    that ended up compromised. *)
type suspect = {
  su_host : int;       (** the host the message arrived at *)
  su_msg : int;        (** netlog message id on that host *)
  su_src : int;        (** provenance: sending host, [-1] = external *)
  su_seq : int;        (** provenance: sender-side sequence number *)
  su_vtime : float;    (** provenance: arrival vtime (simulated ms) *)
  su_infected : bool;  (** servicing this message compromised the host *)
}

(** Everything trace-back reads: the population size and the per-host
    suspect sets mined from the netlogs. *)
type evidence = {
  ev_hosts : int;
  ev_suspects : suspect list;
}

(** One reconstructed infection edge: [e_src] infected [e_dst] with the
    message logged as [e_msg] on the victim, arriving at [e_vtime]. *)
type edge = {
  e_src : int;
  e_dst : int;
  e_msg : int;
  e_seq : int;
  e_vtime : float;
}

type tree = {
  t_edges : edge list;  (** sorted by (arrival vtime, victim) *)
  t_roots : int list;   (** externally-infected hosts, ascending *)
  t_patient_zero : int option;
      (** the earliest externally-infected host *)
  t_depths : (int * int) list;
      (** (host, infection depth); roots are at depth 0; sorted *)
  t_max_depth : int;
  t_fanout : (int * int) list;
      (** (host, number of hosts it infected), sorted; infectors only *)
  t_attempts : int;  (** suspect messages examined *)
  t_blocked : int;   (** suspects that did not infect (crash/VSEF hits) *)
}

(* ------------------------------------------------------------------ *)
(* Evidence extraction                                                 *)
(* ------------------------------------------------------------------ *)

let suspect_of_msg ~host ~infected (m : Osim.Netlog.msg) =
  let p = m.Osim.Netlog.m_prov in
  {
    su_host = host;
    su_msg = m.Osim.Netlog.m_id;
    su_src = p.Osim.Netlog.p_src;
    su_seq = p.Osim.Netlog.p_seq;
    su_vtime = p.Osim.Netlog.p_vtime;
    su_infected = infected;
  }

(** Mine the per-host netlogs of a community for suspects: every
    quarantined message (recovery confirmed it malicious) and, on each
    compromised host, the message being serviced when the compromise
    surfaced. This is a pure post-mortem read — no simulator ground
    truth is consulted. *)
let of_hosts (hosts : Sweeper.Defense.host list) =
  let suspects =
    List.concat_map
      (fun (h : Sweeper.Defense.host) ->
        let net = h.Sweeper.Defense.h_proc.Osim.Process.net in
        let quarantined =
          List.map
            (fun id ->
              suspect_of_msg ~host:h.Sweeper.Defense.h_id ~infected:false
                (Osim.Netlog.message net id))
            (Osim.Netlog.quarantined_ids net)
        in
        let cur = h.Sweeper.Defense.h_proc.Osim.Process.cur_msg in
        if h.Sweeper.Defense.h_infected && cur >= 0 then
          suspect_of_msg ~host:h.Sweeper.Defense.h_id ~infected:true
            (Osim.Netlog.message net cur)
          :: quarantined
        else quarantined)
      hosts
  in
  { ev_hosts = List.length hosts; ev_suspects = suspects }

let of_sharded c = of_hosts (Sweeper.Defense.Sharded.hosts c)

(* ------------------------------------------------------------------ *)
(* Trace-back                                                          *)
(* ------------------------------------------------------------------ *)

let edge_compare a b =
  match compare a.e_vtime b.e_vtime with
  | 0 -> compare a.e_dst b.e_dst
  | n -> n

(** Reconstruct the infection tree from evidence. Infection edges come
    from the infected suspects (one per victim — a host is compromised
    by exactly one message); depths walk each victim's provenance chain
    back to an external source, with a visited guard so inconsistent
    evidence (a provenance cycle) terminates at depth 0 instead of
    looping. *)
let reconstruct ev =
  let edges =
    List.filter_map
      (fun s ->
        if s.su_infected then
          Some
            { e_src = s.su_src; e_dst = s.su_host; e_msg = s.su_msg;
              e_seq = s.su_seq; e_vtime = s.su_vtime }
        else None)
      ev.ev_suspects
    |> List.sort edge_compare
  in
  let parent = Hashtbl.create (List.length edges) in
  List.iter (fun e -> Hashtbl.replace parent e.e_dst e) edges;
  let depths = Hashtbl.create (List.length edges) in
  let rec depth visiting h =
    match Hashtbl.find_opt depths h with
    | Some d -> d
    | None ->
      let d =
        if List.mem h visiting then 0
        else
          match Hashtbl.find_opt parent h with
          | None -> 0 (* not infected via a logged message: a base case *)
          | Some e ->
            if e.e_src < 0 then 0 else 1 + depth (h :: visiting) e.e_src
      in
      Hashtbl.replace depths h d;
      d
  in
  List.iter (fun e -> ignore (depth [] e.e_dst)) edges;
  let t_depths =
    List.map (fun e -> (e.e_dst, depth [] e.e_dst)) edges
    |> List.sort compare
  in
  let t_max_depth = List.fold_left (fun m (_, d) -> max m d) 0 t_depths in
  let roots =
    List.filter_map (fun e -> if e.e_src < 0 then Some e.e_dst else None) edges
    |> List.sort_uniq compare
  in
  let patient_zero =
    (* [edges] is sorted by (vtime, dst): the first external edge is the
       earliest arrival that led to a compromise. *)
    List.find_opt (fun e -> e.e_src < 0) edges |> Option.map (fun e -> e.e_dst)
  in
  let fanout_tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.e_src >= 0 then
        Hashtbl.replace fanout_tbl e.e_src
          (1 + Option.value ~default:0 (Hashtbl.find_opt fanout_tbl e.e_src)))
    edges;
  let t_fanout =
    Hashtbl.fold (fun h n acc -> (h, n) :: acc) fanout_tbl []
    |> List.sort compare
  in
  let attempts = List.length ev.ev_suspects in
  {
    t_edges = edges;
    t_roots = roots;
    t_patient_zero = patient_zero;
    t_depths;
    t_max_depth;
    t_fanout;
    t_attempts = attempts;
    t_blocked = attempts - List.length edges;
  }

(* Victim -> its own infection arrival time, for O(1) parent lookups. *)
let arrival_map tree =
  let m = Hashtbl.create (1 + List.length tree.t_edges) in
  List.iter (fun e -> Hashtbl.replace m e.e_dst e.e_vtime) tree.t_edges;
  m

let tti_of arrivals e =
  let parent_vt =
    if e.e_src < 0 then 0.
    else Option.value ~default:0. (Hashtbl.find_opt arrivals e.e_src)
  in
  e.e_vtime -. parent_vt

(** Per-edge time-to-infection: virtual time between the parent's own
    infection (arrival of the message that compromised it; 0 for
    external sources) and this edge's arrival at the victim. *)
let time_to_infection tree e = tti_of (arrival_map tree) e

(* ------------------------------------------------------------------ *)
(* Ground truth                                                        *)
(* ------------------------------------------------------------------ *)

let edge_of_infection (i : Sweeper.Defense.infection) =
  {
    e_src = i.Sweeper.Defense.inf_src;
    e_dst = i.Sweeper.Defense.inf_victim;
    e_msg = i.Sweeper.Defense.inf_msg;
    e_seq = i.Sweeper.Defense.inf_seq;
    e_vtime = i.Sweeper.Defense.inf_arrival;
  }

(** The simulator's ground-truth infection edges, in the same order the
    reconstruction sorts its own ((arrival vtime, victim)). *)
let ground_truth c =
  List.map edge_of_infection (Sweeper.Defense.Sharded.infection_log c)
  |> List.sort edge_compare

let edge_to_string e =
  Printf.sprintf "%d -> %d (msg %d, seq %d, t=%.4fms)" e.e_src e.e_dst e.e_msg
    e.e_seq e.e_vtime

(** Assert the reconstructed tree matches the ground-truth edge list
    exactly; [Error] names the first divergence. *)
let check tree truth =
  let rec go i got want =
    match (got, want) with
    | [], [] -> Ok ()
    | g :: got, w :: want ->
      if g = w then go (i + 1) got want
      else
        Error
          (Printf.sprintf "edge %d: reconstructed %s, ground truth %s" i
             (edge_to_string g) (edge_to_string w))
    | g :: _, [] ->
      Error
        (Printf.sprintf "edge %d: reconstructed %s beyond ground truth" i
           (edge_to_string g))
    | [], w :: _ ->
      Error
        (Printf.sprintf "edge %d: ground truth %s not reconstructed" i
           (edge_to_string w))
  in
  go 0 tree.t_edges truth

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

(** Graphviz rendering: victims as boxes (patient zero double-bordered),
    external sources as a dashed ellipse, one edge per infection labelled
    with its arrival vtime. Deterministic output for golden tests. *)
let to_dot ?(name = "infection") tree =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n";
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  if tree.t_roots <> [] then
    Buffer.add_string buf
      "  ext [label=\"external\", shape=ellipse, style=dashed];\n";
  List.iter
    (fun e ->
      let peripheries =
        if tree.t_patient_zero = Some e.e_dst then ", peripheries=2" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  h%d [label=\"host %d\"%s];\n" e.e_dst e.e_dst
           peripheries))
    tree.t_edges;
  List.iter
    (fun e ->
      let src = if e.e_src < 0 then "ext" else Printf.sprintf "h%d" e.e_src in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> h%d [label=\"%.3fms\"];\n" src e.e_dst
           e.e_vtime))
    tree.t_edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let edge_json arrivals e =
  Obs.Json.Obj
    [ ("src", Obs.Json.Int e.e_src);
      ("dst", Obs.Json.Int e.e_dst);
      ("msg", Obs.Json.Int e.e_msg);
      ("seq", Obs.Json.Int e.e_seq);
      ("vtime_ms", Obs.Json.Float e.e_vtime);
      ("tti_ms", Obs.Json.Float (tti_of arrivals e));
    ]

let to_json ?(app = "") tree =
  let arrivals = arrival_map tree in
  Obs.Json.Obj
    ([ ("app", Obs.Json.Str app) ]
    @ [ ("patient_zero",
         match tree.t_patient_zero with
         | Some h -> Obs.Json.Int h
         | None -> Obs.Json.Null);
        ("roots", Obs.Json.List (List.map (fun h -> Obs.Json.Int h) tree.t_roots));
        ("max_depth", Obs.Json.Int tree.t_max_depth);
        ("attempts", Obs.Json.Int tree.t_attempts);
        ("blocked", Obs.Json.Int tree.t_blocked);
        ("infected", Obs.Json.Int (List.length tree.t_edges));
        ("edges", Obs.Json.List (List.map (edge_json arrivals) tree.t_edges));
        ("fanout",
         Obs.Json.List
           (List.map
              (fun (h, n) ->
                Obs.Json.Obj
                  [ ("host", Obs.Json.Int h); ("infected", Obs.Json.Int n) ])
              tree.t_fanout));
      ])

(** Human-readable outbreak post-mortem. *)
let report tree =
  let arrivals = arrival_map tree in
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "infection tree: %d edge(s), %d root(s), max depth %d"
    (List.length tree.t_edges)
    (List.length tree.t_roots)
    tree.t_max_depth;
  (match tree.t_patient_zero with
  | Some h -> line "patient zero: host %d" h
  | None -> line "patient zero: none (no successful infection)");
  line "attack attempts in evidence: %d (%d blocked before compromise)"
    tree.t_attempts tree.t_blocked;
  List.iter
    (fun e ->
      line "  %s  (+%.3fms after parent)" (edge_to_string e)
        (tti_of arrivals e))
    tree.t_edges;
  (match tree.t_fanout with
  | [] -> ()
  | fanout ->
    line "fan-out:";
    List.iter (fun (h, n) -> line "  host %d infected %d host(s)" h n) fanout);
  Buffer.contents buf

(** Publish the tree's shape into a metrics registry: depth and fan-out
    histograms, per-edge time-to-infection, and headline gauges. *)
let register_metrics tree registry =
  let arrivals = arrival_map tree in
  let depth_h =
    Obs.Metrics.histogram ~registry
      ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32. |]
      ~help:"infection depth per victim" "sweeper_forensics_depth"
  in
  List.iter (fun (_, d) -> Obs.Metrics.observe depth_h (float_of_int d))
    tree.t_depths;
  let fanout_h =
    Obs.Metrics.histogram ~registry
      ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64. |]
      ~help:"successful infections per infector" "sweeper_forensics_fanout"
  in
  List.iter (fun (_, n) -> Obs.Metrics.observe fanout_h (float_of_int n))
    tree.t_fanout;
  let tti_h =
    Obs.Metrics.histogram ~registry
      ~buckets:[| 0.5; 1.; 2.; 5.; 10.; 50.; 100.; 1000. |]
      ~help:"per-edge time-to-infection (virtual ms)"
      "sweeper_forensics_tti_ms"
  in
  List.iter (fun e -> Obs.Metrics.observe tti_h (tti_of arrivals e))
    tree.t_edges;
  let g name help v =
    Obs.Metrics.set (Obs.Metrics.gauge ~registry ~help name) v
  in
  g "sweeper_forensics_edges" "reconstructed infection edges"
    (float_of_int (List.length tree.t_edges));
  g "sweeper_forensics_roots" "externally-infected hosts"
    (float_of_int (List.length tree.t_roots));
  g "sweeper_forensics_max_depth" "deepest infection chain"
    (float_of_int tree.t_max_depth);
  g "sweeper_forensics_patient_zero" "patient zero host id (-1 if none)"
    (match tree.t_patient_zero with
    | Some h -> float_of_int h
    | None -> -1.)
