(** Post-outbreak forensics: reconstruct the infection tree from the
    provenance-carrying network logs ({!Osim.Netlog.provenance}).

    The reconstruction uses nothing the defense would not have after an
    outbreak: each host's netlog (per-message source, sequence, and
    arrival-vtime stamps), the quarantine sets recovery left behind
    (crash/VSEF-confirmed malicious messages), and the in-flight message
    of each compromised host. Walking those suspects backward through
    their provenance yields the infection tree — who infected whom, when
    in virtual time — plus patient zero, per-edge time-to-infection, and
    depth/fan-out distributions ({!register_metrics}).

    Validation: {!check} asserts the reconstruction against the
    simulator's ground-truth infection events
    ({!Sweeper.Defense.infection}) — exact on deterministic runs,
    qcheck'd over random topologies and shard counts by the test
    suite. *)

(** One suspect message recovered from a netlog: a quarantined
    (crash/VSEF-confirmed) attack, or the in-flight message of a host
    that ended up compromised. *)
type suspect = {
  su_host : int;       (** the host the message arrived at *)
  su_msg : int;        (** netlog message id on that host *)
  su_src : int;        (** provenance: sending host, [-1] = external *)
  su_seq : int;        (** provenance: sender-side sequence number *)
  su_vtime : float;    (** provenance: arrival vtime (simulated ms) *)
  su_infected : bool;  (** servicing this message compromised the host *)
}

(** Everything trace-back reads: the population size and the per-host
    suspect sets mined from the netlogs. *)
type evidence = {
  ev_hosts : int;
  ev_suspects : suspect list;
}

(** One reconstructed infection edge: [e_src] infected [e_dst] with the
    message logged as [e_msg] on the victim, arriving at [e_vtime]. *)
type edge = {
  e_src : int;
  e_dst : int;
  e_msg : int;
  e_seq : int;
  e_vtime : float;
}

type tree = {
  t_edges : edge list;  (** sorted by (arrival vtime, victim) *)
  t_roots : int list;   (** externally-infected hosts, ascending *)
  t_patient_zero : int option;
      (** the earliest externally-infected host *)
  t_depths : (int * int) list;
      (** (host, infection depth); roots are at depth 0; sorted *)
  t_max_depth : int;
  t_fanout : (int * int) list;
      (** (host, number of hosts it infected), sorted; infectors only *)
  t_attempts : int;  (** suspect messages examined *)
  t_blocked : int;   (** suspects that did not infect (crash/VSEF hits) *)
}

val of_hosts : Sweeper.Defense.host list -> evidence
(** Mine the per-host netlogs for suspects: every quarantined message
    and, on each compromised host, the message in flight when the
    compromise surfaced. A pure post-mortem read — no simulator ground
    truth is consulted. *)

val of_sharded : Sweeper.Defense.Sharded.community -> evidence

val reconstruct : evidence -> tree
(** Trace-back: infection edges from the infected suspects, depths by
    walking provenance chains back to an external source (cycle-guarded
    so inconsistent evidence terminates instead of looping). *)

val time_to_infection : tree -> edge -> float
(** Virtual time between the parent's own infection and this edge's
    arrival at the victim (arrival time itself for external edges).
    O(edges) per call; reports amortize the lookup internally. *)

val ground_truth : Sweeper.Defense.Sharded.community -> edge list
(** The simulator's ground-truth infection edges, sorted identically to
    [tree.t_edges]. *)

val check : tree -> edge list -> (unit, string) result
(** Assert the reconstruction matches ground truth exactly; [Error]
    names the first divergence. *)

val edge_to_string : edge -> string

val to_dot : ?name:string -> tree -> string
(** Graphviz rendering: victims as boxes (patient zero double-bordered),
    external sources as a dashed ellipse, edges labelled with arrival
    vtime. Deterministic output, golden-tested. *)

val to_json : ?app:string -> tree -> Obs.Json.t
(** The full machine-readable report: patient zero, roots, depth,
    attempt/blocked counts, and every edge with its time-to-infection. *)

val report : tree -> string
(** Human-readable outbreak post-mortem. *)

val register_metrics : tree -> Obs.Metrics.t -> unit
(** Publish the tree's shape into a metrics registry: depth, fan-out,
    and time-to-infection histograms plus headline gauges. *)
