(** Generic worklist dataflow solver over a {!Cfg}, plus three classic
    instances used as sanity anchors for the framework. *)

module Int_set : Set.S with type elt = int

type direction = Forward | Backward

type 'v result = {
  d_in : 'v array;  (** per block id: value flowing into the transfer *)
  d_out : 'v array;  (** per block id: value produced by the transfer *)
}

val solve :
  dir:direction ->
  eq:('v -> 'v -> bool) ->
  join:('v -> 'v -> 'v) ->
  bottom:'v ->
  init:'v ->
  transfer:(Cfg.block -> 'v -> 'v) ->
  Cfg.t ->
  'v result
(** Iterate [transfer] to a fixpoint with a worklist. For [Forward],
    [d_in] is the block-entry value and boundary blocks (no
    predecessors, or starting at a segment base) join [init] into their
    entry; for [Backward], [d_in] is the block-{e exit} value, [d_out]
    the block-entry value, and boundary blocks are those with no
    successors. [transfer] must be monotone over a lattice with finite
    ascending chains. *)

val defs : Vm.Isa.instr -> int list
(** Register indices an instruction (re)defines (syscalls define [r0];
    call/return machinery moves [sp]). *)

val uses : Vm.Isa.instr -> int list
(** Register indices an instruction reads (syscalls read [r0..r3]). *)

type rdefs = Int_set.t array
(** Per-register set of instruction addresses whose definition may reach
    the program point. *)

val reaching_definitions : Cfg.t -> rdefs result

val liveness : Cfg.t -> int result
(** Backward liveness over register bitmasks (bit [i] = register index
    [i] live); nothing assumed live at exit. [d_out] is the live set at
    block entry. *)

val max_stack_depth : Cfg.t -> int
(** Upper bound (clamped at [2^20] bytes so growing loops terminate) on
    the stack bytes any path pushes beyond the depth at segment entry.
    Calls are treated as stack-balanced (the return slot [Call] pushes is
    popped by the matching [Ret]), so the bound covers [Push]es and
    explicit [SP] adjustments; callee frames are still counted through
    the call edge, and unbounded recursion saturates at the cap. *)
