(** Static taint reachability: a provable over-approximation of the
    dynamic engine in [Sweeper.Taint].

    One abstract state per instruction — a bitmask of registers that may
    hold tainted data plus one global "memory may be tainted" bit
    ({!mem_bit}) — iterated to a fixpoint over the decoded program.
    Taint enters only at [Syscall sys_recv]. [Ret] flows into a shared
    return state joined into every {e return site} (the instruction
    after a call) — the context-insensitive "a return goes to some
    return site" model, which pruned dynamic runs enforce with a
    tripwire after every retired [Ret] (landing off the return-site set
    reverts to full instrumentation, so the assumption is only relied on
    where it was checked). [CallInd] and unresolved targets join into a
    global hijack state that feeds every instruction.

    The result is two pc sets: [S] (may-propagate — a superset of every
    pc the dynamic engine can ever mark) and its superset [K]
    (must-hook — hooking only these pcs is byte-identical to hooking
    every instruction, given the tripwire). *)

type t

val mem_bit : int
(** The "some memory may be tainted" bit of an abstract state; bits
    below it are register indices. *)

val analyze : Vm.Program.t -> t

val program : t -> Vm.Program.t

val matches : t -> Vm.Program.t -> bool
(** Does [t] describe this program? Static results are only valid for
    the exact code they were computed from. *)

val may_propagate : t -> int -> bool
(** pc ∈ [S]: the dynamic engine may record a taint propagation here.
    [false] for addresses outside the program. *)

val must_hook : t -> int -> bool
(** pc ∈ [K]: the dynamic tracker's hook must run here for pruned runs
    to be byte-identical ([S ⊆ K]). *)

val is_return_site : t -> int -> bool
(** Is this pc a return site (the instruction after a [Call]/[CallInd])?
    The pruned tracker's [Ret] tripwire checks every return's landing pc
    against this set; [false] for addresses outside the program. *)

val prop_pcs : t -> int list
(** [S] as an ascending pc list. *)

val hook_pcs : t -> int list
(** [K] as an ascending pc list. *)

val in_state : t -> int -> int option
(** The abstract in-state at a pc (for tests and debugging). *)

val total : t -> int
(** Decoded instructions analyzed. *)

val prop_count : t -> int
val hook_count : t -> int

val reduction : t -> float
(** [1 - hook_count/total]: the fraction of instrumentation points a
    pruned tracker run avoids relative to hooking every instruction. *)

val analysis_ms : t -> float
(** Analysis wall time, milliseconds. *)

val hook_mask : t -> int -> Bytes.t
(** Per-segment [K] mask (indexed like the segment's instruction array)
    for fusing the check into a replay loop. *)

val ret_site_mask : t -> int -> Bytes.t
(** Per-segment return-site mask, indexed like {!hook_mask}. *)
