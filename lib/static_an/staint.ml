(** Static taint reachability: a provable over-approximation of the
    dynamic engine in [Sweeper.Taint].

    The abstract state at an instruction is one int: bits
    [0 .. num_regs-1] say "this register may hold tainted data here" and
    {!mem_bit} says "some memory byte may be tainted" (one global
    may-bit — the analysis never tracks addresses, which is what makes
    it a few sweeps over the code instead of a points-to problem). The
    transfer function mirrors the dynamic propagation rules
    ([Taint.on_effect]) abstractly: a register move copies the source
    bit, a load may pick up taint iff memory may be tainted, a store of
    a possibly-tainted register sets the memory bit (and a provably
    clean store cannot {e clear} it — the bit covers all addresses).
    Taint enters only at [Syscall sys_recv]; no syscall clears the
    [r0] bit statically because the syscall layer's failure paths leave
    [r0] untouched.

    Control flow is handled without a call-string or points-to
    analysis. Direct jumps/branches/calls propagate to their decoded
    targets. [Ret] joins its out-state into a single {e return state}
    [R] that flows into every {e return site} — the instruction after
    any [Call]/[CallInd]. This is the context-insensitive "a return
    goes to some return site" model: it covers ordinary returns and
    even a smashed return address that lands on the {e wrong} return
    site, but not one landing at an arbitrary pc. Pruned dynamic runs
    close that gap with a one-compare tripwire after every retired
    [Ret] (see [Taint.run ?static]): if the landing pc is not in the
    return-site set the replay falls back to full instrumentation, so
    the optimistic model is only ever {e assumed} on executions where
    it was {e checked}. [CallInd] and unresolved targets (which decoded
    images do not contain) still join into a broadcast-to-everywhere
    hijack state [H], joined into every instruction's in-state.

    Two pc sets fall out of the fixpoint:

    - [S] (may-propagate): pcs where the dynamic engine could ever mark
      a propagation ([Taint.mark_if] with a non-zero label). Every pc in
      a dynamic [t_prop_pcs] list is in [S] — the soundness contract the
      qcheck differential suite enforces.
    - [K] (must-hook), a superset of [S]: pcs where the dynamic tracker
      could mark {e or} change its own state (clear a register it may
      consider tainted, overwrite possibly-tainted shadow memory, or
      observe a syscall). Running the tracker's hook only at pcs in [K]
      is byte-identical to hooking every instruction: at any pc outside
      [K] the dynamic update is the identity on every state the tracker
      can actually be in (dynamic taint ⊆ static taint, by induction
      along the executed path; the tripwire discharges the return-site
      assumption that induction leans on). [Syscall] is always in [K] —
      sources, result-register cleaning, and [sources_seen] live there.

    [1 - |K| / total] is the instrumentation-point reduction reported in
    the bench tables. *)

let mem_bit = 1 lsl Vm.Isa.num_regs

type t = {
  sa_prog : Vm.Program.t;
  sa_in : int array array;
      (** per segment, per instruction: in-state with [H]/[R] joined in *)
  sa_prop : Bytes.t array;  (** [S] as per-segment masks, like prop_mask *)
  sa_hook : Bytes.t array;  (** [K] as per-segment masks *)
  sa_ret : Bytes.t array;
      (** return sites (instruction after a call) as per-segment masks *)
  sa_total : int;
  sa_prop_count : int;
  sa_hook_count : int;
  sa_ms : float;  (** analysis wall time, milliseconds *)
}

let bit r = 1 lsl Vm.Isa.reg_index r

(* Abstract transfer: out-state of [instr] given in-state [s]. Mirrors
   [Taint.on_effect] over the (reg-bits, mem-bit) abstraction. *)
let transfer (instr : Vm.Isa.instr) s =
  match instr with
  | Mov (rd, Reg rs) ->
    if s land bit rs <> 0 then s lor bit rd else s land lnot (bit rd)
  | Mov (rd, (Imm _ | Sym _)) -> s land lnot (bit rd)
  | Bin (_, rd, Reg rs) -> if s land bit rs <> 0 then s lor bit rd else s
  | Bin (_, _, (Imm _ | Sym _)) | Not _ | Neg _ -> s
  | Load (rd, _, _) | Loadb (rd, _, _) | Pop rd ->
    if s land mem_bit <> 0 then s lor bit rd else s land lnot (bit rd)
  | Store (_, _, rs) | Storeb (_, _, rs) | Push (Reg rs) ->
    if s land bit rs <> 0 then s lor mem_bit else s
  | Push (Imm _ | Sym _) -> s
  | Syscall n -> if n = Vm.Sysno.sys_recv then s lor mem_bit else s
  | Call _ | CallInd _ | Cmp _ | Jmp _ | Jcc _ | Ret | Halt | Nop -> s

(* May the dynamic engine mark this pc as a propagation site
   ([mark_if] with non-zero label)? *)
let may_mark_in (instr : Vm.Isa.instr) s =
  match instr with
  | Mov (_, Reg rs) -> s land bit rs <> 0
  | Mov (_, (Imm _ | Sym _)) -> false
  | Bin (_, rd, Reg rs) -> s land (bit rd lor bit rs) <> 0
  | Bin (_, rd, (Imm _ | Sym _)) -> s land bit rd <> 0
  | Not r | Neg r -> s land bit r <> 0
  | Load _ | Loadb _ | Pop _ -> s land mem_bit <> 0
  | Store (_, _, rs) | Storeb (_, _, rs) | Push (Reg rs) -> s land bit rs <> 0
  | Push (Imm _ | Sym _) -> false
  | Call _ | CallInd _ | Cmp _ | Jmp _ | Jcc _ | Ret | Syscall _ | Halt | Nop
    ->
    false

(* Must the dynamic tracker's hook run here? True when the update could
   mark, or change tracker state: clear a possibly-tainted register,
   write over possibly-tainted shadow memory (a clean store is only a
   shadow no-op when no memory taint exists), or handle a syscall. *)
let needs_hook_in (instr : Vm.Isa.instr) s =
  match instr with
  | Mov (rd, Reg rs) -> s land (bit rd lor bit rs) <> 0
  | Mov (rd, (Imm _ | Sym _)) -> s land bit rd <> 0
  | Bin (_, rd, Reg rs) -> s land (bit rd lor bit rs) <> 0
  | Bin (_, rd, (Imm _ | Sym _)) -> s land bit rd <> 0
  | Not r | Neg r -> s land bit r <> 0
  | Load (rd, _, _) | Loadb (rd, _, _) | Pop rd ->
    s land (mem_bit lor bit rd) <> 0
  | Store (_, _, rs) | Storeb (_, _, rs) | Push (Reg rs) ->
    s land (bit rs lor mem_bit) <> 0
  | Push (Imm _ | Sym _) -> s land mem_bit <> 0
  | Call _ | CallInd _ -> s land mem_bit <> 0
  | Syscall _ -> true
  | Cmp _ | Jmp _ | Jcc _ | Ret | Halt | Nop -> false

let analyze (prog : Vm.Program.t) : t =
  let t0 = Sys.time () in
  let segs = prog.Vm.Program.segments in
  let states =
    Array.map
      (fun s -> Array.make (Array.length s.Vm.Program.seg_instrs) 0)
      segs
  in
  (* Return sites: the instruction a balanced [Ret] resumes at — located
     by address ([pc_of_call + 4]) so a call ending one segment still
     finds its return site at the next segment's base. *)
  let ret_site =
    Array.map
      (fun s -> Bytes.make (Array.length s.Vm.Program.seg_instrs) '\000')
      segs
  in
  Array.iter
    (fun seg ->
      Array.iteri
        (fun i (instr : Vm.Isa.instr) ->
          match instr with
          | Call _ | CallInd _ -> (
            let ra =
              seg.Vm.Program.seg_base + ((i + 1) * Vm.Isa.instr_size)
            in
            match Vm.Program.locate prog ra with
            | Some (sj, j) -> Bytes.set ret_site.(sj) j '\001'
            | None -> ())
          | _ -> ())
        seg.Vm.Program.seg_instrs)
    segs;
  let is_ret_site si i = Bytes.get ret_site.(si) i <> '\000' in
  let h = ref 0 and r = ref 0 in
  let changed = ref true in
  let join_into si i v =
    let cur = states.(si).(i) in
    if cur lor v <> cur then begin
      states.(si).(i) <- cur lor v;
      changed := true
    end
  in
  let join_target a v =
    match Vm.Program.locate prog a with
    | Some (si, i) -> join_into si i v
    | None -> ()  (* branches to unmapped code fault before executing *)
  in
  let join_h v =
    if !h lor v <> !h then begin
      h := !h lor v;
      changed := true
    end
  in
  let join_r v =
    if !r lor v <> !r then begin
      r := !r lor v;
      changed := true
    end
  in
  (* Sweep to fixpoint. States, [H], and [R] only grow and the lattice is
     finite (num_regs + 1 bits), so this terminates. *)
  while !changed do
    changed := false;
    Array.iteri
      (fun si seg ->
        let instrs = seg.Vm.Program.seg_instrs in
        let n = Array.length instrs in
        for i = 0 to n - 1 do
          let instr = instrs.(i) in
          let s_in = states.(si).(i) lor !h in
          let s_in = if is_ret_site si i then s_in lor !r else s_in in
          let out = transfer instr s_in in
          let next () = if i + 1 < n then join_into si (i + 1) out in
          match instr with
          | Jmp (Addr a) -> join_target a out
          | Jcc (_, Addr a) ->
            join_target a out;
            next ()
          | Call (Addr a) ->
            (* The return site is fed by the callee's [Ret] through [R],
               not by a direct edge — the machine really does continue
               wherever the popped address says. *)
            join_target a out
          | Ret -> join_r out
          | Jmp (Lbl _) | Call (Lbl _) | CallInd _ -> join_h out
          | Jcc (_, Lbl _) ->
            join_h out;
            next ()
          | Halt -> ()
          | Mov _ | Bin _ | Not _ | Neg _ | Load _ | Loadb _ | Store _
          | Storeb _ | Push _ | Pop _ | Cmp _ | Syscall _ | Nop ->
            next ()
        done)
      segs
  done;
  (* Fold [H] (and [R] at return sites) into every stored state, then
     read off [S] and [K]. *)
  let prop =
    Array.map
      (fun s -> Bytes.make (Array.length s.Vm.Program.seg_instrs) '\000')
      segs
  in
  let hook =
    Array.map
      (fun s -> Bytes.make (Array.length s.Vm.Program.seg_instrs) '\000')
      segs
  in
  let total = ref 0 and n_prop = ref 0 and n_hook = ref 0 in
  Array.iteri
    (fun si seg ->
      Array.iteri
        (fun i instr ->
          let s = states.(si).(i) lor !h in
          let s = if is_ret_site si i then s lor !r else s in
          states.(si).(i) <- s;
          incr total;
          if may_mark_in instr s then begin
            Bytes.set prop.(si) i '\001';
            incr n_prop
          end;
          if needs_hook_in instr s then begin
            Bytes.set hook.(si) i '\001';
            incr n_hook
          end)
        seg.Vm.Program.seg_instrs)
    segs;
  {
    sa_prog = prog;
    sa_in = states;
    sa_prop = prop;
    sa_hook = hook;
    sa_ret = ret_site;
    sa_total = !total;
    sa_prop_count = !n_prop;
    sa_hook_count = !n_hook;
    sa_ms = (Sys.time () -. t0) *. 1000.;
  }

let program t = t.sa_prog

(** Does [t] describe this program? Static results are only valid for
    the exact code they were computed from. Separate loads of the same
    image at the same layout decode to fresh but equal segments, which
    the decode-time content fingerprint recognizes in O(segments) — this
    check runs once per pruned replay, and replays can be short enough
    that an O(instructions) structural walk here is visible in the
    replay's ns/instr. *)
let matches t (prog : Vm.Program.t) =
  t.sa_prog == prog
  ||
  let a = t.sa_prog.Vm.Program.segments and b = prog.Vm.Program.segments in
  Array.length a = Array.length b
  && Array.for_all2
       (fun sa sb ->
         sa.Vm.Program.seg_base = sb.Vm.Program.seg_base
         && sa.Vm.Program.seg_limit = sb.Vm.Program.seg_limit
         && sa.Vm.Program.seg_fp = sb.Vm.Program.seg_fp)
       a b

let lookup masks t pc =
  match Vm.Program.locate t.sa_prog pc with
  | Some (si, i) -> Bytes.get masks.(si) i <> '\000'
  | None -> false

let may_propagate t pc = lookup t.sa_prop t pc
let must_hook t pc = lookup t.sa_hook t pc

(* Called from the pruned replay loop on every retired [Ret]; open-coded
   segment search instead of [lookup] so the hot path never allocates
   (Program.locate returns an option of a tuple). *)
let is_return_site t pc =
  let segs = t.sa_prog.Vm.Program.segments in
  let n = Array.length segs in
  let rec go i =
    i < n
    &&
    let s = Array.unsafe_get segs i in
    let off = pc - s.Vm.Program.seg_base in
    if off >= 0 && pc < s.Vm.Program.seg_limit then
      off land 3 = 0
      && Bytes.unsafe_get (Array.unsafe_get t.sa_ret i) (off lsr 2) <> '\000'
    else go (i + 1)
  in
  go 0

let in_state t pc =
  match Vm.Program.locate t.sa_prog pc with
  | Some (si, i) -> Some t.sa_in.(si).(i)
  | None -> None

let pcs_of masks t =
  let segs = t.sa_prog.Vm.Program.segments in
  let acc = ref [] in
  for si = Array.length segs - 1 downto 0 do
    let mask = masks.(si) in
    let base = segs.(si).Vm.Program.seg_base in
    for i = Bytes.length mask - 1 downto 0 do
      if Bytes.get mask i <> '\000' then
        acc := base + (i * Vm.Isa.instr_size) :: !acc
    done
  done;
  !acc

let prop_pcs t = pcs_of t.sa_prop t
let hook_pcs t = pcs_of t.sa_hook t
let total t = t.sa_total
let prop_count t = t.sa_prop_count
let hook_count t = t.sa_hook_count
let analysis_ms t = t.sa_ms

let reduction t =
  if t.sa_total = 0 then 0.
  else 1. -. (float_of_int t.sa_hook_count /. float_of_int t.sa_total)

(* Per-segment hook mask for the fused replay loop: byte [i] is non-zero
   iff the pc at instruction index [i] of segment [si] is in [K]. *)
let hook_mask t si = t.sa_hook.(si)
let ret_site_mask t si = t.sa_ret.(si)
