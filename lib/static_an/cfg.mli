(** Control-flow graph recovery over decoded {!Vm.Program} segments.

    Indirect calls, returns, and unresolved targets get a conservative
    edge into a single "unknown" sink node; direct branches to unmapped
    addresses get no edge (the CPU faults there). [Call] blocks carry
    both a [Call] edge to the callee and a [Fallthrough] edge to their
    return site. *)

type edge_kind =
  | Fallthrough  (** straight-line successor (incl. a call's return site) *)
  | Jump  (** unconditional direct jump *)
  | Branch  (** taken edge of a conditional branch *)
  | Call  (** direct call to the callee's entry block *)
  | Unknown  (** conservative edge into the unknown sink *)

type block = {
  b_id : int;
  b_pc : int;  (** address of the first instruction; [-1] for the sink *)
  b_instrs : (int * Vm.Isa.instr) array;  (** (pc, instruction) pairs *)
  mutable b_succs : (int * edge_kind) list;
      (** successor block ids, program order; owned by {!build} *)
  mutable b_preds : int list;  (** predecessor block ids; owned by {!build} *)
}

type t

val build : Vm.Program.t -> t
(** Recover the CFG of every segment of a decoded program. *)

val blocks : t -> block array
(** All blocks, ordinary blocks in ascending pc order; the unknown sink
    (if any) is last. *)

val unknown : t -> int option
(** Id of the unknown sink node, when one exists. *)

val block_bounds : t -> (int * int) array
(** [(entry_pc, instruction-count)] of every ordinary block, ascending
    pc — the input {!Vm.Block_compile.install} consumes. The unknown
    sink is excluded: it names no code range, so there is nothing to
    compile for it; indirect control resolves at run time. *)

val is_entry : t -> block -> bool
(** Whether the block starts at a segment base. *)

val block_at : t -> int -> block option
(** The block whose instruction range contains an address, if any. *)

val succs : block -> int list
val preds : block -> int list
val edge_kind_name : edge_kind -> string

val to_dot : ?name:string -> t -> string
(** Graphviz rendering: one box per block listing its disassembly, edge
    styles by kind (dashed = branch, bold = call, dotted = unknown). *)
