(** Flow-sensitive interval abstract interpretation over decoded
    {!Vm.Program} segments, on the {!Cfg}.

    One abstract state per instruction: an unsigned-32 interval per
    register. The analysis runs a worklist to a post-fixpoint with
    widening at loop heads (any predecessor whose block id is not below
    the target's — block ids ascend with pc, so every cycle closes
    through such an edge), then two descending narrowing sweeps.

    Interprocedural flow follows the MiniC calling convention the way
    {!Staint} follows taint: a direct [Call] edge carries the caller's
    out-state (return slot pushed) into the callee entry; the call's
    fallthrough edge — its return site — carries the {e pre-call} state
    with every register except [SP]/[FP] havocked to top (callees are
    caller-saved scratch; prologue/epilogue restore the two stack
    registers). Indirect calls join into a single hijack state broadcast
    to every address-taken block (blocks whose entry pc appears as an
    immediate operand anywhere in the program).

    Against the process {!Vm.Layout} the analysis partitions every
    memory access (Load/Loadb/Store/Storeb) by its effective-address
    interval:

    - {e proven}: the interval fits inside one runtime-constant valid
      region — the data segment or the stack, whose bounds never move
      after load (the heap depends on the mutable break, so heap
      accesses are never proven);
    - {e proven-oob}: disjoint from every region the process could ever
      map writable (data, stack, and the heap arena up to its maximum);
    - {e possible}: anything in between;
    - {e unreachable}: the pc is dead under CFG-following control flow.

    The facts are only claims about CFG-following executions; a
    control-flow hijack can reach any pc with any state. Consumers that
    act on "proven" therefore keep a residual check: the block tier's
    elided closures ({!Vm.Block_compile}) still compare the address
    against the proven region's constant bounds and trip back to full
    instrumentation on violation. *)

type iv = { lo : int; hi : int }
(** Inclusive unsigned-32 bounds, [0 <= lo <= hi <= Vm.Isa.word_mask]. *)

(** Classification of one memory-access pc. *)
type cls =
  | Proven of int * int
      (** effective address provably inside [\[lo, hi)], a region whose
          bounds are fixed for the lifetime of the process *)
  | Possible  (** may or may not be a valid access *)
  | Oob  (** provably outside everything the process can ever map *)
  | Unreachable  (** dead code under CFG-following control flow *)

type t

val analyze :
  ?entries:int list -> ?init_sp:int -> layout:Vm.Layout.t -> Vm.Program.t -> t
(** Analyze a decoded program. [entries] are the boundary pcs execution
    may start from (default: every segment base); [init_sp] pins the
    stack pointer's entry value (the loader's [stack_top - 16]) — left
    out, [SP] starts unconstrained and nothing stack-relative is ever
    proven. *)

val program : t -> Vm.Program.t

val matches : t -> Vm.Program.t -> bool
(** Does [t] describe this program? Static results are only valid for
    the exact code they were computed from (segment fingerprints). *)

val interval_at : t -> pc:int -> reg:int -> iv option
(** In-state interval of register [reg] just before executing [pc];
    [None] when the pc is unmapped or statically unreachable. Sound for
    CFG-following executions: every dynamically observed register value
    at [pc] lies inside the interval. *)

val classify : t -> int -> cls option
(** The access partition entry for a pc; [None] when the instruction
    there is not a memory access (or the pc is unmapped). *)

val proven_safe : t -> int -> bool
(** pc is a memory access proven to stay inside one constant region. *)

val safe_range : t -> int -> (int * int) option
(** The constant region [\[lo, hi)] backing a proven access, in the form
    {!Vm.Block_compile} bakes into an elided closure; [None] for
    anything not proven. *)

val feasible_unsafe_write : t -> int -> bool
(** pc is a store that could statically go out of bounds ([Possible] or
    [Oob]) — the feasibility bar a VSEF overflow check must clear in
    {!Sweeper.Antibody.validate_static}. Proven-safe and unreachable
    stores, and non-stores, are infeasible. *)

val iter_accesses : t -> (int -> cls -> unit) -> unit
(** Iterate every memory-access pc with its classification, segments in
    base order, ascending pc. *)

val instructions : t -> int
(** Decoded instructions analyzed. *)

val accesses : t -> int
(** Memory-access instructions (loads and stores, word and byte). *)

val proven : t -> int

val possible : t -> int

val oob : t -> int

val unreachable : t -> int

val proven_pct : t -> float
(** [proven / (accesses - unreachable)] — the share of {e reachable}
    accesses proven safe, the fraction whose guards elision removes
    (dead accesses never pay a guard); 0 when nothing is reachable. *)

val analysis_ms : t -> float
(** Analysis wall time, milliseconds. *)
