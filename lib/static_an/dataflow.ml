(** Generic worklist dataflow solver over a {!Cfg}, plus three classic
    instances (reaching definitions, liveness, max stack depth) used as
    both sanity anchors for the framework and building blocks for tools.

    The solver is parameterized by the lattice ([join]/[bottom]/[eq]),
    the per-block [transfer] function, and the direction. Conventions:

    - [Forward]: [d_in.(b)] is the value at block entry, [d_out.(b)]
      after the last instruction. Boundary blocks (no predecessors, or
      starting at a segment base) additionally join [init] into their
      entry value.
    - [Backward]: [d_in.(b)] is the value at block {e exit}, [d_out.(b)]
      at block entry (the transfer function walks instructions in
      reverse). Boundary blocks are those with no successors.

    Termination needs the usual conditions: monotone transfer over a
    lattice with finite ascending chains (or a clamp, as in
    {!max_stack_depth}). *)

module Int_set = Set.Make (Int)

type direction = Forward | Backward

type 'v result = { d_in : 'v array; d_out : 'v array }

let solve (type v) ~dir ~(eq : v -> v -> bool) ~(join : v -> v -> v)
    ~(bottom : v) ~(init : v) ~(transfer : Cfg.block -> v -> v) (cfg : Cfg.t) :
    v result =
  let blocks = Cfg.blocks cfg in
  let n = Array.length blocks in
  let d_in = Array.make n bottom and d_out = Array.make n bottom in
  let incoming b =
    match dir with Forward -> Cfg.preds b | Backward -> Cfg.succs b
  in
  let outgoing b =
    match dir with Forward -> Cfg.succs b | Backward -> Cfg.preds b
  in
  let boundary b =
    match dir with
    | Forward -> incoming b = [] || Cfg.is_entry cfg b
    | Backward -> incoming b = []
  in
  let on_list = Array.make n false in
  let work = Queue.create () in
  Array.iter
    (fun (b : Cfg.block) ->
      Queue.add b.Cfg.b_id work;
      on_list.(b.Cfg.b_id) <- true)
    blocks;
  while not (Queue.is_empty work) do
    let id = Queue.pop work in
    on_list.(id) <- false;
    let b = blocks.(id) in
    let seed = if boundary b then init else bottom in
    let inflow =
      List.fold_left (fun acc p -> join acc d_out.(p)) seed (incoming b)
    in
    let outflow = transfer b inflow in
    d_in.(id) <- inflow;
    if not (eq outflow d_out.(id)) then begin
      d_out.(id) <- outflow;
      List.iter
        (fun s ->
          if not on_list.(s) then begin
            Queue.add s work;
            on_list.(s) <- true
          end)
        (outgoing b)
    end
  done;
  { d_in; d_out }

(* --- Instruction def/use sets ------------------------------------------- *)

let sp = Vm.Isa.reg_index Vm.Isa.SP
let r0 = Vm.Isa.reg_index Vm.Isa.R0

(** Registers an instruction (re)defines, as indices. The syscall ABI
    returns in [r0]; call/return machinery moves [sp]. *)
let defs (i : Vm.Isa.instr) : int list =
  let r x = Vm.Isa.reg_index x in
  match i with
  | Mov (rd, _) | Bin (_, rd, _) | Not rd | Neg rd
  | Load (rd, _, _) | Loadb (rd, _, _) ->
    [ r rd ]
  | Pop rd -> [ r rd; sp ]
  | Push _ | Call _ | CallInd _ | Ret -> [ sp ]
  | Syscall _ -> [ r0 ]
  | Store _ | Storeb _ | Cmp _ | Jmp _ | Jcc _ | Halt | Nop -> []

(** Registers an instruction reads, as indices. The syscall ABI passes
    arguments in [r0..r3]. *)
let uses (i : Vm.Isa.instr) : int list =
  let r x = Vm.Isa.reg_index x in
  let op = function Vm.Isa.Reg x -> [ r x ] | Imm _ | Sym _ -> [] in
  match i with
  | Mov (_, o) -> op o
  | Bin (_, rd, o) -> r rd :: op o
  | Not rd | Neg rd -> [ r rd ]
  | Load (_, rs, _) | Loadb (_, rs, _) -> [ r rs ]
  | Store (rb, _, rs) | Storeb (rb, _, rs) -> [ r rb; r rs ]
  | Push o -> sp :: op o
  | Pop _ -> [ sp ]
  | Cmp (rd, o) -> r rd :: op o
  | CallInd rs -> [ r rs; sp ]
  | Call _ | Ret -> [ sp ]
  | Syscall _ -> [ 0; 1; 2; 3 ]
  | Jmp _ | Jcc _ | Halt | Nop -> []

(* --- Reaching definitions ----------------------------------------------- *)

(** Per-register set of instruction addresses whose definition of that
    register may reach the program point. *)
type rdefs = Int_set.t array

let rdefs_eq (a : rdefs) (b : rdefs) =
  let ok = ref true in
  Array.iteri (fun i s -> if not (Int_set.equal s b.(i)) then ok := false) a;
  !ok

let rdefs_join (a : rdefs) (b : rdefs) =
  Array.init Vm.Isa.num_regs (fun i -> Int_set.union a.(i) b.(i))

let rdefs_bottom () : rdefs = Array.make Vm.Isa.num_regs Int_set.empty

let reaching_definitions (cfg : Cfg.t) : rdefs result =
  let transfer (b : Cfg.block) (v : rdefs) =
    let v = Array.copy v in
    Array.iter
      (fun (pc, instr) ->
        List.iter (fun r -> v.(r) <- Int_set.singleton pc) (defs instr))
      b.Cfg.b_instrs;
    v
  in
  solve ~dir:Forward ~eq:rdefs_eq ~join:rdefs_join ~bottom:(rdefs_bottom ())
    ~init:(rdefs_bottom ()) ~transfer cfg

(* --- Liveness ------------------------------------------------------------ *)

(** Backward liveness over register bitmasks (bit [i] = register index
    [i] live). Nothing is assumed live at program exit. For [Backward]
    direction, [d_out.(b)] is the live set at block entry. *)
let liveness (cfg : Cfg.t) : int result =
  let mask rs = List.fold_left (fun m r -> m lor (1 lsl r)) 0 rs in
  let transfer (b : Cfg.block) live_out =
    let live = ref live_out in
    for i = Array.length b.Cfg.b_instrs - 1 downto 0 do
      let _, instr = b.Cfg.b_instrs.(i) in
      live := !live land lnot (mask (defs instr)) lor mask (uses instr)
    done;
    !live
  in
  solve ~dir:Backward ~eq:Int.equal ~join:( lor ) ~bottom:0 ~init:0 ~transfer
    cfg

(* --- Max stack depth ----------------------------------------------------- *)

(* Lattice element: bytes of stack in use relative to segment entry;
   [min_int] is the unreachable bottom. Depths are clamped so loops with
   net stack growth still reach a fixpoint ([join] is [max], whose
   ascending chains are otherwise unbounded).

   Calls are treated as stack-balanced: [Call] pushes a return slot that
   the matching [Ret] pops, so on the fallthrough path to the return site
   their net effect is 0. (Without this convention every loop containing
   a call would gain +4 per iteration — the Ret's pop flows to the CFG's
   unknown-target sink, not back to the return site — and the analysis
   would always saturate at [depth_cap].) The callee's own frame still
   counts: its prologue [Sub SP, k] is reached through the call edge at
   the caller's depth. Unbounded recursion therefore still climbs to the
   cap, which is the right answer for it. *)
let depth_cap = 1 lsl 20

let stack_delta (i : Vm.Isa.instr) =
  match i with
  | Push _ -> Vm.Isa.instr_size
  | Pop _ -> -Vm.Isa.instr_size
  | Call _ | CallInd _ | Ret -> 0
  | Bin (Sub, SP, Imm k) -> k
  | Bin (Add, SP, Imm k) -> -k
  | _ -> 0

let clamp d = if d > depth_cap then depth_cap else if d < 0 then 0 else d

(** Upper bound (modulo {!depth_cap}) on bytes of stack any path pushes
    beyond the depth at segment entry. *)
let max_stack_depth (cfg : Cfg.t) : int =
  let transfer (b : Cfg.block) d =
    if d = min_int then min_int
    else
      Array.fold_left
        (fun d (_, instr) -> clamp (d + stack_delta instr))
        d b.Cfg.b_instrs
  in
  let r =
    solve ~dir:Forward ~eq:Int.equal ~join:max ~bottom:min_int ~init:0
      ~transfer cfg
  in
  let deepest = ref 0 in
  Array.iter
    (fun (b : Cfg.block) ->
      let d = r.d_in.(b.Cfg.b_id) in
      if d <> min_int then begin
        let d = ref d in
        Array.iter
          (fun (_, instr) ->
            d := clamp (!d + stack_delta instr);
            if !d > !deepest then deepest := !d)
          b.Cfg.b_instrs
      end)
    (Cfg.blocks cfg);
  !deepest
