(* Interval abstract interpretation over decoded programs — see the .mli
   for the model. The shape mirrors [Staint]: one pass of CFG recovery,
   a hand-rolled worklist to a post-fixpoint, then per-segment result
   arrays indexed like the segment's instruction array.

   The domain is unsigned-32 intervals. All arithmetic mirrors
   [Vm.Isa.eval_binop]'s wrap-around semantics exactly: an interval
   operation is either the exact image of the concrete one or [top],
   never something in between, so soundness never hinges on a partial
   precision argument. *)

open Vm.Isa
module P = Vm.Program

type iv = { lo : int; hi : int }

type cls =
  | Proven of int * int
  | Possible
  | Oob
  | Unreachable

let um = word_mask
let top = { lo = 0; hi = um }

let const n =
  let n = to_u32 n in
  { lo = n; hi = n }

let join_iv a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let leq_iv a b = a.lo >= b.lo && a.hi <= b.hi

let widen_iv old nw =
  {
    lo = (if nw.lo < old.lo then 0 else old.lo);
    hi = (if nw.hi > old.hi then um else old.hi);
  }

(* Significant bits of a non-negative int. *)
let bits n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  go n 0

(* (x + y) mod 2^32 — exact unless the sum straddles the wrap point. *)
let add_iv a b =
  let lo = a.lo + b.lo and hi = a.hi + b.hi in
  if hi <= um then { lo; hi }
  else if lo > um then { lo = lo - um - 1; hi = hi - um - 1 }
  else top

(* (x - y) mod 2^32 — exact unless the difference straddles zero. *)
let sub_iv a b =
  let lo = a.lo - b.hi and hi = a.hi - b.lo in
  if lo >= 0 then { lo; hi }
  else if hi < 0 then { lo = lo + um + 1; hi = hi + um + 1 }
  else top

let mul_iv a b =
  let hi = a.hi * b.hi in
  if hi <= um then { lo = a.lo * b.lo; hi } else top

(* The interpreter evaluates Div/Mod/compares on sign-extended values;
   intervals are only precise where signedness cannot bite — operands
   below 2^31 and a positive constant divisor. *)
let s32_max = 0x7FFFFFFF

let binop_iv op a b =
  match op with
  | Add -> add_iv a b
  | Sub -> sub_iv a b
  | Mul -> mul_iv a b
  | Div ->
    if b.lo = b.hi && b.lo > 0 && b.lo <= s32_max && a.hi <= s32_max then
      { lo = a.lo / b.lo; hi = a.hi / b.lo }
    else top
  | Mod ->
    if b.lo = b.hi && b.lo > 0 && b.lo <= s32_max && a.hi <= s32_max then
      if a.hi < b.lo then a else { lo = 0; hi = b.lo - 1 }
    else top
  | And -> { lo = 0; hi = min a.hi b.hi }
  | Or ->
    let m = a.hi lor b.hi in
    { lo = max a.lo b.lo; hi = (if m = 0 then 0 else (1 lsl bits m) - 1) }
  | Xor ->
    let m = a.hi lor b.hi in
    { lo = 0; hi = (if m = 0 then 0 else (1 lsl bits m) - 1) }
  | Shl ->
    if b.lo = b.hi then begin
      let k = to_s32 b.lo land 31 in
      let hi = a.hi lsl k in
      if hi <= um then { lo = a.lo lsl k; hi } else top
    end
    else top
  | Shr ->
    if b.lo = b.hi then begin
      let k = to_s32 b.lo land 31 in
      { lo = a.lo lsr k; hi = a.hi lsr k }
    end
    else { lo = 0; hi = a.hi }

(* lnot x land mask = mask - x: exact. *)
let not_iv a = { lo = um - a.hi; hi = um - a.lo }

(* (0 - x) mod 2^32: exact away from the 0 wrap. *)
let neg_iv a =
  if a.lo = 0 && a.hi = 0 then a
  else if a.lo > 0 then { lo = um + 1 - a.hi; hi = um + 1 - a.lo }
  else top

let sp = reg_index SP
let fp = reg_index FP

(* One abstract state: an interval per register; bottom (unreachable) is
   the absence of a state. *)
let eval_operand (st : iv array) = function
  | Imm n -> const n
  | Reg r -> st.(reg_index r)
  | Sym _ -> top (* unresolved symbols never survive Asm.load *)

(* In-place abstract execution of one instruction. [Call]/[CallInd] model
   the return-slot push (their out-state is the callee-entry state); the
   fallthrough edge to the return site is handled by the caller of
   [transfer], which havocs everything but SP/FP off the pre-call
   state. *)
let transfer (st : iv array) (ins : instr) =
  match ins with
  | Mov (rd, op) -> st.(reg_index rd) <- eval_operand st op
  | Bin (op, rd, src) ->
    let d = reg_index rd in
    st.(d) <- binop_iv op st.(d) (eval_operand st src)
  | Not rd ->
    let d = reg_index rd in
    st.(d) <- not_iv st.(d)
  | Neg rd ->
    let d = reg_index rd in
    st.(d) <- neg_iv st.(d)
  | Load (rd, _, _) -> st.(reg_index rd) <- top
  | Loadb (rd, _, _) -> st.(reg_index rd) <- { lo = 0; hi = 0xFF }
  | Store _ | Storeb _ -> ()
  | Push _ -> st.(sp) <- sub_iv st.(sp) (const 4)
  | Pop rd ->
    let d = reg_index rd in
    st.(d) <- top;
    if d <> sp then st.(sp) <- add_iv st.(sp) (const 4)
  | Cmp _ -> ()
  | Jmp _ | Jcc _ -> ()
  | Call _ | CallInd _ -> st.(sp) <- sub_iv st.(sp) (const 4)
  | Ret -> st.(sp) <- add_iv st.(sp) (const 4)
  | Syscall _ -> st.(reg_index R0) <- top
  | Halt | Nop -> ()

type t = {
  ab_prog : P.t;
  ab_in : iv array option array array;
      (** per segment, per instruction: the in-state (None = unreachable) *)
  ab_cls : Bytes.t array;
      (** per segment: 'N' not an access, 'D'/'K' proven (data/stack),
          'P' possible, 'O' proven-oob, 'U' unreachable *)
  ab_data : int * int;
  ab_stack : int * int;
  ab_total : int;
  ab_accesses : int;
  ab_proven : int;
  ab_possible : int;
  ab_oob : int;
  ab_unreach : int;
  ab_ms : float;
}

let analyze ?entries ?init_sp ~(layout : Vm.Layout.t) (prog : P.t) =
  let t0 = Sys.time () in
  let cfg = Cfg.build prog in
  let blocks = Cfg.blocks cfg in
  let nb = Array.length blocks in
  let sink = Cfg.unknown cfg in
  let is_sink id = match sink with Some s -> s = id | None -> false in
  let entry_ids =
    match entries with
    | Some pcs ->
      List.filter_map
        (fun pc -> Option.map (fun b -> b.Cfg.b_id) (Cfg.block_at cfg pc))
        pcs
    | None ->
      Array.to_list blocks
      |> List.filter_map (fun b ->
             if b.Cfg.b_pc >= 0 && Cfg.is_entry cfg b then Some b.Cfg.b_id
             else None)
  in
  let entry_state () =
    Array.init num_regs (fun i ->
        match init_sp with Some v when i = sp -> const v | _ -> top)
  in
  (* Address-taken blocks: entry pcs appearing as immediate operands
     anywhere in the code (function pointers, forged-return literals).
     These are the only blocks indirect control can target that the CFG
     does not already edge into. *)
  let addr_taken = Array.make (max nb 1) false in
  let note_imm v =
    let v = to_u32 v in
    match Cfg.block_at cfg v with
    | Some b when b.Cfg.b_pc = v -> addr_taken.(b.Cfg.b_id) <- true
    | _ -> ()
  in
  Array.iter
    (fun b ->
      if b.Cfg.b_pc >= 0 then
        Array.iter
          (fun (_, ins) ->
            match ins with
            | Mov (_, Imm v) | Bin (_, _, Imm v) | Push (Imm v) | Cmp (_, Imm v)
              ->
              note_imm v
            | _ -> ())
          b.Cfg.b_instrs)
    blocks;
  (* Widening points: any block with a predecessor at or after it in pc
     order — every cycle closes through one such edge. *)
  let loop_head = Array.make (max nb 1) false in
  Array.iter
    (fun b ->
      if b.Cfg.b_pc >= 0 && List.exists (fun p -> p >= b.Cfg.b_id) (Cfg.preds b)
      then loop_head.(b.Cfg.b_id) <- true)
    blocks;
  let bin : iv array option array = Array.make (max nb 1) None in
  let hcall = ref None in (* joined at indirect-call sites *)
  let huniv = ref false in (* an unresolvable direct target broadcasts everywhere *)
  let join_into ~widen id st =
    match bin.(id) with
    | None ->
      bin.(id) <- Some (Array.copy st);
      true
    | Some cur ->
      let grew = ref false in
      let nw =
        Array.init num_regs (fun i ->
            let j = join_iv cur.(i) st.(i) in
            if not (leq_iv j cur.(i)) then grew := true;
            j)
      in
      if not !grew then false
      else begin
        bin.(id) <-
          Some
            (if widen then
               Array.init num_regs (fun i -> widen_iv cur.(i) nw.(i))
             else nw);
        true
      end
  in
  let q = Queue.create () in
  let on_q = Array.make (max nb 1) false in
  let enqueue id =
    if (not (is_sink id)) && not on_q.(id) then begin
      on_q.(id) <- true;
      Queue.add id q
    end
  in
  let hcall_targets f =
    Array.iter
      (fun b ->
        let id = b.Cfg.b_id in
        if b.Cfg.b_pc >= 0 && (!huniv || addr_taken.(id)) then f id)
      blocks
  in
  (* The hijack state is itself widened on every growth, so the feedback
     loop through indirect-call sites stabilizes in O(num_regs) steps. *)
  let join_hcall st =
    let changed =
      match !hcall with
      | None ->
        hcall := Some (Array.copy st);
        true
      | Some cur ->
        let grew = ref false in
        let nw =
          Array.init num_regs (fun i ->
              let j = join_iv cur.(i) st.(i) in
              if not (leq_iv j cur.(i)) then grew := true;
              widen_iv cur.(i) j)
        in
        if !grew then begin
          hcall := Some nw;
          true
        end
        else false
    in
    if changed then
      hcall_targets (fun id ->
          if join_into ~widen:loop_head.(id) id (Option.get !hcall) then
            enqueue id)
  in
  let set_huniv () =
    if not !huniv then begin
      huniv := true;
      match !hcall with
      | Some h ->
        hcall_targets (fun id ->
            if join_into ~widen:loop_head.(id) id h then enqueue id)
      | None -> ()
    end
  in
  (* Walk a block off its in-state: the state before the terminator (what
     a call's return site inherits SP/FP from) and the out-state (what
     jump/branch/call edges carry). *)
  let walk id =
    match bin.(id) with
    | None -> None
    | Some st0 ->
      let b = blocks.(id) in
      let st = Array.copy st0 in
      let n = Array.length b.Cfg.b_instrs in
      for i = 0 to n - 2 do
        transfer st (snd b.Cfg.b_instrs.(i))
      done;
      let pre = Array.copy st in
      let term = if n = 0 then Nop else snd b.Cfg.b_instrs.(n - 1) in
      transfer st term;
      let is_call = match term with Call _ | CallInd _ -> true | _ -> false in
      Some (st, pre, term, is_call)
  in
  let return_site_state pre =
    Array.init num_regs (fun i -> if i = sp || i = fp then pre.(i) else top)
  in
  let process id =
    match walk id with
    | None -> ()
    | Some (out, pre, term, is_call) ->
      (match term with
      | CallInd _ -> join_hcall out
      | Jmp (Lbl _) | Jcc (_, Lbl _) | Call (Lbl _) ->
        set_huniv ();
        join_hcall out
      | _ -> ());
      List.iter
        (fun (succ, kind) ->
          if not (is_sink succ) then begin
            let carry =
              match kind with
              | Cfg.Fallthrough when is_call -> return_site_state pre
              | Cfg.Fallthrough | Cfg.Jump | Cfg.Branch | Cfg.Call | Cfg.Unknown
                ->
                out
            in
            if join_into ~widen:loop_head.(succ) succ carry then enqueue succ
          end)
        blocks.(id).Cfg.b_succs
  in
  List.iter
    (fun id ->
      ignore (join_into ~widen:false id (entry_state ()));
      enqueue id)
    entry_ids;
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    on_q.(id) <- false;
    process id
  done;
  (* Two descending sweeps undo widening overshoot: recomputing a
     block's in-state from a post-fixpoint only shrinks it, and every
     intermediate state stays above the least fixpoint. The hijack state
     is frozen here. *)
  let flow_in id =
    let acc = ref None in
    let add st =
      acc :=
        Some
          (match !acc with
          | None -> Array.copy st
          | Some a -> Array.init num_regs (fun i -> join_iv a.(i) st.(i)))
    in
    if List.mem id entry_ids then add (entry_state ());
    (match !hcall with
    | Some h when !huniv || addr_taken.(id) -> add h
    | _ -> ());
    List.iter
      (fun p ->
        if not (is_sink p) then
          match walk p with
          | None -> ()
          | Some (out, pre, _, is_call) ->
            List.iter
              (fun (succ, kind) ->
                if succ = id then
                  match kind with
                  | Cfg.Unknown -> ()
                  | Cfg.Fallthrough when is_call -> add (return_site_state pre)
                  | Cfg.Fallthrough | Cfg.Jump | Cfg.Branch | Cfg.Call -> add out)
              blocks.(p).Cfg.b_succs)
      (Cfg.preds blocks.(id));
    !acc
  in
  for _sweep = 1 to 2 do
    Array.iter
      (fun b ->
        let id = b.Cfg.b_id in
        if b.Cfg.b_pc >= 0 && bin.(id) <> None then
          match flow_in id with Some s -> bin.(id) <- Some s | None -> ())
      blocks
  done;
  (* Final pass: per-instruction in-states and the access partition. *)
  let segs = prog.P.segments in
  let ab_in =
    Array.map (fun s -> Array.make (Array.length s.P.seg_instrs) None) segs
  in
  let ab_cls =
    Array.map (fun s -> Bytes.make (Array.length s.P.seg_instrs) 'N') segs
  in
  let data_lo = layout.Vm.Layout.data_base
  and data_hi = layout.Vm.Layout.data_limit in
  let stk_lo = layout.Vm.Layout.stack_limit
  and stk_hi = layout.Vm.Layout.stack_top in
  let heap_lo = layout.Vm.Layout.heap_base in
  (* One page of slack over the arena cap: the mapped heap limit rounds
     the break up to a page boundary. *)
  let heap_hi = layout.Vm.Layout.heap_max + 0x1000 in
  let classify_access av =
    if av.lo >= data_lo && av.hi < data_hi then 'D'
    else if av.lo >= stk_lo && av.hi < stk_hi then 'K'
    else
      let overlaps lo hi = av.lo < hi && av.hi >= lo in
      if
        (not (overlaps data_lo data_hi))
        && (not (overlaps stk_lo stk_hi))
        && not (overlaps heap_lo heap_hi)
      then 'O'
      else 'P'
  in
  let n_acc = ref 0
  and n_prov = ref 0
  and n_poss = ref 0
  and n_oob = ref 0
  and n_unr = ref 0 in
  Array.iter
    (fun b ->
      if b.Cfg.b_pc >= 0 then begin
        let st = Option.map Array.copy bin.(b.Cfg.b_id) in
        Array.iter
          (fun (pc, ins) ->
            let si, ii =
              match P.locate prog pc with
              | Some x -> x
              | None -> assert false (* block pcs are decoded pcs *)
            in
            (match st with
            | Some s -> ab_in.(si).(ii) <- Some (Array.copy s)
            | None -> ());
            (let record c =
               incr n_acc;
               Bytes.set ab_cls.(si) ii c;
               match c with
               | 'D' | 'K' -> incr n_prov
               | 'P' -> incr n_poss
               | 'O' -> incr n_oob
               | _ -> incr n_unr
             in
             match ins with
             | Load (_, rs, off)
             | Loadb (_, rs, off)
             | Store (rs, off, _)
             | Storeb (rs, off, _) -> (
               match st with
               | None -> record 'U'
               | Some s ->
                 record (classify_access (add_iv s.(reg_index rs) (const off))))
             | _ -> ());
            match st with Some s -> transfer s ins | None -> ())
          b.Cfg.b_instrs
      end)
    blocks;
  {
    ab_prog = prog;
    ab_in;
    ab_cls;
    ab_data = (data_lo, data_hi);
    ab_stack = (stk_lo, stk_hi);
    ab_total = P.length prog;
    ab_accesses = !n_acc;
    ab_proven = !n_prov;
    ab_possible = !n_poss;
    ab_oob = !n_oob;
    ab_unreach = !n_unr;
    ab_ms = (Sys.time () -. t0) *. 1000.;
  }

let program t = t.ab_prog

let matches t (prog : P.t) =
  t.ab_prog == prog
  ||
  let a = t.ab_prog.P.segments and b = prog.P.segments in
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri
         (fun i (sa : P.segment) ->
           let sb = b.(i) in
           if
             sa.P.seg_base <> sb.P.seg_base
             || sa.P.seg_limit <> sb.P.seg_limit
             || sa.P.seg_fp <> sb.P.seg_fp
           then ok := false)
         a;
       !ok
     end

let interval_at t ~pc ~reg =
  match P.locate t.ab_prog pc with
  | None -> None
  | Some (si, ii) -> (
    match t.ab_in.(si).(ii) with
    | None -> None
    | Some st -> if reg >= 0 && reg < num_regs then Some st.(reg) else None)

let cls_byte t pc =
  match P.locate t.ab_prog pc with
  | None -> 'N'
  | Some (si, ii) -> Bytes.get t.ab_cls.(si) ii

let cls_of_byte t = function
  | 'D' -> Some (Proven (fst t.ab_data, snd t.ab_data))
  | 'K' -> Some (Proven (fst t.ab_stack, snd t.ab_stack))
  | 'P' -> Some Possible
  | 'O' -> Some Oob
  | 'U' -> Some Unreachable
  | _ -> None

let classify t pc = cls_of_byte t (cls_byte t pc)

let proven_safe t pc =
  match cls_byte t pc with 'D' | 'K' -> true | _ -> false

let safe_range t pc =
  match cls_byte t pc with
  | 'D' -> Some t.ab_data
  | 'K' -> Some t.ab_stack
  | _ -> None

let feasible_unsafe_write t pc =
  (match P.fetch t.ab_prog pc with
  | Some (Store _ | Storeb _) -> true
  | _ -> false)
  && match cls_byte t pc with 'P' | 'O' -> true | _ -> false

let iter_accesses t f =
  Array.iteri
    (fun si (seg : P.segment) ->
      Bytes.iteri
        (fun ii c ->
          match cls_of_byte t c with
          | Some cls -> f (seg.P.seg_base + (ii * instr_size)) cls
          | None -> ())
        t.ab_cls.(si))
    t.ab_prog.P.segments

let instructions t = t.ab_total
let accesses t = t.ab_accesses
let proven t = t.ab_proven
let possible t = t.ab_possible
let oob t = t.ab_oob
let unreachable t = t.ab_unreach

let proven_pct t =
  let reachable = t.ab_accesses - t.ab_unreach in
  if reachable <= 0 then 0.
  else float_of_int t.ab_proven /. float_of_int reachable

let analysis_ms t = t.ab_ms
