(** Control-flow graph recovery over decoded {!Vm.Program} segments.

    Blocks are maximal straight-line runs of instructions: a block ends at
    a control transfer ([Jmp]/[Jcc]/[Call]/[CallInd]/[Ret]/[Halt]) or just
    before an instruction some branch targets. Branch targets are taken
    from the decoded instruction stream — loaded programs carry absolute
    [Addr] targets, so recovery needs no relocation pass.

    Indirect calls, returns, and the (never-loaded, but representable)
    unresolved [Lbl] targets get a conservative edge to a single pseudo
    "unknown" sink node: the graph never claims to know where they go.
    [Call] additionally gets a fallthrough edge to its return site so
    intraprocedural analyses see the post-call continuation. A direct
    branch to an address outside every segment gets no edge at all — the
    CPU turns that into an [Exec_violation] before any successor runs. *)

type edge_kind =
  | Fallthrough  (** straight-line successor (incl. a call's return site) *)
  | Jump  (** unconditional direct jump *)
  | Branch  (** taken edge of a conditional branch *)
  | Call  (** direct call to the callee's entry block *)
  | Unknown  (** conservative edge into the unknown sink *)

type block = {
  b_id : int;
  b_pc : int;  (** address of the first instruction; [-1] for the sink *)
  b_instrs : (int * Vm.Isa.instr) array;  (** (pc, instruction) pairs *)
  mutable b_succs : (int * edge_kind) list;
  mutable b_preds : int list;
}

type t = {
  c_blocks : block array;
  c_unknown : int option;  (** id of the unknown sink, when one exists *)
  c_entries : int list;  (** ids of blocks starting at a segment base *)
}

let blocks t = t.c_blocks
let unknown t = t.c_unknown

(** [(entry_pc, length)] of every ordinary block, ascending pc. The
    unknown sink (the conservative target of indirect control, [b_pc] =
    [-1], no instructions) is excluded: it names no code range, so there
    is nothing for the VM's block-superinstruction tier to compile —
    indirect transfers resolve at run time and land on whichever real
    block (or fault) the target address denotes. *)
let block_bounds t =
  let bs = t.c_blocks in
  let n =
    match t.c_unknown with
    | Some _ -> Array.length bs - 1
    | None -> Array.length bs
  in
  Array.init n (fun i -> (bs.(i).b_pc, Array.length bs.(i).b_instrs))
let is_entry t (b : block) = List.mem b.b_id t.c_entries
let succs (b : block) = List.map fst b.b_succs
let preds (b : block) = b.b_preds

(** The block whose instruction range contains [pc], if any. *)
let block_at t pc =
  let bs = t.c_blocks in
  let contains b =
    b.b_pc >= 0
    && pc >= b.b_pc
    && pc < b.b_pc + (Array.length b.b_instrs * Vm.Isa.instr_size)
  in
  let rec search lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let b = bs.(mid) in
      if contains b then Some b
      else if b.b_pc = -1 || pc < b.b_pc then search lo (mid - 1)
      else search (mid + 1) hi
  in
  (* Ordinary blocks are in ascending pc order; the sink (pc = -1) is
     last and excluded from the search range. *)
  let hi =
    match t.c_unknown with
    | Some _ -> Array.length bs - 2
    | None -> Array.length bs - 1
  in
  search 0 hi

let is_terminator (i : Vm.Isa.instr) =
  match i with
  | Jmp _ | Jcc _ | Call _ | CallInd _ | Ret | Halt -> true
  | Mov _ | Bin _ | Not _ | Neg _ | Load _ | Loadb _ | Store _ | Storeb _
  | Push _ | Pop _ | Cmp _ | Syscall _ | Nop ->
    false

(* A direct target that lands on a decoded instruction, or [None]. *)
let static_target prog (tgt : Vm.Isa.target) =
  match tgt with
  | Addr a -> if Vm.Program.locate prog a <> None then Some a else None
  | Lbl _ -> None

let build (prog : Vm.Program.t) : t =
  let segs = prog.Vm.Program.segments in
  (* Pass 1: leaders — segment starts, branch targets, and the
     instruction after every control transfer. *)
  let leaders = Hashtbl.create 64 in
  let mark_leader pc = Hashtbl.replace leaders pc () in
  Array.iter
    (fun seg ->
      let base = seg.Vm.Program.seg_base in
      let instrs = seg.Vm.Program.seg_instrs in
      if Array.length instrs > 0 then mark_leader base;
      Array.iteri
        (fun i instr ->
          let pc = base + (i * Vm.Isa.instr_size) in
          if is_terminator instr && i + 1 < Array.length instrs then
            mark_leader (pc + Vm.Isa.instr_size);
          match instr with
          | Vm.Isa.Jmp tgt | Vm.Isa.Jcc (_, tgt) | Vm.Isa.Call tgt -> (
            match static_target prog tgt with
            | Some a -> mark_leader a
            | None -> ())
          | _ -> ())
        instrs)
    segs;
  (* Pass 2: cut each segment into blocks at leaders/terminators. *)
  let blocks = ref [] in
  let n_blocks = ref 0 in
  let index = Hashtbl.create 64 in
  Array.iter
    (fun seg ->
      let base = seg.Vm.Program.seg_base in
      let instrs = seg.Vm.Program.seg_instrs in
      let n = Array.length instrs in
      let cur = ref [] in
      let cur_pc = ref base in
      let flush () =
        if !cur <> [] then begin
          let b =
            {
              b_id = !n_blocks;
              b_pc = !cur_pc;
              b_instrs = Array.of_list (List.rev !cur);
              b_succs = [];
              b_preds = [];
            }
          in
          incr n_blocks;
          Hashtbl.replace index b.b_pc b.b_id;
          blocks := b :: !blocks;
          cur := []
        end
      in
      for i = 0 to n - 1 do
        let pc = base + (i * Vm.Isa.instr_size) in
        if Hashtbl.mem leaders pc then flush ();
        if !cur = [] then cur_pc := pc;
        cur := (pc, instrs.(i)) :: !cur;
        if is_terminator instrs.(i) then flush ()
      done;
      flush ())
    segs;
  let blocks = Array.of_list (List.rev !blocks) in
  (* Pass 3: edges. The unknown sink is materialized lazily, only when
     some instruction actually needs a conservative edge. *)
  let unknown = ref None in
  let edge b target kind = b.b_succs <- (target, kind) :: b.b_succs in
  let edge_unknown b =
    let id =
      match !unknown with
      | Some id -> id
      | None ->
        let id = Array.length blocks in
        unknown := Some id;
        id
    in
    edge b id Unknown
  in
  let block_of_pc pc = Hashtbl.find index pc in
  Array.iter
    (fun b ->
      let last_pc, last = b.b_instrs.(Array.length b.b_instrs - 1) in
      let fallthrough () =
        match Hashtbl.find_opt index (last_pc + Vm.Isa.instr_size) with
        | Some id -> edge b id Fallthrough
        | None -> ()  (* fell off the end of the segment *)
      in
      let direct tgt kind =
        match static_target prog tgt with
        | Some a -> edge b (block_of_pc a) kind
        | None -> (
          match tgt with
          | Vm.Isa.Lbl _ -> edge_unknown b  (* unresolved symbol *)
          | Vm.Isa.Addr _ -> ())  (* faults at runtime; no successor *)
      in
      match last with
      | Vm.Isa.Jmp tgt -> direct tgt Jump
      | Vm.Isa.Jcc (_, tgt) ->
        direct tgt Branch;
        fallthrough ()
      | Vm.Isa.Call tgt ->
        direct tgt Call;
        fallthrough ()
      | Vm.Isa.CallInd _ ->
        edge_unknown b;
        fallthrough ()
      | Vm.Isa.Ret -> edge_unknown b
      | Vm.Isa.Halt -> ()
      | _ -> fallthrough ())
    blocks;
  let blocks =
    match !unknown with
    | None -> blocks
    | Some id ->
      let sink =
        { b_id = id; b_pc = -1; b_instrs = [||]; b_succs = []; b_preds = [] }
      in
      Array.append blocks [| sink |]
  in
  (* Successor lists were built by prepending; restore program order and
     derive predecessor lists. *)
  Array.iter (fun b -> b.b_succs <- List.rev b.b_succs) blocks;
  Array.iter
    (fun b ->
      List.iter
        (fun (s, _) -> blocks.(s).b_preds <- b.b_id :: blocks.(s).b_preds)
        b.b_succs)
    blocks;
  Array.iter (fun b -> b.b_preds <- List.rev b.b_preds) blocks;
  let entries =
    Array.to_list segs
    |> List.filter_map (fun seg ->
           Hashtbl.find_opt index seg.Vm.Program.seg_base)
  in
  { c_blocks = blocks; c_unknown = !unknown; c_entries = entries }

let edge_kind_name = function
  | Fallthrough -> "fallthrough"
  | Jump -> "jump"
  | Branch -> "branch"
  | Call -> "call"
  | Unknown -> "unknown"

(** Graphviz rendering: one box per block listing its disassembly, edge
    styles by kind (dashed = branch, bold = call, dotted = unknown). *)
let to_dot ?(name = "cfg") t =
  let buf = Buffer.create 1024 in
  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  Array.iter
    (fun b ->
      if b.b_pc = -1 then
        Buffer.add_string buf
          (Printf.sprintf
             "  b%d [label=\"<indirect>\", shape=ellipse, style=dashed];\n"
             b.b_id)
      else begin
        let label = Buffer.create 64 in
        Array.iter
          (fun (pc, instr) ->
            Buffer.add_string label
              (Printf.sprintf "0x%06x  %s\\l" pc
                 (escape (Vm.Disasm.instr_to_string instr))))
          b.b_instrs;
        Buffer.add_string buf
          (Printf.sprintf "  b%d [label=\"%s\"];\n" b.b_id
             (Buffer.contents label))
      end)
    t.c_blocks;
  Array.iter
    (fun b ->
      List.iter
        (fun (s, kind) ->
          let style =
            match kind with
            | Fallthrough | Jump -> ""
            | Branch -> ", style=dashed"
            | Call -> ", style=bold"
            | Unknown -> ", style=dotted"
          in
          Buffer.add_string buf
            (Printf.sprintf "  b%d -> b%d [label=\"%s\"%s];\n" b.b_id s
               (edge_kind_name kind) style))
        b.b_succs)
    t.c_blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
