(* Differential tests for the tiered interpreter: the uninstrumented fast
   path must be observably indistinguishable from the instrumented
   effect-record path. Each case builds two identical machines, forces one
   onto the slow path with a no-op global pre-hook, runs both, and
   compares every piece of architectural state — outcome, registers, pc,
   flags, halt, icount, and memory (including page-boundary windows). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Deterministic qcheck runs by default; QCHECK_SEED overrides. (The
   stock QCheck_alcotest default self-seeds from the clock, which makes
   failures unreproducible — so the seed is pinned here instead.) *)
let qcheck_rand () =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 0x5EED)
    | None -> 0x5EED
  in
  Random.State.make [| seed |]

let outcome_t : Vm.Cpu.outcome Alcotest.testable =
  Alcotest.testable
    (fun fmt o ->
      Format.pp_print_string fmt
        (match o with
        | Vm.Cpu.Halted -> "Halted"
        | Vm.Cpu.Blocked -> "Blocked"
        | Vm.Cpu.Out_of_fuel -> "Out_of_fuel"
        | Vm.Cpu.Faulted f -> "Faulted: " ^ Vm.Event.fault_to_string f))
    ( = )

(* A machine over [instrs] loaded at the app code base, with registers
   R1-R4 pre-pointed at interesting data addresses so random loads and
   stores mostly land in mapped memory, and a recognizable pattern seeded
   around the first data-page boundary. *)
let make_cpu instrs =
  let mem = Vm.Memory.create () in
  let l = Vm.Layout.create ~aslr:false () in
  let base = l.Vm.Layout.app_code_base in
  let code = Vm.Program.of_instrs ~base (Array.of_list instrs) in
  let l =
    Vm.Layout.set_code_limits l
      ~app_limit:(base + (List.length instrs * Vm.Isa.instr_size))
      ~lib_limit:l.Vm.Layout.lib_code_base
  in
  let cpu = Vm.Cpu.create ~mem ~layout:l ~code in
  cpu.Vm.Cpu.pc <- base;
  Vm.Cpu.set_reg cpu Vm.Isa.SP (l.Vm.Layout.stack_top - 16);
  let data = l.Vm.Layout.data_base in
  let boundary = data + Vm.Memory.page_size in
  Vm.Memory.store_bytes mem data
    (String.init 64 (fun i -> Char.chr (0x41 + (i mod 26))));
  Vm.Memory.store_bytes mem (boundary - 8)
    (String.init 16 (fun i -> Char.chr (0x61 + i)));
  Vm.Cpu.set_reg cpu Vm.Isa.R1 data;
  Vm.Cpu.set_reg cpu Vm.Isa.R2 (boundary - 4);
  Vm.Cpu.set_reg cpu Vm.Isa.R3 (data + 40);
  Vm.Cpu.set_reg cpu Vm.Isa.R4 7;
  (cpu, l)

(* Architectural state + the memory windows the programs can reach. *)
let observe (cpu : Vm.Cpu.t) (l : Vm.Layout.t) outcome =
  let data = l.Vm.Layout.data_base in
  let boundary = data + Vm.Memory.page_size in
  ( outcome,
    Array.to_list cpu.Vm.Cpu.regs,
    cpu.Vm.Cpu.pc,
    (cpu.Vm.Cpu.flag_a, cpu.Vm.Cpu.flag_b),
    cpu.Vm.Cpu.halted,
    cpu.Vm.Cpu.icount,
    Vm.Memory.load_bytes cpu.Vm.Cpu.mem data 128,
    Vm.Memory.load_bytes cpu.Vm.Cpu.mem (boundary - 32) 64,
    Vm.Memory.load_bytes cpu.Vm.Cpu.mem (l.Vm.Layout.stack_top - 64) 64 )

(* Run the same program on the fast path and on the forced slow path,
   returning both observations. *)
let run_both ?(fuel = 300) instrs =
  let fast, l_fast = make_cpu instrs in
  let slow, l_slow = make_cpu instrs in
  ignore (Vm.Cpu.add_pre_hook slow (fun _ -> ()));
  let of_ = Vm.Cpu.run ~fuel fast in
  let os = Vm.Cpu.run ~fuel slow in
  (observe fast l_fast of_, observe slow l_slow os)

(* ------------------------------------------------------------------ *)
(* qcheck: random programs agree between the two paths                 *)
(* ------------------------------------------------------------------ *)

let gen_program : Vm.Isa.instr list QCheck.Gen.t =
  let open QCheck.Gen in
  let open Vm.Isa in
  let reg = oneofl [ R0; R1; R2; R3; R4; R5; R6; R7; R8; R9; SP; FP ] in
  let mem_base = oneofl [ R1; R2; R3; R1; R2; R5; SP ] in
  let binop = oneofl [ Add; Sub; Mul; Div; Mod; And; Or; Xor; Shl; Shr ] in
  let cond = oneofl [ Eq; Ne; Lt; Le; Gt; Ge; Ult; Uge ] in
  let imm =
    frequency
      [
        (4, int_range (-6) 40);
        (1, oneofl [ 0x08100000; 0x08100ffe; 0x09000000; 0; 0x7FFFFFFF ]);
      ]
  in
  let off = int_range (-8) 12 in
  sized_size (int_range 8 40) (fun n ->
      let instr i =
        (* forward-only branch targets, occasionally one past the end so
           running off the program is exercised too *)
        let fwd = int_range (i + 1) n in
        frequency
          [
            (3, map2 (fun r v -> Mov (r, Imm v)) reg imm);
            (2, map2 (fun rd rs -> Mov (rd, Reg rs)) reg reg);
            (3, map3 (fun op rd v -> Bin (op, rd, Imm v)) binop reg imm);
            (2, map3 (fun op rd rs -> Bin (op, rd, Reg rs)) binop reg reg);
            (1, map (fun r -> Not r) reg);
            (1, map (fun r -> Neg r) reg);
            (2, map3 (fun rd rs o -> Load (rd, rs, o)) reg mem_base off);
            (2, map3 (fun rd rs o -> Loadb (rd, rs, o)) reg mem_base off);
            (2, map3 (fun rb o rs -> Store (rb, o, rs)) mem_base off reg);
            (2, map3 (fun rb o rs -> Storeb (rb, o, rs)) mem_base off reg);
            (1, map (fun v -> Push (Imm v)) imm);
            (1, map (fun r -> Push (Reg r)) reg);
            (1, map (fun r -> Pop r) reg);
            (2, map2 (fun r v -> Cmp (r, Imm v)) reg imm);
            (1, map2 (fun rd rs -> Cmp (rd, Reg rs)) reg reg);
            (1, map (fun n -> Syscall n) (int_range 0 3));
            (1, map (fun t -> Jmp (Addr (0x08048000 + (4 * t)))) fwd);
            ( 2,
              map2 (fun c t -> Jcc (c, Addr (0x08048000 + (4 * t)))) cond fwd
            );
          ]
      in
      let rec build i acc =
        if i >= n then return (List.rev (Vm.Isa.Halt :: acc))
        else instr i >>= fun ins -> build (i + 1) (ins :: acc)
      in
      build 0 [])

let diff_qcheck =
  QCheck.Test.make ~name:"fast path == instrumented path (random programs)"
    ~count:120
    (QCheck.make ~print:(fun p -> string_of_int (List.length p) ^ " instrs")
       gen_program)
    (fun instrs ->
      let fast, slow = run_both instrs in
      fast = slow)

(* ------------------------------------------------------------------ *)
(* Directed equivalences                                               *)
(* ------------------------------------------------------------------ *)

(* A strcat-shaped byte-copy loop whose destination straddles the first
   data-page boundary: exercises the one-entry TLBs across a page switch
   on both the load and store sides. *)
let copy_program ~src ~dst ~len =
  let open Vm.Isa in
  let base = 0x08048000 in
  [
    Mov (R1, Imm src);
    Mov (R2, Imm dst);
    Mov (R0, Imm 0);
    (* loop: *)
    Loadb (R3, R1, 0);
    Storeb (R2, 0, R3);
    Bin (Add, R1, Imm 1);
    Bin (Add, R2, Imm 1);
    Bin (Add, R0, Imm 1);
    Cmp (R0, Imm len);
    Jcc (Lt, Addr (base + (3 * 4)));
    Halt;
  ]

let test_page_crossing_copy () =
  let data = 0x08100000 in
  let boundary = data + Vm.Memory.page_size in
  let instrs = copy_program ~src:data ~dst:(boundary - 12) ~len:24 in
  let (o1, _, _, _, h1, i1, d1, b1, _), (o2, _, _, _, h2, i2, d2, b2, _) =
    run_both ~fuel:1000 instrs
  in
  Alcotest.check outcome_t "same outcome" o2 o1;
  check_bool "halted" h2 h1;
  check_int "icount" i2 i1;
  check_str "data window" d2 d1;
  check_str "boundary window" b2 b1;
  (* And the copy really happened across the boundary. *)
  let fast, l = make_cpu instrs in
  ignore (Vm.Cpu.run ~fuel:1000 fast);
  check_str "copied across page boundary"
    (String.init 24 (fun i -> Char.chr (0x41 + (i mod 26))))
    (Vm.Memory.load_bytes fast.Vm.Cpu.mem
       (l.Vm.Layout.data_base + Vm.Memory.page_size - 12)
       24)

let test_mid_run_fault () =
  let open Vm.Isa in
  let base = 0x08048000 in
  let instrs =
    [
      Mov (R5, Imm 0x08100010);
      Store (R5, 0, R5);
      Mov (R5, Imm 0x40);  (* low 64 KiB: never mapped *)
      Store (R5, 0, R5);
      Halt;
    ]
  in
  let (o1, _, pc1, _, _, i1, _, _, _), (o2, _, pc2, _, _, i2, _, _, _) =
    run_both instrs
  in
  Alcotest.check outcome_t "same fault" o2 o1;
  Alcotest.check outcome_t "exact fault"
    (Vm.Cpu.Faulted (Vm.Event.Segv_write 0x40))
    o1;
  check_int "pc stays at faulting instruction" (base + 12) pc1;
  check_int "same pc" pc2 pc1;
  check_int "fault does not count as executed" 3 i1;
  check_int "same icount" i2 i1

let test_div_zero_fault () =
  let open Vm.Isa in
  let instrs =
    [ Mov (R0, Imm 5); Mov (R1, Imm 0); Bin (Div, R0, Reg R1); Halt ]
  in
  let (o1, _, pc1, _, _, i1, _, _, _), (o2, _, pc2, _, _, i2, _, _, _) =
    run_both instrs
  in
  Alcotest.check outcome_t "same outcome" o2 o1;
  Alcotest.check outcome_t "div-zero fault" (Vm.Cpu.Faulted Vm.Event.Div_zero) o1;
  check_int "same pc" pc2 pc1;
  check_int "same icount" i2 i1

(* ------------------------------------------------------------------ *)
(* Hook attach/detach while running                                    *)
(* ------------------------------------------------------------------ *)

(* R0 counts to 1000 in a 3-instruction loop:
   base+0: Mov R0,0 / +4: Add / +8: Cmp / +12: Jcc / +16: Halt *)
let counting_loop () =
  let open Vm.Isa in
  let base = 0x08048000 in
  [
    Mov (R0, Imm 0);
    Bin (Add, R0, Imm 1);
    Cmp (R0, Imm 1000);
    Jcc (Lt, Addr (base + 4));
    Halt;
  ]

let test_attach_detach_mid_run () =
  let base = 0x08048000 in
  let cpu, _ = make_cpu (counting_loop ()) in
  (* Warm up on the pure fast path: Mov + 3 iterations, pc back at Add. *)
  Alcotest.check outcome_t "warmup runs out of fuel" Vm.Cpu.Out_of_fuel
    (Vm.Cpu.run ~fuel:10 cpu);
  check_int "warmup executed" 10 cpu.Vm.Cpu.icount;
  check_int "pc mid-loop" (base + 4) cpu.Vm.Cpu.pc;
  (* Attach a pc-hook ahead of the current pc, mid-run: every subsequent
     pass over the Cmp must hit it — the fast path may not skip one. *)
  let fired = ref 0 in
  let h = Vm.Cpu.add_pc_hook cpu ~pc:(base + 8) (fun _ -> incr fired) in
  check_int "hook counted" 1 (Vm.Cpu.pc_hook_count cpu);
  Alcotest.check outcome_t "more fuel" Vm.Cpu.Out_of_fuel
    (Vm.Cpu.run ~fuel:30 cpu);
  check_int "10 full iterations hit the hooked Cmp 10 times" 10 !fired;
  (* Detach: the pc must transition back to the fast path and go silent. *)
  Vm.Cpu.remove_hook cpu h;
  check_int "hook gone" 0 (Vm.Cpu.pc_hook_count cpu);
  Alcotest.check outcome_t "more fuel" Vm.Cpu.Out_of_fuel
    (Vm.Cpu.run ~fuel:30 cpu);
  check_int "detached hook is silent" 10 !fired;
  (* A global hook attached mid-run sees every instruction... *)
  let seen = ref 0 in
  let g = Vm.Cpu.add_pre_hook cpu (fun _ -> incr seen) in
  Alcotest.check outcome_t "more fuel" Vm.Cpu.Out_of_fuel
    (Vm.Cpu.run ~fuel:9 cpu);
  check_int "global hook fires per instruction" 9 !seen;
  (* ...and after removal the program still completes correctly. *)
  Vm.Cpu.remove_hook cpu g;
  Alcotest.check outcome_t "finishes" Vm.Cpu.Halted (Vm.Cpu.run cpu);
  check_int "loop reached its bound" 1000 (Vm.Cpu.get_reg cpu Vm.Isa.R0);
  (* The whole mixed-mode run executed exactly as many instructions as an
     all-fast or all-slow run would have. *)
  let ref_cpu, _ = make_cpu (counting_loop ()) in
  Alcotest.check outcome_t "reference halts" Vm.Cpu.Halted (Vm.Cpu.run ref_cpu);
  check_int "icount matches an uninterrupted run" ref_cpu.Vm.Cpu.icount
    cpu.Vm.Cpu.icount

let test_post_hook_masks_fast_path () =
  (* A pc-level *post* hook must also force the instrumented path (it
     needs the effect record); check it observes the right effect. *)
  let base = 0x08048000 in
  let cpu, _ = make_cpu (counting_loop ()) in
  let writes = ref 0 in
  let h =
    Vm.Cpu.add_pc_post_hook cpu ~pc:(base + 4) (fun eff ->
        writes := !writes + List.length (Vm.Event.regs_written eff))
  in
  Alcotest.check outcome_t "halts" Vm.Cpu.Halted (Vm.Cpu.run cpu);
  check_int "post hook saw every Add commit" 1000 !writes;
  Vm.Cpu.remove_hook cpu h;
  check_int "footprint clear" 0 (Vm.Cpu.pc_hook_count cpu)

let () =
  let qt = QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) in
  Alcotest.run "vm-diff"
    [
      ("differential", [ qt diff_qcheck ]);
      ( "directed",
        [
          Alcotest.test_case "page-crossing copy" `Quick test_page_crossing_copy;
          Alcotest.test_case "mid-run fault" `Quick test_mid_run_fault;
          Alcotest.test_case "div-zero fault" `Quick test_div_zero_fault;
        ] );
      ( "hooks-mid-run",
        [
          Alcotest.test_case "attach/detach transitions" `Quick
            test_attach_detach_mid_run;
          Alcotest.test_case "pc post-hook masks fast path" `Quick
            test_post_hook_masks_fast_path;
        ] );
    ]
