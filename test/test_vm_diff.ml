(* Differential tests for the tiered interpreter: the uninstrumented fast
   path, the instrumented effect-record path, and the compiled
   block-superinstruction tier must be observably indistinguishable. Each
   case builds identical machines, forces one onto the slow path with a
   no-op global pre-hook and compiles another's basic blocks, runs all of
   them, and compares every piece of architectural state — outcome,
   registers, pc, flags, halt, icount, and memory (including
   page-boundary windows). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Deterministic qcheck runs by default; QCHECK_SEED overrides. (The
   stock QCheck_alcotest default self-seeds from the clock, which makes
   failures unreproducible — so the seed is pinned here instead.) *)
let qcheck_rand () =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 0x5EED)
    | None -> 0x5EED
  in
  Random.State.make [| seed |]

let outcome_t : Vm.Cpu.outcome Alcotest.testable =
  Alcotest.testable
    (fun fmt o ->
      Format.pp_print_string fmt
        (match o with
        | Vm.Cpu.Halted -> "Halted"
        | Vm.Cpu.Blocked -> "Blocked"
        | Vm.Cpu.Out_of_fuel -> "Out_of_fuel"
        | Vm.Cpu.Faulted f -> "Faulted: " ^ Vm.Event.fault_to_string f))
    ( = )

(* A machine over [instrs] loaded at the app code base, with registers
   R1-R4 pre-pointed at interesting data addresses so random loads and
   stores mostly land in mapped memory, and a recognizable pattern seeded
   around the first data-page boundary. *)
let make_cpu instrs =
  let mem = Vm.Memory.create () in
  let l = Vm.Layout.create ~aslr:false () in
  let base = l.Vm.Layout.app_code_base in
  let code = Vm.Program.of_instrs ~base (Array.of_list instrs) in
  let l =
    Vm.Layout.set_code_limits l
      ~app_limit:(base + (List.length instrs * Vm.Isa.instr_size))
      ~lib_limit:l.Vm.Layout.lib_code_base
  in
  let cpu = Vm.Cpu.create ~mem ~layout:l ~code in
  cpu.Vm.Cpu.pc <- base;
  Vm.Cpu.set_reg cpu Vm.Isa.SP (l.Vm.Layout.stack_top - 16);
  let data = l.Vm.Layout.data_base in
  let boundary = data + Vm.Memory.page_size in
  Vm.Memory.store_bytes mem data
    (String.init 64 (fun i -> Char.chr (0x41 + (i mod 26))));
  Vm.Memory.store_bytes mem (boundary - 8)
    (String.init 16 (fun i -> Char.chr (0x61 + i)));
  Vm.Cpu.set_reg cpu Vm.Isa.R1 data;
  Vm.Cpu.set_reg cpu Vm.Isa.R2 (boundary - 4);
  Vm.Cpu.set_reg cpu Vm.Isa.R3 (data + 40);
  Vm.Cpu.set_reg cpu Vm.Isa.R4 7;
  (cpu, l)

(* Architectural state + the memory windows the programs can reach. *)
let observe (cpu : Vm.Cpu.t) (l : Vm.Layout.t) outcome =
  let data = l.Vm.Layout.data_base in
  let boundary = data + Vm.Memory.page_size in
  ( outcome,
    Array.to_list cpu.Vm.Cpu.regs,
    cpu.Vm.Cpu.pc,
    (cpu.Vm.Cpu.flag_a, cpu.Vm.Cpu.flag_b),
    cpu.Vm.Cpu.halted,
    cpu.Vm.Cpu.icount,
    Vm.Memory.load_bytes cpu.Vm.Cpu.mem data 128,
    Vm.Memory.load_bytes cpu.Vm.Cpu.mem (boundary - 32) 64,
    Vm.Memory.load_bytes cpu.Vm.Cpu.mem (l.Vm.Layout.stack_top - 64) 64 )

(* A machine with its basic blocks compiled into superinstructions — the
   tier-3 configuration Process.load sets up for real app images. *)
let make_block_cpu instrs =
  let cpu, l = make_cpu instrs in
  Vm.Block_compile.install cpu
    (Static_an.Cfg.block_bounds (Static_an.Cfg.build cpu.Vm.Cpu.code));
  (cpu, l)

(* The tier counters must partition the executed stream exactly; none of
   these programs roll back, so icount is an independent total. *)
let tiers_conserved (cpu : Vm.Cpu.t) =
  cpu.Vm.Cpu.block_retired + cpu.Vm.Cpu.fast_retired + cpu.Vm.Cpu.slow_retired
  = cpu.Vm.Cpu.icount

(* Run the same program on all three tiers, returning the observations
   (fast, slow, block) plus whether the block machine's tier counters
   partitioned its executed stream. *)
let run_three ?(fuel = 300) instrs =
  let fast, l_fast = make_cpu instrs in
  let slow, l_slow = make_cpu instrs in
  let block, l_block = make_block_cpu instrs in
  ignore (Vm.Cpu.add_pre_hook slow (fun _ -> ()));
  let of_ = Vm.Cpu.run ~fuel fast in
  let os = Vm.Cpu.run ~fuel slow in
  let ob = Vm.Cpu.run ~fuel block in
  ( observe fast l_fast of_,
    observe slow l_slow os,
    observe block l_block ob,
    tiers_conserved block )

let run_both ?fuel instrs =
  let f, s, _, _ = run_three ?fuel instrs in
  (f, s)

(* ------------------------------------------------------------------ *)
(* qcheck: random programs agree between the two paths                 *)
(* ------------------------------------------------------------------ *)

let gen_program : Vm.Isa.instr list QCheck.Gen.t =
  let open QCheck.Gen in
  let open Vm.Isa in
  let reg = oneofl [ R0; R1; R2; R3; R4; R5; R6; R7; R8; R9; SP; FP ] in
  let mem_base = oneofl [ R1; R2; R3; R1; R2; R5; SP ] in
  let binop = oneofl [ Add; Sub; Mul; Div; Mod; And; Or; Xor; Shl; Shr ] in
  let cond = oneofl [ Eq; Ne; Lt; Le; Gt; Ge; Ult; Uge ] in
  let imm =
    frequency
      [
        (4, int_range (-6) 40);
        (1, oneofl [ 0x08100000; 0x08100ffe; 0x09000000; 0; 0x7FFFFFFF ]);
      ]
  in
  let off = int_range (-8) 12 in
  sized_size (int_range 8 40) (fun n ->
      let instr i =
        (* forward-only branch targets, occasionally one past the end so
           running off the program is exercised too *)
        let fwd = int_range (i + 1) n in
        frequency
          [
            (3, map2 (fun r v -> Mov (r, Imm v)) reg imm);
            (2, map2 (fun rd rs -> Mov (rd, Reg rs)) reg reg);
            (3, map3 (fun op rd v -> Bin (op, rd, Imm v)) binop reg imm);
            (2, map3 (fun op rd rs -> Bin (op, rd, Reg rs)) binop reg reg);
            (1, map (fun r -> Not r) reg);
            (1, map (fun r -> Neg r) reg);
            (2, map3 (fun rd rs o -> Load (rd, rs, o)) reg mem_base off);
            (2, map3 (fun rd rs o -> Loadb (rd, rs, o)) reg mem_base off);
            (2, map3 (fun rb o rs -> Store (rb, o, rs)) mem_base off reg);
            (2, map3 (fun rb o rs -> Storeb (rb, o, rs)) mem_base off reg);
            (1, map (fun v -> Push (Imm v)) imm);
            (1, map (fun r -> Push (Reg r)) reg);
            (1, map (fun r -> Pop r) reg);
            (2, map2 (fun r v -> Cmp (r, Imm v)) reg imm);
            (1, map2 (fun rd rs -> Cmp (rd, Reg rs)) reg reg);
            (1, map (fun n -> Syscall n) (int_range 0 3));
            (1, map (fun t -> Jmp (Addr (0x08048000 + (4 * t)))) fwd);
            ( 2,
              map2 (fun c t -> Jcc (c, Addr (0x08048000 + (4 * t)))) cond fwd
            );
          ]
      in
      let rec build i acc =
        if i >= n then return (List.rev (Vm.Isa.Halt :: acc))
        else instr i >>= fun ins -> build (i + 1) (ins :: acc)
      in
      build 0 [])

let program_arb =
  QCheck.make ~print:(fun p -> string_of_int (List.length p) ^ " instrs")
    gen_program

let diff_qcheck =
  QCheck.Test.make
    ~name:"block == fast == instrumented path (random programs)" ~count:120
    program_arb
    (fun instrs ->
      let fast, slow, block, conserved = run_three instrs in
      fast = slow && block = fast && conserved)

(* Scheduler-quantum discipline on the block tier: running in fuel quanta
   must land each stop on the exact icount — a block is entered only when
   the remaining quantum covers its whole body, so [run ~fuel] never
   overshoots — and the quantized run must end in the same architectural
   state as one uninterrupted run. This is the property that keeps
   Osim.Sched's interleaved == sequential discipline intact with
   superinstructions installed. *)
let quanta_qcheck =
  QCheck.Test.make
    ~name:"fuel quanta are exact on the block tier (random programs)"
    ~count:60
    (QCheck.pair program_arb (QCheck.int_range 1 13))
    (fun (instrs, quantum) ->
      let cpu, l = make_block_cpu instrs in
      let exact = ref true in
      let steps = ref 0 in
      let rec go () =
        let before = cpu.Vm.Cpu.icount in
        let o = Vm.Cpu.run ~fuel:quantum cpu in
        incr steps;
        match o with
        | Vm.Cpu.Out_of_fuel when !steps < 1000 ->
          (* an exhausted quantum consumed exactly [quantum] instrs *)
          if cpu.Vm.Cpu.icount - before <> quantum then exact := false;
          go ()
        | o -> o
      in
      let o = go () in
      let fast, l_fast = make_cpu instrs in
      let of_ = Vm.Cpu.run ~fuel:(quantum * !steps) fast in
      !exact
      && tiers_conserved cpu
      && observe cpu l o = observe fast l_fast of_)

(* ------------------------------------------------------------------ *)
(* Directed equivalences                                               *)
(* ------------------------------------------------------------------ *)

(* A strcat-shaped byte-copy loop whose destination straddles the first
   data-page boundary: exercises the one-entry TLBs across a page switch
   on both the load and store sides. *)
let copy_program ~src ~dst ~len =
  let open Vm.Isa in
  let base = 0x08048000 in
  [
    Mov (R1, Imm src);
    Mov (R2, Imm dst);
    Mov (R0, Imm 0);
    (* loop: *)
    Loadb (R3, R1, 0);
    Storeb (R2, 0, R3);
    Bin (Add, R1, Imm 1);
    Bin (Add, R2, Imm 1);
    Bin (Add, R0, Imm 1);
    Cmp (R0, Imm len);
    Jcc (Lt, Addr (base + (3 * 4)));
    Halt;
  ]

let test_page_crossing_copy () =
  let data = 0x08100000 in
  let boundary = data + Vm.Memory.page_size in
  let instrs = copy_program ~src:data ~dst:(boundary - 12) ~len:24 in
  let (o1, _, _, _, h1, i1, d1, b1, _), (o2, _, _, _, h2, i2, d2, b2, _) =
    run_both ~fuel:1000 instrs
  in
  Alcotest.check outcome_t "same outcome" o2 o1;
  check_bool "halted" h2 h1;
  check_int "icount" i2 i1;
  check_str "data window" d2 d1;
  check_str "boundary window" b2 b1;
  (* And the copy really happened across the boundary. *)
  let fast, l = make_cpu instrs in
  ignore (Vm.Cpu.run ~fuel:1000 fast);
  check_str "copied across page boundary"
    (String.init 24 (fun i -> Char.chr (0x41 + (i mod 26))))
    (Vm.Memory.load_bytes fast.Vm.Cpu.mem
       (l.Vm.Layout.data_base + Vm.Memory.page_size - 12)
       24)

let test_mid_run_fault () =
  let open Vm.Isa in
  let base = 0x08048000 in
  let instrs =
    [
      Mov (R5, Imm 0x08100010);
      Store (R5, 0, R5);
      Mov (R5, Imm 0x40);  (* low 64 KiB: never mapped *)
      Store (R5, 0, R5);
      Halt;
    ]
  in
  let (o1, _, pc1, _, _, i1, _, _, _), (o2, _, pc2, _, _, i2, _, _, _) =
    run_both instrs
  in
  Alcotest.check outcome_t "same fault" o2 o1;
  Alcotest.check outcome_t "exact fault"
    (Vm.Cpu.Faulted (Vm.Event.Segv_write 0x40))
    o1;
  check_int "pc stays at faulting instruction" (base + 12) pc1;
  check_int "same pc" pc2 pc1;
  check_int "fault does not count as executed" 3 i1;
  check_int "same icount" i2 i1

let test_div_zero_fault () =
  let open Vm.Isa in
  let instrs =
    [ Mov (R0, Imm 5); Mov (R1, Imm 0); Bin (Div, R0, Reg R1); Halt ]
  in
  let (o1, _, pc1, _, _, i1, _, _, _), (o2, _, pc2, _, _, i2, _, _, _) =
    run_both instrs
  in
  Alcotest.check outcome_t "same outcome" o2 o1;
  Alcotest.check outcome_t "div-zero fault" (Vm.Cpu.Faulted Vm.Event.Div_zero) o1;
  check_int "same pc" pc2 pc1;
  check_int "same icount" i2 i1

(* ------------------------------------------------------------------ *)
(* Hook attach/detach while running                                    *)
(* ------------------------------------------------------------------ *)

(* R0 counts to 1000 in a 3-instruction loop:
   base+0: Mov R0,0 / +4: Add / +8: Cmp / +12: Jcc / +16: Halt *)
let counting_loop () =
  let open Vm.Isa in
  let base = 0x08048000 in
  [
    Mov (R0, Imm 0);
    Bin (Add, R0, Imm 1);
    Cmp (R0, Imm 1000);
    Jcc (Lt, Addr (base + 4));
    Halt;
  ]

let test_attach_detach_mid_run () =
  let base = 0x08048000 in
  let cpu, _ = make_cpu (counting_loop ()) in
  (* Warm up on the pure fast path: Mov + 3 iterations, pc back at Add. *)
  Alcotest.check outcome_t "warmup runs out of fuel" Vm.Cpu.Out_of_fuel
    (Vm.Cpu.run ~fuel:10 cpu);
  check_int "warmup executed" 10 cpu.Vm.Cpu.icount;
  check_int "pc mid-loop" (base + 4) cpu.Vm.Cpu.pc;
  (* Attach a pc-hook ahead of the current pc, mid-run: every subsequent
     pass over the Cmp must hit it — the fast path may not skip one. *)
  let fired = ref 0 in
  let h = Vm.Cpu.add_pc_hook cpu ~pc:(base + 8) (fun _ -> incr fired) in
  check_int "hook counted" 1 (Vm.Cpu.pc_hook_count cpu);
  Alcotest.check outcome_t "more fuel" Vm.Cpu.Out_of_fuel
    (Vm.Cpu.run ~fuel:30 cpu);
  check_int "10 full iterations hit the hooked Cmp 10 times" 10 !fired;
  (* Detach: the pc must transition back to the fast path and go silent. *)
  Vm.Cpu.remove_hook cpu h;
  check_int "hook gone" 0 (Vm.Cpu.pc_hook_count cpu);
  Alcotest.check outcome_t "more fuel" Vm.Cpu.Out_of_fuel
    (Vm.Cpu.run ~fuel:30 cpu);
  check_int "detached hook is silent" 10 !fired;
  (* A global hook attached mid-run sees every instruction... *)
  let seen = ref 0 in
  let g = Vm.Cpu.add_pre_hook cpu (fun _ -> incr seen) in
  Alcotest.check outcome_t "more fuel" Vm.Cpu.Out_of_fuel
    (Vm.Cpu.run ~fuel:9 cpu);
  check_int "global hook fires per instruction" 9 !seen;
  (* ...and after removal the program still completes correctly. *)
  Vm.Cpu.remove_hook cpu g;
  Alcotest.check outcome_t "finishes" Vm.Cpu.Halted (Vm.Cpu.run cpu);
  check_int "loop reached its bound" 1000 (Vm.Cpu.get_reg cpu Vm.Isa.R0);
  (* The whole mixed-mode run executed exactly as many instructions as an
     all-fast or all-slow run would have. *)
  let ref_cpu, _ = make_cpu (counting_loop ()) in
  Alcotest.check outcome_t "reference halts" Vm.Cpu.Halted (Vm.Cpu.run ref_cpu);
  check_int "icount matches an uninterrupted run" ref_cpu.Vm.Cpu.icount
    cpu.Vm.Cpu.icount

let test_post_hook_masks_fast_path () =
  (* A pc-level *post* hook must also force the instrumented path (it
     needs the effect record); check it observes the right effect. *)
  let base = 0x08048000 in
  let cpu, _ = make_cpu (counting_loop ()) in
  let writes = ref 0 in
  let h =
    Vm.Cpu.add_pc_post_hook cpu ~pc:(base + 4) (fun eff ->
        writes := !writes + List.length (Vm.Event.regs_written eff))
  in
  Alcotest.check outcome_t "halts" Vm.Cpu.Halted (Vm.Cpu.run cpu);
  check_int "post hook saw every Add commit" 1000 !writes;
  Vm.Cpu.remove_hook cpu h;
  check_int "footprint clear" 0 (Vm.Cpu.pc_hook_count cpu)

(* ------------------------------------------------------------------ *)
(* Mid-block events on the superinstruction tier                       *)
(* ------------------------------------------------------------------ *)

(* Attaching a hook to a pc inside a compiled block must demote that
   block no later than the next block entry: every subsequent pass over
   the hooked pc fires, none is skipped by a resident superinstruction.
   Detaching re-promotes the block. *)
let test_block_hook_demotion () =
  let base = 0x08048000 in
  let cpu, _ = make_block_cpu (counting_loop ()) in
  check_bool "blocks compiled" true (Vm.Cpu.block_count cpu > 0);
  (* Mov + 3 iterations; the loop body [Add;Cmp;Jcc] is one block, so
     fuel 10 stops exactly at its entry. *)
  Alcotest.check outcome_t "warmup runs out of fuel" Vm.Cpu.Out_of_fuel
    (Vm.Cpu.run ~fuel:10 cpu);
  check_int "pc at block entry" (base + 4) cpu.Vm.Cpu.pc;
  let retired_before = cpu.Vm.Cpu.block_retired in
  check_bool "warmup retired in blocks" true (retired_before > 0);
  (* Hook the middle of the loop block, mid-run. *)
  let fired = ref 0 in
  let h = Vm.Cpu.add_pc_hook cpu ~pc:(base + 8) (fun _ -> incr fired) in
  Alcotest.check outcome_t "more fuel" Vm.Cpu.Out_of_fuel
    (Vm.Cpu.run ~fuel:30 cpu);
  check_int "10 iterations hit the hooked Cmp 10 times" 10 !fired;
  check_int "demoted block retired nothing while hooked" retired_before
    cpu.Vm.Cpu.block_retired;
  (* Detach: the block must be promoted again and go back to retiring. *)
  Vm.Cpu.remove_hook cpu h;
  Alcotest.check outcome_t "more fuel" Vm.Cpu.Out_of_fuel
    (Vm.Cpu.run ~fuel:30 cpu);
  check_int "no stale hook fires after detach" 10 !fired;
  check_bool "re-promoted block retires again" true
    (cpu.Vm.Cpu.block_retired > retired_before);
  Alcotest.check outcome_t "finishes" Vm.Cpu.Halted (Vm.Cpu.run cpu);
  check_int "loop reached its bound" 1000 (Vm.Cpu.get_reg cpu Vm.Isa.R0);
  check_bool "tiers conserved" true (tiers_conserved cpu);
  (* Same icount as an uninterrupted per-instruction run. *)
  let ref_cpu, _ = make_cpu (counting_loop ()) in
  Alcotest.check outcome_t "reference halts" Vm.Cpu.Halted (Vm.Cpu.run ref_cpu);
  check_int "icount matches an uninterrupted run" ref_cpu.Vm.Cpu.icount
    cpu.Vm.Cpu.icount

(* Explicit invalidation permanently demotes one block, execution stays
   correct, and the counters account the demotion. *)
let test_block_invalidation () =
  let base = 0x08048000 in
  let cpu, _ = make_block_cpu (counting_loop ()) in
  Alcotest.check outcome_t "warmup" Vm.Cpu.Out_of_fuel (Vm.Cpu.run ~fuel:10 cpu);
  let retired_before = cpu.Vm.Cpu.block_retired in
  Vm.Cpu.invalidate_block cpu ~pc:(base + 8);
  Alcotest.check outcome_t "finishes" Vm.Cpu.Halted (Vm.Cpu.run cpu);
  (* Only the one-instruction [Halt] block retires in tier 3 after the
     loop block is demoted — the invalidated block never runs fused
     again. *)
  check_int "invalidated block never retires again" (retired_before + 1)
    cpu.Vm.Cpu.block_retired;
  check_int "loop reached its bound" 1000 (Vm.Cpu.get_reg cpu Vm.Isa.R0);
  check_bool "tiers conserved" true (tiers_conserved cpu)

(* A program whose second block faults in its middle: Store to the
   never-mapped low 64 KiB sits two instructions into the block, so the
   superinstruction executes real work and then must decline with state
   byte-identical to per-instruction execution at the faulting pc. *)
let mid_block_fault_program () =
  let open Vm.Isa in
  let base = 0x08048000 in
  [
    Mov (R0, Imm 0);
    Cmp (R0, Imm 0);
    Jcc (Eq, Addr (base + 12));
    (* block: two real instructions, then the faulting store *)
    Bin (Add, R0, Imm 5);
    Store (R1, 0, R0);
    Mov (R5, Imm 0x40);
    Store (R5, 0, R5);
    (* unreachable *)
    Halt;
  ]

let test_mid_block_fault_and_restore () =
  let instrs = mid_block_fault_program () in
  let fast, l_fast, block, l_block =
    let f, lf = make_cpu instrs in
    let b, lb = make_block_cpu instrs in
    (f, lf, b, lb)
  in
  (* Checkpoint the block machine before running (regs + memory — the
     same pair Osim.Checkpoint captures). *)
  let regs_ck = Vm.Cpu.snapshot_regs block in
  let mem_ck = Vm.Memory.snapshot block.Vm.Cpu.mem in
  let o_fast = Vm.Cpu.run fast in
  let o_block = Vm.Cpu.run block in
  Alcotest.check outcome_t "same fault"
    (Vm.Cpu.Faulted (Vm.Event.Segv_write 0x40))
    o_block;
  Alcotest.check outcome_t "fast faults identically" o_fast o_block;
  check_bool "state byte-identical at the faulting pc" true
    (observe fast l_fast o_fast = observe block l_block o_block);
  check_bool "tiers conserved across the fault" true (tiers_conserved block);
  (* Restore the checkpoint and re-run: the replay must reproduce the
     fault exactly, block table still installed. *)
  Vm.Cpu.restore_regs block regs_ck;
  Vm.Memory.restore block.Vm.Cpu.mem mem_ck;
  let o_replay = Vm.Cpu.run block in
  Alcotest.check outcome_t "replay reproduces the fault" o_block o_replay;
  check_bool "replayed state identical" true
    (observe fast l_fast o_fast = observe block l_block o_replay)

let () =
  let qt = QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) in
  Alcotest.run "vm-diff"
    [
      ("differential", [ qt diff_qcheck; qt quanta_qcheck ]);
      ( "directed",
        [
          Alcotest.test_case "page-crossing copy" `Quick test_page_crossing_copy;
          Alcotest.test_case "mid-run fault" `Quick test_mid_run_fault;
          Alcotest.test_case "div-zero fault" `Quick test_div_zero_fault;
        ] );
      ( "hooks-mid-run",
        [
          Alcotest.test_case "attach/detach transitions" `Quick
            test_attach_detach_mid_run;
          Alcotest.test_case "pc post-hook masks fast path" `Quick
            test_post_hook_masks_fast_path;
        ] );
      ( "block-tier",
        [
          Alcotest.test_case "hook demotes block by next entry" `Quick
            test_block_hook_demotion;
          Alcotest.test_case "explicit invalidation" `Quick
            test_block_invalidation;
          Alcotest.test_case "mid-block fault + checkpoint restore" `Quick
            test_mid_block_fault_and_restore;
        ] );
    ]
