(* Tests for the VM substrate: ISA arithmetic, paged COW memory, address
   layout/ASLR, assembler/linker, allocator, and the CPU interpreter with
   its instrumentation hooks. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Isa arithmetic                                                      *)
(* ------------------------------------------------------------------ *)

let test_u32_s32 () =
  check_int "u32 wraps" 0 (Vm.Isa.to_u32 0x100000000);
  check_int "u32 keeps 32 bits" 0xFFFFFFFF (Vm.Isa.to_u32 (-1));
  check_int "s32 of 0xFFFFFFFF" (-1) (Vm.Isa.to_s32 0xFFFFFFFF);
  check_int "s32 positive" 5 (Vm.Isa.to_s32 5);
  check_int "s32 of 0x80000000" (-0x80000000) (Vm.Isa.to_s32 0x80000000)

let test_binops () =
  let e = Vm.Isa.eval_binop in
  check_int "add wraps" 0 (e Vm.Isa.Add 0xFFFFFFFF 1);
  check_int "sub wraps" 0xFFFFFFFF (e Vm.Isa.Sub 0 1);
  check_int "mul" 42 (e Vm.Isa.Mul 6 7);
  check_int "div signed" 0xFFFFFFFE (e Vm.Isa.Div 0xFFFFFFFC 2);
  (* -4 / 2 = -2 *)
  check_int "mod" 1 (e Vm.Isa.Mod 7 3);
  check_int "and" 0b100 (e Vm.Isa.And 0b110 0b101);
  check_int "or" 0b111 (e Vm.Isa.Or 0b110 0b101);
  check_int "xor" 0b011 (e Vm.Isa.Xor 0b110 0b101);
  check_int "shl" 8 (e Vm.Isa.Shl 1 3);
  check_int "shr is logical" 0x7FFFFFFF (e Vm.Isa.Shr 0xFFFFFFFF 1);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (e Vm.Isa.Div 1 0));
  Alcotest.check_raises "mod by zero" Division_by_zero (fun () ->
      ignore (e Vm.Isa.Mod 1 0))

let test_conds () =
  let c = Vm.Isa.eval_cond in
  check_bool "eq" true (c Vm.Isa.Eq 3 3);
  check_bool "ne" true (c Vm.Isa.Ne 3 4);
  check_bool "lt signed" true (c Vm.Isa.Lt 0xFFFFFFFF 0);
  (* -1 < 0 *)
  check_bool "ult unsigned" false (c Vm.Isa.Ult 0xFFFFFFFF 0);
  check_bool "ge" true (c Vm.Isa.Ge 5 5);
  check_bool "le" true (c Vm.Isa.Le 4 5);
  check_bool "gt" false (c Vm.Isa.Gt 4 5);
  check_bool "uge" true (c Vm.Isa.Uge 0xFFFFFFFF 1)

let test_reg_index_roundtrip () =
  for i = 0 to Vm.Isa.num_regs - 1 do
    check_int "reg index roundtrip" i
      (Vm.Isa.reg_index (Vm.Isa.reg_of_index i))
  done

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let test_mem_byte_roundtrip () =
  let m = Vm.Memory.create () in
  Vm.Memory.store_byte m 0x1000 0xAB;
  check_int "byte" 0xAB (Vm.Memory.load_byte m 0x1000);
  check_int "neighbour zero" 0 (Vm.Memory.load_byte m 0x1001);
  Vm.Memory.store_byte m 0x1000 0x1FF;
  check_int "byte truncated" 0xFF (Vm.Memory.load_byte m 0x1000)

let test_mem_word_roundtrip () =
  let m = Vm.Memory.create () in
  Vm.Memory.store_word m 0x2000 0xDEADBEEF;
  check_int "word" 0xDEADBEEF (Vm.Memory.load_word m 0x2000);
  check_int "little endian byte 0" 0xEF (Vm.Memory.load_byte m 0x2000);
  check_int "little endian byte 3" 0xDE (Vm.Memory.load_byte m 0x2003)

let test_mem_cross_page () =
  let m = Vm.Memory.create () in
  let addr = Vm.Memory.page_size - 2 in
  Vm.Memory.store_word m addr 0x11223344;
  check_int "cross-page word" 0x11223344 (Vm.Memory.load_word m addr);
  check_int "cross-page low byte" 0x44 (Vm.Memory.load_byte m addr);
  check_int "cross-page high byte" 0x11 (Vm.Memory.load_byte m (addr + 3))

let test_mem_strings () =
  let m = Vm.Memory.create () in
  Vm.Memory.store_bytes m 0x3000 "hello\000world";
  check Alcotest.string "cstring stops at NUL" "hello"
    (Vm.Memory.load_cstring m 0x3000);
  check Alcotest.string "bytes are raw" "hello\000world"
    (Vm.Memory.load_bytes m 0x3000 11)

let test_mem_snapshot_restore () =
  let m = Vm.Memory.create () in
  Vm.Memory.store_word m 0x1000 1;
  let snap = Vm.Memory.snapshot m in
  Vm.Memory.store_word m 0x1000 2;
  Vm.Memory.store_word m 0x9000 3;
  check_int "mutated" 2 (Vm.Memory.load_word m 0x1000);
  Vm.Memory.restore m snap;
  check_int "restored" 1 (Vm.Memory.load_word m 0x1000);
  check_int "late page gone or zero" 0 (Vm.Memory.load_word m 0x9000)

let test_mem_snapshot_isolated_from_writes () =
  let m = Vm.Memory.create () in
  Vm.Memory.store_word m 0x1000 0xAAAA;
  let snap = Vm.Memory.snapshot m in
  (* Write to the same page: COW must copy, leaving the snapshot intact. *)
  Vm.Memory.store_word m 0x1004 0xBBBB;
  Vm.Memory.store_word m 0x1000 0xCCCC;
  Vm.Memory.restore m snap;
  check_int "snapshot kept old value" 0xAAAA (Vm.Memory.load_word m 0x1000);
  check_int "snapshot without later write" 0 (Vm.Memory.load_word m 0x1004)

let test_mem_repeated_restore () =
  let m = Vm.Memory.create () in
  Vm.Memory.store_word m 0x1000 7;
  let snap = Vm.Memory.snapshot m in
  for i = 1 to 3 do
    Vm.Memory.store_word m 0x1000 (100 + i);
    Vm.Memory.restore m snap;
    check_int "restore is repeatable" 7 (Vm.Memory.load_word m 0x1000)
  done

let test_mem_cow_stats () =
  let m = Vm.Memory.create () in
  Vm.Memory.store_word m 0x1000 1;
  Vm.Memory.reset_stats m;
  ignore (Vm.Memory.snapshot m);
  let cow0, _ = Vm.Memory.stats m in
  check_int "no copies before write" 0 cow0;
  Vm.Memory.store_word m 0x1004 2;
  Vm.Memory.store_word m 0x1008 3;
  let cow1, _ = Vm.Memory.stats m in
  check_int "one copy for one dirty page" 1 cow1

let test_eager_snapshot () =
  let m = Vm.Memory.create () in
  Vm.Memory.store_word m 0x1000 5;
  let snap = Vm.Memory.snapshot ~eager:true m in
  Vm.Memory.store_word m 0x1000 6;
  Vm.Memory.restore m snap;
  check_int "eager snapshot restores" 5 (Vm.Memory.load_word m 0x1000)

(* qcheck: random write/read round trips, with and without a snapshot. *)
let prop_mem_roundtrip =
  QCheck.Test.make ~name:"memory word roundtrip" ~count:200
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFFFFF))
    (fun (off, v) ->
      let m = Vm.Memory.create () in
      let addr = 0x1000 + off in
      Vm.Memory.store_word m addr v;
      Vm.Memory.load_word m addr = Vm.Isa.to_u32 v)

let prop_mem_snapshot_transparent =
  QCheck.Test.make ~name:"snapshot/restore is identity" ~count:100
    QCheck.(small_list (pair (int_bound 0x7FFF) (int_bound 255)))
    (fun writes ->
      let m = Vm.Memory.create () in
      List.iter (fun (a, v) -> Vm.Memory.store_byte m (0x1000 + a) v) writes;
      let reference =
        List.map (fun (a, _) -> Vm.Memory.load_byte m (0x1000 + a)) writes
      in
      let snap = Vm.Memory.snapshot m in
      List.iter (fun (a, v) -> Vm.Memory.store_byte m (0x1000 + a) (v lxor 0xFF)) writes;
      Vm.Memory.restore m snap;
      reference
      = List.map (fun (a, _) -> Vm.Memory.load_byte m (0x1000 + a)) writes)

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let test_layout_null_guard () =
  let l = Vm.Layout.create ~aslr:false () in
  check_bool "NULL page invalid" false (Vm.Layout.valid_data l 0);
  check_bool "low page invalid" false (Vm.Layout.valid_data l 0xFFFF);
  check_bool "code not writable data" false
    (Vm.Layout.valid_data l l.Vm.Layout.app_code_base)

let test_layout_stack_and_heap () =
  let l = Vm.Layout.create ~aslr:false () in
  check_bool "stack top-4 valid" true
    (Vm.Layout.valid_data l (l.Vm.Layout.stack_top - 4));
  check_bool "below stack invalid" false
    (Vm.Layout.valid_data l (l.Vm.Layout.stack_limit - 4));
  check_bool "heap unmapped before grow" false
    (Vm.Layout.valid_data l l.Vm.Layout.heap_base);
  check_bool "grow heap" true (Vm.Layout.grow_heap l (l.Vm.Layout.heap_base + 64));
  check_bool "heap mapped after grow" true
    (Vm.Layout.valid_data l l.Vm.Layout.heap_base);
  (* page-granular mapping: the rest of the page is accessible *)
  check_bool "rest of page mapped" true
    (Vm.Layout.valid_data l (l.Vm.Layout.heap_base + 4095));
  check_bool "next page unmapped" false
    (Vm.Layout.valid_data l (l.Vm.Layout.heap_base + 4096))

let test_layout_heap_exhaustion () =
  let l = Vm.Layout.create ~aslr:false ~heap_max:8192 () in
  check_bool "within arena" true (Vm.Layout.grow_heap l (l.Vm.Layout.heap_base + 8192));
  check_bool "beyond arena" false (Vm.Layout.grow_heap l (l.Vm.Layout.heap_base + 8193))

let test_layout_aslr_randomizes () =
  let mk seed =
    let rng = Random.State.make [| seed |] in
    Vm.Layout.create ~aslr:true ~rand:(fun b -> Random.State.int rng (1 lsl b)) ()
  in
  let l1 = mk 1 and l2 = mk 2 in
  check_bool "lib bases differ across processes" true
    (l1.Vm.Layout.lib_code_base <> l2.Vm.Layout.lib_code_base);
  let l3 = Vm.Layout.create ~aslr:false () in
  let l4 = Vm.Layout.create ~aslr:false () in
  check_int "no aslr is deterministic" l3.Vm.Layout.lib_code_base
    l4.Vm.Layout.lib_code_base

let test_layout_region_names () =
  let l = Vm.Layout.create ~aslr:false () in
  check Alcotest.string "unmapped" "unmapped" (Vm.Layout.describe l 4);
  check Alcotest.string "stack" "stack"
    (Vm.Layout.describe l (l.Vm.Layout.stack_top - 8))

(* ------------------------------------------------------------------ *)
(* Asm: assembly and linking                                           *)
(* ------------------------------------------------------------------ *)

let simple_unit =
  Vm.Asm.make_unit "u"
    [
      Vm.Asm.Label "start";
      Vm.Asm.Ins (Vm.Isa.Mov (Vm.Isa.R0, Vm.Isa.Imm 1));
      Vm.Asm.Label "mid";
      Vm.Asm.Ins (Vm.Isa.Jmp (Vm.Isa.Lbl "start"));
      Vm.Asm.Ins Vm.Isa.Halt;
    ]

let test_asm_load_resolves () =
  let img = Vm.Asm.load ~base:0x1000 [ simple_unit ] in
  check_int "start at base" 0x1000 (Vm.Asm.symbol img "start");
  check_int "mid offset" 0x1004 (Vm.Asm.symbol img "mid");
  (match Vm.Program.fetch img.Vm.Asm.code 0x1004 with
  | Some (Vm.Isa.Jmp (Vm.Isa.Addr a)) -> check_int "jmp resolved" 0x1000 a
  | _ -> Alcotest.fail "expected resolved jmp");
  check_int "limit" (0x1000 + (3 * 4)) img.Vm.Asm.limit

let test_asm_undefined_symbol () =
  let u =
    Vm.Asm.make_unit "u" [ Vm.Asm.Ins (Vm.Isa.Call (Vm.Isa.Lbl "nowhere")) ]
  in
  Alcotest.check_raises "undefined" (Vm.Asm.Undefined_symbol "nowhere")
    (fun () -> ignore (Vm.Asm.load ~base:0 [ u ]))

let test_asm_extern_resolution () =
  let u =
    Vm.Asm.make_unit "u" [ Vm.Asm.Ins (Vm.Isa.Call (Vm.Isa.Lbl "libfn")) ]
  in
  let img =
    Vm.Asm.load ~extern:(fun s -> if s = "libfn" then Some 0x4000 else None)
      ~base:0 [ u ]
  in
  match Vm.Program.fetch img.Vm.Asm.code 0 with
  | Some (Vm.Isa.Call (Vm.Isa.Addr a)) -> check_int "extern resolved" 0x4000 a
  | _ -> Alcotest.fail "expected resolved call"

let test_asm_duplicate_symbol () =
  let u =
    Vm.Asm.make_unit "u"
      [ Vm.Asm.Label "x"; Vm.Asm.Ins Vm.Isa.Nop; Vm.Asm.Label "x" ]
  in
  Alcotest.check_raises "duplicate" (Vm.Asm.Duplicate_symbol "x") (fun () ->
      ignore (Vm.Asm.load ~base:0 [ u ]))

let test_asm_symbolize () =
  let u =
    Vm.Asm.make_unit "u"
      [
        Vm.Asm.Label "f";
        Vm.Asm.Ins Vm.Isa.Nop;
        Vm.Asm.Ins Vm.Isa.Nop;
        Vm.Asm.Label ".Lf_local";
        Vm.Asm.Ins Vm.Isa.Nop;
        Vm.Asm.Label "g";
        Vm.Asm.Ins Vm.Isa.Ret;
      ]
  in
  let img = Vm.Asm.load ~base:0x100 [ u ] in
  (match Vm.Asm.symbolize img 0x108 with
  | Some (name, off) ->
    check Alcotest.string "local labels skipped" "f" name;
    check_int "offset" 8 off
  | None -> Alcotest.fail "expected symbol");
  match Vm.Asm.symbolize img 0x10C with
  | Some (name, 0) -> check Alcotest.string "next function" "g" name
  | _ -> Alcotest.fail "expected g"

(* ------------------------------------------------------------------ *)
(* Allocator                                                           *)
(* ------------------------------------------------------------------ *)

let alloc_fixture () =
  let l = Vm.Layout.create ~aslr:false () in
  let m = Vm.Memory.create () in
  Vm.Alloc.init m l;
  (m, l)

let test_alloc_basic () =
  let m, l = alloc_fixture () in
  let p1 = Option.get (Vm.Alloc.malloc m l 16) in
  let p2 = Option.get (Vm.Alloc.malloc m l 32) in
  check_bool "distinct chunks" true (p2 >= p1 + 16 + 8);
  Vm.Memory.store_bytes m p1 "0123456789abcdef";
  check Alcotest.string "payload intact" "0123456789abcdef"
    (Vm.Memory.load_bytes m p1 16)

let test_alloc_free_and_reuse () =
  let m, l = alloc_fixture () in
  let p1 = Option.get (Vm.Alloc.malloc m l 24) in
  check_bool "free ok" true (Vm.Alloc.free m l p1 = `Ok);
  let p2 = Option.get (Vm.Alloc.malloc m l 24) in
  check_int "freed chunk reused" p1 p2

let test_alloc_double_free () =
  let m, l = alloc_fixture () in
  let p = Option.get (Vm.Alloc.malloc m l 8) in
  check_bool "first free" true (Vm.Alloc.free m l p = `Ok);
  check_bool "second free flagged" true (Vm.Alloc.free m l p = `Double_free)

let test_alloc_bad_pointer () =
  let m, l = alloc_fixture () in
  ignore (Vm.Alloc.malloc m l 8);
  check_bool "wild free flagged" true
    (Vm.Alloc.free m l (l.Vm.Layout.heap_base + 100000) = `Bad_pointer)

let test_alloc_chunk_walk () =
  let m, l = alloc_fixture () in
  let p1 = Option.get (Vm.Alloc.malloc m l 16) in
  let p2 = Option.get (Vm.Alloc.malloc m l 16) in
  ignore (Vm.Alloc.free m l p1);
  let chunks = Vm.Alloc.chunks m l in
  check_int "two chunks" 2 (List.length chunks);
  (match chunks with
  | [ c1; c2 ] ->
    check_int "first chunk ptr" p1 c1.Vm.Alloc.c_ptr;
    check_bool "first freed" true (c1.Vm.Alloc.c_state = Vm.Alloc.Chunk_freed);
    check_int "second chunk ptr" p2 c2.Vm.Alloc.c_ptr;
    check_bool "second live" true (c2.Vm.Alloc.c_state = Vm.Alloc.Chunk_alloc)
  | _ -> Alcotest.fail "expected 2 chunks");
  check_bool "consistent" true (Vm.Alloc.heap_consistent m l)

let test_alloc_corruption_detected () =
  let m, l = alloc_fixture () in
  let p1 = Option.get (Vm.Alloc.malloc m l 16) in
  let _p2 = Option.get (Vm.Alloc.malloc m l 16) in
  (* Overflow p1 into p2's header. *)
  Vm.Memory.store_word m (p1 + 16 + 4) 0xBAD;
  check_bool "inconsistent after overflow" false (Vm.Alloc.heap_consistent m l)

let test_alloc_exhaustion () =
  let l = Vm.Layout.create ~aslr:false ~heap_max:4096 () in
  let m = Vm.Memory.create () in
  Vm.Alloc.init m l;
  check_bool "big allocation fails" true (Vm.Alloc.malloc m l 100_000 = None);
  check_bool "small still works" true (Vm.Alloc.malloc m l 64 <> None)

let prop_alloc_no_overlap =
  QCheck.Test.make ~name:"live chunks never overlap" ~count:60
    QCheck.(small_list (int_bound 200))
    (fun sizes ->
      let m, l = alloc_fixture () in
      let ptrs =
        List.filter_map (fun s -> Vm.Alloc.malloc m l (1 + s)) sizes
      in
      (* Free every other pointer, then allocate again. *)
      List.iteri (fun i p -> if i mod 2 = 0 then ignore (Vm.Alloc.free m l p)) ptrs;
      let more = List.filter_map (fun s -> Vm.Alloc.malloc m l (1 + s)) sizes in
      ignore more;
      let chunks = Vm.Alloc.chunks m l in
      let live =
        List.filter_map
          (fun c ->
            match c.Vm.Alloc.c_state with
            | Vm.Alloc.Chunk_alloc -> Some (c.Vm.Alloc.c_ptr, c.Vm.Alloc.c_size)
            | _ -> None)
          chunks
      in
      let rec no_overlap = function
        | [] | [ _ ] -> true
        | (p1, s1) :: ((p2, _) :: _ as rest) ->
          p1 + s1 <= p2 && no_overlap rest
      in
      Vm.Alloc.heap_consistent m l && no_overlap live)

(* ------------------------------------------------------------------ *)
(* CPU                                                                 *)
(* ------------------------------------------------------------------ *)

(* Build a CPU executing [items] at the app code base, with stack ready. *)
let cpu_fixture items =
  let l = Vm.Layout.create ~aslr:false () in
  let m = Vm.Memory.create () in
  let img =
    Vm.Asm.load ~base:l.Vm.Layout.app_code_base [ Vm.Asm.make_unit "t" items ]
  in
  let l =
    Vm.Layout.set_code_limits l ~app_limit:img.Vm.Asm.limit
      ~lib_limit:l.Vm.Layout.lib_code_base
  in
  Vm.Alloc.init m l;
  let cpu = Vm.Cpu.create ~mem:m ~layout:l ~code:img.Vm.Asm.code in
  cpu.Vm.Cpu.pc <- l.Vm.Layout.app_code_base;
  Vm.Cpu.set_reg cpu Vm.Isa.SP (l.Vm.Layout.stack_top - 16);
  (cpu, img)

let ins l = List.map (fun i -> Vm.Asm.Ins i) l

let test_cpu_mov_arith () =
  let open Vm.Isa in
  let cpu, _ =
    cpu_fixture
      (ins
         [
           Mov (R0, Imm 10); Mov (R1, Imm 4); Bin (Sub, R0, Reg R1);
           Bin (Mul, R0, Imm 7); Halt;
         ])
  in
  check_bool "halted" true (Vm.Cpu.run cpu = Vm.Cpu.Halted);
  check_int "result" 42 (Vm.Cpu.get_reg cpu Vm.Isa.R0)

let test_cpu_load_store () =
  let open Vm.Isa in
  let cpu, _ =
    cpu_fixture
      (ins
         [
           Mov (R1, Imm 0x08100000); Mov (R0, Imm 0x1234);
           Store (R1, 8, R0); Load (R2, R1, 8); Storeb (R1, 0, R0);
           Loadb (R3, R1, 0); Halt;
         ])
  in
  ignore (Vm.Cpu.run cpu);
  check_int "word roundtrip" 0x1234 (Vm.Cpu.get_reg cpu Vm.Isa.R2);
  check_int "byte truncation" 0x34 (Vm.Cpu.get_reg cpu Vm.Isa.R3)

let test_cpu_push_pop () =
  let open Vm.Isa in
  let cpu, _ =
    cpu_fixture
      (ins [ Push (Imm 7); Push (Imm 9); Pop R0; Pop R1; Halt ])
  in
  ignore (Vm.Cpu.run cpu);
  check_int "lifo top" 9 (Vm.Cpu.get_reg cpu Vm.Isa.R0);
  check_int "lifo bottom" 7 (Vm.Cpu.get_reg cpu Vm.Isa.R1)

let test_cpu_cmp_jcc () =
  let open Vm.Isa in
  let cpu, _ =
    cpu_fixture
      [
        Vm.Asm.Ins (Mov (R0, Imm 5));
        Vm.Asm.Ins (Cmp (R0, Imm 5));
        Vm.Asm.Ins (Jcc (Eq, Lbl "yes"));
        Vm.Asm.Ins (Mov (R1, Imm 0));
        Vm.Asm.Ins Halt;
        Vm.Asm.Label "yes";
        Vm.Asm.Ins (Mov (R1, Imm 1));
        Vm.Asm.Ins Halt;
      ]
  in
  ignore (Vm.Cpu.run cpu);
  check_int "branch taken" 1 (Vm.Cpu.get_reg cpu Vm.Isa.R1)

let test_cpu_call_ret_via_stack () =
  let open Vm.Isa in
  let cpu, _ =
    cpu_fixture
      [
        Vm.Asm.Ins (Call (Lbl "f"));
        Vm.Asm.Ins Halt;
        Vm.Asm.Label "f";
        Vm.Asm.Ins (Mov (R0, Imm 99));
        Vm.Asm.Ins Ret;
      ]
  in
  check_bool "halted" true (Vm.Cpu.run cpu = Vm.Cpu.Halted);
  check_int "callee ran" 99 (Vm.Cpu.get_reg cpu Vm.Isa.R0)

let test_cpu_smashed_return_faults () =
  let open Vm.Isa in
  (* Overwrite the return address on the stack before returning. *)
  let cpu, _ =
    cpu_fixture
      [
        Vm.Asm.Ins (Call (Lbl "f"));
        Vm.Asm.Ins Halt;
        Vm.Asm.Label "f";
        Vm.Asm.Ins (Mov (R1, Imm 0x666));
        Vm.Asm.Ins (Store (SP, 0, R1));
        Vm.Asm.Ins Ret;
      ]
  in
  match Vm.Cpu.run cpu with
  | Vm.Cpu.Faulted (Vm.Event.Exec_violation a) ->
    check_int "jumps to overwritten value" 0x666 a
  | _ -> Alcotest.fail "expected exec violation"

let test_cpu_null_deref_faults () =
  let open Vm.Isa in
  let cpu, _ = cpu_fixture (ins [ Mov (R1, Imm 0); Load (R0, R1, 0); Halt ]) in
  match Vm.Cpu.run cpu with
  | Vm.Cpu.Faulted (Vm.Event.Segv_read 0) -> ()
  | _ -> Alcotest.fail "expected segv read 0"

let test_cpu_wild_store_faults () =
  let open Vm.Isa in
  let cpu, _ =
    cpu_fixture (ins [ Mov (R1, Imm 0x60000000); Store (R1, 0, R0); Halt ])
  in
  match Vm.Cpu.run cpu with
  | Vm.Cpu.Faulted (Vm.Event.Segv_write 0x60000000) -> ()
  | _ -> Alcotest.fail "expected segv write"

let test_cpu_div_zero_faults () =
  let open Vm.Isa in
  let cpu, _ =
    cpu_fixture (ins [ Mov (R0, Imm 1); Mov (R1, Imm 0); Bin (Div, R0, Reg R1); Halt ])
  in
  ignore cpu;
  match Vm.Cpu.run cpu with
  | Vm.Cpu.Faulted Vm.Event.Div_zero -> ()
  | _ -> Alcotest.fail "expected div-zero fault"

let test_cpu_fault_preserves_pc () =
  let open Vm.Isa in
  let cpu, img = cpu_fixture (ins [ Nop; Mov (R1, Imm 0); Load (R0, R1, 0) ]) in
  ignore (Vm.Cpu.run cpu);
  check_int "pc at faulting instruction" (img.Vm.Asm.base + 8) cpu.Vm.Cpu.pc

let test_cpu_fuel () =
  let open Vm.Isa in
  let cpu, _ =
    cpu_fixture
      [ Vm.Asm.Label "loop"; Vm.Asm.Ins (Jmp (Lbl "loop")) ]
  in
  check_bool "runs out of fuel" true (Vm.Cpu.run ~fuel:100 cpu = Vm.Cpu.Out_of_fuel);
  check_int "exactly fuel instructions" 100 cpu.Vm.Cpu.icount

let test_cpu_hooks_fire_and_remove () =
  let open Vm.Isa in
  let cpu, _ = cpu_fixture (ins [ Nop; Nop; Nop; Halt ]) in
  let pre = ref 0 and post = ref 0 in
  let h1 = Vm.Cpu.add_pre_hook cpu (fun _ -> incr pre) in
  let h2 = Vm.Cpu.add_post_hook cpu (fun _ -> incr post) in
  ignore (Vm.Cpu.run cpu);
  check_int "pre saw all" 4 !pre;
  check_int "post saw all" 4 !post;
  Vm.Cpu.remove_hook cpu h1;
  Vm.Cpu.remove_hook cpu h2;
  cpu.Vm.Cpu.halted <- false;
  cpu.Vm.Cpu.pc <- cpu.Vm.Cpu.pc;
  ignore (Vm.Cpu.run cpu);
  check_int "removed hooks silent" 4 !pre

let test_cpu_pc_hook_only_at_pc () =
  let open Vm.Isa in
  let cpu, img = cpu_fixture (ins [ Nop; Nop; Nop; Halt ]) in
  let hits = ref 0 in
  ignore (Vm.Cpu.add_pc_hook cpu ~pc:(img.Vm.Asm.base + 4) (fun _ -> incr hits));
  ignore (Vm.Cpu.run cpu);
  check_int "pc hook fired once" 1 !hits;
  check_int "one pc hook installed" 1 (Vm.Cpu.pc_hook_count cpu)

let test_cpu_pre_hook_veto () =
  let open Vm.Isa in
  (* A pre-hook that raises prevents the store from committing. *)
  let cpu, img =
    cpu_fixture
      (ins [ Mov (R1, Imm 0x08100000); Mov (R0, Imm 7); Store (R1, 0, R0); Halt ])
  in
  let exception Veto in
  ignore
    (Vm.Cpu.add_pc_hook cpu ~pc:(img.Vm.Asm.base + 8) (fun _ -> raise Veto));
  (try ignore (Vm.Cpu.run cpu) with Veto -> ());
  check_int "store vetoed" 0 (Vm.Memory.load_word cpu.Vm.Cpu.mem 0x08100000)

let test_cpu_reg_snapshot_restore () =
  let open Vm.Isa in
  let cpu, _ = cpu_fixture (ins [ Mov (R0, Imm 5); Halt ]) in
  let snap = Vm.Cpu.snapshot_regs cpu in
  ignore (Vm.Cpu.run cpu);
  check_int "mutated" 5 (Vm.Cpu.get_reg cpu Vm.Isa.R0);
  Vm.Cpu.restore_regs cpu snap;
  check_int "restored" 0 (Vm.Cpu.get_reg cpu Vm.Isa.R0);
  check_bool "halted flag restored" false cpu.Vm.Cpu.halted

let test_cpu_flags_survive_intervening_instrs () =
  let open Vm.Isa in
  (* Flags are set by Cmp and must survive unrelated instructions until the
     Jcc reads them (only Cmp writes flags on this machine). *)
  let cpu, _ =
    cpu_fixture
      [
        Vm.Asm.Ins (Mov (R0, Imm 1));
        Vm.Asm.Ins (Cmp (R0, Imm 1));
        Vm.Asm.Ins (Mov (R2, Imm 99));
        Vm.Asm.Ins (Bin (Add, R2, Imm 1));
        Vm.Asm.Ins (Jcc (Eq, Lbl "hit"));
        Vm.Asm.Ins (Mov (R1, Imm 0));
        Vm.Asm.Ins Halt;
        Vm.Asm.Label "hit";
        Vm.Asm.Ins (Mov (R1, Imm 1));
        Vm.Asm.Ins Halt;
      ]
  in
  ignore (Vm.Cpu.run cpu);
  check_int "flags preserved across instructions" 1 (Vm.Cpu.get_reg cpu Vm.Isa.R1)

let test_cpu_callind_valid_target () =
  let open Vm.Isa in
  let cpu, img =
    cpu_fixture
      [
        Vm.Asm.Ins (Mov (R4, Sym "fn"));
        Vm.Asm.Ins (CallInd R4);
        Vm.Asm.Ins Halt;
        Vm.Asm.Label "fn";
        Vm.Asm.Ins (Mov (R0, Imm 55));
        Vm.Asm.Ins Ret;
      ]
  in
  ignore img;
  check_bool "halted" true (Vm.Cpu.run cpu = Vm.Cpu.Halted);
  check_int "indirect call executed" 55 (Vm.Cpu.get_reg cpu Vm.Isa.R0)

let test_cpu_stack_overflow_faults () =
  let open Vm.Isa in
  (* Infinite recursion: call pushes run the stack pointer below the
     mapped stack and the push faults. *)
  let cpu, _ =
    cpu_fixture [ Vm.Asm.Label "f"; Vm.Asm.Ins (Call (Lbl "f")) ]
  in
  match Vm.Cpu.run ~fuel:1_000_000 cpu with
  | Vm.Cpu.Faulted (Vm.Event.Segv_write a) ->
    check_bool "fault below the stack" true
      (a < cpu.Vm.Cpu.layout.Vm.Layout.stack_limit)
  | _ -> Alcotest.fail "expected stack exhaustion fault"

let test_cpu_pre_pc_hook_runs_before_global_pre () =
  let open Vm.Isa in
  let cpu, img = cpu_fixture (ins [ Nop; Halt ]) in
  let order = ref [] in
  ignore
    (Vm.Cpu.add_pc_hook cpu ~pc:img.Vm.Asm.base (fun _ -> order := "pc" :: !order));
  let g = Vm.Cpu.add_pre_hook cpu (fun _ -> order := "global" :: !order) in
  ignore (Vm.Cpu.step cpu);
  Vm.Cpu.remove_hook cpu g;
  check Alcotest.(list string) "pc hook first" [ "pc"; "global" ]
    (List.rev !order)

let test_cpu_vetoed_fault_instruction_retries () =
  let open Vm.Isa in
  (* A hook that vetoes once: the instruction commits on the second try
     (e.g. after a filter decides to allow it). *)
  let cpu, img =
    cpu_fixture (ins [ Mov (R1, Imm 0x08100000); Store (R1, 0, R0); Halt ])
  in
  let exception Veto in
  let armed = ref true in
  ignore
    (Vm.Cpu.add_pc_hook cpu ~pc:(img.Vm.Asm.base + 4) (fun _ ->
         if !armed then begin
           armed := false;
           raise Veto
         end));
  (try ignore (Vm.Cpu.run cpu) with Veto -> ());
  check_int "pc still at the vetoed instruction" (img.Vm.Asm.base + 4)
    cpu.Vm.Cpu.pc;
  check_bool "second run completes" true (Vm.Cpu.run cpu = Vm.Cpu.Halted)

let test_alloc_first_fit_reuse_order () =
  let m, l = alloc_fixture () in
  let p1 = Option.get (Vm.Alloc.malloc m l 32) in
  let p2 = Option.get (Vm.Alloc.malloc m l 32) in
  ignore (Vm.Alloc.free m l p1);
  ignore (Vm.Alloc.free m l p2);
  (* Free list is LIFO: the most recently freed chunk is first-fit. *)
  let p3 = Option.get (Vm.Alloc.malloc m l 32) in
  check_int "LIFO reuse" p2 p3;
  let p4 = Option.get (Vm.Alloc.malloc m l 32) in
  check_int "then the older one" p1 p4

let test_alloc_round_size () =
  check_int "zero rounds to 8" 8 (Vm.Alloc.round_size 0);
  check_int "1 rounds to 8" 8 (Vm.Alloc.round_size 1);
  check_int "8 stays" 8 (Vm.Alloc.round_size 8);
  check_int "9 rounds to 16" 16 (Vm.Alloc.round_size 9)

let test_alloc_big_chunk_not_split_for_small () =
  let m, l = alloc_fixture () in
  let big = Option.get (Vm.Alloc.malloc m l 256) in
  ignore (Vm.Alloc.free m l big);
  let small = Option.get (Vm.Alloc.malloc m l 8) in
  (* First-fit without splitting: the small request reuses the big chunk. *)
  check_int "reuses the big chunk" big small

let test_layout_heap_mapped_limit () =
  let l = Vm.Layout.create ~aslr:false () in
  ignore (Vm.Layout.grow_heap l (l.Vm.Layout.heap_base + 10));
  check_int "rounded to page" (l.Vm.Layout.heap_base + 4096)
    (Vm.Layout.heap_mapped_limit l)

let test_memory_reset_stats () =
  let m = Vm.Memory.create () in
  Vm.Memory.store_word m 0x1000 1;
  ignore (Vm.Memory.snapshot m);
  Vm.Memory.store_word m 0x1000 2;
  Vm.Memory.reset_stats m;
  check_bool "counters cleared" true (Vm.Memory.stats m = (0, 0))

let test_disasm_strings () =
  let open Vm.Isa in
  check Alcotest.string "mov" "mov r0, 0x2a"
    (Vm.Disasm.instr_to_string (Mov (R0, Imm 42)));
  check Alcotest.string "store" "st [fp-8], r1"
    (Vm.Disasm.instr_to_string (Store (FP, -8, R1)));
  check Alcotest.string "jcc" "jeq $x"
    (Vm.Disasm.instr_to_string (Jcc (Eq, Lbl "x")))

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "vm"
    [
      ( "isa",
        [
          Alcotest.test_case "u32/s32" `Quick test_u32_s32;
          Alcotest.test_case "binops" `Quick test_binops;
          Alcotest.test_case "conds" `Quick test_conds;
          Alcotest.test_case "reg index roundtrip" `Quick test_reg_index_roundtrip;
        ] );
      ( "memory",
        [
          Alcotest.test_case "byte roundtrip" `Quick test_mem_byte_roundtrip;
          Alcotest.test_case "word roundtrip" `Quick test_mem_word_roundtrip;
          Alcotest.test_case "cross page" `Quick test_mem_cross_page;
          Alcotest.test_case "strings" `Quick test_mem_strings;
          Alcotest.test_case "snapshot/restore" `Quick test_mem_snapshot_restore;
          Alcotest.test_case "snapshot isolation" `Quick
            test_mem_snapshot_isolated_from_writes;
          Alcotest.test_case "repeated restore" `Quick test_mem_repeated_restore;
          Alcotest.test_case "cow stats" `Quick test_mem_cow_stats;
          Alcotest.test_case "eager snapshot" `Quick test_eager_snapshot;
          qt prop_mem_roundtrip;
          qt prop_mem_snapshot_transparent;
        ] );
      ( "layout",
        [
          Alcotest.test_case "null guard" `Quick test_layout_null_guard;
          Alcotest.test_case "stack and heap" `Quick test_layout_stack_and_heap;
          Alcotest.test_case "heap exhaustion" `Quick test_layout_heap_exhaustion;
          Alcotest.test_case "aslr randomizes" `Quick test_layout_aslr_randomizes;
          Alcotest.test_case "region names" `Quick test_layout_region_names;
        ] );
      ( "asm",
        [
          Alcotest.test_case "load resolves" `Quick test_asm_load_resolves;
          Alcotest.test_case "undefined symbol" `Quick test_asm_undefined_symbol;
          Alcotest.test_case "extern resolution" `Quick test_asm_extern_resolution;
          Alcotest.test_case "duplicate symbol" `Quick test_asm_duplicate_symbol;
          Alcotest.test_case "symbolize" `Quick test_asm_symbolize;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "free and reuse" `Quick test_alloc_free_and_reuse;
          Alcotest.test_case "double free" `Quick test_alloc_double_free;
          Alcotest.test_case "bad pointer" `Quick test_alloc_bad_pointer;
          Alcotest.test_case "chunk walk" `Quick test_alloc_chunk_walk;
          Alcotest.test_case "corruption detected" `Quick
            test_alloc_corruption_detected;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          qt prop_alloc_no_overlap;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "mov/arith" `Quick test_cpu_mov_arith;
          Alcotest.test_case "load/store" `Quick test_cpu_load_store;
          Alcotest.test_case "push/pop" `Quick test_cpu_push_pop;
          Alcotest.test_case "cmp/jcc" `Quick test_cpu_cmp_jcc;
          Alcotest.test_case "call/ret via stack" `Quick test_cpu_call_ret_via_stack;
          Alcotest.test_case "smashed return faults" `Quick
            test_cpu_smashed_return_faults;
          Alcotest.test_case "null deref faults" `Quick test_cpu_null_deref_faults;
          Alcotest.test_case "wild store faults" `Quick test_cpu_wild_store_faults;
          Alcotest.test_case "div zero faults" `Quick test_cpu_div_zero_faults;
          Alcotest.test_case "fault preserves pc" `Quick test_cpu_fault_preserves_pc;
          Alcotest.test_case "fuel" `Quick test_cpu_fuel;
          Alcotest.test_case "hooks fire and remove" `Quick
            test_cpu_hooks_fire_and_remove;
          Alcotest.test_case "pc hook" `Quick test_cpu_pc_hook_only_at_pc;
          Alcotest.test_case "pre hook veto" `Quick test_cpu_pre_hook_veto;
          Alcotest.test_case "reg snapshot" `Quick test_cpu_reg_snapshot_restore;
          Alcotest.test_case "disasm" `Quick test_disasm_strings;
          Alcotest.test_case "flags survive intervening" `Quick
            test_cpu_flags_survive_intervening_instrs;
          Alcotest.test_case "callind valid target" `Quick
            test_cpu_callind_valid_target;
          Alcotest.test_case "stack overflow faults" `Quick
            test_cpu_stack_overflow_faults;
          Alcotest.test_case "pc hook ordering" `Quick
            test_cpu_pre_pc_hook_runs_before_global_pre;
          Alcotest.test_case "vetoed instruction retries" `Quick
            test_cpu_vetoed_fault_instruction_retries;
        ] );
      ( "alloc-extra",
        [
          Alcotest.test_case "first-fit reuse order" `Quick
            test_alloc_first_fit_reuse_order;
          Alcotest.test_case "round size" `Quick test_alloc_round_size;
          Alcotest.test_case "no splitting" `Quick
            test_alloc_big_chunk_not_split_for_small;
          Alcotest.test_case "heap mapped limit" `Quick test_layout_heap_mapped_limit;
          Alcotest.test_case "reset stats" `Quick test_memory_reset_stats;
        ] );
    ]
