(* Cross-cutting integration tests: antibody portability between hosts with
   different randomized layouts, repeated and interleaved attacks, signature
   false-positive sweeps, and end-to-end behaviour under the serving
   harness's checkpoint schedule. *)

module O = Sweeper.Orchestrator

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let boot ?(aslr = true) ~seed key =
  let entry = Apps.Registry.find key in
  let proc = Osim.Process.load ~aslr ~seed (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  (proc, server)

(* Run a full attack/analysis on a fresh host; return the report. *)
let analyze_on ~seed key =
  let _proc, server = boot ~seed key in
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload ~seed key 10);
  let exploit = Apps.Registry.exploit ~system_guess:0x23232323 ~cmd_ptr:0 key in
  let report = ref None in
  List.iter
    (fun m ->
      match O.protected_handle ~app:key server m with
      | `Attack r -> report := Some r
      | _ -> ())
    exploit.Apps.Exploits.x_messages;
  Option.get !report

(* ------------------------------------------------------------------ *)
(* Antibody portability: VSEFs must work on a host whose library sits   *)
(* at a different randomized base than the producer's.                  *)
(* ------------------------------------------------------------------ *)

let test_antibody_portable key () =
  let r = analyze_on ~seed:1001 key in
  (* A consumer with a very different layout. *)
  let proc2, server2 = boot ~seed:90210 key in
  check_bool "layouts differ" true
    (proc2.Osim.Process.lib_image.Vm.Asm.base <> 0
    (* trivially true; the real check is below *));
  let _installed = Sweeper.Antibody.deploy proc2 r.O.a_antibody in
  (* Polymorphic variant (so the exact signature cannot be what stops it). *)
  let variants = Apps.Exploits.variants ~system_guess:0x24242424 ~cmd_ptr:0 key in
  let variant = List.nth variants (List.length variants - 1) in
  let stopped = ref false in
  List.iter
    (fun m ->
      match Osim.Server.handle server2 m with
      | `Crashed _ -> ()
      | _ -> ()
      | exception Sweeper.Detection.Detected _ -> stopped := true)
    variant.Apps.Exploits.x_messages;
  check_bool (key ^ ": VSEF relocated and tripped on foreign host") true !stopped;
  (* Benign traffic on the consumer stays clean under the foreign VSEFs. *)
  let proc3, server3 = boot ~seed:777 key in
  let _ = Sweeper.Antibody.deploy proc3 r.O.a_antibody in
  List.iter
    (fun m ->
      match Osim.Server.handle server3 m with
      | `Served _ -> ()
      | `Filtered f -> Alcotest.fail ("benign filtered: " ^ f)
      | _ -> Alcotest.fail "benign misbehaved"
      | exception Sweeper.Detection.Detected d ->
        Alcotest.fail ("false positive on consumer: " ^ Sweeper.Detection.to_string d))
    (Apps.Registry.workload ~seed:778 key 15)

(* ------------------------------------------------------------------ *)
(* Repeated attacks on one host                                        *)
(* ------------------------------------------------------------------ *)

let test_three_waves_one_host () =
  (* Wave 1 crashes and is analyzed; wave 2 (identical) is filtered; wave 3
     (polymorphic) is stopped by VSEFs. Service continues throughout. *)
  let key = "squid" in
  let proc, server = boot ~seed:3100 key in
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload ~seed:31 key 8);
  let wave1 = Apps.Registry.exploit key in
  let analyzed = ref false in
  List.iter
    (fun m ->
      match O.protected_handle ~app:key server m with
      | `Attack _ -> analyzed := true
      | _ -> ())
    wave1.Apps.Exploits.x_messages;
  check_bool "wave 1 analyzed" true !analyzed;
  let filtered = ref false in
  List.iter
    (fun m ->
      match O.protected_handle ~app:key server m with
      | `Filtered _ -> filtered := true
      | _ -> ())
    wave1.Apps.Exploits.x_messages;
  check_bool "wave 2 filtered by signature" true !filtered;
  let vsef_blocked = ref false in
  let wave3 = Apps.Exploits.squid ~user_len:3210 ~unsafe:'{' () in
  List.iter
    (fun m ->
      match O.protected_handle ~app:key server m with
      | `Blocked_by_vsef _ -> vsef_blocked := true
      | `Attack _ -> Alcotest.fail "variant crashed through the VSEFs"
      | _ -> ())
    wave3.Apps.Exploits.x_messages;
  check_bool "wave 3 blocked by VSEF" true !vsef_blocked;
  (* Still serving, and history intact: responses monotone. *)
  (match Osim.Server.handle server "GET http://www.example.com/\n" with
  | `Served _ -> ()
  | _ -> Alcotest.fail "dead after three waves");
  check_int "three filters never installed twice" 1
    (Osim.Netlog.filter_count proc.Osim.Process.net)

let test_attack_after_long_benign_stream () =
  (* Enough traffic that several periodic checkpoints exist and the ring
     has wrapped; analysis must still pick a pre-attack checkpoint. *)
  let key = "apache1" in
  let config = { Osim.Server.checkpoint_interval_ms = 2; keep_checkpoints = 6 } in
  let entry = Apps.Registry.find key in
  let proc = Osim.Process.load ~aslr:true ~seed:3200 (entry.r_compile ()) in
  let server = Osim.Server.create ~config proc in
  ignore (Osim.Server.run server);
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload ~seed:32 key 300);
  check_bool "ring wrapped" true (Osim.Server.checkpoints_taken server > 6);
  let exploit = Apps.Registry.exploit ~system_guess:0x23456789 ~cmd_ptr:0 key in
  let report = ref None in
  List.iter
    (fun m ->
      match O.protected_handle ~app:key server m with
      | `Attack r -> report := Some r
      | _ -> ())
    exploit.Apps.Exploits.x_messages;
  let r = Option.get !report in
  check_bool "diagnosis correct" true
    (r.O.a_coredump.Sweeper.Coredump.c_diagnosis
    = Sweeper.Coredump.Stack_smash_suspected);
  check_int "exactly the attack message isolated" 1 (List.length r.O.a_isolation);
  (* Replay window was bounded by the checkpoint, not the whole history. *)
  check_bool "analysis window bounded" true
    (r.O.a_slice.Sweeper.Slice.s_nodes < 2_000_000);
  match Osim.Server.handle server "GET /status\n" with
  | `Served _ -> ()
  | _ -> Alcotest.fail "no service after recovery"

let test_interleaved_apps_independent () =
  (* Two different servers attacked back to back; each gets its own correct
     antibody. *)
  let r1 = analyze_on ~seed:3301 "cvs" in
  let r2 = analyze_on ~seed:3302 "apache2" in
  check_bool "cvs double free" true
    (r1.O.a_coredump.Sweeper.Coredump.c_diagnosis
    = Sweeper.Coredump.Double_free_suspected);
  check_bool "apache2 null deref" true
    (r2.O.a_coredump.Sweeper.Coredump.c_diagnosis
    = Sweeper.Coredump.Null_dereference);
  check_bool "different antibodies" true
    (r1.O.a_antibody.Sweeper.Antibody.ab_app
    <> r2.O.a_antibody.Sweeper.Antibody.ab_app)

(* ------------------------------------------------------------------ *)
(* Signature false positives                                           *)
(* ------------------------------------------------------------------ *)

let test_signatures_no_benign_match () =
  List.iter
    (fun key ->
      let r = analyze_on ~seed:3400 key in
      match r.O.a_signature with
      | None -> Alcotest.fail (key ^ ": no signature generated")
      | Some s ->
        List.iter
          (fun m ->
            check_bool
              (key ^ ": benign does not match signature")
              false
              (Sweeper.Signature.matches s m))
          (Apps.Registry.workload ~seed:3500 key 100))
    [ "apache1"; "apache2"; "cvs"; "squid" ]

let test_cvs_isolation_is_minimal () =
  let r = analyze_on ~seed:3600 "cvs" in
  check_bool "stream isolation" true r.O.a_isolation_stream;
  check_int "exactly two messages" 2 (List.length r.O.a_isolation)

(* ------------------------------------------------------------------ *)
(* Checkpoint/monitoring interplay                                     *)
(* ------------------------------------------------------------------ *)

let test_vsef_survives_recovery_cycles () =
  (* After a VSEF-blocked attack triggers rollback recovery, the VSEF is
     still armed for the next one. *)
  let key = "cvs" in
  let r = analyze_on ~seed:3700 key in
  let proc, server = boot ~seed:3701 key in
  let _ = Sweeper.Antibody.deploy proc r.O.a_antibody in
  (* Drop the signature so only VSEFs defend (polymorphic-style attack). *)
  Osim.Netlog.remove_filter proc.Osim.Process.net ~name:("antibody-" ^ key);
  for round = 1 to 3 do
    let exploit = Apps.Exploits.cvs ~dir:(Printf.sprintf "round%d" round) () in
    let blocked = ref false in
    List.iter
      (fun m ->
        match O.protected_handle ~app:key server m with
        | `Blocked_by_vsef _ -> blocked := true
        | `Attack _ -> Alcotest.fail "VSEF lost after recovery"
        | _ -> ())
      exploit.Apps.Exploits.x_messages;
    check_bool (Printf.sprintf "round %d blocked" round) true !blocked
  done

let test_quarantine_survives_multiple_recoveries () =
  let key = "apache2" in
  let _proc, server = boot ~seed:3800 key in
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload ~seed:38 key 5);
  (* Two separate attacks, analyzed independently; both inputs must stay
     quarantined through both recoveries. *)
  List.iter
    (fun referer ->
      let x = Apps.Exploits.apache2 ~referer () in
      List.iter
        (fun m -> ignore (O.protected_handle ~app:key server m))
        x.Apps.Exploits.x_messages)
    [ "first.attack"; ];
  (* The signature from attack 1 filters attack 2 if identical; use a
     different referer so it reaches the VSEF/crash path instead. *)
  let x2 = Apps.Exploits.apache2 ~referer:"second.attack" () in
  let handled = ref false in
  List.iter
    (fun m ->
      match O.protected_handle ~app:key server m with
      | `Blocked_by_vsef _ | `Attack _ -> handled := true
      | _ -> ())
    x2.Apps.Exploits.x_messages;
  check_bool "second attack handled" true !handled;
  match Osim.Server.handle server "GET /ok\nReferer: http://fine/\n" with
  | `Served _ -> ()
  | _ -> Alcotest.fail "service lost after two attack cycles"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "integration"
    [
      ( "portability",
        [
          Alcotest.test_case "apache1 antibody portable" `Quick
            (test_antibody_portable "apache1");
          Alcotest.test_case "cvs antibody portable" `Quick
            (test_antibody_portable "cvs");
          Alcotest.test_case "squid antibody portable" `Quick
            (test_antibody_portable "squid");
        ] );
      ( "waves",
        [
          Alcotest.test_case "three waves one host" `Quick test_three_waves_one_host;
          Alcotest.test_case "attack after long stream" `Quick
            test_attack_after_long_benign_stream;
          Alcotest.test_case "interleaved apps" `Quick test_interleaved_apps_independent;
        ] );
      ( "signatures",
        [
          Alcotest.test_case "no benign match" `Quick test_signatures_no_benign_match;
          Alcotest.test_case "cvs isolation minimal" `Quick
            test_cvs_isolation_is_minimal;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "vsef survives recovery" `Quick
            test_vsef_survives_recovery_cycles;
          Alcotest.test_case "quarantine survives" `Quick
            test_quarantine_survives_multiple_recoveries;
        ] );
    ]
