(* Forensics: infection trees reconstructed from provenance-carrying
   netlogs must match the simulator's ground-truth infection log —
   exactly on deterministic runs, qcheck'd over random topologies, shard
   counts, and mid-stream attacks. Plus the netlog provenance and
   consumed_since/quarantine regressions, the DOT golden rendering, and
   the merged multi-domain trace with sender→receiver flow events. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

module Fx = Forensics
module Sh = Sweeper.Defense.Sharded
module D = Sweeper.Defense

(* ------------------------------------------------------------------ *)
(* Netlog provenance and the consumed_since/quarantine interplay       *)
(* ------------------------------------------------------------------ *)

let log_with payloads =
  let t = Osim.Netlog.create () in
  List.iteri
    (fun i p ->
      match
        Osim.Netlog.arrive ~src:(100 + i) ~seq:i ~vtime:(float_of_int i) t p
      with
      | Ok _ -> ()
      | Error f -> Alcotest.failf "message %d filtered by %s" i f)
    payloads;
  t

let consume t n =
  for _ = 1 to n do
    match Osim.Netlog.next_for_recv t with
    | Some _ -> ()
    | None -> Alcotest.fail "netlog blocked with messages pending"
  done

let consumed_ids t pos =
  List.map (fun m -> m.Osim.Netlog.m_id) (Osim.Netlog.consumed_since t pos)

let test_provenance_stamps () =
  let t = Osim.Netlog.create () in
  (match Osim.Netlog.arrive t "plain" with
  | Ok id ->
    check_bool "default stamp is external" true
      ((Osim.Netlog.message t id).Osim.Netlog.m_prov
      = Osim.Netlog.external_provenance)
  | Error _ -> Alcotest.fail "benign message filtered");
  match Osim.Netlog.arrive ~src:7 ~seq:3 ~vtime:1.5 t "stamped" with
  | Ok id ->
    let p = (Osim.Netlog.message t id).Osim.Netlog.m_prov in
    check_int "src" 7 p.Osim.Netlog.p_src;
    check_int "seq" 3 p.Osim.Netlog.p_seq;
    check (Alcotest.float 1e-9) "vtime" 1.5 p.Osim.Netlog.p_vtime
  | Error _ -> Alcotest.fail "benign message filtered"

let test_consumed_since_cursor_at_zero () =
  let t = log_with [ "a"; "b" ] in
  check_bool "nothing consumed yet" true (consumed_ids t 0 = [])

let test_consumed_since_skips_quarantined () =
  let t = log_with [ "a"; "b"; "c" ] in
  consume t 3;
  Osim.Netlog.quarantine t [ 1 ];
  check_bool "quarantined id excluded" true (consumed_ids t 0 = [ 0; 2 ]);
  check_bool "is_quarantined" true (Osim.Netlog.is_quarantined t 1);
  check_bool "quarantined_ids" true (Osim.Netlog.quarantined_ids t = [ 1 ])

let test_consumed_since_all_quarantined () =
  let t = log_with [ "a"; "b" ] in
  consume t 2;
  Osim.Netlog.quarantine t [ 0; 1 ];
  check_bool "all quarantined -> no suspects" true (consumed_ids t 0 = [])

let test_consumed_since_window_boundaries () =
  let t = log_with [ "a"; "b"; "c"; "d" ] in
  consume t 3;
  check_bool "negative pos clamps to 0" true (consumed_ids t (-5) = [ 0; 1; 2 ]);
  check_bool "pos at cursor is empty" true (consumed_ids t 3 = []);
  check_bool "pos beyond cursor is empty" true (consumed_ids t 10 = []);
  check_bool "mid-window slice" true (consumed_ids t 2 = [ 2 ])

let test_consumed_since_replay_window () =
  (* Quarantine, then replay the log from the start: the replayed stream
     and the consumed_since view must agree that the quarantined message
     was never consumed. *)
  let t = log_with [ "a"; "b"; "c" ] in
  consume t 3;
  Osim.Netlog.quarantine t [ 0 ];
  Osim.Netlog.set_cursor t 0;
  Osim.Netlog.set_mode t
    (Osim.Netlog.Replay { upto = 3; skip = Osim.Netlog.Int_set.empty });
  let replayed = ref [] in
  let rec go () =
    match Osim.Netlog.next_for_recv t with
    | Some m ->
      replayed := m.Osim.Netlog.m_id :: !replayed;
      go ()
    | None -> ()
  in
  go ();
  check_bool "replay skipped the quarantined id" true
    (List.rev !replayed = [ 1; 2 ]);
  check_bool "consumed_since agrees with replay" true
    (consumed_ids t 0 = [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Reconstruction over hand-built evidence                             *)
(* ------------------------------------------------------------------ *)

let s ~host ~msg ~src ~seq ~vtime ~infected =
  {
    Fx.su_host = host;
    su_msg = msg;
    su_src = src;
    su_seq = seq;
    su_vtime = vtime;
    su_infected = infected;
  }

(* ext -> 0 -> {1, 2}, 2 -> 3; plus one blocked probe on host 4. *)
let hand_evidence =
  {
    Fx.ev_hosts = 5;
    ev_suspects =
      [
        s ~host:3 ~msg:1 ~src:2 ~seq:0 ~vtime:4.5 ~infected:true;
        s ~host:0 ~msg:0 ~src:(-1) ~seq:0 ~vtime:1.0 ~infected:true;
        s ~host:2 ~msg:0 ~src:0 ~seq:1 ~vtime:3.0 ~infected:true;
        s ~host:4 ~msg:0 ~src:1 ~seq:0 ~vtime:5.0 ~infected:false;
        s ~host:1 ~msg:0 ~src:0 ~seq:0 ~vtime:2.0 ~infected:true;
      ];
  }

let test_reconstruct_exact () =
  let tree = Fx.reconstruct hand_evidence in
  check_bool "edges sorted by (vtime, dst)" true
    (List.map (fun e -> (e.Fx.e_src, e.Fx.e_dst)) tree.Fx.t_edges
    = [ (-1, 0); (0, 1); (0, 2); (2, 3) ]);
  check_bool "roots" true (tree.Fx.t_roots = [ 0 ]);
  check_bool "patient zero" true (tree.Fx.t_patient_zero = Some 0);
  check_bool "depths" true
    (tree.Fx.t_depths = [ (0, 0); (1, 1); (2, 1); (3, 2) ]);
  check_int "max depth" 2 tree.Fx.t_max_depth;
  check_bool "fanout" true (tree.Fx.t_fanout = [ (0, 2); (2, 1) ]);
  check_int "attempts" 5 tree.Fx.t_attempts;
  check_int "blocked" 1 tree.Fx.t_blocked

let test_time_to_infection () =
  let tree = Fx.reconstruct hand_evidence in
  let edge dst = List.find (fun e -> e.Fx.e_dst = dst) tree.Fx.t_edges in
  check (Alcotest.float 1e-9) "external edge: arrival itself" 1.0
    (Fx.time_to_infection tree (edge 0));
  check (Alcotest.float 1e-9) "2 -> 3: child minus parent arrival" 1.5
    (Fx.time_to_infection tree (edge 3))

let test_reconstruct_cycle_guard () =
  (* Inconsistent evidence (0 infected 1, 1 infected 0, nothing external)
     must terminate with defined depths, no roots, no patient zero. *)
  let ev =
    {
      Fx.ev_hosts = 2;
      ev_suspects =
        [
          s ~host:0 ~msg:0 ~src:1 ~seq:0 ~vtime:1.0 ~infected:true;
          s ~host:1 ~msg:0 ~src:0 ~seq:0 ~vtime:2.0 ~infected:true;
        ];
    }
  in
  let tree = Fx.reconstruct ev in
  check_int "both edges kept" 2 (List.length tree.Fx.t_edges);
  check_bool "no roots" true (tree.Fx.t_roots = []);
  check_bool "no patient zero" true (tree.Fx.t_patient_zero = None);
  check_int "depths defined for both" 2 (List.length tree.Fx.t_depths)

let test_check_reports_divergence () =
  let tree = Fx.reconstruct hand_evidence in
  check_bool "identical edge lists agree" true
    (Fx.check tree tree.Fx.t_edges = Ok ());
  (match tree.Fx.t_edges with
  | first :: rest -> (
    match Fx.check tree ({ first with Fx.e_seq = 99 } :: rest) with
    | Error msg ->
      check_bool "names the first divergent edge" true
        (String.length msg >= 6 && String.sub msg 0 6 = "edge 0")
    | Ok () -> Alcotest.fail "expected a divergence")
  | [] -> Alcotest.fail "no edges");
  match Fx.check tree (tree.Fx.t_edges @ [ List.hd tree.Fx.t_edges ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected a missing-edge divergence"

let dot_golden =
  "digraph infection {\n" ^ "  rankdir=TB;\n"
  ^ "  node [shape=box, fontname=\"monospace\"];\n"
  ^ "  ext [label=\"external\", shape=ellipse, style=dashed];\n"
  ^ "  h0 [label=\"host 0\", peripheries=2];\n"
  ^ "  h1 [label=\"host 1\"];\n" ^ "  h2 [label=\"host 2\"];\n"
  ^ "  h3 [label=\"host 3\"];\n" ^ "  ext -> h0 [label=\"1.000ms\"];\n"
  ^ "  h0 -> h1 [label=\"2.000ms\"];\n" ^ "  h0 -> h2 [label=\"3.000ms\"];\n"
  ^ "  h2 -> h3 [label=\"4.500ms\"];\n" ^ "}\n"

let test_dot_golden () =
  check_str "deterministic DOT rendering" dot_golden
    (Fx.to_dot (Fx.reconstruct hand_evidence))

let test_json_report () =
  let tree = Fx.reconstruct hand_evidence in
  let j = Fx.to_json ~app:"apache1" tree in
  check_bool "patient_zero" true
    (Obs.Json.member "patient_zero" j = Some (Obs.Json.Int 0));
  check_bool "attempts" true
    (Obs.Json.member "attempts" j = Some (Obs.Json.Int 5));
  match Option.bind (Obs.Json.member "edges" j) Obs.Json.to_list with
  | Some edges -> check_int "all edges serialized" 4 (List.length edges)
  | None -> Alcotest.fail "edges array missing"

let test_register_metrics () =
  let reg = Obs.Metrics.create () in
  Fx.register_metrics (Fx.reconstruct hand_evidence) reg;
  let samples = Obs.Metrics.snapshot reg in
  let value name =
    match
      List.find_opt (fun s -> s.Obs.Metrics.s_name = name) samples
    with
    | Some { Obs.Metrics.s_value = Obs.Metrics.Sample_gauge v; _ } -> v
    | _ -> Alcotest.failf "gauge %s missing" name
  in
  check (Alcotest.float 1e-9) "edges gauge" 4. (value "sweeper_forensics_edges");
  check (Alcotest.float 1e-9) "max depth gauge" 2.
    (value "sweeper_forensics_max_depth");
  check (Alcotest.float 1e-9) "patient zero gauge" 0.
    (value "sweeper_forensics_patient_zero");
  check_bool "depth histogram observed every victim" true
    (List.exists
       (fun sm ->
         sm.Obs.Metrics.s_name = "sweeper_forensics_depth"
         &&
         match sm.Obs.Metrics.s_value with
         | Obs.Metrics.Sample_histogram (_, _, count) -> count = 4
         | _ -> false)
       samples)

(* ------------------------------------------------------------------ *)
(* End-to-end: a real provenance-tracked spread over Defense.Sharded   *)
(* ------------------------------------------------------------------ *)

let compiled = lazy ((Apps.Registry.find "apache1").r_compile ())

(* An exploit aimed with the victim's true layout: lands unless an
   antibody (or a producer's heavyweight monitor) stops it. *)
let aimed (dst : D.host) =
  let proc = dst.D.h_proc in
  (Apps.Exploits.apache1_against
     ~system_guess:(Osim.Process.system_addr proc)
     ~reqbuf_addr:(Hashtbl.find proc.Osim.Process.data_symbols "reqbuf")
     ())
    .Apps.Exploits.x_messages

let wild rng =
  let guess = 0x4f770000 + (Random.State.int rng 4096 * 4096) + 0x15a0 in
  (Apps.Exploits.apache1_against ~system_guess:guess ~reqbuf_addr:0x08100000
     ())
    .Apps.Exploits.x_messages

(* The worm spread of `sweeperctl forensics`, compact: round 1 seeds one
   aimed probe on a consumer (spliced mid-stream into benign traffic);
   afterwards every infected host probes two targets per round, aimed
   with probability 0.7. Pure in (seed, host, round), so every domain
   count replays the identical outbreak. *)
let spread c ~seed ~rounds =
  let host_arr = Array.of_list (Sh.hosts c) in
  let n = Array.length host_arr in
  for round = 1 to rounds do
    let attempts = Hashtbl.create 32 in
    let add dst pair =
      Hashtbl.replace attempts dst
        (pair :: Option.value ~default:[] (Hashtbl.find_opt attempts dst))
    in
    if round = 1 then begin
      let rng = Random.State.make [| seed; 0x5EED |] in
      let dst = host_arr.(1 + Random.State.int rng (n - 1)) in
      let benign = Apps.Registry.workload "apache1" 1 in
      List.iter
        (fun m -> add dst.D.h_id (-1, m))
        (benign @ aimed dst @ benign)
    end
    else
      Array.iter
        (fun (src : D.host) ->
          if src.D.h_infected then begin
            let rng =
              Random.State.make [| seed; 0x3072; src.D.h_id; round |]
            in
            for _k = 1 to 2 do
              let dst = host_arr.(Random.State.int rng n) in
              let accurate = Random.State.float rng 1.0 < 0.7 in
              if dst.D.h_id <> src.D.h_id then
                let msgs = if accurate then aimed dst else wild rng in
                List.iter
                  (fun m -> add dst.D.h_id (src.D.h_id, m))
                  msgs
            done
          end)
        host_arr;
    Sh.post_traffic_from c ~traffic:(fun h ->
        List.rev
          (Option.value ~default:[] (Hashtbl.find_opt attempts h.D.h_id)));
    ignore (Sh.run_round c)
  done

let run_spread ~domains ~shards ~topology ~n ~producers ~seed ~rounds () =
  let c =
    Sh.create ~domains ~shards ~topology ~app:"apache1"
      ~compile:(fun () -> Lazy.force compiled)
      ~n ~producers ~seed ()
  in
  spread c ~seed ~rounds;
  c

let test_e2e_reconstruction_matches_ground_truth () =
  (* The acceptance run: 8 hosts on 2 domains, subnet placement. The
     netlog reconstruction must equal the ground-truth infection log,
     and the whole report must be byte-identical to a single-domain run
     of the same spread. *)
  let go domains =
    run_spread ~domains ~shards:2 ~topology:(Osim.Cluster.Subnet 4) ~n:8
      ~producers:1 ~seed:4242 ~rounds:3 ()
  in
  let c2 = go 2 in
  let tree2 = Fx.reconstruct (Fx.of_sharded c2) in
  check_bool "the worm actually spread" true
    (List.length tree2.Fx.t_edges >= 2);
  check_bool "patient zero recovered" true (tree2.Fx.t_patient_zero <> None);
  (match Fx.check tree2 (Fx.ground_truth c2) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "reconstruction diverged: %s" msg);
  let c1 = go 1 in
  let tree1 = Fx.reconstruct (Fx.of_sharded c1) in
  check_bool "trees identical across domain counts" true (tree1 = tree2);
  check_str "byte-identical DOT" (Fx.to_dot tree1) (Fx.to_dot tree2);
  check_str "byte-identical JSON"
    (Obs.Json.to_string (Fx.to_json tree1))
    (Obs.Json.to_string (Fx.to_json tree2));
  check_bool "DOT names patient zero" true
    (let dot = Fx.to_dot tree2 in
     let needle = "peripheries=2" in
     let rec find i =
       if i + String.length needle > String.length dot then false
       else String.sub dot i (String.length needle) = needle || find (i + 1)
     in
     find 0)

let test_evidence_is_netlog_only () =
  (* of_hosts must mine exactly the quarantined ids plus the infected
     hosts' in-flight messages — one infected suspect per victim. *)
  let c =
    run_spread ~domains:2 ~shards:2 ~topology:(Osim.Cluster.Subnet 4) ~n:8
      ~producers:1 ~seed:4242 ~rounds:3 ()
  in
  let ev = Fx.of_sharded c in
  check_int "population size" 8 ev.Fx.ev_hosts;
  let infected =
    List.filter (fun (h : D.host) -> h.D.h_infected) (Sh.hosts c)
  in
  check_int "one infected suspect per victim"
    (List.length infected)
    (List.length (List.filter (fun su -> su.Fx.su_infected) ev.Fx.ev_suspects))

let prop_reconstruction_matches_ground_truth =
  QCheck.Test.make ~count:4
    ~name:
      "netlog reconstruction = ground truth over random topologies and \
       shard counts"
    QCheck.(
      quad (int_range 5 8) (int_range 0 2) (int_range 1 2)
        (int_range 0 1_000_000))
    (fun (n, topo_idx, shards, seed) ->
      let topology =
        match topo_idx with
        | 0 -> Osim.Cluster.Uniform
        | 1 -> Osim.Cluster.Subnet 2
        | _ -> Osim.Cluster.Overlay 3
      in
      let c =
        run_spread ~domains:2 ~shards ~topology ~n ~producers:1 ~seed
          ~rounds:2 ()
      in
      Fx.check (Fx.reconstruct (Fx.of_sharded c)) (Fx.ground_truth c) = Ok ())

(* ------------------------------------------------------------------ *)
(* The merged multi-domain trace (windows, barriers, message flows)    *)
(* ------------------------------------------------------------------ *)

let test_sharded_trace_merged () =
  Obs.Trace.enable ();
  Obs.Trace.clear ();
  let c =
    run_spread ~domains:2 ~shards:2 ~topology:(Osim.Cluster.Subnet 4) ~n:8
      ~producers:1 ~seed:4242 ~rounds:3 ()
  in
  Obs.Trace.disable ();
  check_bool "the traced spread infected someone" true
    (Sh.infected_count c > 0);
  let evs = Obs.Trace.events () in
  let windows = List.filter (fun e -> e.Obs.Trace.ev_name = "window") evs in
  let lanes =
    List.sort_uniq compare (List.map (fun e -> e.Obs.Trace.ev_pid) windows)
  in
  check_bool "window spans from both shard lanes" true (lanes = [ 0; 1 ]);
  check_bool "barrier spans present" true
    (List.exists (fun e -> e.Obs.Trace.ev_name = "barrier") evs);
  let starts = List.filter (fun e -> e.Obs.Trace.ev_ph = "s") evs in
  let finishes = List.filter (fun e -> e.Obs.Trace.ev_ph = "f") evs in
  check_bool "worm traffic opened flows" true (starts <> []);
  check_bool "some flows completed at the receiver" true (finishes <> []);
  let start_ids = List.map (fun e -> e.Obs.Trace.ev_flow_id) starts in
  check_bool "every flow finish pairs with a start" true
    (List.for_all
       (fun e -> List.mem e.Obs.Trace.ev_flow_id start_ids)
       finishes);
  (* The merged JSON is one well-formed Chrome trace. *)
  match
    Option.bind
      (Obs.Json.member "traceEvents"
         (Obs.Json.parse_exn (Obs.Trace.to_chrome_json ())))
      Obs.Json.to_list
  with
  | Some l -> check_int "every event serialized" (List.length evs) (List.length l)
  | None -> Alcotest.fail "merged trace has no traceEvents array"

(* ------------------------------------------------------------------ *)

(* Deterministic qcheck runs by default; QCHECK_SEED overrides. *)
let qcheck_rand () =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 0x5EED)
    | None -> 0x5EED
  in
  Random.State.make [| seed |]

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ())) tests)

let () =
  Alcotest.run "forensics"
    [
      ( "netlog",
        [
          Alcotest.test_case "provenance stamps" `Quick test_provenance_stamps;
          Alcotest.test_case "consumed_since: cursor at 0" `Quick
            test_consumed_since_cursor_at_zero;
          Alcotest.test_case "consumed_since: skips quarantined" `Quick
            test_consumed_since_skips_quarantined;
          Alcotest.test_case "consumed_since: all quarantined" `Quick
            test_consumed_since_all_quarantined;
          Alcotest.test_case "consumed_since: window boundaries" `Quick
            test_consumed_since_window_boundaries;
          Alcotest.test_case "consumed_since: replay window" `Quick
            test_consumed_since_replay_window;
        ] );
      ( "reconstruct",
        [
          Alcotest.test_case "exact tree from hand evidence" `Quick
            test_reconstruct_exact;
          Alcotest.test_case "time to infection" `Quick test_time_to_infection;
          Alcotest.test_case "cycle guard" `Quick test_reconstruct_cycle_guard;
          Alcotest.test_case "check names divergences" `Quick
            test_check_reports_divergence;
          Alcotest.test_case "DOT golden" `Quick test_dot_golden;
          Alcotest.test_case "JSON report" `Quick test_json_report;
          Alcotest.test_case "metrics registration" `Quick
            test_register_metrics;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "2-domain subnet outbreak reconstructs" `Quick
            test_e2e_reconstruction_matches_ground_truth;
          Alcotest.test_case "evidence is netlog-only" `Quick
            test_evidence_is_netlog_only;
          Alcotest.test_case "merged multi-domain trace" `Quick
            test_sharded_trace_merged;
        ] );
      qsuite "qcheck" [ prop_reconstruction_matches_ground_truth ];
    ]
