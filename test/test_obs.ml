(* Tests for the observability subsystem (lib/obs): the JSON codec, the
   metrics registry, the span tracer, and the VM flight recorder — plus
   the central contract that observability is free when disabled: the
   attack pipeline's observable behaviour (committed outputs, instruction
   counts, rendered reports) is byte-identical whether obs is absent,
   enabled, or the flight recorder is armed. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

let reset_obs () =
  Obs.Trace.disable ();
  Obs.Trace.clear ()

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let samples =
    [
      Obs.Json.Null;
      Obs.Json.Bool true;
      Obs.Json.Int (-42);
      Obs.Json.Str "with \"quotes\", \\backslash\\ and \n newline";
      Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Null ];
      Obs.Json.Obj
        [ ("a", Obs.Json.List []); ("b", Obs.Json.Obj [ ("c", Obs.Json.Int 0) ]) ];
    ]
  in
  List.iter
    (fun j ->
      let s = Obs.Json.to_string j in
      check_bool ("roundtrip " ^ s) true (Obs.Json.parse_exn s = j))
    samples;
  (* Floats print with enough digits to re-read exactly. *)
  (match Obs.Json.parse_exn (Obs.Json.to_string (Obs.Json.Float 20.35)) with
  | Obs.Json.Float f -> check (Alcotest.float 1e-9) "float" 20.35 f
  | _ -> Alcotest.fail "float did not parse as float");
  (* Malformed input raises, the non-raising variant reports. *)
  check_bool "parse error" true
    (match Obs.Json.parse "{\"a\": }" with Error _ -> true | Ok _ -> false)

let test_json_member () =
  let j = Obs.Json.parse_exn {| {"traceEvents": [{"name": "x"}], "n": 1} |} in
  (match Obs.Json.member "traceEvents" j with
  | Some l -> (
    match Obs.Json.to_list l with
    | Some [ e ] ->
      check_bool "member of element" true
        (Obs.Json.member "name" e = Some (Obs.Json.Str "x"))
    | _ -> Alcotest.fail "traceEvents should hold one element")
  | None -> Alcotest.fail "traceEvents missing");
  check_bool "absent member" true (Obs.Json.member "zzz" j = None)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_instruments () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:reg "t_total" in
  Obs.Metrics.inc c;
  Obs.Metrics.add c 4;
  (* Get-or-create: the same (name, labels) yields the same cell. *)
  Obs.Metrics.inc (Obs.Metrics.counter ~registry:reg "t_total");
  check_int "counter" 6 (Obs.Metrics.counter_value c);
  let g = Obs.Metrics.gauge ~registry:reg ~labels:[ ("k", "v") ] "t_gauge" in
  Obs.Metrics.set g 2.5;
  check (Alcotest.float 0.) "gauge" 2.5 (Obs.Metrics.gauge_value g);
  (* Same name, different labels: a distinct time series. *)
  let g2 = Obs.Metrics.gauge ~registry:reg ~labels:[ ("k", "w") ] "t_gauge" in
  check (Alcotest.float 0.) "gauge 2" 0. (Obs.Metrics.gauge_value g2);
  (* Re-registering a name as a different type is a programming error. *)
  check_bool "type clash" true
    (try
       ignore (Obs.Metrics.gauge ~registry:reg "t_total");
       false
     with Invalid_argument _ -> true);
  let h =
    Obs.Metrics.histogram ~registry:reg ~buckets:[| 1.; 10. |] "t_hist"
  in
  Obs.Metrics.observe h 0.5;
  Obs.Metrics.observe h 5.;
  Obs.Metrics.observe h 50.;
  Obs.Metrics.gauge_fn ~registry:reg "t_pull" (fun () -> 7.);
  let samples = Obs.Metrics.snapshot reg in
  (* Deterministic order: sorted by name then labels. *)
  check_bool "snapshot sorted" true
    (let names = List.map (fun s -> s.Obs.Metrics.s_name) samples in
     names = List.sort compare names);
  (match
     List.find_opt (fun s -> s.Obs.Metrics.s_name = "t_hist") samples
   with
  | Some { Obs.Metrics.s_value = Obs.Metrics.Sample_histogram (b, sum, n); _ }
    ->
    check_int "hist count" 3 n;
    check (Alcotest.float 1e-9) "hist sum" 55.5 sum;
    (* Cumulative buckets: ≤1 holds 1, ≤10 holds 2. *)
    check_bool "hist buckets" true
      (List.map snd b = [ 1; 2 ])
  | _ -> Alcotest.fail "histogram sample missing");
  match
    List.find_opt (fun s -> s.Obs.Metrics.s_name = "t_pull") samples
  with
  | Some { Obs.Metrics.s_value = Obs.Metrics.Sample_gauge v; _ } ->
    check (Alcotest.float 0.) "pull gauge polled" 7. v
  | _ -> Alcotest.fail "pull gauge missing"

let test_metrics_exposition () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.inc
    (Obs.Metrics.counter ~registry:reg ~help:"test counter"
       ~labels:[ ("server", "3") ] "t_requests_total");
  Obs.Metrics.observe
    (Obs.Metrics.histogram ~registry:reg ~buckets:[| 1. |] "t_ms")
    0.5;
  let text = Obs.Metrics.to_prometheus reg in
  let has needle =
    let n = String.length needle and l = String.length text in
    let rec go i = i + n <= l && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "HELP line" true (has "# HELP t_requests_total test counter");
  check_bool "TYPE line" true (has "# TYPE t_requests_total counter");
  check_bool "labelled sample" true (has "t_requests_total{server=\"3\"} 1");
  check_bool "+Inf bucket" true (has "t_ms_bucket{le=\"+Inf\"} 1");
  check_bool "hist sum" true (has "t_ms_sum");
  check_bool "hist count" true (has "t_ms_count 1");
  (* The JSON snapshot must itself parse with our parser. *)
  match
    Obs.Json.member "metrics"
      (Obs.Json.parse_exn (Obs.Json.to_string (Obs.Metrics.to_json reg)))
  with
  | Some l ->
    check_bool "json metrics list" true
      (match Obs.Json.to_list l with Some (_ :: _) -> true | _ -> false)
  | None -> Alcotest.fail "to_json lacks a metrics field"

(* ------------------------------------------------------------------ *)
(* The attack pipeline under three obs configurations                  *)
(* ------------------------------------------------------------------ *)

let compiled = lazy ((Apps.Registry.find "apache1").r_compile ())

(* Everything observable about one full attack/defense cycle. *)
type attack_obs = {
  ao_outputs : (int * string) list;
  ao_icount : int;
  ao_fast : int;
  ao_slow : int;
  ao_block : int;
  ao_table2 : string;
  ao_summary : string;
}

let run_attack_case ~trace ~recorder () =
  reset_obs ();
  if trace then Obs.Trace.enable ();
  let proc = Osim.Process.load ~aslr:true ~seed:42 (Lazy.force compiled) in
  if recorder then
    proc.Osim.Process.flight <-
      Some (Obs.Recorder.attach proc.Osim.Process.cpu);
  let server =
    Osim.Server.create
      ?metrics:(if trace then Some (Obs.Metrics.create ()) else None)
      proc
  in
  ignore (Osim.Server.run server);
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload ~seed:42 "apache1" 5);
  let exploit =
    Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 "apache1"
  in
  let report = ref None in
  List.iter
    (fun m ->
      match Sweeper.Orchestrator.protected_handle ~app:"apache1" server m with
      | `Attack r -> report := Some r
      | _ -> ())
    exploit.Apps.Exploits.x_messages;
  let r = Option.get !report in
  let cpu = proc.Osim.Process.cpu in
  let out =
    {
      ao_outputs = Osim.Process.committed_outputs proc;
      ao_icount = cpu.Vm.Cpu.icount;
      ao_fast = cpu.Vm.Cpu.fast_retired;
      ao_slow = cpu.Vm.Cpu.slow_retired;
      ao_block = cpu.Vm.Cpu.block_retired;
      ao_table2 = Sweeper.Report.table2_to_string proc r;
      ao_summary = Sweeper.Report.summary r;
    }
  in
  reset_obs ();
  out

(* Enabling the tracer + metrics, or arming the flight recorder, must not
   change anything the pipeline computes: same outputs, same instruction
   counts, byte-identical Table 2. The recorder steers execution through
   the instrumented path, so its tier split differs — but the split
   itself must be conserved: block + fast + slow = instructions retired
   either way. *)
let test_differential () =
  let off = run_attack_case ~trace:false ~recorder:false () in
  let on = run_attack_case ~trace:true ~recorder:false () in
  let rec_on = run_attack_case ~trace:false ~recorder:true () in
  check_bool "outputs: off = on" true (off.ao_outputs = on.ao_outputs);
  check_bool "outputs: off = recorder" true (off.ao_outputs = rec_on.ao_outputs);
  check_int "icount: off = on" off.ao_icount on.ao_icount;
  check_int "icount: off = recorder" off.ao_icount rec_on.ao_icount;
  check_string "table2: off = on" off.ao_table2 on.ao_table2;
  check_string "table2: off = recorder" off.ao_table2 rec_on.ao_table2;
  check_string "summary: off = on" off.ao_summary on.ao_summary;
  (* Tracing alone must not move instructions between tiers. *)
  check_int "fast path untouched by tracing" off.ao_fast on.ao_fast;
  check_int "slow path untouched by tracing" off.ao_slow on.ao_slow;
  check_int "block tier untouched by tracing" off.ao_block on.ao_block;
  (* The recorder forces the instrumented path; retirement is conserved
     across all three tiers. *)
  check_int "retired conserved under recorder"
    (off.ao_block + off.ao_fast + off.ao_slow)
    (rec_on.ao_block + rec_on.ao_fast + rec_on.ao_slow);
  check_bool "recorder ran on the slow path" true
    (rec_on.ao_slow > off.ao_slow)

(* ------------------------------------------------------------------ *)
(* Span well-formedness                                                *)
(* ------------------------------------------------------------------ *)

let is_real f = not (Float.is_nan f)

(* Every event of a trace is well-formed: non-negative wall duration,
   virtual end ≥ virtual begin — except recovery spans, which cross a
   rollback: restoring a checkpoint rewinds the virtual clock, and the
   span records exactly that rewind. *)
let check_events_well_formed evs =
  List.iter
    (fun (e : Obs.Trace.event) ->
      if e.ev_ts_us < 0. then Alcotest.failf "%s: negative ts" e.ev_name;
      if e.ev_dur_us < 0. then Alcotest.failf "%s: negative dur" e.ev_name;
      if
        is_real e.ev_vts_ms && is_real e.ev_vts_end_ms
        && e.ev_vts_end_ms < e.ev_vts_ms
        && e.ev_cat <> "recovery"
      then Alcotest.failf "%s: virtual clock ran backwards" e.ev_name)
    evs

(* Run a few hosts' benign streams interleaved under the scheduler with
   the given quantum and return the trace. *)
let sched_trace quantum =
  reset_obs ();
  Obs.Trace.enable ();
  let sched = Osim.Sched.create ~quantum () in
  let tasks =
    List.map
      (fun (seed, n) ->
        let proc = Osim.Process.load ~aslr:true ~seed (Lazy.force compiled) in
        let server = Osim.Server.create proc in
        ignore (Osim.Server.run server);
        let task = Osim.Sched.add sched server in
        List.iter
          (Osim.Sched.post sched task)
          (Apps.Registry.workload ~seed "apache1" n);
        task)
      [ (2001, 4); (2002, 6); (2003, 3) ]
  in
  Osim.Sched.run sched
    ~handler:(fun task ev ->
      match ev with
      | Osim.Sched.Served _ -> ()
      | _ -> Alcotest.failf "task %d: unexpected event" task.Osim.Sched.sk_id);
  let evs = Obs.Trace.events () in
  reset_obs ();
  (evs, tasks)

let span_property quantum =
  let evs, tasks = sched_trace quantum in
  check_events_well_formed evs;
  let serves =
    List.filter (fun (e : Obs.Trace.event) -> e.ev_name = "serve") evs
  in
  (* One serve span per delivered message. *)
  let delivered =
    List.fold_left (fun a t -> a + t.Osim.Sched.sk_delivered) 0 tasks
  in
  check_int "serve span per message" delivered (List.length serves);
  (* Per host, the virtual clock stamped on successive serve spans is
     monotone however the quanta sliced the interleaving. *)
  List.iter
    (fun (task : Osim.Sched.task) ->
      let mine =
        List.filter
          (fun (e : Obs.Trace.event) -> e.ev_tid = task.Osim.Sched.sk_id)
          serves
      in
      ignore
        (List.fold_left
           (fun prev (e : Obs.Trace.event) ->
             if is_real e.ev_vts_ms && e.ev_vts_ms < prev then
               Alcotest.failf "task %d: serve vts not monotone"
                 task.Osim.Sched.sk_id;
             if is_real e.ev_vts_end_ms then e.ev_vts_end_ms else prev)
           0. mine))
    tasks;
  true

let test_sched_spans_qcheck =
  QCheck.Test.make ~count:6 ~name:"sched serve spans well-formed"
    QCheck.(int_range 137 4000)
    span_property

(* The attack trace: stage and recovery spans nest inside the attack
   span, and every analysis stage appears. *)
let test_attack_trace_nesting () =
  reset_obs ();
  Obs.Trace.enable ();
  let proc = Osim.Process.load ~aslr:true ~seed:42 (Lazy.force compiled) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload ~seed:42 "apache1" 3);
  let exploit =
    Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 "apache1"
  in
  List.iter
    (fun m ->
      ignore (Sweeper.Orchestrator.protected_handle ~app:"apache1" server m))
    exploit.Apps.Exploits.x_messages;
  let evs = Obs.Trace.events () in
  let chrome = Obs.Trace.to_chrome_json () in
  reset_obs ();
  check_events_well_formed evs;
  let find name =
    match
      List.find_opt (fun (e : Obs.Trace.event) -> e.ev_name = name) evs
    with
    | Some e -> e
    | None -> Alcotest.failf "no %s span in the attack trace" name
  in
  let attack = find "attack" in
  let inside (e : Obs.Trace.event) =
    (* Half a microsecond of slack for clock granularity. *)
    let eps = 0.5 in
    e.ev_ts_us >= attack.ev_ts_us -. eps
    && e.ev_ts_us +. e.ev_dur_us <= attack.ev_ts_us +. attack.ev_dur_us +. eps
  in
  List.iter
    (fun (s : Sweeper.Stage.t) ->
      let e = find s.Sweeper.Stage.name in
      check_bool (s.Sweeper.Stage.name ^ " nested in attack") true (inside e))
    [
      Sweeper.Orchestrator.coredump_stage;
      Sweeper.Orchestrator.membug_stage;
      Sweeper.Orchestrator.taint_stage;
      Sweeper.Orchestrator.isolation_stage;
      Sweeper.Orchestrator.slicing_stage;
    ];
  check_bool "recovery nested in attack" true (inside (find "recovery"));
  check_bool "checkpoint span present" true
    (List.exists (fun (e : Obs.Trace.event) -> e.ev_name = "checkpoint") evs);
  (* The Chrome export of this trace parses and carries every event. *)
  (match
     Option.bind
       (Obs.Json.member "traceEvents" (Obs.Json.parse_exn chrome))
       Obs.Json.to_list
   with
  | Some l -> check_int "chrome export carries every event" (List.length evs)
      (List.length l)
  | None -> Alcotest.fail "chrome export lacks traceEvents");
  check_bool "attack has positive duration" true (attack.ev_dur_us > 0.)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

(* The ring must hold exactly the tail of the true retirement stream,
   across message boundaries and across the rollback/recovery of a full
   attack cycle. The reference stream comes from a second, independent
   post-hook on the same CPU. *)
let test_flight_recorder_tail () =
  reset_obs ();
  let proc = Osim.Process.load ~aslr:true ~seed:42 (Lazy.force compiled) in
  let cpu = proc.Osim.Process.cpu in
  let reference = ref [] in
  ignore
    (Vm.Cpu.add_post_hook cpu (fun e ->
         reference :=
           (e.Vm.Event.e_pc, cpu.Vm.Cpu.icount, e.Vm.Event.e_instr)
           :: !reference));
  let r = Obs.Recorder.attach ~capacity:100 cpu in
  proc.Osim.Process.flight <- Some r;
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload ~seed:42 "apache1" 3);
  check_int "ring is full" 100 (Obs.Recorder.size r);
  let ring_tuples () =
    List.map
      (fun (rc : Obs.Recorder.record) -> (rc.r_pc, rc.r_icount, rc.r_instr))
      (Obs.Recorder.records r)
  in
  let reference_tail () =
    let rec take n l = if n = 0 then [] else
      match l with [] -> [] | x :: tl -> x :: take (n - 1) tl
    in
    List.rev (take 100 !reference)
  in
  check_bool "ring = reference tail (benign)" true
    (ring_tuples () = reference_tail ());
  (* Now crash, analyze, roll back, recover — the recorder keeps tracking
     the true execution through all of it. *)
  let exploit =
    Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 "apache1"
  in
  let flight_dump = ref None in
  List.iter
    (fun m ->
      match Sweeper.Orchestrator.protected_handle ~app:"apache1" server m with
      | `Attack rep ->
        flight_dump := rep.Sweeper.Orchestrator.a_coredump.Sweeper.Coredump.c_flight
      | _ -> ())
    exploit.Apps.Exploits.x_messages;
  check_bool "ring = reference tail (post-recovery)" true
    (ring_tuples () = reference_tail ());
  (* The crash report captured a dump of the ring as it stood at the
     fault. *)
  (match !flight_dump with
  | Some d -> check_bool "coredump carries the ring dump" true
      (String.length d > 0)
  | None -> Alcotest.fail "coredump did not capture the flight ring");
  (* Detach: the ring freezes while execution continues. *)
  Obs.Recorder.detach r;
  check_bool "detached" true (not (Obs.Recorder.attached r));
  let frozen = ring_tuples () in
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload ~seed:43 "apache1" 1);
  check_bool "ring frozen after detach" true (frozen = ring_tuples ())

(* ------------------------------------------------------------------ *)
(* Tracer disabled = dead spans                                        *)
(* ------------------------------------------------------------------ *)

let test_disabled_tracer_records_nothing () =
  reset_obs ();
  let sp = Obs.Trace.begin_span ~cat:"x" "dead" in
  Obs.Trace.end_span sp;
  Obs.Trace.instant "dead-instant";
  let y, ms = Obs.Trace.timed "dead-timed" (fun () -> 17) in
  check_int "timed result" 17 y;
  check_bool "timed still measures" true (ms >= 0.);
  check_int "nothing recorded" 0 (Obs.Trace.event_count ())

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "member/to_list" `Quick test_json_member;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "instruments" `Quick test_metrics_instruments;
          Alcotest.test_case "exposition" `Quick test_metrics_exposition;
        ] );
      ( "zero-cost",
        [
          Alcotest.test_case "pipeline differential" `Quick test_differential;
          Alcotest.test_case "disabled tracer" `Quick
            test_disabled_tracer_records_nothing;
        ] );
      ( "spans",
        [
          QCheck_alcotest.to_alcotest test_sched_spans_qcheck;
          Alcotest.test_case "attack trace nesting" `Quick
            test_attack_trace_nesting;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "ring = reference tail" `Quick
            test_flight_recorder_tail;
        ] );
    ]
