(* The static analysis layer: CFG recovery edge cases, the worklist
   dataflow anchors, and — the load-bearing part — the soundness contract
   of the static taint prefilter:

   - for random MiniC programs, every pc the dynamic taint engine
     propagates at must be in the static may-propagate set [S];
   - replays pruned to the must-hook set [K] (fused and per-pc-hook
     alike) must be byte-identical to fully instrumented ones;
   - the per-[Ret] tripwire must restore full instrumentation when a
     return lands off the statically assumed return-site set (exercised
     by a hand-built hijack that returns into straight-line code);
   - a whole pipeline run with the static-prefilter stage must render
     the exact same Table 2 as one without it.

   Plus the interval abstract interpretation ([Absint]) and everything
   hanging off it:

   - containment: on clean runs, every dynamically observed register
     value and effective address lies inside the static interval at its
     pc;
   - bounds-check elision is invisible across clean and hijack recipes,
     and its residual-range tripwire demotes a block the moment a
     "proven" fact is violated;
   - the antibody feasibility bar accepts dynamically derived bundles
     and rejects fabricated ones;

   plus the MiniC overflow linter: unit rules and the cross-check that
   the statically flagged apps are exactly those where the dynamic
   membug detector attributes an overflow-class store to the app image. *)

module O = Sweeper.Orchestrator
module St = Static_an.Staint
module Cfg = Static_an.Cfg
module Df = Static_an.Dataflow

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* Deterministic qcheck runs by default; QCHECK_SEED overrides. *)
let qcheck_rand () =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 0x5EED)
    | None -> 0x5EED
  in
  Random.State.make [| seed |]

(* ------------------------------------------------------------------ *)
(* CFG edge cases                                                      *)
(* ------------------------------------------------------------------ *)

open Vm.Isa

let test_cfg_empty_segment () =
  let prog =
    Vm.Program.of_segments [ Vm.Program.make_segment ~base:0x1000 [||] ]
  in
  let cfg = Cfg.build prog in
  check_int "no blocks" 0 (Array.length (Cfg.blocks cfg));
  check_bool "no sink" true (Cfg.unknown cfg = None)

let test_cfg_single_block_loop () =
  let prog = Vm.Program.of_instrs ~base:0x1000 [| Jmp (Addr 0x1000) |] in
  let cfg = Cfg.build prog in
  let bs = Cfg.blocks cfg in
  check_int "one block" 1 (Array.length bs);
  check_bool "self loop" true (Cfg.succs bs.(0) = [ bs.(0).Cfg.b_id ]);
  check_bool "self pred" true (Cfg.preds bs.(0) = [ bs.(0).Cfg.b_id ])

let test_cfg_indirect_call_no_targets () =
  let prog = Vm.Program.of_instrs ~base:0x1000 [| CallInd R0; Halt |] in
  let cfg = Cfg.build prog in
  match Cfg.unknown cfg with
  | None -> Alcotest.fail "expected an unknown-target sink"
  | Some sink ->
    let b0 =
      match Cfg.block_at cfg 0x1000 with
      | Some b -> b
      | None -> Alcotest.fail "no block at 0x1000"
    in
    check_bool "edge into the sink" true (List.mem sink (Cfg.succs b0));
    check_bool "sink kind is Unknown" true
      (List.exists
         (fun (id, k) -> id = sink && k = Cfg.Unknown)
         b0.Cfg.b_succs)

let test_cfg_fallthrough_into_segment_end () =
  (* The last instruction just falls off the end of the segment: no
     successor edge (the CPU faults on the fetch), and the block must
     still be recovered. *)
  let prog =
    Vm.Program.of_instrs ~base:0x1000
      [| Mov (R0, Imm 1); Bin (Add, R0, Imm 2) |]
  in
  let cfg = Cfg.build prog in
  let bs = Cfg.blocks cfg in
  check_int "one block" 1 (Array.length bs);
  check_int "both instructions" 2 (Array.length bs.(0).Cfg.b_instrs);
  check_bool "no successors" true (Cfg.succs bs.(0) = [])

let golden_dot =
  "digraph golden {\n\
  \  node [shape=box, fontname=\"monospace\"];\n\
  \  b0 [label=\"0x001000  mov r0, 0x0\\l\"];\n\
  \  b1 [label=\"0x001004  cmp r0, 0x3\\l0x001008  jge 0x1014\\l\"];\n\
  \  b2 [label=\"0x00100c  add r0, 0x1\\l0x001010  jmp 0x1004\\l\"];\n\
  \  b3 [label=\"0x001014  halt\\l\"];\n\
  \  b0 -> b1 [label=\"fallthrough\"];\n\
  \  b1 -> b3 [label=\"branch\", style=dashed];\n\
  \  b1 -> b2 [label=\"fallthrough\"];\n\
  \  b2 -> b1 [label=\"jump\"];\n\
   }\n"

let test_cfg_dot_golden () =
  let prog =
    Vm.Program.of_instrs ~base:0x1000
      [|
        Mov (R0, Imm 0);
        Cmp (R0, Imm 3);
        Jcc (Ge, Addr 0x1014);
        Bin (Add, R0, Imm 1);
        Jmp (Addr 0x1004);
        Halt;
      |]
  in
  check_str "DOT output" golden_dot
    (Cfg.to_dot ~name:"golden" (Cfg.build prog))

(* ------------------------------------------------------------------ *)
(* Dataflow anchors                                                    *)
(* ------------------------------------------------------------------ *)

let test_liveness_straight_line () =
  (* r1 := 1; r0 := r1 (as a bin op reads r0 too); halt.  At entry of the
     program nothing but the consumed inputs may be live. *)
  let prog =
    Vm.Program.of_instrs ~base:0
      [| Mov (R1, Imm 1); Bin (Add, R0, Reg R1); Halt |]
  in
  let cfg = Cfg.build prog in
  let live = Df.liveness cfg in
  let entry_live = live.Df.d_out.(0) in
  (* r0 is read by the add before any write: live at entry. r1 is written
     first: dead at entry. *)
  check_bool "r0 live at entry" true
    (entry_live land (1 lsl reg_index R0) <> 0);
  check_bool "r1 dead at entry" true
    (entry_live land (1 lsl reg_index R1) = 0)

let test_max_stack_depth_balanced_call () =
  (* main pushes one word and calls a leaf that pushes another; calls are
     treated as stack-balanced (the return slot [Call] pushes is popped
     by the matching [Ret]), so the bound is the two explicit pushes —
     the callee frame counted through the call edge, the return slot
     not. *)
  let prog =
    Vm.Program.of_instrs ~base:0
      [|
        Push (Imm 1);
        (* 0x0: depth 4 *)
        Call (Addr 0x10);
        (* 0x4 *)
        Pop R0;
        (* 0x8 *)
        Halt;
        (* 0xc *)
        Push (Imm 2);
        (* 0x10: leaf, +4 through the call edge *)
        Pop R1;
        (* 0x14 *)
        Ret;
        (* 0x18 *)
      |]
  in
  let cfg = Cfg.build prog in
  check_int "stack bound" 8 (Df.max_stack_depth cfg)

(* ------------------------------------------------------------------ *)
(* Random MiniC soundness + pruning identity                           *)
(* ------------------------------------------------------------------ *)

(* Same program-recipe shape as the taint differential suite: one fixed
   skeleton whose knobs span clean runs, stack smashes, and exec-sink
   hijacks, so every generated source compiles. *)
type recipe = {
  cap : int;
  reps : int;
  stride : int;
  addk : int;
  use_words : bool;
  vuln : int; (* 0 = clean, 1 = stack smash, 2 = exec sink *)
  over : int;
  msg_len : int;
  msg_seed : int;
}

let source_of r =
  let words =
    if r.use_words then
      "int *p = (int*)buf; acc = acc + p[0] + p[1] + p[2];"
    else ""
  in
  let sink =
    match r.vuln with
    | 1 -> Printf.sprintf "vuln(buf, n + %d);" r.over
    | 2 -> Printf.sprintf "dst[%d] = 0; system(dst);" (r.cap - 1)
    | _ -> ""
  in
  Printf.sprintf
    {|
    char buf[%d];
    char dst[%d];
    int sink;
    void vuln(char *s, int n) {
      char local[16];
      int i = 0;
      while (s[i] != 0 && i < n) { local[i] = s[i]; i = i + 1; }
    }
    int main() {
      int n = _recv(buf, %d);
      int acc = 0;
      int r = 0;
      while (r < %d) {
        int i = 0;
        while (i + %d < %d) {
          acc = acc + buf[i];
          dst[i] = (char)(buf[i + %d] + %d);
          i = i + 1;
        }
        r = r + 1;
      }
      %s
      sink = acc;
      %s
      return 0;
    }
  |}
    r.cap r.cap r.cap r.reps r.stride r.cap r.stride r.addk words sink

let message_of r =
  String.init r.msg_len (fun i ->
      Char.chr (1 + (((r.msg_seed * 31) + (i * 7)) land 0x7F)))

let gen_recipe =
  QCheck.Gen.(
    oneofl [ 16; 64; 128 ] >>= fun cap ->
    int_range 1 4 >>= fun reps ->
    int_range 0 4 >>= fun stride ->
    int_range 0 60 >>= fun addk ->
    bool >>= fun use_words ->
    int_range 0 2 >>= fun vuln ->
    int_range 0 40 >>= fun over ->
    int_range 1 cap >>= fun msg_len ->
    int_range 0 9999 >>= fun msg_seed ->
    return
      { cap; reps; stride; addk; use_words; vuln; over; msg_len; msg_seed })

let print_recipe r =
  Printf.sprintf
    "cap=%d reps=%d stride=%d addk=%d words=%b vuln=%d over=%d len=%d seed=%d"
    r.cap r.reps r.stride r.addk r.use_words r.vuln r.over r.msg_len
    r.msg_seed

let load_and_poke app msg =
  let proc = Osim.Process.load ~aslr:true ~seed:17 app in
  ignore (Osim.Process.run proc);
  ignore (Osim.Process.send_message proc msg);
  proc

let summarize (res : Sweeper.Taint.result) =
  ( Sweeper.Taint.verdict_to_string res.Sweeper.Taint.t_verdict,
    Sweeper.Taint.verdict_msgs res.Sweeper.Taint.t_verdict,
    res.Sweeper.Taint.t_prop_pcs,
    res.Sweeper.Taint.t_instructions )

(* One compile, three identical processes (same image, same ASLR seed,
   same message): fully instrumented, fused-pruned, and per-pc-hook
   pruned. The first must stay inside [S]; all three must agree
   byte-for-byte. *)
let soundness_qcheck =
  QCheck.Test.make
    ~name:"dynamic taint within static S; pruned runs byte-identical"
    ~count:25
    (QCheck.make ~print:print_recipe gen_recipe)
    (fun r ->
      let app = Minic.Driver.compile_app ~name:"stprog" (source_of r) in
      let msg = message_of r in
      let base = Sweeper.Taint.run (load_and_poke app msg) in
      let proc_f = load_and_poke app msg in
      let sa = St.analyze proc_f.Osim.Process.cpu.Vm.Cpu.code in
      let fused = Sweeper.Taint.run ~static:sa proc_f in
      let proc_p = load_and_poke app msg in
      let sa_p = St.analyze proc_p.Osim.Process.cpu.Vm.Cpu.code in
      let pruned = Sweeper.Taint.run_pruned ~static:sa_p proc_p in
      List.for_all (St.may_propagate sa) base.Sweeper.Taint.t_prop_pcs
      && summarize base = summarize fused
      && summarize base = summarize pruned)

(* S must also contain the propagation pcs of the four real exploit
   replays, and K must cut the hook set by a substantial margin. *)
let test_registry_soundness key () =
  let entry = Apps.Registry.find key in
  let prime () =
    let proc = Osim.Process.load ~aslr:true ~seed:13 (entry.r_compile ()) in
    ignore (Osim.Process.run proc);
    let exploit =
      Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 key
    in
    List.iter
      (fun m -> ignore (Osim.Process.send_message proc m))
      exploit.Apps.Exploits.x_messages;
    proc
  in
  let base = Sweeper.Taint.run (prime ()) in
  let proc = prime () in
  let sa = St.analyze proc.Osim.Process.cpu.Vm.Cpu.code in
  check_bool "dynamic props inside S" true
    (List.for_all (St.may_propagate sa) base.Sweeper.Taint.t_prop_pcs);
  let pruned = Sweeper.Taint.run_pruned ~static:sa proc in
  check_bool "pruned replay identical" true (summarize base = summarize pruned);
  check_bool
    (Printf.sprintf "hook reduction >= 30%% (got %.1f%%)"
       (100. *. St.reduction sa))
    true
    (St.reduction sa >= 0.30)

(* ------------------------------------------------------------------ *)
(* Interval abstract interpretation                                    *)
(* ------------------------------------------------------------------ *)

module Ab = Static_an.Absint

(* Degenerate segments: the fixpoint analyses must cope with an empty
   block list, a one-instruction segment, and a segment whose only
   control flow goes through the unknown-target sink. *)
let degenerate_layout = Vm.Layout.create ~aslr:false ()

let test_degenerate_empty_segment () =
  let prog =
    Vm.Program.of_segments [ Vm.Program.make_segment ~base:0x1000 [||] ]
  in
  let sa = St.analyze prog in
  check_int "staint: nothing propagates" 0 (St.prop_count sa);
  check_int "staint: nothing to hook" 0 (St.hook_count sa);
  let ai = Ab.analyze ~layout:degenerate_layout prog in
  check_int "absint: no instructions" 0 (Ab.instructions ai);
  check_int "absint: no accesses" 0 (Ab.accesses ai);
  check_bool "absint: pct defined on empty" true (Ab.proven_pct ai = 0.)

let test_degenerate_single_instruction () =
  let prog = Vm.Program.of_instrs ~base:0x1000 [| Halt |] in
  let cfg = Cfg.build prog in
  check_int "one block" 1 (Array.length (Cfg.blocks cfg));
  let sa = St.analyze prog in
  check_int "staint: nothing propagates" 0 (St.prop_count sa);
  let ai = Ab.analyze ~layout:degenerate_layout prog in
  check_int "absint: one instruction" 1 (Ab.instructions ai);
  check_int "absint: no accesses" 0 (Ab.accesses ai);
  check_bool "absint: not an access pc" true (Ab.classify ai 0x1000 = None)

let test_degenerate_unknown_sink_only () =
  (* The segment's only control transfer resolves to nothing: the store
     behind the indirect call is reachable only through the sink, so no
     access may be proven and nothing crashes. *)
  let prog =
    Vm.Program.of_instrs ~base:0x1000 [| CallInd R0; Store (R1, 0, R2); Halt |]
  in
  let sa = St.analyze prog in
  check_bool "staint: analysis completes" true (St.total sa > 0);
  let ai = Ab.analyze ~layout:degenerate_layout prog in
  check_int "absint: one access" 1 (Ab.accesses ai);
  check_int "absint: nothing proven through the sink" 0 (Ab.proven ai);
  check_bool "absint: no elidable range" true (Ab.safe_range ai 0x1004 = None)

(* The soundness contract, tested end to end: on clean runs (the only
   ones that follow the CFG) every dynamically observed register value
   must lie inside the static interval at its pc, and every effective
   address of a proven access must lie inside its proven range. A global
   pre-hook forces the instrumented path, whose pre-commit state is
   exactly the in-state the analysis speaks about. *)
let containment_qcheck =
  QCheck.Test.make
    ~name:"dynamic registers and addresses within static intervals"
    ~count:15
    (QCheck.make ~print:print_recipe gen_recipe)
    (fun r ->
      let r = { r with vuln = 0 } in
      let app = Minic.Driver.compile_app ~name:"aiprog" (source_of r) in
      let proc = Osim.Process.load ~aslr:true ~seed:17 app in
      let ai = proc.Osim.Process.absint in
      let cpu = proc.Osim.Process.cpu in
      let ok = ref true in
      let nregs = Array.length cpu.Vm.Cpu.regs in
      let witness (e : Vm.Event.effect_) =
        let pc = e.Vm.Event.e_pc in
        for reg = 0 to nregs - 1 do
          match Ab.interval_at ai ~pc ~reg with
          | Some iv ->
            let v = cpu.Vm.Cpu.regs.(reg) in
            if not (iv.Ab.lo <= v && v <= iv.Ab.hi) then ok := false
          | None -> ok := false (* dynamically reached, statically dead *)
        done;
        match Ab.classify ai pc with
        | Some (Ab.Proven (lo, hi)) ->
          List.iter
            (fun (a : Vm.Event.access) ->
              if not (lo <= a.Vm.Event.a_addr && a.Vm.Event.a_addr < hi) then
                ok := false)
            (e.Vm.Event.e_mem_reads @ e.Vm.Event.e_mem_writes)
        | _ -> ()
      in
      let id = Vm.Cpu.add_pre_hook cpu witness in
      ignore (Osim.Process.run proc);
      ignore (Osim.Process.send_message proc (message_of r));
      Vm.Cpu.remove_hook cpu id;
      !ok)

(* Elision must be invisible on every recipe — including the smashing and
   hijacking ones, where only the tripwire keeps the facts honest. The
   default load elides proven accesses; the control run reinstalls the
   block tier with no [safe_of], i.e. every guard in place. *)
let elision_differential_qcheck =
  QCheck.Test.make
    ~name:"bounds-check elision invisible across clean and hijack runs"
    ~count:15
    (QCheck.make ~print:print_recipe gen_recipe)
    (fun r ->
      let app = Minic.Driver.compile_app ~name:"elprog" (source_of r) in
      let msg = message_of r in
      let run_one ~elide =
        let proc = Osim.Process.load ~aslr:true ~seed:17 app in
        let cpu = proc.Osim.Process.cpu in
        if not elide then
          Vm.Block_compile.install cpu
            (Cfg.block_bounds (Cfg.build cpu.Vm.Cpu.code));
        ignore (Osim.Process.run proc);
        ignore (Osim.Process.send_message proc msg);
        ( proc.Osim.Process.compromised,
          Osim.Process.committed_outputs proc,
          cpu.Vm.Cpu.icount )
      in
      run_one ~elide:true = run_one ~elide:false)

(* The elision tripwire, deterministically: a store proven safe for
   CFG-following runs is installed with a deliberately wrong proven
   range — the state a hijack could smuggle past a CFG-only fact. The
   residual check must trip exactly once, demote the block, and let the
   fully guarded tier commit the store, leaving behavior byte-identical
   to a run with no elision at all. *)
let elision_app () =
  let items =
    [
      Vm.Asm.Label "main";
      Vm.Asm.Ins (Bin (Sub, SP, Imm 16));
      Vm.Asm.Ins (Mov (R1, Imm 0xAB));
      Vm.Asm.Label "thestore";
      Vm.Asm.Ins (Store (SP, 0, R1));
      Vm.Asm.Ins (Load (R2, SP, 0));
      Vm.Asm.Ins (Bin (Add, SP, Imm 16));
      Vm.Asm.Ins Ret;
    ]
  in
  {
    Minic.Codegen.unit_ = Vm.Asm.make_unit "elision" items;
    data = [];
    funcs = [ "main" ];
  }

let test_elision_tripwire () =
  let app = elision_app () in
  let proc = Osim.Process.load ~aslr:false ~seed:5 app in
  let cpu = proc.Osim.Process.cpu in
  let ai = proc.Osim.Process.absint in
  let store_pc = Vm.Asm.symbol proc.Osim.Process.app_image "thestore" in
  check_bool "the store is proven safe" true (Ab.proven_safe ai store_pc);
  Vm.Block_compile.install
    ~safe_of:(fun pc ->
      if pc = store_pc then Some (0x10, 0x20) else Ab.safe_range ai pc)
    cpu
    (Cfg.block_bounds (Cfg.build cpu.Vm.Cpu.code));
  ignore (Osim.Process.run proc);
  check_int "exactly one trip" 1 cpu.Vm.Cpu.elision_trips;
  check_bool "halted normally" true cpu.Vm.Cpu.halted;
  check_int "store committed via the guarded tier" 0xAB
    (Vm.Cpu.get_reg cpu Vm.Isa.R2);
  let proc2 = Osim.Process.load ~aslr:false ~seed:5 app in
  let cpu2 = proc2.Osim.Process.cpu in
  Vm.Block_compile.install cpu2 (Cfg.block_bounds (Cfg.build cpu2.Vm.Cpu.code));
  ignore (Osim.Process.run proc2);
  check_int "same icount as the unelided run" cpu2.Vm.Cpu.icount
    cpu.Vm.Cpu.icount;
  check_int "no trips without elision" 0 cpu2.Vm.Cpu.elision_trips

(* ------------------------------------------------------------------ *)
(* The return tripwire                                                 *)
(* ------------------------------------------------------------------ *)

(* A hand-built program whose only interesting control transfer is a
   [Ret] through a forged return address into plain straight-line code:

     main:    sub sp, 64            ; stack buffer
              recv(sp, 64)          ; taints the buffer
              ldb r2, [sp+0]        ; r2 := tainted byte   (in K)
              mov r3, $landing
              push r3
              ret                   ; lands at landing — NOT a return site
     landing: mov r4, r2            ; propagates taint — statically
              add sp, 64            ;   unreachable, so outside S and K
              ret                   ; back to _start

   Statically, taint never reaches [landing] (a [Ret] only flows to
   return sites), so its pcs are outside [K] and a pruned replay would
   skip the r2→r4 propagation — unless the tripwire notices the landing
   pc and restores full instrumentation. The assertions below both
   require byte-identity and positively confirm the trip happened: the
   landing pc shows up in the dynamic propagation set while being
   outside [S]. *)
let tripwire_app () =
  let items =
    [
      Vm.Asm.Label "main";
      Vm.Asm.Ins (Bin (Sub, SP, Imm 64));
      Vm.Asm.Ins (Mov (R0, Reg SP));
      Vm.Asm.Ins (Mov (R1, Imm 64));
      Vm.Asm.Ins (Syscall Vm.Sysno.sys_recv);
      Vm.Asm.Ins (Loadb (R2, SP, 0));
      Vm.Asm.Ins (Mov (R3, Sym "landing"));
      Vm.Asm.Ins (Push (Reg R3));
      Vm.Asm.Ins Ret;
      Vm.Asm.Label "landing";
      Vm.Asm.Ins (Mov (R4, Reg R2));
      Vm.Asm.Ins (Bin (Add, SP, Imm 64));
      Vm.Asm.Ins Ret;
    ]
  in
  {
    Minic.Codegen.unit_ = Vm.Asm.make_unit "tripwire" items;
    data = [];
    funcs = [ "main" ];
  }

let test_ret_tripwire () =
  let app = tripwire_app () in
  let msg = "ABCD" in
  let base = Sweeper.Taint.run (load_and_poke app msg) in
  let proc_f = load_and_poke app msg in
  let landing = Vm.Asm.symbol proc_f.Osim.Process.app_image "landing" in
  let sa = St.analyze proc_f.Osim.Process.cpu.Vm.Cpu.code in
  check_bool "landing is not a return site" false (St.is_return_site sa landing);
  check_bool "landing outside S" false (St.may_propagate sa landing);
  check_bool "landing propagated dynamically" true
    (List.mem landing base.Sweeper.Taint.t_prop_pcs);
  let fused = Sweeper.Taint.run ~static:sa proc_f in
  check_bool "fused-pruned identical despite the hijack" true
    (summarize base = summarize fused);
  let proc_p = load_and_poke app msg in
  let sa_p = St.analyze proc_p.Osim.Process.cpu.Vm.Cpu.code in
  let pruned = Sweeper.Taint.run_pruned ~static:sa_p proc_p in
  check_bool "hook-pruned identical despite the hijack" true
    (summarize base = summarize pruned)

(* ------------------------------------------------------------------ *)
(* Whole-pipeline identity and antibody validation                     *)
(* ------------------------------------------------------------------ *)

let crash_server ?(benign = 10) ?(seed = 42) key =
  let entry = Apps.Registry.find key in
  let proc = Osim.Process.load ~aslr:true ~seed (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload key benign);
  let exploit = Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 key in
  let fault = ref None in
  List.iter
    (fun m ->
      match Osim.Server.handle server m with
      | `Crashed (_, f) -> fault := Some f
      | _ -> ())
    exploit.Apps.Exploits.x_messages;
  match !fault with
  | Some f -> (proc, server, f)
  | None -> Alcotest.fail (key ^ ": exploit did not crash")

let no_static_stages =
  List.filter (fun s -> s != O.static_stage) O.default_stages

let test_pipeline_table2_identical key () =
  let proc_a, server_a, fault_a = crash_server key in
  let r_a = O.handle_attack ~app:key server_a fault_a in
  let proc_b, server_b, fault_b = crash_server key in
  let r_b = O.handle_attack ~stages:no_static_stages ~app:key server_b fault_b in
  check_str "Table 2 byte-identical with and without the prefilter"
    (Sweeper.Report.table2_to_string proc_b r_b)
    (Sweeper.Report.table2_to_string proc_a r_a);
  check_bool "same taint propagation pcs" true
    (r_a.O.a_taint.Sweeper.Taint.t_prop_pcs
    = r_b.O.a_taint.Sweeper.Taint.t_prop_pcs)

let test_antibody_validates_statically () =
  let proc, server, fault = crash_server "apache1" in
  let r = O.handle_attack ~app:"apache1" server fault in
  let sa = St.analyze proc.Osim.Process.cpu.Vm.Cpu.code in
  check_bool "taint-filter pcs all inside S" true
    (Sweeper.Antibody.validate_static proc sa r.O.a_antibody = [])

(* The interval bar on antibody verification: a legitimately analyzed
   bundle's overflow checks sit at statically feasible unsafe writes and
   pass; a fabricated Store_guard at a proven-safe store — a pc no
   honest analysis can emit — is rejected, through [validate_feasible]
   directly and through the [?absint] path of [validate_static]. *)
let test_validate_feasible_accept_reject () =
  let proc, server, fault = crash_server "apache1" in
  let r = O.handle_attack ~app:"apache1" server fault in
  let ai = proc.Osim.Process.absint in
  let sa = St.analyze proc.Osim.Process.cpu.Vm.Cpu.code in
  check_bool "legitimate bundle clears the interval bar" true
    (Sweeper.Antibody.validate_static ~absint:ai proc sa r.O.a_antibody = []);
  let safe_pc = ref None in
  Static_an.Absint.iter_accesses ai (fun pc cls ->
      match (cls, !safe_pc) with
      | Static_an.Absint.Proven _, None -> safe_pc := Some pc
      | _ -> ());
  let safe_pc =
    match !safe_pc with
    | Some pc -> pc
    | None -> Alcotest.fail "no proven-safe access in apache1"
  in
  let fake =
    {
      r.O.a_antibody with
      Sweeper.Antibody.ab_vsefs =
        [
          {
            Sweeper.Vsef.v_name = "fabricated-store-guard";
            v_app = "apache1";
            v_check =
              Sweeper.Vsef.Store_guard
                { store = Sweeper.Vsef.loc_of_pc proc safe_pc };
            v_origin = Sweeper.Vsef.From_membug;
          };
        ];
    }
  in
  (match Sweeper.Antibody.validate_feasible proc ai fake with
  | [ (name, _) ] -> check_str "names the fabricated vsef"
                       "fabricated-store-guard" name
  | _ -> Alcotest.fail "expected exactly one feasibility violation");
  check_bool "validate_static rejects it too" true
    (Sweeper.Antibody.validate_static ~absint:ai proc sa fake <> [])

(* ------------------------------------------------------------------ *)
(* The MiniC overflow linter                                           *)
(* ------------------------------------------------------------------ *)

let lint src = Minic.Driver.lint ~name:"lint-test" src

let rules lints = List.map (fun l -> l.Minic.Sema.l_rule) lints

let test_lint_const_oob () =
  let ls = lint "int a[4]; int main() { a[5] = 1; return a[3]; }" in
  check_bool "a[5] flagged" true
    (rules ls = [ Minic.Sema.lint_rule_proven ]);
  check_int "in-bounds access clean" 0
    (List.length (lint "int a[4]; int main() { a[3] = 1; return a[0]; }"))

let test_lint_unbounded_copy () =
  let unbounded =
    {|
    char dst[16];
    int main(char *s) {
      int i = 0;
      while (s[i] != 0) { dst[i] = s[i]; i = i + 1; }
      return 0;
    }
  |}
  in
  check_bool "unbounded copy flagged" true
    (rules (lint unbounded) = [ Minic.Sema.lint_rule_possible ])

let test_lint_bounded_copy_clean () =
  let bounded =
    {|
    char dst[16];
    int main(char *s) {
      int i = 0;
      while (s[i] != 0 && i < 15) { dst[i] = s[i]; i = i + 1; }
      return 0;
    }
  |}
  in
  check_int "bounded copy clean" 0 (List.length (lint bounded))

let test_lint_bound_exceeds_buffer () =
  let off_by_lots =
    {|
    char dst[16];
    int main(char *s) {
      int i = 0;
      while (s[i] != 0 && i < 64) { dst[i] = s[i]; i = i + 1; }
      return 0;
    }
  |}
  in
  check_bool "constant bound past the buffer still flagged" true
    (rules (lint off_by_lots) = [ Minic.Sema.lint_rule_possible ])

let test_lint_constant_stores_clean () =
  (* itoa-style digit loop: the stored value derives from arithmetic, not
     from memory — not a copy, not flagged. *)
  let digits =
    {|
    char dst[16];
    int main(int v) {
      int i = 0;
      while (v > 0) { dst[i] = (char)(48 + v % 10); v = v / 10; i = i + 1; }
      return i;
    }
  |}
  in
  check_int "digit loop clean" 0 (List.length (lint digits))

let test_lint_werror () =
  let src = "int a[4]; int main() { a[9] = 1; return 0; }" in
  check_bool "werror raises" true
    (match Minic.Driver.compile ~name:"w" ~werror:true src with
    | exception Minic.Driver.Compile_error msg ->
      let has s sub =
        let ns = String.length s and nb = String.length sub in
        let rec go i =
          i + nb <= ns && (String.sub s i nb = sub || go (i + 1))
        in
        go 0
      in
      has msg "-Werror"
    | _ -> false);
  check_bool "compiles without werror" true
    (match Minic.Driver.compile ~name:"w" src with
    | _ -> true
    | exception _ -> false)

(* Cross-check: the set of registry apps the linter flags must equal the
   set where the dynamic membug detector attributes an overflow-class
   finding (stack smash / heap overflow) to a store {e in the app image}.
   Library-side overflows (squid's strcat) are out of the linter's scope
   by design: the app sources it sees contain no overflowing store. *)
let test_lint_matches_dynamic_overflows () =
  let lint_flagged =
    List.filter_map
      (fun (e : Apps.Registry.entry) ->
        match Minic.Driver.lint ~name:e.r_key e.r_source with
        | [] -> None
        | _ -> Some e.r_key)
      Apps.Registry.all
  in
  let dynamic_flagged =
    List.filter_map
      (fun (e : Apps.Registry.entry) ->
        let proc, server, fault = crash_server e.r_key in
        let r = O.handle_attack ~app:e.r_key server fault in
        let app_overflow =
          List.exists
            (fun f ->
              match f with
              | Sweeper.Membug.Stack_smash { store_pc; _ }
              | Sweeper.Membug.Heap_overflow { store_pc; _ } ->
                (Sweeper.Vsef.loc_of_pc proc store_pc).Sweeper.Vsef.l_seg
                = `App
              | Sweeper.Membug.Double_free _
              | Sweeper.Membug.Dangling_write _ ->
                false)
            r.O.a_membug.Sweeper.Membug.m_findings
        in
        if app_overflow then Some e.r_key else None)
      Apps.Registry.all
  in
  check_bool
    (Printf.sprintf "lint {%s} == dynamic app-image overflows {%s}"
       (String.concat "," lint_flagged)
       (String.concat "," dynamic_flagged))
    true
    (lint_flagged = dynamic_flagged);
  check_bool "the set is exactly {apache1}" true
    (lint_flagged = [ "apache1" ])

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) in
  Alcotest.run "static-an"
    [
      ( "cfg",
        [
          Alcotest.test_case "empty segment" `Quick test_cfg_empty_segment;
          Alcotest.test_case "single-block loop" `Quick
            test_cfg_single_block_loop;
          Alcotest.test_case "indirect call with no static targets" `Quick
            test_cfg_indirect_call_no_targets;
          Alcotest.test_case "fallthrough into segment end" `Quick
            test_cfg_fallthrough_into_segment_end;
          Alcotest.test_case "DOT golden" `Quick test_cfg_dot_golden;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "liveness at entry" `Quick
            test_liveness_straight_line;
          Alcotest.test_case "stack depth of a balanced call" `Quick
            test_max_stack_depth_balanced_call;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "empty segment" `Quick
            test_degenerate_empty_segment;
          Alcotest.test_case "single-instruction segment" `Quick
            test_degenerate_single_instruction;
          Alcotest.test_case "unknown-sink-only segment" `Quick
            test_degenerate_unknown_sink_only;
        ] );
      ( "absint",
        [
          qt containment_qcheck;
          qt elision_differential_qcheck;
          Alcotest.test_case "elision tripwire demotes the block" `Quick
            test_elision_tripwire;
        ] );
      ( "soundness",
        [
          qt soundness_qcheck;
          Alcotest.test_case "apache1 exploit replay" `Quick
            (test_registry_soundness "apache1");
          Alcotest.test_case "squid exploit replay" `Quick
            (test_registry_soundness "squid");
          Alcotest.test_case "return tripwire restores instrumentation" `Quick
            test_ret_tripwire;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "Table 2 identical with prefilter (apache1)"
            `Quick
            (test_pipeline_table2_identical "apache1");
          Alcotest.test_case "Table 2 identical with prefilter (cvs)" `Quick
            (test_pipeline_table2_identical "cvs");
          Alcotest.test_case "antibody validates against S" `Quick
            test_antibody_validates_statically;
          Alcotest.test_case "interval bar accepts real, rejects fabricated"
            `Quick test_validate_feasible_accept_reject;
        ] );
      ( "lint",
        [
          Alcotest.test_case "constant OOB index" `Quick test_lint_const_oob;
          Alcotest.test_case "unbounded copy loop" `Quick
            test_lint_unbounded_copy;
          Alcotest.test_case "bounded copy is clean" `Quick
            test_lint_bounded_copy_clean;
          Alcotest.test_case "bound past the buffer" `Quick
            test_lint_bound_exceeds_buffer;
          Alcotest.test_case "constant stores are clean" `Quick
            test_lint_constant_stores_clean;
          Alcotest.test_case "-Werror promotion" `Quick test_lint_werror;
          Alcotest.test_case "lint set == dynamic app-image overflow set"
            `Quick test_lint_matches_dynamic_overflows;
        ] );
    ]
