(* Tests for the cooperative scheduler: interleaving N hosts must be
   observationally identical to running them sequentially — same committed
   outputs, same instruction counts, same checkpoint schedule — including
   when one host is attacked mid-stream while the others serve benign
   traffic. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let compiled = lazy ((Apps.Registry.find "apache1").r_compile ())

let boot seed =
  let proc = Osim.Process.load ~aslr:true ~seed (Lazy.force compiled) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  (proc, server)

let workload n = Apps.Registry.workload "apache1" n

(* Everything observable about a host after its stream was served. *)
type obs = {
  o_outputs : (int * string) list;
  o_served : int;
  o_icount : int;
  o_cursor : int;
  o_checkpoints : int;
  o_latest_ck : int;  (** icount of the newest ring checkpoint *)
}

let observe (proc : Osim.Process.t) (server : Osim.Server.t) ~served =
  {
    o_outputs = Osim.Process.committed_outputs proc;
    o_served = served;
    o_icount = proc.Osim.Process.cpu.Vm.Cpu.icount;
    o_cursor = Osim.Netlog.cursor proc.Osim.Process.net;
    o_checkpoints = Osim.Server.checkpoints_taken server;
    o_latest_ck =
      (match Osim.Checkpoint.latest server.Osim.Server.ring with
      | Some ck -> ck.Osim.Checkpoint.ck_icount
      | None -> -1);
  }

(* One server per stream, each stream served to completion in turn. *)
let run_sequential streams =
  List.mapi
    (fun i msgs ->
      let proc, server = boot (1000 + i) in
      let served = ref 0 in
      List.iter
        (fun m ->
          match Osim.Server.handle server m with
          | `Served _ -> incr served
          | _ -> Alcotest.failf "sequential host %d: message not served" i)
        msgs;
      observe proc server ~served:!served)
    streams

(* Same servers, same streams, interleaved on the scheduler. *)
let run_interleaved ?quantum streams =
  let sched = Osim.Sched.create ?quantum () in
  let hosts =
    List.mapi
      (fun i msgs ->
        let proc, server = boot (1000 + i) in
        let task = Osim.Sched.add sched server in
        List.iter (Osim.Sched.post sched task) msgs;
        (proc, server, task))
      streams
  in
  Osim.Sched.run sched ~handler:(fun task ev ->
      match ev with
      | Osim.Sched.Served _ -> ()
      | Osim.Sched.Crashed _ ->
        Alcotest.failf "host %d crashed on benign traffic" task.Osim.Sched.sk_id
      | _ -> Alcotest.failf "host %d: unexpected event" task.Osim.Sched.sk_id);
  List.map
    (fun (proc, server, task) ->
      observe proc server ~served:task.Osim.Sched.sk_served)
    hosts

let streams4 = [ workload 3; workload 5; workload 2; workload 4 ]

let test_interleaved_matches_sequential () =
  let seq = run_sequential streams4 in
  let inter = run_interleaved ~quantum:500 streams4 in
  List.iteri
    (fun i (a, b) ->
      check_int (Printf.sprintf "host %d served" i) a.o_served b.o_served;
      check_int (Printf.sprintf "host %d icount" i) a.o_icount b.o_icount;
      check_int (Printf.sprintf "host %d cursor" i) a.o_cursor b.o_cursor;
      check_int
        (Printf.sprintf "host %d checkpoints" i)
        a.o_checkpoints b.o_checkpoints;
      check_int
        (Printf.sprintf "host %d latest ck icount" i)
        a.o_latest_ck b.o_latest_ck;
      check_bool (Printf.sprintf "host %d outputs" i) true
        (a.o_outputs = b.o_outputs))
    (List.combine seq inter)

let test_quantum_invariance () =
  (* Slicing the same work into different quanta cannot change anything:
     tiny slices, odd slices, and one slice per stream all agree. *)
  let a = run_interleaved ~quantum:137 streams4 in
  let b = run_interleaved ~quantum:2_000 streams4 in
  let c = run_interleaved ~quantum:10_000_000 streams4 in
  check_bool "137 = 2000" true (a = b);
  check_bool "2000 = whole-stream" true (b = c)

let test_virtual_clock_advances () =
  let sched = Osim.Sched.create ~quantum:500 () in
  let _, server = boot 77 in
  let task = Osim.Sched.add sched server in
  List.iter (Osim.Sched.post sched task) (workload 4);
  Osim.Sched.run sched;
  check_bool "instructions counted" true (Osim.Sched.instructions sched > 0);
  check_bool "took several turns" true (Osim.Sched.steps sched > 1);
  check_bool "virtual clock moved" true (Osim.Sched.vclock_ms sched > 0.);
  check_bool "task clock matches global" true
    (Osim.Sched.vtime_ms task <= Osim.Sched.vclock_ms sched +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Mid-stream attack: one host is exploited while the others serve     *)
(* benign traffic; the scheduled community must end in the same state  *)
(* as delivering every stream sequentially.                            *)
(* ------------------------------------------------------------------ *)

let benign = workload 3

let attack_stream =
  benign
  @ (Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 "apache1")
      .Apps.Exploits.x_messages
  @ workload 2

let traffic (h : Sweeper.Defense.host) =
  if h.Sweeper.Defense.h_id = 0 then attack_stream else benign

let make_community () =
  let entry = Apps.Registry.find "apache1" in
  Sweeper.Defense.create ~app:"apache1" ~compile:entry.r_compile ~n:3
    ~producers:1 ~seed:8100 ()

let host_outputs (c : Sweeper.Defense.t) =
  List.map
    (fun (h : Sweeper.Defense.host) ->
      Osim.Process.committed_outputs h.Sweeper.Defense.h_proc)
    c.Sweeper.Defense.hosts

let test_mid_stream_attack_matches_sequential () =
  let open Sweeper.Defense in
  let seq = make_community () in
  List.iter
    (fun h -> List.iter (fun m -> ignore (deliver seq h m)) (traffic h))
    seq.hosts;
  let sch = make_community () in
  ignore (run_scheduled ~quantum:700 sch ~traffic);
  check_int "nobody infected (sequential)" 0 (infected_count seq);
  check_int "nobody infected (scheduled)" 0 (infected_count sch);
  check_bool "identical per-host outputs" true
    (host_outputs seq = host_outputs sch);
  check_int "same attempts" seq.stats.s_attempts sch.stats.s_attempts;
  check_int "same crashes" seq.stats.s_crashes sch.stats.s_crashes;
  check_int "same analyses" seq.stats.s_analyses sch.stats.s_analyses;
  check_int "same blocked" seq.stats.s_blocked sch.stats.s_blocked;
  check_int "same infections" seq.stats.s_infections sch.stats.s_infections;
  (match (seq.antibody, sch.antibody) with
  | Some (g1, a1), Some (g2, a2) ->
    check_int "same antibody generation" g1 g2;
    check_bool "same signature" true
      (a1.Sweeper.Antibody.ab_signature = a2.Sweeper.Antibody.ab_signature);
    check_int "same vsef count"
      (List.length a1.Sweeper.Antibody.ab_vsefs)
      (List.length a2.Sweeper.Antibody.ab_vsefs)
  | _ -> Alcotest.fail "both runs must publish an antibody");
  check_bool "scheduled community still serves" true (all_alive sch)

(* ------------------------------------------------------------------ *)

let prop_interleaving_is_invisible =
  QCheck.Test.make ~count:6
    ~name:"random quanta and stream lengths match sequential runs"
    QCheck.(triple (int_range 60 5_000) (int_range 1 5) (int_range 1 5))
    (fun (quantum, n1, n2) ->
      let streams = [ workload n1; workload n2 ] in
      run_interleaved ~quantum streams = run_sequential streams)

(* ------------------------------------------------------------------ *)
(* Domain-sharded community: running the same shard partition on N     *)
(* domains must be bit-identical to running it on one — outputs,       *)
(* icounts, the infection/crash event log, and the first-antibody      *)
(* virtual time. This is the differential oracle for Osim.Cluster.     *)
(* ------------------------------------------------------------------ *)

module Sh = Sweeper.Defense.Sharded

(* Attack bytes as a pure function of (seed, host, round): both runs of
   an oracle pair see byte-identical traffic regardless of sharding. *)
let attack_for ~seed ~round (h : Sweeper.Defense.host) =
  let rng =
    Random.State.make [| seed; 0xA77AC4; h.Sweeper.Defense.h_id; round |]
  in
  let guess = 0x4f770000 + (Random.State.int rng 4096 * 4096) + 0x15a0 in
  (Apps.Exploits.apache1_against ~system_guess:guess ~reqbuf_addr:0x08100000 ())
    .Apps.Exploits.x_messages

let run_sharded ?outbox_limit ?mailbox_limit ~domains ~shards ~topology ~n
    ~producers ~seed ~rounds () =
  let entry = Apps.Registry.find "apache1" in
  let c =
    Sh.create ?outbox_limit ?mailbox_limit ~domains ~shards ~topology
      ~app:"apache1" ~compile:entry.r_compile ~n ~producers ~seed ()
  in
  for round = 1 to rounds do
    (* Round 1 is a mid-stream attack: benign, exploit, benign. *)
    Sh.post_traffic c ~traffic:(fun h ->
        if round = 1 then workload 2 @ attack_for ~seed ~round h @ workload 1
        else attack_for ~seed ~round h);
    ignore (Sh.run_round c)
  done;
  Sh.summary c

(* Everything except the domain count itself must agree. *)
let oracle_agrees a b = { a with Sh.sm_domains = 0 } = { b with Sh.sm_domains = 0 }

let test_sharded_matches_single_domain () =
  let go domains =
    run_sharded ~domains ~shards:2 ~topology:Osim.Cluster.Uniform ~n:6
      ~producers:1 ~seed:4242 ~rounds:2 ()
  in
  let one = go 1 and two = go 2 in
  check_int "same windows" one.Sh.sm_windows two.Sh.sm_windows;
  check_int "same attempts" one.Sh.sm_attempts two.Sh.sm_attempts;
  check_bool "attack did something" true
    (one.Sh.sm_crashes + one.Sh.sm_blocked + one.Sh.sm_infections > 0);
  check_bool "antibody published" true
    (one.Sh.sm_first_antibody_vtime_ms <> None);
  check_bool "cross-shard mail flowed" true (one.Sh.sm_exchanged > 0);
  check_bool "sharded(2) = sharded(1)" true (oracle_agrees one two)

let prop_sharded_oracle =
  QCheck.Test.make ~count:4
    ~name:"sharded(N domains) = single domain over random topologies"
    QCheck.(triple (int_range 4 7) (int_range 0 2) (int_range 0 1_000_000))
    (fun (n, topo_idx, seed) ->
      let topology =
        match topo_idx with
        | 0 -> Osim.Cluster.Uniform
        | 1 -> Osim.Cluster.Subnet 2
        | _ -> Osim.Cluster.Overlay 3
      in
      let go domains =
        run_sharded ~domains ~shards:2 ~topology ~n ~producers:1 ~seed
          ~rounds:2 ()
      in
      oracle_agrees (go 1) (go 2))

(* Mailbox overflow and outbox backpressure: with the tightest possible
   bounds the run still completes, nothing is dropped (every posted
   message is eventually attempted), and the oracle still holds — bounds
   only reshape scheduling pauses, never results. *)
let test_backpressure_and_mailbox_bounds () =
  let go domains =
    run_sharded ~outbox_limit:1 ~mailbox_limit:1 ~domains ~shards:2
      ~topology:Osim.Cluster.Uniform ~n:6 ~producers:1 ~seed:9001 ~rounds:2 ()
  in
  let tight = go 1 in
  check_bool "outbox bound hit" true (tight.Sh.sm_backpressures > 0);
  check_bool "every message attempted" true (tight.Sh.sm_attempts > 0);
  check_bool "run reached quiescence with bounds" true (tight.Sh.sm_windows > 0);
  check_bool "oracle holds under tight bounds" true (oracle_agrees tight (go 2))

(* The supply-chain surface: a malicious producer broadcasts a
   fabricated antibody whose Store_guard points at a statically
   proven-safe store — no CFG-following execution can overflow there, so
   every shard's publication validation must reject it (the
   static-infeasible bar), counted and logged per shard; a legitimately
   analyzed bundle from real attack traffic must still be adopted. *)
let test_malicious_antibody_round () =
  let entry = Apps.Registry.find "apache1" in
  let c =
    Sh.create ~domains:1 ~shards:2 ~topology:Osim.Cluster.Uniform
      ~app:"apache1" ~compile:entry.r_compile ~n:6 ~producers:1 ~seed:4242 ()
  in
  (* Fabricate against a reference copy: pick the first proven-safe
     access, the one kind of pc an honest overflow analysis can never
     emit a store guard for. *)
  let proc = Osim.Process.load ~aslr:true ~seed:97 (entry.r_compile ()) in
  let ai = proc.Osim.Process.absint in
  let safe_pc = ref None in
  Static_an.Absint.iter_accesses ai (fun pc cls ->
      match (cls, !safe_pc) with
      | Static_an.Absint.Proven _, None -> safe_pc := Some pc
      | _ -> ());
  let safe_pc =
    match !safe_pc with
    | Some pc -> pc
    | None -> Alcotest.fail "no proven-safe access in apache1"
  in
  let fake =
    {
      Sweeper.Antibody.ab_app = "apache1";
      ab_stage = Sweeper.Antibody.Refined;
      ab_vsefs =
        [
          {
            Sweeper.Vsef.v_name = "fabricated-store-guard";
            v_app = "apache1";
            v_check =
              Sweeper.Vsef.Store_guard
                { store = Sweeper.Vsef.loc_of_pc proc safe_pc };
            v_origin = Sweeper.Vsef.From_membug;
          };
        ];
      ab_signature = None;
      ab_exploit_input = None;
    }
  in
  Sh.inject_antibody c fake;
  ignore (Sh.run_round c);
  let s = Sh.summary c in
  let rejections =
    List.filter (fun (_, _, kind) -> kind = "antibody-rejected") s.Sh.sm_events
  in
  check_int "rejected on every shard" 2 (List.length rejections);
  check_bool "no shard adopted the fabrication" true (s.Sh.sm_adoptions = []);
  check_bool "no antibody installed anywhere" true
    (s.Sh.sm_first_antibody_vtime_ms = None);
  let infeasible =
    List.find_map
      (fun (m : Obs.Metrics.sample) ->
        if
          m.Obs.Metrics.s_name = "sweeper_antibody_rejected_total"
          && m.Obs.Metrics.s_labels = [ ("reason", "static-infeasible") ]
        then
          match m.Obs.Metrics.s_value with
          | Obs.Metrics.Sample_counter n -> Some n
          | _ -> None
        else None)
      (Sh.merged_metrics c)
  in
  check_bool "static-infeasible counter = one per shard" true
    (infeasible = Some 2);
  (* A real attack round on the same community must still mint and adopt
     a legitimate antibody — the rejection bar is not a denial of
     service. *)
  Sh.post_traffic c ~traffic:(fun h ->
      workload 2 @ attack_for ~seed:4242 ~round:1 h @ workload 1);
  ignore (Sh.run_round c);
  let s2 = Sh.summary c in
  check_bool "legitimate antibody published" true
    (s2.Sh.sm_first_antibody_vtime_ms <> None);
  check_bool "another shard adopted it" true (s2.Sh.sm_adoptions <> [])

(* Deterministic qcheck runs by default; QCHECK_SEED overrides. *)
let qcheck_rand () =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 0x5EED)
    | None -> 0x5EED
  in
  Random.State.make [| seed |]

let () =
  let qt = QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) in
  Alcotest.run "sched"
    [
      ( "equivalence",
        [
          Alcotest.test_case "interleaved = sequential" `Quick
            test_interleaved_matches_sequential;
          Alcotest.test_case "quantum invariance" `Quick test_quantum_invariance;
          Alcotest.test_case "virtual clock" `Quick test_virtual_clock_advances;
          qt prop_interleaving_is_invisible;
        ] );
      ( "attack",
        [
          Alcotest.test_case "mid-stream attack matches sequential" `Quick
            test_mid_stream_attack_matches_sequential;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "sharded(2 domains) = single domain" `Quick
            test_sharded_matches_single_domain;
          Alcotest.test_case "bounded mailboxes and outbox backpressure" `Quick
            test_backpressure_and_mailbox_bounds;
          Alcotest.test_case "malicious antibody rejected, legitimate adopted"
            `Quick test_malicious_antibody_round;
          qt prop_sharded_oracle;
        ] );
    ]
