(* Tests for the Sweeper core: core-dump analysis, memory-bug detection,
   taint analysis, backward slicing, signatures, VSEFs, antibodies,
   recovery, and the end-to-end orchestrator against all four exploits. *)

module O = Sweeper.Orchestrator

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

(* Boot an app, serve benign traffic, fire the exploit; return the faulted
   server (pre-analysis). *)
let crash_server ?(benign = 10) ?(seed = 42) key =
  let entry = Apps.Registry.find key in
  let proc = Osim.Process.load ~aslr:true ~seed (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload key benign);
  let exploit = Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 key in
  let fault = ref None in
  List.iter
    (fun m ->
      match Osim.Server.handle server m with
      | `Crashed (_, f) -> fault := Some f
      | _ -> ())
    exploit.Apps.Exploits.x_messages;
  match !fault with
  | Some f -> (proc, server, f)
  | None -> Alcotest.fail (key ^ ": exploit did not crash")

(* Full pipeline; memoized per app key to keep the suite fast. *)
let reports : (string, O.report * Osim.Server.t * Osim.Process.t) Hashtbl.t =
  Hashtbl.create 4

let analyzed key =
  match Hashtbl.find_opt reports key with
  | Some r -> r
  | None ->
    let proc, server, fault = crash_server key in
    let r = O.handle_attack ~app:key server fault in
    Hashtbl.replace reports key (r, server, proc);
    (r, server, proc)

(* ------------------------------------------------------------------ *)
(* Core-dump analysis                                                  *)
(* ------------------------------------------------------------------ *)

let test_coredump_apache1 () =
  let proc, _, fault = crash_server "apache1" in
  let r = Sweeper.Coredump.analyze proc fault in
  check_bool "stack inconsistent" false r.Sweeper.Coredump.c_stack_consistent;
  check_bool "diagnosis" true
    (r.Sweeper.Coredump.c_diagnosis = Sweeper.Coredump.Stack_smash_suspected);
  check_str "crash function" "try_alias_list"
    (Option.value ~default:"?" r.Sweeper.Coredump.c_crash_fn);
  match r.Sweeper.Coredump.c_vsef with
  | Some { Sweeper.Vsef.v_check = Sweeper.Vsef.Side_stack { fn; _ }; _ } ->
    check_str "side-stack target" "try_alias_list" fn
  | _ -> Alcotest.fail "expected side-stack VSEF"

let test_coredump_apache2 () =
  let proc, _, fault = crash_server "apache2" in
  let r = Sweeper.Coredump.analyze proc fault in
  check_bool "stack consistent" true r.Sweeper.Coredump.c_stack_consistent;
  check_bool "heap consistent" true r.Sweeper.Coredump.c_heap_consistent;
  check_bool "diagnosis" true
    (r.Sweeper.Coredump.c_diagnosis = Sweeper.Coredump.Null_dereference);
  check_str "crash function" "is_ip"
    (Option.value ~default:"?" r.Sweeper.Coredump.c_crash_fn)

let test_coredump_cvs () =
  let proc, _, fault = crash_server "cvs" in
  let r = Sweeper.Coredump.analyze proc fault in
  check_bool "heap inconsistent" false r.Sweeper.Coredump.c_heap_consistent;
  check_bool "diagnosis" true
    (r.Sweeper.Coredump.c_diagnosis = Sweeper.Coredump.Double_free_suspected);
  check_str "crash function" "free"
    (Option.value ~default:"?" r.Sweeper.Coredump.c_crash_fn)

let test_coredump_squid () =
  let proc, _, fault = crash_server "squid" in
  let r = Sweeper.Coredump.analyze proc fault in
  check_bool "heap inconsistent" false r.Sweeper.Coredump.c_heap_consistent;
  check_bool "diagnosis" true
    (r.Sweeper.Coredump.c_diagnosis = Sweeper.Coredump.Heap_overflow_suspected);
  check_str "crash function" "strcat"
    (Option.value ~default:"?" r.Sweeper.Coredump.c_crash_fn);
  (* The initial VSEF is context-qualified by the caller. *)
  match r.Sweeper.Coredump.c_vsef with
  | Some { Sweeper.Vsef.v_check = Sweeper.Vsef.Heap_bounds { caller; _ }; _ } ->
    check_str "caller context" "ftp_build_title_url"
      (Option.value ~default:"?" caller)
  | _ -> Alcotest.fail "expected heap-bounds VSEF"

(* ------------------------------------------------------------------ *)
(* Memory-bug detection                                                *)
(* ------------------------------------------------------------------ *)

let membug_findings key =
  let r, _, _ = analyzed key in
  r.O.a_membug.Sweeper.Membug.m_findings

let fn_of proc pc =
  let s = Osim.Process.describe_addr proc pc in
  match String.index_opt s '(' with
  | Some i ->
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let stop =
      match (String.index_opt rest '+', String.index_opt rest ')') with
      | Some a, Some b -> min a b
      | Some a, None -> a
      | None, Some b -> b
      | None, None -> String.length rest
    in
    String.sub rest 0 stop
  | None -> s

let test_membug_apache1 () =
  let r, _, proc = analyzed "apache1" in
  ignore r;
  match
    List.find_opt
      (function Sweeper.Membug.Stack_smash _ -> true | _ -> false)
      (membug_findings "apache1")
  with
  | Some (Sweeper.Membug.Stack_smash { store_pc; _ }) ->
    check_str "smashing store is in lmatcher" "lmatcher" (fn_of proc store_pc)
  | _ -> Alcotest.fail "expected stack-smash finding"

let test_membug_apache2 () =
  check_int "no memory bug for NULL deref" 0
    (List.length (membug_findings "apache2"))

let test_membug_cvs () =
  let _, _, proc = analyzed "cvs" in
  match
    List.find_opt
      (function Sweeper.Membug.Double_free _ -> true | _ -> false)
      (membug_findings "cvs")
  with
  | Some (Sweeper.Membug.Double_free { call_pc; _ }) ->
    check_str "double free by dirswitch" "dirswitch" (fn_of proc call_pc)
  | _ -> Alcotest.fail "expected double-free finding"

let test_membug_squid () =
  let _, _, proc = analyzed "squid" in
  match
    List.find_opt
      (function Sweeper.Membug.Heap_overflow _ -> true | _ -> false)
      (membug_findings "squid")
  with
  | Some (Sweeper.Membug.Heap_overflow { store_pc; _ }) ->
    check_str "overflowing store in strcat" "strcat" (fn_of proc store_pc)
  | _ -> Alcotest.fail "expected heap-overflow finding"

(* ------------------------------------------------------------------ *)
(* Taint analysis                                                      *)
(* ------------------------------------------------------------------ *)

let test_taint_apache1 () =
  let r, _, _ = analyzed "apache1" in
  match r.O.a_taint.Sweeper.Taint.t_verdict with
  | Sweeper.Taint.Tainted_ret { msgs; _ } ->
    check_int "single responsible message" 1
      (Sweeper.Taint.Int_set.cardinal msgs)
  | v -> Alcotest.fail ("expected tainted ret, got " ^ Sweeper.Taint.verdict_to_string v)

let test_taint_squid () =
  let r, _, _ = analyzed "squid" in
  match r.O.a_taint.Sweeper.Taint.t_verdict with
  | Sweeper.Taint.Tainted_store_fault { msgs; _ } ->
    check_int "single responsible message" 1
      (Sweeper.Taint.Int_set.cardinal msgs)
  | v -> Alcotest.fail ("expected tainted store, got " ^ Sweeper.Taint.verdict_to_string v)

let test_taint_apache2_untainted () =
  (* The NULL pointer is a program constant: taint analysis must NOT blame
     the input (that is what input isolation is for). *)
  let r, _, _ = analyzed "apache2" in
  match r.O.a_taint.Sweeper.Taint.t_verdict with
  | Sweeper.Taint.Untainted_fault _ -> ()
  | v -> Alcotest.fail ("expected untainted fault, got " ^ Sweeper.Taint.verdict_to_string v)

let test_taint_propagation_unit () =
  (* Direct unit test of propagation: recv -> copy -> smashed return. *)
  let src =
    {|
    char buf[128];
    void vuln(char *s) {
      char local[8];
      int i = 0;
      while (s[i] != 0) { local[i] = s[i]; i = i + 1; }
    }
    int main() {
      int n = _recv(buf, 128);
      vuln(buf);
      return 0;
    }
  |}
  in
  let proc =
    Osim.Process.load ~aslr:true ~seed:3 (Minic.Driver.compile_app ~name:"t" src)
  in
  ignore (Osim.Process.run proc);
  ignore (Osim.Process.send_message proc (String.make 40 'Z'));
  let result = Sweeper.Taint.run proc in
  (match result.Sweeper.Taint.t_verdict with
  | Sweeper.Taint.Tainted_ret { msgs; _ } ->
    check_bool "message 0 blamed" true (Sweeper.Taint.Int_set.mem 0 msgs)
  | v -> Alcotest.fail ("expected tainted ret: " ^ Sweeper.Taint.verdict_to_string v));
  check_bool "propagation sites recorded" true
    (List.length result.Sweeper.Taint.t_prop_pcs > 0)

(* ------------------------------------------------------------------ *)
(* Backward slicing                                                    *)
(* ------------------------------------------------------------------ *)

let test_slice_verifies_all_apps () =
  List.iter
    (fun key ->
      let r, _, _ = analyzed key in
      check_bool (key ^ " slice verifies") true r.O.a_slice_verifies;
      check_bool (key ^ " slice smaller than window") true
        (r.O.a_slice.Sweeper.Slice.s_slice_size
        <= r.O.a_slice.Sweeper.Slice.s_nodes))
    [ "apache1"; "apache2"; "cvs"; "squid" ]

let test_slice_excludes_unrelated () =
  (* Two independent computations; the slice from a fault in one must not
     contain the other's instructions. *)
  let src =
    {|
    int unrelated;
    void noise() { unrelated = 12345; }
    int main() {
      noise();
      int *p = (int*)0;
      return *p;
    }
  |}
  in
  let proc =
    Osim.Process.load ~aslr:false ~seed:1 (Minic.Driver.compile_app ~name:"t" src)
  in
  let result = Sweeper.Slice.run proc in
  let s = result.Sweeper.Slice.sl_summary in
  check_bool "slice nonempty" true (s.Sweeper.Slice.s_slice_size > 0);
  (* The store to [unrelated] must not be in the slice: find its pc. *)
  let noise_store = ref None in
  Vm.Program.iteri
    (fun pc i ->
      match i with
      | Vm.Isa.Store (Vm.Isa.R1, 0, Vm.Isa.R0) when !noise_store = None ->
        let s = Osim.Process.describe_addr proc pc in
        if
          match String.index_opt s '(' with
          | Some idx ->
            String.length s > idx + 5 && String.sub s (idx + 1) 5 = "noise"
          | None -> false
        then noise_store := Some pc
      | _ -> ())
    proc.Osim.Process.cpu.Vm.Cpu.code;
  let noise_store = !noise_store in
  match noise_store with
  | Some pc ->
    check_bool "noise store excluded from slice" false
      (Sweeper.Slice.verifies s pc)
  | None -> Alcotest.fail "could not locate the noise store"

let test_slice_includes_data_chain () =
  (* x flows through y into the faulting address: all hops in the slice. *)
  let src =
    {|
    int main() {
      int x = 0;
      int y = x + 0;
      int *p = (int*)y;
      return *p;
    }
  |}
  in
  let proc =
    Osim.Process.load ~aslr:false ~seed:1 (Minic.Driver.compile_app ~name:"t" src)
  in
  let result = Sweeper.Slice.run proc in
  let s = result.Sweeper.Slice.sl_summary in
  check_bool "several sites in slice" true
    (O.Int_set.cardinal s.Sweeper.Slice.s_pcs > 3)

let test_slice_message_attribution () =
  let r, _, _ = analyzed "apache1" in
  let msgs = r.O.a_slice.Sweeper.Slice.s_msgs in
  (* The malicious message must be among the slice's input dependencies. *)
  List.iter
    (fun id -> check_bool "isolated msg in slice msgs" true (O.Int_set.mem id msgs))
    r.O.a_isolation

(* ------------------------------------------------------------------ *)
(* Signatures                                                          *)
(* ------------------------------------------------------------------ *)

let test_signature_exact () =
  let s = Sweeper.Signature.exact "attack-bytes" in
  check_bool "matches itself" true (Sweeper.Signature.matches s "attack-bytes");
  check_bool "prefix does not match" false
    (Sweeper.Signature.matches s "attack-bytes-variant");
  check_bool "other does not match" false (Sweeper.Signature.matches s "benign")

let test_signature_tokens () =
  let variants =
    [ "GET /evil?pad=AAAA HTTP"; "GET /evil?pad=BBBB HTTP"; "GET /evil?pad=zz9 HTTP" ]
  in
  let s = Sweeper.Signature.tokens_of_variants variants in
  List.iter
    (fun v -> check_bool "matches every variant" true (Sweeper.Signature.matches s v))
    variants;
  check_bool "matches fresh variant" true
    (Sweeper.Signature.matches s "GET /evil?pad=qqqq HTTP");
  check_bool "benign does not match" false
    (Sweeper.Signature.matches s "GET /index.html HTTP")

let test_signature_tokens_ordered () =
  let s = Sweeper.Signature.Tokens [ "alpha"; "beta" ] in
  check_bool "in order" true (Sweeper.Signature.matches s "xx alpha yy beta zz");
  check_bool "wrong order" false (Sweeper.Signature.matches s "beta then alpha")

let prop_tokens_match_their_variants =
  QCheck.Test.make ~name:"token signature matches its variants" ~count:40
    QCheck.(pair small_printable_string (small_list small_printable_string))
    (fun (core, pads) ->
      QCheck.assume (String.length core >= 4);
      let variants = List.map (fun p -> "HDR:" ^ core ^ p) ("" :: pads) in
      let s = Sweeper.Signature.tokens_of_variants variants in
      List.for_all (Sweeper.Signature.matches s) variants)

(* ------------------------------------------------------------------ *)
(* VSEFs                                                               *)
(* ------------------------------------------------------------------ *)

(* Deploy only the given VSEFs on a fresh host and re-fire the exploit. *)
let vsefs_stop_exploit key vsefs =
  let entry = Apps.Registry.find key in
  let proc = Osim.Process.load ~aslr:true ~seed:91 (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  let _installed = List.map (Sweeper.Vsef.install proc) vsefs in
  let exploit = Apps.Registry.exploit ~system_guess:0x22334455 ~cmd_ptr:0 key in
  let tripped = ref false in
  List.iter
    (fun m ->
      match Osim.Server.handle server m with
      | `Served _ | `Filtered _ | `Stopped -> ()
      | `Crashed _ | `Infected _ -> ()
      | exception Sweeper.Detection.Detected _ -> tripped := true)
    exploit.Apps.Exploits.x_messages;
  !tripped

let test_vsef_blocks key () =
  let r, _, _ = analyzed key in
  check_bool (key ^ " VSEFs trip on re-attack") true
    (vsefs_stop_exploit key r.O.a_vsefs)

let test_vsef_no_false_positives key () =
  let r, _, _ = analyzed key in
  let entry = Apps.Registry.find key in
  let proc = Osim.Process.load ~aslr:true ~seed:92 (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  let _ = List.map (Sweeper.Vsef.install proc) r.O.a_vsefs in
  List.iter
    (fun m ->
      match Osim.Server.handle server m with
      | `Served _ -> ()
      | `Filtered f -> Alcotest.fail ("benign filtered by " ^ f)
      | _ -> Alcotest.fail "benign traffic misbehaved under VSEF"
      | exception Sweeper.Detection.Detected d ->
        Alcotest.fail ("VSEF false positive: " ^ Sweeper.Detection.to_string d))
    (Apps.Registry.workload ~seed:17 key 25)

let test_vsef_footprint_small () =
  List.iter
    (fun key ->
      let r, _, _ = analyzed key in
      let entry = Apps.Registry.find key in
      let proc = Osim.Process.load ~aslr:true ~seed:93 (entry.r_compile ()) in
      let installed = List.map (Sweeper.Vsef.install proc) r.O.a_vsefs in
      let total =
        List.fold_left (fun a i -> a + Sweeper.Vsef.footprint i) 0 installed
      in
      (* "only a handful of instrumentation instructions" — allow some slack
         for the taint filter's propagation list. *)
      check_bool (key ^ " footprint bounded") true (total < 600);
      List.iter Sweeper.Vsef.uninstall installed;
      check_int (key ^ " uninstall removes hooks") 0
        (Vm.Cpu.pc_hook_count proc.Osim.Process.cpu))
    [ "apache1"; "apache2"; "cvs"; "squid" ]

let test_vsef_catches_polymorphic_variants () =
  (* Exact signatures miss variants; VSEFs must not. *)
  List.iter
    (fun key ->
      let r, _, _ = analyzed key in
      let variants =
        Apps.Exploits.variants ~system_guess:0x33445566 ~cmd_ptr:0 key
      in
      List.iter
        (fun (v : Apps.Exploits.t) ->
          let entry = Apps.Registry.find key in
          let proc = Osim.Process.load ~aslr:true ~seed:94 (entry.r_compile ()) in
          let server = Osim.Server.create proc in
          ignore (Osim.Server.run server);
          let _ = List.map (Sweeper.Vsef.install proc) r.O.a_vsefs in
          let outcome = ref `Nothing in
          List.iter
            (fun m ->
              match Osim.Server.handle server m with
              | `Crashed _ -> if !outcome = `Nothing then outcome := `Crashed
              | `Infected _ -> outcome := `Infected
              | _ -> ()
              | exception Sweeper.Detection.Detected _ -> outcome := `Tripped)
            v.Apps.Exploits.x_messages;
          check_bool
            (Printf.sprintf "%s variant %s stopped before corruption" key
               v.Apps.Exploits.x_name)
            true (!outcome = `Tripped))
        variants)
    [ "apache1"; "cvs"; "squid" ]

(* ------------------------------------------------------------------ *)
(* Antibody                                                            *)
(* ------------------------------------------------------------------ *)

let test_antibody_stages () =
  let r, _, _ = analyzed "apache1" in
  let ab = r.O.a_antibody in
  check_bool "full stage" true (ab.Sweeper.Antibody.ab_stage = Sweeper.Antibody.Full);
  check_bool "has signature" true (ab.Sweeper.Antibody.ab_signature <> None);
  check_bool "carries exploit input" true
    (ab.Sweeper.Antibody.ab_exploit_input <> None);
  check_bool "has VSEFs" true (List.length ab.Sweeper.Antibody.ab_vsefs >= 2)

let test_antibody_verification () =
  (* An untrusting consumer can reproduce the misbehaviour in a sandbox. *)
  List.iter
    (fun key ->
      let r, _, _ = analyzed key in
      let entry = Apps.Registry.find key in
      check_bool (key ^ " antibody verifies") true
        (Sweeper.Antibody.verify r.O.a_antibody ~compile:entry.r_compile))
    [ "apache1"; "apache2"; "cvs"; "squid" ]

let test_antibody_bogus_does_not_verify () =
  let entry = Apps.Registry.find "apache1" in
  let bogus =
    {
      Sweeper.Antibody.ab_app = "apache1";
      ab_stage = Sweeper.Antibody.Full;
      ab_vsefs = [];
      ab_signature = Some (Sweeper.Signature.exact "harmless");
      ab_exploit_input = Some [ "GET /harmless\n" ];
    }
  in
  check_bool "benign input does not verify" false
    (Sweeper.Antibody.verify bogus ~compile:entry.r_compile)

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let test_recovery_preserves_state_and_service () =
  (* CVS keeps per-session state (entry_count): recovery must preserve the
     benign-message effects while dropping the malicious stream. *)
  let entry = Apps.Registry.find "cvs" in
  let proc = Osim.Process.load ~aslr:true ~seed:55 (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    [ "Entry /src/a.c"; "Entry /src/b.c"; "Entry /src/c.c" ];
  let exploit = Apps.Registry.exploit "cvs" in
  List.iter
    (fun m ->
      match O.protected_handle ~app:"cvs" server m with
      | `Attack _ | `Served _ -> ()
      | _ -> Alcotest.fail "unexpected status during attack")
    exploit.Apps.Exploits.x_messages;
  (* In-memory state survived (no restart): three entries still counted. *)
  let entry_count =
    Vm.Memory.load_word proc.Osim.Process.mem
      (Hashtbl.find proc.Osim.Process.data_symbols "entry_count")
  in
  check_int "entry_count preserved across recovery" 3 entry_count;
  (* And the server still answers. *)
  match Osim.Server.handle server "noop" with
  | `Served _ -> ()
  | _ -> Alcotest.fail "server dead after recovery"

let test_recovery_no_duplicate_responses () =
  let r, server, proc = analyzed "apache1" in
  ignore r;
  ignore server;
  (* Each benign message answered exactly once despite the replay. *)
  let by_msg = Hashtbl.create 32 in
  List.iter
    (fun (id, _) ->
      Hashtbl.replace by_msg id (1 + Option.value ~default:0 (Hashtbl.find_opt by_msg id)))
    (Osim.Process.committed_outputs proc);
  Hashtbl.iter
    (fun id n -> check_int (Printf.sprintf "msg %d answered once" id) 1 n)
    by_msg

let test_full_pipeline_outcomes () =
  (* The Table 2 shaped assertions for every app, end to end. *)
  let expect =
    [
      ("apache1", Sweeper.Coredump.Stack_smash_suspected, true, false);
      ("apache2", Sweeper.Coredump.Null_dereference, true, false);
      ("cvs", Sweeper.Coredump.Double_free_suspected, true, true);
      ("squid", Sweeper.Coredump.Heap_overflow_suspected, true, false);
    ]
  in
  List.iter
    (fun (key, diagnosis, input_found, stream) ->
      let r, _, _ = analyzed key in
      check_bool (key ^ " diagnosis") true
        (r.O.a_coredump.Sweeper.Coredump.c_diagnosis = diagnosis);
      check_bool (key ^ " input found") input_found (r.O.a_isolation <> []);
      check_bool (key ^ " stream-only") stream r.O.a_isolation_stream;
      check_bool (key ^ " produced vsefs") true (r.O.a_vsefs <> []);
      check_bool (key ^ " timing order: first <= best <= total") true
        (r.O.a_time_to_first_vsef_ms <= r.O.a_time_to_best_vsef_ms
        && r.O.a_time_to_best_vsef_ms <= r.O.a_total_ms))
    expect

let test_reattack_blocked_after_analysis () =
  List.iter
    (fun key ->
      let _, server, _ = analyzed key in
      let exploit =
        Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 key
      in
      let stopped = ref false in
      List.iter
        (fun m ->
          match O.protected_handle ~app:key server m with
          | `Filtered _ | `Blocked_by_vsef _ -> stopped := true
          | `Served _ -> ()
          | `Attack _ -> Alcotest.fail (key ^ ": crashed again after antibody")
          | `Stopped | `Compromised -> Alcotest.fail (key ^ ": bad status"))
        exploit.Apps.Exploits.x_messages;
      check_bool (key ^ " re-attack stopped") true !stopped)
    [ "apache1"; "apache2"; "cvs"; "squid" ]

let test_frame_pointer_corruption_variant () =
  (* An exploit whose address guess contains a NUL corrupts only the saved
     frame pointer: the function returns normally, then the caller faults
     on a wild access. The paper notes the initial (return-address) VSEF
     cannot cover this sub-vulnerability; memory-bug detection must still
     pin the overflowing store. *)
  let entry = Apps.Registry.find "apache1" in
  let proc = Osim.Process.load ~aslr:true ~seed:71 (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload ~seed:71 "apache1" 5);
  (* guess 0 -> NUL bytes -> copy stops before the return address *)
  let exploit = Apps.Exploits.apache1 ~system_guess:0 ~cmd_ptr:0 () in
  let report = ref None in
  List.iter
    (fun m ->
      match O.protected_handle ~app:"apache1" server m with
      | `Attack r -> report := Some r
      | _ -> ())
    exploit.Apps.Exploits.x_messages;
  let r = Option.get !report in
  check_bool "diagnosed as stack smashing" true
    (r.O.a_coredump.Sweeper.Coredump.c_diagnosis
    = Sweeper.Coredump.Stack_smash_suspected);
  check_bool "stack walk inconsistent" false
    r.O.a_coredump.Sweeper.Coredump.c_stack_consistent;
  (* membug still identifies the overflowing store in lmatcher. *)
  let _, _, proc_ref = analyzed "apache1" in
  ignore proc_ref;
  (match
     List.find_opt
       (function Sweeper.Membug.Stack_smash _ -> true | _ -> false)
       r.O.a_membug.Sweeper.Membug.m_findings
   with
  | Some (Sweeper.Membug.Stack_smash { store_pc; _ }) ->
    check_str "store in lmatcher" "lmatcher" (fn_of proc store_pc)
  | _ -> Alcotest.fail "membug missed the overflow");
  check_bool "refined VSEF exists" true
    (List.exists
       (fun v ->
         match v.Sweeper.Vsef.v_check with
         | Sweeper.Vsef.Store_guard _ -> true
         | _ -> false)
       r.O.a_vsefs)

(* ------------------------------------------------------------------ *)
(* Sampling (Section 4.2)                                              *)
(* ------------------------------------------------------------------ *)

let test_sampling_catches_successful_hijack () =
  (* A legacy host without ASLR: the worm's address guess is exact, so the
     lightweight monitor would never fire — but the sampled taint monitor
     vetoes the hijack before exec commits. *)
  let entry = Apps.Registry.find "apache1" in
  let proc = Osim.Process.load ~aslr:false ~seed:61 (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  let sampler = Sweeper.Sampling.create ~rate:1 server in
  let system = Osim.Process.system_addr proc in
  let reqbuf = Hashtbl.find proc.Osim.Process.data_symbols "reqbuf" in
  let exploit =
    Apps.Exploits.apache1_against ~system_guess:system ~reqbuf_addr:reqbuf ()
  in
  List.iter
    (fun m ->
      match Sweeper.Sampling.handle sampler m with
      | Sweeper.Sampling.Taint_alarm d ->
        check_bool "taint sink detection" true
          (match d.Sweeper.Detection.d_kind with
          | Sweeper.Detection.Taint_sink _ -> true
          | _ -> false)
      | Sweeper.Sampling.Plain (`Infected _) ->
        Alcotest.fail "sampling missed the hijack"
      | Sweeper.Sampling.Plain _ -> Alcotest.fail "expected a taint alarm")
    exploit.Apps.Exploits.x_messages;
  check_int "one alarm" 1 sampler.Sweeper.Sampling.alarms;
  check_bool "process not compromised" true
    (proc.Osim.Process.compromised = None)

let test_sampling_unsampled_messages_miss () =
  (* rate = 0 disables sampling entirely: the hijack goes through. *)
  let entry = Apps.Registry.find "apache1" in
  let proc = Osim.Process.load ~aslr:false ~seed:61 (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  let sampler = Sweeper.Sampling.create ~rate:0 server in
  let system = Osim.Process.system_addr proc in
  let reqbuf = Hashtbl.find proc.Osim.Process.data_symbols "reqbuf" in
  let exploit =
    Apps.Exploits.apache1_against ~system_guess:system ~reqbuf_addr:reqbuf ()
  in
  List.iter
    (fun m ->
      match Sweeper.Sampling.handle sampler m with
      | Sweeper.Sampling.Plain (`Infected _) -> ()
      | _ -> Alcotest.fail "expected infection with sampling off")
    exploit.Apps.Exploits.x_messages

let test_sampling_rate_and_overhead_accounting () =
  let entry = Apps.Registry.find "apache2" in
  let proc = Osim.Process.load ~aslr:true ~seed:62 (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  let sampler = Sweeper.Sampling.create ~rate:5 server in
  List.iter
    (fun m -> ignore (Sweeper.Sampling.handle sampler m))
    (Apps.Registry.workload ~seed:62 "apache2" 50);
  check_int "one in five sampled" 10 sampler.Sweeper.Sampling.sampled;
  check_bool "fraction" true
    (abs_float (Sweeper.Sampling.sampled_fraction sampler -. 0.2) < 1e-9);
  check_int "no false alarms on benign traffic" 0 sampler.Sweeper.Sampling.alarms

(* ------------------------------------------------------------------ *)
(* Forward slicing                                                     *)
(* ------------------------------------------------------------------ *)

let test_forward_slice_from_input () =
  (* The forward slice from the malicious message must include the
     faulting instruction; one from an uninvolved computation must not. *)
  let src =
    {|
    char buf[128];
    int unrelated;
    void vuln(char *s) {
      char local[8];
      int i = 0;
      while (s[i] != 0) { local[i] = s[i]; i = i + 1; }
    }
    int main() {
      unrelated = 4321;
      int n = _recv(buf, 128);
      vuln(buf);
      return 0;
    }
  |}
  in
  let proc =
    Osim.Process.load ~aslr:true ~seed:63 (Minic.Driver.compile_app ~name:"t" src)
  in
  ignore (Osim.Process.run proc);
  ignore (Osim.Process.send_message proc (String.make 40 'Q'));
  let session = Sweeper.Slice.run_session proc in
  (match session.Sweeper.Slice.outcome with
  | Vm.Cpu.Faulted _ -> ()
  | _ -> Alcotest.fail "expected the replayed crash");
  let fw = Sweeper.Slice.forward_from_message session ~msg_id:0 in
  check_bool "input influences something" true (fw.Sweeper.Slice.fw_size > 10);
  check_bool "input reaches the copy loop" true
    (O.Int_set.exists
       (fun pc ->
         match Osim.Process.describe_addr proc pc with
         | s -> (
           match String.index_opt s '(' with
           | Some i -> String.length s > i + 5 && String.sub s (i + 1) 4 = "vuln"
           | None -> false))
       fw.Sweeper.Slice.fw_pcs);
  (* And the backward slice from the fault depends on the message. *)
  check_bool "backward slice blames the message" true
    (O.Int_set.mem 0 session.Sweeper.Slice.backward.Sweeper.Slice.s_msgs)

(* ------------------------------------------------------------------ *)
(* Community defense (mechanical)                                      *)
(* ------------------------------------------------------------------ *)

let community_exploit_for rng (host : Sweeper.Defense.host) =
  ignore host;
  let slide_guess = Random.State.int rng 4096 * 4096 in
  let exploit =
    Apps.Exploits.apache1_against
      ~system_guess:(0x4f770000 + slide_guess + 0x15a0)
      ~reqbuf_addr:0x08100000 ()
  in
  exploit.Apps.Exploits.x_messages

let test_defense_community_contains_worm () =
  let entry = Apps.Registry.find "apache1" in
  let community =
    Sweeper.Defense.create ~app:"apache1" ~compile:entry.r_compile ~n:10
      ~producers:2 ~seed:7000 ()
  in
  let rng = Random.State.make [| 99 |] in
  for _round = 1 to 3 do
    Sweeper.Defense.worm_round community
      ~exploit_for:(community_exploit_for rng)
  done;
  check_int "nobody infected" 0 (Sweeper.Defense.infected_count community);
  check_bool "antibody was produced" true (community.Sweeper.Defense.antibody <> None);
  check_bool "attacks were blocked" true
    (community.Sweeper.Defense.stats.Sweeper.Defense.s_blocked > 0);
  check_bool "community still serves" true (Sweeper.Defense.all_alive community)

let test_defense_verification_path () =
  let entry = Apps.Registry.find "apache1" in
  let community =
    Sweeper.Defense.create ~verify_before_deploy:true ~app:"apache1"
      ~compile:entry.r_compile ~n:4 ~producers:1 ~seed:7100 ()
  in
  let rng = Random.State.make [| 7 |] in
  Sweeper.Defense.worm_round community ~exploit_for:(community_exploit_for rng);
  check_bool "verified antibody accepted" true
    (community.Sweeper.Defense.antibody <> None);
  (* A bogus antibody is rejected by the verification gate. *)
  let bogus =
    {
      Sweeper.Antibody.ab_app = "apache1";
      ab_stage = Sweeper.Antibody.Full;
      ab_vsefs = [];
      ab_signature = None;
      ab_exploit_input = Some [ "GET /innocent\n" ];
    }
  in
  check_bool "bogus rejected" false (Sweeper.Defense.publish community bogus)

let test_defense_signature_refinement () =
  (* Wave 1: canonical exploit -> analysis, exact signature. Wave 2: a
     polymorphic variant evades the exact signature, a VSEF blocks it, and
     the confirmed sample refines the signature into a token signature.
     Wave 3: a third, fresh variant is now filtered at the proxy. *)
  let entry = Apps.Registry.find "squid" in
  let community =
    Sweeper.Defense.create ~app:"squid" ~compile:entry.r_compile ~n:1
      ~producers:1 ~seed:7300 ()
  in
  let host = List.hd community.Sweeper.Defense.hosts in
  (* Waves 0 and 1 differ in payload characters, so the common tokens are
     the structural parts ("GET ftp://", the host suffix); wave 2 then
     varies only the length and must match the token signature. *)
  let wave n =
    (List.nth (Apps.Exploits.variants ~system_guess:1 ~cmd_ptr:1 "squid") n)
      .Apps.Exploits.x_messages
  in
  let wave = function 0 -> wave 0 | 1 -> wave 2 | _ -> wave 1 in
  (match List.map (Sweeper.Defense.deliver community host) (wave 0) with
  | [ Sweeper.Defense.Detected_and_analyzed ] -> ()
  | _ -> Alcotest.fail "wave 1 should be analyzed");
  (match List.map (Sweeper.Defense.deliver community host) (wave 1) with
  | [ Sweeper.Defense.Blocked "vsef" ] -> ()
  | [ Sweeper.Defense.Blocked other ] ->
    Alcotest.fail ("wave 2 blocked by " ^ other ^ ", expected the VSEF")
  | _ -> Alcotest.fail "wave 2 should be VSEF-blocked");
  check_int "corpus has two samples" 2
    (List.length community.Sweeper.Defense.corpus);
  (match community.Sweeper.Defense.antibody with
  | Some (gen, ab) ->
    check_bool "republished" true (gen >= 2);
    (match ab.Sweeper.Antibody.ab_signature with
    | Some (Sweeper.Signature.Tokens _) -> ()
    | _ -> Alcotest.fail "signature not refined to tokens")
  | None -> Alcotest.fail "no antibody");
  match List.map (Sweeper.Defense.deliver community host) (wave 2) with
  | [ Sweeper.Defense.Blocked name ] when name <> "vsef" ->
    ()  (* filtered at the proxy before reaching the process *)
  | [ Sweeper.Defense.Blocked "vsef" ] ->
    Alcotest.fail "wave 3 reached the process; token signature missed it"
  | _ -> Alcotest.fail "wave 3 should be filtered"

let test_defense_consumer_only_community_survives_detection () =
  (* With zero producers nobody can make antibodies, but lightweight
     monitoring + rollback still keeps consumers alive (DoS, not takeover). *)
  let entry = Apps.Registry.find "apache1" in
  let community =
    Sweeper.Defense.create ~app:"apache1" ~compile:entry.r_compile ~n:5
      ~producers:0 ~seed:7200 ()
  in
  let rng = Random.State.make [| 13 |] in
  for _round = 1 to 2 do
    Sweeper.Defense.worm_round community
      ~exploit_for:(community_exploit_for rng)
  done;
  check_bool "no antibody without producers" true
    (community.Sweeper.Defense.antibody = None);
  check_bool "crashes were absorbed" true
    (community.Sweeper.Defense.stats.Sweeper.Defense.s_crashes > 0);
  check_bool "consumers recovered" true (Sweeper.Defense.all_alive community)

(* ------------------------------------------------------------------ *)
(* Pipeline driver regressions                                         *)
(* ------------------------------------------------------------------ *)

let test_pipeline_survives_empty_checkpoint_ring () =
  (* Regression: with the checkpoint ring emptied (every entry purged, as
     after an aggressive quarantine), the driver must fall back to the
     server's origin checkpoint instead of crashing on [Option.get]. *)
  let _, server, fault = crash_server ~seed:4242 "apache1" in
  Osim.Checkpoint.purge_after server.Osim.Server.ring ~cursor:(-1);
  check_int "ring emptied" 0 (Osim.Checkpoint.count server.Osim.Server.ring);
  let r = O.handle_attack ~app:"apache1" server fault in
  check_bool "antibody still produced" true
    (r.O.a_antibody.Sweeper.Antibody.ab_vsefs <> []);
  check_bool "exploit input still isolated" true (r.O.a_isolation <> []);
  match Osim.Server.handle server "noop" with
  | `Served _ | `Stopped -> ()
  | `Filtered _ | `Crashed _ | `Infected _ ->
    Alcotest.fail "server not serviceable after origin-fallback recovery"

let test_reduced_stage_pipeline () =
  (* A policy-trimmed pipeline (no taint, no slicing) must still produce a
     well-formed report: skipped stages contribute neutral products. *)
  let _, server, fault = crash_server ~seed:4243 "apache1" in
  let r =
    O.handle_attack ~app:"apache1"
      ~stages:[ O.coredump_stage; O.membug_stage; O.isolation_stage ]
      server fault
  in
  check_bool "taint neutral" true
    (r.O.a_taint.Sweeper.Taint.t_verdict = Sweeper.Taint.No_fault);
  check_bool "slice vacuously verifies" true r.O.a_slice_verifies;
  check_bool "exploit input isolated" true (r.O.a_isolation <> []);
  check_bool "vsefs produced" true (r.O.a_vsefs <> []);
  check_int "one timing per stage run" 3 (List.length r.O.a_timings)

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sweeper"
    [
      ( "coredump",
        [
          Alcotest.test_case "apache1" `Quick test_coredump_apache1;
          Alcotest.test_case "apache2" `Quick test_coredump_apache2;
          Alcotest.test_case "cvs" `Quick test_coredump_cvs;
          Alcotest.test_case "squid" `Quick test_coredump_squid;
        ] );
      ( "membug",
        [
          Alcotest.test_case "apache1" `Quick test_membug_apache1;
          Alcotest.test_case "apache2" `Quick test_membug_apache2;
          Alcotest.test_case "cvs" `Quick test_membug_cvs;
          Alcotest.test_case "squid" `Quick test_membug_squid;
        ] );
      ( "taint",
        [
          Alcotest.test_case "apache1 tainted ret" `Quick test_taint_apache1;
          Alcotest.test_case "squid tainted store" `Quick test_taint_squid;
          Alcotest.test_case "apache2 untainted" `Quick test_taint_apache2_untainted;
          Alcotest.test_case "propagation unit" `Quick test_taint_propagation_unit;
        ] );
      ( "slice",
        [
          Alcotest.test_case "verifies all apps" `Quick test_slice_verifies_all_apps;
          Alcotest.test_case "excludes unrelated" `Quick test_slice_excludes_unrelated;
          Alcotest.test_case "includes data chain" `Quick test_slice_includes_data_chain;
          Alcotest.test_case "message attribution" `Quick test_slice_message_attribution;
        ] );
      ( "signature",
        [
          Alcotest.test_case "exact" `Quick test_signature_exact;
          Alcotest.test_case "tokens" `Quick test_signature_tokens;
          Alcotest.test_case "token order" `Quick test_signature_tokens_ordered;
          qt prop_tokens_match_their_variants;
        ] );
      ( "vsef",
        [
          Alcotest.test_case "blocks apache1" `Quick (test_vsef_blocks "apache1");
          Alcotest.test_case "blocks apache2" `Quick (test_vsef_blocks "apache2");
          Alcotest.test_case "blocks cvs" `Quick (test_vsef_blocks "cvs");
          Alcotest.test_case "blocks squid" `Quick (test_vsef_blocks "squid");
          Alcotest.test_case "no false positives apache1" `Quick
            (test_vsef_no_false_positives "apache1");
          Alcotest.test_case "no false positives squid" `Quick
            (test_vsef_no_false_positives "squid");
          Alcotest.test_case "footprint small" `Quick test_vsef_footprint_small;
          Alcotest.test_case "catches polymorphic variants" `Quick
            test_vsef_catches_polymorphic_variants;
        ] );
      ( "antibody",
        [
          Alcotest.test_case "stages" `Quick test_antibody_stages;
          Alcotest.test_case "verification" `Quick test_antibody_verification;
          Alcotest.test_case "bogus rejected" `Quick test_antibody_bogus_does_not_verify;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "state and service preserved" `Quick
            test_recovery_preserves_state_and_service;
          Alcotest.test_case "no duplicate responses" `Quick
            test_recovery_no_duplicate_responses;
          Alcotest.test_case "full pipeline outcomes" `Quick
            test_full_pipeline_outcomes;
          Alcotest.test_case "re-attack blocked" `Quick
            test_reattack_blocked_after_analysis;
          Alcotest.test_case "frame-pointer corruption variant" `Quick
            test_frame_pointer_corruption_variant;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "survives empty checkpoint ring" `Quick
            test_pipeline_survives_empty_checkpoint_ring;
          Alcotest.test_case "reduced stage list" `Quick
            test_reduced_stage_pipeline;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "catches successful hijack" `Quick
            test_sampling_catches_successful_hijack;
          Alcotest.test_case "disabled misses" `Quick
            test_sampling_unsampled_messages_miss;
          Alcotest.test_case "rate accounting" `Quick
            test_sampling_rate_and_overhead_accounting;
        ] );
      ( "forward-slice",
        [
          Alcotest.test_case "from input" `Quick test_forward_slice_from_input;
        ] );
      ( "defense",
        [
          Alcotest.test_case "community contains worm" `Quick
            test_defense_community_contains_worm;
          Alcotest.test_case "verification path" `Quick
            test_defense_verification_path;
          Alcotest.test_case "signature refinement" `Quick
            test_defense_signature_refinement;
          Alcotest.test_case "consumer-only survives" `Quick
            test_defense_consumer_only_community_survives_detection;
        ] );
    ]
