(* Differential testing of the two taint engines.

   [Sweeper.Taint.run] replays on the fused shadow-memory fast loop;
   [Sweeper.Taint.Oracle.run] is the original per-byte, hook-driven
   engine kept verbatim as the reference. Both replay the same program
   image (one compile, two loads with the same ASLR seed, the same
   message) and must produce identical verdicts, blamed messages,
   propagation pcs, and instruction counts — for random MiniC programs
   spanning clean runs, stack smashes, and exec-sink hijacks.

   The guard (the online pre-hook monitor) is held to the same standard
   on a hook-driven run of each engine. *)

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* Deterministic qcheck runs by default; QCHECK_SEED overrides. (The
   stock QCheck_alcotest default self-seeds from the clock, which makes
   failures unreproducible — so the seed is pinned here instead.) *)
let qcheck_rand () =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 0x5EED)
    | None -> 0x5EED
  in
  Random.State.make [| seed |]

(* ------------------------------------------------------------------ *)
(* Random MiniC workloads                                              *)
(* ------------------------------------------------------------------ *)

(* A program recipe: every field is a knob on one fixed program shape, so
   generated sources always compile, while the dynamic behaviour ranges
   over clean runs, benign faults, smashed returns, and exec hijacks. *)
type recipe = {
  cap : int;        (* receive buffer size *)
  reps : int;       (* outer loop repetitions *)
  stride : int;     (* read offset in the copy loop *)
  addk : int;       (* constant folded into copied bytes *)
  use_words : bool; (* mix in word-sized loads through an int* view *)
  vuln : int;       (* 0 = clean, 1 = stack smash, 2 = exec sink *)
  over : int;       (* how far past the 16-byte local the smash reaches *)
  msg_len : int;    (* attack message length *)
  msg_seed : int;   (* attack message contents *)
}

let source_of r =
  let words =
    if r.use_words then
      "int *p = (int*)buf; acc = acc + p[0] + p[1] + p[2];"
    else ""
  in
  let sink =
    match r.vuln with
    | 1 -> Printf.sprintf "vuln(buf, n + %d);" r.over
    | 2 -> Printf.sprintf "dst[%d] = 0; system(dst);" (r.cap - 1)
    | _ -> ""
  in
  Printf.sprintf
    {|
    char buf[%d];
    char dst[%d];
    int sink;
    void vuln(char *s, int n) {
      char local[16];
      int i = 0;
      while (s[i] != 0 && i < n) { local[i] = s[i]; i = i + 1; }
    }
    int main() {
      int n = _recv(buf, %d);
      int acc = 0;
      int r = 0;
      while (r < %d) {
        int i = 0;
        while (i + %d < %d) {
          acc = acc + buf[i];
          dst[i] = (char)(buf[i + %d] + %d);
          i = i + 1;
        }
        r = r + 1;
      }
      %s
      sink = acc;
      %s
      return 0;
    }
  |}
    r.cap r.cap r.cap r.reps r.stride r.cap r.stride r.addk words sink

let message_of r =
  String.init r.msg_len (fun i ->
      Char.chr (1 + (((r.msg_seed * 31) + (i * 7)) land 0x7F)))

let gen_recipe =
  QCheck.Gen.(
    oneofl [ 16; 64; 128 ] >>= fun cap ->
    int_range 1 4 >>= fun reps ->
    int_range 0 4 >>= fun stride ->
    int_range 0 60 >>= fun addk ->
    bool >>= fun use_words ->
    int_range 0 2 >>= fun vuln ->
    int_range 0 40 >>= fun over ->
    int_range 1 cap >>= fun msg_len ->
    int_range 0 9999 >>= fun msg_seed ->
    return { cap; reps; stride; addk; use_words; vuln; over; msg_len; msg_seed })

let print_recipe r =
  Printf.sprintf
    "cap=%d reps=%d stride=%d addk=%d words=%b vuln=%d over=%d len=%d seed=%d"
    r.cap r.reps r.stride r.addk r.use_words r.vuln r.over r.msg_len r.msg_seed

(* One compile, two identical processes: same image, same ASLR seed, same
   message — any divergence below is an engine bug, not nondeterminism. *)
let load_and_poke app msg =
  let proc = Osim.Process.load ~aslr:true ~seed:17 app in
  ignore (Osim.Process.run proc);
  ignore (Osim.Process.send_message proc msg);
  proc

let summarize (res : Sweeper.Taint.result) =
  ( Sweeper.Taint.verdict_to_string res.Sweeper.Taint.t_verdict,
    Sweeper.Taint.verdict_msgs res.Sweeper.Taint.t_verdict,
    res.Sweeper.Taint.t_prop_pcs,
    res.Sweeper.Taint.t_instructions )

let run_both r =
  let app = Minic.Driver.compile_app ~name:"tdiff" (source_of r) in
  let msg = message_of r in
  let fused = Sweeper.Taint.run (load_and_poke app msg) in
  let oracle = Sweeper.Taint.Oracle.run (load_and_poke app msg) in
  (summarize fused, summarize oracle)

let diff_qcheck =
  QCheck.Test.make ~name:"fused engine == per-byte oracle (random programs)"
    ~count:40
    (QCheck.make ~print:print_recipe gen_recipe)
    (fun r ->
      let fused, oracle = run_both r in
      fused = oracle)

(* ------------------------------------------------------------------ *)
(* Directed cases                                                      *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let directed r expect_sub () =
  let ((vf, _, pf, inf) as fused), oracle = run_both r in
  check_bool "engines agree" true (fused = oracle);
  check_bool
    (Printf.sprintf "verdict %S mentions %S" vf expect_sub)
    true (contains vf expect_sub);
  if expect_sub <> "no fault" then
    check_bool "propagation sites recorded" true (List.length pf > 0);
  check_bool "instructions counted" true (inf > 0)

let clean_recipe =
  {
    cap = 64;
    reps = 3;
    stride = 2;
    addk = 7;
    use_words = true;
    vuln = 0;
    over = 0;
    msg_len = 48;
    msg_seed = 5;
  }

(* 24 nonzero message bytes: 16 fill [local], 4 the saved frame pointer,
   4 the return address — the smash stops exactly on the ret slot, so the
   clobbered target is tainted and vuln's own arguments stay intact. *)
let smash_recipe = { clean_recipe with vuln = 1; over = 20; msg_len = 24 }
let exec_recipe = { clean_recipe with vuln = 2 }

(* ------------------------------------------------------------------ *)
(* Guard parity (the online monitor path)                              *)
(* ------------------------------------------------------------------ *)

(* Drive each engine the way a sampling host does — guard as a pre-hook,
   propagation as a post-hook — and require the same detection at the
   same pc with the same blamed-message string. *)
let run_guarded mk_hooks app msg =
  let proc = load_and_poke app msg in
  let cpu = proc.Osim.Process.cpu in
  let guard_hook, effect_hook = mk_hooks proc in
  let pre = Vm.Cpu.add_pre_hook cpu guard_hook in
  let post = Vm.Cpu.add_post_hook cpu effect_hook in
  let det =
    try
      ignore (Vm.Cpu.run ~fuel:2_000_000 cpu : Vm.Cpu.outcome);
      None
    with Sweeper.Detection.Detected d -> Some d
  in
  Vm.Cpu.remove_hook cpu pre;
  Vm.Cpu.remove_hook cpu post;
  det

let fast_hooks proc =
  let st = Sweeper.Taint.create proc in
  (Sweeper.Taint.guard st, Sweeper.Taint.on_effect st)

let oracle_hooks proc =
  let st = Sweeper.Taint.Oracle.create proc in
  (Sweeper.Taint.Oracle.guard st, Sweeper.Taint.Oracle.on_effect st)

let guard_parity r expect_detect () =
  let app = Minic.Driver.compile_app ~name:"tguard" (source_of r) in
  let msg = message_of r in
  let a = run_guarded fast_hooks app msg in
  let b = run_guarded oracle_hooks app msg in
  (match (a, b) with
  | None, None -> check_bool "no detection on either engine" false expect_detect
  | Some da, Some db ->
    check_bool "detection expected" true expect_detect;
    check_int "same pc" db.Sweeper.Detection.d_pc da.Sweeper.Detection.d_pc;
    check_str "same kind"
      (Sweeper.Detection.kind_to_string db.Sweeper.Detection.d_kind)
      (Sweeper.Detection.kind_to_string da.Sweeper.Detection.d_kind)
  | Some d, None ->
    Alcotest.fail ("only fused engine detected: " ^ Sweeper.Detection.to_string d)
  | None, Some d ->
    Alcotest.fail ("only oracle detected: " ^ Sweeper.Detection.to_string d))

let () =
  let qt = QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) in
  Alcotest.run "taint-diff"
    [
      ("differential", [ qt diff_qcheck ]);
      ( "directed",
        [
          Alcotest.test_case "clean run agrees" `Quick
            (directed clean_recipe "no fault");
          Alcotest.test_case "stack smash agrees" `Quick
            (directed smash_recipe "tainted return");
          Alcotest.test_case "exec hijack agrees" `Quick
            (directed exec_recipe "exec");
        ] );
      ( "guard",
        [
          Alcotest.test_case "guard stops the exec hijack identically" `Quick
            (guard_parity exec_recipe true);
          Alcotest.test_case "guard stays silent on a clean run" `Quick
            (guard_parity clean_recipe false);
        ] );
    ]
