(* Tests for the OS simulation layer: the network log (filters, replay,
   quarantine), processes and syscalls, checkpoints/rollback, and the
   serving harness. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Netlog                                                              *)
(* ------------------------------------------------------------------ *)

let test_netlog_arrive_and_consume () =
  let t = Osim.Netlog.create () in
  check_bool "first id" true (Osim.Netlog.arrive t "a" = Ok 0);
  check_bool "second id" true (Osim.Netlog.arrive t "b" = Ok 1);
  (match Osim.Netlog.next_for_recv t with
  | Some m -> check_str "fifo order" "a" m.Osim.Netlog.m_payload
  | None -> Alcotest.fail "expected message");
  check_int "cursor advanced" 1 (Osim.Netlog.cursor t);
  ignore (Osim.Netlog.next_for_recv t);
  check_bool "drained" true (Osim.Netlog.next_for_recv t = None)

let test_netlog_filters () =
  let t = Osim.Netlog.create () in
  Osim.Netlog.add_filter t ~name:"block-x" (fun p -> String.length p > 0 && p.[0] = 'x');
  check_bool "filtered" true (Osim.Netlog.arrive t "xyz" = Error "block-x");
  check_bool "passes" true (Osim.Netlog.arrive t "abc" = Ok 0);
  check_int "one filter" 1 (Osim.Netlog.filter_count t);
  Osim.Netlog.remove_filter t ~name:"block-x";
  check_bool "after removal" true (Osim.Netlog.arrive t "xyz" = Ok 1)

let test_netlog_replay_and_skip () =
  let t = Osim.Netlog.create () in
  List.iter (fun p -> ignore (Osim.Netlog.arrive t p)) [ "m0"; "m1"; "m2"; "m3" ];
  (* Consume everything live. *)
  while Osim.Netlog.next_for_recv t <> None do () done;
  (* Replay from 0 up to 3, skipping message 1. *)
  Osim.Netlog.set_cursor t 0;
  Osim.Netlog.set_mode t
    (Osim.Netlog.Replay { upto = 3; skip = Osim.Netlog.Int_set.singleton 1 });
  let seen = ref [] in
  let rec drain () =
    match Osim.Netlog.next_for_recv t with
    | Some m ->
      seen := m.Osim.Netlog.m_payload :: !seen;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list string) "replayed without skipped" [ "m0"; "m2" ]
    (List.rev !seen);
  (* Back to live: message 3 is still there. *)
  Osim.Netlog.set_mode t Osim.Netlog.Live;
  match Osim.Netlog.next_for_recv t with
  | Some m -> check_str "live resumes after replay window" "m3" m.Osim.Netlog.m_payload
  | None -> Alcotest.fail "expected m3"

let test_netlog_quarantine_persists () =
  let t = Osim.Netlog.create () in
  List.iter (fun p -> ignore (Osim.Netlog.arrive t p)) [ "good"; "evil"; "good2" ];
  while Osim.Netlog.next_for_recv t <> None do () done;
  Osim.Netlog.quarantine t [ 1 ];
  Osim.Netlog.set_cursor t 0;
  Osim.Netlog.set_mode t
    (Osim.Netlog.Replay { upto = 3; skip = Osim.Netlog.Int_set.empty });
  let seen = ref [] in
  let rec drain () =
    match Osim.Netlog.next_for_recv t with
    | Some m -> seen := m.Osim.Netlog.m_payload :: !seen; drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list string) "quarantined never re-delivered"
    [ "good"; "good2" ] (List.rev !seen)

let test_netlog_consumed_since () =
  let t = Osim.Netlog.create () in
  List.iter (fun p -> ignore (Osim.Netlog.arrive t p)) [ "a"; "b"; "c" ];
  ignore (Osim.Netlog.next_for_recv t);
  ignore (Osim.Netlog.next_for_recv t);
  let since = Osim.Netlog.consumed_since t 1 in
  check_int "window size" 1 (List.length since);
  check_str "window content" "b" (List.hd since).Osim.Netlog.m_payload

(* ------------------------------------------------------------------ *)
(* Process + syscalls                                                  *)
(* ------------------------------------------------------------------ *)

(* An echo server in MiniC for process-level tests. *)
let echo_src =
  {|
  char buf[256];
  int main() {
    while (1) {
      int n = _recv(buf, 256);
      if (n < 0) { _exit(1); }
      _send(buf, n);
    }
    return 0;
  }
|}

let echo_proc ?(aslr = false) ?(seed = 1) () =
  Osim.Process.load ~aslr ~seed (Minic.Driver.compile_app ~name:"echo" echo_src)

let test_process_blocks_without_input () =
  let p = echo_proc () in
  check_bool "blocked" true (Osim.Process.run p = Vm.Cpu.Blocked)

let test_process_echo_roundtrip () =
  let p = echo_proc () in
  ignore (Osim.Process.run p);
  ignore (Osim.Process.send_message p "ping");
  ignore (Osim.Process.run p);
  (match Osim.Process.committed_outputs p with
  | [ (0, "ping") ] -> ()
  | _ -> Alcotest.fail "expected one echoed response");
  ignore (Osim.Process.send_message p "pong");
  ignore (Osim.Process.run p);
  check_int "two responses" 2 (List.length (Osim.Process.committed_outputs p))

let test_process_output_commit_suppression () =
  let p = echo_proc () in
  ignore (Osim.Process.run p);
  ignore (Osim.Process.send_message p "hello");
  ignore (Osim.Process.run p);
  (* Replay the same message: the response must not be duplicated. *)
  Osim.Netlog.set_cursor p.Osim.Process.net 0;
  Osim.Netlog.set_mode p.Osim.Process.net
    (Osim.Netlog.Replay { upto = 1; skip = Osim.Netlog.Int_set.empty });
  ignore (Osim.Process.run p);
  check_int "no duplicate response" 1
    (List.length (Osim.Process.committed_outputs p))

let test_process_sandbox_drops_outputs () =
  let p = echo_proc () in
  ignore (Osim.Process.run p);
  p.Osim.Process.sandbox <- true;
  ignore (Osim.Process.send_message p "quiet");
  ignore (Osim.Process.run p);
  check_int "sandboxed output dropped" 0
    (List.length (Osim.Process.committed_outputs p))

let test_process_flashback_random () =
  (* random results are logged; a re-execution from the log start returns
     the same values. *)
  let src =
    {|
    char buf[8];
    int r1;
    int r2;
    int main() {
      int n = _recv(buf, 8);
      r1 = _random();
      r2 = _random();
      n = _recv(buf, 8);
      return 0;
    }
  |}
  in
  let p = Osim.Process.load ~aslr:false ~seed:9 (Minic.Driver.compile_app ~name:"r" src) in
  ignore (Osim.Process.run p);
  ignore (Osim.Process.send_message p "go");
  ignore (Osim.Process.run p);
  let addr_r1 = Hashtbl.find p.Osim.Process.data_symbols "r1" in
  let addr_r2 = Hashtbl.find p.Osim.Process.data_symbols "r2" in
  let v1 = Vm.Memory.load_word p.Osim.Process.mem addr_r1 in
  let v2 = Vm.Memory.load_word p.Osim.Process.mem addr_r2 in
  check_bool "two distinct randoms" true (v1 <> v2);
  (* Replay: rewind the syscall-result log and the message cursor. *)
  p.Osim.Process.sysres_pos <- 0;
  Osim.Netlog.set_cursor p.Osim.Process.net 0;
  Osim.Netlog.set_mode p.Osim.Process.net
    (Osim.Netlog.Replay { upto = 1; skip = Osim.Netlog.Int_set.empty });
  Vm.Memory.store_word p.Osim.Process.mem addr_r1 0;
  Vm.Memory.store_word p.Osim.Process.mem addr_r2 0;
  p.Osim.Process.cpu.Vm.Cpu.pc <- Vm.Asm.symbol p.Osim.Process.app_image "_start";
  Vm.Cpu.set_reg p.Osim.Process.cpu Vm.Isa.SP
    (p.Osim.Process.layout.Vm.Layout.stack_top - 16);
  p.Osim.Process.cpu.Vm.Cpu.halted <- false;
  ignore (Osim.Process.run p);
  check_int "replayed r1 deterministic" v1
    (Vm.Memory.load_word p.Osim.Process.mem addr_r1);
  check_int "replayed r2 deterministic" v2
    (Vm.Memory.load_word p.Osim.Process.mem addr_r2)

let test_process_exec_marks_compromise () =
  let src = {| int main() { _exec("evil"); return 0; } |} in
  let p = Osim.Process.load ~aslr:false ~seed:1 (Minic.Driver.compile_app ~name:"x" src) in
  ignore (Osim.Process.run p);
  check_bool "compromised" true (p.Osim.Process.compromised = Some "evil")

let test_process_console_log () =
  let src = {| int main() { _log("starting up"); return 0; } |} in
  let p = Osim.Process.load ~aslr:false ~seed:1 (Minic.Driver.compile_app ~name:"x" src) in
  ignore (Osim.Process.run p);
  check Alcotest.(list string) "console" [ "starting up" ] p.Osim.Process.console

let test_process_aslr_moves_libc () =
  let p1 = echo_proc ~aslr:true ~seed:1 () in
  let p2 = echo_proc ~aslr:true ~seed:2 () in
  check_bool "system address differs" true
    (Osim.Process.system_addr p1 <> Osim.Process.system_addr p2);
  let p3 = echo_proc ~aslr:false () in
  let p4 = echo_proc ~aslr:false ~seed:5 () in
  check_int "no-aslr deterministic" (Osim.Process.system_addr p3)
    (Osim.Process.system_addr p4)

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let counter_src =
  {|
  char buf[64];
  int count;
  char *scratch;
  int main() {
    count = 0;
    scratch = malloc(16);
    while (1) {
      int n = _recv(buf, 64);
      if (n < 0) { _exit(1); }
      count = count + 1;
      scratch[0] = (char)count;
      _send(buf, n);
    }
    return 0;
  }
|}

let counter_proc () =
  Osim.Process.load ~aslr:false ~seed:1
    (Minic.Driver.compile_app ~name:"counter" counter_src)

let count_of p =
  Vm.Memory.load_word p.Osim.Process.mem
    (Hashtbl.find p.Osim.Process.data_symbols "count")

let test_checkpoint_rollback_state () =
  let p = counter_proc () in
  ignore (Osim.Process.run p);
  ignore (Osim.Process.send_message p "a");
  ignore (Osim.Process.run p);
  let ck = Osim.Checkpoint.take p in
  ignore (Osim.Process.send_message p "b");
  ignore (Osim.Process.send_message p "c");
  ignore (Osim.Process.run p);
  check_int "count advanced" 3 (count_of p);
  Osim.Checkpoint.rollback p ck;
  check_int "count restored" 1 (count_of p);
  check_int "net cursor restored" 1 (Osim.Netlog.cursor p.Osim.Process.net)

let test_checkpoint_rollback_repeatable () =
  let p = counter_proc () in
  ignore (Osim.Process.run p);
  let ck = Osim.Checkpoint.take p in
  for round = 1 to 3 do
    ignore (Osim.Process.send_message p (string_of_int round));
    ignore (Osim.Process.run p);
    check_bool "count moved" true (count_of p >= 1);
    Osim.Checkpoint.rollback p ck;
    check_int "count back to zero" 0 (count_of p)
  done

let test_checkpoint_heap_rollback () =
  let p = counter_proc () in
  ignore (Osim.Process.run p);
  let ck = Osim.Checkpoint.take p in
  let brk_before = p.Osim.Process.layout.Vm.Layout.heap_brk in
  (* Allocations after the checkpoint... *)
  ignore (Vm.Alloc.malloc p.Osim.Process.mem p.Osim.Process.layout 4096);
  Osim.Checkpoint.rollback p ck;
  check_int "heap brk restored" brk_before p.Osim.Process.layout.Vm.Layout.heap_brk;
  (* ...and the allocator metadata is back too: same chunk again. *)
  let q1 = Vm.Alloc.malloc p.Osim.Process.mem p.Osim.Process.layout 4096 in
  Osim.Checkpoint.rollback p ck;
  let q2 = Vm.Alloc.malloc p.Osim.Process.mem p.Osim.Process.layout 4096 in
  check_bool "deterministic allocation after rollback" true (q1 = q2)

let test_checkpoint_ring () =
  let ring = Osim.Checkpoint.create_ring ~capacity:3 () in
  let p = counter_proc () in
  ignore (Osim.Process.run p);
  for i = 1 to 5 do
    ignore (Osim.Process.send_message p (string_of_int i));
    ignore (Osim.Process.run p);
    Osim.Checkpoint.add ring (Osim.Checkpoint.take p)
  done;
  check_int "bounded" 3 (Osim.Checkpoint.count ring);
  (match Osim.Checkpoint.latest ring with
  | Some ck -> check_int "latest has all messages" 5 ck.Osim.Checkpoint.ck_net_cursor
  | None -> Alcotest.fail "expected latest");
  match Osim.Checkpoint.before_message ring ~msg_index:3 with
  | Some ck ->
    check_bool "finds checkpoint before message" true
      (ck.Osim.Checkpoint.ck_net_cursor <= 3)
  | None -> Alcotest.fail "expected checkpoint before message 3"

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

let test_server_serves_and_checkpoints () =
  let p = counter_proc () in
  let config = { Osim.Server.checkpoint_interval_ms = 1; keep_checkpoints = 5 } in
  let server = Osim.Server.create ~config p in
  ignore (Osim.Server.run server);
  for i = 1 to 400 do
    match Osim.Server.handle server (string_of_int i) with
    | `Served _ -> ()
    | _ -> Alcotest.fail "expected served"
  done;
  check_bool "took periodic checkpoints" true (Osim.Server.checkpoints_taken server > 1);
  check_int "ring bounded" 5 (Osim.Checkpoint.count server.Osim.Server.ring)

let test_server_no_checkpointing_when_disabled () =
  let p = counter_proc () in
  let config = { Osim.Server.checkpoint_interval_ms = 0; keep_checkpoints = 5 } in
  let server = Osim.Server.create ~config p in
  ignore (Osim.Server.run server);
  for i = 1 to 20 do
    ignore (Osim.Server.handle server (string_of_int i))
  done;
  check_int "only the initial checkpoint" 1 (Osim.Server.checkpoints_taken server)

let test_server_filtered_messages () =
  let p = counter_proc () in
  let server = Osim.Server.create p in
  ignore (Osim.Server.run server);
  Osim.Netlog.add_filter p.Osim.Process.net ~name:"no-evil" (fun s -> s = "evil");
  (match Osim.Server.handle server "evil" with
  | `Filtered "no-evil" -> ()
  | _ -> Alcotest.fail "expected filtered");
  match Osim.Server.handle server "fine" with
  | `Served _ -> ()
  | _ -> Alcotest.fail "expected served"

(* ------------------------------------------------------------------ *)
(* Additional corners                                                  *)
(* ------------------------------------------------------------------ *)

let test_recv_truncates_long_messages () =
  (* The echo server's buffer is 256 bytes; recv must NUL-terminate within
     it and report the truncated length. *)
  let p = echo_proc () in
  ignore (Osim.Process.run p);
  ignore (Osim.Process.send_message p (String.make 1000 'x'));
  ignore (Osim.Process.run p);
  match Osim.Process.committed_outputs p with
  | [ (0, data) ] -> check_int "truncated to buffer - 1" 255 (String.length data)
  | _ -> Alcotest.fail "expected one truncated response"

let test_processes_are_isolated () =
  let p1 = echo_proc ~seed:1 () in
  let p2 = echo_proc ~seed:2 () in
  ignore (Osim.Process.run p1);
  ignore (Osim.Process.run p2);
  ignore (Osim.Process.send_message p1 "only-p1");
  ignore (Osim.Process.run p1);
  check_int "p1 answered" 1 (List.length (Osim.Process.committed_outputs p1));
  check_int "p2 untouched" 0 (List.length (Osim.Process.committed_outputs p2))

let test_checkpoint_purge_after () =
  let ring = Osim.Checkpoint.create_ring ~capacity:10 () in
  let p = counter_proc () in
  ignore (Osim.Process.run p);
  for i = 1 to 4 do
    ignore (Osim.Process.send_message p (string_of_int i));
    ignore (Osim.Process.run p);
    Osim.Checkpoint.add ring (Osim.Checkpoint.take p)
  done;
  check_int "four checkpoints" 4 (Osim.Checkpoint.count ring);
  Osim.Checkpoint.purge_after ring ~cursor:2;
  check_int "later ones purged" 2 (Osim.Checkpoint.count ring);
  List.iter
    (fun i ->
      ignore i;
      match Osim.Checkpoint.latest ring with
      | Some ck -> check_bool "survivors predate cursor" true
          (ck.Osim.Checkpoint.ck_net_cursor <= 2)
      | None -> Alcotest.fail "ring emptied")
    [ 1 ]

let test_rollback_hooks_fire () =
  let p = counter_proc () in
  ignore (Osim.Process.run p);
  let ck = Osim.Checkpoint.take p in
  let fired = ref 0 in
  let id = Osim.Process.add_rollback_hook p (fun () -> incr fired) in
  Osim.Checkpoint.rollback p ck;
  Osim.Checkpoint.rollback p ck;
  check_int "hook ran per rollback" 2 !fired;
  Osim.Process.remove_rollback_hook p id;
  Osim.Checkpoint.rollback p ck;
  check_int "removed hook silent" 2 !fired

let test_netlog_message_lookup_bounds () =
  let t = Osim.Netlog.create () in
  ignore (Osim.Netlog.arrive t "zero");
  check Alcotest.string "lookup" "zero" (Osim.Netlog.message t 0).Osim.Netlog.m_payload;
  Alcotest.check_raises "negative id" (Invalid_argument "Netlog.message")
    (fun () -> ignore (Osim.Netlog.message t (-1)));
  Alcotest.check_raises "out of range" (Invalid_argument "Netlog.message")
    (fun () -> ignore (Osim.Netlog.message t 5))

let () =
  Alcotest.run "osim"
    [
      ( "netlog",
        [
          Alcotest.test_case "arrive/consume" `Quick test_netlog_arrive_and_consume;
          Alcotest.test_case "filters" `Quick test_netlog_filters;
          Alcotest.test_case "replay/skip" `Quick test_netlog_replay_and_skip;
          Alcotest.test_case "quarantine" `Quick test_netlog_quarantine_persists;
          Alcotest.test_case "consumed_since" `Quick test_netlog_consumed_since;
        ] );
      ( "process",
        [
          Alcotest.test_case "blocks without input" `Quick
            test_process_blocks_without_input;
          Alcotest.test_case "echo roundtrip" `Quick test_process_echo_roundtrip;
          Alcotest.test_case "output commit" `Quick
            test_process_output_commit_suppression;
          Alcotest.test_case "sandbox" `Quick test_process_sandbox_drops_outputs;
          Alcotest.test_case "flashback random" `Quick test_process_flashback_random;
          Alcotest.test_case "exec = compromise" `Quick
            test_process_exec_marks_compromise;
          Alcotest.test_case "console log" `Quick test_process_console_log;
          Alcotest.test_case "aslr moves libc" `Quick test_process_aslr_moves_libc;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "rollback state" `Quick test_checkpoint_rollback_state;
          Alcotest.test_case "rollback repeatable" `Quick
            test_checkpoint_rollback_repeatable;
          Alcotest.test_case "heap rollback" `Quick test_checkpoint_heap_rollback;
          Alcotest.test_case "ring" `Quick test_checkpoint_ring;
        ] );
      ( "server",
        [
          Alcotest.test_case "serves and checkpoints" `Quick
            test_server_serves_and_checkpoints;
          Alcotest.test_case "checkpointing disabled" `Quick
            test_server_no_checkpointing_when_disabled;
          Alcotest.test_case "filtered messages" `Quick test_server_filtered_messages;
        ] );
      ( "corners",
        [
          Alcotest.test_case "recv truncation" `Quick test_recv_truncates_long_messages;
          Alcotest.test_case "process isolation" `Quick test_processes_are_isolated;
          Alcotest.test_case "purge_after" `Quick test_checkpoint_purge_after;
          Alcotest.test_case "rollback hooks" `Quick test_rollback_hooks_fire;
          Alcotest.test_case "message lookup bounds" `Quick
            test_netlog_message_lookup_bounds;
        ] );
    ]
