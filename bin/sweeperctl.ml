(* sweeperctl: command-line front end to the Sweeper reproduction.

   Subcommands:
     list      - the evaluated applications (Table 1)
     attack    - run the full attack/defense pipeline against one app
     serve     - run a benign workload and report checkpointing stats
     trace     - run an attack with tracing on; write Chrome trace JSON
     analyze   - static CFG + taint reachability over an app's loaded code
     epidemic  - query the community-defense model
     outbreak  - mechanical multi-host worm outbreak with antibody sharing
     forensics - reconstruct the infection tree from provenance netlogs *)

open Cmdliner

let app_names = List.map (fun e -> e.Apps.Registry.r_key) Apps.Registry.all

let app_arg =
  let doc =
    Printf.sprintf "Application to target: %s." (String.concat ", " app_names)
  in
  Arg.(
    required
    & pos 0 (some (enum (List.map (fun k -> (k, k)) app_names))) None
    & info [] ~docv:"APP" ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let aslr_arg =
  Arg.(
    value & opt bool true
    & info [ "aslr" ] ~docv:"BOOL" ~doc:"Address-space randomization.")

let benign_arg =
  Arg.(
    value & opt int 20
    & info [ "benign" ] ~docv:"N" ~doc:"Benign requests to serve first.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print a Prometheus-text metrics snapshot when done.")

(* All subcommands share the process-wide default registry: sweeperctl is
   one-shot, so the gauge-retention caveat on per-server registration does
   not apply. *)
let obs_registry = Obs.Metrics.default

let maybe_print_metrics flag =
  if flag then print_string (Obs.Metrics.to_prometheus obs_registry)

(* The value of one sample from the registry snapshot, for a server-labelled
   metric. Counters and gauges both collapse to an int here; serve's summary
   line is integral throughout. *)
let metric_value name server_id =
  let labels = [ ("server", string_of_int server_id) ] in
  match
    List.find_opt
      (fun s ->
        s.Obs.Metrics.s_name = name && s.Obs.Metrics.s_labels = labels)
      (Obs.Metrics.snapshot obs_registry)
  with
  | Some { Obs.Metrics.s_value = Obs.Metrics.Sample_counter n; _ } -> n
  | Some { Obs.Metrics.s_value = Obs.Metrics.Sample_gauge v; _ } ->
    int_of_float v
  | _ -> 0

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-8s %-14s %-22s %-14s %s\n" "KEY" "PROGRAM" "DESCRIPTION"
      "CVE" "BUG";
    List.iter
      (fun (e : Apps.Registry.entry) ->
        Printf.printf "%-8s %-14s %-22s %-14s %s\n" e.r_key e.r_program
          e.r_description e.r_cve e.r_bug_type)
      Apps.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the evaluated applications (Table 1)")
    Term.(const run $ const ())

let attack_cmd =
  let run app seed aslr benign metrics =
    let entry = Apps.Registry.find app in
    let proc = Osim.Process.load ~aslr ~seed (entry.r_compile ()) in
    let server =
      Osim.Server.create
        ?metrics:(if metrics then Some obs_registry else None)
        proc
    in
    ignore (Osim.Server.run server);
    List.iter
      (fun m -> ignore (Osim.Server.handle server m))
      (Apps.Registry.workload ~seed app benign);
    let exploit =
      Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 app
    in
    List.iter
      (fun m ->
        match Sweeper.Orchestrator.protected_handle ~app server m with
        | `Attack r ->
          Sweeper.Report.print_table2 proc r;
          print_newline ();
          Sweeper.Report.print_table3_header ();
          Sweeper.Report.print_table3_row r
        | `Served _ -> print_endline "(message served: state buildup)"

        | _ -> ())
      exploit.Apps.Exploits.x_messages;
    maybe_print_metrics metrics
  in
  let run app seed aslr benign metrics =
    try run app seed aslr benign metrics
    with e -> Printf.eprintf "error: %s\n" (Printexc.to_string e)
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Fire the canonical exploit and run the defense pipeline")
    Term.(const run $ app_arg $ seed_arg $ aslr_arg $ benign_arg $ metrics_arg)

let serve_cmd =
  let requests =
    Arg.(
      value & opt int 500
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to serve.")
  in
  let interval =
    Arg.(
      value & opt int 200
      & info [ "interval" ] ~docv:"MS"
          ~doc:"Checkpoint interval in simulated milliseconds (0 = off).")
  in
  let run app seed interval n metrics =
    let entry = Apps.Registry.find app in
    let proc = Osim.Process.load ~seed (entry.r_compile ()) in
    let config =
      { Osim.Server.checkpoint_interval_ms = interval; keep_checkpoints = 20 }
    in
    let server = Osim.Server.create ~config ~metrics:obs_registry proc in
    ignore (Osim.Server.run server);
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun m -> ignore (Osim.Server.handle server m))
      (Apps.Registry.workload ~seed app n);
    let dt = Unix.gettimeofday () -. t0 in
    (* Every figure below is read back from the metrics registry the server
       registered itself in — the same samples `--metrics` exposes. *)
    let v name = metric_value name server.Osim.Server.id in
    Printf.printf
      "%d requests in %.3f s; %d instructions; %d checkpoints; %d COW page \
       copies; %d pages mapped\n"
      n dt
      (v "sweeper_vm_fast_instructions" + v "sweeper_vm_slow_instructions")
      (v "sweeper_checkpoints_total")
      (v "sweeper_vm_cow_copies")
      (v "sweeper_vm_pages_mapped");
    maybe_print_metrics metrics
  in
  Cmd.v (Cmd.info "serve" ~doc:"Serve a benign workload, report stats")
    Term.(const run $ app_arg $ seed_arg $ interval $ requests $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* trace: the attack pipeline with the tracer, the metrics registry, and
   the VM flight recorder all armed; writes Chrome trace-event JSON. *)

let required_span_names =
  "checkpoint" :: "attack" :: "recovery"
  :: List.map
       (fun (s : Sweeper.Stage.t) -> s.Sweeper.Stage.name)
       [
         Sweeper.Orchestrator.coredump_stage;
         Sweeper.Orchestrator.membug_stage;
         Sweeper.Orchestrator.taint_stage;
         Sweeper.Orchestrator.isolation_stage;
         Sweeper.Orchestrator.slicing_stage;
       ]

(* Validate a written trace file: it must parse as JSON, expose a
   traceEvents array, and contain a span for checkpointing, for each of the
   five analysis stages, for the attack, and for the recovery. *)
let check_trace path =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let events =
    match
      Option.bind
        (Obs.Json.member "traceEvents" (Obs.Json.parse_exn contents))
        Obs.Json.to_list
    with
    | Some evs -> evs
    | None -> failwith "trace has no traceEvents array"
  in
  let names =
    List.filter_map
      (fun e ->
        match Obs.Json.member "name" e with
        | Some (Obs.Json.Str s) -> Some s
        | _ -> None)
      events
  in
  let missing =
    List.filter (fun r -> not (List.mem r names)) required_span_names
  in
  if missing <> [] then begin
    Printf.eprintf "trace check FAILED: missing span(s): %s\n"
      (String.concat ", " missing);
    exit 1
  end;
  Printf.printf "trace check OK: %d events, all required spans present\n"
    (List.length events)

let trace_cmd =
  let out =
    Arg.(
      value
      & opt string "sweeper-trace.json"
      & info [ "out" ] ~docv:"PATH"
          ~doc:"Where to write the Chrome trace-event JSON.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the written trace: it must parse and contain spans \
             for checkpointing, every analysis stage, and recovery.")
  in
  let flight =
    Arg.(
      value
      & opt int Obs.Recorder.default_capacity
      & info [ "flight" ] ~docv:"N"
          ~doc:"VM flight-recorder ring capacity (0 disables it).")
  in
  let run app seed aslr benign metrics out check flight_cap =
    Obs.Trace.enable ();
    Obs.Trace.clear ();
    let entry = Apps.Registry.find app in
    let proc = Osim.Process.load ~aslr ~seed (entry.r_compile ()) in
    if flight_cap > 0 then
      proc.Osim.Process.flight <-
        Some (Obs.Recorder.attach ~capacity:flight_cap proc.Osim.Process.cpu);
    let server = Osim.Server.create ~metrics:obs_registry proc in
    ignore (Osim.Server.run server);
    List.iter
      (fun m -> ignore (Osim.Server.handle server m))
      (Apps.Registry.workload ~seed app benign);
    let exploit =
      Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 app
    in
    let flight_dump = ref None in
    List.iter
      (fun m ->
        match Sweeper.Orchestrator.protected_handle ~app server m with
        | `Attack r ->
          (match
             r.Sweeper.Orchestrator.a_coredump.Sweeper.Coredump.c_flight
           with
          | Some d -> flight_dump := Some d
          | None -> ());
          Printf.printf "analyzed: %s\n" (Sweeper.Report.summary r)
        | _ -> ())
      exploit.Apps.Exploits.x_messages;
    Obs.Trace.write out;
    Printf.printf "wrote %s (%d events)\n" out (Obs.Trace.event_count ());
    (match !flight_dump with
    | Some d ->
      print_endline "flight recorder at crash (oldest first):";
      print_string d
    | None -> ());
    maybe_print_metrics metrics;
    if check then check_trace out
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the attack pipeline with tracing, metrics, and the flight \
          recorder on; write a Chrome/Perfetto-openable trace")
    Term.(
      const run $ app_arg $ seed_arg $ aslr_arg $ benign_arg $ metrics_arg
      $ out $ check $ flight)

(* ------------------------------------------------------------------ *)
(* analyze: static CFG recovery + taint reachability over an app's loaded
   code, reporting the instrumentation-point reduction the taint replay
   gets from the static prefilter. *)

let analyze_cmd =
  let cfg_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "cfg-out" ] ~docv:"PATH"
          ~doc:"Write the recovered control-flow graph as Graphviz DOT.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the analysis summary as JSON.")
  in
  let absint =
    Arg.(
      value & flag
      & info [ "absint" ]
          ~doc:
            "Also report the interval abstract interpretation: the \
             proven/possible/oob/unreachable partition of every memory \
             access, per function.")
  in
  let run app seed cfg_out json absint =
    let entry = Apps.Registry.find app in
    let proc = Osim.Process.load ~seed (entry.r_compile ()) in
    let code = proc.Osim.Process.cpu.Vm.Cpu.code in
    let cfg = Static_an.Cfg.build code in
    let sa = Static_an.Staint.analyze code in
    let blocks = Static_an.Cfg.blocks cfg in
    let edges =
      Array.fold_left
        (fun acc (b : Static_an.Cfg.block) ->
          acc + List.length b.Static_an.Cfg.b_succs)
        0 blocks
    in
    let total = Static_an.Staint.total sa in
    let reduction_pct = 100. *. Static_an.Staint.reduction sa in
    (* Per-function interval summaries: partition the access pcs by the
       function symbol ranges of both images (assembler-internal ".L"
       labels are not function boundaries). *)
    let ai = proc.Osim.Process.absint in
    let funcs () =
      let syms = ref [] in
      List.iter
        (fun (img : Vm.Asm.image) ->
          Hashtbl.iter
            (fun name addr ->
              if String.length name < 2 || String.sub name 0 2 <> ".L" then
                syms := (addr, name) :: !syms)
            img.Vm.Asm.symbols)
        (Osim.Process.images proc);
      let syms = List.sort compare !syms in
      let arr = Array.of_list syms in
      let stats = Array.map (fun (a, n) -> (n, a, Array.make 4 0)) arr in
      Static_an.Absint.iter_accesses ai (fun pc cls ->
          (* index of the last symbol at or below pc *)
          let rec bsearch lo hi =
            if lo >= hi then lo - 1
            else
              let mid = (lo + hi) / 2 in
              if fst arr.(mid) <= pc then bsearch (mid + 1) hi
              else bsearch lo mid
          in
          let i = bsearch 0 (Array.length arr) in
          if i >= 0 then begin
            let _, _, counts = stats.(i) in
            let k =
              match cls with
              | Static_an.Absint.Proven _ -> 0
              | Static_an.Absint.Possible -> 1
              | Static_an.Absint.Oob -> 2
              | Static_an.Absint.Unreachable -> 3
            in
            counts.(k) <- counts.(k) + 1
          end);
      Array.to_list stats
      |> List.filter (fun (_, _, c) -> Array.exists (fun v -> v > 0) c)
    in
    (match cfg_out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Static_an.Cfg.to_dot ~name:"sweeper" cfg);
      close_out oc;
      if not json then Printf.printf "wrote %s\n" path
    | None -> ());
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              ([
                 ("app", Obs.Json.Str app);
                 ("instructions", Obs.Json.Int total);
                 ("cfg_blocks", Obs.Json.Int (Array.length blocks));
                 ("cfg_edges", Obs.Json.Int edges);
                 ( "max_stack_depth_bytes",
                   Obs.Json.Int (Static_an.Dataflow.max_stack_depth cfg) );
                 ( "taint_prop_pcs",
                   Obs.Json.Int (Static_an.Staint.prop_count sa) );
                 ( "taint_hook_pcs",
                   Obs.Json.Int (Static_an.Staint.hook_count sa) );
                 ("hook_reduction_pct", Obs.Json.Float reduction_pct);
                 ( "analysis_ms",
                   Obs.Json.Float (Static_an.Staint.analysis_ms sa) );
               ]
              @
              if not absint then []
              else
                [
                  ( "absint",
                    Obs.Json.Obj
                      [
                        ( "instructions",
                          Obs.Json.Int (Static_an.Absint.instructions ai) );
                        ( "accesses",
                          Obs.Json.Int (Static_an.Absint.accesses ai) );
                        ("proven", Obs.Json.Int (Static_an.Absint.proven ai));
                        ( "possible",
                          Obs.Json.Int (Static_an.Absint.possible ai) );
                        ("oob", Obs.Json.Int (Static_an.Absint.oob ai));
                        ( "unreachable",
                          Obs.Json.Int (Static_an.Absint.unreachable ai) );
                        ( "proven_pct",
                          Obs.Json.Float
                            (100. *. Static_an.Absint.proven_pct ai) );
                        ( "analysis_ms",
                          Obs.Json.Float (Static_an.Absint.analysis_ms ai) );
                        ( "functions",
                          Obs.Json.List
                            (List.map
                               (fun (name, base, c) ->
                                 Obs.Json.Obj
                                   [
                                     ("name", Obs.Json.Str name);
                                     ("base", Obs.Json.Int base);
                                     ("proven", Obs.Json.Int c.(0));
                                     ("possible", Obs.Json.Int c.(1));
                                     ("oob", Obs.Json.Int c.(2));
                                     ("unreachable", Obs.Json.Int c.(3));
                                   ])
                               (funcs ())) );
                      ] );
                ])))
    else begin
      Printf.printf "static analysis of %s (%d decoded instructions)\n" app
        total;
      Printf.printf "  CFG: %d blocks, %d edges%s\n" (Array.length blocks)
        edges
        (match Static_an.Cfg.unknown cfg with
        | Some _ -> " (+ unknown-target sink)"
        | None -> "");
      Printf.printf "  max static stack depth: %d bytes\n"
        (Static_an.Dataflow.max_stack_depth cfg);
      Printf.printf "  taint may-propagate set S: %d pcs\n"
        (Static_an.Staint.prop_count sa);
      Printf.printf "  taint must-hook set K:     %d pcs\n"
        (Static_an.Staint.hook_count sa);
      Printf.printf
        "  hook reduction: %.1f%% of instrumentation points pruned\n"
        reduction_pct;
      Printf.printf "  analysis time: %.2f ms\n"
        (Static_an.Staint.analysis_ms sa);
      if absint then begin
        Printf.printf
          "interval abstract interpretation (%d instructions, %d accesses)\n"
          (Static_an.Absint.instructions ai)
          (Static_an.Absint.accesses ai);
        Printf.printf
          "  proven safe: %d (%.1f%%)  possible: %d  proven-oob: %d  \
           unreachable: %d\n"
          (Static_an.Absint.proven ai)
          (100. *. Static_an.Absint.proven_pct ai)
          (Static_an.Absint.possible ai)
          (Static_an.Absint.oob ai)
          (Static_an.Absint.unreachable ai);
        Printf.printf "  analysis time: %.2f ms\n"
          (Static_an.Absint.analysis_ms ai);
        Printf.printf "  %-24s %7s %8s %5s %11s\n" "function" "proven"
          "possible" "oob" "unreachable";
        List.iter
          (fun (name, _, c) ->
            Printf.printf "  %-24s %7d %8d %5d %11d\n" name c.(0) c.(1) c.(2)
              c.(3))
          (funcs ())
      end
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static CFG recovery, taint reachability, and (with $(b,--absint)) \
          interval abstract interpretation over an application's loaded code")
    Term.(const run $ app_arg $ seed_arg $ cfg_out $ json $ absint)

let epidemic_cmd =
  let beta =
    Arg.(value & opt float 0.1 & info [ "beta" ] ~docv:"B" ~doc:"Contact rate.")
  in
  let rho =
    Arg.(
      value & opt float 1.0
      & info [ "rho" ] ~docv:"R" ~doc:"Attempt success probability.")
  in
  let alpha =
    Arg.(
      value & opt float 0.001
      & info [ "alpha" ] ~docv:"A" ~doc:"Producer deployment ratio.")
  in
  let gamma =
    Arg.(
      value & opt float 5.0
      & info [ "gamma" ] ~docv:"G" ~doc:"Community response time (s).")
  in
  let run beta rho alpha gamma =
    let p = { Epidemic.Si.beta; rho; alpha; n = 100_000.; i0 = 1. } in
    (match Epidemic.Si.t0 p with
    | Some t -> Printf.printf "first producer probed at T0 = %.3f s\n" t
    | None -> print_endline "the worm never probes a producer");
    Printf.printf "infection ratio at T0 + %.1f s: %.4f\n" gamma
      (Epidemic.Si.infection_ratio p ~gamma);
    match Epidemic.Si.max_gamma_for_ratio p ~target:0.05 with
    | Some g -> Printf.printf "response budget for <5%%: gamma <= %.2f s\n" g
    | None -> print_endline "cannot be contained below 5% at any gamma"
  in
  Cmd.v
    (Cmd.info "epidemic" ~doc:"Query the Section 6 community-defense model")
    Term.(const run $ beta $ rho $ alpha $ gamma)

(* ------------------------------------------------------------------ *)
(* Community runs: outbreak (population dynamics) and forensics
   (post-mortem infection-tree reconstruction). They share the sharded
   community setup flags. *)

let hosts_arg =
  Arg.(value & opt int 16 & info [ "hosts" ] ~docv:"N" ~doc:"Community size.")

let producers_arg =
  Arg.(
    value & opt int 2
    & info [ "producers" ] ~docv:"K" ~doc:"Hosts running full Sweeper.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "OCaml domains to run the community on. Results are identical \
           for every value -- that is the sharding oracle.")

let shards_arg =
  Arg.(
    value & opt (some int) None
    & info [ "shards" ] ~docv:"S"
        ~doc:"Shard count (defaults to $(b,--domains)).")

let topology_arg =
  Arg.(
    value & opt string "uniform"
    & info [ "topology" ] ~docv:"T"
        ~doc:
          "Host-to-shard placement: $(b,uniform), $(b,subnet:K) (whole \
           /K subnets per shard), or $(b,overlay:D) (degree-D P2P \
           overlay, scattered).")

let window_arg =
  Arg.(
    value & opt float 0.5
    & info [ "window-ms" ] ~docv:"MS"
        ~doc:"Barrier window length in simulated milliseconds.")

let rounds_arg =
  Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"R" ~doc:"Worm rounds.")

let parse_topology s =
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "uniform" ] -> Osim.Cluster.Uniform
  | [ "subnet"; k ] -> Osim.Cluster.Subnet (int_of_string k)
  | [ "overlay"; d ] -> Osim.Cluster.Overlay (int_of_string d)
  | _ ->
    raise
      (Invalid_argument
         (Printf.sprintf "unknown topology %S (uniform | subnet:K | overlay:D)"
            s))

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let outbreak_cmd =
  let forensics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "forensics-out" ] ~docv:"PATH"
          ~doc:
            "After the outbreak, reconstruct the infection tree from the \
             hosts' netlogs and write the JSON forensic report here.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Record Chrome trace events (lockstep windows, barriers, \
             message flows) across all domains and write the merged trace \
             here.")
  in
  let print_sample (s : Obs.Metrics.sample) =
    let labels =
      match s.Obs.Metrics.s_labels with
      | [] -> ""
      | l ->
        "{"
        ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l)
        ^ "}"
    in
    match s.Obs.Metrics.s_value with
    | Obs.Metrics.Sample_counter n ->
      Printf.printf "%s%s %d\n" s.Obs.Metrics.s_name labels n
    | Obs.Metrics.Sample_gauge v ->
      Printf.printf "%s%s %g\n" s.Obs.Metrics.s_name labels v
    | Obs.Metrics.Sample_histogram (_, sum, count) ->
      Printf.printf "%s%s count=%d sum=%g\n" s.Obs.Metrics.s_name labels count
        sum
  in
  let run n_hosts n_producers seed metrics domains shards topology window_ms
      rounds forensics_out trace_out =
    (match trace_out with
    | Some _ ->
      Obs.Trace.enable ();
      Obs.Trace.clear ()
    | None -> ());
    let app = Apps.Registry.find "apache1" in
    let topology = parse_topology topology in
    let module Sh = Sweeper.Defense.Sharded in
    let c =
      Sh.create ~domains ?shards ~window_ms ~topology ~app:"apache1"
        ~compile:app.r_compile ~n:n_hosts ~producers:n_producers ~seed ()
    in
    (* Attack bytes are a pure function of (seed, host, round), so the
       outbreak replays identically for any --domains. *)
    let attack_for round (h : Sweeper.Defense.host) =
      if h.Sweeper.Defense.h_infected then []
      else
        let rng =
          Random.State.make [| seed; 0xA77AC4; h.Sweeper.Defense.h_id; round |]
        in
        let guess = 0x4f770000 + (Random.State.int rng 4096 * 4096) + 0x15a0 in
        (Apps.Exploits.apache1_against ~system_guess:guess
           ~reqbuf_addr:0x08100000 ())
          .Apps.Exploits.x_messages
    in
    for round = 1 to rounds do
      Sh.post_traffic c ~traffic:(attack_for round);
      ignore (Sh.run_round c)
    done;
    let s = Sh.summary c in
    Printf.printf
      "outbreak over (%d hosts, %d shard(s) on %d domain(s), %s placement): \
       %d/%d infected\n"
      s.Sh.sm_hosts s.Sh.sm_shards s.Sh.sm_domains s.Sh.sm_topology
      s.Sh.sm_infected_hosts s.Sh.sm_hosts;
    Printf.printf
      "  %d attempts, %d crashes absorbed, %d blocked by antibodies, %d \
       producer analyses\n"
      s.Sh.sm_attempts s.Sh.sm_crashes s.Sh.sm_blocked s.Sh.sm_analyses;
    Printf.printf "  first antibody at %s (virtual)\n"
      (match s.Sh.sm_first_antibody_vtime_ms with
      | Some ms -> Printf.sprintf "%.2f ms" ms
      | None -> "never");
    Printf.printf
      "  %d barrier windows, %d cross-shard envelopes (%d deferred by \
       mailbox bounds), %d instructions\n"
      s.Sh.sm_windows s.Sh.sm_exchanged s.Sh.sm_deferred s.Sh.sm_instructions;
    (match forensics_out with
    | Some path ->
      let tree = Forensics.reconstruct (Forensics.of_sharded c) in
      write_file path
        (Obs.Json.to_string (Forensics.to_json ~app:"apache1" tree) ^ "\n");
      Printf.printf "  forensics: %d edge(s), patient zero %s; wrote %s\n"
        (List.length tree.Forensics.t_edges)
        (match tree.Forensics.t_patient_zero with
        | Some h -> Printf.sprintf "host %d" h
        | None -> "unknown")
        path
    | None -> ());
    (match trace_out with
    | Some path ->
      Obs.Trace.write path;
      Printf.printf "  trace: wrote %s (%d events)\n" path
        (Obs.Trace.event_count ())
    | None -> ());
    if metrics then List.iter print_sample (Sh.merged_metrics c)
  in
  Cmd.v
    (Cmd.info "outbreak"
       ~doc:"Mechanical worm outbreak across real hosts, domain-sharded")
    Term.(
      const run $ hosts_arg $ producers_arg $ seed_arg $ metrics_arg
      $ domains_arg $ shards_arg $ topology_arg $ window_arg $ rounds_arg
      $ forensics_out $ trace_out)

(* ------------------------------------------------------------------ *)
(* forensics: run a worm spread with full provenance, then reconstruct
   the infection tree from the netlogs alone and (optionally) assert it
   against the simulator's ground truth. *)

let forensics_cmd =
  let seeds =
    Arg.(
      value & opt int 2
      & info [ "seeds" ] ~docv:"K"
          ~doc:"External probes injected in round 1 (patient-zero seeding).")
  in
  let fanout =
    Arg.(
      value & opt int 2
      & info [ "fanout" ] ~docv:"F"
          ~doc:"Probes each infected host fires per round.")
  in
  let rho =
    Arg.(
      value & opt float 0.7
      & info [ "rho" ] ~docv:"R"
          ~doc:
            "Probe accuracy: fraction of probes carrying the victim's true \
             layout (the rest crash and feed the producers).")
  in
  let dot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot-out" ] ~docv:"PATH"
          ~doc:"Write the reconstructed infection tree as Graphviz DOT.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"PATH"
          ~doc:"Write the machine-readable forensic report as JSON.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Assert the netlog reconstruction against the simulator's \
             ground-truth infection log; exit nonzero on any divergence.")
  in
  let run n_hosts n_producers seed metrics domains shards topology window_ms
      rounds seeds fanout rho dot_out json_out check =
    let app = Apps.Registry.find "apache1" in
    let topology = parse_topology topology in
    let module Sh = Sweeper.Defense.Sharded in
    let module D = Sweeper.Defense in
    let c =
      Sh.create ~domains ?shards ~window_ms ~topology ~app:"apache1"
        ~compile:app.r_compile ~n:n_hosts ~producers:n_producers ~seed ()
    in
    let host_arr = Array.of_list (Sh.hosts c) in
    let n = Array.length host_arr in
    (* A probe aimed with the victim's true layout: lands unless an
       antibody blocks it. This is how the spread model realizes rho
       mechanically -- the worm either knows the victim's addresses or
       crashes it. *)
    let aimed (dst : D.host) =
      let proc = dst.D.h_proc in
      (Apps.Exploits.apache1_against
         ~system_guess:(Osim.Process.system_addr proc)
         ~reqbuf_addr:(Hashtbl.find proc.Osim.Process.data_symbols "reqbuf")
         ())
        .Apps.Exploits.x_messages
    in
    let wild rng =
      let guess = 0x4f770000 + (Random.State.int rng 4096 * 4096) + 0x15a0 in
      (Apps.Exploits.apache1_against ~system_guess:guess
         ~reqbuf_addr:0x08100000 ())
        .Apps.Exploits.x_messages
    in
    (* Probes for one round, keyed by victim. Built before the round runs
       (so the infected set is the previous round's), purely from
       (seed, host, round) -- identical for every --domains. *)
    let round_attempts round =
      let attempts = Hashtbl.create 64 in
      let add dst pair =
        let prev = Option.value ~default:[] (Hashtbl.find_opt attempts dst) in
        Hashtbl.replace attempts dst (pair :: prev)
      in
      if round = 1 then
        for k = 0 to seeds - 1 do
          let rng = Random.State.make [| seed; 0x5EED; k |] in
          (* The first external probe is always aimed at a consumer (a
             producer would detect even an accurate hijack), so every run
             has a patient zero to trace back to. *)
          let dst =
            if k = 0 && n > n_producers then
              host_arr.(n_producers
                        + Random.State.int rng (n - n_producers))
            else host_arr.(Random.State.int rng n)
          in
          let accurate = k = 0 || Random.State.float rng 1.0 < rho in
          let msgs = if accurate then aimed dst else wild rng in
          List.iter (fun m -> add dst.D.h_id (-1, m)) msgs
        done
      else
        Array.iter
          (fun (src : D.host) ->
            if src.D.h_infected then begin
              let rng =
                Random.State.make [| seed; 0x3072; src.D.h_id; round |]
              in
              for _k = 1 to fanout do
                let dst = host_arr.(Random.State.int rng n) in
                let accurate = Random.State.float rng 1.0 < rho in
                if dst.D.h_id <> src.D.h_id then
                  let msgs = if accurate then aimed dst else wild rng in
                  List.iter (fun m -> add dst.D.h_id (src.D.h_id, m)) msgs
              done
            end)
          host_arr;
      attempts
    in
    for round = 1 to rounds do
      let attempts = round_attempts round in
      Sh.post_traffic_from c ~traffic:(fun h ->
          List.rev
            (Option.value ~default:[] (Hashtbl.find_opt attempts h.D.h_id)));
      ignore (Sh.run_round c)
    done;
    let tree = Forensics.reconstruct (Forensics.of_sharded c) in
    print_string (Forensics.report tree);
    (match Sh.antibody_origin c with
    | Some o ->
      Printf.printf
        "antibody minted on host %d at %.2f ms (attack msg %d from %s)\n"
        o.D.ao_host o.D.ao_vtime o.D.ao_msg
        (if o.D.ao_src < 0 then "outside"
         else Printf.sprintf "host %d" o.D.ao_src)
    | None -> print_endline "no antibody was minted");
    (match dot_out with
    | Some path ->
      write_file path (Forensics.to_dot tree);
      Printf.printf "wrote %s\n" path
    | None -> ());
    (match json_out with
    | Some path ->
      write_file path
        (Obs.Json.to_string (Forensics.to_json ~app:"apache1" tree) ^ "\n");
      Printf.printf "wrote %s\n" path
    | None -> ());
    if metrics then begin
      Forensics.register_metrics tree obs_registry;
      print_string (Obs.Metrics.to_prometheus obs_registry)
    end;
    if check then
      match Forensics.check tree (Forensics.ground_truth c) with
      | Ok () ->
        Printf.printf
          "forensics check OK: %d edge(s) match the ground-truth \
           infection log\n"
          (List.length tree.Forensics.t_edges)
      | Error msg ->
        Printf.eprintf "forensics check FAILED: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "forensics"
       ~doc:
         "Run a provenance-tracked worm spread, reconstruct the infection \
          tree from the hosts' network logs, and report patient zero, \
          depth, and per-edge time-to-infection")
    Term.(
      const run $ hosts_arg $ producers_arg $ seed_arg $ metrics_arg
      $ domains_arg $ shards_arg $ topology_arg $ window_arg $ rounds_arg
      $ seeds $ fanout $ rho $ dot_out $ json_out $ check)

let main =
  Cmd.group
    (Cmd.info "sweeperctl" ~version:"1.0.0"
       ~doc:"Sweeper: lightweight end-to-end defense against fast worms")
    [ list_cmd; attack_cmd; serve_cmd; trace_cmd; analyze_cmd; epidemic_cmd;
      outbreak_cmd; forensics_cmd ]

let () = exit (Cmd.eval main)
