(* Tests for the community-defense models: the RK4 integrator, the SI ODE
   system, the stochastic outbreak simulator, and the figure sweeps. *)

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

let close ?(eps = 1e-3) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* ------------------------------------------------------------------ *)
(* ODE integrator                                                      *)
(* ------------------------------------------------------------------ *)

let test_ode_exponential () =
  (* y' = y, y(0) = 1  =>  y(1) = e *)
  let f _t y = [| y.(0) |] in
  let y = Epidemic.Ode.integrate ~f ~y0:[| 1.0 |] ~t0:0. ~t1:1. ~dt:0.01 in
  close ~eps:1e-6 "e" (exp 1.) y.(0)

let test_ode_linear () =
  (* y' = 2t  =>  y(3) = 9 *)
  let f t _ = [| 2. *. t |] in
  let y = Epidemic.Ode.integrate ~f ~y0:[| 0. |] ~t0:0. ~t1:3. ~dt:0.05 in
  close ~eps:1e-9 "t^2" 9. y.(0)

let test_ode_system () =
  (* Harmonic oscillator: x'' = -x; energy conserved. *)
  let f _t y = [| y.(1); -.y.(0) |] in
  let y = Epidemic.Ode.integrate ~f ~y0:[| 1.; 0. |] ~t0:0. ~t1:(2. *. Float.pi) ~dt:0.001 in
  close ~eps:1e-3 "full period x" 1. y.(0);
  close ~eps:1e-3 "full period v" 0. y.(1)

let test_ode_until () =
  let f _t y = [| y.(0) |] in
  match
    Epidemic.Ode.integrate_until ~f ~y0:[| 1. |] ~t0:0. ~dt:0.001 ~t_max:10.
      ~stop:(fun _ y -> y.(0) >= 2.)
  with
  | Some (t, _) -> close ~eps:1e-2 "doubling time = ln 2" (log 2.) t
  | None -> Alcotest.fail "never reached"

let test_ode_trajectory_sampling () =
  let f _t _y = [| 1. |] in
  let tr =
    Epidemic.Ode.trajectory ~f ~y0:[| 0. |] ~t0:0. ~t1:1. ~dt:0.01 ~sample_dt:0.25
  in
  check_bool "has samples" true (List.length tr >= 4);
  let t_last, y_last = List.nth tr (List.length tr - 1) in
  close ~eps:0.02 "last sample time" 1. t_last;
  close ~eps:0.02 "integrates identity" 1. y_last.(0)

(* ------------------------------------------------------------------ *)
(* SI model                                                            *)
(* ------------------------------------------------------------------ *)

let test_si_slammer_headline () =
  (* Paper Section 6.2: alpha = 0.0001, gamma = 5 s -> ~15 % infected. *)
  let p = { Epidemic.Si.slammer with alpha = 0.0001 } in
  let r = Epidemic.Si.infection_ratio p ~gamma:5. in
  check_bool "around 15%" true (r > 0.10 && r < 0.20)

let test_si_slammer_higher_alpha () =
  (* alpha = 0.001, gamma = 20 s -> all but ~5-7 %. *)
  let p = { Epidemic.Si.slammer with alpha = 0.001 } in
  let r = Epidemic.Si.infection_ratio p ~gamma:20. in
  check_bool "under 10%" true (r < 0.10)

let test_si_hitlist_gamma5_contained () =
  (* Section 6.3: gamma = 5 contains even beta = 4000 hit-list worms. *)
  List.iter
    (fun beta ->
      let p = { (Epidemic.Si.hitlist ~beta ()) with alpha = 0.0001 } in
      check_bool
        (Printf.sprintf "beta=%g contained at gamma=5" beta)
        true
        (Epidemic.Si.infection_ratio p ~gamma:5. < 0.01))
    [ 1000.; 4000. ]

let test_si_hitlist_cliffs () =
  (* Fig 7: gamma=50 much worse than gamma=30 at beta=1000;
     Fig 8: gamma=20 much worse than gamma=10 at beta=4000. *)
  let p1000 = { (Epidemic.Si.hitlist ()) with alpha = 0.0001 } in
  let r30 = Epidemic.Si.infection_ratio p1000 ~gamma:30. in
  let r50 = Epidemic.Si.infection_ratio p1000 ~gamma:50. in
  check_bool "beta=1000 cliff" true (r50 > 5. *. r30);
  let p4000 = { (Epidemic.Si.hitlist ~beta:4000. ()) with alpha = 0.0001 } in
  let r10 = Epidemic.Si.infection_ratio p4000 ~gamma:10. in
  let r20 = Epidemic.Si.infection_ratio p4000 ~gamma:20. in
  check_bool "beta=4000 cliff" true (r20 > 2. *. r10)

let test_si_monotone_in_gamma () =
  let p = { Epidemic.Si.slammer with alpha = 0.001 } in
  let prev = ref 0. in
  List.iter
    (fun g ->
      let r = Epidemic.Si.infection_ratio p ~gamma:g in
      check_bool "nondecreasing in gamma" true (r >= !prev -. 1e-9);
      prev := r)
    [ 1.; 5.; 10.; 30.; 60.; 120. ]

let test_si_monotone_in_alpha () =
  let p = Epidemic.Si.slammer in
  let prev = ref 1.1 in
  List.iter
    (fun a ->
      let r = Epidemic.Si.infection_ratio { p with alpha = a } ~gamma:10. in
      check_bool "nonincreasing in alpha" true (r <= !prev +. 1e-9);
      prev := r)
    [ 0.0001; 0.001; 0.01; 0.1 ]

let test_si_proactive_slows_worm () =
  let base = { Epidemic.Si.beta = 1000.; rho = 1.; alpha = 0.0001; n = 100_000.; i0 = 1. } in
  let unprotected = Epidemic.Si.infection_ratio base ~gamma:10. in
  let protected_ =
    Epidemic.Si.infection_ratio { base with rho = Epidemic.Si.rho_aslr } ~gamma:10.
  in
  check_bool "ASLR reduces infections" true (protected_ < unprotected /. 10.)

let test_si_no_producers () =
  let p = { Epidemic.Si.slammer with alpha = 0. } in
  close ~eps:1e-9 "everyone vulnerable falls" 1.
    (Epidemic.Si.infection_ratio p ~gamma:5.)

let test_si_t0_decreases_with_alpha () =
  let p = Epidemic.Si.slammer in
  let t_small = Epidemic.Si.t0 { p with alpha = 0.0001 } in
  let t_big = Epidemic.Si.t0 { p with alpha = 0.01 } in
  match (t_small, t_big) with
  | Some a, Some b -> check_bool "more producers, earlier detection" true (b < a)
  | _ -> Alcotest.fail "t0 should exist"

let test_si_max_gamma () =
  let p = { (Epidemic.Si.hitlist ()) with alpha = 0.0001 } in
  match Epidemic.Si.max_gamma_for_ratio p ~target:0.05 with
  | Some g ->
    check_bool "budget in the cliff region" true (g > 10. && g < 60.);
    check_bool "budget is safe" true
      (Epidemic.Si.infection_ratio p ~gamma:g <= 0.05 +. 1e-6)
  | None -> Alcotest.fail "expected a gamma budget"

(* qcheck: ratio always within [0, 1] for random parameters. *)
let prop_ratio_bounded =
  QCheck.Test.make ~name:"infection ratio bounded" ~count:40
    QCheck.(triple (float_bound_exclusive 100.) (float_bound_exclusive 0.5) (float_bound_exclusive 60.))
    (fun (beta, alpha, gamma) ->
      QCheck.assume (beta > 0.01);
      let p = { Epidemic.Si.beta; rho = 0.1; alpha; n = 10_000.; i0 = 1. } in
      let r = Epidemic.Si.infection_ratio p ~gamma in
      r >= 0. && r <= 1.)

(* ------------------------------------------------------------------ *)
(* Discrete stochastic model                                           *)
(* ------------------------------------------------------------------ *)

let test_discrete_deterministic_seed () =
  let c =
    { Epidemic.Discrete.n = 10_000; producers = 10; beta = 10.; rho = 0.01;
      gamma = 5.; dt = 0.01; t_max = 500.; seed = 3 }
  in
  let a = Epidemic.Discrete.run c in
  let b = Epidemic.Discrete.run c in
  check_int "same seed, same outcome" a.Epidemic.Discrete.o_infected
    b.Epidemic.Discrete.o_infected

let test_discrete_gamma_effect () =
  let base =
    { Epidemic.Discrete.n = 10_000; producers = 100; beta = 10.; rho = 1.;
      gamma = 1.; dt = 0.01; t_max = 500.; seed = 7 }
  in
  let fast = Epidemic.Discrete.mean_ratio ~runs:3 base in
  let slow = Epidemic.Discrete.mean_ratio ~runs:3 { base with gamma = 5. } in
  check_bool "slower response, more infections" true (slow >= fast)

let test_discrete_matches_ode_when_stable () =
  (* Away from the cliff, the stochastic mean tracks the ODE. *)
  let alpha = 0.01 and gamma = 2. and beta = 10. and rho = 1. in
  let ode =
    Epidemic.Si.infection_ratio
      { Epidemic.Si.beta; rho; alpha; n = 10_000.; i0 = 1. }
      ~gamma
  in
  let sim =
    Epidemic.Discrete.mean_ratio ~runs:5
      { Epidemic.Discrete.n = 10_000; producers = 100; beta; rho; gamma;
        dt = 0.005; t_max = 1_000.; seed = 5 }
  in
  check_bool
    (Printf.sprintf "ODE %.4f vs sim %.4f within 3x" ode sim)
    true
    (sim < 3. *. ode +. 0.01 && ode < 3. *. sim +. 0.01)

(* ------------------------------------------------------------------ *)
(* Community sweeps                                                    *)
(* ------------------------------------------------------------------ *)

let test_figures_shape () =
  let fig = Epidemic.Community.figure6 () in
  check_int "six gamma lines" 6 (List.length fig.Epidemic.Community.f_series);
  List.iter
    (fun (s : Epidemic.Community.series) ->
      check_int "seven alphas" 7 (List.length s.s_points);
      List.iter
        (fun (_, r) -> check_bool "ratio bounded" true (r >= 0. && r <= 1.))
        s.s_points)
    fig.Epidemic.Community.f_series

let test_hitlist_summary_contained () =
  List.iter
    (fun (_, _, contained) -> check_bool "gamma=5 contains" true contained)
    (Epidemic.Community.hitlist_response_summary ())

(* qcheck: the binomial sampler has the right mean in all three regimes. *)
let prop_binomial_mean =
  QCheck.Test.make ~name:"binomial mean within tolerance" ~count:20
    QCheck.(pair (int_range 1 5000) (float_bound_exclusive 1.))
    (fun (n, p) ->
      QCheck.assume (p > 0.001);
      let rng = Random.State.make [| n; int_of_float (p *. 1e6) |] in
      let runs = 300 in
      let total = ref 0 in
      for _ = 1 to runs do
        total := !total + Epidemic.Discrete.binomial rng n p
      done;
      let mean = float_of_int !total /. float_of_int runs in
      let expected = float_of_int n *. p in
      let sd = sqrt (float_of_int n *. p *. (1. -. p)) in
      Float.abs (mean -. expected) < (4. *. sd /. sqrt (float_of_int runs)) +. 1.)

let test_poisson_mean () =
  let rng = Random.State.make [| 5 |] in
  let runs = 2000 in
  let total = ref 0 in
  for _ = 1 to runs do
    total := !total + Epidemic.Discrete.poisson rng 3.0
  done;
  let mean = float_of_int !total /. float_of_int runs in
  check_bool "poisson(3) mean near 3" true (Float.abs (mean -. 3.0) < 0.2)

let test_binomial_edges () =
  let rng = Random.State.make [| 1 |] in
  check_int "p=0" 0 (Epidemic.Discrete.binomial rng 100 0.);
  check_int "p=1" 100 (Epidemic.Discrete.binomial rng 100 1.);
  check_int "n=0" 0 (Epidemic.Discrete.binomial rng 0 0.5)

let test_trajectory_of_outbreak_is_sigmoid () =
  (* The SI trajectory rises monotonically and saturates below (1-alpha)N. *)
  let p = { Epidemic.Si.slammer with alpha = 0.001 } in
  let traj =
    Epidemic.Ode.trajectory ~f:(Epidemic.Si.derivatives p) ~y0:[| 1.; 0. |]
      ~t0:0. ~t1:400. ~dt:0.05 ~sample_dt:20.
  in
  let infected = List.map (fun (_, y) -> y.(0)) traj in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-6 && monotone rest
    | _ -> true
  in
  check_bool "monotone growth" true (monotone infected);
  let final = List.nth infected (List.length infected - 1) in
  check_bool "saturates below (1-alpha)N" true
    (final <= (1. -. p.Epidemic.Si.alpha) *. p.Epidemic.Si.n +. 1.);
  check_bool "it did grow" true (final > 0.9 *. (1. -. p.Epidemic.Si.alpha) *. p.Epidemic.Si.n)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "epidemic"
    [
      ( "ode",
        [
          Alcotest.test_case "exponential" `Quick test_ode_exponential;
          Alcotest.test_case "linear" `Quick test_ode_linear;
          Alcotest.test_case "oscillator" `Quick test_ode_system;
          Alcotest.test_case "integrate until" `Quick test_ode_until;
          Alcotest.test_case "trajectory" `Quick test_ode_trajectory_sampling;
        ] );
      ( "si",
        [
          Alcotest.test_case "slammer 15%" `Quick test_si_slammer_headline;
          Alcotest.test_case "slammer alpha=0.001" `Quick test_si_slammer_higher_alpha;
          Alcotest.test_case "hitlist gamma=5 contained" `Quick
            test_si_hitlist_gamma5_contained;
          Alcotest.test_case "hitlist cliffs" `Quick test_si_hitlist_cliffs;
          Alcotest.test_case "monotone in gamma" `Quick test_si_monotone_in_gamma;
          Alcotest.test_case "monotone in alpha" `Quick test_si_monotone_in_alpha;
          Alcotest.test_case "proactive protection" `Quick test_si_proactive_slows_worm;
          Alcotest.test_case "no producers" `Quick test_si_no_producers;
          Alcotest.test_case "t0 vs alpha" `Quick test_si_t0_decreases_with_alpha;
          Alcotest.test_case "max gamma budget" `Quick test_si_max_gamma;
          qt prop_ratio_bounded;
        ] );
      ( "discrete",
        [
          Alcotest.test_case "deterministic seed" `Quick test_discrete_deterministic_seed;
          Alcotest.test_case "gamma effect" `Quick test_discrete_gamma_effect;
          Alcotest.test_case "matches ode" `Quick test_discrete_matches_ode_when_stable;
        ] );
      ( "community",
        [
          Alcotest.test_case "figure shapes" `Quick test_figures_shape;
          Alcotest.test_case "hitlist summary" `Quick test_hitlist_summary_contained;
        ] );
      ( "statistics",
        [
          qt prop_binomial_mean;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
          Alcotest.test_case "binomial edges" `Quick test_binomial_edges;
          Alcotest.test_case "sigmoid trajectory" `Quick
            test_trajectory_of_outbreak_is_sigmoid;
        ] );
    ]
