(* Tests for the MiniC compiler: lexer, parser, semantic analysis, and —
   most importantly — compile-and-run integration tests that execute small
   programs on the VM and check their results. *)

module Lexer = Minic.Lexer
module Parser = Minic.Parser
module Ast = Minic.Ast
module Sema = Minic.Sema
module Driver = Minic.Driver

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src = List.map fst (Lexer.tokenize src)

let test_lex_basic () =
  check_int "token count" 6 (List.length (toks "int x = 42;"));
  (match toks "int x = 42;" with
  | [ Lexer.INT_KW; Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.NUM 42; Lexer.SEMI;
      Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "unexpected tokens");
  match toks "0x1F" with
  | [ Lexer.NUM 31; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "hex literal"

let test_lex_comments () =
  (match toks "a // comment\n b" with
  | [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "line comment");
  match toks "a /* multi\nline */ b" with
  | [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "block comment"

let test_lex_strings_and_chars () =
  (match toks {|"a\nb" 'x' '\0'|} with
  | [ Lexer.STRING "a\nb"; Lexer.CHARLIT 'x'; Lexer.CHARLIT '\000'; Lexer.EOF ]
    -> ()
  | _ -> Alcotest.fail "string/char literals");
  match toks {|"\x41"|} with
  | [ Lexer.STRING "A"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "hex escape"

let test_lex_operators () =
  match toks "a->b == c && d <= e << 1" with
  | [ Lexer.IDENT "a"; Lexer.ARROW_T; Lexer.IDENT "b"; Lexer.EQ_T;
      Lexer.IDENT "c"; Lexer.ANDAND; Lexer.IDENT "d"; Lexer.LE_T;
      Lexer.IDENT "e"; Lexer.SHL_T; Lexer.NUM 1; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "operators"

let test_lex_errors () =
  let fails s =
    match Lexer.tokenize s with
    | exception Lexer.Lex_error _ -> true
    | _ -> false
  in
  check_bool "unterminated string" true (fails "\"abc");
  check_bool "unterminated comment" true (fails "/* abc");
  check_bool "bad char" true (fails "`")

let test_lex_line_numbers () =
  match Lexer.tokenize "a\nb\n\nc" with
  | [ (_, 1); (_, 2); (_, 4); (Lexer.EOF, _) ] -> ()
  | _ -> Alcotest.fail "line numbers"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse_expr_of src =
  match Parser.parse (Printf.sprintf "int f() { return %s; }" src) with
  | [ Ast.Gfunc { f_body = [ Ast.Sreturn (Some e) ]; _ } ] -> e
  | _ -> Alcotest.fail "unexpected parse shape"

let test_parse_precedence () =
  (match parse_expr_of "1 + 2 * 3" with
  | Ast.Bin (Ast.Add, Ast.Num 1, Ast.Bin (Ast.Mul, Ast.Num 2, Ast.Num 3)) -> ()
  | _ -> Alcotest.fail "mul binds tighter than add");
  (match parse_expr_of "1 < 2 && 3 < 4" with
  | Ast.Bin (Ast.Land, Ast.Bin (Ast.Lt, _, _), Ast.Bin (Ast.Lt, _, _)) -> ()
  | _ -> Alcotest.fail "comparison binds tighter than &&");
  match parse_expr_of "a = b = 1" with
  | Ast.Assign (Ast.Var "a", Ast.Assign (Ast.Var "b", Ast.Num 1)) -> ()
  | _ -> Alcotest.fail "assignment is right associative"

let test_parse_unary_and_postfix () =
  (match parse_expr_of "*p + a[2]" with
  | Ast.Bin (Ast.Add, Ast.Un (Ast.Deref, Ast.Var "p"),
             Ast.Index (Ast.Var "a", Ast.Num 2)) -> ()
  | _ -> Alcotest.fail "deref/index");
  (match parse_expr_of "&x" with
  | Ast.Un (Ast.Addr_of, Ast.Var "x") -> ()
  | _ -> Alcotest.fail "addr-of");
  match parse_expr_of "s->next" with
  | Ast.Arrow (Ast.Var "s", "next") -> ()
  | _ -> Alcotest.fail "arrow"

let test_parse_cast_and_sizeof () =
  (match parse_expr_of "(char*)p" with
  | Ast.Cast (Ast.Tptr Ast.Tchar, Ast.Var "p") -> ()
  | _ -> Alcotest.fail "cast");
  (match parse_expr_of "sizeof(int)" with
  | Ast.Sizeof Ast.Tint -> ()
  | _ -> Alcotest.fail "sizeof");
  (* A parenthesized expression is not a cast. *)
  match parse_expr_of "(p)" with
  | Ast.Var "p" -> ()
  | _ -> Alcotest.fail "parens"

let test_parse_ternary () =
  match parse_expr_of "a ? 1 : 2" with
  | Ast.Cond (Ast.Var "a", Ast.Num 1, Ast.Num 2) -> ()
  | _ -> Alcotest.fail "ternary"

let test_parse_stmts () =
  let src =
    {|
    int f(int n) {
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) {
        if (i == 3) { continue; }
        while (acc > 100) { break; }
        acc = acc + i;
      }
      return acc;
    }
  |}
  in
  match Parser.parse src with
  | [ Ast.Gfunc { f_params = [ (Ast.Tint, "n") ]; f_body; _ } ] ->
    check_int "three statements" 3 (List.length f_body)
  | _ -> Alcotest.fail "function shape"

let test_parse_struct_def () =
  let src =
    {|
    struct point { int x; int y; char tag; };
    int f(struct point *p) { return p->x; }
  |}
  in
  match Parser.parse src with
  | [ Ast.Gstruct { s_name = "point"; s_fields }; Ast.Gfunc _ ] ->
    check_int "fields" 3 (List.length s_fields)
  | _ -> Alcotest.fail "struct shape"

let test_parse_globals_and_arrays () =
  match Parser.parse "int g = 7; char buf[64];" with
  | [ Ast.Gvar (Ast.Tint, "g", Some (Ast.Num 7));
      Ast.Gvar (Ast.Tarray (Ast.Tchar, 64), "buf", None) ] -> ()
  | _ -> Alcotest.fail "globals"

let test_parse_errors () =
  let fails s =
    match Parser.parse s with
    | exception Parser.Parse_error _ -> true
    | _ -> false
  in
  check_bool "missing semi" true (fails "int f() { return 1 }");
  check_bool "missing brace" true (fails "int f() { return 1;");
  check_bool "bad expr" true (fails "int f() { return +; }")

(* ------------------------------------------------------------------ *)
(* Sema                                                                *)
(* ------------------------------------------------------------------ *)

let sema src = Sema.check (Parser.parse src)

let test_sema_frame_layout () =
  let tp = sema "int f() { char buf[64]; int n; n = 0; return n; }" in
  match tp.Sema.tp_funcs with
  | [ f ] -> check_int "frame = 64 + 4" 68 f.Sema.tf_frame_size
  | _ -> Alcotest.fail "one function"

let test_sema_struct_layout () =
  let tp =
    sema
      {|
      struct s { char a; int b; char c; char d; int e; };
      int f() { struct s v; return 0; }
    |}
  in
  match tp.Sema.tp_funcs with
  | [ f ] ->
    (* a@0 (pad) b@4 c@8 d@9 (pad) e@12 -> size 16 *)
    check_int "struct local frame" 16 f.Sema.tf_frame_size
  | _ -> Alcotest.fail "one function"

let test_sema_string_dedup () =
  let tp = sema {| char *f() { return "abc"; } char *g() { return "abc"; } |} in
  let strings =
    List.filter (fun d -> d.Sema.d_init = Some "abc\000") tp.Sema.tp_data
  in
  check_int "identical literals shared" 1 (List.length strings)

let test_sema_errors () =
  let fails s =
    match sema s with exception Sema.Error _ -> true | _ -> false
  in
  check_bool "unknown variable" true (fails "int f() { return nope; }");
  check_bool "unknown function" true (fails "int f() { return g(); }");
  check_bool "arity mismatch" true
    (fails "int g(int a) { return a; } int f() { return g(); }");
  check_bool "unknown field" true
    (fails "struct s { int a; }; int f(struct s *p) { return p->b; }")

(* ------------------------------------------------------------------ *)
(* Compile-and-run integration                                         *)
(* ------------------------------------------------------------------ *)

(* Compile a source with a main(), run it, return the (signed) exit code. *)
let run_main ?(fuel = 5_000_000) src =
  let compiled = Driver.compile_app ~name:"t" src in
  let proc = Osim.Process.load ~aslr:false ~seed:1 compiled in
  match Osim.Process.run ~fuel proc with
  | Vm.Cpu.Halted -> (
    match proc.Osim.Process.exit_code with
    | Some c -> Vm.Isa.to_s32 c
    | None -> Alcotest.fail "no exit code")
  | Vm.Cpu.Faulted f -> Alcotest.fail ("faulted: " ^ Vm.Event.fault_to_string f)
  | Vm.Cpu.Blocked -> Alcotest.fail "blocked"
  | Vm.Cpu.Out_of_fuel -> Alcotest.fail "out of fuel"

let test_run_return_constant () =
  check_int "constant" 42 (run_main "int main() { return 42; }")

let test_run_arith () =
  check_int "arith" 17 (run_main "int main() { return 2 + 3 * 5; }");
  check_int "parens" 25 (run_main "int main() { return (2 + 3) * 5; }");
  check_int "negative" (-7) (run_main "int main() { return 3 - 10; }");
  check_int "div" 3 (run_main "int main() { return 17 / 5; }");
  check_int "mod" 2 (run_main "int main() { return 17 % 5; }");
  check_int "bitwise" 6 (run_main "int main() { return (12 & 7) ^ 2; }");
  check_int "shifts" 20 (run_main "int main() { return (5 << 3) >> 1; }");
  check_int "unary minus" (-5) (run_main "int main() { int x = 5; return -x; }");
  check_int "bitwise not" (-1) (run_main "int main() { return ~0; }")

let test_run_locals_and_assign () =
  check_int "locals" 30
    (run_main "int main() { int a = 10; int b; b = 20; return a + b; }");
  check_int "chained assign" 14
    (run_main "int main() { int a; int b; a = b = 7; return a + b; }")

let test_run_if_else () =
  check_int "taken" 1 (run_main "int main() { if (2 > 1) { return 1; } return 0; }");
  check_int "not taken" 0
    (run_main "int main() { if (1 > 2) { return 1; } return 0; }");
  check_int "else" 5
    (run_main "int main() { if (1 > 2) { return 1; } else { return 5; } }")

let test_run_loops () =
  check_int "while sum" 45
    (run_main
       "int main() { int s = 0; int i = 0; while (i < 10) { s = s + i; i = i \
        + 1; } return s; }");
  check_int "for sum" 45
    (run_main
       "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + \
        i; } return s; }");
  check_int "break" 5
    (run_main
       "int main() { int i = 0; while (1) { if (i == 5) { break; } i = i + 1; \
        } return i; }");
  check_int "continue" 25
    (run_main
       "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { if (i % \
        2 == 0) { continue; } s = s + i; } return s; }")

let test_run_functions () =
  check_int "two args" 7
    (run_main
       "int add(int a, int b) { return a + b; } int main() { return add(3, 4); }");
  check_int "arg order" 2
    (run_main
       "int sub(int a, int b) { return a - b; } int main() { return sub(5, 3); }");
  check_int "recursion (factorial)" 120
    (run_main
       "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } \
        int main() { return fact(5); }");
  check_int "fibonacci" 55
    (run_main
       "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - \
        2); } int main() { return fib(10); }")

let test_run_pointers () =
  check_int "deref write" 9
    (run_main "int main() { int x = 1; int *p = &x; *p = 9; return x; }");
  check_int "pointer arith scales" 30
    (run_main
       "int g[3]; int main() { g[0] = 10; g[1] = 20; int *p = g; return *(p \
        + 1) + g[0]; }");
  check_int "char pointer is bytewise" 98
    (run_main
       "int main() { char buf[4]; char *p = buf; buf[0] = 'a'; *(p + 1) = \
        'b'; return buf[1]; }");
  check_int "pointer difference" 2
    (run_main "int g[5]; int main() { int *a = g; int *b = g + 2; return b - a; }");
  check_int "out param" 77
    (run_main
       "void set(int *p) { *p = 77; } int main() { int x = 0; set(&x); return x; }")

let test_run_arrays () =
  check_int "local array" 6
    (run_main
       "int main() { int a[3]; a[0] = 1; a[1] = 2; a[2] = 3; return a[0] + \
        a[1] + a[2]; }");
  check_int "global array" 55
    (run_main
       "int g[10]; int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) \
        { g[i] = i + 1; } for (int i = 0; i < 10; i = i + 1) { s = s + g[i]; \
        } return s; }");
  check_int "array decays to pointer arg" 3
    (run_main
       "int first(int *a) { return a[0]; } int main() { int v[2]; v[0] = 3; \
        return first(v); }")

let test_run_structs () =
  check_int "field access" 30
    (run_main
       "struct p { int x; int y; }; int main() { struct p v; v.x = 10; v.y = \
        20; return v.x + v.y; }");
  check_int "arrow on address" 12
    (run_main
       "struct p { int x; char t; }; int set(struct p *p) { p->x = 12; p->t \
        = 'z'; return p->t; } int main() { struct p v; set(&v); return v.x; }");
  check_int "byte field does not clobber" 0x5A
    (run_main
       "struct p { char a; char b; }; int main() { struct p v; v.a = 0x5A; \
        v.b = 0xFF; return v.a; }");
  check_int "heap struct" 21
    (run_main
       "struct node { int v; struct node *next; }; int main() { struct node \
        *n = (struct node*)malloc(8); n->v = 21; n->next = (struct node*)0; \
        return n->v; }")

let test_run_function_pointers () =
  check_int "call through int-cast pointer" 21
    (run_main
       "int triple(int x) { return 3 * x; } int main() { int f = (int)triple; \
        return f(7); }")

let test_run_logical_ops () =
  check_int "short circuit and" 0
    (run_main
       "int g; int boom() { g = 1; return 1; } int main() { int r = 0 && \
        boom(); return g + r; }");
  check_int "short circuit or" 1
    (run_main
       "int g; int boom() { g = 5; return 1; } int main() { int r = 1 || \
        boom(); return g + r; }");
  check_int "not" 1 (run_main "int main() { return !0; }");
  check_int "not nonzero" 0 (run_main "int main() { return !7; }");
  check_int "ternary" 4 (run_main "int main() { return 1 < 2 ? 4 : 9; }")

let test_run_char_semantics () =
  check_int "char literal" 65 (run_main "int main() { return 'A'; }");
  check_int "string literal chars" 108
    (run_main "int main() { char *s = \"hello\"; return s[3]; }")

let test_run_globals_init () =
  check_int "initialized global" 99 (run_main "int g = 99; int main() { return g; }");
  check_int "zeroed global" 0 (run_main "int g; int main() { return g; }")

let test_run_sizeof_struct () =
  check_int "sizeof struct" 8
    (run_main
       "struct p { int a; char b; }; int main() { return sizeof(struct p); }");
  check_int "sizeof int" 4 (run_main "int main() { return sizeof(int); }");
  check_int "sizeof char" 1 (run_main "int main() { return sizeof(char); }")

(* ------------------------------------------------------------------ *)
(* libc behavior                                                       *)
(* ------------------------------------------------------------------ *)

let test_libc_strings () =
  check_int "strlen" 5 (run_main {| int main() { return strlen("hello"); } |});
  check_int "strcpy" 5
    (run_main {| int main() { char b[16]; strcpy(b, "hello"); return strlen(b); } |});
  check_int "strcat" 8
    (run_main
       {| int main() { char b[16]; strcpy(b, "hey"); strcat(b, "there"); return strlen(b); } |});
  check_int "strcmp equal" 0 (run_main {| int main() { return strcmp("abc", "abc"); } |});
  check_bool "strcmp less" true
    (run_main {| int main() { return strcmp("abc", "abd"); } |} < 0);
  check_int "strncmp prefix" 0
    (run_main {| int main() { return strncmp("abcX", "abcY", 3); } |});
  check_int "strncpy bounded" 3
    (run_main
       {| int main() { char b[8]; memset(b, 0, 8); strncpy(b, "abcdef", 3);
          return strlen(b) > 3 ? 0 - 1 : strlen(b); } |});
  check_int "atoi" 1234 (run_main {| int main() { return atoi("1234"); } |});
  check_int "atoi negative" (-42) (run_main {| int main() { return atoi("-42xyz"); } |})

let test_libc_strchr_strstr () =
  check_int "strchr found offset" 2
    (run_main {| int main() { char *s = "hello"; return strchr(s, 'l') - s; } |});
  check_int "strchr missing" 0
    (run_main {| int main() { return (int)strchr("hello", 'z'); } |});
  check_int "strstr found offset" 2
    (run_main {| int main() { char *s = "ababc"; return strstr(s, "abc") - s; } |});
  check_int "strstr missing" 0
    (run_main {| int main() { return (int)strstr("hello", "xyz"); } |});
  check_int "strstr empty needle" 0
    (run_main {| int main() { char *s = "abc"; return strstr(s, "") - s; } |})

let test_libc_mem () =
  check_int "memset+memcpy" 21
    (run_main
       {| int main() { char a[8]; char b[8]; memset(a, 7, 8);
          memcpy(b, a, 8); return b[0] + b[3] + b[7]; } |})

let test_libc_malloc_free () =
  check_int "malloc usable" 123
    (run_main
       {| int main() { int *p = (int*)malloc(8); p[0] = 123; int v = p[0];
          free((char*)p); return v; } |});
  check_int "xcalloc zeroes" 0
    (run_main
       {| int main() { char *p = xcalloc(16, 1); int s = 0;
          for (int i = 0; i < 16; i = i + 1) { s = s + p[i]; } return s; } |});
  check_int "free(NULL) ok" 3
    (run_main {| int main() { free((char*)0); return 3; } |})

let test_libc_double_free_aborts () =
  let compiled =
    Driver.compile_app ~name:"t"
      {| int main() { char *p = malloc(8); free(p); free(p); return 0; } |}
  in
  let proc = Osim.Process.load ~aslr:false ~seed:1 compiled in
  match Osim.Process.run proc with
  | Vm.Cpu.Faulted (Vm.Event.Segv_write 4) ->
    let pc = proc.Osim.Process.cpu.Vm.Cpu.pc in
    let here = Osim.Process.describe_addr proc pc in
    check_bool "crash attributed inside free" true
      (match String.index_opt here '(' with
      | Some i -> String.length here >= i + 5 && String.sub here (i + 1) 4 = "free"
      | None -> false)
  | _ -> Alcotest.fail "expected abort in free"

let test_libc_escape () =
  check_int "safe chars unchanged" 3
    (run_main {| int main() { return strlen(rfc1738_escape_part("abc")); } |});
  check_int "unsafe chars tripled" 9
    (run_main {| int main() { return strlen(rfc1738_escape_part("~~~")); } |});
  check_int "escape starts with %" 37
    (run_main {| int main() { return rfc1738_escape_part("~")[0]; } |})

let test_intrinsic_time () =
  check_int "time advances" 1
    (run_main {| int main() { int a = _time(); int b = _time(); return b - a; } |})

let test_libc_extensions () =
  check_int "strncat bounded" 5
    (run_main
       {| int main() { char b[16]; strcpy(b, "ab"); strncat(b, "cdefg", 3);
          return strlen(b); } |});
  check_int "strrchr finds last" 3
    (run_main {| int main() { char *s = "abca"; return strrchr(s, 'a') - s; } |});
  check_int "strrchr missing" 0
    (run_main {| int main() { return (int)strrchr("abc", 'z'); } |});
  check_int "memcmp equal" 0
    (run_main {| int main() { return memcmp("abc", "abc", 3); } |});
  check_bool "memcmp differs" true
    (run_main {| int main() { return memcmp("abc", "abd", 3); } |} < 0);
  check_int "strdup copies" 0
    (run_main
       {| int main() { char *d = strdup("hello"); return strcmp(d, "hello"); } |});
  check_int "tolower" 97 (run_main {| int main() { return tolower('A'); } |});
  check_int "tolower idempotent" 97 (run_main {| int main() { return tolower('a'); } |});
  check_int "toupper" 90 (run_main {| int main() { return toupper('z'); } |});
  check_int "isdigit yes" 1 (run_main {| int main() { return isdigit('7'); } |});
  check_int "isdigit no" 0 (run_main {| int main() { return isdigit('x'); } |});
  check_int "isalpha" 1 (run_main {| int main() { return isalpha('q'); } |});
  check_int "isspace" 1 (run_main {| int main() { return isspace(' '); } |});
  check_int "itoa roundtrip" 0
    (run_main
       {| int main() { char b[16]; itoa(12345, b); return strcmp(b, "12345"); } |});
  check_int "itoa negative" 0
    (run_main
       {| int main() { char b[16]; itoa(0 - 42, b); return strcmp(b, "-42"); } |});
  check_int "itoa zero" 0
    (run_main {| int main() { char b[4]; itoa(0, b); return strcmp(b, "0"); } |});
  check_int "itoa atoi roundtrip" 987
    (run_main {| int main() { char b[16]; itoa(987, b); return atoi(b); } |})

(* ------------------------------------------------------------------ *)
(* Language semantics corners                                          *)
(* ------------------------------------------------------------------ *)

let test_arg_evaluation_order () =
  (* Arguments are evaluated right-to-left (documented calling-convention
     behaviour, as on many C compilers). *)
  check_int "right to left" 21
    (run_main
       "int g; int bump(int v) { g = g * 10 + v; return v; } int pair(int a, \
        int b) { return g; } int main() { g = 0; return pair(bump(1), \
        bump(2)); }")

let test_nested_call_expressions () =
  check_int "calls as arguments" 14
    (run_main
       "int dbl(int x) { return 2 * x; } int add(int a, int b) { return a + \
        b; } int main() { return add(dbl(3), dbl(add(1, 3))); }")

let test_deep_recursion_within_stack () =
  check_int "500 frames fit" 125250
    (run_main
       "int sum(int n) { if (n == 0) { return 0; } return n + sum(n - 1); } \
        int main() { return sum(500); }")

let test_negative_division_semantics () =
  (* Truncated (round-toward-zero) division and matching remainder. *)
  check_int "neg div" (-3) (run_main "int main() { return (0 - 7) / 2; }");
  check_int "neg mod" (-1) (run_main "int main() { return (0 - 7) % 2; }")

let test_char_is_unsigned_byte () =
  (* Loadb zero-extends: a 0xFF byte reads back as 255, not -1. *)
  check_int "unsigned char semantics" 255
    (run_main
       "int main() { char c = (char)0xFF; return c; }")

let test_pointer_comparisons () =
  check_int "pointer order" 1
    (run_main "int g[4]; int main() { int *a = g; int *b = g + 2; return a < b; }")

let test_global_negative_init () =
  check_int "negative global" (-5) (run_main "int g = -5; int main() { return g; }")
    [@warning "-26"]

(* qcheck: the compiler computes the same arithmetic OCaml does. *)
let prop_arith_matches_ocaml =
  QCheck.Test.make ~name:"compiled arithmetic matches host semantics" ~count:50
    QCheck.(triple (int_bound 10000) (int_bound 10000) (int_bound 3))
    (fun (a, b, op) ->
      let ops = [| "+"; "-"; "*"; "/" |] in
      let b = if op = 3 then b + 1 else b in
      let expected =
        match op with
        | 0 -> a + b
        | 1 -> a - b
        | 2 -> Vm.Isa.to_s32 (Vm.Isa.to_u32 (a * b))
        | _ -> a / b
      in
      let src = Printf.sprintf "int main() { return %d %s %d; }" a ops.(op) b in
      run_main src = expected)

let prop_strlen_matches =
  QCheck.Test.make ~name:"compiled strlen = String.length" ~count:25
    QCheck.(string_gen_of_size (Gen.int_bound 40) Gen.printable)
    (fun s ->
      QCheck.assume (not (String.contains s '"'));
      QCheck.assume (not (String.contains s '\\'));
      QCheck.assume (not (String.contains s '\000'));
      run_main (Printf.sprintf {| int main() { return strlen("%s"); } |} s)
      = String.length s)

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "strings/chars" `Quick test_lex_strings_and_chars;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "errors" `Quick test_lex_errors;
          Alcotest.test_case "line numbers" `Quick test_lex_line_numbers;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "unary/postfix" `Quick test_parse_unary_and_postfix;
          Alcotest.test_case "cast/sizeof" `Quick test_parse_cast_and_sizeof;
          Alcotest.test_case "ternary" `Quick test_parse_ternary;
          Alcotest.test_case "statements" `Quick test_parse_stmts;
          Alcotest.test_case "struct def" `Quick test_parse_struct_def;
          Alcotest.test_case "globals/arrays" `Quick test_parse_globals_and_arrays;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "sema",
        [
          Alcotest.test_case "frame layout" `Quick test_sema_frame_layout;
          Alcotest.test_case "struct layout" `Quick test_sema_struct_layout;
          Alcotest.test_case "string dedup" `Quick test_sema_string_dedup;
          Alcotest.test_case "errors" `Quick test_sema_errors;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "argument order" `Quick test_arg_evaluation_order;
          Alcotest.test_case "nested calls" `Quick test_nested_call_expressions;
          Alcotest.test_case "deep recursion" `Quick test_deep_recursion_within_stack;
          Alcotest.test_case "negative division" `Quick
            test_negative_division_semantics;
          Alcotest.test_case "unsigned char" `Quick test_char_is_unsigned_byte;
          Alcotest.test_case "pointer comparisons" `Quick test_pointer_comparisons;
          Alcotest.test_case "negative global init" `Quick test_global_negative_init;
        ] );
      ( "run",
        [
          Alcotest.test_case "constant" `Quick test_run_return_constant;
          Alcotest.test_case "arith" `Quick test_run_arith;
          Alcotest.test_case "locals/assign" `Quick test_run_locals_and_assign;
          Alcotest.test_case "if/else" `Quick test_run_if_else;
          Alcotest.test_case "loops" `Quick test_run_loops;
          Alcotest.test_case "functions" `Quick test_run_functions;
          Alcotest.test_case "pointers" `Quick test_run_pointers;
          Alcotest.test_case "arrays" `Quick test_run_arrays;
          Alcotest.test_case "structs" `Quick test_run_structs;
          Alcotest.test_case "function pointers" `Quick test_run_function_pointers;
          Alcotest.test_case "logical ops" `Quick test_run_logical_ops;
          Alcotest.test_case "char semantics" `Quick test_run_char_semantics;
          Alcotest.test_case "globals init" `Quick test_run_globals_init;
          Alcotest.test_case "sizeof" `Quick test_run_sizeof_struct;
          qt prop_arith_matches_ocaml;
        ] );
      ( "libc",
        [
          Alcotest.test_case "strings" `Quick test_libc_strings;
          Alcotest.test_case "strchr/strstr" `Quick test_libc_strchr_strstr;
          Alcotest.test_case "mem ops" `Quick test_libc_mem;
          Alcotest.test_case "malloc/free" `Quick test_libc_malloc_free;
          Alcotest.test_case "double free aborts" `Quick test_libc_double_free_aborts;
          Alcotest.test_case "escape" `Quick test_libc_escape;
          Alcotest.test_case "time" `Quick test_intrinsic_time;
          Alcotest.test_case "extensions" `Quick test_libc_extensions;
          qt prop_strlen_matches;
        ] );
    ]
