(* Tests for the victim applications: each compiles, serves its benign
   workload correctly, and crashes (or is compromised) in exactly the way
   its planted vulnerability dictates. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let boot ?(aslr = true) ?(seed = 42) key =
  let entry = Apps.Registry.find key in
  let proc = Osim.Process.load ~aslr ~seed (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  (match Osim.Server.run server with
  | Osim.Server.Idle -> ()
  | _ -> Alcotest.fail (key ^ ": server did not boot to idle"));
  (proc, server)

let crash_fn proc =
  let pc = proc.Osim.Process.cpu.Vm.Cpu.pc in
  let s = Osim.Process.describe_addr proc pc in
  match String.index_opt s '(' with
  | Some i ->
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let stop =
      match (String.index_opt rest '+', String.index_opt rest ')') with
      | Some a, Some b -> min a b
      | Some a, None -> a
      | None, Some b -> b
      | None, None -> String.length rest
    in
    String.sub rest 0 stop
  | None -> s

(* ------------------------------------------------------------------ *)
(* Benign service                                                      *)
(* ------------------------------------------------------------------ *)

let test_benign_service key () =
  let proc, server = boot key in
  let n = 30 in
  List.iter
    (fun m ->
      match Osim.Server.handle server m with
      | `Served _ -> ()
      | `Crashed (_, f) ->
        Alcotest.fail
          (Printf.sprintf "%s crashed on benign input: %s" key
             (Vm.Event.fault_to_string f))
      | _ -> Alcotest.fail (key ^ ": benign request not served"))
    (Apps.Registry.workload key n);
  check_int "one response per request" n
    (List.length (Osim.Process.committed_outputs proc))

(* ------------------------------------------------------------------ *)
(* Exploit behaviour under ASLR: crash at the canonical sites          *)
(* ------------------------------------------------------------------ *)

let fire key server =
  let exploit = Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 key in
  let last = ref `None in
  List.iter
    (fun m ->
      match Osim.Server.handle server m with
      | `Crashed (_, f) -> last := `Crashed f
      | `Infected (_, c) -> last := `Infected c
      | `Served _ -> ()
      | _ -> ())
    exploit.Apps.Exploits.x_messages;
  !last

let test_apache1_crash () =
  let proc, server = boot "apache1" in
  (match fire "apache1" server with
  | `Crashed (Vm.Event.Exec_violation _) -> ()
  | _ -> Alcotest.fail "expected exec violation from smashed return");
  check Alcotest.string "faulting ret in try_alias_list" "try_alias_list"
    (crash_fn proc)

let test_apache2_crash () =
  let proc, server = boot "apache2" in
  (match fire "apache2" server with
  | `Crashed (Vm.Event.Segv_read a) -> check_bool "NULL page" true (a < 0x10000)
  | _ -> Alcotest.fail "expected NULL read");
  check Alcotest.string "faulting load in is_ip" "is_ip" (crash_fn proc)

let test_cvs_crash () =
  let proc, server = boot "cvs" in
  (match fire "cvs" server with
  | `Crashed (Vm.Event.Segv_write 4) -> ()
  | _ -> Alcotest.fail "expected abort in free");
  check Alcotest.string "crash in lib free" "free" (crash_fn proc)

let test_cvs_single_message_harmless () =
  let _, server = boot "cvs" in
  (* The empty dirswitch alone (cur_dir = NULL) must not crash. *)
  match Osim.Server.handle server "Directory " with
  | `Served _ -> ()
  | _ -> Alcotest.fail "empty dirswitch without state should be harmless"

let test_squid_crash () =
  let proc, server = boot "squid" in
  (match fire "squid" server with
  | `Crashed (Vm.Event.Segv_write _) -> ()
  | _ -> Alcotest.fail "expected wild store");
  check Alcotest.string "crash inside strcat" "strcat" (crash_fn proc);
  (* And the heap metadata was trampled on the way out. *)
  check_bool "heap inconsistent" false
    (Vm.Alloc.heap_consistent proc.Osim.Process.mem proc.Osim.Process.layout)

let test_squid_short_ftp_url_safe () =
  let _, server = boot "squid" in
  match Osim.Server.handle server "GET ftp://tilde~user@host/x\n" with
  | `Served _ -> ()
  | _ -> Alcotest.fail "short escaped URL must be served"

(* ------------------------------------------------------------------ *)
(* Infection without ASLR (the worm's view)                            *)
(* ------------------------------------------------------------------ *)

let test_apache1_infection_no_aslr () =
  let proc, server = boot ~aslr:false "apache1" in
  let system = Osim.Process.system_addr proc in
  check_bool "address encodable" true (Apps.Exploits.encodable system);
  let reqbuf = Hashtbl.find proc.Osim.Process.data_symbols "reqbuf" in
  let exploit =
    Apps.Exploits.apache1_against ~worm_body:"launch-the-worm"
      ~system_guess:system ~reqbuf_addr:reqbuf ()
  in
  match
    List.map (Osim.Server.handle server) exploit.Apps.Exploits.x_messages
  with
  | [ `Infected (_, cmd) ] ->
    check Alcotest.string "worm body executed" "launch-the-worm" cmd
  | _ -> Alcotest.fail "expected infection with the exact system address"

let test_apache1_wrong_guess_crashes () =
  let _, server = boot ~aslr:true ~seed:123 "apache1" in
  let exploit =
    Apps.Exploits.apache1_against ~system_guess:0x4f771234
      ~reqbuf_addr:0x08100000 ()
  in
  match
    List.map (Osim.Server.handle server) exploit.Apps.Exploits.x_messages
  with
  | [ `Crashed _ ] -> ()
  | [ `Infected _ ] ->
    Alcotest.fail "a fixed guess should not beat randomization (seed 123)"
  | _ -> Alcotest.fail "expected crash"

(* ------------------------------------------------------------------ *)
(* Exploit construction helpers                                        *)
(* ------------------------------------------------------------------ *)

let test_encodable () =
  check_bool "nul byte" false (Apps.Exploits.encodable 0x00112233);
  check_bool "newline byte" false (Apps.Exploits.encodable 0x0a112233);
  check_bool "clean" true (Apps.Exploits.encodable 0x4f771122)

let test_variants_shapes () =
  List.iter
    (fun key ->
      let vs = Apps.Exploits.variants ~system_guess:1 ~cmd_ptr:1 key in
      check_bool (key ^ " has variants") true (List.length vs >= 3);
      let payloads = List.map (fun v -> v.Apps.Exploits.x_messages) vs in
      check_bool (key ^ " variants differ") true
        (List.length (List.sort_uniq compare payloads) = List.length payloads))
    [ "apache1"; "apache2"; "cvs"; "squid" ]

let test_workloads_are_deterministic () =
  List.iter
    (fun key ->
      check_bool (key ^ " deterministic") true
        (Apps.Registry.workload ~seed:3 key 10 = Apps.Registry.workload ~seed:3 key 10);
      check_bool (key ^ " seed-sensitive") true
        (Apps.Registry.workload ~seed:3 key 10 <> Apps.Registry.workload ~seed:4 key 10))
    [ "apache1"; "cvs"; "squid" ]

let test_registry_complete () =
  check_int "four applications" 4 (List.length Apps.Registry.all);
  List.iter
    (fun (e : Apps.Registry.entry) ->
      check_bool (e.r_key ^ " has CVE") true (String.length e.r_cve > 0);
      (* Compiles and exposes the request buffer symbol. *)
      let proc = Osim.Process.load ~seed:1 (e.r_compile ()) in
      check_bool
        (e.r_key ^ " exposes reqbuf")
        true
        (Hashtbl.mem proc.Osim.Process.data_symbols e.r_reqbuf_symbol))
    Apps.Registry.all

(* qcheck: no benign workload of any seed crashes any server. *)
let prop_benign_never_crashes =
  QCheck.Test.make ~name:"benign traffic never crashes any app" ~count:8
    QCheck.(pair (int_bound 1000) (int_bound 3))
    (fun (seed, which) ->
      let key = List.nth [ "apache1"; "apache2"; "cvs"; "squid" ] which in
      let _, server = boot ~seed key in
      List.for_all
        (fun m ->
          match Osim.Server.handle server m with `Served _ -> true | _ -> false)
        (Apps.Registry.workload ~seed key 15))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "apps"
    [
      ( "benign",
        [
          Alcotest.test_case "apache1" `Quick (test_benign_service "apache1");
          Alcotest.test_case "apache2" `Quick (test_benign_service "apache2");
          Alcotest.test_case "cvs" `Quick (test_benign_service "cvs");
          Alcotest.test_case "squid" `Quick (test_benign_service "squid");
          qt prop_benign_never_crashes;
        ] );
      ( "exploits",
        [
          Alcotest.test_case "apache1 smashes the stack" `Quick test_apache1_crash;
          Alcotest.test_case "apache2 derefs NULL" `Quick test_apache2_crash;
          Alcotest.test_case "cvs double-frees" `Quick test_cvs_crash;
          Alcotest.test_case "cvs needs state" `Quick test_cvs_single_message_harmless;
          Alcotest.test_case "squid overflows the heap" `Quick test_squid_crash;
          Alcotest.test_case "squid short url safe" `Quick test_squid_short_ftp_url_safe;
          Alcotest.test_case "apache1 infects without aslr" `Quick
            test_apache1_infection_no_aslr;
          Alcotest.test_case "wrong guess crashes" `Quick
            test_apache1_wrong_guess_crashes;
        ] );
      ( "tooling",
        [
          Alcotest.test_case "encodable" `Quick test_encodable;
          Alcotest.test_case "variants" `Quick test_variants_shapes;
          Alcotest.test_case "workload determinism" `Quick
            test_workloads_are_deterministic;
          Alcotest.test_case "registry" `Quick test_registry_complete;
        ] );
    ]
