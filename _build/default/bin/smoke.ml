(* Developer smoke check: run the full Sweeper defense process against each
   of the four exploits and print the Table 2 / Table 3 style results. *)

let run_app key =
  Printf.printf "\n########## %s ##########\n" key;
  let entry = Apps.Registry.find key in
  let proc = Osim.Process.load ~aslr:true ~seed:42 (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  (* Benign traffic first so there is state and log history. *)
  let benign = Apps.Registry.workload key 20 in
  List.iter (fun m -> ignore (Osim.Server.handle server m)) benign;
  let before_outputs = List.length (Osim.Process.committed_outputs proc) in
  (* Attack. *)
  let exploit = Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 key in
  let reports = ref [] in
  List.iter
    (fun m ->
      match Sweeper.Orchestrator.protected_handle ~app:key server m with
      | `Served _ -> Printf.printf "  (exploit message served: state buildup)\n"
      | `Attack r ->
        reports := r :: !reports;
        Sweeper.Report.print_table2 proc r;
        Sweeper.Report.print_table3_header ();
        Sweeper.Report.print_table3_row r
      | `Filtered f -> Printf.printf "  filtered by %s\n" f
      | `Blocked_by_vsef d ->
        Printf.printf "  VSEF blocked: %s\n" (Sweeper.Detection.to_string d)
      | `Stopped -> Printf.printf "  stopped?!\n"
      | `Compromised -> Printf.printf "  COMPROMISED?!\n")
    exploit.Apps.Exploits.x_messages;
  (* Post-recovery: the server must still answer benign traffic. *)
  let after = Apps.Registry.workload ~seed:9 key 5 in
  List.iter
    (fun m ->
      match Osim.Server.handle server m with
      | `Served _ -> ()
      | _ -> Printf.printf "  POST-RECOVERY FAILURE on benign input\n")
    after;
  Printf.printf "  post-recovery: %d served; outputs %d -> %d\n"
    (List.length after) before_outputs
    (List.length (Osim.Process.committed_outputs proc));
  (* Re-send the exploit: the antibody must stop it now. *)
  List.iter
    (fun m ->
      match Sweeper.Orchestrator.protected_handle ~app:key server m with
      | `Filtered f -> Printf.printf "  re-attack: filtered by %s\n" f
      | `Blocked_by_vsef d ->
        Printf.printf "  re-attack: VSEF blocked (%s)\n" (Sweeper.Detection.to_string d)
      | `Served _ -> Printf.printf "  re-attack: served (stateful buildup)\n"
      | `Attack _ -> Printf.printf "  re-attack: CRASHED AGAIN (antibody failed)\n"
      | `Stopped | `Compromised -> Printf.printf "  re-attack: bad status\n")
    exploit.Apps.Exploits.x_messages

let () = List.iter run_app [ "apache1"; "apache2"; "cvs"; "squid" ]
