lib/osim/server.ml: Checkpoint Option Process Vm
