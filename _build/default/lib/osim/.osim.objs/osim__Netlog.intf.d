lib/osim/netlog.mli: Int Set
