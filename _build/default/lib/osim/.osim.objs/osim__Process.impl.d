lib/osim/process.ml: Array Cpu Event Hashtbl List Memory Minic Netlog Random String Sysno Vm
