lib/osim/checkpoint.ml: List Netlog Process Unix Vm
