lib/osim/server.mli: Checkpoint Process Vm
