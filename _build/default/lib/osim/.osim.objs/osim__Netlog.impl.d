lib/osim/netlog.ml: Array Int List Set
