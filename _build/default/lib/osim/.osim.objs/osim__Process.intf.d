lib/osim/process.mli: Hashtbl Minic Netlog Random Vm
