lib/osim/checkpoint.mli: Process Vm
