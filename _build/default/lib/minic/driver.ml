(** Front door of the compiler: source text in, relocatable unit out. *)

exception Compile_error of string

(** Compile one MiniC translation unit. [extern] declares functions
    resolved at load time from another unit (see {!Libc.signatures}). *)
let compile ~name ?(extern = []) src : Codegen.compiled =
  try
    let ast = Parser.parse src in
    let tp = Sema.check ~extern_funcs:extern ast in
    Codegen.gen ~name tp
  with
  | Lexer.Lex_error (msg, line) ->
    raise (Compile_error (Printf.sprintf "%s: lex error line %d: %s" name line msg))
  | Parser.Parse_error (msg, line) ->
    raise
      (Compile_error (Printf.sprintf "%s: parse error line %d: %s" name line msg))
  | Sema.Error msg ->
    raise (Compile_error (Printf.sprintf "%s: %s" name msg))

let libc_cache : Codegen.compiled option ref = ref None

(** The compiled C library (memoized — it is the same for every process;
    randomization happens at load time, not compile time). *)
let libc () =
  match !libc_cache with
  | Some c -> c
  | None ->
    let c = compile ~name:"libc" Libc.source in
    libc_cache := Some c;
    c

(** Compile an application against the libc interface. *)
let compile_app ~name src = compile ~name ~extern:Libc.signatures src
