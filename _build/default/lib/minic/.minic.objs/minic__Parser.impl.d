lib/minic/parser.ml: Ast Lexer List Option
