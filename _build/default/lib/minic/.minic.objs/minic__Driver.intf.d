lib/minic/driver.mli: Ast Codegen
