lib/minic/codegen.ml: Ast List Option Printf Sema Vm
