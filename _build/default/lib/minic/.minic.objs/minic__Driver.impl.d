lib/minic/driver.ml: Codegen Lexer Libc Parser Printf Sema
