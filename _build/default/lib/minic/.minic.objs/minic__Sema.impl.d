lib/minic/sema.ml: Ast Bytes Char Hashtbl Int32 List Option Printf String
