lib/minic/libc.ml: Ast
