(** Recursive-descent parser for MiniC. *)

open Ast

exception Parse_error of string * int

type state = {
  mutable toks : (Lexer.token * int) list;
}

let peek st =
  match st.toks with
  | (t, _) :: _ -> t
  | [] -> Lexer.EOF

let line st =
  match st.toks with
  | (_, l) :: _ -> l
  | [] -> 0

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let fail st msg = raise (Parse_error (msg, line st))

let expect st tok what =
  if peek st = tok then advance st else fail st ("expected " ^ what)

let expect_ident st what =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | _ -> fail st ("expected identifier (" ^ what ^ ")")

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

(* Base type: int / char / void / struct S. *)
let parse_base_ty st =
  match peek st with
  | Lexer.INT_KW -> advance st; Tint
  | Lexer.CHAR_KW -> advance st; Tchar
  | Lexer.VOID_KW -> advance st; Tvoid
  | Lexer.STRUCT_KW ->
    advance st;
    let name = expect_ident st "struct name" in
    Tstruct name
  | _ -> fail st "expected type"

let looks_like_type st =
  match peek st with
  | Lexer.INT_KW | Lexer.CHAR_KW | Lexer.VOID_KW | Lexer.STRUCT_KW -> true
  | _ -> false

(* Pointer stars after a base type. *)
let rec parse_stars st ty =
  if peek st = Lexer.STAR then begin
    advance st;
    parse_stars st (Tptr ty)
  end
  else ty

let parse_ty st = parse_stars st (parse_base_ty st)

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_cond_expr st in
  match peek st with
  | Lexer.ASSIGN ->
    advance st;
    let rhs = parse_assign st in
    Assign (lhs, rhs)
  | _ -> lhs

and parse_cond_expr st =
  let c = parse_lor st in
  match peek st with
  | Lexer.QUESTION ->
    advance st;
    let t = parse_expr st in
    expect st Lexer.COLON "':'";
    let e = parse_cond_expr st in
    Cond (c, t, e)
  | _ -> c

and parse_lor st =
  let rec loop acc =
    match peek st with
    | Lexer.OROR ->
      advance st;
      loop (Bin (Lor, acc, parse_land st))
    | _ -> acc
  in
  loop (parse_land st)

and parse_land st =
  let rec loop acc =
    match peek st with
    | Lexer.ANDAND ->
      advance st;
      loop (Bin (Land, acc, parse_bitor st))
    | _ -> acc
  in
  loop (parse_bitor st)

and parse_bitor st =
  let rec loop acc =
    match peek st with
    | Lexer.PIPE ->
      advance st;
      loop (Bin (Bor, acc, parse_bitxor st))
    | _ -> acc
  in
  loop (parse_bitxor st)

and parse_bitxor st =
  let rec loop acc =
    match peek st with
    | Lexer.CARET ->
      advance st;
      loop (Bin (Bxor, acc, parse_bitand st))
    | _ -> acc
  in
  loop (parse_bitand st)

and parse_bitand st =
  let rec loop acc =
    match peek st with
    | Lexer.AMP ->
      advance st;
      loop (Bin (Band, acc, parse_equality st))
    | _ -> acc
  in
  loop (parse_equality st)

and parse_equality st =
  let rec loop acc =
    match peek st with
    | Lexer.EQ_T ->
      advance st;
      loop (Bin (Eq, acc, parse_relational st))
    | Lexer.NE_T ->
      advance st;
      loop (Bin (Ne, acc, parse_relational st))
    | _ -> acc
  in
  loop (parse_relational st)

and parse_relational st =
  let rec loop acc =
    match peek st with
    | Lexer.LT_T -> advance st; loop (Bin (Lt, acc, parse_shift st))
    | Lexer.LE_T -> advance st; loop (Bin (Le, acc, parse_shift st))
    | Lexer.GT_T -> advance st; loop (Bin (Gt, acc, parse_shift st))
    | Lexer.GE_T -> advance st; loop (Bin (Ge, acc, parse_shift st))
    | _ -> acc
  in
  loop (parse_shift st)

and parse_shift st =
  let rec loop acc =
    match peek st with
    | Lexer.SHL_T -> advance st; loop (Bin (Shl, acc, parse_additive st))
    | Lexer.SHR_T -> advance st; loop (Bin (Shr, acc, parse_additive st))
    | _ -> acc
  in
  loop (parse_additive st)

and parse_additive st =
  let rec loop acc =
    match peek st with
    | Lexer.PLUS -> advance st; loop (Bin (Add, acc, parse_multiplicative st))
    | Lexer.MINUS -> advance st; loop (Bin (Sub, acc, parse_multiplicative st))
    | _ -> acc
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop acc =
    match peek st with
    | Lexer.STAR -> advance st; loop (Bin (Mul, acc, parse_unary st))
    | Lexer.SLASH -> advance st; loop (Bin (Div, acc, parse_unary st))
    | Lexer.PERCENT -> advance st; loop (Bin (Mod, acc, parse_unary st))
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS -> advance st; Un (Neg, parse_unary st)
  | Lexer.BANG -> advance st; Un (Lnot, parse_unary st)
  | Lexer.TILDE -> advance st; Un (Bnot, parse_unary st)
  | Lexer.AMP -> advance st; Un (Addr_of, parse_unary st)
  | Lexer.STAR -> advance st; Un (Deref, parse_unary st)
  | Lexer.SIZEOF ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let ty = parse_ty st in
    expect st Lexer.RPAREN "')'";
    Sizeof ty
  | Lexer.LPAREN when looks_like_type_cast st -> (
    advance st;
    let ty = parse_ty st in
    expect st Lexer.RPAREN "')'";
    Cast (ty, parse_unary st))
  | _ -> parse_postfix st

(* A '(' begins a cast only if followed by a type keyword. *)
and looks_like_type_cast st =
  match st.toks with
  | (Lexer.LPAREN, _) :: (t, _) :: _ -> (
    match t with
    | Lexer.INT_KW | Lexer.CHAR_KW | Lexer.VOID_KW | Lexer.STRUCT_KW -> true
    | _ -> false)
  | _ -> false

and parse_postfix st =
  let rec loop acc =
    match peek st with
    | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Lexer.RBRACKET "']'";
      loop (Index (acc, idx))
    | Lexer.DOT ->
      advance st;
      let f = expect_ident st "field" in
      loop (Field (acc, f))
    | Lexer.ARROW_T ->
      advance st;
      let f = expect_ident st "field" in
      loop (Arrow (acc, f))
    | Lexer.LPAREN ->
      (* Call through an arbitrary expression (function pointer). *)
      advance st;
      let args = parse_args st in
      loop (Call_ptr (acc, args))
    | _ -> acc
  in
  loop (parse_primary st)

and parse_args st =
  if peek st = Lexer.RPAREN then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let e = parse_expr st in
      match peek st with
      | Lexer.COMMA ->
        advance st;
        loop (e :: acc)
      | Lexer.RPAREN ->
        advance st;
        List.rev (e :: acc)
      | _ -> fail st "expected ',' or ')' in arguments"
    in
    loop []

and parse_primary st =
  match peek st with
  | Lexer.NUM n -> advance st; Num n
  | Lexer.CHARLIT c -> advance st; Chr c
  | Lexer.STRING s ->
    advance st;
    (* Adjacent string literals concatenate, as in C. *)
    let rec more acc =
      match peek st with
      | Lexer.STRING s2 ->
        advance st;
        more (acc ^ s2)
      | _ -> acc
    in
    Str (more s)
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.LPAREN ->
      advance st;
      Call (name, parse_args st)
    | _ -> Var name)
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN "')'";
    e
  | _ -> fail st "expected expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* Declarator: stars, name, optional [N] suffixes. *)
let parse_declarator st base =
  let ty = parse_stars st base in
  let name = expect_ident st "variable name" in
  let rec dims acc =
    if peek st = Lexer.LBRACKET then begin
      advance st;
      match peek st with
      | Lexer.NUM n ->
        advance st;
        expect st Lexer.RBRACKET "']'";
        dims (n :: acc)
      | _ -> fail st "expected array size"
    end
    else acc
  in
  let sizes = dims [] in
  let ty = List.fold_left (fun t n -> Tarray (t, n)) ty sizes in
  (ty, name)

let rec parse_stmt st =
  match peek st with
  | Lexer.LBRACE ->
    advance st;
    Sblock (parse_block st)
  | Lexer.IF ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let cond = parse_expr st in
    expect st Lexer.RPAREN "')'";
    let then_ = parse_stmt_as_block st in
    let else_ =
      if peek st = Lexer.ELSE then begin
        advance st;
        parse_stmt_as_block st
      end
      else []
    in
    Sif (cond, then_, else_)
  | Lexer.WHILE ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let cond = parse_expr st in
    expect st Lexer.RPAREN "')'";
    Swhile (cond, parse_stmt_as_block st)
  | Lexer.FOR ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let init =
      if peek st = Lexer.SEMI then begin
        advance st;
        None
      end
      else begin
        let s = parse_simple_stmt st in
        expect st Lexer.SEMI "';'";
        Some s
      end
    in
    let cond =
      if peek st = Lexer.SEMI then None else Some (parse_expr st)
    in
    expect st Lexer.SEMI "';'";
    let step =
      if peek st = Lexer.RPAREN then None else Some (parse_expr st)
    in
    expect st Lexer.RPAREN "')'";
    Sfor (init, cond, step, parse_stmt_as_block st)
  | Lexer.RETURN ->
    advance st;
    if peek st = Lexer.SEMI then begin
      advance st;
      Sreturn None
    end
    else begin
      let e = parse_expr st in
      expect st Lexer.SEMI "';'";
      Sreturn (Some e)
    end
  | Lexer.BREAK ->
    advance st;
    expect st Lexer.SEMI "';'";
    Sbreak
  | Lexer.CONTINUE ->
    advance st;
    expect st Lexer.SEMI "';'";
    Scontinue
  | _ ->
    let s = parse_simple_stmt st in
    expect st Lexer.SEMI "';'";
    s

(* Declaration or expression statement, without the trailing semicolon
   (shared by for-loop initializers). *)
and parse_simple_stmt st =
  if looks_like_type st then begin
    let base = parse_base_ty st in
    let ty, name = parse_declarator st base in
    let init =
      if peek st = Lexer.ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    Sdecl (ty, name, init)
  end
  else Sexpr (parse_expr st)

and parse_stmt_as_block st =
  if peek st = Lexer.LBRACE then begin
    advance st;
    parse_block st
  end
  else [ parse_stmt st ]

and parse_block st =
  let rec loop acc =
    if peek st = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_params st =
  expect st Lexer.LPAREN "'('";
  if peek st = Lexer.RPAREN then begin
    advance st;
    []
  end
  else if peek st = Lexer.VOID_KW && List.nth_opt st.toks 1 |> Option.map fst = Some Lexer.RPAREN
  then begin
    advance st;
    advance st;
    []
  end
  else
    let rec loop acc =
      let base = parse_base_ty st in
      let ty = parse_stars st base in
      let name = expect_ident st "parameter name" in
      match peek st with
      | Lexer.COMMA ->
        advance st;
        loop ((ty, name) :: acc)
      | Lexer.RPAREN ->
        advance st;
        List.rev ((ty, name) :: acc)
      | _ -> fail st "expected ',' or ')' in parameters"
    in
    loop []

let parse_global st =
  if peek st = Lexer.STRUCT_KW
     && (match st.toks with
        | _ :: (Lexer.IDENT _, _) :: (Lexer.LBRACE, _) :: _ -> true
        | _ -> false)
  then begin
    (* struct definition *)
    advance st;
    let name = expect_ident st "struct name" in
    expect st Lexer.LBRACE "'{'";
    let rec fields acc =
      if peek st = Lexer.RBRACE then begin
        advance st;
        expect st Lexer.SEMI "';'";
        List.rev acc
      end
      else begin
        let base = parse_base_ty st in
        let ty, fname = parse_declarator st base in
        expect st Lexer.SEMI "';'";
        fields ((ty, fname) :: acc)
      end
    in
    Gstruct { s_name = name; s_fields = fields [] }
  end
  else begin
    let base = parse_base_ty st in
    let ty = parse_stars st base in
    let name = expect_ident st "name" in
    if peek st = Lexer.LPAREN then begin
      let params = parse_params st in
      expect st Lexer.LBRACE "'{'";
      let body = parse_block st in
      Gfunc { f_name = name; f_ret = ty; f_params = params; f_body = body }
    end
    else begin
      (* Global variable, possibly an array. *)
      let rec dims acc =
        if peek st = Lexer.LBRACKET then begin
          advance st;
          match peek st with
          | Lexer.NUM n ->
            advance st;
            expect st Lexer.RBRACKET "']'";
            dims (n :: acc)
          | _ -> fail st "expected array size"
        end
        else acc
      in
      let sizes = dims [] in
      let ty = List.fold_left (fun t n -> Tarray (t, n)) ty sizes in
      let init =
        if peek st = Lexer.ASSIGN then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      expect st Lexer.SEMI "';'";
      Gvar (ty, name, init)
    end
  end

(** Parse a complete MiniC translation unit. *)
let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rec loop acc =
    if peek st = Lexer.EOF then List.rev acc else loop (parse_global st :: acc)
  in
  loop []
