(** Front door of the MiniC compiler: source text in, relocatable unit out. *)

exception Compile_error of string

val compile :
  name:string ->
  ?extern:(string * Ast.ty * Ast.ty list) list ->
  string ->
  Codegen.compiled
(** Compile one translation unit. [extern] declares functions resolved at
    load time from another unit (see {!Libc.signatures}). Raises
    {!Compile_error} with a located message on lex/parse/sema errors. *)

val libc : unit -> Codegen.compiled
(** The compiled C library, memoized — it is the same for every process;
    randomization happens at load time, not compile time. *)

val compile_app : name:string -> string -> Codegen.compiled
(** Compile an application against the libc interface. *)
